"""Tests for the generic quantization primitives (repro.quant.base)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.quant import (
    INT8_RANGE,
    PROTECTIVE_INT8,
    UINT4_RANGE,
    QuantGranularity,
    dequantize,
    group_reshape,
    group_unreshape,
    int_range,
    quantization_error,
    quantize_tensor,
)


class TestIntRange:
    def test_int8(self):
        assert INT8_RANGE.lo == -128 and INT8_RANGE.hi == 127

    def test_uint4(self):
        assert UINT4_RANGE.lo == 0 and UINT4_RANGE.hi == 15
        assert UINT4_RANGE.span == 15

    def test_protective_int8(self):
        assert PROTECTIVE_INT8.lo == -119 and PROTECTIVE_INT8.hi == 119

    def test_protective_construction(self):
        r = int_range(8, signed=True, protective=9)
        assert (r.lo, r.hi) == (-119, 119)

    def test_protective_unsigned(self):
        r = int_range(4, signed=False, protective=1)
        assert (r.lo, r.hi) == (0, 14)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            int_range(0, signed=True)
        with pytest.raises(ValueError):
            int_range(33, signed=False)

    def test_protective_too_large(self):
        with pytest.raises(ValueError):
            int_range(2, signed=True, protective=5)

    def test_contains_and_clip(self):
        assert UINT4_RANGE.contains(np.array([0, 15]))
        assert not UINT4_RANGE.contains(np.array([16]))
        assert np.array_equal(UINT4_RANGE.clip(np.array([-1, 20])), np.array([0, 15]))
        assert UINT4_RANGE.contains(np.array([]))


class TestGroupReshape:
    def test_roundtrip(self, rng):
        w = rng.normal(size=(4, 32))
        assert np.array_equal(group_unreshape(group_reshape(w, 8)), w)

    def test_bad_group_size(self, rng):
        with pytest.raises(ValueError):
            group_reshape(rng.normal(size=(4, 30)), 8)

    def test_requires_2d(self, rng):
        with pytest.raises(ValueError):
            group_reshape(rng.normal(size=(4,)), 2)
        with pytest.raises(ValueError):
            group_unreshape(rng.normal(size=(4, 8)))


class TestQuantizeTensor:
    @pytest.mark.parametrize("bits", [4, 8])
    @pytest.mark.parametrize("symmetric", [True, False])
    def test_roundtrip_error_bound(self, rng, bits, symmetric):
        """RTN reconstruction error is bounded by half a quantization step per element."""
        w = rng.normal(0, 1.0, (32, 64))
        codes, params = quantize_tensor(w, bits=bits, symmetric=symmetric,
                                        granularity=QuantGranularity.PER_CHANNEL)
        w_hat = dequantize(codes, params)
        max_step = params.scale.max()
        assert np.max(np.abs(w - w_hat)) <= max_step / 2 + 1e-9

    def test_per_tensor_single_scale(self, rng):
        w = rng.normal(size=(8, 8))
        _, params = quantize_tensor(w, granularity=QuantGranularity.PER_TENSOR)
        assert params.scale.size == 1

    def test_per_channel_scale_shape(self, rng):
        w = rng.normal(size=(8, 16))
        _, params = quantize_tensor(w, granularity=QuantGranularity.PER_CHANNEL)
        assert params.scale.shape == (8, 1)

    def test_per_group_scale_shape(self, rng):
        w = rng.normal(size=(8, 16))
        codes, params = quantize_tensor(w, granularity=QuantGranularity.PER_GROUP, group_size=4)
        assert params.scale.shape == (8, 4, 1)
        assert codes.shape == w.shape

    def test_per_group_requires_group_size(self, rng):
        with pytest.raises(ValueError):
            quantize_tensor(rng.normal(size=(8, 16)), granularity=QuantGranularity.PER_GROUP)

    def test_symmetric_zero_point_is_zero(self, rng):
        _, params = quantize_tensor(rng.normal(size=(8, 8)), symmetric=True)
        assert params.is_symmetric

    def test_asymmetric_uses_full_range(self):
        w = np.linspace(0.0, 1.0, 64).reshape(4, 16)
        codes, params = quantize_tensor(w, bits=4, symmetric=False, signed=False)
        assert codes.min() == 0 and codes.max() == 15

    def test_codes_within_range(self, rng):
        codes, params = quantize_tensor(rng.normal(size=(16, 16)), bits=4, symmetric=False,
                                        signed=False)
        assert params.qrange.contains(codes)

    def test_constant_tensor(self):
        w = np.zeros((4, 8))
        codes, params = quantize_tensor(w, bits=8)
        assert np.allclose(dequantize(codes, params), 0.0)

    def test_unknown_granularity(self, rng):
        with pytest.raises(ValueError):
            quantize_tensor(rng.normal(size=(4, 4)), granularity="per_banana")

    @given(
        hnp.arrays(
            np.float64,
            shape=st.tuples(st.integers(1, 8), st.integers(1, 16)),
            elements=st.floats(-100, 100, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip_bound(self, w):
        codes, params = quantize_tensor(w, bits=8, symmetric=False, signed=False,
                                        granularity=QuantGranularity.PER_CHANNEL)
        w_hat = dequantize(codes, params)
        step = np.broadcast_to(params.scale, w.shape)
        assert np.all(np.abs(w - w_hat) <= step / 2 + 1e-6)


class TestQuantizationError:
    def test_zero_error(self, rng):
        w = rng.normal(size=(4, 4))
        err = quantization_error(w, w)
        assert err["mse"] == 0.0 and err["max_abs"] == 0.0
        assert err["snr_db"] == float("inf")

    def test_known_error(self):
        w = np.ones((2, 2))
        err = quantization_error(w, w + 0.5)
        assert err["mse"] == pytest.approx(0.25)
        assert err["rmse"] == pytest.approx(0.5)
        assert err["max_abs"] == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            quantization_error(np.ones((2, 2)), np.ones((2, 3)))
