"""Tests for model configurations and GEMM workload generation."""

import pytest

from repro.costmodel import GemmShape
from repro.serving import get_model, list_models
from repro.workloads import PAPER_BATCH_SIZES, batch_sweep, decode_layer_gemms, moe_expert_batch


class TestModelConfigs:
    def test_all_eight_paper_models_present(self):
        expected = {"llama1-30b", "llama2-7b", "llama2-13b", "llama2-70b",
                    "llama3-8b", "mistral-7b", "yi-34b", "mixtral-8x7b"}
        assert expected <= set(list_models())

    @pytest.mark.parametrize(
        "name, params_billion",
        [
            ("llama2-7b", 6.7),
            ("llama2-13b", 13.0),
            ("llama2-70b", 69.0),
            ("llama1-30b", 32.5),
            ("llama3-8b", 8.0),
            ("mistral-7b", 7.2),
            ("yi-34b", 34.4),
            ("mixtral-8x7b", 46.7),
        ],
    )
    def test_total_parameter_counts(self, name, params_billion):
        """Parameter counts must match the published model sizes within 10%."""
        total = get_model(name).total_params()
        assert total == pytest.approx(params_billion * 1e9, rel=0.10)

    def test_gqa_models(self):
        for name in ("llama2-70b", "llama3-8b", "mistral-7b", "yi-34b", "mixtral-8x7b"):
            model = get_model(name)
            assert model.num_kv_heads < model.num_heads
        for name in ("llama2-7b", "llama2-13b", "llama1-30b"):
            model = get_model(name)
            assert model.num_kv_heads == model.num_heads

    def test_mixtral_is_moe(self):
        mixtral = get_model("mixtral-8x7b")
        assert mixtral.is_moe and mixtral.num_experts == 8 and mixtral.experts_per_token == 2
        assert not get_model("llama2-7b").is_moe

    def test_kv_bytes_per_token(self):
        m = get_model("llama2-7b")
        # MHA: 2 * 4096 * 32 layers * 1 byte for INT8.
        assert m.kv_bytes_per_token(1.0) == pytest.approx(2 * 4096 * 32)
        gqa = get_model("llama2-70b")
        assert gqa.kv_bytes_per_token(1.0) == pytest.approx(2 * 1024 * 80)

    def test_active_params_moe_smaller_than_total(self):
        mixtral = get_model("mixtral-8x7b")
        assert mixtral.active_params_per_token() < mixtral.gemm_weight_params() / 2
        dense = get_model("llama2-7b")
        assert dense.active_params_per_token() == dense.gemm_weight_params()

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model("gpt-5")

    def test_validation_of_head_geometry(self):
        from repro.serving.models import ModelConfig
        with pytest.raises(ValueError):
            ModelConfig("bad", 2, 100, 7, 7, 100, 1000)
        with pytest.raises(ValueError):
            ModelConfig("bad", 2, 128, 8, 3, 100, 1000)


class TestWorkloads:
    def test_dense_layer_gemms(self):
        gemms = decode_layer_gemms(get_model("llama2-7b"), 16)
        assert gemms.qkv == GemmShape(16, 3 * 4096, 4096)
        assert gemms.out_proj == GemmShape(16, 4096, 4096)
        assert gemms.gate_up == [GemmShape(16, 2 * 11008, 4096)]
        assert gemms.down == [GemmShape(16, 4096, 11008)]
        # Weight elements per layer ~= published per-layer parameter count.
        assert gemms.total_weight_elements == get_model("llama2-7b").params_per_layer()

    def test_gqa_qkv_shape(self):
        gemms = decode_layer_gemms(get_model("llama2-70b"), 8)
        assert gemms.qkv.n == (64 + 2 * 8) * 128

    def test_moe_layer_gemms(self):
        model = get_model("mixtral-8x7b")
        gemms = decode_layer_gemms(model, 32)
        assert len(gemms.gate_up) == 8 and len(gemms.down) == 8
        assert gemms.gate_up[0].m == moe_expert_batch(32, model) == 8

    def test_moe_expert_batch_minimum_one(self):
        model = get_model("mixtral-8x7b")
        assert moe_expert_batch(1, model) == 1
        assert moe_expert_batch(4, model) == 1
        assert moe_expert_batch(256, model) == 64

    def test_flops_scale_with_batch(self):
        model = get_model("llama2-7b")
        f16 = decode_layer_gemms(model, 16).total_flops
        f32 = decode_layer_gemms(model, 32).total_flops
        assert f32 == 2 * f16

    def test_batch_sweep(self):
        sweep = batch_sweep(get_model("llama2-7b"))
        assert set(sweep) == set(PAPER_BATCH_SIZES)
        assert PAPER_BATCH_SIZES == (4, 8, 16, 32, 64, 128, 256)

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            decode_layer_gemms(get_model("llama2-7b"), 0)
        with pytest.raises(ValueError):
            moe_expert_batch(0, get_model("mixtral-8x7b"))
