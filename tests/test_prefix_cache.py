"""Tests for radix-tree prefix caching: the trie index itself (match / insert / LRU
eviction / can_free), its fork-on-admit integration with the scheduler (saved prefill,
hit-rate counters, eviction under KV pressure), swap-aware victim selection around
shared blocks, the shared-prefix trace generators, and cache-affinity cluster routing."""

import pytest

from repro.serving import (
    ContinuousBatchingScheduler,
    KvCacheConfig,
    PagedKvCache,
    PrefixCache,
    PreemptionPolicy,
    Request,
    ServingCluster,
    ServingEngine,
    get_model,
)
from repro.serving.prefixcache import _block_contents
from repro.serving.systems import ClusterSpec
from repro.workloads import (
    SHAREGPT_OUTPUTS,
    SHAREGPT_PROMPTS,
    ArrivalProcess,
    LengthDistribution,
    agent_swarm_trace,
    generate_trace,
    merge_traces,
    multi_turn_chat_trace,
    rag_trace,
    tenant_mix_trace,
)

SHORT = LengthDistribution.uniform(16, 64)


@pytest.fixture(scope="module")
def engine():
    return ServingEngine("liquidserve", "llama2-7b")


def make_config(budget_mb=64, block_tokens=16, host_budget_mb=0):
    return KvCacheConfig(
        model=get_model("llama2-7b"),
        kv_format="int8",
        block_tokens=block_tokens,
        memory_budget_bytes=budget_mb * 2**20,
        host_memory_budget_bytes=host_budget_mb * 2**20,
    )


def shared_request(request_id, shared=64, private=16, output=8, group=0):
    """A request whose first ``shared`` prompt tokens are one shareable segment."""
    return Request(
        request_id,
        prompt_tokens=shared + private,
        output_tokens=output,
        prefix_group=group,
        prefix_segments=((0, shared),),
    )


def publish(cache, kv, seq_id, request):
    """Prefill ``request`` onto ``kv`` as ``seq_id`` and publish its prefix."""
    state = kv.add_sequence(seq_id, request.prompt_tokens)
    cache.insert(request, state.blocks)
    return state


class TestBlockContents:
    def test_whole_blocks_only(self):
        contents = list(_block_contents(((0, 40),), block_tokens=16, max_blocks=10))
        # 40 tokens = 2 full blocks + a 8-token partial that must never be yielded.
        assert contents == [(((0, 0, 16),)), (((0, 16, 32),))]

    def test_segment_boundary_mid_block(self):
        contents = list(_block_contents(((0, 10), (1, 22)), block_tokens=16, max_blocks=10))
        assert contents == [
            ((0, 0, 10), (1, 0, 6)),
            ((1, 6, 22),),
        ]

    def test_max_blocks_caps_output(self):
        contents = list(_block_contents(((0, 64),), block_tokens=16, max_blocks=2))
        assert len(contents) == 2

    def test_identical_streams_produce_identical_keys(self):
        a = list(_block_contents(((3, 16), (7, 16)), 16, 4))
        b = list(_block_contents(((3, 16), (7, 16)), 16, 4))
        assert a == b
        # A diverging second segment changes only the diverging block's key.
        c = list(_block_contents(((3, 16), (8, 16)), 16, 4))
        assert c[0] == a[0] and c[1] != a[1]


class TestPrefixCacheIndex:
    def test_miss_then_insert_then_hit(self):
        kv = PagedKvCache(make_config())
        cache = PrefixCache(kv)
        request = shared_request(0, shared=64)
        assert cache.match_blocks(request, request.prompt_tokens) == []
        state = publish(cache, kv, 0, request)
        assert cache.num_blocks == 4  # 64 shareable tokens / 16 per block
        assert cache.match_blocks(shared_request(1, shared=64), 64) == state.blocks[:4]
        # Cached blocks now carry the cache's extra reference.
        assert all(kv.block_ref_count(b) == 2 for b in state.blocks[:4])

    def test_match_is_block_granular_and_capped(self):
        kv = PagedKvCache(make_config())
        cache = PrefixCache(kv)
        publish(cache, kv, 0, shared_request(0, shared=64))
        probe = shared_request(1, shared=64)
        assert len(cache.match_blocks(probe, 64)) == 4
        assert len(cache.match_blocks(probe, 63)) == 3  # cap rounds down to whole blocks
        assert cache.match_tokens(probe, 64) == 64

    def test_groups_are_isolated(self):
        kv = PagedKvCache(make_config())
        cache = PrefixCache(kv)
        publish(cache, kv, 0, shared_request(0, shared=64, group=0))
        assert cache.match_blocks(shared_request(1, shared=64, group=1), 64) == []
        assert cache.match_blocks(shared_request(2, shared=64, group=0), 64) != []

    def test_no_segments_never_matches_or_inserts(self):
        kv = PagedKvCache(make_config())
        cache = PrefixCache(kv)
        plain = Request(0, prompt_tokens=80, output_tokens=4)
        state = kv.add_sequence(0, 80)
        assert cache.insert(plain, state.blocks) == 0
        assert cache.match_blocks(plain, 80) == []
        assert cache.num_blocks == 0

    def test_first_writer_wins_on_duplicate_insert(self):
        kv = PagedKvCache(make_config())
        cache = PrefixCache(kv)
        first = publish(cache, kv, 0, shared_request(0, shared=64))
        added = cache.insert(shared_request(1, shared=64),
                             kv.add_sequence(1, 80).blocks)
        assert added == 0
        assert cache.match_blocks(shared_request(2, shared=64), 64) == first.blocks[:4]

    def test_divergent_continuations_share_the_common_prefix(self):
        kv = PagedKvCache(make_config())
        cache = PrefixCache(kv)
        a = Request(0, prompt_tokens=64, output_tokens=4,
                    prefix_group=0, prefix_segments=((0, 32), (1, 32)))
        b = Request(1, prompt_tokens=64, output_tokens=4,
                    prefix_group=0, prefix_segments=((0, 32), (2, 32)))
        publish(cache, kv, 0, a)
        publish(cache, kv, 1, b)
        # 2 shared blocks + 2 per divergent tail = 6 cached blocks, not 8.
        assert cache.num_blocks == 6
        assert len(cache.match_blocks(a, 64)) == 4
        assert len(cache.match_blocks(b, 64)) == 4

    def test_cache_survives_prefiller_completion(self):
        kv = PagedKvCache(make_config())
        cache = PrefixCache(kv)
        state = publish(cache, kv, 0, shared_request(0, shared=64))
        kv.free_sequence(0)
        assert all(kv.block_ref_count(b) == 1 for b in state.blocks[:4])
        assert len(cache.match_blocks(shared_request(1, shared=64), 64)) == 4


class TestLruEviction:
    def test_evicts_lru_leaf_first(self):
        kv = PagedKvCache(make_config())
        cache = PrefixCache(kv)
        old = Request(0, prompt_tokens=16, output_tokens=4,
                      prefix_group=0, prefix_segments=((0, 16),))
        new = Request(1, prompt_tokens=16, output_tokens=4,
                      prefix_group=0, prefix_segments=((1, 16),))
        old_state = publish(cache, kv, 0, old)
        new_state = publish(cache, kv, 1, new)
        kv.free_sequence(0)
        kv.free_sequence(1)
        cache.commit_hit(new, 1)  # refresh `new`'s LRU stamp
        assert cache.evict(1) == 1
        assert cache.match_blocks(old, 16) == []          # the stale chain went first
        assert cache.match_blocks(new, 16) == new_state.blocks
        assert kv.block_ref_count(old_state.blocks[0]) == 0

    def test_never_evicts_blocks_a_live_sequence_shares(self):
        kv = PagedKvCache(make_config())
        cache = PrefixCache(kv)
        request = shared_request(0, shared=64)
        publish(cache, kv, 0, request)  # sequence 0 stays live
        assert cache.evict(10) == 0
        assert cache.num_blocks == 4
        kv.free_sequence(0)
        assert cache.evict(10) == 4
        assert cache.num_blocks == 0
        assert kv.num_used_blocks == 0

    def test_eviction_unwinds_chains_leaf_first(self):
        kv = PagedKvCache(make_config())
        cache = PrefixCache(kv)
        publish(cache, kv, 0, shared_request(0, shared=64))
        kv.free_sequence(0)
        assert cache.evict(2) == 2
        # The surviving depth still matches as a shorter prefix.
        assert len(cache.match_blocks(shared_request(1, shared=64), 64)) == 2

    def test_prunes_pinned_leaf_to_reach_idle_interior(self):
        """A live holder pinning only the deepest block must not strand the idle
        interior: eviction drops the pinned leaf (free of charge) to reach it."""
        kv = PagedKvCache(make_config())
        cache = PrefixCache(kv)
        state = publish(cache, kv, 0, shared_request(0, shared=64))
        kv.free_sequence(0)
        leaf_block = state.blocks[3]
        kv.retain_block(leaf_block)  # stand-in for a live sequence sharing the leaf
        assert cache.can_free(3)
        assert not cache.can_free(4)  # the pinned leaf itself frees nothing
        assert cache.evict(4) == 3
        assert cache.num_blocks == 0
        assert kv.block_ref_count(leaf_block) == 1  # the live holder keeps its copy
        kv.release_block(leaf_block)
        assert kv.num_used_blocks == 0

    def test_can_free_mirrors_evict(self):
        kv = PagedKvCache(make_config())
        cache = PrefixCache(kv)
        request = shared_request(0, shared=64)
        publish(cache, kv, 0, request)
        assert not cache.can_free(1)        # prefiller still live: nothing evictable
        kv.free_sequence(0)
        assert cache.can_free(4)
        assert not cache.can_free(5)
        assert cache.can_free(0)
        assert cache.evict(4) == 4

    def test_reset_releases_everything(self):
        kv = PagedKvCache(make_config())
        cache = PrefixCache(kv)
        publish(cache, kv, 0, shared_request(0, shared=64))
        kv.free_sequence(0)
        cache.reset()
        assert cache.num_blocks == 0
        assert kv.num_used_blocks == 0
        assert cache.stats().hits == 0


class TestFmtStats:
    def test_counters_and_hit_rate(self):
        kv = PagedKvCache(make_config())
        cache = PrefixCache(kv)
        request = shared_request(0, shared=64)
        cache.record_miss()
        publish(cache, kv, 0, request)
        cache.commit_hit(shared_request(1, shared=64), 4)
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == pytest.approx(0.5)
        assert stats.saved_tokens == 64
        assert stats.inserted_blocks == 4
        assert stats.cached_blocks == 4


class TestSchedulerIntegration:
    def test_cache_saves_prefill_and_preserves_tokens(self, engine):
        trace = agent_swarm_trace(2, 4, 3, 2.0, seed=3)
        scheduler_on = ContinuousBatchingScheduler(engine, prefix_caching=True)
        scheduler_off = ContinuousBatchingScheduler(engine)
        on = scheduler_on.run(trace)
        off = scheduler_off.run(trace)
        assert on.completed_requests == off.completed_requests == len(trace)
        assert on.generated_tokens == off.generated_tokens
        assert on.prefix_cache_hits > 0
        assert on.prefix_saved_tokens > 0
        assert on.prefix_hit_rate > 0.5
        assert off.prefix_cache_hits == 0 and off.prefix_saved_tokens == 0
        # Skipping cached prefill must strictly reduce simulated time and TTFT.
        assert on.simulated_time_s < off.simulated_time_s
        assert on.slo_report().p99_ttft_s < off.slo_report().p99_ttft_s

    def test_slo_report_carries_prefix_fields(self, engine):
        trace = rag_trace(30, 10.0, template_tokens=512, num_templates=2, seed=5)
        stats = ContinuousBatchingScheduler(engine, prefix_caching=True).run(trace)
        report = stats.slo_report()
        assert report.prefix_hit_rate > 0.5
        assert report.prefix_saved_tokens == stats.prefix_saved_tokens > 0
        off = ContinuousBatchingScheduler(engine).run(trace)
        assert off.slo_report().prefix_hit_rate == 0.0
        assert off.slo_report().prefix_saved_tokens == 0

    def test_pool_drains_and_rerun_is_cold(self, engine):
        trace = multi_turn_chat_trace(3, 3, 5.0, seed=7)
        scheduler = ContinuousBatchingScheduler(engine, prefix_caching=True)
        first = scheduler.run(trace)
        # Cached blocks outlive the run inside the session, but a re-run must rebuild
        # the cache from scratch (A/B discipline) and reproduce the exact numbers.
        second = scheduler.run(trace)
        assert second.prefix_cache_hits == first.prefix_cache_hits
        assert second.prefix_saved_tokens == first.prefix_saved_tokens
        assert second.simulated_time_s == first.simulated_time_s
        assert scheduler.kv_cache.num_sequences == 0

    def test_eviction_under_kv_pressure(self, engine):
        """A pool far too small to keep every prefix cached must evict, not deadlock."""
        scheduler = ContinuousBatchingScheduler(engine, prefix_caching=True)
        scheduler.kv_cache = PagedKvCache(make_config(budget_mb=256))
        trace = multi_turn_chat_trace(
            4, 3, 20.0, system_prompt_tokens=256,
            message_lengths=SHORT, reply_lengths=SHORT, seed=11,
        )
        stats = scheduler.run(trace)
        assert stats.completed_requests == len(trace)
        assert stats.prefix_blocks_evicted > 0
        assert scheduler.kv_cache.num_used_blocks == scheduler.prefix_cache.num_blocks

    def test_cached_prefix_tokens_recorded_per_request(self, engine):
        trace = rag_trace(20, 10.0, template_tokens=512, num_templates=1, seed=2)
        stats = ContinuousBatchingScheduler(engine, prefix_caching=True).run(trace)
        cached = [r.cached_prefix_tokens for r in stats.requests]
        assert sum(cached) == stats.prefix_saved_tokens
        hits = [c for c in cached if c > 0]
        assert hits and all(c % 16 == 0 for c in cached)  # block-granular
        assert all(c <= 512 for c in cached)              # never beyond the template


class TestSwapVictimSelection:
    """Regression: swap-leaning preemption must steer around shared-block residents."""

    def _pressured_scheduler(self, engine, policy):
        scheduler = ContinuousBatchingScheduler(
            engine, prefix_caching=True, preemption_policy=policy,
            max_batched_tokens=512, prefill_chunk_tokens=128,
        )
        scheduler.kv_cache = PagedKvCache(make_config(budget_mb=256, host_budget_mb=256))
        return scheduler

    @pytest.mark.parametrize("policy", ["swap", "hybrid"])
    def test_no_crash_with_shared_blocks(self, engine, policy):
        """Before the fix, picking a cache-seeded victim could aim swap_out at shared
        blocks; the run must complete without a ValueError escaping."""
        trace = agent_swarm_trace(
            2, 4, 2, 8.0, base_context_tokens=512, step_tokens=128,
            scratch_lengths=SHORT, output_lengths=SHORT, seed=13,
        )
        stats = self._pressured_scheduler(engine, policy).run(trace)
        assert stats.completed_requests == len(trace)

    def test_unshared_victim_preferred(self, engine):
        scheduler = ContinuousBatchingScheduler(engine, preemption_policy="swap")
        scheduler.kv_cache = PagedKvCache(make_config(host_budget_mb=64))
        scheduler.begin()
        unshared = Request(0, prompt_tokens=64, output_tokens=32)
        shared = Request(1, prompt_tokens=64, output_tokens=32)
        scheduler.submit(unshared)
        scheduler.submit(shared)
        while not scheduler._running or scheduler._prefilling:
            scheduler.step()
        # Fork the later arrival's blocks (a prefix-cache seed does exactly this).
        scheduler.kv_cache.fork_from_blocks(99, scheduler.kv_cache.sequence(1).blocks)
        # FCFS alone would evict the latest arrival — the shared one; the swap-aware
        # filter must steer to the unshared resident instead.
        assert scheduler._pick_victim() is unshared
        scheduler.kv_cache.free_sequence(99)
        assert scheduler._pick_victim() is shared

    def test_all_shared_degrades_to_recompute(self, engine):
        """With every resident sharing blocks, swap preemption must fall back to
        recompute rather than raise out of swap_out."""

        class AlwaysSwap(PreemptionPolicy):
            name = "always-swap"
            prefers_swap = True

            def decide(self, victim, engine, kv_cache):
                return self.SWAP

        scheduler = ContinuousBatchingScheduler(
            engine, preemption_policy=AlwaysSwap()
        )
        scheduler.kv_cache = PagedKvCache(make_config(host_budget_mb=64))
        scheduler.begin()
        resident = Request(0, prompt_tokens=64, output_tokens=32)
        scheduler.submit(resident)
        while not scheduler._running:
            scheduler.step()
        scheduler.kv_cache.fork_from_blocks(99, scheduler.kv_cache.sequence(0).blocks)
        assert scheduler._preempt_one()
        stats = scheduler.stats()
        assert stats.recompute_preemptions == 1
        assert stats.swap_preemptions == 0


class TestSharedPrefixTraces:
    def test_generate_trace_shared_prefix(self):
        args = (20, ArrivalProcess(rate_rps=5.0), SHAREGPT_PROMPTS, SHAREGPT_OUTPUTS)
        trace = generate_trace(*args, seed=0, shared_prefix_tokens=128)
        assert all(r.prefix_segments == ((0, 128),) for r in trace)
        assert all(r.prompt_tokens > 128 for r in trace)
        baseline = generate_trace(*args, seed=0)
        # The shared-prefix variant must not perturb the RNG draw order.
        assert [r.arrival_time_s for r in trace] == [r.arrival_time_s for r in baseline]
        assert all(r.prefix_segments == () for r in baseline)

    @pytest.mark.parametrize("maker", [
        lambda: multi_turn_chat_trace(3, 4, 5.0, seed=1),
        lambda: rag_trace(24, 5.0, seed=1),
        lambda: agent_swarm_trace(2, 3, 3, 2.0, seed=1),
        lambda: tenant_mix_trace(12, 6.0, seed=1),
    ])
    def test_generator_sanity(self, maker):
        trace = maker()
        assert trace
        arrivals = [r.arrival_time_s for r in trace]
        assert arrivals == sorted(arrivals)
        ids = [r.request_id for r in trace]
        assert len(set(ids)) == len(ids)
        for r in trace:
            assert r.prompt_tokens >= 1 and r.output_tokens >= 1
            assert r.shareable_prefix_tokens <= r.prompt_tokens
            assert all(tokens >= 1 for _, tokens in r.prefix_segments)

    def test_chat_turns_extend_history(self):
        trace = multi_turn_chat_trace(1, 3, 5.0, seed=0)
        by_turn = sorted(trace, key=lambda r: r.request_id)
        for earlier, later in zip(by_turn, by_turn[1:]):
            assert later.prefix_segments[: len(earlier.prefix_segments)] == \
                earlier.prefix_segments
        assert all(r.prefix_segments[0] == (0, 512) for r in by_turn)

    def test_tenant_mix_isolates_groups_and_priorities(self):
        trace = tenant_mix_trace(10, 5.0, num_tenants=3, seed=0)
        groups = {r.prefix_group for r in trace}
        assert groups == {0, 1, 2}
        for r in trace:
            assert r.priority == r.prefix_group  # default: priority = tenant index

    def test_merge_traces_preserves_prefix_identity(self):
        """Regression: renumbering must not detach requests from their prefix groups."""
        a = rag_trace(8, 5.0, seed=0, prefix_group=7)
        b = multi_turn_chat_trace(2, 2, 5.0, seed=1, prefix_group=9)
        merged = merge_traces(a, b)
        assert [r.request_id for r in merged] == list(range(len(merged)))
        assert {r.prefix_group for r in merged} == {7, 9}
        by_group = {g: [r for r in merged if r.prefix_group == g] for g in (7, 9)}
        originals = {7: a, 9: b}
        for group, requests in by_group.items():
            assert sorted(r.prefix_segments for r in requests) == \
                sorted(r.prefix_segments for r in originals[group])
        # The un-renumbered path returns the original objects untouched.
        c = rag_trace(4, 5.0, seed=2, start_id=1000, prefix_group=1)
        kept = merge_traces(a, c, reassign_ids=False)
        assert set(kept) == set(a) | set(c)


class TestCacheAffinityRouting:
    def test_cluster_with_cache_affinity_router(self, engine):
        trace = rag_trace(40, 20.0, template_tokens=512, num_templates=2, seed=4)
        cluster = ServingCluster(
            spec=ClusterSpec(mode="colocated", num_replicas=2, router="cache-affinity"),
            prefix_caching=True,
            engine=engine,
        )
        result = cluster.run(trace)
        assert result.completed_requests == len(trace)
        assert result.router == "cache-affinity"
        hits = sum(s.prefix_cache_hits for s in result.replica_stats)
        assert hits > 0
        assert result.slo_report().prefix_hit_rate > 0

    def test_affinity_beats_round_robin_on_hit_rate(self, engine):
        """Sticky placement should serve more requests from cache than spraying the
        same trace over the replicas blindly."""
        trace = rag_trace(60, 30.0, template_tokens=1024, num_templates=2, seed=8)

        def hit_rate(router):
            cluster = ServingCluster(
                spec=ClusterSpec(mode="colocated", num_replicas=2, router=router),
                prefix_caching=True,
                engine=engine,
            )
            return cluster.run(trace).slo_report().prefix_hit_rate

        assert hit_rate("cache-affinity") >= hit_rate("round-robin")
