"""Tests for the QServe-style progressive quantization baseline (repro.quant.progressive)."""

import numpy as np
import pytest

from repro.quant import (
    QServeConfig,
    qserve_dequantize_fp,
    qserve_dequantize_int8,
    qserve_quantize,
    quantization_error,
)
from repro.quant.progressive import qserve_roundtrip_error


class TestQServeConfig:
    def test_defaults(self):
        cfg = QServeConfig()
        assert cfg.group_size == 128 and cfg.protective_bound == 119

    def test_validation(self):
        with pytest.raises(ValueError):
            QServeConfig(group_size=-1)


class TestQServeQuantize:
    def test_shapes(self, medium_weight):
        qw = qserve_quantize(medium_weight)
        n, k = medium_weight.shape
        assert qw.q_u4.shape == (n, k)
        assert qw.scale_i8.shape == (n, k // 128)
        assert qw.zero_u4.shape == (n, k // 128)
        assert qw.num_groups == k // 128

    def test_codes_and_zero_in_uint4(self, medium_weight):
        qw = qserve_quantize(medium_weight)
        assert qw.q_u4.min() >= 0 and qw.q_u4.max() <= 15
        assert qw.zero_u4.min() >= 0 and qw.zero_u4.max() <= 15

    def test_group_size_must_divide_k(self, rng):
        with pytest.raises(ValueError):
            qserve_quantize(rng.normal(size=(8, 100)))

    def test_memory_bytes(self, medium_weight):
        qw = qserve_quantize(medium_weight)
        assert 0.5 <= qw.memory_bytes() / medium_weight.size < 0.55


class TestQServeDequantize:
    def test_int8_range(self, medium_weight):
        """With the protective first level the dequantized INT8 never saturates the clip."""
        qw = qserve_quantize(medium_weight)
        q = qserve_dequantize_int8(qw)
        assert q.min() >= -128 and q.max() <= 127

    def test_roundtrip_error(self, medium_weight):
        err = qserve_roundtrip_error(medium_weight)
        assert err["relative_fro"] < 0.15

    def test_comparable_to_lqq(self, medium_weight):
        """The paper's accuracy claim: LQQ matches QServe's quantization fidelity."""
        from repro.quant import LqqConfig, lqq_dequantize_fp, lqq_quantize

        qserve_err = quantization_error(
            medium_weight, qserve_dequantize_fp(qserve_quantize(medium_weight, QServeConfig(group_size=64)))
        )
        lqq_err = quantization_error(
            medium_weight, lqq_dequantize_fp(lqq_quantize(medium_weight, LqqConfig(group_size=64)))
        )
        assert lqq_err["relative_fro"] <= qserve_err["relative_fro"] * 1.10

    def test_subtraction_after_multiplication_identity(self, rng):
        """q*s - s*z must equal (q - z)*s exactly in integers (the QServe reformulation)."""
        qw = qserve_quantize(rng.normal(0, 0.02, (32, 128)))
        g = qw.config.group_size
        scale = np.repeat(qw.scale_i8.astype(np.int64), g, axis=1)
        zero = np.repeat(qw.zero_u4.astype(np.int64), g, axis=1)
        a = qw.q_u4.astype(np.int64) * scale - scale * zero
        b = (qw.q_u4.astype(np.int64) - zero) * scale
        assert np.array_equal(a, b)
