"""Fast-forward vs. stepwise equivalence: the contract the perf work must never break.

Analytic decode fast-forward (`ContinuousBatchingScheduler.fast_forward`) exists purely to
make the simulator faster; it must be *bit-identical* to looping `step()` — every clock,
every stat, every per-request timestamp.  These tests pin that equivalence:

* a hypothesis property test drives randomized traces (arrival patterns, long-tail lengths,
  KV budgets tight enough to force preemption, every preemption/scheduling policy) through
  both execution modes and asserts identical `SchedulerStats`, identical per-request
  `RequestMetrics`, and identical final clocks;
* cluster-level tests do the same for co-located and disaggregated fleets;
* unit tests cover the fast path's decision points (steady-state detection, the horizon
  cut, the KV-exhaustion bailout) and the incremental `outstanding_tokens` counter.
"""

import copy
import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import simulate_cluster, simulate_serving
from repro.quant.kvcache import kv_bytes_per_element
from repro.serving.attention import decode_attention_cost_from_totals
from repro.serving.engine import ServingEngine
from repro.serving.metrics import request_metrics
from repro.serving.scheduler import ContinuousBatchingScheduler, Request
from repro.workloads.traces import (
    SHAREGPT_OUTPUTS,
    SHAREGPT_PROMPTS,
    ArrivalProcess,
    LengthDistribution,
    agent_swarm_trace,
    generate_trace,
    multi_turn_chat_trace,
    rag_trace,
    tenant_mix_trace,
)

MB = 2**20
GB = 2**30


def _request_fields(request):
    return {f.name: getattr(request, f.name) for f in dataclasses.fields(Request)}


def assert_stats_identical(stepwise, fast):
    """Every field of two SchedulerStats must match bit-for-bit (requests by id).

    Fields whose metadata opts out of the contract (code-path diagnostics such as
    averted-preemption counts, which group identical evicted blocks differently
    between stepwise and fast-forward runs) are skipped.
    """
    for f in dataclasses.fields(stepwise):
        if f.name == "requests":
            continue
        if not f.metadata.get("fast_forward_invariant", True):
            continue
        assert getattr(stepwise, f.name) == getattr(fast, f.name), (
            f"SchedulerStats.{f.name}: "
            f"{getattr(stepwise, f.name)!r} != {getattr(fast, f.name)!r}"
        )
    lhs = sorted(stepwise.requests, key=lambda r: r.request_id)
    rhs = sorted(fast.requests, key=lambda r: r.request_id)
    assert len(lhs) == len(rhs)
    for a, b in zip(lhs, rhs):
        assert _request_fields(a) == _request_fields(b)
    # Per-request latency decompositions (frozen dataclasses: == is field equality).
    assert sorted(request_metrics(lhs), key=lambda m: m.request_id) == sorted(
        request_metrics(rhs), key=lambda m: m.request_id
    )


def _run(trace, fast_forward, **kwargs):
    scheduler = ContinuousBatchingScheduler(
        ServingEngine("liquidserve", "llama2-7b"),
        fast_forward=fast_forward,
        **kwargs,
    )
    stats = scheduler.run([copy.copy(r) for r in trace])
    return scheduler, stats


@st.composite
def random_traces(draw):
    n = draw(st.integers(min_value=1, max_value=18))
    requests = []
    for i in range(n):
        requests.append(
            Request(
                request_id=i,
                prompt_tokens=draw(st.integers(min_value=1, max_value=600)),
                output_tokens=draw(st.integers(min_value=1, max_value=60)),
                arrival_time_s=draw(
                    st.floats(
                        min_value=0.0, max_value=2.0,
                        allow_nan=False, allow_infinity=False,
                    )
                ),
                priority=draw(st.integers(min_value=0, max_value=3)),
            )
        )
    return requests


class TestSchedulerEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        trace=random_traces(),
        kv_budget=st.sampled_from([256 * MB, 512 * MB, 2 * GB, None]),
        host_budget=st.sampled_from([0, 512 * MB]),
        preemption=st.sampled_from(["recompute", "swap", "hybrid"]),
        scheduling=st.sampled_from(["fcfs", "priority", "sjf", "fairness"]),
        overlap=st.booleans(),
    )
    def test_random_traces_bit_identical(
        self, trace, kv_budget, host_budget, preemption, scheduling, overlap
    ):
        kwargs = dict(
            kv_budget_bytes=kv_budget,
            host_kv_budget_bytes=host_budget,
            preemption_policy=preemption,
            scheduling_policy=scheduling,
            overlap_swap_transfers=overlap,
        )
        sched_a, stepwise = _run(trace, fast_forward=False, **kwargs)
        sched_b, fast = _run(trace, fast_forward=True, **kwargs)
        assert sched_a.clock == sched_b.clock  # final virtual clocks, bit for bit
        assert_stats_identical(stepwise, fast)

    def test_sharegpt_trace_bit_identical(self):
        trace = generate_trace(
            120, ArrivalProcess(rate_rps=20.0), SHAREGPT_PROMPTS, SHAREGPT_OUTPUTS,
            seed=7,
        )
        sched_a, stepwise = _run(trace, fast_forward=False)
        sched_b, fast = _run(trace, fast_forward=True)
        assert sched_a.clock == sched_b.clock
        assert_stats_identical(stepwise, fast)
        assert fast.num_iterations > 1000  # the jump accounting must count them all

    def test_kv_constrained_trace_bit_identical(self):
        """Preemption churn interleaves with decode phases; jumps must stop at OOM."""
        trace = generate_trace(
            60, ArrivalProcess(rate_rps=20.0), SHAREGPT_PROMPTS, SHAREGPT_OUTPUTS,
            seed=3,
        )
        kwargs = dict(kv_budget_bytes=GB, host_kv_budget_bytes=GB,
                      preemption_policy="hybrid")
        _, stepwise = _run(trace, fast_forward=False, **kwargs)
        _, fast = _run(trace, fast_forward=True, **kwargs)
        assert stepwise.preemptions > 0  # the scenario actually exercises preemption
        assert_stats_identical(stepwise, fast)

    def test_simulate_serving_flag_threads_through(self):
        kwargs = dict(num_requests=40, arrival_rate_rps=25.0, seed=5)
        fast = simulate_serving("liquidserve", "llama2-7b", **kwargs)
        slow = simulate_serving(
            "liquidserve", "llama2-7b", fast_forward=False, **kwargs
        )
        assert fast.stats.simulated_time_s == slow.stats.simulated_time_s
        assert fast.stats.num_iterations == slow.stats.num_iterations
        assert fast.slo == slow.slo


class TestMixedPhaseEquivalence:
    """The mixed prefill+decode fast path: pinned-epoch jumps must be bit-identical on
    exactly the workloads PR 4's decode-only fast-forward could not touch — prefill-heavy
    traces, KV-pressure traces with starved chunks and parked swapped sequences, and the
    chunk schedules a small ``prefill_chunk_tokens`` produces."""

    @settings(max_examples=20, deadline=None)
    @given(
        trace=random_traces(),
        prefill_chunk=st.sampled_from([32, 64, 256]),
        max_batched_tokens=st.sampled_from([256, 512, None]),
        kv_budget=st.sampled_from([256 * MB, GB, None]),
        preemption=st.sampled_from(["recompute", "swap", "hybrid"]),
    )
    def test_random_chunk_schedules_bit_identical(
        self, trace, prefill_chunk, max_batched_tokens, kv_budget, preemption
    ):
        kwargs = dict(
            prefill_chunk_tokens=prefill_chunk,
            max_batched_tokens=max_batched_tokens,
            kv_budget_bytes=kv_budget,
            host_kv_budget_bytes=GB,
            preemption_policy=preemption,
        )
        sched_a, stepwise = _run(trace, fast_forward=False, **kwargs)
        sched_b, fast = _run(trace, fast_forward=True, **kwargs)
        assert sched_a.clock == sched_b.clock
        assert_stats_identical(stepwise, fast)

    @settings(max_examples=12, deadline=None)
    @given(
        prompt_scale=st.integers(min_value=2, max_value=12),
        kv_budget=st.sampled_from([2 * GB, 4 * GB, None]),
        scheduling=st.sampled_from(["fcfs", "sjf", "fairness"]),
    )
    def test_prefill_heavy_traces_bit_identical(
        self, prompt_scale, kv_budget, scheduling
    ):
        """Long prompts, short answers: the regime where almost every iteration carries
        prefill chunks and the decode-only fast path never fired."""
        trace = generate_trace(
            30,
            ArrivalProcess(rate_rps=25.0),
            LengthDistribution.lognormal(
                median=180.0 * prompt_scale, sigma=1.1, maximum=4096
            ),
            LengthDistribution.lognormal(median=40.0, sigma=0.9, maximum=512),
            seed=prompt_scale,
        )
        kwargs = dict(
            kv_budget_bytes=kv_budget,
            host_kv_budget_bytes=GB,
            preemption_policy="hybrid",
            scheduling_policy=scheduling,
        )
        _, stepwise = _run(trace, fast_forward=False, **kwargs)
        _, fast = _run(trace, fast_forward=True, **kwargs)
        assert_stats_identical(stepwise, fast)

    def test_kv_pressure_prefill_heavy_bit_identical(self):
        """The acceptance workload shape: KV-constrained, prefill-heavy, hybrid
        preemption — starved chunks, parked swapped sequences and preemption churn all
        interleave with the jumps."""
        trace = generate_trace(
            80,
            ArrivalProcess(rate_rps=16.0),
            LengthDistribution.lognormal(median=1024.0, sigma=0.9, maximum=4096),
            LengthDistribution.lognormal(median=200.0, sigma=0.8, maximum=1024),
            seed=3,
        )
        kwargs = dict(
            kv_budget_bytes=2 * GB, host_kv_budget_bytes=4 * GB,
            preemption_policy="hybrid",
        )
        sched_a, stepwise = _run(trace, fast_forward=False, **kwargs)
        sched_b, fast = _run(trace, fast_forward=True, **kwargs)
        assert stepwise.preemptions > 0  # the scenario actually exercises churn
        assert stepwise.prefill_chunks > len(trace)  # ...and real chunk schedules
        assert sched_a.clock == sched_b.clock
        assert_stats_identical(stepwise, fast)

    def test_mixed_jump_matches_stepwise_twin(self):
        """Drive two schedulers into the same mixed prefill+decode state; one jumps,
        the other steps the same number of iterations — every observable must match."""

        def build():
            scheduler = ContinuousBatchingScheduler(
                ServingEngine("liquidserve", "llama2-7b"), fast_forward=True
            )
            # One long prefill alongside three decoding residents.
            for i in range(3):
                scheduler.submit(Request(request_id=i, prompt_tokens=64,
                                         output_tokens=400))
            while not scheduler.in_steady_decode:
                scheduler.step()
            scheduler.submit(Request(request_id=99, prompt_tokens=4096,
                                     output_tokens=4))
            scheduler.step()  # admit: the mixed phase begins
            assert scheduler._prefilling
            return scheduler

        fast = build()
        step = build()
        advanced = fast._fast_forward_mixed(None)
        assert advanced > 1
        for _ in range(advanced):
            step.step()
        assert fast.clock == step.clock
        assert fast.kv_cache.num_free_blocks == step.kv_cache.num_free_blocks
        assert_stats_identical(step.stats(), fast.stats())

    def test_mixed_epoch_stops_before_prefill_completion(self):
        scheduler = ContinuousBatchingScheduler(
            ServingEngine("liquidserve", "llama2-7b"), fast_forward=True
        )
        scheduler.submit(Request(request_id=0, prompt_tokens=1000, output_tokens=4))
        scheduler.step()  # admit + first chunk (256 of 1000)
        # Remaining 744 at chunk 256: two full chunks are safe, the third completes.
        assert scheduler._fast_forward_mixed(None) == 2
        assert scheduler._fast_forward_mixed(None) == 0  # completing chunk: step only
        scheduler.step()
        assert scheduler._prefilling == [] and scheduler._running


@st.composite
def shared_prefix_traces(draw):
    """Random traces whose requests carry shareable prefix segments in a few groups."""
    n = draw(st.integers(min_value=1, max_value=14))
    requests = []
    for i in range(n):
        group = draw(st.integers(min_value=0, max_value=2))
        shared = draw(st.sampled_from([0, 48, 128, 512]))
        requests.append(
            Request(
                request_id=i,
                prompt_tokens=shared + draw(st.integers(min_value=1, max_value=400)),
                output_tokens=draw(st.integers(min_value=1, max_value=40)),
                arrival_time_s=draw(
                    st.floats(
                        min_value=0.0, max_value=2.0,
                        allow_nan=False, allow_infinity=False,
                    )
                ),
                prefix_group=group,
                prefix_segments=((group, shared),) if shared else (),
            )
        )
    return requests


class TestPrefixCacheEquivalence:
    """Fast-forward must stay bit-identical with the prefix cache enabled.

    Every cache mutation (insert / hit / evict) happens inside ``step()``, so the
    parked-queue proofs extend rather than bail: these tests pin that the analytic
    jumps see exactly the stepwise trie at every decision point — including under
    tight KV budgets where admission-time eviction and preemption interleave."""

    @settings(max_examples=20, deadline=None)
    @given(
        trace=shared_prefix_traces(),
        kv_budget=st.sampled_from([256 * MB, GB, None]),
        host_budget=st.sampled_from([0, GB]),
        preemption=st.sampled_from(["recompute", "swap", "hybrid"]),
        scheduling=st.sampled_from(["fcfs", "priority", "sjf"]),
    )
    def test_random_shared_prefix_traces_bit_identical(
        self, trace, kv_budget, host_budget, preemption, scheduling
    ):
        kwargs = dict(
            prefix_caching=True,
            kv_budget_bytes=kv_budget,
            host_kv_budget_bytes=host_budget,
            preemption_policy=preemption,
            scheduling_policy=scheduling,
        )
        sched_a, stepwise = _run(trace, fast_forward=False, **kwargs)
        sched_b, fast = _run(trace, fast_forward=True, **kwargs)
        assert sched_a.clock == sched_b.clock
        assert_stats_identical(stepwise, fast)

    @pytest.mark.parametrize("trace", [
        pytest.param(
            multi_turn_chat_trace(6, 4, 8.0, seed=5), id="chat",
        ),
        pytest.param(
            agent_swarm_trace(3, 5, 4, 6.0, seed=9), id="swarm",
        ),
        pytest.param(
            rag_trace(40, 20.0, seed=2), id="rag",
        ),
        pytest.param(
            tenant_mix_trace(12, 10.0, seed=4), id="tenants",
        ),
    ])
    def test_agentic_traces_bit_identical(self, trace):
        kwargs = dict(prefix_caching=True)
        sched_a, stepwise = _run(trace, fast_forward=False, **kwargs)
        sched_b, fast = _run(trace, fast_forward=True, **kwargs)
        assert stepwise.prefix_cache_hits > 0  # the workload actually shares prefixes
        assert sched_a.clock == sched_b.clock
        assert_stats_identical(stepwise, fast)

    @pytest.mark.parametrize("preemption", ["recompute", "swap", "hybrid"])
    def test_tight_kv_eviction_churn_bit_identical(self, preemption):
        """Small device pool: admission-time eviction, preemption and cache re-publish
        all interleave; the jumps must stop at exactly the same iterations."""
        trace = agent_swarm_trace(3, 4, 4, 12.0, seed=13)
        kwargs = dict(
            prefix_caching=True,
            kv_budget_bytes=512 * MB,
            host_kv_budget_bytes=GB,
            preemption_policy=preemption,
        )
        _, stepwise = _run(trace, fast_forward=False, **kwargs)
        _, fast = _run(trace, fast_forward=True, **kwargs)
        assert stepwise.prefix_blocks_evicted > 0  # eviction actually exercised
        assert_stats_identical(stepwise, fast)

    def test_cache_off_is_seed_identical(self):
        """The default path must be byte-identical to a scheduler with no cache at all."""
        trace = generate_trace(
            50, ArrivalProcess(rate_rps=20.0), SHAREGPT_PROMPTS, SHAREGPT_OUTPUTS,
            seed=21, shared_prefix_tokens=256,
        )
        _, without = _run(trace, fast_forward=True)
        _, explicit_off = _run(trace, fast_forward=True, prefix_caching=False)
        assert_stats_identical(without, explicit_off)
        assert without.prefix_cache_hits == 0
        assert without.prefix_saved_tokens == 0

    def test_cluster_cache_affinity_bit_identical(self):
        kwargs = dict(
            mode="colocated", num_replicas=2, router="cache-affinity",
            num_requests=60, arrival_rate_rps=30.0, seed=17,
            prefix_caching=True, shared_prefix_tokens=256,
        )
        fast = simulate_cluster("liquidserve", "llama2-7b", **kwargs)
        slow = simulate_cluster(
            "liquidserve", "llama2-7b", fast_forward=False, **kwargs
        )
        assert fast.result.simulated_time_s == slow.result.simulated_time_s
        for a, b in zip(fast.replica_stats, slow.replica_stats):
            assert_stats_identical(b, a)
        assert sum(s.prefix_cache_hits for s in fast.replica_stats) > 0
        assert fast.slo == slow.slo
        assert fast.per_request == slow.per_request


class TestMixedStepTimesVectorization:
    """engine.mixed_step_times / mixed_iteration_time: one implementation, three entry
    shapes — the scalar step path, the scalar epoch path and the vectorized epoch path
    must agree bit for bit or fast-forward drifts from stepwise."""

    @pytest.mark.parametrize("system,model,tp", [
        ("liquidserve", "llama2-7b", 1),
        ("trt-fp16", "llama2-13b", 1),
        ("liquidserve", "llama2-70b", 4),
    ])
    def test_vectorized_matches_scalar_mixed_step(self, system, model, tp):
        from repro.serving.engine import PrefillChunk

        engine = ServingEngine(system, model, tp_degree=tp)
        k, batch = 9, 5
        import numpy as np

        steps = np.arange(k, dtype=np.int64)
        totals = 2000 + steps * batch
        runs = [(256, 512 + steps * 256), (96, 64 + steps * 96)]
        vectorized = engine.mixed_step_times(batch, totals, runs)
        contexts = [100, 200, 300, 400, 1000]
        for i in range(k):
            chunks = [PrefillChunk(256, 512 + i * 256), PrefillChunk(96, 64 + i * 96)]
            scalar = engine.mixed_step_time([c + i for c in contexts], chunks)
            assert scalar == float(vectorized[i])
            assert scalar == engine.mixed_iteration_time(
                batch, 2000 + i * batch, [(256, 512 + i * 256), (96, 64 + i * 96)],
                batch,
            )

    def test_pure_prefill_epoch(self):
        from repro.serving.engine import PrefillChunk
        import numpy as np

        engine = ServingEngine("liquidserve", "llama2-7b")
        steps = np.arange(6, dtype=np.int64)
        vectorized = engine.mixed_step_times(0, None, [(256, steps * 256)])
        for i in range(6):
            assert float(vectorized[i]) == engine.mixed_step_time(
                [], [PrefillChunk(256, i * 256)]
            )

    def test_no_chunks_delegates_to_decode_closed_form(self):
        import numpy as np

        engine = ServingEngine("liquidserve", "llama2-7b")
        totals = 3000 + np.arange(4, dtype=np.int64) * 7
        vectorized = engine.mixed_step_times(7, totals, [])
        for i, total in enumerate(totals):
            assert float(vectorized[i]) == engine.decode_iteration_time(7, int(total))
        with pytest.raises(ValueError):
            engine.mixed_step_times(0, None, [])


class TestFastForwardUnit:
    def _steady_scheduler(self, num_requests=3, output_tokens=50):
        scheduler = ContinuousBatchingScheduler(
            ServingEngine("liquidserve", "llama2-7b"), fast_forward=True
        )
        for i in range(num_requests):
            scheduler.submit(Request(request_id=i, prompt_tokens=64,
                                     output_tokens=output_tokens))
        while not scheduler.in_steady_decode:
            scheduler.step()
        return scheduler

    def test_not_applicable_returns_zero(self):
        scheduler = ContinuousBatchingScheduler(
            ServingEngine("liquidserve", "llama2-7b")
        )
        assert scheduler.fast_forward() == 0  # idle: nothing to advance
        scheduler.submit(Request(request_id=0, prompt_tokens=32, output_tokens=4))
        assert not scheduler.in_steady_decode  # prefill pending
        assert scheduler.fast_forward() == 0

    def test_disabled_scheduler_never_jumps(self):
        scheduler = ContinuousBatchingScheduler(
            ServingEngine("liquidserve", "llama2-7b"), fast_forward=False
        )
        scheduler.submit(Request(request_id=0, prompt_tokens=32, output_tokens=8))
        while not scheduler.in_steady_decode:
            scheduler.step()
        assert scheduler.fast_forward() == 0

    def test_jump_matches_stepwise_twin(self):
        fast = self._steady_scheduler()
        step = self._steady_scheduler()
        advanced = fast.fast_forward()
        assert advanced > 0
        for _ in range(advanced):
            step.step()
        assert fast.clock == step.clock
        assert_stats_identical(step.stats(), fast.stats())

    def test_stop_before_bounds_the_jump(self):
        probe = self._steady_scheduler()
        full = probe.fast_forward()
        assert full > 1
        horizon_clock = probe.clock

        fast = self._steady_scheduler()
        start = fast.clock
        horizon = start + (horizon_clock - start) * 0.25
        advanced = fast.fast_forward(stop_before=horizon)
        assert 0 < advanced < full
        # Every advanced iteration started before the horizon; the next would not have.
        step = self._steady_scheduler()
        for _ in range(advanced - 1):
            step.step()
        assert step.clock < horizon
        step.step()
        assert step.clock == fast.clock
        assert step.clock >= horizon or advanced == full

    def test_horizon_already_passed_returns_zero(self):
        scheduler = self._steady_scheduler()
        assert scheduler.fast_forward(stop_before=scheduler.clock) == 0

    def test_completion_retires_requests_and_frees_blocks(self):
        scheduler = self._steady_scheduler(num_requests=2, output_tokens=10)
        advanced = scheduler.fast_forward()
        assert advanced > 0
        assert not scheduler.has_work  # both finished inside the chained jump
        assert scheduler.kv_cache.num_used_blocks == 0
        stats = scheduler.stats()
        assert stats.completed_requests == 2
        assert stats.generated_tokens == 20


class TestDecodeCostClosedForm:
    """Pin the engine's hoisted decode closed form to the attention module's formula.

    ``_decode_step_core`` restates the arithmetic of
    :func:`decode_attention_cost_from_totals` with hoisted scalars for speed; if either
    side drifts (a formula tweak, a changed bandwidth-efficiency default), decode-only
    iterations would silently diverge from mixed decode+prefill iterations.  Exact
    equality here makes that drift a test failure."""

    @pytest.mark.parametrize("system,model,tp", [
        ("liquidserve", "llama2-7b", 1),
        ("trt-fp16", "llama2-13b", 1),
        ("liquidserve", "llama2-70b", 4),
    ])
    def test_decode_iteration_time_matches_attention_module(self, system, model, tp):
        engine = ServingEngine(system, model, tp_degree=tp)
        for batch, total in [(1, 1), (7, 4096), (29, 29 * 800)]:
            attention = decode_attention_cost_from_totals(
                engine.model,
                engine.device.spec,
                batch,
                float(total),
                kv_bytes_per_element(engine.system.kv_format),
                attention_efficiency=engine.system.attention_efficiency,
                tp_degree=tp,
            ).total
            per_layer = (
                engine.layer_gemm_time(batch)
                + attention
                + engine.layer_others_time(batch)
                + 2.0 * engine.allreduce_time(batch)
            )
            expected = per_layer * engine.model.num_layers + engine.lm_head_time(batch)
            assert engine.decode_iteration_time(batch, total) == expected
            # ...and the vectorized form agrees element-wise, bit for bit.
            assert float(engine.decode_iteration_times(batch, [total])[0]) == expected


class TestOutstandingTokensCounter:
    @settings(max_examples=15, deadline=None)
    @given(
        trace=random_traces(),
        kv_budget=st.sampled_from([256 * MB, GB, None]),
        preemption=st.sampled_from(["recompute", "swap", "hybrid"]),
    )
    def test_counter_matches_scan_at_every_step(self, trace, kv_budget, preemption):
        scheduler = ContinuousBatchingScheduler(
            ServingEngine("liquidserve", "llama2-7b"),
            kv_budget_bytes=kv_budget,
            host_kv_budget_bytes=GB,
            preemption_policy=preemption,
            fast_forward=False,
        )
        for request in sorted(trace, key=lambda r: r.arrival_time_s):
            scheduler.submit(copy.copy(request))
            assert scheduler.outstanding_tokens == scheduler._outstanding_tokens_scan()
        while scheduler.has_work:
            scheduler.step()
            assert scheduler.outstanding_tokens == scheduler._outstanding_tokens_scan()
        assert scheduler.outstanding_tokens == 0

    def test_counter_tracks_fast_forward_jumps(self):
        scheduler = ContinuousBatchingScheduler(
            ServingEngine("liquidserve", "llama2-7b")
        )
        scheduler.submit(Request(request_id=0, prompt_tokens=64, output_tokens=30))
        while not scheduler.in_steady_decode:
            scheduler.step()
            assert scheduler.outstanding_tokens == scheduler._outstanding_tokens_scan()
        assert scheduler.fast_forward() > 0
        assert scheduler.outstanding_tokens == scheduler._outstanding_tokens_scan() == 0


class TestClusterEquivalence:
    @pytest.mark.parametrize("router", ["round-robin", "least-tokens", "least-kv"])
    def test_colocated_cluster_bit_identical(self, router):
        kwargs = dict(
            mode="colocated", num_replicas=3, router=router,
            num_requests=60, arrival_rate_rps=40.0, seed=11,
        )
        fast = simulate_cluster("liquidserve", "llama2-7b", **kwargs)
        slow = simulate_cluster(
            "liquidserve", "llama2-7b", fast_forward=False, **kwargs
        )
        assert fast.result.simulated_time_s == slow.result.simulated_time_s
        assert fast.result.generated_tokens == slow.result.generated_tokens
        assert fast.result.completed_requests == slow.result.completed_requests
        for a, b in zip(fast.replica_stats, slow.replica_stats):
            assert_stats_identical(b, a)
        # The merged request order is canonical, so the order-sensitive float sums of the
        # cluster-level SLO report (and the per-request list itself) match bit for bit —
        # not just after sorting.
        assert fast.slo == slow.slo
        assert fast.per_request == slow.per_request
        assert [r.request_id for r in fast.result.requests] == [
            r.request_id for r in slow.result.requests
        ]

    def test_disaggregated_cluster_bit_identical(self):
        kwargs = dict(
            mode="disaggregated", num_prefill_replicas=1, num_decode_replicas=2,
            num_requests=50, arrival_rate_rps=30.0, seed=13,
        )
        fast = simulate_cluster("liquidserve", "llama2-7b", **kwargs)
        slow = simulate_cluster(
            "liquidserve", "llama2-7b", fast_forward=False, **kwargs
        )
        assert fast.result.simulated_time_s == slow.result.simulated_time_s
        assert fast.result.kv_handoffs == slow.result.kv_handoffs
        assert fast.result.kv_handoff_s == slow.result.kv_handoff_s
        for a, b in zip(fast.replica_stats, slow.replica_stats):
            assert_stats_identical(b, a)
        assert fast.slo == slow.slo
        assert fast.per_request == slow.per_request

    @pytest.mark.parametrize("mode_kwargs", [
        dict(mode="colocated", num_replicas=3, router="least-tokens"),
        dict(mode="disaggregated", num_prefill_replicas=2, num_decode_replicas=2),
    ])
    def test_prefill_heavy_cluster_bit_identical(self, mode_kwargs):
        """Mixed-phase jumps under the cluster drivers: prefill-heavy traffic keeps the
        prefill replicas (and, co-located, every replica) inside chunk schedules, the
        regime the event-indexed horizons must bound exactly."""
        kwargs = dict(
            num_requests=60, arrival_rate_rps=24.0, seed=7,
            prompt_lengths=LengthDistribution.lognormal(
                median=1024.0, sigma=0.9, maximum=4096
            ),
            output_lengths=LengthDistribution.lognormal(
                median=64.0, sigma=0.8, maximum=512
            ),
            **mode_kwargs,
        )
        fast = simulate_cluster("liquidserve", "llama2-7b", **kwargs)
        slow = simulate_cluster(
            "liquidserve", "llama2-7b", fast_forward=False, **kwargs
        )
        assert fast.result.simulated_time_s == slow.result.simulated_time_s
        assert fast.result.kv_handoff_s == slow.result.kv_handoff_s
        for a, b in zip(fast.replica_stats, slow.replica_stats):
            assert_stats_identical(b, a)
        assert fast.slo == slow.slo
        assert fast.per_request == slow.per_request

    def test_colocated_cluster_merged_slo_bit_identical_under_load(self):
        """The regression scenario from review: a jumping replica used to drain a whole
        batch of completions past other replicas' clocks, reordering the merged
        population and flipping the last ULP of its mean latencies."""
        kwargs = dict(
            mode="colocated", num_replicas=3, router="least-tokens",
            num_requests=80, arrival_rate_rps=60.0, seed=11,
        )
        fast = simulate_cluster("liquidserve", "llama2-7b", **kwargs)
        slow = simulate_cluster(
            "liquidserve", "llama2-7b", fast_forward=False, **kwargs
        )
        assert fast.slo == slow.slo
        assert fast.slo.mean_latency_s == slow.slo.mean_latency_s
