"""Tests for the register-level dequantization paths (repro.dequant).

The central claims under test:

* the LQQ path issues exactly 7 instructions per 8 elements and reproduces Equation 12
  bit-exactly for every reachable (code, scale, offset) combination;
* the QServe path reproduces its reference dequantization but costs an order of magnitude
  more CUDA-core instructions (the Section 3.2 bottleneck);
* the measured instruction counts are exactly the alphas the cost model consumes, and only
  LQQ's alpha fits inside the Section 3.3 budget.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.costmodel import alpha_budget
from repro.dequant import (
    LQQ_INSTRUCTIONS_PER_REGISTER,
    lqq_alpha,
    lqq_dequant_register,
    lqq_dequant_registers,
    measure_qserve_instructions,
    qserve_alpha,
    qserve_dequant_register,
    registers_to_int8,
    w4a16_alpha,
    w4a16_dequant_register,
)
from repro.gpu import H100
from repro.isa import InstructionStats
from repro.layout import pack_u4_interleaved

codes8 = hnp.arrays(np.uint8, shape=(1, 8), elements=st.integers(0, 15))


def _int8_of(lo, hi):
    return np.concatenate([
        registers_to_int8(np.atleast_1d(lo)).reshape(-1),
        registers_to_int8(np.atleast_1d(hi)).reshape(-1),
    ])


class TestLqqRegisterPath:
    def test_instruction_count_is_seven(self):
        stats = InstructionStats()
        lqq_dequant_register(np.uint32(0), 1, 128, stats)
        assert stats.total_instructions == LQQ_INSTRUCTIONS_PER_REGISTER == 7
        assert stats.count("imad.u32") == 2
        assert stats.count("xor.b32") == 2

    def test_alpha(self):
        assert lqq_alpha() == pytest.approx(7 / 8)

    @given(codes8, st.integers(1, 16), st.integers(9, 247))
    @settings(max_examples=200, deadline=None)
    def test_bit_exact_equation12(self, codes, scale, offset):
        """For every reachable (code, s, a): register path == Equation 12 == true INT8 value,
        provided the Section-4 precondition q*s + a <= 255 holds."""
        values = codes[0]
        if int(values.max()) * scale + offset > 255:
            return  # outside the proof's precondition (cannot arise from lqq_quantize)
        reg = pack_u4_interleaved(codes)[0]
        lo, hi = lqq_dequant_register(reg, scale, offset)
        got = _int8_of(lo, hi)
        expected = ((values.astype(np.int32) * scale + offset) ^ 0x80).astype(np.uint8).view(np.int8)
        assert np.array_equal(got, expected)
        # And reinterpreting as INT8 equals the mathematical dequantization q*s + (a - 128).
        assert np.array_equal(got.astype(np.int32), values.astype(np.int32) * scale + (offset - 128))

    def test_scale_and_offset_validated(self):
        with pytest.raises(ValueError):
            lqq_dequant_register(np.uint32(0), 0, 128)
        with pytest.raises(ValueError):
            lqq_dequant_register(np.uint32(0), 17, 128)
        with pytest.raises(ValueError):
            lqq_dequant_register(np.uint32(0), 4, 256)

    def test_vectorized_multi_register(self, rng):
        codes = rng.integers(0, 16, (6, 8)).astype(np.uint8)
        regs = pack_u4_interleaved(codes)
        scales = np.array([1, 2, 4, 8, 16, 3])
        offsets = np.array([9, 50, 100, 128, 14, 60])
        out = lqq_dequant_registers(regs, scales, offsets)
        assert out.shape == (6, 2)
        for i in range(6):
            lo, hi = lqq_dequant_register(regs[i], int(scales[i]), int(offsets[i]))
            assert out[i, 0] == lo and out[i, 1] == hi

    def test_instruction_stream_groups_by_scale(self, rng):
        """One instruction sequence per distinct (scale, offset) group, as a SIMT trace would."""
        regs = pack_u4_interleaved(rng.integers(0, 16, (4, 8)).astype(np.uint8))
        stats = InstructionStats()
        lqq_dequant_registers(regs, np.array([2, 2, 3, 3]), np.array([100, 100, 100, 100]), stats)
        assert stats.total_instructions == 2 * 7


class TestQServeRegisterPath:
    @given(codes8, st.integers(1, 16), st.integers(0, 15))
    @settings(max_examples=200, deadline=None)
    def test_matches_reference(self, codes, scale, zero):
        values = codes[0]
        reg = pack_u4_interleaved(codes)[0]
        lo, hi = qserve_dequant_register(reg, scale, zero)
        got = _int8_of(lo, hi)
        expected = (values.astype(np.int32) * scale - scale * zero).astype(np.int8)
        assert np.array_equal(got, expected)

    def test_is_an_order_of_magnitude_more_expensive_than_lqq(self):
        assert measure_qserve_instructions() >= 30
        assert qserve_alpha() / lqq_alpha() > 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            qserve_dequant_register(np.uint32(0), 0, 0)
        with pytest.raises(ValueError):
            qserve_dequant_register(np.uint32(0), 1, 16)


class TestW4A16Path:
    def test_numeric(self):
        codes = np.arange(8, dtype=np.uint8)[None, :]
        reg = pack_u4_interleaved(codes)[0]
        out = w4a16_dequant_register(reg, scale_fp=0.5, zero_fp=-1.0)
        assert np.allclose(np.sort(out.reshape(-1)), np.arange(8) * 0.5 - 1.0)

    def test_alpha_cheap_but_nonzero(self):
        assert 0.5 < w4a16_alpha() < 2.0


class TestAlphaBudgets:
    """Section 3.3: only LQQ's alpha fits under the overlap budget; QServe's does not leave
    room for the auxiliary work the kernel must also issue."""

    def test_lqq_fits_memory_bound_budget(self):
        assert lqq_alpha() < alpha_budget(H100, "int4", "int8")

    def test_lqq_fits_compute_bound_budget(self):
        assert lqq_alpha() < alpha_budget(H100, "int4", "int8", batch_size=150)

    def test_qserve_alpha_close_to_or_above_budget(self):
        budget = alpha_budget(H100, "int4", "int8")
        assert qserve_alpha() > 0.85 * budget

    def test_headroom_ratio(self):
        """LQQ uses less than a fifth of the budget, leaving CUDA cores free for addressing."""
        assert lqq_alpha() / alpha_budget(H100, "int4", "int8") < 0.2
