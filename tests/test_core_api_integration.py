"""Tests for the top-level API plus cross-module integration scenarios."""

import numpy as np
import pytest

from repro import (
    LiquidGemmKernel,
    compare_kernels,
    quantize_weights,
    w4a8_gemm,
)
from repro.quant import (
    lqq_quantize,
    quantize_activation_per_token,
    smooth_and_quantize,
)
from repro.serving import ServingEngine


class TestPublicApi:
    def test_quantize_weights_prepared(self, medium_weight):
        prepared = quantize_weights(medium_weight)
        assert prepared.kernel == "liquidgemm"
        assert prepared.compression_ratio() > 3.5
        assert "lqq" in prepared.payload and "packed" in prepared.payload

    def test_w4a8_gemm_from_matrix(self, rng):
        w = rng.normal(0, 0.02, (128, 256))
        x = rng.normal(0, 1.0, (8, 256))
        result = w4a8_gemm(x, w)
        assert result.output.shape == (8, 128)
        assert result.error["relative_fro"] < 0.15
        assert result.report.latency_s > 0

    def test_w4a8_gemm_from_prepared(self, rng):
        w = rng.normal(0, 0.02, (128, 256))
        prepared = quantize_weights(w)
        x = rng.normal(0, 1.0, (4, 256))
        a = w4a8_gemm(x, prepared)
        b = w4a8_gemm(x, w)
        assert np.allclose(a.output, b.output)

    def test_compare_kernels_default_set(self):
        reports = compare_kernels(64, 4096, 4096)
        assert set(reports) == {"fp16", "w8a8", "fp8", "w4a16", "qserve-w4a8", "liquidgemm"}
        assert all(r.latency_s > 0 for r in reports.values())

    def test_compare_kernels_subset(self):
        reports = compare_kernels(16, 1024, 1024, kernels=["fp16", "liquidgemm"])
        assert set(reports) == {"fp16", "liquidgemm"}

    def test_version_exported(self):
        import repro

        assert repro.__version__


class TestSmoothQuantToLiquidGemmIntegration:
    def test_smoothing_then_lqq_then_gemm(self, rng):
        """Full offline pipeline of Section 6: SmoothQuant grid search -> LQQ -> W4A8 GEMM."""
        k = 128
        w = rng.normal(0, 0.02, (64, k))
        x_calib = rng.normal(0, 1.0, (32, k))
        outliers = rng.choice(k, 3, replace=False)
        x_calib[:, outliers] *= 20.0

        qw, smooth = smooth_and_quantize(x_calib, w, lqq_quantize, alphas=[0.4, 0.6])
        kernel = LiquidGemmKernel()
        x = rng.normal(0, 1.0, (8, k))
        x[:, outliers] *= 20.0

        # Apply the smoothing to the activations and run the W4A8 GEMM on the smoothed weights.
        from repro.kernels import PreparedWeights
        from repro.layout import pack_weight_matrix

        prepared = PreparedWeights(
            kernel=kernel.name,
            original=w * smooth.smooth_scale[None, :],
            payload={"lqq": qw, "packed": pack_weight_matrix(qw.q_u4)},
            deployed_bytes=qw.memory_bytes(),
        )
        y = kernel.run(x / smooth.smooth_scale[None, :], prepared)
        reference = x @ w.T
        rel = np.linalg.norm(y - reference) / np.linalg.norm(reference)
        assert rel < 0.2

    def test_activation_quantization_consistent_with_kernel(self, rng):
        x = rng.normal(0, 1.0, (8, 64))
        qa = quantize_activation_per_token(x)
        assert np.max(np.abs(qa.q_i8.astype(np.float64) * qa.scale_tok - x)) < qa.scale_tok.max()


class TestKernelToServingIntegration:
    def test_engine_uses_registered_kernel_latencies(self):
        """The serving engine's per-layer GEMM time must equal the sum of the kernel's own
        estimates over the layer shapes — no hidden scaling."""
        from repro.workloads import decode_layer_gemms

        engine = ServingEngine("liquidserve", "llama2-7b")
        gemms = decode_layer_gemms(engine.model, 64)
        expected = sum(
            engine.kernel.estimate(s, engine.device).latency_s for s in gemms.all()
        )
        assert engine.layer_gemm_time(64) == pytest.approx(expected, rel=1e-6)

    def test_faster_kernel_means_higher_throughput(self):
        liquid = ServingEngine("liquidserve", "llama2-70b").throughput(64)
        slow = ServingEngine("liquidserve-wo", "llama2-70b").throughput(64)
        assert liquid.tokens_per_second > slow.tokens_per_second

    def test_gemm_speedup_propagates_proportionally_at_small_batch(self):
        """At small batch the step is GEMM-dominated, so kernel gains show up end to end."""
        engine_fast = ServingEngine("liquidserve", "llama2-7b")
        engine_slow = ServingEngine("liquidserve-wo", "llama2-7b")
        fast = engine_fast.decode_step_time(4, 128)
        slow = engine_slow.decode_step_time(4, 128)
        assert slow / fast > 1.0

    def test_end_to_end_numeric_layer(self, rng):
        """Numerically execute one decode layer's GEMMs with the LiquidGEMM kernel."""
        from repro.workloads import decode_layer_gemms
        from repro.serving import get_model

        model = get_model("llama2-7b")
        gemms = decode_layer_gemms(model, 2)
        kernel = LiquidGemmKernel()
        hidden = rng.normal(0, 1.0, (2, model.hidden_size))
        w_qkv = rng.normal(0, 0.02, (gemms.qkv.n, gemms.qkv.k))
        y = kernel.run(hidden, kernel.prepare_weights(w_qkv))
        reference = hidden @ w_qkv.T
        assert np.linalg.norm(y - reference) / np.linalg.norm(reference) < 0.15
