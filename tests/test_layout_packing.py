"""Tests for nibble/byte packing (repro.layout.packing)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.layout import (
    INTERLEAVED_NIBBLE_ORDER,
    pack_u4_interleaved,
    pack_u4_sequential,
    pack_u8_to_u32,
    unpack_u32_to_u8,
    unpack_u4_interleaved,
    unpack_u4_sequential,
)

u4_groups = hnp.arrays(np.uint8, shape=st.tuples(st.integers(1, 16), st.just(8)),
                       elements=st.integers(0, 15))


class TestSequentialPacking:
    @given(u4_groups)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, values):
        assert np.array_equal(unpack_u4_sequential(pack_u4_sequential(values)), values)

    def test_known_value(self):
        values = np.arange(8, dtype=np.uint8)[None, :]
        assert pack_u4_sequential(values)[0] == 0x76543210

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            pack_u4_sequential(np.full((1, 8), 16, dtype=np.int32))

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            pack_u4_sequential(np.zeros((1, 7), dtype=np.uint8))


class TestInterleavedPacking:
    @given(u4_groups)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, values):
        assert np.array_equal(unpack_u4_interleaved(pack_u4_interleaved(values)), values)

    def test_order_is_a_permutation(self):
        assert sorted(INTERLEAVED_NIBBLE_ORDER) == list(range(8))

    def test_low_nibbles_hold_first_four_elements(self):
        """Figure 8: AND 0x0F0F0F0F must expose w0..w3, one per byte."""
        values = np.arange(8, dtype=np.uint8)[None, :]
        reg = int(pack_u4_interleaved(values)[0])
        low = reg & 0x0F0F0F0F
        assert [(low >> (8 * i)) & 0xFF for i in range(4)] == [0, 1, 2, 3]

    def test_high_nibbles_hold_last_four_elements(self):
        """Figure 8: (AND 0xF0F0F0F0) >> 4 must expose w4..w7, one per byte."""
        values = np.arange(8, dtype=np.uint8)[None, :]
        reg = int(pack_u4_interleaved(values)[0])
        high = (reg & 0xF0F0F0F0) >> 4
        assert [(high >> (8 * i)) & 0xFF for i in range(4)] == [4, 5, 6, 7]

    @given(u4_groups)
    @settings(max_examples=30, deadline=None)
    def test_differs_from_sequential_in_general(self, values):
        seq = pack_u4_sequential(values)
        inter = pack_u4_interleaved(values)
        # They agree only when the permuted nibbles happen to coincide; for the identity
        # pattern 0..7 they must differ.
        identity = np.arange(8, dtype=np.uint8)[None, :]
        assert pack_u4_sequential(identity)[0] != pack_u4_interleaved(identity)[0]
        assert seq.shape == inter.shape


class TestBytePacking:
    @given(hnp.arrays(np.uint8, shape=st.tuples(st.integers(1, 8), st.just(4)),
                      elements=st.integers(0, 255)))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, values):
        assert np.array_equal(unpack_u32_to_u8(pack_u8_to_u32(values)), values)

    def test_known_value(self):
        assert pack_u8_to_u32(np.array([[0x11, 0x22, 0x33, 0x44]]))[0] == 0x44332211

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            pack_u8_to_u32(np.full((1, 4), 256, dtype=np.int32))

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            pack_u8_to_u32(np.zeros((1, 3), dtype=np.uint8))
