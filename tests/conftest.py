"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_weight(rng):
    """A small (N, K) FP weight matrix with realistic magnitude."""
    return rng.normal(0.0, 0.02, (128, 256))


@pytest.fixture
def medium_weight(rng):
    """A weight matrix large enough to span several dual-MMA tiles and groups."""
    return rng.normal(0.0, 0.02, (256, 512))


@pytest.fixture
def activations(rng):
    return rng.normal(0.0, 1.0, (16, 256))
