"""Edge-case coverage for serving metrics: percentile interpolation vs. numpy, single-token
TPOT exclusion, empty populations, and the queue-time decomposition."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serving import Request, SloSpec, compute_slo_report, percentile, request_metrics


class TestPercentileProperty:
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=50,
        ),
        q=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_matches_numpy_linear_interpolation(self, values, q):
        ours = percentile(values, q)
        theirs = float(np.percentile(np.array(values), q, method="linear"))
        assert ours == pytest.approx(theirs, rel=1e-9, abs=1e-9)

    def test_empty_population_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=50,
        ),
        q=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_sorted_values_fast_path_matches(self, values, q):
        """percentile(sorted, sorted_values=True) is the sort-once fast path — it must
        agree exactly with the sorting call on the unsorted population."""
        assert percentile(sorted(values), q, sorted_values=True) == percentile(values, q)


class TestSortOnceSloReport:
    """Regression pin for the sort-once slo_report: identical to per-call sorting."""

    def _population(self, seed, n=40):
        rng = np.random.default_rng(seed)
        requests = []
        clock = 0.0
        for i in range(n):
            arrival = clock
            clock += float(rng.exponential(0.05))
            first = arrival + float(rng.exponential(0.2))
            out_tokens = int(rng.integers(1, 50))
            done = first + out_tokens * float(rng.exponential(0.01))
            requests.append(Request(
                request_id=i, prompt_tokens=16, output_tokens=out_tokens,
                arrival_time_s=arrival, first_scheduled_time_s=arrival,
                first_token_time_s=first, completion_time_s=done,
            ))
        return requests

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_report_matches_per_call_sorting_reference(self, seed):
        requests = self._population(seed)
        report = compute_slo_report(requests, makespan_s=100.0)
        metrics = request_metrics(requests)
        ttfts = [m.ttft_s for m in metrics]
        tpots = [m.tpot_s for m in metrics if m.output_tokens > 1]
        latencies = [m.latency_s for m in metrics]
        # The historical implementation: unsorted populations, percentile sorts per call
        # and the means sum in completion order.
        assert report.mean_ttft_s == sum(ttfts) / len(ttfts)
        assert report.p50_ttft_s == percentile(ttfts, 50)
        assert report.p99_ttft_s == percentile(ttfts, 99)
        assert report.mean_tpot_s == sum(tpots) / len(tpots)
        assert report.p50_tpot_s == percentile(tpots, 50)
        assert report.p99_tpot_s == percentile(tpots, 99)
        assert report.mean_latency_s == sum(latencies) / len(latencies)
        assert report.p50_latency_s == percentile(latencies, 50)
        assert report.p99_latency_s == percentile(latencies, 99)


def completed_request(request_id, *, arrival=0.0, scheduled=None, first=1.0, done=2.0,
                      output_tokens=10):
    return Request(
        request_id=request_id,
        prompt_tokens=16,
        output_tokens=output_tokens,
        arrival_time_s=arrival,
        first_scheduled_time_s=scheduled,
        first_token_time_s=first,
        completion_time_s=done,
        generated=output_tokens,
    )


class TestSingleTokenTpot:
    def test_single_token_request_has_zero_tpot(self):
        metrics = request_metrics([
            completed_request(0, first=1.0, done=1.0, output_tokens=1)
        ])
        assert metrics[0].tpot_s == 0.0

    def test_single_token_requests_excluded_from_tpot_percentiles(self):
        """One-token answers meet any TPOT SLO vacuously but must not drag the TPOT
        distribution toward zero."""
        slow = completed_request(0, first=1.0, done=11.0, output_tokens=11)  # tpot 1.0
        instant = completed_request(1, first=1.0, done=1.0, output_tokens=1)  # tpot 0.0
        report = compute_slo_report([slow, instant], makespan_s=11.0)
        assert report.completed == 2
        assert report.mean_tpot_s == pytest.approx(1.0)
        assert report.p50_tpot_s == pytest.approx(1.0)
        assert report.p99_tpot_s == pytest.approx(1.0)

    def test_single_token_request_still_counts_toward_goodput(self):
        instant = completed_request(0, first=0.5, done=0.5, output_tokens=1)
        report = compute_slo_report([instant], SloSpec(ttft_s=1.0, tpot_s=0.01),
                                    makespan_s=1.0)
        assert report.slo_attained == 1
        assert report.goodput_rps == pytest.approx(1.0)


class TestEmptyPopulation:
    def test_all_fields_degrade_to_zero(self):
        report = compute_slo_report([], makespan_s=5.0)
        assert report.completed == 0
        assert report.attainment == 0.0
        assert report.goodput_rps == 0.0
        assert report.mean_ttft_s == 0.0
        assert report.p50_ttft_s == report.p99_ttft_s == 0.0
        assert report.mean_tpot_s == report.p50_tpot_s == report.p99_tpot_s == 0.0
        assert report.mean_latency_s == report.p50_latency_s == report.p99_latency_s == 0.0
        assert report.mean_queue_time_s == 0.0

    def test_incomplete_requests_are_skipped(self):
        in_flight = Request(0, prompt_tokens=16, output_tokens=8,
                            first_token_time_s=1.0, completion_time_s=None)
        assert request_metrics([in_flight]) == []

    def test_zero_makespan_goodput_guarded(self):
        report = compute_slo_report([], makespan_s=0.0)
        assert report.goodput_rps == 0.0


class TestQueueTime:
    def test_queue_time_measures_arrival_to_first_scheduled(self):
        r = completed_request(0, arrival=1.0, scheduled=1.25, first=2.0, done=3.0)
        [m] = request_metrics([r])
        assert m.queue_time_s == pytest.approx(0.25)
        assert m.ttft_s == pytest.approx(1.0)
        report = compute_slo_report([r], makespan_s=3.0)
        assert report.mean_queue_time_s == pytest.approx(0.25)

    def test_queue_time_never_exceeds_ttft(self):
        rs = [completed_request(i, arrival=0.1 * i, scheduled=0.1 * i + 0.05,
                                first=0.1 * i + 0.5, done=0.1 * i + 1.0)
              for i in range(5)]
        for m in request_metrics(rs):
            assert 0.0 <= m.queue_time_s <= m.ttft_s

    def test_missing_first_scheduled_defaults_to_zero(self):
        """Foreign request-like objects without the timestamp still summarize."""
        class Legacy:
            request_id = 0
            arrival_time_s = 0.0
            first_token_time_s = 1.0
            completion_time_s = 2.0
            output_tokens = 4
        [m] = request_metrics([Legacy()])
        assert m.queue_time_s == 0.0
        assert m.preemptions == 0
