"""Tests for the analytical cost model and roofline analysis (repro.costmodel)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.costmodel import (
    GemmShape,
    KernelCostParams,
    PipelineMode,
    STANDARD_CONFIGS,
    alpha_budget,
    gemm_cost,
    ridge_points,
    roofline_curve,
    transition_batch_size,
)
from repro.gpu import A100, H100, H800


def params(**overrides):
    base = dict(
        name="test",
        weight_precision="int4",
        act_precision="int8",
        mma_precision="int8",
        alpha=0.875,
        pipeline=PipelineMode.FULL_OVERLAP,
        tile_m=128,
        tile_n=128,
        tile_k=64,
        bandwidth_efficiency=1.0,
        tensor_efficiency=1.0,
        launch_overhead_s=0.0,
        epilogue_ops_per_output=0.0,
    )
    base.update(overrides)
    return KernelCostParams(**base)


class TestGemmShape:
    def test_properties(self):
        s = GemmShape(8, 64, 128)
        assert s.weight_elements == 64 * 128
        assert s.macs == 8 * 64 * 128
        assert s.flops == 2 * s.macs

    def test_validation(self):
        with pytest.raises(ValueError):
            GemmShape(0, 1, 1)


class TestKernelCostParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            params(pipeline="bogus")
        with pytest.raises(ValueError):
            params(tensor_efficiency=0.0)
        with pytest.raises(ValueError):
            params(alpha=-1.0)


class TestSection33Numbers:
    """The model must reproduce the paper's §3.3 analysis from the Figure 1 metrics."""

    def test_w4a8_transition_is_150_on_h100(self):
        assert transition_batch_size(H100, "int4", "int8") == pytest.approx(150, abs=1)

    def test_w8a8_transition_is_300_on_h100(self):
        assert transition_batch_size(H100, "int8", "int8") == pytest.approx(300, abs=1)

    def test_w8a8_transition_is_156_on_a100(self):
        assert transition_batch_size(A100, "int8", "int8") == pytest.approx(156, abs=1)

    def test_alpha_budget_memory_bound(self):
        assert alpha_budget(H100, "int4", "int8") == pytest.approx(5.07, abs=0.05)

    def test_alpha_budget_compute_bound_at_150(self):
        assert alpha_budget(H100, "int4", "int8", batch_size=150) == pytest.approx(5.07, abs=0.05)

    def test_w4a8_halves_the_w8a8_threshold(self):
        w4 = transition_batch_size(H100, "int4", "int8")
        w8 = transition_batch_size(H100, "int8", "int8")
        assert w4 == pytest.approx(w8 / 2)


class TestGemmCost:
    def test_memory_bound_at_small_batch(self):
        cost = gemm_cost(GemmShape(4, 8192, 4096), H800, params())
        assert cost.limited_by == "memory"
        assert cost.total == pytest.approx(cost.t_load, rel=1e-6)

    def test_compute_bound_at_large_batch(self):
        cost = gemm_cost(GemmShape(512, 8192, 4096), H800, params(tile_m=256))
        assert cost.limited_by == "tensor_cores"

    def test_serial_dequant_adds_dequant_to_mma(self):
        shape = GemmShape(256, 8192, 4096)
        overlap = gemm_cost(shape, H800, params(tile_m=256, alpha=4.6))
        serial = gemm_cost(shape, H800, params(tile_m=256, alpha=4.6,
                                               pipeline=PipelineMode.SERIAL_DEQUANT))
        assert serial.total > overlap.total

    def test_no_overlap_is_worst(self):
        shape = GemmShape(256, 8192, 4096)
        results = {
            mode: gemm_cost(shape, H800, params(tile_m=256, alpha=2.0, pipeline=mode)).total
            for mode in PipelineMode.ALL
        }
        assert results[PipelineMode.NO_OVERLAP] >= results[PipelineMode.SERIAL_DEQUANT]
        assert results[PipelineMode.SERIAL_DEQUANT] >= results[PipelineMode.FULL_OVERLAP]

    def test_m_tiles_scaling(self):
        small = gemm_cost(GemmShape(128, 4096, 4096), H800, params())
        large = gemm_cost(GemmShape(256, 4096, 4096), H800, params())
        assert large.m_tiles == 2 * small.m_tiles
        assert large.total == pytest.approx(2 * small.total, rel=1e-6)

    def test_alpha_increases_dequant_time_only(self):
        shape = GemmShape(64, 4096, 4096)
        cheap = gemm_cost(shape, H800, params(alpha=1.0))
        pricey = gemm_cost(shape, H800, params(alpha=10.0))
        assert pricey.t_dequant == pytest.approx(10 * cheap.t_dequant, rel=1e-6)
        assert pricey.t_load == pytest.approx(cheap.t_load, rel=1e-6)
        assert pricey.t_mma == pytest.approx(cheap.t_mma, rel=1e-6)

    def test_weight_precision_halving_halves_load_time(self):
        shape = GemmShape(64, 4096, 4096)
        w4 = gemm_cost(shape, H800, params(weight_precision="int4"))
        w8 = gemm_cost(shape, H800, params(weight_precision="int8"))
        assert w8.t_load == pytest.approx(2 * w4.t_load, rel=1e-6)

    def test_launch_overhead_additive(self):
        shape = GemmShape(8, 512, 512)
        without = gemm_cost(shape, H800, params())
        with_overhead = gemm_cost(shape, H800, params(launch_overhead_s=1e-5))
        assert with_overhead.total - without.total == pytest.approx(1e-5, rel=1e-6)

    @given(st.integers(1, 512), st.integers(1, 8), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_problem_size(self, m, n_blocks, k_blocks):
        """Cost never decreases when the problem grows in any dimension."""
        n, k = 256 * n_blocks, 256 * k_blocks
        p = params()
        base = gemm_cost(GemmShape(m, n, k), H800, p).total
        assert gemm_cost(GemmShape(m + 1, n, k), H800, p).total >= base - 1e-15
        assert gemm_cost(GemmShape(m, n + 256, k), H800, p).total >= base - 1e-15
        assert gemm_cost(GemmShape(m, n, k + 256), H800, p).total >= base - 1e-15

    def test_breakdown_dict(self):
        d = gemm_cost(GemmShape(8, 512, 512), H800, params()).as_dict()
        assert set(d) >= {"t_load", "t_dequant", "t_mma", "total"}


class TestRoofline:
    def test_ridge_points_match_transitions(self):
        ridges = ridge_points(H100)
        assert ridges["w4a8"] == pytest.approx(150, abs=1)
        assert ridges["w8a8"] == pytest.approx(300, abs=1)
        assert "w4a4" not in ridges  # H100 tensor cores cannot run INT4

    def test_a100_includes_w4a4(self):
        assert "w4a4" in ridge_points(A100)

    def test_curve_monotone_then_flat(self):
        curve = roofline_curve(H100, STANDARD_CONFIGS["w4a8"], [1, 8, 64, 150, 256, 1024])
        tops = [p.attainable_tops for p in curve]
        assert all(b >= a - 1e-6 for a, b in zip(tops, tops[1:]))
        assert tops[-1] == pytest.approx(H100.tensor_core_throughput("int8"))
        assert curve[0].bound == "memory" and curve[-1].bound == "compute"

    def test_w4a8_beats_w8a8_in_memory_bound_region(self):
        batch = [8, 32, 64]
        w4 = roofline_curve(H100, STANDARD_CONFIGS["w4a8"], batch)
        w8 = roofline_curve(H100, STANDARD_CONFIGS["w8a8"], batch)
        for p4, p8 in zip(w4, w8):
            assert p4.attainable_tops == pytest.approx(2 * p8.attainable_tops)

    def test_unsupported_precision_raises(self):
        with pytest.raises(ValueError):
            roofline_curve(H100, STANDARD_CONFIGS["w4a4"], [8])

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            roofline_curve(H100, STANDARD_CONFIGS["w8a8"], [0])
