"""Conformance suite for the unified kernel-backend layer (:mod:`repro.backend`).

Every registered :class:`~repro.serving.systems.SystemProfile` must build a
:class:`~repro.backend.KernelBackend` whose costs are finite and positive across
decode / mixed / prefill GEMM shapes, whose resolved parameters are bit-identical to
composing the kernel registry and quant formats directly, and which — injected into a
:class:`~repro.serving.engine.ServingEngine` — reproduces the default-constructed
engine's numbers exactly.
"""

import json
import math

import pytest

from repro.backend import (
    ACTIVATION_RESERVE_BYTES,
    DEFAULT_REFERENCE_KERNEL,
    KernelBackend,
    available_kernels,
    available_kv_formats,
    build_backend,
    kv_format_bytes,
    scheme_output_rmse,
    weight_quant_scheme,
)
from repro.costmodel.model import GemmShape
from repro.kernels.registry import get_kernel
from repro.quant.kvcache import KV_FORMATS, kv_bytes_per_element
from repro.serving.engine import ServingEngine
from repro.serving.metrics import SloSpec
from repro.serving.models import get_model
from repro.serving.scheduler import ContinuousBatchingScheduler
from repro.serving.systems import SYSTEMS, get_system
from repro.workloads.traces import (
    SHAREGPT_OUTPUTS,
    SHAREGPT_PROMPTS,
    ArrivalProcess,
    generate_trace,
)

ALL_SYSTEMS = sorted(SYSTEMS)

#: One GEMM shape per serving phase: a decode micro-batch, a mixed decode+chunk
#: iteration, and a compute-bound prefill.
PHASE_SHAPES = {
    "decode": GemmShape(m=8, n=4096, k=4096),
    "mixed": GemmShape(m=264, n=4096, k=4096),
    "prefill": GemmShape(m=2048, n=11008, k=4096),
}


# --------------------------------------------------------------------------- conformance
@pytest.mark.parametrize("system_name", ALL_SYSTEMS)
@pytest.mark.parametrize("phase", sorted(PHASE_SHAPES))
def test_costs_finite_and_positive(system_name, phase):
    backend = build_backend(get_system(system_name))
    shape = PHASE_SHAPES[phase]
    for t in (backend.gemm_time(shape), backend.reference_gemm_time(shape)):
        assert math.isfinite(t) and t > 0.0


@pytest.mark.parametrize("system_name", ALL_SYSTEMS)
def test_backend_fields_well_formed(system_name):
    profile = get_system(system_name)
    backend = build_backend(profile)
    assert backend.system_name == profile.name
    assert backend.kernel_name == profile.kernel
    assert backend.reference_kernel_name == DEFAULT_REFERENCE_KERNEL
    assert backend.kv_format == profile.kv_format
    assert backend.kv_bytes_per_element > 0
    assert 0 < backend.attention_efficiency <= 1.0
    assert backend.weight_bytes_per_param > 0
    assert backend.dequant_alpha >= 0.0
    assert backend.mma_precision in ("fp16", "fp8", "int8", "int4")
    assert backend.accuracy_rmse() >= 0.0


@pytest.mark.parametrize("system_name", ALL_SYSTEMS)
def test_bit_identical_to_direct_registry_composition(system_name):
    """The backend resolves exactly what the engine used to scavenge piecemeal."""
    profile = get_system(system_name)
    backend = build_backend(profile, "H800")
    spec = backend.device.spec
    assert backend.gemm_cost_params == get_kernel(profile.kernel).cost_params(spec)
    assert backend.reference_cost_params == get_kernel("fp16").cost_params(spec)
    assert backend.kv_bytes_per_element == kv_bytes_per_element(profile.kv_format)
    shape = PHASE_SHAPES["mixed"]
    from repro.costmodel.model import gemm_cost

    direct = gemm_cost(shape, spec, get_kernel(profile.kernel).cost_params(spec)).total
    assert backend.gemm_time(shape) == direct  # bit-identical, not approx


@pytest.mark.parametrize("system_name", ALL_SYSTEMS)
def test_deployed_size_accounting(system_name):
    backend = build_backend(get_system(system_name))
    model = get_model("llama2-7b")
    deployed = backend.deployed_weight_bytes(model, tp_degree=1)
    budget = backend.kv_budget_bytes(model, tp_degree=1)
    assert 0 < deployed < backend.device.spec.memory_capacity
    assert budget == int(
        max(0, backend.device.spec.memory_capacity - deployed - ACTIVATION_RESERVE_BYTES)
    )
    # TP sharding shrinks the per-GPU shard.
    assert backend.deployed_weight_bytes(model, tp_degree=2) < deployed


@pytest.mark.parametrize("system_name", ALL_SYSTEMS)
def test_describe_is_json_safe(system_name):
    payload = build_backend(get_system(system_name)).describe()
    json.dumps(payload)
    assert payload["system"] == system_name


# --------------------------------------------------------------------------- engine equality
@pytest.mark.parametrize("system_name", ALL_SYSTEMS)
def test_engine_bit_identical_with_injected_backend(system_name):
    """Injecting a pre-built backend reproduces the default engine exactly."""
    default = ServingEngine(system_name, "llama2-7b")
    injected = ServingEngine(
        system_name, "llama2-7b", backend=build_backend(get_system(system_name), "H800")
    )
    assert default.weight_memory_bytes() == injected.weight_memory_bytes()
    assert default.kv_budget_bytes() == injected.kv_budget_bytes()
    for args in ((8, 512), (64, 2048)):
        assert default.decode_step_time(*args) == injected.decode_step_time(*args)
    assert default.prefill_time(1, 1024) == injected.prefill_time(1, 1024)
    assert default.lm_head_time(64) == injected.lm_head_time(64)
    assert default.chunked_prefill_time(256, 512) == injected.chunked_prefill_time(256, 512)


def test_scheduler_run_bit_identical_with_injected_backend():
    """A full scheduler simulation is byte-identical across construction paths."""
    trace = generate_trace(
        40, ArrivalProcess(rate_rps=20.0), SHAREGPT_PROMPTS, SHAREGPT_OUTPUTS, seed=7
    )
    slo = SloSpec(ttft_s=2.0, tpot_s=0.1)
    reports = []
    for backend in (None, build_backend(get_system("liquidserve"), "H800")):
        engine = ServingEngine("liquidserve", "llama2-7b", backend=backend)
        stats = ContinuousBatchingScheduler(engine, kv_budget_bytes=2 * 2**30).run(trace)
        report = stats.slo_report(slo)
        reports.append(
            (
                stats.generated_tokens,
                stats.throughput_tokens_per_s,
                stats.num_iterations,
                stats.preemptions,
                report.p99_ttft_s,
                report.p99_tpot_s,
                report.goodput_rps,
            )
        )
    assert reports[0] == reports[1]


# --------------------------------------------------------------------------- derive + validation
def test_derive_overrides_and_names():
    base = get_system("trt-fp16")
    derived = base.derive(kernel="liquidgemm", kv_format="int4")
    assert derived.kernel == "liquidgemm" and derived.kv_format == "int4"
    assert derived.name == "trt-fp16[kernel=liquidgemm,kv_format=int4]"
    # Untouched fields carry over.
    assert derived.attention_efficiency == base.attention_efficiency


def test_derive_ignores_none_and_noops():
    base = get_system("liquidserve")
    assert base.derive(kernel=None, kv_format=None) is base
    assert base.derive(kernel=base.kernel) is base  # same value -> no change


def test_derive_rejects_unknown_fields():
    with pytest.raises(TypeError, match="unknown SystemProfile field"):
        get_system("liquidserve").derive(kernle="fp16")


def test_derived_backend_resolves_overrides():
    backend = build_backend(get_system("trt-fp16").derive(kernel="liquidgemm", kv_format="int4"))
    assert backend.kernel_name == "liquidgemm"
    assert backend.kv_bytes_per_element == kv_bytes_per_element("int4")
    assert backend.weight_quant_scheme == "lqq"


def test_unknown_kernel_error_names_system():
    bad = get_system("liquidserve").derive(kernel="no-such-kernel")
    with pytest.raises(KeyError, match="liquidserve.*no-such-kernel"):
        build_backend(bad)


def test_unknown_kv_format_rejected():
    bad = get_system("liquidserve").derive(kv_format="no-such-format")
    with pytest.raises(KeyError):
        build_backend(bad)


# --------------------------------------------------------------------------- registries + proxy
def test_registry_listings():
    assert set(available_kv_formats()) == set(KV_FORMATS)
    assert "liquidgemm" in available_kernels() and "fp16" in available_kernels()
    for fmt in available_kv_formats():
        assert kv_format_bytes(fmt) == kv_bytes_per_element(fmt)


def test_weight_quant_scheme_mapping():
    assert weight_quant_scheme("fp16") is None
    assert weight_quant_scheme("fp8") is None
    assert weight_quant_scheme("w8a8") is None
    assert weight_quant_scheme("w4a16") == "rtn-int4"
    assert weight_quant_scheme("qserve-w4a8") == "qserve"
    assert weight_quant_scheme("liquidgemm") == "lqq"
    assert weight_quant_scheme("ablation-imfp") == "lqq"


def test_scheme_output_rmse_proxy():
    assert scheme_output_rmse(None) == 0.0
    lqq = scheme_output_rmse("lqq")
    assert math.isfinite(lqq) and lqq > 0.0
    assert scheme_output_rmse("lqq") == lqq  # cached + deterministic


def test_serving_modules_do_not_import_kernel_or_quant_registries():
    """Acceptance criterion: serving/ goes through the backend layer, full stop."""
    import pathlib
    import re

    banned = re.compile(
        r"^\s*(from|import)\s+\S*(kernels\.registry|kernels\s+import|quant\.kvcache)"
    )
    serving_dir = pathlib.Path(__file__).resolve().parent.parent / "src/repro/serving"
    offenders = []
    for path in sorted(serving_dir.glob("*.py")):
        for line in path.read_text(encoding="utf-8").splitlines():
            if banned.match(line):
                offenders.append(f"{path.name}: {line.strip()}")
    assert not offenders, f"serving modules importing kernel/quant core: {offenders}"
