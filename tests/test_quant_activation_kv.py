"""Tests for activation quantization and KV-cache formats."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quant import (
    dequantize_activation,
    dequantize_kv,
    fp8_e4m3_round,
    kv_bytes_per_element,
    quantize_activation_per_token,
    quantize_kv,
)


class TestActivationQuantization:
    def test_codes_symmetric_int8(self, rng):
        x = rng.normal(0, 3.0, (8, 64))
        qa = quantize_activation_per_token(x)
        assert qa.q_i8.dtype == np.int8
        assert qa.q_i8.min() >= -127 and qa.q_i8.max() <= 127
        assert qa.scale_tok.shape == (8, 1)

    def test_roundtrip_error(self, rng):
        x = rng.normal(0, 3.0, (8, 64))
        qa = quantize_activation_per_token(x)
        x_hat = dequantize_activation(qa)
        assert np.max(np.abs(x - x_hat)) <= qa.scale_tok.max() / 2 + 1e-12

    def test_per_token_scales_independent(self):
        x = np.vstack([np.full(16, 1.0), np.full(16, 100.0)])
        qa = quantize_activation_per_token(x)
        assert qa.scale_tok[1, 0] == pytest.approx(100 * qa.scale_tok[0, 0], rel=1e-6)

    def test_smooth_scale_division(self, rng):
        x = rng.normal(0, 1.0, (4, 16))
        smooth = np.full(16, 2.0)
        qa = quantize_activation_per_token(x, smooth_scale=smooth)
        x_hat = dequantize_activation(qa)
        assert np.allclose(x_hat * 2.0, x, atol=qa.scale_tok.max() * 2.1)

    def test_requires_2d(self, rng):
        with pytest.raises(ValueError):
            quantize_activation_per_token(rng.normal(size=(16,)))

    def test_smooth_scale_shape_check(self, rng):
        with pytest.raises(ValueError):
            quantize_activation_per_token(rng.normal(size=(4, 16)), smooth_scale=np.ones(8))

    def test_memory_bytes(self, rng):
        qa = quantize_activation_per_token(rng.normal(size=(4, 16)))
        assert qa.memory_bytes() == 4 * 16 + 4 * 2


class TestFp8Rounding:
    @pytest.mark.parametrize("value", [0.0, 1.0, -1.0, 0.5, 448.0, -448.0, 2.25])
    def test_representable_values_preserved(self, value):
        assert fp8_e4m3_round(np.array([value]))[0] == pytest.approx(value)

    def test_saturation(self):
        assert fp8_e4m3_round(np.array([1e6]))[0] == pytest.approx(448.0)
        assert fp8_e4m3_round(np.array([-1e6]))[0] == pytest.approx(-448.0)

    @given(st.floats(min_value=-400, max_value=400, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_relative_error_bound(self, value):
        rounded = float(fp8_e4m3_round(np.array([value]))[0])
        if abs(value) < 2**-6:
            assert abs(rounded - value) <= 2**-9 + 1e-12  # subnormal quantum
        else:
            assert abs(rounded - value) <= abs(value) * (2**-3) / 2 * 1.001 + 1e-12

    def test_2d_input(self, rng):
        x = rng.normal(0, 10, (4, 4))
        assert fp8_e4m3_round(x).shape == (4, 4)


class TestKvCacheQuantization:
    def test_bytes_per_element(self):
        assert kv_bytes_per_element("fp16") == 2.0
        assert kv_bytes_per_element("fp8") == 1.0
        assert kv_bytes_per_element("int8") == 1.0
        assert kv_bytes_per_element("int4") == 0.5
        with pytest.raises(KeyError):
            kv_bytes_per_element("int2")

    @pytest.mark.parametrize("fmt, tolerance", [("fp16", 1e-3), ("fp8", 0.07), ("int8", 0.02), ("int4", 0.2)])
    def test_roundtrip_error_by_format(self, rng, fmt, tolerance):
        kv = rng.normal(0, 1.0, (64, 32))
        cache = quantize_kv(kv, fmt)
        kv_hat = dequantize_kv(cache)
        rel = np.linalg.norm(kv - kv_hat) / np.linalg.norm(kv)
        assert rel < tolerance

    def test_static_scale_reused(self, rng):
        kv = rng.normal(0, 1.0, (16, 8))
        static = np.full(8, 0.05)
        cache = quantize_kv(kv, "int8", scale=static)
        assert np.array_equal(cache.scale, static)

    def test_static_scale_shape_check(self, rng):
        with pytest.raises(ValueError):
            quantize_kv(rng.normal(size=(16, 8)), "int8", scale=np.ones(4))

    def test_requires_2d(self, rng):
        with pytest.raises(ValueError):
            quantize_kv(rng.normal(size=(16,)), "int8")

    def test_unknown_format(self, rng):
        with pytest.raises(KeyError):
            quantize_kv(rng.normal(size=(4, 4)), "int3")

    def test_int_codes_are_int8(self, rng):
        cache = quantize_kv(rng.normal(size=(8, 8)), "int4")
        assert cache.codes.dtype == np.int8
        assert cache.codes.min() >= -7 and cache.codes.max() <= 7
