"""Router-policy unit tests: each policy's selection rule on synthetic replica loads."""

import pytest

from repro.serving import (
    ROUTER_POLICIES,
    DisaggregatedRouter,
    LeastKvLoadRouter,
    LeastOutstandingTokensRouter,
    Request,
    RoundRobinRouter,
    RouterPolicy,
    get_router_policy,
)


class FakeScheduler:
    """Just the load surface router policies read."""

    def __init__(self, outstanding_tokens=0, kv_load=0.0):
        self.outstanding_tokens = outstanding_tokens
        self.kv_load = kv_load


class FakeReplica:
    def __init__(self, replica_id, outstanding_tokens=0, kv_load=0.0):
        self.replica_id = replica_id
        self.scheduler = FakeScheduler(outstanding_tokens, kv_load)


REQ = Request(0, prompt_tokens=64, output_tokens=8)


class TestRegistry:
    def test_known_policies(self):
        assert set(ROUTER_POLICIES) == {
            "round-robin", "least-tokens", "least-kv", "cache-affinity", "disaggregated"
        }

    def test_lookup_by_name_returns_fresh_instances(self):
        a = get_router_policy("round-robin")
        b = get_router_policy("round-robin")
        assert isinstance(a, RoundRobinRouter)
        assert a is not b  # stateful routers must not be shared between clusters

    def test_instance_passthrough(self):
        router = RoundRobinRouter()
        assert get_router_policy(router) is router

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown router policy"):
            get_router_policy("magic")

    def test_base_policy_is_abstract(self):
        with pytest.raises(NotImplementedError):
            RouterPolicy().select([FakeReplica(0)], REQ)


class TestRoundRobin:
    def test_cycles_through_replicas(self):
        router = RoundRobinRouter()
        replicas = [FakeReplica(i) for i in range(3)]
        picks = [router.select(replicas, REQ).replica_id for _ in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]

    def test_ignores_load(self):
        router = RoundRobinRouter()
        replicas = [FakeReplica(0, outstanding_tokens=10**6), FakeReplica(1)]
        assert router.select(replicas, REQ).replica_id == 0

    def test_empty_candidates_raise(self):
        with pytest.raises(ValueError):
            RoundRobinRouter().select([], REQ)

    def test_decode_cursor_independent_of_admission_cursor(self):
        """Alternating arrivals and migrations must still cycle both pools: a shared
        cursor would pin each event stream to one fixed replica."""
        router = RoundRobinRouter()
        prefill = [FakeReplica(0), FakeReplica(1)]
        decode = [FakeReplica(2), FakeReplica(3)]
        admitted, migrated = [], []
        for _ in range(4):
            admitted.append(router.select(prefill, REQ).replica_id)
            migrated.append(router.select_decode(decode, REQ).replica_id)
        assert admitted == [0, 1, 0, 1]
        assert migrated == [2, 3, 2, 3]


class TestLeastOutstandingTokens:
    def test_picks_min_load(self):
        replicas = [FakeReplica(0, 500), FakeReplica(1, 20), FakeReplica(2, 300)]
        assert LeastOutstandingTokensRouter().select(replicas, REQ).replica_id == 1

    def test_ties_break_on_replica_id(self):
        replicas = [FakeReplica(2, 50), FakeReplica(0, 50), FakeReplica(1, 50)]
        assert LeastOutstandingTokensRouter().select(replicas, REQ).replica_id == 0


class TestLeastKvLoad:
    def test_picks_emptiest_pool(self):
        replicas = [FakeReplica(0, kv_load=0.9), FakeReplica(1, kv_load=0.1),
                    FakeReplica(2, kv_load=0.5)]
        assert LeastKvLoadRouter().select(replicas, REQ).replica_id == 1

    def test_kv_ties_break_on_outstanding_tokens(self):
        replicas = [FakeReplica(0, outstanding_tokens=100, kv_load=0.5),
                    FakeReplica(1, outstanding_tokens=10, kv_load=0.5)]
        assert LeastKvLoadRouter().select(replicas, REQ).replica_id == 1


class TestDisaggregatedRouter:
    def test_prefill_side_balances_on_tokens(self):
        router = DisaggregatedRouter()
        prefill = [FakeReplica(0, 900, kv_load=0.0), FakeReplica(1, 100, kv_load=0.99)]
        assert router.select(prefill, REQ).replica_id == 1

    def test_decode_side_balances_on_kv(self):
        router = DisaggregatedRouter()
        decode = [FakeReplica(0, 100, kv_load=0.8), FakeReplica(1, 900, kv_load=0.2)]
        assert router.select_decode(decode, REQ).replica_id == 1

    def test_default_select_decode_falls_back_to_select(self):
        """Policies without a decode-specific rule route migrations like admissions."""
        replicas = [FakeReplica(0, 500), FakeReplica(1, 20)]
        assert LeastOutstandingTokensRouter().select_decode(replicas, REQ).replica_id == 1
