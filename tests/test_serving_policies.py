"""Tests for the pluggable scheduling (admission) and preemption policies."""

import pytest

from repro.serving import (
    ContinuousBatchingScheduler,
    CostBasedPreemption,
    FcfsScheduling,
    MaxMinFairness,
    PriorityScheduling,
    Request,
    ServingEngine,
    ShortestJobFirst,
    SwapPreemption,
    get_preemption_policy,
    get_scheduling_policy,
)


@pytest.fixture(scope="module")
def engine():
    return ServingEngine("liquidserve", "llama2-7b")


class TestRegistries:
    def test_lookup_by_name(self):
        assert isinstance(get_scheduling_policy("fcfs"), FcfsScheduling)
        assert isinstance(get_scheduling_policy("SJF"), ShortestJobFirst)
        assert isinstance(get_preemption_policy("swap"), SwapPreemption)
        assert isinstance(get_preemption_policy("hybrid"), CostBasedPreemption)

    def test_instance_passthrough(self):
        policy = CostBasedPreemption(threshold=2.0)
        assert get_preemption_policy(policy) is policy
        scheduling = PriorityScheduling()
        assert get_scheduling_policy(scheduling) is scheduling

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError, match="unknown scheduling policy"):
            get_scheduling_policy("lifo")
        with pytest.raises(KeyError, match="unknown preemption policy"):
            get_preemption_policy("discard")

    def test_hybrid_threshold_validated(self):
        with pytest.raises(ValueError):
            CostBasedPreemption(threshold=0.0)


class TestSchedulingKeys:
    def test_fcfs_orders_by_arrival(self):
        a = Request(1, 64, 8, arrival_time_s=0.5)
        b = Request(0, 64, 8, arrival_time_s=0.1)
        policy = FcfsScheduling()
        assert policy.key(b) < policy.key(a)
        assert policy.select_victim([a, b]) is a  # latest arrival evicted first

    def test_priority_orders_by_priority_then_arrival(self):
        low_early = Request(0, 64, 8, arrival_time_s=0.0, priority=0)
        high_late = Request(1, 64, 8, arrival_time_s=1.0, priority=5)
        policy = PriorityScheduling()
        assert policy.key(high_late) < policy.key(low_early)
        assert policy.select_victim([low_early, high_late]) is low_early

    def test_sjf_orders_by_predicted_length(self):
        short = Request(0, 1000, 10, arrival_time_s=1.0)
        long = Request(1, 64, 2000, arrival_time_s=0.0)
        policy = ShortestJobFirst()
        assert policy.key(short) < policy.key(long)
        assert policy.select_victim([short, long]) is long

    def test_fairness_orders_by_attained_service(self):
        served = Request(0, 64, 100, arrival_time_s=0.0)
        served.generated = 50
        starved = Request(1, 64, 100, arrival_time_s=1.0)
        policy = MaxMinFairness()
        assert policy.key(starved) < policy.key(served)
        assert policy.select_victim([served, starved]) is served


class TestPriorityEndToEnd:
    def test_high_priority_admitted_before_earlier_low_priority(self, engine):
        """With one slot, a high-priority request jumps every waiting low-priority one."""
        requests = [
            Request(i, prompt_tokens=64, output_tokens=32, arrival_time_s=0.0, priority=0)
            for i in range(4)
        ] + [Request(9, prompt_tokens=64, output_tokens=32, arrival_time_s=0.001, priority=5)]
        stats = ContinuousBatchingScheduler(
            engine, max_batch_size=1, scheduling_policy="priority"
        ).run(requests)
        by_id = {r.request_id: r for r in stats.requests}
        # The priority-9 request outruns every request still waiting at its arrival (one
        # FCFS-admitted request may already occupy the single slot).
        beaten = [r for i, r in by_id.items() if i != 9
                  and r.first_token_time_s > by_id[9].first_token_time_s]
        assert len(beaten) >= 3


class TestSjfEndToEnd:
    def test_sjf_short_jobs_overtake_long_backlog(self, engine):
        long_jobs = [Request(i, prompt_tokens=2000, output_tokens=256, arrival_time_s=0.0)
                     for i in range(3)]
        short_jobs = [Request(10 + i, prompt_tokens=32, output_tokens=8,
                              arrival_time_s=0.001) for i in range(3)]
        fcfs = ContinuousBatchingScheduler(
            engine, max_batch_size=1, scheduling_policy="fcfs"
        ).run(long_jobs + short_jobs)
        sjf = ContinuousBatchingScheduler(
            engine, max_batch_size=1, scheduling_policy="sjf"
        ).run(long_jobs + short_jobs)
        def mean_short_ttft(stats):
            return sum(
                r.first_token_time_s - r.arrival_time_s
                for r in stats.requests if r.request_id >= 10
            ) / 3
        assert mean_short_ttft(sjf) < mean_short_ttft(fcfs) / 2
        assert sjf.completed_requests == fcfs.completed_requests == 6


class TestFairnessEndToEnd:
    def test_fairness_completes_and_conserves(self, engine):
        requests = [Request(i, prompt_tokens=100 + 50 * i, output_tokens=64,
                            arrival_time_s=0.002 * i) for i in range(8)]
        scheduler = ContinuousBatchingScheduler(
            engine, max_batch_size=4, scheduling_policy="fairness"
        )
        stats = scheduler.run(requests)
        assert stats.completed_requests == 8
        assert all(r.generated == r.output_tokens for r in stats.requests)
        assert scheduler.kv_cache.num_used_blocks == 0


class TestCostBasedDecision:
    def _victim_setup(self, engine, tokens, host_link_bandwidth):
        scheduler = ContinuousBatchingScheduler(
            engine, kv_budget_bytes=2 * 2**30, host_kv_budget_bytes=2 * 2**30
        )
        victim = Request(0, prompt_tokens=tokens, output_tokens=4)
        victim.prefill_target = tokens
        victim.prefilled = tokens
        scheduler.kv_cache.add_sequence(0, tokens)
        spec = engine.device.spec.with_overrides(host_link_bandwidth=host_link_bandwidth)
        engine.device.spec = spec
        return scheduler, victim

    def test_fast_link_prefers_swap_slow_link_prefers_recompute(self):
        # Fresh engines: the device spec is mutated per case.
        fast = ServingEngine("trt-fp16", "llama2-7b")
        sched_fast, victim = self._victim_setup(fast, 2048, host_link_bandwidth=200e9)
        assert CostBasedPreemption().decide(victim, fast, sched_fast.kv_cache) == "swap"

        slow = ServingEngine("trt-fp16", "llama2-7b")
        sched_slow, victim = self._victim_setup(slow, 2048, host_link_bandwidth=1e9)
        assert CostBasedPreemption().decide(victim, slow, sched_slow.kv_cache) == "recompute"

    def test_no_host_room_forces_recompute(self, engine):
        scheduler = ContinuousBatchingScheduler(
            engine, kv_budget_bytes=2 * 2**30, host_kv_budget_bytes=0
        )
        victim = Request(0, prompt_tokens=2048, output_tokens=4)
        scheduler.kv_cache.add_sequence(0, 2048)
        assert CostBasedPreemption().decide(victim, engine, scheduler.kv_cache) == "recompute"
        assert SwapPreemption().decide(victim, engine, scheduler.kv_cache) == "recompute"


class TestSchedulerOwnsNoOomContract:
    def test_policy_demanding_infeasible_swap_degrades_to_recompute(self, engine):
        """Regression: a policy answering 'swap' with no host room must not let
        KvCacheOutOfMemory escape run() — the no-OOM contract is the scheduler's."""
        from repro.serving import PreemptionPolicy

        class AlwaysSwap(PreemptionPolicy):
            name = "always-swap"

            def decide(self, victim, engine, kv_cache):
                return self.SWAP  # deliberately ignores host-pool feasibility

        scheduler = ContinuousBatchingScheduler(
            engine, max_batch_size=16, preemption_policy=AlwaysSwap(),
            kv_budget_bytes=256 * 2**20, host_kv_budget_bytes=2 * 2**20,
        )
        stats = scheduler.run([Request(i, 300, 64) for i in range(12)])
        assert stats.completed_requests == 12
        assert stats.preemptions > 0
        assert stats.recompute_preemptions == stats.preemptions  # degraded, not raised


class TestPolicyKnobsThroughCoreApi:
    def test_simulate_serving_accepts_policy_knobs(self):
        from repro.core import simulate_serving

        sim = simulate_serving(
            "liquidserve",
            "llama2-7b",
            num_requests=30,
            arrival_rate_rps=50.0,
            seed=1,
            scheduling_policy="sjf",
            preemption_policy="hybrid",
            kv_budget_bytes=2 * 2**30,
            host_kv_budget_bytes=2 * 2**30,
            num_priority_levels=3,
        )
        assert sim.stats.completed_requests == 30
        assert all(0 <= r.priority < 3 for r in sim.stats.requests)


class TestHybridRecomputeEndToEnd:
    """Coverage for the hybrid policy's *recompute* branch under real scheduling.

    On the stock H800 (25 GB/s host link) the swap round trip beats re-prefill for
    essentially every victim, so the hybrid policy is byte-identical to swap-whenever-
    possible in the standard A/Bs and the recompute branch only ever ran in isolation.
    A host link this slow (0.5 GB/s — think oversubscribed PCIe or a swap pool behind
    a fabric) flips the trade: re-prefilling a victim's context is cheaper than two
    transfers, and the cost model must pick recompute *with host-pool room available*.
    """

    def _slow_link_engine(self):
        from repro.gpu import Device, H800

        spec = H800.with_overrides(name="H800-slow-host-link",
                                   host_link_bandwidth=0.5e9)
        return ServingEngine("liquidserve", "llama2-7b", device=Device(spec))

    def _kv_pressure_trace(self):
        from repro.workloads.traces import (
            ArrivalProcess,
            LengthDistribution,
            generate_trace,
        )

        return generate_trace(
            40,
            ArrivalProcess(rate_rps=30.0),
            LengthDistribution.lognormal(median=400.0, sigma=0.9, maximum=2048),
            LengthDistribution.lognormal(median=160.0, sigma=0.9, maximum=1024),
            seed=11,
        )

    def _run(self, preemption_policy):
        import copy

        scheduler = ContinuousBatchingScheduler(
            self._slow_link_engine(),
            kv_budget_bytes=2 * 2**30,
            host_kv_budget_bytes=4 * 2**30,
            preemption_policy=preemption_policy,
        )
        stats = scheduler.run([copy.copy(r) for r in self._kv_pressure_trace()])
        return scheduler, stats

    def test_hybrid_genuinely_picks_recompute(self):
        scheduler, hybrid = self._run("hybrid")
        _, swap = self._run("swap")
        # The workload preempts, the host pool has room (the swap policy uses it), and
        # the hybrid still recomputes: the cost branch is exercised end to end.
        assert hybrid.preemptions > 0
        assert swap.swap_preemptions > 0
        assert hybrid.recompute_preemptions > 0
        assert hybrid.swap_preemptions == 0
        assert scheduler.kv_cache.num_free_host_blocks > 0  # room existed, cost said no
        # And the choice is visible end to end: the two policies produce different runs
        # (on the fast default link hybrid == swap byte-for-byte, which is exactly the
        # blind spot this scenario closes).
        assert (
            hybrid.kv_transfer_s,
            hybrid.simulated_time_s,
        ) != (swap.kv_transfer_s, swap.simulated_time_s)
        assert hybrid.kv_transfer_s == 0.0  # recompute moves no KV bytes

    def test_all_requests_still_complete(self):
        _, hybrid = self._run("hybrid")
        assert hybrid.completed_requests == 40
        assert all(r.generated == r.output_tokens for r in hybrid.requests)

    def test_fast_forward_equivalence_holds_on_the_recompute_regime(self):
        """The new workload doubles as an equivalence scenario: recompute-heavy churn
        with a slow host link must stay bit-identical under fast-forward."""
        import copy
        import dataclasses

        trace = self._kv_pressure_trace()
        results = {}
        for fast_forward in (False, True):
            scheduler = ContinuousBatchingScheduler(
                self._slow_link_engine(),
                kv_budget_bytes=2 * 2**30,
                host_kv_budget_bytes=4 * 2**30,
                preemption_policy="hybrid",
                fast_forward=fast_forward,
            )
            results[fast_forward] = scheduler.run([copy.copy(r) for r in trace])
        slow, fast = results[False], results[True]
        for field in dataclasses.fields(slow):
            if field.name == "requests":
                continue
            assert getattr(slow, field.name) == getattr(fast, field.name)
