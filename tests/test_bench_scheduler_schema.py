"""The committed BENCH_scheduler.json must match the documented schema and carry the
acceptance flags, so the per-PR perf trajectory stays machine-comparable."""

import importlib.util
import json
import os

import pytest

_ROOT = os.path.join(os.path.dirname(__file__), os.pardir)
_BENCH_PY = os.path.join(_ROOT, "benchmarks", "bench_scheduler.py")
_BENCH_JSON = os.path.join(_ROOT, "BENCH_scheduler.json")


def _load_bench_module():
    spec = importlib.util.spec_from_file_location("bench_scheduler", _BENCH_PY)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def bench():
    return _load_bench_module()


@pytest.fixture(scope="module")
def payload():
    with open(_BENCH_JSON, encoding="utf-8") as fh:
        return json.load(fh)


class TestBenchSchema:
    def test_committed_result_matches_schema(self, bench, payload):
        bench.validate_payload(payload)  # raises on any mismatch

    def test_committed_result_is_full_mode(self, payload):
        """--fast exists for CI; the committed trajectory must stay full-size runs so
        numbers remain comparable across PRs."""
        assert payload["mode"] == "full"

    def test_acceptance_flags_hold(self, payload):
        """The A/B criteria this simulator is accepted against: the cost-based hybrid never
        loses goodput to recompute-only, SJF cuts p99 TTFT vs. FCFS on the long tail, and
        disaggregated prefill/decode cuts p99 TTFT vs. co-located at equal GPU count."""
        assert payload["preemption_ab"]["hybrid_goodput_ge_recompute"] is True
        assert payload["scheduling_ab"]["sjf_p99_ttft_improves"] is True
        assert payload["cluster_ab"]["disagg_p99_ttft_improves"] is True

    def test_ab_sections_cover_all_policies(self, payload):
        assert set(payload["preemption_ab"]["policies"]) == {"recompute", "swap", "hybrid"}
        assert set(payload["scheduling_ab"]["policies"]) == {
            "fcfs", "priority", "sjf", "fairness"
        }
        assert set(payload["cluster_ab"]["configs"]) == {"colocated", "disaggregated"}

    def test_cluster_ab_compares_equal_gpu_counts(self, payload):
        """The disaggregation win must not come from extra hardware: both configs field
        the workload's total_replicas GPUs, and the disaggregated one actually pays its
        per-request KV handoffs."""
        section = payload["cluster_ab"]
        total = section["workload"]["total_replicas"]
        for config in section["configs"].values():
            assert len(config["replica_roles"].split(",")) == total
        disagg = section["configs"]["disaggregated"]
        assert disagg["kv_handoffs"] > 0
        assert disagg["kv_handoff_s"] > 0.0
        assert payload["cluster_ab"]["configs"]["colocated"]["kv_handoffs"] == 0

    def test_scale_sections_run_the_advertised_workloads(self, bench, payload):
        """The fast-forward stress sections must stay at full size (they are identical in
        fast and full mode — analytic fast-forward is what makes them tractable) and must
        actually drain their traces."""
        scale = payload["scale"]
        assert scale["trace"]["workload"]["num_requests"] == bench.SCALE_TRACE_REQUESTS
        assert scale["trace"]["simulated"]["completed_requests"] == bench.SCALE_TRACE_REQUESTS
        assert scale["cluster"]["workload"]["num_replicas"] == bench.SCALE_CLUSTER_REPLICAS
        assert scale["cluster"]["workload"]["num_requests"] == bench.SCALE_CLUSTER_REQUESTS
        assert scale["cluster"]["summary"]["completed_requests"] == bench.SCALE_CLUSTER_REQUESTS
        for section in (scale["trace"], scale["cluster"]):
            assert section["harness"]["wall_time_s"] > 0.0
            assert section["harness"]["iterations_per_s"] > 0.0

    def test_mixed_phase_section_holds_the_acceptance_criterion(self, bench, payload):
        """PR-5's tentpole, pinned against the committed trajectory: the KV-constrained
        prefill-heavy workload — which PR 4 ran interpretively at ~43k it/s — must clear
        3x the interpretive path and at least 130k it/s, with the simulated numbers
        produced by the fast path (the harness itself aborts if they diverge from
        stepwise, so their presence here certifies equivalence held)."""
        section = payload["mixed_phase"]
        assert section["speedup_ge_3x"] is True
        assert section["harness"]["speedup_vs_stepwise"] >= 3.0
        assert section["harness"]["iterations_per_s"] >= 130_000
        assert section["workload"]["preemption_policy"] == "hybrid"
        assert section["workload"]["kv_budget_mb"] == 2048  # genuinely KV-constrained
        assert section["simulated"]["preemptions"] > 0
        assert section["simulated"]["prefill_chunks"] > 0

    def test_prefix_cache_section_holds_the_acceptance_criterion(self, payload):
        """PR-6's tentpole, pinned against the committed trajectory: on the shared-prefix
        agent-swarm workload, radix-tree fork-on-admit must cut p99 TTFT by at least 1.5x
        vs. the cache-off twin, with a real hit rate and real prefill savings — and
        without changing a single generated token."""
        section = payload["prefix_cache"]
        assert section["p99_ttft_improves_ge_1_5x"] is True
        assert section["p99_ttft_speedup"] >= 1.5
        on, off = section["configs"]["cache_on"], section["configs"]["cache_off"]
        assert on["prefix_hit_rate"] > 0.5  # swarm agents genuinely share prefixes
        assert on["prefix_saved_tokens"] > 0
        assert on["prefix_blocks_inserted"] > 0
        assert on["p99_ttft_s"] < off["p99_ttft_s"]
        # The cache changes when tokens appear, never what is served.
        assert on["completed_requests"] == off["completed_requests"]
        assert on["generated_tokens"] == off["generated_tokens"]
        assert off["prefix_hit_rate"] == 0.0
        assert off["prefix_saved_tokens"] == 0

    def test_sweep_section_is_deterministic_and_full_width(self, payload):
        """The sweep acceptance criteria: >= 16 grid cells, executed with 4 workers, and
        the parallel run byte-identical to the serial one.  The wall-clock speedup is
        recorded for the trajectory but depends on the runner's cores, so the committed
        flag is determinism, not the ratio."""
        section = payload["sweep"]
        assert section["num_cells"] >= 16
        assert section["workers"] == 4
        assert section["parallel_matches_serial"] is True
        assert section["serial_wall_s"] > 0.0
        assert section["parallel_wall_s"] > 0.0
        assert section["speedup"] > 0.0
        assert section["consolidated_json"] == "BENCH_sweep.json"

    def test_committed_sweep_json_matches_its_schema(self, payload):
        """The consolidated per-cell sweep JSON committed next to the bench payload must
        validate against repro.sweep's schema and agree with the bench section."""
        from repro.reporting.schema import validate_payload as validate
        from repro.sweep import SWEEP_SCHEMA

        path = os.path.join(_ROOT, payload["sweep"]["consolidated_json"])
        with open(path, encoding="utf-8") as fh:
            sweep_payload = json.load(fh)
        validate(sweep_payload, SWEEP_SCHEMA)
        assert sweep_payload["num_cells"] == payload["sweep"]["num_cells"]
        assert len(sweep_payload["cells"]) == sweep_payload["num_cells"]
        # Every cell reports its effective backend configuration, and the payload
        # carries the goodput-per-GPU vs. accuracy frontier.
        for cell in sweep_payload["cells"]:
            assert cell["kernel"] and cell["kv_format"]
        frontier = sweep_payload["frontier"]
        assert frontier["num_points"] >= 1
        assert frontier["num_points"] + frontier["dominated_cells"] == (
            sweep_payload["num_cells"]
        )

    def test_sweep_grid_section_profiles_a_large_grid(self, payload):
        """PR-7's profiling criterion: the kernel-backend grid spans >= 1,000 cells
        end to end (the scale the per-configuration engine cache exists for), with a
        live cell throughput for the perf-regression gate and a non-empty frontier."""
        section = payload["sweep_grid"]
        assert section["num_cells"] >= 1000
        assert section["workers"] == 4
        assert section["wall_time_s"] > 0.0
        assert section["cells_per_s"] > 0.0
        assert section["frontier_points"] >= 1
        assert (
            section["frontier_points"] + section["dominated_cells"]
            == section["num_cells"]
        )
        best = section["best_config"]
        assert best["goodput_per_gpu_rps"] > 0.0
        assert best["gpus"] >= 1

    def test_tracing_section_certifies_the_null_and_traced_paths(self, bench, payload):
        """PR-8's observability criteria, pinned against the committed trajectory: the
        traced re-run of trace_simulation is bit-identical to the untraced one, every
        phase breakdown tiles exactly, the tracer-off re-measure stays within noise of
        the baseline wall (the null path is free), and a Chrome trace artifact exists."""
        section = payload["tracing"]
        assert section["bit_identical"] is True
        assert section["breakdowns_exact"] is True
        assert section["events"] > 0
        assert section["counter_samples"] > 0
        assert section["harness"]["off_vs_baseline_ratio"] > 0.0
        assert section["harness"]["traced_wall_time_s"] > 0.0
        assert section["trace_artifact"] == os.path.basename(bench.TRACE_RESULT_PATH)
        artifact = os.path.join(_ROOT, section["trace_artifact"])
        with open(artifact, encoding="utf-8") as fh:
            trace = json.load(fh)
        assert trace["traceEvents"]  # Perfetto-loadable: non-empty event array
        phases = {ev["ph"] for ev in trace["traceEvents"]}
        assert {"X", "C", "b", "e"} <= phases  # spans, counters, async request tracks

    def test_committed_trajectory_records_fast_forward_speedup(self, payload):
        """PR-4's acceptance criterion, pinned against the committed trajectory: the
        fast-forward simulator clears 10x the PR-3 scheduler iteration rate (14,831 it/s)
        on the unchanged trace_simulation workload."""
        assert payload["trace_simulation"]["harness"]["iterations_per_s"] >= 10 * 14831.5
        # The simulated numbers must be exactly the PR-3 model's: fast-forward changes
        # wall time, never results.
        simulated = payload["trace_simulation"]["simulated"]
        assert simulated["generated_tokens"] == 124446
        assert simulated["throughput_tokens_per_s"] == 4410.5
        assert simulated["iterations"] == 9626

    def test_validator_rejects_mutations(self, bench, payload):
        broken = json.loads(json.dumps(payload))
        del broken["preemption_ab"]["hybrid_goodput_ge_recompute"]
        with pytest.raises(ValueError, match="missing required key"):
            bench.validate_payload(broken)
        broken = json.loads(json.dumps(payload))
        broken["trace_simulation"]["simulated"]["preemptions"] = "many"
        with pytest.raises(ValueError, match="expected int"):
            bench.validate_payload(broken)
        broken = json.loads(json.dumps(payload))
        broken["trace_simulation"]["harness"]["wall_time_s"] = True
        with pytest.raises(ValueError, match="expected float, got bool"):
            bench.validate_payload(broken)
