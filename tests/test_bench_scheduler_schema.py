"""The committed BENCH_scheduler.json must match the documented schema and carry the
acceptance flags, so the per-PR perf trajectory stays machine-comparable."""

import importlib.util
import json
import os

import pytest

_ROOT = os.path.join(os.path.dirname(__file__), os.pardir)
_BENCH_PY = os.path.join(_ROOT, "benchmarks", "bench_scheduler.py")
_BENCH_JSON = os.path.join(_ROOT, "BENCH_scheduler.json")


def _load_bench_module():
    spec = importlib.util.spec_from_file_location("bench_scheduler", _BENCH_PY)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def bench():
    return _load_bench_module()


@pytest.fixture(scope="module")
def payload():
    with open(_BENCH_JSON, encoding="utf-8") as fh:
        return json.load(fh)


class TestBenchSchema:
    def test_committed_result_matches_schema(self, bench, payload):
        bench.validate_payload(payload)  # raises on any mismatch

    def test_committed_result_is_full_mode(self, payload):
        """--fast exists for CI; the committed trajectory must stay full-size runs so
        numbers remain comparable across PRs."""
        assert payload["mode"] == "full"

    def test_acceptance_flags_hold(self, payload):
        """The A/B criteria this simulator is accepted against: the cost-based hybrid never
        loses goodput to recompute-only, and SJF cuts p99 TTFT vs. FCFS on the long tail."""
        assert payload["preemption_ab"]["hybrid_goodput_ge_recompute"] is True
        assert payload["scheduling_ab"]["sjf_p99_ttft_improves"] is True

    def test_ab_sections_cover_all_policies(self, payload):
        assert set(payload["preemption_ab"]["policies"]) == {"recompute", "swap", "hybrid"}
        assert set(payload["scheduling_ab"]["policies"]) == {
            "fcfs", "priority", "sjf", "fairness"
        }

    def test_validator_rejects_mutations(self, bench, payload):
        broken = json.loads(json.dumps(payload))
        del broken["preemption_ab"]["hybrid_goodput_ge_recompute"]
        with pytest.raises(ValueError, match="missing required key"):
            bench.validate_payload(broken)
        broken = json.loads(json.dumps(payload))
        broken["trace_simulation"]["simulated"]["preemptions"] = "many"
        with pytest.raises(ValueError, match="expected int"):
            bench.validate_payload(broken)
        broken = json.loads(json.dumps(payload))
        broken["trace_simulation"]["harness"]["wall_time_s"] = True
        with pytest.raises(ValueError, match="expected float, got bool"):
            bench.validate_payload(broken)
