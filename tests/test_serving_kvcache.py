"""Tests for the paged KV-cache allocator, including property-based allocator invariants."""

import math

import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.serving import (
    KvCacheConfig,
    KvCacheOutOfMemory,
    PagedKvCache,
    PrefixCache,
    Request,
    get_model,
)


def make_config(budget_mb=64, kv_format="int8", block_tokens=16, model="llama2-7b",
                host_budget_mb=0):
    return KvCacheConfig(
        model=get_model(model),
        kv_format=kv_format,
        block_tokens=block_tokens,
        memory_budget_bytes=budget_mb * 2**20,
        host_memory_budget_bytes=host_budget_mb * 2**20,
    )


class TestKvCacheConfig:
    def test_bytes_per_token_matches_model(self):
        cfg = make_config()
        assert cfg.bytes_per_token == pytest.approx(2 * 4096 * 32)

    def test_int4_halves_bytes(self):
        assert make_config(kv_format="int4").bytes_per_token == pytest.approx(
            make_config(kv_format="int8").bytes_per_token / 2
        )

    def test_blocks_for_tokens(self):
        cfg = make_config(block_tokens=16)
        assert cfg.blocks_for_tokens(1) == 1
        assert cfg.blocks_for_tokens(16) == 1
        assert cfg.blocks_for_tokens(17) == 2

    def test_total_blocks(self):
        cfg = make_config(budget_mb=64)
        assert cfg.total_blocks == (64 * 2**20) // cfg.bytes_per_block


class TestPagedKvCache:
    def test_requires_budget(self):
        with pytest.raises(ValueError):
            PagedKvCache(make_config(budget_mb=0))

    def test_add_and_free_sequence(self):
        cache = PagedKvCache(make_config())
        state = cache.add_sequence(1, prompt_tokens=100)
        assert state.num_blocks == math.ceil(100 / 16)
        assert cache.num_used_blocks == state.num_blocks
        freed = cache.free_sequence(1)
        assert freed == state.num_blocks
        assert cache.num_used_blocks == 0

    def test_duplicate_sequence_rejected(self):
        cache = PagedKvCache(make_config())
        cache.add_sequence(1, 10)
        with pytest.raises(ValueError):
            cache.add_sequence(1, 10)

    def test_append_allocates_new_block_on_boundary(self):
        cache = PagedKvCache(make_config(block_tokens=16))
        cache.add_sequence(1, 16)
        assert cache.sequence(1).num_blocks == 1
        cache.append_token(1)
        assert cache.sequence(1).num_blocks == 2

    def test_oom_on_admission(self):
        cfg = make_config(budget_mb=8)
        cache = PagedKvCache(cfg)
        too_big = (cfg.total_blocks + 1) * cfg.block_tokens
        with pytest.raises(KvCacheOutOfMemory):
            cache.add_sequence(1, too_big)

    def test_oom_on_append(self):
        cfg = make_config(budget_mb=1, block_tokens=16)
        cache = PagedKvCache(cfg)
        cache.add_sequence(1, cfg.total_blocks * 16)  # exactly fills the pool
        with pytest.raises(KvCacheOutOfMemory):
            cache.append_token(1)

    def test_unknown_sequence(self):
        cache = PagedKvCache(make_config())
        with pytest.raises(KeyError):
            cache.append_token(42)
        with pytest.raises(KeyError):
            cache.free_sequence(42)

    def test_can_admit(self):
        cfg = make_config(budget_mb=8)
        cache = PagedKvCache(cfg)
        assert cache.can_admit(16)
        assert not cache.can_admit((cfg.total_blocks + 1) * 16)

    def test_max_batch_size(self):
        cfg = make_config(budget_mb=512)
        per_seq_blocks = cfg.blocks_for_tokens(1536)
        assert PagedKvCache.max_batch_size(cfg, 1536) == cfg.total_blocks // per_seq_blocks

    def test_utilization_range(self):
        cache = PagedKvCache(make_config())
        assert cache.utilization() == 0.0
        cache.add_sequence(1, 100)
        assert 0.0 < cache.utilization() <= 1.0

    def test_extend_sequence_chunked(self):
        cache = PagedKvCache(make_config(block_tokens=16))
        cache.add_sequence(1, 0)
        cache.extend_sequence(1, 100)
        assert cache.sequence(1).num_tokens == 100
        assert cache.sequence(1).num_blocks == math.ceil(100 / 16)
        cache.extend_sequence(1, 0)  # no-op growth is legal
        assert cache.sequence(1).num_tokens == 100

    def test_extend_sequence_all_or_nothing_on_oom(self):
        cfg = make_config(budget_mb=8, block_tokens=16)
        cache = PagedKvCache(cfg)
        cache.add_sequence(1, (cfg.total_blocks - 1) * 16)
        free_before = cache.num_free_blocks
        with pytest.raises(KvCacheOutOfMemory):
            cache.extend_sequence(1, 64)  # needs more than the 1 free block
        assert cache.num_free_blocks == free_before
        assert cache.sequence(1).num_tokens == (cfg.total_blocks - 1) * 16

    def test_blocks_needed_to_extend(self):
        cache = PagedKvCache(make_config(block_tokens=16))
        cache.add_sequence(1, 16)
        assert cache.blocks_needed_to_extend(1, 0) == 0
        assert cache.blocks_needed_to_extend(1, 1) == 1
        assert cache.blocks_needed_to_extend(1, 32) == 2
        with pytest.raises(KeyError):
            cache.blocks_needed_to_extend(42)
        with pytest.raises(ValueError):
            cache.blocks_needed_to_extend(1, -1)

    def test_tp_shard_shrinks_bytes_per_token(self):
        full = make_config(model="llama2-70b")
        shard = KvCacheConfig(
            model=get_model("llama2-70b"), kv_format="int8",
            memory_budget_bytes=64 * 2**20, tp_degree=4,
        )
        assert shard.bytes_per_token == pytest.approx(full.bytes_per_token / 4)


class TestHostSwap:
    def test_swap_out_moves_blocks_to_host(self):
        cache = PagedKvCache(make_config(host_budget_mb=64))
        state = cache.add_sequence(1, 100)
        held = state.num_blocks
        moved = cache.swap_out(1)
        assert moved == held * cache.config.bytes_per_block
        assert cache.num_used_blocks == 0
        assert cache.num_used_host_blocks == held
        assert cache.is_swapped(1)
        assert cache.num_swapped_sequences == 1
        assert cache.swapped_sequence(1).num_tokens == 100
        with pytest.raises(KeyError):
            cache.sequence(1)

    def test_swap_round_trip_restores_sequence(self):
        cache = PagedKvCache(make_config(host_budget_mb=64))
        cache.add_sequence(1, 100)
        cache.swap_out(1)
        moved = cache.swap_in(1)
        assert moved == cache.sequence(1).num_blocks * cache.config.bytes_per_block
        assert cache.sequence(1).num_tokens == 100
        assert not cache.is_swapped(1)
        assert cache.num_used_host_blocks == 0
        cache.append_token(1)  # the restored sequence is fully usable
        assert cache.sequence(1).num_tokens == 101

    def test_swap_out_oom_when_host_pool_too_small(self):
        cfg = make_config(budget_mb=64, host_budget_mb=0)
        cache = PagedKvCache(cfg)
        cache.add_sequence(1, 100)
        assert not cache.can_swap_out(1)
        with pytest.raises(KvCacheOutOfMemory):
            cache.swap_out(1)
        assert cache.sequence(1).num_tokens == 100  # unchanged on failure

    def test_swap_in_oom_when_device_full(self):
        cfg = make_config(budget_mb=8, host_budget_mb=64, block_tokens=16)
        cache = PagedKvCache(cfg)
        cache.add_sequence(1, 32)
        cache.swap_out(1)
        cache.add_sequence(2, cfg.total_blocks * 16)  # refill the device pool
        assert not cache.can_swap_in(1)
        with pytest.raises(KvCacheOutOfMemory):
            cache.swap_in(1)
        assert cache.is_swapped(1)  # unchanged on failure
        cache.free_sequence(2)
        cache.swap_in(1)
        assert cache.sequence(1).num_tokens == 32

    def test_free_swapped_sequence_releases_host_blocks(self):
        cache = PagedKvCache(make_config(host_budget_mb=64))
        cache.add_sequence(1, 100)
        held = cache.sequence(1).num_blocks
        cache.swap_out(1)
        assert cache.free_sequence(1) == held
        assert cache.num_used_host_blocks == 0
        assert cache.num_swapped_sequences == 0

    def test_swapped_id_cannot_be_readded(self):
        cache = PagedKvCache(make_config(host_budget_mb=64))
        cache.add_sequence(1, 16)
        cache.swap_out(1)
        with pytest.raises(ValueError):
            cache.add_sequence(1, 16)

    def test_unknown_sequence_swap_errors(self):
        cache = PagedKvCache(make_config(host_budget_mb=64))
        with pytest.raises(KeyError):
            cache.swap_out(42)
        with pytest.raises(KeyError):
            cache.swap_in(42)
        assert not cache.can_swap_out(42)
        assert not cache.can_swap_in(42)

    def test_host_utilization_range(self):
        cache = PagedKvCache(make_config(host_budget_mb=64))
        assert cache.host_utilization() == 0.0
        cache.add_sequence(1, 100)
        cache.swap_out(1)
        assert 0.0 < cache.host_utilization() <= 1.0
        # No host pool configured -> utilization is defined as 0.
        assert PagedKvCache(make_config(host_budget_mb=0)).host_utilization() == 0.0

    @given(
        prompts=st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=8),
        swap_mask=st.lists(st.booleans(), min_size=8, max_size=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_swap_round_trip_preserves_state(self, prompts, swap_mask):
        """Swapping any subset out and back leaves every sequence and both pools intact."""
        # 16 device + 16 host blocks; each sequence needs at most 2 blocks, so 8 always fit.
        cache = PagedKvCache(make_config(budget_mb=64, host_budget_mb=64))
        for seq_id, prompt in enumerate(prompts):
            cache.add_sequence(seq_id, prompt)
        blocks_before = {i: cache.sequence(i).num_blocks for i in range(len(prompts))}
        used_before = cache.num_used_blocks
        swapped = [i for i in range(len(prompts)) if swap_mask[i] and cache.can_swap_out(i)]
        for seq_id in swapped:
            cache.swap_out(seq_id)
        assert cache.num_used_host_blocks == sum(blocks_before[i] for i in swapped)
        for seq_id in swapped:
            assert cache.swap_in(seq_id)  # bytes moved is positive for non-empty seqs
        assert cache.num_used_blocks == used_before
        assert cache.num_used_host_blocks == 0
        for seq_id, prompt in enumerate(prompts):
            assert cache.sequence(seq_id).num_tokens == prompt
            assert cache.sequence(seq_id).num_blocks == blocks_before[seq_id]
        for seq_id in range(len(prompts)):
            cache.free_sequence(seq_id)
        assert cache.num_used_blocks == 0 and cache.num_used_host_blocks == 0


class TestCopyOnFork:
    def test_fork_shares_blocks(self):
        cache = PagedKvCache(make_config())
        parent = cache.add_sequence(1, 100)
        child = cache.fork_sequence(1, 2)
        assert child.num_tokens == 100
        assert child.blocks == parent.blocks
        # Sharing is free: no new physical blocks were allocated.
        assert cache.num_used_blocks == parent.num_blocks

    def test_free_parent_keeps_child_blocks_alive(self):
        cache = PagedKvCache(make_config())
        cache.add_sequence(1, 100)
        cache.fork_sequence(1, 2)
        assert cache.free_sequence(1) == 0  # every block still referenced by the child
        held = cache.sequence(2).num_blocks
        assert cache.num_used_blocks == held
        assert cache.free_sequence(2) == held
        assert cache.num_used_blocks == 0

    def test_append_to_fork_copies_shared_tail(self):
        cache = PagedKvCache(make_config(block_tokens=16))
        parent = cache.add_sequence(1, 24)  # 2 blocks, tail half full
        child = cache.fork_sequence(1, 2)
        used_before = cache.num_used_blocks
        cache.append_token(2)
        # The shared partial tail was copied before the write (copy-on-write).
        assert cache.sequence(2).blocks[-1] != parent.blocks[-1]
        assert cache.sequence(2).blocks[0] == parent.blocks[0]
        assert cache.num_used_blocks == used_before + 1
        assert parent.num_tokens == 24  # parent untouched
        assert child.num_tokens == 25

    def test_append_to_fork_with_full_tail_shares_prefix(self):
        cache = PagedKvCache(make_config(block_tokens=16))
        parent = cache.add_sequence(1, 32)  # 2 full blocks
        cache.fork_sequence(1, 2)
        cache.append_token(2)
        # No copy needed: the new token opens a fresh block, the full prefix stays shared.
        assert cache.sequence(2).blocks[:2] == parent.blocks
        assert cache.sequence(2).num_blocks == 3

    def test_cow_is_all_or_nothing_on_oom(self):
        cfg = make_config(budget_mb=8, block_tokens=16)
        cache = PagedKvCache(cfg)
        cache.add_sequence(1, cfg.total_blocks * 16 - 8)  # fills the pool, tail half full
        cache.fork_sequence(1, 2)
        with pytest.raises(KvCacheOutOfMemory):
            cache.append_token(2)  # needs a CoW block and the pool is empty
        assert cache.sequence(2).num_tokens == cfg.total_blocks * 16 - 8
        assert cache.sequence(2).blocks == cache.sequence(1).blocks

    def test_fork_validation(self):
        cache = PagedKvCache(make_config(host_budget_mb=64))
        cache.add_sequence(1, 16)
        with pytest.raises(KeyError):
            cache.fork_sequence(42, 2)
        with pytest.raises(ValueError):
            cache.fork_sequence(1, 1)
        cache.swap_out(1)
        with pytest.raises(KeyError):
            cache.fork_sequence(1, 2)  # swapped-out parents cannot fork

    def test_forked_sequence_cannot_swap(self):
        cache = PagedKvCache(make_config(host_budget_mb=64))
        cache.add_sequence(1, 100)
        cache.fork_sequence(1, 2)
        assert not cache.can_swap_out(1)
        with pytest.raises(ValueError):
            cache.swap_out(1)

    def test_truncate_releases_blocks(self):
        cache = PagedKvCache(make_config(block_tokens=16))
        cache.add_sequence(1, 100)
        cache.truncate_sequence(1, 33)
        assert cache.sequence(1).num_tokens == 33
        assert cache.sequence(1).num_blocks == 3
        cache.truncate_sequence(1, 0)
        assert cache.sequence(1).num_blocks == 0
        with pytest.raises(ValueError):
            cache.truncate_sequence(1, 1)  # cannot grow via truncate
        with pytest.raises(KeyError):
            cache.truncate_sequence(42, 0)


class KvCacheMachine(RuleBasedStateMachine):
    """Stateful property test: the allocator never double-books or leaks blocks."""

    def __init__(self):
        super().__init__()
        self.config = make_config(budget_mb=16, block_tokens=16)
        self.cache = PagedKvCache(self.config)
        self.model_tokens = {}
        self.next_id = 0

    @rule(prompt=st.integers(min_value=0, max_value=600))
    def add(self, prompt):
        seq_id = self.next_id
        self.next_id += 1
        try:
            self.cache.add_sequence(seq_id, prompt)
        except KvCacheOutOfMemory:
            assert self.config.blocks_for_tokens(prompt) > self.cache.num_free_blocks
        else:
            self.model_tokens[seq_id] = prompt

    @precondition(lambda self: self.model_tokens)
    @rule(data=st.data())
    def append(self, data):
        seq_id = data.draw(st.sampled_from(sorted(self.model_tokens)))
        try:
            self.cache.append_token(seq_id)
        except KvCacheOutOfMemory:
            assert self.cache.num_free_blocks == 0
        else:
            self.model_tokens[seq_id] += 1

    @precondition(lambda self: self.model_tokens)
    @rule(data=st.data(), chunk=st.integers(min_value=0, max_value=300))
    def extend(self, data, chunk):
        """Chunked-prefill growth: extend by a whole chunk, all-or-nothing."""
        seq_id = data.draw(st.sampled_from(sorted(self.model_tokens)))
        needed = self.cache.blocks_needed_to_extend(seq_id, chunk)
        try:
            self.cache.extend_sequence(seq_id, chunk)
        except KvCacheOutOfMemory:
            assert needed > self.cache.num_free_blocks
        else:
            assert needed <= self.cache.config.total_blocks
            self.model_tokens[seq_id] += chunk

    @precondition(lambda self: self.model_tokens)
    @rule(data=st.data())
    def free(self, data):
        """Every block a sequence held must come back to the pool on free."""
        seq_id = data.draw(st.sampled_from(sorted(self.model_tokens)))
        held = self.cache.sequence(seq_id).num_blocks
        free_before = self.cache.num_free_blocks
        returned = self.cache.free_sequence(seq_id)
        assert returned == held
        assert self.cache.num_free_blocks == free_before + held
        del self.model_tokens[seq_id]

    @invariant()
    def block_accounting_consistent(self):
        used = sum(self.cache.sequence(s).num_blocks for s in self.model_tokens)
        assert used == self.cache.num_used_blocks
        assert used + self.cache.num_free_blocks == self.config.total_blocks

    @invariant()
    def blocks_match_token_counts(self):
        for seq_id, tokens in self.model_tokens.items():
            state = self.cache.sequence(seq_id)
            assert state.num_tokens == tokens
            assert state.num_blocks == self.config.blocks_for_tokens(tokens) if tokens else True

    @invariant()
    def no_block_shared_between_sequences(self):
        seen = set()
        for seq_id in self.model_tokens:
            for block in self.cache.sequence(seq_id).blocks:
                assert block not in seen
                seen.add(block)

    @invariant()
    def free_list_disjoint_from_used_and_duplicate_free(self):
        free = self.cache._free_blocks
        free_set = set(free)
        assert len(free_set) == len(free)  # no block listed free twice
        used = {block for seq_id in self.model_tokens
                for block in self.cache.sequence(seq_id).blocks}
        assert not (free_set & used)  # a block is never free and allocated at once
        assert free_set | used == set(range(self.config.total_blocks))


TestKvCacheStateMachine = KvCacheMachine.TestCase


class KvForkSwapMachine(RuleBasedStateMachine):
    """Stateful property test over the full API: fork/CoW, swap, truncate interleavings.

    Unlike :class:`KvCacheMachine` (which asserts the stricter unshared-blocks invariants
    of the plain workload), this machine models reference counting explicitly: a device
    block's refcount must always equal the number of resident sequences holding it, both
    pools must conserve blocks, and a swapped sequence must round-trip intact.
    """

    def __init__(self):
        super().__init__()
        self.config = make_config(budget_mb=64, block_tokens=16, host_budget_mb=32)
        self.cache = PagedKvCache(self.config)
        self.resident = {}   # seq_id -> tokens (device)
        self.swapped = {}    # seq_id -> tokens (host)
        self.next_id = 0

    def _any_shared(self, seq_id):
        blocks = set(self.cache.sequence(seq_id).blocks)
        return any(
            blocks & set(self.cache.sequence(other).blocks)
            for other in self.resident if other != seq_id
        )

    @rule(prompt=st.integers(min_value=0, max_value=120))
    def add(self, prompt):
        seq_id = self.next_id
        self.next_id += 1
        try:
            self.cache.add_sequence(seq_id, prompt)
        except KvCacheOutOfMemory:
            assert self.config.blocks_for_tokens(prompt) > self.cache.num_free_blocks
        else:
            self.resident[seq_id] = prompt

    @precondition(lambda self: self.resident)
    @rule(data=st.data(), chunk=st.integers(min_value=0, max_value=60))
    def extend(self, data, chunk):
        seq_id = data.draw(st.sampled_from(sorted(self.resident)))
        tokens_before = self.cache.sequence(seq_id).num_tokens
        try:
            self.cache.extend_sequence(seq_id, chunk)
        except KvCacheOutOfMemory:
            # All-or-nothing: nothing changed (CoW may have demanded one extra block).
            assert self.cache.sequence(seq_id).num_tokens == tokens_before
        else:
            self.resident[seq_id] += chunk

    @precondition(lambda self: self.resident)
    @rule(data=st.data())
    def fork(self, data):
        parent = data.draw(st.sampled_from(sorted(self.resident)))
        child = self.next_id
        self.next_id += 1
        used_before = self.cache.num_used_blocks
        self.cache.fork_sequence(parent, child)
        assert self.cache.num_used_blocks == used_before  # sharing allocates nothing
        self.resident[child] = self.resident[parent]

    @precondition(lambda self: self.resident)
    @rule(data=st.data(), keep_fraction=st.floats(min_value=0.0, max_value=1.0))
    def truncate(self, data, keep_fraction):
        seq_id = data.draw(st.sampled_from(sorted(self.resident)))
        keep = int(self.resident[seq_id] * keep_fraction)
        self.cache.truncate_sequence(seq_id, keep)
        self.resident[seq_id] = keep

    @precondition(lambda self: self.resident)
    @rule(data=st.data())
    def swap_out(self, data):
        seq_id = data.draw(st.sampled_from(sorted(self.resident)))
        shared = self._any_shared(seq_id)
        blocks = self.cache.sequence(seq_id).num_blocks
        if not self.cache.can_swap_out(seq_id):
            assert shared or blocks > self.cache.num_free_host_blocks
            return
        moved = self.cache.swap_out(seq_id)
        assert moved == blocks * self.config.bytes_per_block
        self.swapped[seq_id] = self.resident.pop(seq_id)

    @precondition(lambda self: self.swapped)
    @rule(data=st.data())
    def swap_in(self, data):
        seq_id = data.draw(st.sampled_from(sorted(self.swapped)))
        blocks = self.cache.swapped_sequence(seq_id).num_blocks
        if not self.cache.can_swap_in(seq_id):
            assert blocks > self.cache.num_free_blocks
            return
        self.cache.swap_in(seq_id)
        tokens = self.swapped.pop(seq_id)
        self.resident[seq_id] = tokens
        assert self.cache.sequence(seq_id).num_tokens == tokens  # round-trip intact

    @precondition(lambda self: self.resident or self.swapped)
    @rule(data=st.data())
    def free(self, data):
        seq_id = data.draw(st.sampled_from(sorted(self.resident) + sorted(self.swapped)))
        self.cache.free_sequence(seq_id)
        self.resident.pop(seq_id, None)
        self.swapped.pop(seq_id, None)

    @invariant()
    def refcounts_match_resident_references(self):
        counts = {}
        for seq_id in self.resident:
            for block in self.cache.sequence(seq_id).blocks:
                counts[block] = counts.get(block, 0) + 1
        assert counts == self.cache._ref_counts

    @invariant()
    def both_pools_conserve_blocks(self):
        device_used = set()
        for seq_id in self.resident:
            device_used.update(self.cache.sequence(seq_id).blocks)
        assert len(device_used) == self.cache.num_used_blocks
        assert device_used | set(self.cache._free_blocks) == set(
            range(self.config.total_blocks)
        )
        host_used = []
        for seq_id in self.swapped:
            host_used.extend(self.cache.swapped_sequence(seq_id).blocks)
        assert len(host_used) == len(set(host_used)) == self.cache.num_used_host_blocks
        assert set(host_used) | set(self.cache._free_host_blocks) == set(
            range(self.config.total_host_blocks)
        )

    @invariant()
    def token_and_block_counts_consistent(self):
        for seq_id, tokens in self.resident.items():
            state = self.cache.sequence(seq_id)
            assert state.num_tokens == tokens
            assert state.num_blocks == self.config.blocks_for_tokens(tokens)
        for seq_id, tokens in self.swapped.items():
            state = self.cache.swapped_sequence(seq_id)
            assert state.num_tokens == tokens
            assert state.num_blocks == self.config.blocks_for_tokens(tokens)


TestKvForkSwapStateMachine = KvForkSwapMachine.TestCase


class KvPrefixCacheMachine(KvForkSwapMachine):
    """Adds a prefix cache to the fork/swap machine: insert / hit / evict racing live growth.

    The cache holds one pool reference per published block, so the parent's refcount and
    conservation invariants are re-derived here to count cache nodes as holders.  The new
    rules pin the contracts the scheduler leans on: :meth:`PrefixCache.evict` returns
    exactly the blocks it put back in the free pool, :meth:`PrefixCache.can_free` agrees
    with what eviction then achieves (the fast-forward parked proofs depend on that), and
    a cached block can never be freed out from under the trie by a live sequence's
    truncate/free/swap.
    """

    def __init__(self):
        super().__init__()
        self.prefix = PrefixCache(self.cache)
        self.next_request = 0

    def _request(self, shared, group):
        req = Request(
            self.next_request,
            prompt_tokens=shared + 8,
            output_tokens=4,
            prefix_group=group,
            prefix_segments=((0, shared),),
        )
        self.next_request += 1
        return req

    def _any_shared(self, seq_id):
        if super()._any_shared(seq_id):
            return True
        cached = {node.block for node in self.prefix._nodes.values()}
        return any(b in cached for b in self.cache.sequence(seq_id).blocks)

    @precondition(lambda self: self.resident)
    @rule(data=st.data(), group=st.integers(min_value=0, max_value=2))
    def publish(self, data, group):
        seq_id = data.draw(st.sampled_from(sorted(self.resident)))
        state = self.cache.sequence(seq_id)
        req = self._request(self.resident[seq_id], group)
        before = self.prefix.num_blocks
        added = self.prefix.insert(req, state.blocks)
        assert self.prefix.num_blocks == before + added

    @rule(group=st.integers(min_value=0, max_value=2),
          span=st.integers(min_value=0, max_value=128))
    def hit(self, group, span):
        req = self._request(span, group)
        blocks = self.prefix.match_blocks(req, span)
        if not blocks:
            self.prefix.record_miss()
            return
        child = self.next_id
        self.next_id += 1
        used_before = self.cache.num_used_blocks
        self.cache.fork_from_blocks(child, blocks)
        assert self.cache.num_used_blocks == used_before  # cached blocks were resident
        self.prefix.commit_hit(req, len(blocks))
        self.resident[child] = len(blocks) * self.config.block_tokens

    @rule(num=st.integers(min_value=1, max_value=8))
    def evict(self, num):
        free_before = self.cache.num_free_blocks
        could = self.prefix.can_free(num)
        freed = self.prefix.evict(num)
        assert self.cache.num_free_blocks == free_before + freed
        # can_free is evict's side-effect-free twin: its promise must be exact.
        assert (freed >= num) == could

    @invariant()
    def refcounts_match_resident_references(self):
        counts = {}
        for seq_id in self.resident:
            for block in self.cache.sequence(seq_id).blocks:
                counts[block] = counts.get(block, 0) + 1
        for node in self.prefix._nodes.values():
            counts[node.block] = counts.get(node.block, 0) + 1
        assert counts == self.cache._ref_counts

    @invariant()
    def both_pools_conserve_blocks(self):
        device_used = set()
        for seq_id in self.resident:
            device_used.update(self.cache.sequence(seq_id).blocks)
        device_used.update(node.block for node in self.prefix._nodes.values())
        assert len(device_used) == self.cache.num_used_blocks
        assert device_used | set(self.cache._free_blocks) == set(
            range(self.config.total_blocks)
        )
        host_used = []
        for seq_id in self.swapped:
            host_used.extend(self.cache.swapped_sequence(seq_id).blocks)
        assert len(host_used) == len(set(host_used)) == self.cache.num_used_host_blocks
        assert set(host_used) | set(self.cache._free_host_blocks) == set(
            range(self.config.total_host_blocks)
        )

    @invariant()
    def cache_accounting_consistent(self):
        for node in self.prefix._nodes.values():
            assert self.cache.block_ref_count(node.block) >= 1
        assert self.prefix.num_blocks == (
            self.prefix.inserted_blocks - self.prefix.evicted_blocks
        )


TestKvPrefixCacheStateMachine = KvPrefixCacheMachine.TestCase
