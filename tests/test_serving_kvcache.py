"""Tests for the paged KV-cache allocator, including property-based allocator invariants."""

import math

import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.serving import KvCacheConfig, KvCacheOutOfMemory, PagedKvCache, get_model


def make_config(budget_mb=64, kv_format="int8", block_tokens=16, model="llama2-7b"):
    return KvCacheConfig(
        model=get_model(model),
        kv_format=kv_format,
        block_tokens=block_tokens,
        memory_budget_bytes=budget_mb * 2**20,
    )


class TestKvCacheConfig:
    def test_bytes_per_token_matches_model(self):
        cfg = make_config()
        assert cfg.bytes_per_token == pytest.approx(2 * 4096 * 32)

    def test_int4_halves_bytes(self):
        assert make_config(kv_format="int4").bytes_per_token == pytest.approx(
            make_config(kv_format="int8").bytes_per_token / 2
        )

    def test_blocks_for_tokens(self):
        cfg = make_config(block_tokens=16)
        assert cfg.blocks_for_tokens(1) == 1
        assert cfg.blocks_for_tokens(16) == 1
        assert cfg.blocks_for_tokens(17) == 2

    def test_total_blocks(self):
        cfg = make_config(budget_mb=64)
        assert cfg.total_blocks == (64 * 2**20) // cfg.bytes_per_block


class TestPagedKvCache:
    def test_requires_budget(self):
        with pytest.raises(ValueError):
            PagedKvCache(make_config(budget_mb=0))

    def test_add_and_free_sequence(self):
        cache = PagedKvCache(make_config())
        state = cache.add_sequence(1, prompt_tokens=100)
        assert state.num_blocks == math.ceil(100 / 16)
        assert cache.num_used_blocks == state.num_blocks
        freed = cache.free_sequence(1)
        assert freed == state.num_blocks
        assert cache.num_used_blocks == 0

    def test_duplicate_sequence_rejected(self):
        cache = PagedKvCache(make_config())
        cache.add_sequence(1, 10)
        with pytest.raises(ValueError):
            cache.add_sequence(1, 10)

    def test_append_allocates_new_block_on_boundary(self):
        cache = PagedKvCache(make_config(block_tokens=16))
        cache.add_sequence(1, 16)
        assert cache.sequence(1).num_blocks == 1
        cache.append_token(1)
        assert cache.sequence(1).num_blocks == 2

    def test_oom_on_admission(self):
        cfg = make_config(budget_mb=8)
        cache = PagedKvCache(cfg)
        too_big = (cfg.total_blocks + 1) * cfg.block_tokens
        with pytest.raises(KvCacheOutOfMemory):
            cache.add_sequence(1, too_big)

    def test_oom_on_append(self):
        cfg = make_config(budget_mb=1, block_tokens=16)
        cache = PagedKvCache(cfg)
        cache.add_sequence(1, cfg.total_blocks * 16)  # exactly fills the pool
        with pytest.raises(KvCacheOutOfMemory):
            cache.append_token(1)

    def test_unknown_sequence(self):
        cache = PagedKvCache(make_config())
        with pytest.raises(KeyError):
            cache.append_token(42)
        with pytest.raises(KeyError):
            cache.free_sequence(42)

    def test_can_admit(self):
        cfg = make_config(budget_mb=8)
        cache = PagedKvCache(cfg)
        assert cache.can_admit(16)
        assert not cache.can_admit((cfg.total_blocks + 1) * 16)

    def test_max_batch_size(self):
        cfg = make_config(budget_mb=512)
        per_seq_blocks = cfg.blocks_for_tokens(1536)
        assert PagedKvCache.max_batch_size(cfg, 1536) == cfg.total_blocks // per_seq_blocks

    def test_utilization_range(self):
        cache = PagedKvCache(make_config())
        assert cache.utilization() == 0.0
        cache.add_sequence(1, 100)
        assert 0.0 < cache.utilization() <= 1.0

    def test_extend_sequence_chunked(self):
        cache = PagedKvCache(make_config(block_tokens=16))
        cache.add_sequence(1, 0)
        cache.extend_sequence(1, 100)
        assert cache.sequence(1).num_tokens == 100
        assert cache.sequence(1).num_blocks == math.ceil(100 / 16)
        cache.extend_sequence(1, 0)  # no-op growth is legal
        assert cache.sequence(1).num_tokens == 100

    def test_extend_sequence_all_or_nothing_on_oom(self):
        cfg = make_config(budget_mb=8, block_tokens=16)
        cache = PagedKvCache(cfg)
        cache.add_sequence(1, (cfg.total_blocks - 1) * 16)
        free_before = cache.num_free_blocks
        with pytest.raises(KvCacheOutOfMemory):
            cache.extend_sequence(1, 64)  # needs more than the 1 free block
        assert cache.num_free_blocks == free_before
        assert cache.sequence(1).num_tokens == (cfg.total_blocks - 1) * 16

    def test_blocks_needed_to_extend(self):
        cache = PagedKvCache(make_config(block_tokens=16))
        cache.add_sequence(1, 16)
        assert cache.blocks_needed_to_extend(1, 0) == 0
        assert cache.blocks_needed_to_extend(1, 1) == 1
        assert cache.blocks_needed_to_extend(1, 32) == 2
        with pytest.raises(KeyError):
            cache.blocks_needed_to_extend(42)
        with pytest.raises(ValueError):
            cache.blocks_needed_to_extend(1, -1)

    def test_tp_shard_shrinks_bytes_per_token(self):
        full = make_config(model="llama2-70b")
        shard = KvCacheConfig(
            model=get_model("llama2-70b"), kv_format="int8",
            memory_budget_bytes=64 * 2**20, tp_degree=4,
        )
        assert shard.bytes_per_token == pytest.approx(full.bytes_per_token / 4)


class KvCacheMachine(RuleBasedStateMachine):
    """Stateful property test: the allocator never double-books or leaks blocks."""

    def __init__(self):
        super().__init__()
        self.config = make_config(budget_mb=16, block_tokens=16)
        self.cache = PagedKvCache(self.config)
        self.model_tokens = {}
        self.next_id = 0

    @rule(prompt=st.integers(min_value=0, max_value=600))
    def add(self, prompt):
        seq_id = self.next_id
        self.next_id += 1
        try:
            self.cache.add_sequence(seq_id, prompt)
        except KvCacheOutOfMemory:
            assert self.config.blocks_for_tokens(prompt) > self.cache.num_free_blocks
        else:
            self.model_tokens[seq_id] = prompt

    @precondition(lambda self: self.model_tokens)
    @rule(data=st.data())
    def append(self, data):
        seq_id = data.draw(st.sampled_from(sorted(self.model_tokens)))
        try:
            self.cache.append_token(seq_id)
        except KvCacheOutOfMemory:
            assert self.cache.num_free_blocks == 0
        else:
            self.model_tokens[seq_id] += 1

    @precondition(lambda self: self.model_tokens)
    @rule(data=st.data(), chunk=st.integers(min_value=0, max_value=300))
    def extend(self, data, chunk):
        """Chunked-prefill growth: extend by a whole chunk, all-or-nothing."""
        seq_id = data.draw(st.sampled_from(sorted(self.model_tokens)))
        needed = self.cache.blocks_needed_to_extend(seq_id, chunk)
        try:
            self.cache.extend_sequence(seq_id, chunk)
        except KvCacheOutOfMemory:
            assert needed > self.cache.num_free_blocks
        else:
            assert needed <= self.cache.config.total_blocks
            self.model_tokens[seq_id] += chunk

    @precondition(lambda self: self.model_tokens)
    @rule(data=st.data())
    def free(self, data):
        """Every block a sequence held must come back to the pool on free."""
        seq_id = data.draw(st.sampled_from(sorted(self.model_tokens)))
        held = self.cache.sequence(seq_id).num_blocks
        free_before = self.cache.num_free_blocks
        returned = self.cache.free_sequence(seq_id)
        assert returned == held
        assert self.cache.num_free_blocks == free_before + held
        del self.model_tokens[seq_id]

    @invariant()
    def block_accounting_consistent(self):
        used = sum(self.cache.sequence(s).num_blocks for s in self.model_tokens)
        assert used == self.cache.num_used_blocks
        assert used + self.cache.num_free_blocks == self.config.total_blocks

    @invariant()
    def blocks_match_token_counts(self):
        for seq_id, tokens in self.model_tokens.items():
            state = self.cache.sequence(seq_id)
            assert state.num_tokens == tokens
            assert state.num_blocks == self.config.blocks_for_tokens(tokens) if tokens else True

    @invariant()
    def no_block_shared_between_sequences(self):
        seen = set()
        for seq_id in self.model_tokens:
            for block in self.cache.sequence(seq_id).blocks:
                assert block not in seen
                seen.add(block)

    @invariant()
    def free_list_disjoint_from_used_and_duplicate_free(self):
        free = self.cache._free_blocks
        free_set = set(free)
        assert len(free_set) == len(free)  # no block listed free twice
        used = {block for seq_id in self.model_tokens
                for block in self.cache.sequence(seq_id).blocks}
        assert not (free_set & used)  # a block is never free and allocated at once
        assert free_set | used == set(range(self.config.total_blocks))


TestKvCacheStateMachine = KvCacheMachine.TestCase
