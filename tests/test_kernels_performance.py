"""Performance-model tests for the kernels: the orderings and crossovers the paper reports."""

import pytest

from repro.costmodel import GemmShape
from repro.kernels import ablation_kernels, get_kernel

#: LLaMA2-7B FFN gate/up GEMM — the shape the paper's motivation study profiles.
FFN_SHAPE_7B = dict(n=11008, k=4096)


def latency(kernel_name, m, device="H800", **kwargs):
    shape = GemmShape(m, FFN_SHAPE_7B["n"], FFN_SHAPE_7B["k"])
    return get_kernel(kernel_name).estimate(shape, device, **kwargs).latency_s


class TestKernelReports:
    def test_report_fields(self):
        report = get_kernel("liquidgemm").estimate(GemmShape(16, 4096, 4096))
        assert report.kernel == "liquidgemm"
        assert report.gpu == "H800"
        assert report.latency_s > 0
        assert report.latency_us == pytest.approx(report.latency_s * 1e6)
        assert report.tops > 0
        assert report.weight_bytes == pytest.approx(4096 * 4096 * 0.5)

    def test_alpha_recorded(self):
        assert get_kernel("liquidgemm").estimate(GemmShape(8, 512, 512)).alpha == pytest.approx(0.875)
        assert get_kernel("qserve-w4a8").estimate(GemmShape(8, 512, 512)).alpha > 4

    def test_pipeline_sim_report(self):
        report = get_kernel("liquidgemm").estimate(GemmShape(64, 4096, 4096), use_pipeline_sim=True)
        assert report.pipeline is not None
        assert report.pipeline.kind == "imfp"


class TestMemoryBoundRegime:
    """Small batch (Figures 5/12 left side): 4-bit kernels win on loaded bytes."""

    @pytest.mark.parametrize("m", [4, 8, 16, 32])
    def test_liquidgemm_beats_w8a8_and_fp16(self, m):
        assert latency("liquidgemm", m) < latency("w8a8", m)
        assert latency("liquidgemm", m) < latency("fp16", m)

    @pytest.mark.parametrize("m", [4, 16])
    def test_w8a8_beats_fp16(self, m):
        assert latency("w8a8", m) < latency("fp16", m)

    @pytest.mark.parametrize("m", [4, 16])
    def test_qserve_close_to_liquidgemm_when_memory_bound(self, m):
        """Figure 12: at small batch QServe and LiquidGEMM are comparable."""
        assert latency("qserve-w4a8", m) < 1.35 * latency("liquidgemm", m)

    def test_liquidgemm_memory_bound_at_small_batch(self):
        report = get_kernel("liquidgemm").estimate(GemmShape(8, **FFN_SHAPE_7B))
        assert report.breakdown.limited_by == "memory"


class TestComputeBoundRegime:
    """Large batch (Figures 5/12 right side): QServe degrades, LiquidGEMM stays ahead."""

    def test_qserve_degrades_at_large_batch(self):
        """The paper's headline kernel result: 2-3x speedup over QServe at batch 256."""
        speedup = latency("qserve-w4a8", 256) / latency("liquidgemm", 256)
        assert speedup > 1.8

    def test_qserve_speedup_grows_with_batch(self):
        speedups = [latency("qserve-w4a8", m) / latency("liquidgemm", m) for m in (16, 64, 256)]
        assert speedups == sorted(speedups)

    def test_liquidgemm_beats_trt_kernels_at_large_batch(self):
        """1.1-1.6x over W8A8/FP8 and more over W4A16 (Figure 12 right side)."""
        for baseline in ("w8a8", "fp8", "w4a16", "fp16"):
            ratio = latency(baseline, 256) / latency("liquidgemm", 256)
            assert ratio > 1.05, f"{baseline} should be slower at batch 256"

    def test_w4a16_loses_to_w8a8_when_compute_bound(self):
        """FP16 Tensor-Core roof: weight-only 4-bit falls behind once compute dominates."""
        assert latency("w4a16", 256) > latency("w8a8", 256)

    def test_qserve_slower_than_fp16_at_large_batch(self):
        """The motivation anomaly (Figure 5): existing W4A8 is no faster than FP16 at 256."""
        assert latency("qserve-w4a8", 256) > 0.85 * latency("fp16", 256)

    def test_liquidgemm_dequant_is_hidden(self):
        report = get_kernel("liquidgemm").estimate(GemmShape(256, **FFN_SHAPE_7B))
        bd = report.breakdown
        assert bd.t_dequant < bd.t_mma
        assert bd.limited_by in ("tensor_cores", "memory")

    def test_qserve_limited_by_cuda_cores(self):
        report = get_kernel("qserve-w4a8").estimate(GemmShape(256, **FFN_SHAPE_7B))
        assert report.breakdown.limited_by == "cuda_cores"


class TestAblation:
    """Figure 13's qualitative structure."""

    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for m in (4, 256):
            shape = GemmShape(m, **FFN_SHAPE_7B)
            out[m] = {
                name: kernel.estimate(shape, use_pipeline_sim=True).latency_s
                for name, kernel in ablation_kernels().items()
            }
        return out

    def test_lqq_alone_helps_at_large_batch(self, results):
        assert results[256]["baseline"] / results[256]["lqq"] > 1.15

    def test_lqq_alone_neutral_at_small_batch(self, results):
        ratio = results[4]["baseline"] / results[4]["lqq"]
        assert 0.95 < ratio < 1.15

    def test_excp_regresses_at_small_batch(self, results):
        assert results[4]["excp"] > results[4]["baseline"]

    def test_excp_helps_at_large_batch(self, results):
        assert results[256]["baseline"] / results[256]["excp"] > 1.15

    def test_imfp_best_everywhere(self, results):
        for m in (4, 256):
            for other in ("baseline", "lqq", "excp"):
                assert results[m]["imfp"] <= results[m][other] * 1.01

    def test_grouped_gemm_benefit(self):
        """ImFP's persistent grouped execution benefits MoE-style grouped GEMMs more than the
        serial baseline does (the paper's explanation of the Mixtral ablation)."""
        shape = GemmShape(16, 4096, 4096)
        group = [shape] * 8
        kernels = ablation_kernels()
        serial_single = kernels["lqq"].estimate(shape, use_pipeline_sim=True).latency_s
        serial_group = kernels["lqq"].estimate(shape, use_pipeline_sim=True, group_sizes=group).latency_s
        imfp_single = kernels["imfp"].estimate(shape, use_pipeline_sim=True).latency_s
        imfp_group = kernels["imfp"].estimate(shape, use_pipeline_sim=True, group_sizes=group).latency_s
        serial_overhead = serial_group / (8 * serial_single)
        imfp_overhead = imfp_group / (8 * imfp_single)
        assert imfp_overhead <= serial_overhead


class TestDeviceSensitivity:
    def test_a100_slower_than_h800(self):
        shape = GemmShape(128, 8192, 4096)
        kernel = get_kernel("liquidgemm")
        assert kernel.estimate(shape, "A100").latency_s > kernel.estimate(shape, "H800").latency_s

    def test_group_estimate_additivity(self):
        shape = GemmShape(32, 4096, 4096)
        kernel = get_kernel("liquidgemm")
        single = kernel.estimate(shape).latency_s
        grouped = kernel.estimate(shape, group_sizes=[shape, shape]).latency_s
        assert grouped == pytest.approx(2 * single, rel=0.01)
