"""Numerical-correctness tests for every GEMM kernel (repro.kernels)."""

import numpy as np
import pytest

from repro.kernels import (
    LiquidGemmKernel,
    QServeW4A8Kernel,
    W8A8Kernel,
    available_kernels,
    default_comparison_set,
    get_kernel,
)

#: Relative Frobenius-error budgets per kernel, reflecting their quantization precision.
ERROR_BUDGETS = {
    "fp16": 0.002,
    "w8a8": 0.03,
    "fp8": 0.08,
    "w4a16": 0.15,
    "qserve-w4a8": 0.15,
    "liquidgemm": 0.15,
}


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(7)
    w = rng.normal(0.0, 0.02, (256, 512))
    x = rng.normal(0.0, 1.0, (32, 512))
    return x, w, x @ w.T


class TestAllKernelsNumerics:
    @pytest.mark.parametrize("name", sorted(ERROR_BUDGETS))
    def test_output_close_to_reference(self, problem, name):
        x, w, reference = problem
        kernel = get_kernel(name)
        prepared = kernel.prepare_weights(w)
        y = kernel.run(x, prepared)
        assert y.shape == reference.shape
        rel = np.linalg.norm(y - reference) / np.linalg.norm(reference)
        assert rel < ERROR_BUDGETS[name], f"{name}: rel error {rel:.4f}"

    @pytest.mark.parametrize("name", sorted(ERROR_BUDGETS))
    def test_deterministic(self, problem, name):
        x, w, _ = problem
        kernel = get_kernel(name)
        prepared = kernel.prepare_weights(w)
        assert np.array_equal(kernel.run(x, prepared), kernel.run(x, prepared))

    @pytest.mark.parametrize("name", ["liquidgemm", "qserve-w4a8", "w4a16"])
    def test_4bit_kernels_compress_4x(self, problem, name):
        _, w, _ = problem
        prepared = get_kernel(name).prepare_weights(w)
        assert prepared.compression_ratio() > 3.5

    def test_w8a8_compresses_2x(self, problem):
        _, w, _ = problem
        assert W8A8Kernel().prepare_weights(w).compression_ratio() > 1.9

    def test_registry_contains_all_paper_kernels(self):
        names = available_kernels()
        for expected in ("fp16", "w8a8", "fp8", "w4a16", "qserve-w4a8", "liquidgemm"):
            assert expected in names

    def test_registry_unknown(self):
        with pytest.raises(KeyError):
            get_kernel("int2")

    def test_comparison_set_is_figure12_set(self):
        assert set(default_comparison_set()) == {
            "fp16", "w8a8", "fp8", "w4a16", "qserve-w4a8", "liquidgemm"
        }


class TestLiquidGemmSpecifics:
    def test_group_size_must_be_multiple_of_32(self):
        with pytest.raises(ValueError):
            LiquidGemmKernel(group_size=48)

    def test_register_tile_path_bit_exact(self, problem):
        """The emulated IMAD/XOR register path on the packed layout must agree bit-for-bit
        with the vectorized Equation-12 dequantization (the core kernel-correctness claim)."""
        _, w, _ = problem
        kernel = LiquidGemmKernel()
        prepared = kernel.prepare_weights(w)
        for tile_row, tile_col in [(0, 0), (1, 3), (3, 7)]:
            register_path, reference = kernel.verify_tile_path(prepared, tile_row, tile_col)
            assert np.array_equal(register_path, reference)

    def test_register_tile_path_instruction_count(self, problem):
        from repro.isa import InstructionStats

        _, w, _ = problem
        kernel = LiquidGemmKernel()
        prepared = kernel.prepare_weights(w)
        stats = InstructionStats()
        kernel.verify_tile_path(prepared, 0, 0, stats=stats)
        # 128 lanes x 4 registers x 7 instructions, grouped by shared (scale, offset): at most
        # that many, at least one sequence per register row group.
        assert 0 < stats.total_instructions <= 128 * 4 * 7
        assert stats.count("imad.u32") > 0 and stats.count("xor.b32") > 0

    def test_more_accurate_than_or_equal_to_qserve(self, problem):
        x, w, reference = problem
        liquid = LiquidGemmKernel()
        qserve = QServeW4A8Kernel()
        err_liquid = np.linalg.norm(liquid.run(x, liquid.prepare_weights(w)) - reference)
        err_qserve = np.linalg.norm(qserve.run(x, qserve.prepare_weights(w)) - reference)
        assert err_liquid <= err_qserve * 1.1

    def test_ragged_shapes_supported(self, rng):
        """N and K need not be multiples of the tile size for the numeric path."""
        w = rng.normal(0, 0.02, (100, 192))
        x = rng.normal(0, 1.0, (5, 192))
        kernel = LiquidGemmKernel()
        y = kernel.run(x, kernel.prepare_weights(w))
        rel = np.linalg.norm(y - x @ w.T) / np.linalg.norm(x @ w.T)
        assert rel < 0.2
