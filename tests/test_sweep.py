"""The sweep engine's contracts: deterministic cells, process-parallel reproducibility,
and a schema-stable consolidated payload.

The sweep is only useful as an experiment platform if a grid cell's result is a pure
function of its parameters: re-running, parallelizing, or *growing* the grid must never
change a surviving cell's numbers.  These tests pin that, plus the payload schema the
benchmark harness and CI artifacts rely on.
"""

import json

import pytest

from repro.reporting.schema import validate_payload
from repro.sweep import (
    SINGLE_REPLICA,
    SWEEP_SCHEMA,
    SweepGrid,
    cells_identical,
    derive_cell_seed,
    run_sweep,
    write_sweep_json,
)

SMALL_GRID = SweepGrid(
    systems=("liquidserve",),
    preemption_policies=("recompute", "hybrid"),
    arrival_rates_rps=(20.0,),
    cluster_shapes=(
        SINGLE_REPLICA,
        {"mode": "colocated", "num_replicas": 2, "router": "least-tokens"},
        {"mode": "disaggregated", "num_prefill_replicas": 1, "num_decode_replicas": 1},
    ),
    num_requests=15,
    kv_budget_bytes=2 * 2**30,
    host_kv_budget_bytes=2 * 2**30,
)


@pytest.fixture(scope="module")
def payload():
    return run_sweep(SMALL_GRID, parallel=False)


class TestGridExpansion:
    def test_cell_count_and_order(self):
        cells = SMALL_GRID.cells()
        assert len(cells) == 2 * 3  # preemption x cluster shapes
        assert [c["index"] for c in cells] == list(range(6))

    def test_seeds_keyed_by_parameters_not_position(self):
        """Growing the grid must not reseed surviving cells: seeds derive from the
        parameter key, so every (preemption, shape) combination keeps its seed when a
        scheduling policy is added."""
        import dataclasses

        grown = dataclasses.replace(SMALL_GRID, scheduling_policies=("fcfs", "sjf"))
        base = {
            (c["scheduling_policy"], c["preemption_policy"], c["cluster"]["mode"],
             c.get("cluster", {}).get("num_replicas")): c["seed"]
            for c in SMALL_GRID.cells()
        }
        grown_map = {
            (c["scheduling_policy"], c["preemption_policy"], c["cluster"]["mode"],
             c.get("cluster", {}).get("num_replicas")): c["seed"]
            for c in grown.cells()
        }
        for key, seed in base.items():
            assert grown_map[key] == seed

    def test_derive_cell_seed_is_stable(self):
        # Pinned value: the seed derivation must stay stable across releases, or every
        # committed sweep JSON silently changes meaning.
        assert derive_cell_seed(0, "model=llama2-7b|system=liquidserve") == (
            derive_cell_seed(0, "model=llama2-7b|system=liquidserve")
        )
        assert derive_cell_seed(0, "a") != derive_cell_seed(0, "b")
        assert derive_cell_seed(0, "a") != derive_cell_seed(1, "a")


class TestDeterminism:
    def test_serial_rerun_is_byte_identical(self, payload):
        again = run_sweep(SMALL_GRID, parallel=False)
        assert cells_identical(payload, again)

    def test_parallel_matches_serial(self, payload):
        parallel = run_sweep(SMALL_GRID, max_workers=2)
        assert cells_identical(payload, parallel)

    def test_cells_identical_detects_differences(self, payload):
        mutated = json.loads(json.dumps(payload))
        mutated["cells"][0]["metrics"]["generated_tokens"] += 1
        assert not cells_identical(payload, mutated)
        # ...but wall-clock noise alone must not count as a difference.
        jittered = json.loads(json.dumps(payload))
        jittered["cells"][0]["wall_time_s"] += 1.0
        assert cells_identical(payload, jittered)


class TestPayloadSchema:
    def test_payload_validates(self, payload):
        validate_payload(payload, SWEEP_SCHEMA)

    def test_every_cell_completed_its_trace(self, payload):
        for cell in payload["cells"]:
            assert cell["metrics"]["completed_requests"] == SMALL_GRID.num_requests
            assert cell["metrics"]["iterations"] > 0

    def test_cluster_cells_actually_fan_out(self, payload):
        labels = {cell["cluster"]["label"] for cell in payload["cells"]}
        assert labels == {"single", "colocated-2", "disaggregated-1p+1d"}

    def test_validator_rejects_mutations(self, payload):
        broken = json.loads(json.dumps(payload))
        del broken["cells"][1]["metrics"]["goodput_rps"]
        with pytest.raises(ValueError, match=r"cells\[1\].metrics.goodput_rps"):
            validate_payload(broken, SWEEP_SCHEMA)
        broken = json.loads(json.dumps(payload))
        broken["cells"] = {}
        with pytest.raises(ValueError, match="expected list"):
            validate_payload(broken, SWEEP_SCHEMA)

    def test_write_sweep_json_round_trips(self, payload, tmp_path):
        path = write_sweep_json(payload, str(tmp_path / "sweep.json"))
        with open(path, encoding="utf-8") as fh:
            loaded = json.load(fh)
        validate_payload(loaded, SWEEP_SCHEMA)
        assert cells_identical(payload, loaded)


class TestSingleCellAgainstCoreApi:
    def test_single_shape_matches_simulate_serving(self):
        """A sweep cell is the same simulation simulate_serving runs: same trace seed,
        same scheduler — so the headline numbers must agree exactly."""
        from repro.core import simulate_serving

        grid = SweepGrid(num_requests=25, arrival_rates_rps=(20.0,))
        cell = run_sweep(grid, parallel=False)["cells"][0]
        sim = simulate_serving(
            "liquidserve",
            "llama2-7b",
            num_requests=25,
            arrival_rate_rps=20.0,
            seed=cell["seed"],
        )
        assert cell["metrics"]["generated_tokens"] == sim.stats.generated_tokens
        assert cell["metrics"]["iterations"] == sim.stats.num_iterations
        assert cell["metrics"]["simulated_time_s"] == round(
            sim.stats.simulated_time_s, 6
        )
