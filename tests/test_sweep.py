"""The sweep engine's contracts: deterministic cells, process-parallel reproducibility,
and a schema-stable consolidated payload.

The sweep is only useful as an experiment platform if a grid cell's result is a pure
function of its parameters: re-running, parallelizing, or *growing* the grid must never
change a surviving cell's numbers.  These tests pin that, plus the payload schema the
benchmark harness and CI artifacts rely on.
"""

import json

import pytest

from repro.reporting.schema import validate_payload
from repro.sweep import (
    SINGLE_REPLICA,
    SWEEP_SCHEMA,
    SweepGrid,
    cells_identical,
    compute_frontier,
    derive_cell_seed,
    main as sweep_main,
    resolve_cell_profile,
    run_sweep,
    write_sweep_json,
)

SMALL_GRID = SweepGrid(
    systems=("liquidserve",),
    preemption_policies=("recompute", "hybrid"),
    arrival_rates_rps=(20.0,),
    cluster_shapes=(
        SINGLE_REPLICA,
        {"mode": "colocated", "num_replicas": 2, "router": "least-tokens"},
        {"mode": "disaggregated", "num_prefill_replicas": 1, "num_decode_replicas": 1},
    ),
    num_requests=15,
    kv_budget_bytes=2 * 2**30,
    host_kv_budget_bytes=2 * 2**30,
)


@pytest.fixture(scope="module")
def payload():
    return run_sweep(SMALL_GRID, parallel=False)


class TestGridExpansion:
    def test_cell_count_and_order(self):
        cells = SMALL_GRID.cells()
        assert len(cells) == 2 * 3  # preemption x cluster shapes
        assert [c["index"] for c in cells] == list(range(6))

    def test_seeds_keyed_by_parameters_not_position(self):
        """Growing the grid must not reseed surviving cells: seeds derive from the
        parameter key, so every (preemption, shape) combination keeps its seed when a
        scheduling policy is added."""
        import dataclasses

        grown = dataclasses.replace(SMALL_GRID, scheduling_policies=("fcfs", "sjf"))
        base = {
            (c["scheduling_policy"], c["preemption_policy"], c["cluster"]["mode"],
             c.get("cluster", {}).get("num_replicas")): c["seed"]
            for c in SMALL_GRID.cells()
        }
        grown_map = {
            (c["scheduling_policy"], c["preemption_policy"], c["cluster"]["mode"],
             c.get("cluster", {}).get("num_replicas")): c["seed"]
            for c in grown.cells()
        }
        for key, seed in base.items():
            assert grown_map[key] == seed

    def test_derive_cell_seed_is_stable(self):
        # Pinned value: the seed derivation must stay stable across releases, or every
        # committed sweep JSON silently changes meaning.
        assert derive_cell_seed(0, "model=llama2-7b|system=liquidserve") == (
            derive_cell_seed(0, "model=llama2-7b|system=liquidserve")
        )
        assert derive_cell_seed(0, "a") != derive_cell_seed(0, "b")
        assert derive_cell_seed(0, "a") != derive_cell_seed(1, "a")


class TestDeterminism:
    def test_serial_rerun_is_byte_identical(self, payload):
        again = run_sweep(SMALL_GRID, parallel=False)
        assert cells_identical(payload, again)

    def test_parallel_matches_serial(self, payload):
        parallel = run_sweep(SMALL_GRID, max_workers=2)
        assert cells_identical(payload, parallel)

    def test_cells_identical_detects_differences(self, payload):
        mutated = json.loads(json.dumps(payload))
        mutated["cells"][0]["metrics"]["generated_tokens"] += 1
        assert not cells_identical(payload, mutated)
        # ...but wall-clock noise alone must not count as a difference.
        jittered = json.loads(json.dumps(payload))
        jittered["cells"][0]["wall_time_s"] += 1.0
        assert cells_identical(payload, jittered)


class TestPayloadSchema:
    def test_payload_validates(self, payload):
        validate_payload(payload, SWEEP_SCHEMA)

    def test_every_cell_completed_its_trace(self, payload):
        for cell in payload["cells"]:
            assert cell["metrics"]["completed_requests"] == SMALL_GRID.num_requests
            assert cell["metrics"]["iterations"] > 0

    def test_cluster_cells_actually_fan_out(self, payload):
        labels = {cell["cluster"]["label"] for cell in payload["cells"]}
        assert labels == {"single", "colocated-2", "disaggregated-1p+1d"}

    def test_validator_rejects_mutations(self, payload):
        broken = json.loads(json.dumps(payload))
        del broken["cells"][1]["metrics"]["goodput_rps"]
        with pytest.raises(ValueError, match=r"cells\[1\].metrics.goodput_rps"):
            validate_payload(broken, SWEEP_SCHEMA)
        broken = json.loads(json.dumps(payload))
        broken["cells"] = {}
        with pytest.raises(ValueError, match="expected list"):
            validate_payload(broken, SWEEP_SCHEMA)

    def test_write_sweep_json_round_trips(self, payload, tmp_path):
        path = write_sweep_json(payload, str(tmp_path / "sweep.json"))
        with open(path, encoding="utf-8") as fh:
            loaded = json.load(fh)
        validate_payload(loaded, SWEEP_SCHEMA)
        assert cells_identical(payload, loaded)


class TestBackendAxes:
    """The quant-format x kernel x kv_format axes added by the backend layer."""

    BACKEND_GRID = SweepGrid(
        systems=("trt-fp16",),
        kernels=(None, "liquidgemm"),
        kv_formats=(None, "int4"),
        arrival_rates_rps=(20.0,),
        num_requests=10,
        kv_budget_bytes=2 * 2**30,
    )

    def test_default_axes_leave_existing_grids_untouched(self):
        """A grid without backend overrides expands to the exact pre-axis cells: same
        count, same keys, same seeds — the compatibility contract for committed JSONs."""
        cells = SMALL_GRID.cells()
        assert all(c["kernel"] is None and c["kv_format"] is None for c in cells)
        # Seed must not see the new axes when they are defaulted: key is unchanged.
        expected = derive_cell_seed(
            SMALL_GRID.base_seed,
            "model=llama2-7b|system=liquidserve|scheduling=fcfs"
            "|preemption=recompute|rate=20|cluster=single",
        )
        assert cells[0]["seed"] == expected

    def test_override_cells_get_distinct_seeds(self):
        cells = self.BACKEND_GRID.cells()
        assert len(cells) == 4  # kernels x kv_formats
        assert len({c["seed"] for c in cells}) == 4
        assert {(c["kernel"], c["kv_format"]) for c in cells} == {
            (None, None), (None, "int4"), ("liquidgemm", None), ("liquidgemm", "int4"),
        }

    def test_resolve_cell_profile_applies_overrides(self):
        cells = self.BACKEND_GRID.cells()
        default = resolve_cell_profile(cells[0])
        derived = resolve_cell_profile(cells[-1])
        assert default.kernel == "fp16" and default.kv_format == "fp8"
        assert derived.kernel == "liquidgemm" and derived.kv_format == "int4"
        assert derived.name == "trt-fp16[kernel=liquidgemm,kv_format=int4]"

    def test_sweep_runs_and_reports_effective_backend(self):
        payload = run_sweep(self.BACKEND_GRID, parallel=False)
        validate_payload(payload, SWEEP_SCHEMA)
        by_cfg = {
            (c["kernel"], c["kv_format"]): c["metrics"] for c in payload["cells"]
        }
        # Result rows carry the *effective* names, never None.
        assert ("fp16", "fp8") in by_cfg and ("liquidgemm", "int4") in by_cfg
        # The kernel override must actually change the simulated physics.
        assert (
            by_cfg[("fp16", "fp8")]["throughput_tokens_per_s"]
            != by_cfg[("liquidgemm", "fp8")]["throughput_tokens_per_s"]
        )
        assert payload["grid"]["kernels"] == ["default", "liquidgemm"]
        assert payload["grid"]["kv_formats"] == ["default", "int4"]


class TestFrontier:
    def test_frontier_in_payload_and_schema_valid(self, payload):
        frontier = payload["frontier"]
        assert frontier["num_points"] >= 1
        assert frontier["num_points"] + frontier["dominated_cells"] == payload["num_cells"]

    def test_frontier_is_pareto(self, payload):
        points = payload["frontier"]["points"]
        # Sorted by descending goodput-per-GPU; no point dominates another.
        goodputs = [p["goodput_per_gpu_rps"] for p in points]
        assert goodputs == sorted(goodputs, reverse=True)
        for p in points:
            for q in points:
                if p is q:
                    continue
                dominates = (
                    q["goodput_per_gpu_rps"] >= p["goodput_per_gpu_rps"]
                    and q["accuracy_rmse"] <= p["accuracy_rmse"]
                    and (
                        q["goodput_per_gpu_rps"] > p["goodput_per_gpu_rps"]
                        or q["accuracy_rmse"] < p["accuracy_rmse"]
                    )
                )
                assert not dominates

    def test_gpu_normalization(self, payload):
        by_label = {}
        for point in payload["frontier"]["points"]:
            by_label[point["cluster"]] = point["gpus"]
        for cell in payload["cells"]:
            label = cell["cluster"]["label"]
            if label in by_label:
                expected = {"single": 1, "colocated-2": 2, "disaggregated-1p+1d": 2}[label]
                assert by_label[label] == expected

    def test_compute_frontier_drops_dominated(self):
        rows = [
            {"index": i, "system": "s", "model": "m", "kernel": k, "kv_format": "int8",
             "cluster": {"mode": "single", "label": "single"},
             "metrics": {"goodput_rps": g, "slo_attainment": 1.0}}
            for i, (k, g) in enumerate(
                [("fp16", 1.0), ("liquidgemm", 2.0), ("qserve-w4a8", 1.5)]
            )
        ]
        frontier = compute_frontier(rows, tp_degree=1)
        # fp16 (rmse 0) and liquidgemm (max goodput) survive; qserve is dominated by
        # liquidgemm (its RMSE proxy is higher and its goodput lower).
        kept = {p["kernel"] for p in frontier["points"]}
        assert kept == {"fp16", "liquidgemm"}
        assert frontier["dominated_cells"] == 1


class TestCliValidation:
    """Unknown registry names fail fast at argparse time, listing what exists."""

    @pytest.mark.parametrize(
        "argv, fragment",
        [
            (["--systems", "nope"], "unknown --systems"),
            (["--models", "nope"], "unknown --models"),
            (["--kernels", "nope"], "unknown --kernels"),
            (["--kv-formats", "nope"], "unknown --kv-formats"),
        ],
    )
    def test_unknown_names_exit_with_listing(self, argv, fragment, capsys):
        with pytest.raises(SystemExit) as excinfo:
            sweep_main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert fragment in err and "available:" in err

    def test_cli_runs_tiny_grid(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        sweep_main(
            [
                "--out", str(out), "--serial", "--num-requests", "5",
                "--systems", "liquidserve", "--scheduling", "fcfs",
                "--preemption", "recompute", "--rates", "20",
                "--kernels", "default", "liquidgemm", "--kv-formats", "default",
            ]
        )
        with open(out, encoding="utf-8") as fh:
            loaded = json.load(fh)
        validate_payload(loaded, SWEEP_SCHEMA)
        assert loaded["num_cells"] == 2


class TestSingleCellAgainstCoreApi:
    def test_single_shape_matches_simulate_serving(self):
        """A sweep cell is the same simulation simulate_serving runs: same trace seed,
        same scheduler — so the headline numbers must agree exactly."""
        from repro.core import simulate_serving

        grid = SweepGrid(num_requests=25, arrival_rates_rps=(20.0,))
        cell = run_sweep(grid, parallel=False)["cells"][0]
        sim = simulate_serving(
            "liquidserve",
            "llama2-7b",
            num_requests=25,
            arrival_rate_rps=20.0,
            seed=cell["seed"],
        )
        assert cell["metrics"]["generated_tokens"] == sim.stats.generated_tokens
        assert cell["metrics"]["iterations"] == sim.stats.num_iterations
        assert cell["metrics"]["simulated_time_s"] == round(
            sim.stats.simulated_time_s, 6
        )
