"""Tests for the WGMMA fragment map, conventional layout analysis and dual-MMA packed layout."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.layout import (
    DUAL_MMA_TILE_COLS,
    DUAL_MMA_TILE_ROWS,
    FRAGMENT_COLS,
    FRAGMENT_ROWS,
    analyze_conventional_loads,
    analyze_dual_mma_loads,
    analyze_packed_2d_lds128,
    dual_mma_element_order,
    fragment_ownership_map,
    ldmatrix_misrouting,
    pack_dual_mma_tile,
    pack_weight_matrix,
    thread_fragment_elements,
    thread_registers,
    unpack_dual_mma_tile,
)


class TestFragmentMap:
    def test_each_thread_owns_16_elements(self):
        for warp in range(4):
            for thread in range(32):
                elements = thread_fragment_elements(warp, thread)
                assert len(elements) == 16
                assert len(set(elements)) == 16

    def test_elements_within_fragment(self):
        for warp in range(4):
            for thread in range(0, 32, 7):
                for row, col in thread_fragment_elements(warp, thread):
                    assert 0 <= row < FRAGMENT_ROWS
                    assert 0 <= col < FRAGMENT_COLS

    def test_ownership_is_a_partition(self):
        owner = fragment_ownership_map()
        assert owner.shape == (FRAGMENT_ROWS, FRAGMENT_COLS)
        assert owner.min() >= 0
        counts = np.bincount(owner.reshape(-1), minlength=128)
        assert np.all(counts == 16)

    def test_groups_of_four_contiguous_columns(self):
        for warp in range(4):
            for thread in range(32):
                elements = thread_fragment_elements(warp, thread)
                for g in range(4):
                    group = elements[4 * g : 4 * g + 4]
                    rows = {r for r, _ in group}
                    cols = [c for _, c in group]
                    assert len(rows) == 1
                    assert cols == list(range(cols[0], cols[0] + 4))

    def test_invalid_ids(self):
        with pytest.raises(ValueError):
            thread_fragment_elements(4, 0)
        with pytest.raises(ValueError):
            thread_fragment_elements(0, 32)


class TestConventionalLayout:
    def test_lds32_wastes_half_bandwidth(self):
        analysis = analyze_conventional_loads()
        assert analysis.instruction == "LDS.32"
        assert analysis.bandwidth_utilization == pytest.approx(0.5)
        assert analysis.loads_per_thread == 8          # 4 groups x 2 MMAs
        assert analysis.address_ops_per_thread == 8

    def test_ldmatrix_misroutes_half_the_elements(self):
        result = ldmatrix_misrouting()
        assert result["fraction_misrouted"] == pytest.approx(0.5)

    def test_effective_load_cost_accounts_for_conflicts(self):
        analysis = analyze_conventional_loads()
        assert analysis.effective_load_cost >= analysis.loads_per_thread


class TestDualMmaLayout:
    def test_pack_unpack_bijection(self, rng):
        tile = rng.integers(0, 16, (DUAL_MMA_TILE_ROWS, DUAL_MMA_TILE_COLS)).astype(np.uint8)
        assert np.array_equal(unpack_dual_mma_tile(pack_dual_mma_tile(tile)), tile)

    @given(hnp.arrays(np.uint8, shape=(64, 64), elements=st.integers(0, 15)))
    @settings(max_examples=10, deadline=None)
    def test_pack_unpack_bijection_property(self, tile):
        assert np.array_equal(unpack_dual_mma_tile(pack_dual_mma_tile(tile)), tile)

    def test_element_order_covers_tile(self):
        seen = set()
        for warp in range(4):
            for thread in range(32):
                order = dual_mma_element_order(warp, thread)
                assert len(order) == 32
                seen.update(order)
        assert len(seen) == DUAL_MMA_TILE_ROWS * DUAL_MMA_TILE_COLS

    def test_thread_registers_are_16_bytes(self, rng):
        tile = rng.integers(0, 16, (64, 64)).astype(np.uint8)
        packed = pack_dual_mma_tile(tile)
        regs = thread_registers(packed, 1, 5)
        assert regs.shape == (4,) and regs.dtype == np.uint32
        assert packed.smem_bytes() == 128 * 16

    def test_single_lds128_no_waste_no_conflicts(self):
        analysis = analyze_dual_mma_loads()
        assert analysis.instruction == "LDS.128"
        assert analysis.loads_per_thread == 1
        assert analysis.bandwidth_utilization == pytest.approx(1.0)
        assert analysis.max_bank_conflict_ways == 1

    def test_2d_packed_layout_conflicts(self):
        """The QServe-style 2-D arrangement conflicts; the paper's 1-D arrangement must not."""
        assert analyze_packed_2d_lds128().max_bank_conflict_ways > analyze_dual_mma_loads().max_bank_conflict_ways

    def test_fewer_load_instructions_than_conventional(self):
        assert analyze_dual_mma_loads().loads_per_thread < analyze_conventional_loads().loads_per_thread

    def test_pack_requires_exact_tile_shape(self, rng):
        with pytest.raises(ValueError):
            pack_dual_mma_tile(rng.integers(0, 16, (64, 32)).astype(np.uint8))


class TestPackedWeightMatrix:
    def test_tiling_with_padding(self, rng):
        q = rng.integers(0, 16, (100, 130)).astype(np.uint8)
        packed = pack_weight_matrix(q)
        assert packed.tile_grid == (2, 3)
        assert packed.n == 100 and packed.k == 130

    def test_exact_tiling(self, rng):
        q = rng.integers(0, 16, (128, 128)).astype(np.uint8)
        packed = pack_weight_matrix(q)
        assert packed.tile_grid == (2, 2)
        assert packed.gmem_bytes() == 4 * 128 * 16

    def test_roundtrip_through_tiles(self, rng):
        q = rng.integers(0, 16, (64, 128)).astype(np.uint8)
        packed = pack_weight_matrix(q)
        reconstructed = np.concatenate(
            [unpack_dual_mma_tile(t) for t in packed.tiles[0]], axis=1
        )
        assert np.array_equal(reconstructed[:, :128], q)

    def test_requires_2d(self, rng):
        with pytest.raises(ValueError):
            pack_weight_matrix(rng.integers(0, 16, (64,)).astype(np.uint8))
