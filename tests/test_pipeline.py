"""Tests for the warp-group pipeline simulator (repro.pipeline)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.costmodel import GemmShape, KernelCostParams, PipelineMode
from repro.gpu import H800
from repro.pipeline import (
    IterationTiming,
    PipelineKind,
    decompose_work,
    derive_iteration_timing,
    simulate_excp,
    simulate_imfp,
    simulate_pipeline,
    simulate_serial,
)


def timing(load=1.0, dq=0.5, mma=0.8, roundtrip=0.3, sync=0.1):
    return IterationTiming(t_load=load, t_dequant=dq, t_mma=mma,
                           t_smem_roundtrip=roundtrip, t_sync=sync)


KERNEL_PARAMS = KernelCostParams(
    name="x", weight_precision="int4", act_precision="int8", mma_precision="int8",
    alpha=0.875, pipeline=PipelineMode.FULL_OVERLAP, tile_m=128, tile_n=128, tile_k=64,
)


class TestIterationTiming:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            IterationTiming(-1, 0, 0, 0, 0)

    def test_derive_matches_cost_model_scales(self):
        shape = GemmShape(128, 8192, 4096)
        t = derive_iteration_timing(shape, H800, KERNEL_PARAMS)
        assert t.t_load > 0 and t.t_dequant > 0 and t.t_mma > 0
        # Tile is 128x64 int4 = 4 KiB; at block-level bandwidth this is sub-microsecond.
        assert t.t_load < 5e-6

    def test_decompose_work(self):
        shape = GemmShape(256, 8192, 4096)
        work = decompose_work(shape, H800, KERNEL_PARAMS)
        assert work.k_iterations == 4096 // 64
        assert work.total_tiles == (256 // 128) * (8192 // 128)
        assert work.concurrent_blocks == 132
        assert work.tiles_per_block >= 1

    def test_decompose_validation(self):
        with pytest.raises(ValueError):
            decompose_work(GemmShape(1, 1, 1), H800, KERNEL_PARAMS, blocks_per_sm=0)


class TestSerialPipeline:
    def test_steady_state_is_max_of_load_and_compute(self):
        t = timing(load=1.0, dq=0.3, mma=0.4)
        result = simulate_serial([t], [100])
        # Load (1.0) dominates dequant+mma (0.7): steady state ~= k * t_load.
        assert result.total_time == pytest.approx(100 * 1.0 + 0.7, rel=0.05)

    def test_compute_bound_case(self):
        t = timing(load=0.2, dq=0.5, mma=0.8)
        result = simulate_serial([t], [50])
        assert result.total_time == pytest.approx(50 * 1.3 + 0.2, rel=0.05)

    def test_busy_accounting_conserved(self):
        t = timing()
        result = simulate_serial([t], [20])
        assert result.busy["tma"] == pytest.approx(20 * t.t_load)
        assert result.busy["cuda"] == pytest.approx(20 * t.t_dequant)
        assert result.busy["tensor"] == pytest.approx(20 * t.t_mma)

    def test_iterations_counted(self):
        assert simulate_serial([timing(), timing()], [5, 7]).iterations == 12

    def test_per_gemm_overhead(self):
        t = timing(load=0.1, dq=0.1, mma=0.1)
        without = simulate_serial([t, t], [10, 10], per_gemm_overhead=0.0)
        with_overhead = simulate_serial([t, t], [10, 10], per_gemm_overhead=5.0)
        assert with_overhead.total_time >= without.total_time + 5.0 - 1e-9

    def test_input_validation(self):
        with pytest.raises(ValueError):
            simulate_serial([timing()], [0])
        with pytest.raises(ValueError):
            simulate_serial([timing(), timing()], [1])


class TestExcpPipeline:
    def test_roundtrip_and_sync_on_critical_path(self):
        """When memory-bound, ExCP's dequant stage (roundtrip + sync) can exceed t_load and
        become the bottleneck — the Figure 13 regression at small batch."""
        t = timing(load=1.0, dq=0.2, mma=0.1, roundtrip=1.0, sync=0.2)
        serial = simulate_serial([t], [100])
        excp = simulate_excp([t], [100])
        assert excp.total_time > serial.total_time

    def test_pipelining_helps_when_compute_dominates(self):
        t = timing(load=0.5, dq=1.0, mma=1.0, roundtrip=0.1, sync=0.01)
        serial = simulate_serial([t], [100])
        excp = simulate_excp([t], [100])
        # Serial pays dq+mma (2.0) per iteration; ExCP overlaps them across warp groups.
        assert excp.total_time < serial.total_time

    def test_busy_conservation(self):
        t = timing()
        result = simulate_excp([t], [30])
        assert result.busy["cuda"] == pytest.approx(30 * t.t_dequant)
        assert result.busy["tensor"] == pytest.approx(30 * t.t_mma)
        assert result.busy["smem"] == pytest.approx(30 * t.t_smem_roundtrip)


class TestImfpPipeline:
    def test_overlap_reaches_max_of_stages(self):
        t = timing(load=0.5, dq=0.6, mma=1.0, roundtrip=0.0, sync=0.0)
        result = simulate_imfp([t], [200], num_compute_wgs=2)
        # Steady state should approach k * max(stage) = 200 * 1.0.
        assert result.total_time == pytest.approx(200 * 1.0, rel=0.05)

    def test_never_worse_than_serial(self):
        for load, dq, mma in [(1, 0.1, 0.1), (0.1, 1, 0.5), (0.2, 0.5, 1.5), (1, 1, 1)]:
            t = timing(load=load, dq=dq, mma=mma)
            serial = simulate_serial([t], [64])
            imfp = simulate_imfp([t], [64])
            assert imfp.total_time <= serial.total_time * 1.01

    def test_never_worse_than_excp(self):
        for load, dq, mma in [(1, 0.1, 0.1), (0.1, 1, 0.5), (0.2, 0.5, 1.5)]:
            t = timing(load=load, dq=dq, mma=mma, roundtrip=0.2, sync=0.05)
            excp = simulate_excp([t], [64])
            imfp = simulate_imfp([t], [64])
            assert imfp.total_time <= excp.total_time * 1.01

    def test_single_compute_wg_serializes(self):
        t = timing(load=0.1, dq=1.0, mma=1.0)
        one = simulate_imfp([t], [50], num_compute_wgs=1)
        two = simulate_imfp([t], [50], num_compute_wgs=2)
        assert one.total_time > two.total_time
        assert one.total_time == pytest.approx(50 * 2.0, rel=0.05)

    def test_busy_conservation(self):
        t = timing()
        result = simulate_imfp([t], [30])
        assert result.busy["cuda"] == pytest.approx(30 * t.t_dequant)
        assert result.busy["tensor"] == pytest.approx(30 * t.t_mma)

    def test_grouped_gemm_no_overhead(self):
        t = timing(load=0.1, dq=0.1, mma=0.1)
        grouped = simulate_imfp([t] * 8, [10] * 8, per_gemm_overhead=0.0)
        single = simulate_imfp([t], [80])
        assert grouped.total_time == pytest.approx(single.total_time, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_imfp([timing()], [1], num_compute_wgs=0)

    @given(
        st.floats(0.01, 2.0), st.floats(0.0, 2.0), st.floats(0.01, 2.0),
        st.integers(4, 64),
    )
    @settings(max_examples=40, deadline=None)
    def test_total_time_bounds(self, load, dq, mma, iters):
        """Total time is bounded below by the busiest resource and above by full serialization."""
        t = timing(load=load, dq=dq, mma=mma, roundtrip=0.0, sync=0.0)
        result = simulate_imfp([t], [iters])
        lower = iters * max(load, dq, mma)
        upper = iters * (load + dq + mma) + 1e-9
        assert lower - 1e-9 <= result.total_time <= upper

    def test_bubble_fraction_in_unit_range(self):
        result = simulate_imfp([timing()], [16])
        assert 0.0 <= result.bubble_fraction <= 1.0
        assert 0.0 <= result.utilization("tensor") <= 1.0


class TestDispatch:
    def test_dispatch_by_kind(self):
        t = timing()
        for kind in PipelineKind.ALL:
            assert simulate_pipeline(kind, [t], [4]).kind == kind

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            simulate_pipeline("bogus", [timing()], [1])
