"""Tests for the accuracy study and the reporting helpers."""

import pytest

from repro.accuracy import STANDARD_DISTRIBUTIONS, WeightDistribution, run_accuracy_study
from repro.reporting import format_series, format_speedups, format_table


class TestAccuracyStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_accuracy_study(n=128, k=256, batch=32, seed=1)

    def test_all_schemes_and_distributions_covered(self, study):
        schemes = {r.scheme for r in study.results}
        distributions = {r.distribution for r in study.results}
        assert schemes == {"lqq", "qserve", "rtn-int4"}
        assert distributions == {d.name for d in STANDARD_DISTRIBUTIONS}
        assert len(study.results) == 9

    def test_lqq_matches_qserve_accuracy(self, study):
        """The paper's accuracy claim: LQQ does not degrade fidelity relative to QServe."""
        assert study.mean_output_rmse("lqq") <= study.mean_output_rmse("qserve") * 1.05

    def test_errors_are_4bit_scale(self, study):
        for result in study.results:
            assert 0.01 < result.weight_error["relative_fro"] < 0.30
            assert result.weight_error["snr_db"] > 10

    def test_summary_rows(self, study):
        rows = study.summary_rows()
        assert len(rows) == len(study.results)
        assert {"scheme", "distribution", "output_rel_err"} <= set(rows[0])

    def test_custom_distribution(self):
        custom = WeightDistribution("uniform", lambda rng, n, k: rng.uniform(-0.05, 0.05, (n, k)))
        study = run_accuracy_study(n=64, k=128, distributions=[custom], seed=0)
        assert {r.distribution for r in study.results} == {"uniform"}

    def test_bad_sampler_shape_rejected(self):
        bad = WeightDistribution("bad", lambda rng, n, k: rng.normal(size=(n, k + 1)))
        with pytest.raises(ValueError):
            run_accuracy_study(n=32, k=64, distributions=[bad])

    def test_reproducible_with_seed(self):
        a = run_accuracy_study(n=64, k=128, seed=3)
        b = run_accuracy_study(n=64, k=128, seed=3)
        assert a.mean_output_rmse("lqq") == b.mean_output_rmse("lqq")


class TestReporting:
    def test_format_table_basic(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 2.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.50" in text and "2.25" in text

    def test_format_table_row_length_check(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_series(self):
        text = format_series("batch", [4, 8], {"fp16": [1.0, 2.0], "w4a8": [0.5, 0.75]})
        assert "batch" in text and "fp16" in text and "w4a8" in text
        assert "0.75" in text

    def test_format_speedups(self):
        text = format_speedups("fp16", {"fp16": 2.0, "liquid": 1.0})
        assert "speedup vs fp16" in text
        assert "2" in text  # liquid is 2x faster

    def test_format_speedups_missing_baseline(self):
        with pytest.raises(KeyError):
            format_speedups("missing", {"a": 1.0})
