"""Tests for the device / occupancy model (repro.gpu.device)."""

import pytest

from repro.gpu import Device, H800, ThreadBlockConfig, get_gpu


@pytest.fixture
def liquidgemm_block():
    """The paper's thread-block organisation: one Load WG plus two Compute WGs."""
    return ThreadBlockConfig(
        tile_m=128, tile_n=128, tile_k=64,
        warp_group_roles=("load", "compute", "compute"),
    )


class TestThreadBlockConfig:
    def test_roles_validated(self):
        with pytest.raises(ValueError):
            ThreadBlockConfig(64, 64, 64, warp_group_roles=("bogus",))

    def test_dimensions_validated(self):
        with pytest.raises(ValueError):
            ThreadBlockConfig(0, 64, 64, warp_group_roles=("compute",))

    def test_needs_a_warp_group(self):
        with pytest.raises(ValueError):
            ThreadBlockConfig(64, 64, 64, warp_group_roles=())

    def test_thread_count(self, liquidgemm_block):
        assert liquidgemm_block.num_warp_groups == 3
        assert liquidgemm_block.num_threads(H800) == 384

    def test_compute_warp_groups(self, liquidgemm_block):
        assert liquidgemm_block.compute_warp_groups() == 2
        excp = ThreadBlockConfig(64, 64, 64, warp_group_roles=("load", "dequant", "mma"))
        assert excp.compute_warp_groups() == 1

    def test_smem_bytes_4bit_vs_8bit(self, liquidgemm_block):
        w4 = liquidgemm_block.smem_bytes("int4", "int8")
        w8 = liquidgemm_block.smem_bytes("int8", "int8")
        # Weight tile shrinks by 2x when weights go from 8 to 4 bits; activations unchanged.
        weight_tile_bytes = 128 * 64
        assert w8 - w4 == liquidgemm_block.smem_stage_count * weight_tile_bytes // 2

    def test_stage_count_scales_smem(self):
        one = ThreadBlockConfig(64, 64, 64, ("compute",), smem_stage_count=1)
        two = ThreadBlockConfig(64, 64, 64, ("compute",), smem_stage_count=2)
        assert two.smem_bytes("int8", "int8") == 2 * one.smem_bytes("int8", "int8")


class TestDevice:
    def test_construct_by_name_or_spec(self):
        assert Device("h800").spec is get_gpu("h800")
        assert Device(H800).spec is H800

    def test_occupancy_feasible(self, liquidgemm_block):
        result = Device("H800").occupancy(liquidgemm_block, "int4", "int8")
        assert result.is_feasible
        assert result.blocks_per_sm >= 1
        assert result.limited_by in {"smem", "registers", "threads", "hardware"}

    def test_occupancy_smem_limited_for_huge_tiles(self):
        block = ThreadBlockConfig(256, 256, 256, ("load", "compute"), smem_stage_count=4)
        result = Device("H800").occupancy(block, "int8", "int8")
        assert result.blocks_per_sm == 0
        assert result.limited_by == "smem"
        assert not result.is_feasible

    def test_block_level_throughput_scales_with_occupancy(self):
        dev = Device("H800")
        assert dev.block_level_bandwidth(2) == pytest.approx(dev.block_level_bandwidth(1) / 2)
        assert dev.block_level_tensor_ops("int8", 2) == pytest.approx(
            dev.block_level_tensor_ops("int8", 1) / 2
        )
        assert dev.block_level_cuda_ops(2) == pytest.approx(dev.block_level_cuda_ops(1) / 2)

    def test_concurrent_blocks(self):
        dev = Device("H800")
        assert dev.concurrent_blocks(1) == 132
        assert dev.concurrent_blocks(2) == 264

    def test_weight_memory_feasible(self):
        dev = Device("H800")
        assert dev.weight_memory_feasible(70 * 2**30, 5 * 2**30)
        assert not dev.weight_memory_feasible(70 * 2**30, 20 * 2**30)
