"""Tests for the PTX-level instruction emulation (repro.isa)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    InstructionStats,
    add_u32,
    and_b32,
    bfe_u32,
    bfi_b32,
    broadcast_byte,
    imad_u32,
    lop3_b32,
    mul_lo_u32,
    not_b32,
    or_b32,
    pack_bytes,
    prmt_b32,
    shl_b32,
    shr_b32,
    sub_u32,
    to_u32,
    unpack_bytes,
    vadd4_lowered,
    vsub4_lowered,
    xor_b32,
)

u32 = st.integers(min_value=0, max_value=2**32 - 1)
u8 = st.integers(min_value=0, max_value=255)


class TestBasicOps:
    @given(u32, u32)
    def test_and_or_xor_match_python(self, a, b):
        assert int(and_b32(a, b)) == (a & b)
        assert int(or_b32(a, b)) == (a | b)
        assert int(xor_b32(a, b)) == (a ^ b)

    @given(u32)
    def test_not(self, a):
        assert int(not_b32(a)) == (~a) & 0xFFFFFFFF

    @given(u32, st.integers(min_value=0, max_value=31))
    def test_shifts(self, a, s):
        assert int(shr_b32(a, s)) == (a >> s)
        assert int(shl_b32(a, s)) == (a << s) & 0xFFFFFFFF

    def test_shift_out_of_range(self):
        with pytest.raises(ValueError):
            shr_b32(1, 32)
        with pytest.raises(ValueError):
            shl_b32(1, -1)

    @given(u32, u32)
    def test_add_sub_wrap(self, a, b):
        assert int(add_u32(a, b)) == (a + b) & 0xFFFFFFFF
        assert int(sub_u32(a, b)) == (a - b) & 0xFFFFFFFF

    @given(u32, u32)
    def test_mul_lo(self, a, b):
        assert int(mul_lo_u32(a, b)) == (a * b) & 0xFFFFFFFF

    @given(u32, u32, u32)
    def test_imad(self, a, b, c):
        assert int(imad_u32(a, b, c)) == (a * b + c) & 0xFFFFFFFF

    def test_to_u32_rejects_floats(self):
        with pytest.raises(TypeError):
            to_u32(np.array([1.5]))

    def test_vectorized_over_arrays(self):
        a = np.array([1, 2, 3], dtype=np.uint32)
        assert np.array_equal(add_u32(a, 1), np.array([2, 3, 4], dtype=np.uint32))


class TestByteHelpers:
    @given(u8, u8, u8, u8)
    def test_pack_unpack_roundtrip(self, b0, b1, b2, b3):
        packed = pack_bytes(b0, b1, b2, b3)
        unpacked = unpack_bytes(packed)
        assert [int(x) for x in unpacked] == [b0, b1, b2, b3]

    @given(u8)
    def test_broadcast_byte(self, b):
        assert broadcast_byte(b) == b * 0x01010101

    def test_broadcast_byte_range(self):
        with pytest.raises(ValueError):
            broadcast_byte(256)


class TestBitfieldOps:
    @given(u32, st.integers(0, 24), st.integers(1, 8))
    def test_bfe(self, a, pos, length):
        assert int(bfe_u32(a, pos, length)) == (a >> pos) & ((1 << length) - 1)

    @given(u32, u32, st.integers(0, 24), st.integers(1, 8))
    def test_bfi(self, src, dst, pos, length):
        mask = ((1 << length) - 1) << pos
        expected = (dst & ~mask) | ((src << pos) & mask)
        assert int(bfi_b32(src, dst, pos, length)) == expected & 0xFFFFFFFF

    def test_invalid_field(self):
        with pytest.raises(ValueError):
            bfe_u32(0, 30, 8)


class TestLop3:
    @given(u32, u32, u32)
    def test_lop3_and_or(self, a, b, c):
        # immLut 0xEA encodes (a & b) | c.
        assert int(lop3_b32(a, b, c, 0xEA)) == ((a & b) | c) & 0xFFFFFFFF

    @given(u32, u32, u32)
    def test_lop3_xor3(self, a, b, c):
        # immLut 0x96 encodes a ^ b ^ c.
        assert int(lop3_b32(a, b, c, 0x96)) == (a ^ b ^ c) & 0xFFFFFFFF

    def test_lut_range(self):
        with pytest.raises(ValueError):
            lop3_b32(0, 0, 0, 0x100)


class TestPrmt:
    def test_identity_selector(self):
        a = 0x03020100
        b = 0x07060504
        assert int(prmt_b32(a, b, 0x3210)) == a
        assert int(prmt_b32(a, b, 0x7654)) == b

    def test_interleave(self):
        a = 0x03020100
        b = 0x07060504
        assert int(prmt_b32(a, b, 0x5140)) == 0x05010400

    def test_selector_range(self):
        with pytest.raises(ValueError):
            prmt_b32(0, 0, 0x10000)


class TestSimdWithinRegister:
    @given(st.lists(u8, min_size=4, max_size=4), st.lists(u8, min_size=4, max_size=4))
    def test_vadd4_per_byte(self, xs, ys):
        a = pack_bytes(*xs)
        b = pack_bytes(*ys)
        result = unpack_bytes(vadd4_lowered(a, b))
        assert [int(v) for v in result] == [(x + y) & 0xFF for x, y in zip(xs, ys)]

    @given(st.lists(u8, min_size=4, max_size=4), st.lists(u8, min_size=4, max_size=4))
    def test_vsub4_per_byte(self, xs, ys):
        a = pack_bytes(*xs)
        b = pack_bytes(*ys)
        result = unpack_bytes(vsub4_lowered(a, b))
        assert [int(v) for v in result] == [(x - y) & 0xFF for x, y in zip(xs, ys)]

    def test_vadd4_is_expensive(self):
        """The lowering must cost an order of magnitude more than a native op (Section 3.2)."""
        stats = InstructionStats()
        vadd4_lowered(np.uint32(0), np.uint32(0), stats)
        assert stats.total_instructions >= 12

    def test_native_imad_is_single_issue(self):
        stats = InstructionStats()
        imad_u32(np.uint32(1), np.uint32(2), np.uint32(3), stats)
        assert stats.total_instructions == 1


class TestInstructionStats:
    def test_record_and_count(self):
        stats = InstructionStats()
        stats.record("imad.u32", count=3)
        stats.record("xor.b32")
        assert stats.count("imad.u32") == 3
        assert stats.total_instructions == 4
        assert stats.alu_issue_slots() == 4

    def test_per_element(self):
        stats = InstructionStats()
        stats.record("imad.u32", count=7)
        assert stats.per_element(8) == pytest.approx(7 / 8)
        with pytest.raises(ValueError):
            stats.per_element(0)

    def test_units_tracked_separately(self):
        stats = InstructionStats()
        stats.record("lds.128", unit="ldst")
        stats.record("imad.u32", unit="alu")
        assert stats.alu_issue_slots() == 1
        assert stats.issue_slots_by_unit["ldst"] == 1

    def test_merged_and_reset(self):
        a, b = InstructionStats(), InstructionStats()
        a.record("xor.b32")
        b.record("xor.b32", count=2)
        merged = a.merged(b)
        assert merged.count("xor.b32") == 3
        a.reset()
        assert a.total_instructions == 0

    def test_summary_mentions_opcodes(self):
        stats = InstructionStats()
        stats.record("imad.u32")
        assert "imad.u32" in stats.summary()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            InstructionStats().record("x", count=-1)
