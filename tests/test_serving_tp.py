"""Tests for tensor-parallel serving: sharded shapes, per-GPU memory, all-reduce cost, and
the headline multi-GPU scenario (Llama2-70B FP16: OOM on one GPU, finite on four)."""

import pytest

from repro.core import simulate_serving
from repro.serving import (
    ContinuousBatchingScheduler,
    Request,
    ServingEngine,
    get_model,
)
from repro.workloads import decode_layer_gemms


class TestModelSharding:
    def test_validate_tp(self):
        model = get_model("llama2-7b")
        model.validate_tp(1)
        model.validate_tp(8)
        with pytest.raises(ValueError):
            model.validate_tp(3)  # 32 heads not divisible by 3
        with pytest.raises(ValueError):
            model.validate_tp(0)

    def test_head_sharding(self):
        model = get_model("llama2-70b")  # 64 heads, 8 KV heads (GQA)
        assert model.heads_per_gpu(4) == 16
        assert model.kv_heads_per_gpu(4) == 2
        assert model.kv_replication_factor(4) == 1.0

    def test_kv_replication_when_tp_exceeds_kv_heads(self):
        model = get_model("llama2-70b")
        assert model.kv_heads_per_gpu(16) == 1  # replicated, not fractional
        assert model.kv_replication_factor(16) == 2.0

    def test_weight_params_shard_close_to_even(self):
        model = get_model("llama2-70b")
        full = model.gemm_weight_params()
        per_gpu = model.gemm_weight_params_per_gpu(4)
        assert per_gpu < full / 4 * 1.02  # GQA KV replication adds <2% here
        assert per_gpu > full / 4 * 0.99

    def test_sharded_gemm_shapes(self):
        model = get_model("llama2-7b")
        full = decode_layer_gemms(model, 16)
        half = decode_layer_gemms(model, 16, tp_degree=2)
        assert half.qkv.n == full.qkv.n // 2
        assert half.out_proj.k == full.out_proj.k // 2
        assert half.gate_up[0].n == full.gate_up[0].n // 2
        assert half.down[0].k == full.down[0].k // 2
        # M (token count) and the non-reduced dims are unchanged.
        assert half.qkv.m == full.qkv.m
        assert half.out_proj.n == full.out_proj.n


class TestEngineTensorParallel:
    def test_70b_fp16_oom_on_one_gpu_finite_on_four(self):
        """The acceptance scenario: tp_degree=4 turns Table 1's OOM into a finite peak."""
        single = ServingEngine("trt-fp16", "llama2-70b")
        assert single.peak_throughput(batch_sizes=[1, 16, 64]).oom

        sharded = ServingEngine("trt-fp16", "llama2-70b", tp_degree=4)
        result = sharded.peak_throughput(batch_sizes=[1, 16, 64, 128])
        assert not result.oom
        assert result.peak_throughput > 0
        assert result.tp_degree == 4

    def test_weight_memory_shards(self):
        full = ServingEngine("liquidserve", "llama2-70b")
        tp4 = ServingEngine("liquidserve", "llama2-70b", tp_degree=4)
        assert tp4.weight_memory_bytes() < full.weight_memory_bytes() / 3.5
        assert tp4.kv_budget_bytes() > full.kv_budget_bytes()

    def test_per_gpu_kv_bytes_shrink(self):
        tp1 = ServingEngine("liquidserve", "llama2-70b").kv_cache_config()
        tp4 = ServingEngine("liquidserve", "llama2-70b", tp_degree=4).kv_cache_config()
        assert tp4.bytes_per_token == pytest.approx(tp1.bytes_per_token / 4)

    def test_allreduce_cost(self):
        tp1 = ServingEngine("liquidserve", "llama2-70b")
        tp4 = ServingEngine("liquidserve", "llama2-70b", tp_degree=4)
        assert tp1.allreduce_time(64) == 0.0
        assert tp4.allreduce_time(64) > 0.0
        assert tp4.allreduce_time(128) > tp4.allreduce_time(64)
        assert tp4.layer_breakdown(64, 1024).comm > 0.0
        assert tp1.layer_breakdown(64, 1024).comm == 0.0

    def test_tp_speeds_up_large_model_decode(self):
        tp1 = ServingEngine("liquidserve", "llama2-70b")
        tp4 = ServingEngine("liquidserve", "llama2-70b", tp_degree=4)
        assert tp4.decode_step_time(64, 1024) < tp1.decode_step_time(64, 1024)

    def test_moe_tensor_parallel(self):
        tp2 = ServingEngine("liquidserve", "mixtral-8x7b", tp_degree=2)
        point = tp2.throughput(32)
        assert point.tokens_per_second > 0

    def test_invalid_tp_rejected(self):
        with pytest.raises(ValueError):
            ServingEngine("liquidserve", "llama2-7b", tp_degree=5)


class TestTensorParallelServing:
    def test_scheduler_runs_on_tp_engine(self):
        engine = ServingEngine("trt-fp16", "llama2-70b", tp_degree=4)
        scheduler = ContinuousBatchingScheduler(engine, max_batch_size=8)
        stats = scheduler.run([Request(i, prompt_tokens=128, output_tokens=8)
                               for i in range(8)])
        assert stats.completed_requests == 8
        assert scheduler.kv_cache.num_used_blocks == 0

    def test_simulate_serving_tp(self):
        sim = simulate_serving(
            "trt-fp16",
            "llama2-70b",
            tp_degree=4,
            num_requests=32,
            arrival_rate_rps=4.0,
            seed=0,
        )
        assert sim.stats.completed_requests == 32
        assert sim.tp_degree == 4
        assert sim.throughput_tokens_per_s > 0
