"""Tests for the attention cost model, serving systems, engine and scheduler."""

import pytest

from repro.gpu import H800
from repro.serving import (
    ContinuousBatchingScheduler,
    Request,
    ServingEngine,
    TABLE1_SYSTEMS,
    decode_attention_cost,
    get_model,
    get_system,
    list_systems,
    prefill_attention_cost,
)


class TestAttentionCost:
    def test_kv_read_dominates_decode(self):
        cost = decode_attention_cost(get_model("llama2-7b"), H800, 64, 1024, 1.0)
        assert cost.kv_read > cost.compute
        assert cost.kv_read > cost.kv_write
        assert cost.total > 0

    def test_linear_in_batch_and_context(self):
        model = get_model("llama2-7b")
        base = decode_attention_cost(model, H800, 16, 512, 1.0).kv_read
        assert decode_attention_cost(model, H800, 32, 512, 1.0).kv_read == pytest.approx(2 * base)
        assert decode_attention_cost(model, H800, 16, 1024, 1.0).kv_read == pytest.approx(2 * base)

    def test_kv_precision_scales_read_time(self):
        model = get_model("llama2-7b")
        int8 = decode_attention_cost(model, H800, 16, 512, 1.0).kv_read
        int4 = decode_attention_cost(model, H800, 16, 512, 0.5).kv_read
        fp16 = decode_attention_cost(model, H800, 16, 512, 2.0).kv_read
        assert int4 == pytest.approx(int8 / 2) and fp16 == pytest.approx(2 * int8)

    def test_gqa_reduces_attention_cost(self):
        mha = decode_attention_cost(get_model("llama2-7b"), H800, 16, 1024, 1.0).total
        gqa = decode_attention_cost(get_model("llama3-8b"), H800, 16, 1024, 1.0).total
        assert gqa < mha / 2

    def test_attention_efficiency(self):
        model = get_model("llama2-7b")
        full = decode_attention_cost(model, H800, 16, 512, 1.0, attention_efficiency=1.0)
        half = decode_attention_cost(model, H800, 16, 512, 1.0, attention_efficiency=0.5)
        assert half.kv_read == pytest.approx(2 * full.kv_read)

    def test_validation(self):
        with pytest.raises(ValueError):
            decode_attention_cost(get_model("llama2-7b"), H800, 0, 10, 1.0)
        with pytest.raises(ValueError):
            decode_attention_cost(get_model("llama2-7b"), H800, 1, 10, 1.0, attention_efficiency=0)

    def test_prefill_quadratic_in_prompt(self):
        model = get_model("llama2-7b")
        short = prefill_attention_cost(model, H800, 4, 256).compute
        long = prefill_attention_cost(model, H800, 4, 512).compute
        assert long == pytest.approx(4 * short, rel=0.01)


class TestSystemProfiles:
    def test_all_table1_systems_defined(self):
        for name in TABLE1_SYSTEMS:
            assert get_system(name).name == name
        assert len(TABLE1_SYSTEMS) == 7

    def test_w8a8_does_not_support_moe(self):
        assert not get_system("trt-w8a8").supports_moe
        assert get_system("liquidserve").supports_moe

    def test_weight_bytes(self):
        assert get_system("trt-fp16").weight_bytes_per_param == 2.0
        assert get_system("trt-w8a8").weight_bytes_per_param == 1.0
        assert 0.5 < get_system("liquidserve").weight_bytes_per_param < 0.6

    def test_kv_formats(self):
        assert get_system("qserve").kv_format == "int4"
        assert get_system("liquidserve").kv_format == "int8"
        assert get_system("trt-fp8").kv_format == "fp8"

    def test_unknown_system(self):
        with pytest.raises(KeyError):
            get_system("vllm")

    def test_list_systems(self):
        assert set(TABLE1_SYSTEMS) <= set(list_systems())


class TestServingEngineMemory:
    def test_weight_memory_matches_model_size(self):
        engine = ServingEngine("trt-fp16", "llama2-7b")
        assert engine.weight_memory_bytes() == pytest.approx(13.5e9, rel=0.1)
        engine4 = ServingEngine("liquidserve", "llama2-7b")
        assert engine4.weight_memory_bytes() < engine.weight_memory_bytes() / 3

    def test_fp16_70b_does_not_fit(self):
        engine = ServingEngine("trt-fp16", "llama2-70b")
        assert engine.max_batch_size(1536) == 0
        assert engine.peak_throughput().oom

    def test_w8a8_mixtral_unsupported(self):
        assert ServingEngine("trt-w8a8", "mixtral-8x7b").peak_throughput().oom

    def test_4bit_weights_allow_larger_batches(self):
        fp16_batch = ServingEngine("trt-fp16", "llama2-13b").max_batch_size(1536)
        w4_batch = ServingEngine("liquidserve", "llama2-13b").max_batch_size(1536)
        assert w4_batch > fp16_batch

    def test_qserve_kv4_allows_larger_batches_than_int8(self):
        int8 = ServingEngine("liquidserve", "llama1-30b").kv_cache_config()
        int4 = ServingEngine("qserve", "llama1-30b").kv_cache_config()
        assert int4.bytes_per_token < int8.bytes_per_token


class TestServingEngineTiming:
    def test_breakdown_positive_and_additive(self):
        engine = ServingEngine("liquidserve", "llama2-7b")
        bd = engine.layer_breakdown(64, 1024)
        assert bd.gemm > 0 and bd.attention > 0 and bd.others > 0
        assert bd.total == pytest.approx(bd.gemm + bd.attention + bd.others)
        fr = bd.fractions()
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_gemm_fraction_shrinks_with_batch(self):
        """Figure 4: GEMM dominates at small batch; attention grows with batch and context."""
        engine = ServingEngine("liquidserve", "llama2-7b")
        small = engine.layer_breakdown(4, 1024).fractions()["gemm"]
        large = engine.layer_breakdown(256, 1024).fractions()["gemm"]
        assert small > large
        assert small > 0.5

    def test_decode_step_scales_with_layers(self):
        b7 = ServingEngine("liquidserve", "llama2-7b").decode_step_time(16, 512)
        b13 = ServingEngine("liquidserve", "llama2-13b").decode_step_time(16, 512)
        assert b13 > b7

    def test_moe_gemm_slower_than_dense_equivalent(self):
        dense = ServingEngine("liquidserve", "mistral-7b").layer_gemm_time(64)
        moe = ServingEngine("liquidserve", "mixtral-8x7b").layer_gemm_time(64)
        assert moe > dense  # eight experts' weights stream through memory

    def test_throughput_point_fields(self):
        point = ServingEngine("liquidserve", "llama2-7b").throughput(32)
        assert point.tokens_per_second > 0
        assert point.decode_step_s > 0
        assert point.request_latency_s > point.decode_step_s
        assert point.fits_in_memory

    def test_throughput_fits_uses_peak_residency(self):
        """Regression: fits_in_memory checked input+output tokens while the scheduler's
        admission guard uses peak residency input+output-1 (the last generated token is
        never appended); a batch exactly at capacity was misreported as OOM."""
        engine = ServingEngine("liquidserve", "llama2-7b")
        # Lengths straddling a block boundary: peak residency needs one block fewer than
        # the naive input+output count, so the two capacities differ.
        input_len, output_len = 1024, 513
        at_peak = engine.max_batch_size(input_len + output_len - 1)
        naive = engine.max_batch_size(input_len + output_len)
        assert at_peak > naive
        assert engine.throughput(at_peak, input_len, output_len).fits_in_memory
        assert not engine.throughput(at_peak + 1, input_len, output_len).fits_in_memory

    def test_kv_transfer_time_scales_with_bytes(self):
        engine = ServingEngine("liquidserve", "llama2-7b")
        assert engine.kv_transfer_time(0) == 0.0
        one_mb = engine.kv_transfer_time(2**20)
        ten_mb = engine.kv_transfer_time(10 * 2**20)
        assert 0 < one_mb < ten_mb
        # Fixed DMA latency means 10x the bytes costs less than 10x the time.
        assert ten_mb < 10 * one_mb

    def test_recompute_time_grows_with_context(self):
        engine = ServingEngine("liquidserve", "llama2-7b")
        assert engine.recompute_time(0) == 0.0
        assert 0 < engine.recompute_time(256) < engine.recompute_time(2048)

    def test_host_swap_budget_reaches_kv_config(self):
        engine = ServingEngine("liquidserve", "llama2-7b")
        config = engine.kv_cache_config()
        assert config.host_memory_budget_bytes == engine.system.host_kv_swap_bytes
        assert config.total_host_blocks > 0


class TestTable1Properties:
    """The qualitative structure of Table 1 that the reproduction must preserve."""

    @pytest.fixture(scope="class")
    def peaks(self):
        out = {}
        for model in ("llama2-7b", "llama2-70b", "yi-34b", "mixtral-8x7b"):
            out[model] = {
                system: ServingEngine(system, model).peak_throughput(
                    batch_sizes=[1, 4, 16, 64, 128, 192, 256]
                )
                for system in TABLE1_SYSTEMS
            }
        return out

    def test_liquidserve_wins_on_every_model(self, peaks):
        for model, row in peaks.items():
            best_other = max(
                r.peak_throughput for name, r in row.items() if name != "liquidserve"
            )
            assert row["liquidserve"].peak_throughput >= best_other, model

    def test_liquidserve_beats_its_own_qserve_kernel_variant(self, peaks):
        """LiquidServe vs LiquidServe/wo isolates the GEMM kernel's contribution."""
        for model, row in peaks.items():
            assert row["liquidserve"].peak_throughput > 1.05 * row["liquidserve-wo"].peak_throughput

    def test_speedup_over_qserve_largest_on_large_or_gqa_models(self, peaks):
        s7 = peaks["llama2-7b"]["liquidserve"].peak_throughput / peaks["llama2-7b"]["qserve"].peak_throughput
        s70 = peaks["llama2-70b"]["liquidserve"].peak_throughput / peaks["llama2-70b"]["qserve"].peak_throughput
        assert s70 > s7 > 1.0

    def test_oom_entries(self, peaks):
        assert peaks["llama2-70b"]["trt-fp16"].oom
        assert peaks["mixtral-8x7b"]["trt-fp16"].oom
        assert peaks["mixtral-8x7b"]["trt-w8a8"].oom

    def test_peak_batch_reported(self, peaks):
        result = peaks["llama2-7b"]["liquidserve"]
        assert result.peak_batch_size >= 128
        assert "(" in result.label


class TestScheduler:
    def test_completes_all_requests(self):
        engine = ServingEngine("liquidserve", "llama2-7b")
        scheduler = ContinuousBatchingScheduler(engine, max_batch_size=8)
        requests = [Request(i, prompt_tokens=64, output_tokens=8, arrival_time_s=0.0) for i in range(12)]
        stats = scheduler.run(requests)
        assert stats.completed_requests == 12
        assert stats.generated_tokens == 12 * 8
        assert stats.peak_batch_size <= 8
        assert 0 < stats.peak_kv_utilization <= 1.0
        assert scheduler.kv_cache.num_used_blocks == 0  # everything released

    def test_throughput_positive_and_latency_ordering(self):
        engine = ServingEngine("liquidserve", "llama2-7b")
        stats = ContinuousBatchingScheduler(engine, max_batch_size=4).run(
            [Request(i, 32, 4) for i in range(4)]
        )
        assert stats.throughput_tokens_per_s > 0
        assert stats.mean_ttft_s <= stats.mean_latency_s

    def test_oversized_model_raises(self):
        engine = ServingEngine("trt-fp16", "llama2-70b")
        with pytest.raises(Exception):
            ContinuousBatchingScheduler(engine)


class TestBoundedMemoCaches:
    """The engine's step-cost memos must stay bounded (long multi-config sweeps reuse
    one engine) and observable (the cache-stats debug hook), without ever changing
    results — every entry is a pure function of its key."""

    def test_cache_stats_shape_and_growth(self):
        engine = ServingEngine("liquidserve", "llama2-7b")
        stats = engine.cache_stats()
        assert set(stats) == {
            "layer_gemm", "lm_head", "layer_others", "allreduce",
            "decode_step", "decode_coeffs", "chunk_attention",
        }
        for entry in stats.values():
            assert entry == {"entries": 0, "max_entries": 65536, "evictions": 0}
        engine.decode_iteration_time(4, 4096)
        stats = engine.cache_stats()
        assert stats["decode_step"]["entries"] == 1
        assert stats["decode_coeffs"]["entries"] == 1

    def test_eviction_bounds_entries_and_preserves_values(self):
        tiny = ServingEngine("liquidserve", "llama2-7b", memo_cache_entries=8)
        reference = ServingEngine("liquidserve", "llama2-7b")
        values = {
            total: tiny.decode_iteration_time(2, total)
            for total in range(100, 100 + 40)
        }
        stats = tiny.cache_stats()["decode_step"]
        assert stats["entries"] <= 8
        assert stats["evictions"] == 40 - 8
        # Re-computing an evicted key gives the identical value: eviction is invisible
        # to results, only to memory.
        for total, value in values.items():
            assert tiny.decode_iteration_time(2, total) == value
            assert reference.decode_iteration_time(2, total) == value

    def test_memo_cache_entries_validated(self):
        with pytest.raises(ValueError, match="positive"):
            ServingEngine("liquidserve", "llama2-7b", memo_cache_entries=0)
