"""Cluster-level serving tests: router-fed replicas on a shared clock, co-located vs.
single-replica equivalence, and the KV-handoff conservation invariants of disaggregated
prefill/decode."""

import pytest

from repro.core import simulate_cluster, simulate_serving
from repro.serving import (
    ClusterSpec,
    ContinuousBatchingScheduler,
    Request,
    ServingCluster,
    ServingEngine,
)
from repro.workloads.traces import merge_traces, sharegpt_trace


@pytest.fixture(scope="module")
def trace():
    return sharegpt_trace(40, rate_rps=20.0, seed=7)


class TestClusterSpec:
    def test_defaults(self):
        spec = ClusterSpec()
        assert spec.mode == "colocated"
        assert spec.total_replicas == 2
        assert spec.roles() == ["mixed", "mixed"]
        assert spec.default_router == "round-robin"

    def test_disaggregated_roles_and_totals(self):
        spec = ClusterSpec(mode="disaggregated", num_prefill_replicas=2,
                           num_decode_replicas=3)
        assert spec.total_replicas == 5
        assert spec.roles() == ["prefill", "prefill", "decode", "decode", "decode"]
        assert spec.default_router == "disaggregated"

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError, match="unknown cluster mode"):
            ClusterSpec(mode="sharded")
        with pytest.raises(ValueError, match="num_replicas"):
            ClusterSpec(num_replicas=0)
        with pytest.raises(ValueError, match="disaggregated mode needs"):
            ClusterSpec(mode="disaggregated", num_prefill_replicas=0)

    def test_num_replicas_rejected_in_disaggregated_mode(self):
        """A requested fleet size must never be silently ignored."""
        with pytest.raises(ValueError, match="colocated mode only"):
            ClusterSpec(mode="disaggregated", num_replicas=8)
        with pytest.raises(ValueError, match="colocated mode only"):
            simulate_cluster(mode="disaggregated", num_replicas=8, num_requests=2)


class TestColocatedEquivalence:
    def test_single_replica_cluster_matches_plain_scheduler(self, trace):
        """The acceptance criterion: N=1 co-located IS simulate_serving, bit for bit."""
        single = ContinuousBatchingScheduler(
            ServingEngine("liquidserve", "llama2-7b")
        ).run(trace)
        cluster = ServingCluster(
            "liquidserve", "llama2-7b", ClusterSpec(mode="colocated", num_replicas=1)
        ).run(trace)
        replica = cluster.replica_stats[0]
        assert cluster.simulated_time_s == single.simulated_time_s
        assert cluster.completed_requests == single.completed_requests
        assert cluster.generated_tokens == single.generated_tokens
        assert replica.mean_ttft_s == single.mean_ttft_s
        assert replica.p99_ttft_s == single.p99_ttft_s
        assert replica.mean_tpot_s == single.mean_tpot_s
        assert replica.num_iterations == single.num_iterations
        assert replica.prefill_chunks == single.prefill_chunks
        assert replica.preemptions == single.preemptions

    def test_simulate_cluster_n1_matches_simulate_serving(self):
        kwargs = dict(num_requests=40, arrival_rate_rps=20.0, seed=3)
        sim = simulate_serving("liquidserve", "llama2-7b", **kwargs)
        cl = simulate_cluster("liquidserve", "llama2-7b", mode="colocated",
                              num_replicas=1, **kwargs)
        assert cl.result.simulated_time_s == sim.stats.simulated_time_s
        assert cl.result.generated_tokens == sim.stats.generated_tokens
        assert cl.slo.p50_ttft_s == sim.slo.p50_ttft_s
        assert cl.slo.p99_ttft_s == sim.slo.p99_ttft_s
        assert cl.slo.mean_tpot_s == sim.slo.mean_tpot_s
        assert cl.slo.mean_queue_time_s == sim.slo.mean_queue_time_s

    def test_round_robin_spreads_requests(self, trace):
        cluster = ServingCluster(
            "liquidserve", "llama2-7b", ClusterSpec(mode="colocated", num_replicas=2)
        )
        result = cluster.run(trace)
        assert result.completed_requests == len(trace)
        per_replica = [s.completed_requests for s in result.replica_stats]
        assert all(n > 0 for n in per_replica)
        assert sum(per_replica) == len(trace)
        assert result.kv_handoffs == 0  # no migration in co-located mode

    def test_more_replicas_cut_makespan_under_load(self):
        heavy = sharegpt_trace(60, rate_rps=200.0, seed=5)  # near-simultaneous burst
        one = ServingCluster("liquidserve", "llama2-7b",
                             ClusterSpec(num_replicas=1)).run(heavy)
        four = ServingCluster("liquidserve", "llama2-7b",
                              ClusterSpec(num_replicas=4)).run(heavy)
        assert four.simulated_time_s < one.simulated_time_s


class TestDisaggregated:
    @pytest.fixture(scope="class")
    def cluster_and_result(self, trace):
        cluster = ServingCluster(
            "liquidserve", "llama2-7b",
            ClusterSpec(mode="disaggregated", num_prefill_replicas=1,
                        num_decode_replicas=1),
        )
        return cluster, cluster.run(trace)

    def test_all_requests_complete_with_merged_lifecycle(self, trace, cluster_and_result):
        _, result = cluster_and_result
        assert result.completed_requests == len(trace)
        assert result.generated_tokens == sum(r.output_tokens for r in trace)
        by_id = {r.request_id: r for r in result.requests}
        for r in trace:
            merged = by_id[r.request_id]
            assert merged.generated == r.output_tokens
            assert merged.first_scheduled_time_s is not None
            assert merged.first_token_time_s is not None
            assert merged.completion_time_s >= merged.first_token_time_s
            assert merged.first_token_time_s >= merged.arrival_time_s

    def test_kv_handoff_conservation(self, trace, cluster_and_result):
        """Every multi-token request migrates once; bytes match its prompt blocks; both
        replicas' pools drain to empty."""
        cluster, result = cluster_and_result
        migrating = [r for r in trace if r.output_tokens > 1]
        assert result.kv_handoffs == len(migrating)
        config = cluster.replicas[0].scheduler.kv_cache.config
        expected_bytes = sum(
            config.blocks_for_tokens(r.prompt_tokens) * config.bytes_per_block
            for r in migrating
        )
        assert result.kv_handoff_bytes == expected_bytes
        assert result.kv_handoff_s > 0.0
        for replica in cluster.replicas:
            assert replica.scheduler.kv_cache.num_used_blocks == 0
            assert replica.scheduler.kv_cache.num_used_host_blocks == 0

    def test_first_token_on_prefill_rest_on_decode(self, trace, cluster_and_result):
        """Token accounting splits exactly at the handoff: prefill replicas emit one token
        per request, decode replicas the remainder."""
        cluster, result = cluster_and_result
        prefill_tokens = sum(
            s.generated_tokens
            for s, rep in zip(result.replica_stats, cluster.replicas)
            if rep.role == "prefill"
        )
        decode_tokens = sum(
            s.generated_tokens
            for s, rep in zip(result.replica_stats, cluster.replicas)
            if rep.role == "decode"
        )
        assert prefill_tokens == len(trace)
        assert decode_tokens == sum(r.output_tokens - 1 for r in trace)

    def test_handoff_delay_reaches_decode_clock(self, trace, cluster_and_result):
        """A migrated sequence cannot start decoding before its KV transfer lands."""
        _, result = cluster_and_result
        interconnect_s = result.kv_handoff_s / max(1, result.kv_handoffs)
        assert interconnect_s > 0.0
        for merged in result.requests:
            if merged.output_tokens > 1:
                assert merged.completion_time_s > merged.first_token_time_s

    def test_rerun_is_deterministic(self, trace):
        spec = ClusterSpec(mode="disaggregated", num_prefill_replicas=1,
                           num_decode_replicas=1)
        first = ServingCluster("liquidserve", "llama2-7b", spec).run(trace)
        second = ServingCluster("liquidserve", "llama2-7b", spec).run(trace)
        assert second.simulated_time_s == pytest.approx(first.simulated_time_s)
        assert second.kv_handoff_bytes == first.kv_handoff_bytes
        assert second.completed_requests == first.completed_requests

    def test_survives_decode_kv_pressure(self):
        """Migrated sequences must coexist with preemption churn on the decode side."""
        trace = [Request(i, prompt_tokens=300, output_tokens=64, arrival_time_s=0.002 * i)
                 for i in range(12)]
        cluster = ServingCluster(
            "liquidserve", "llama2-7b",
            ClusterSpec(mode="disaggregated", num_prefill_replicas=1,
                        num_decode_replicas=1),
            kv_budget_bytes=256 * 2**20,
            host_kv_budget_bytes=512 * 2**20,
            preemption_policy="hybrid",
        )
        result = cluster.run(trace)
        assert result.completed_requests == 12
        assert result.generated_tokens == 12 * 64
        for replica in cluster.replicas:
            assert replica.scheduler.kv_cache.num_used_blocks == 0
            assert replica.scheduler.kv_cache.num_used_host_blocks == 0


class TestClusterValidation:
    def test_duplicate_request_ids_rejected(self, trace):
        cluster = ServingCluster("liquidserve", "llama2-7b", ClusterSpec(num_replicas=2))
        with pytest.raises(ValueError, match="unique request ids"):
            cluster.run([Request(1, 64, 8), Request(1, 64, 8)])

    def test_unservable_request_rejected_before_any_routing(self):
        cluster = ServingCluster("liquidserve", "llama2-7b", ClusterSpec(num_replicas=2),
                                 kv_budget_bytes=64 * 2**20)
        pool = cluster.replicas[0].scheduler.kv_cache.config
        too_big = pool.total_blocks * pool.block_tokens + 16
        with pytest.raises(ValueError, match="never be scheduled"):
            cluster.run([Request(0, prompt_tokens=too_big, output_tokens=4)])

    def test_unknown_router_rejected_at_construction(self):
        with pytest.raises(KeyError, match="unknown router policy"):
            ServingCluster("liquidserve", "llama2-7b",
                           ClusterSpec(num_replicas=2, router="magic"))


class TestMergeTraces:
    def test_fan_in_sorts_and_renumbers(self):
        a = sharegpt_trace(5, rate_rps=10.0, seed=0)
        b = sharegpt_trace(5, rate_rps=10.0, seed=1)
        merged = merge_traces(a, b)
        assert len(merged) == 10
        arrivals = [r.arrival_time_s for r in merged]
        assert arrivals == sorted(arrivals)
        assert [r.request_id for r in merged] == list(range(10))
        # Inputs are untouched (copies are renumbered, not the originals).
        assert {r.request_id for r in a} == set(range(5))

    def test_duplicate_ids_without_reassign_rejected(self):
        a = sharegpt_trace(3, rate_rps=10.0, seed=0)
        b = sharegpt_trace(3, rate_rps=10.0, seed=1)
        with pytest.raises(ValueError, match="duplicate request ids"):
            merge_traces(a, b, reassign_ids=False)

    def test_disjoint_ids_pass_through(self):
        a = sharegpt_trace(3, rate_rps=10.0, seed=0)
        b = sharegpt_trace(3, rate_rps=10.0, seed=1)
        for i, r in enumerate(b):
            r.request_id = 100 + i
        merged = merge_traces(a, b, reassign_ids=False)
        assert len(merged) == 6
        assert merged[0] in a or merged[0] in b  # original objects, not copies

    def test_merged_trace_serves_on_a_cluster(self):
        merged = merge_traces(
            sharegpt_trace(6, rate_rps=30.0, seed=0),
            sharegpt_trace(6, rate_rps=30.0, seed=1),
        )
        result = ServingCluster(
            "liquidserve", "llama2-7b", ClusterSpec(num_replicas=2)
        ).run(merged)
        assert result.completed_requests == 12
