"""Tests for trace generation (arrival processes, length distributions) and SLO metrics."""

import numpy as np
import pytest

from repro.serving.metrics import (
    SloSpec,
    compute_slo_report,
    percentile,
    request_metrics,
)
from repro.serving.scheduler import Request
from repro.workloads import (
    SHAREGPT_OUTPUTS,
    SHAREGPT_PROMPTS,
    ArrivalProcess,
    LengthDistribution,
    generate_trace,
    sharegpt_trace,
)


class TestArrivalProcess:
    def test_poisson_mean_rate(self):
        rng = np.random.default_rng(0)
        times = ArrivalProcess.poisson(rate_rps=50.0).sample(20000, rng)
        gaps = np.diff(times)
        assert gaps.mean() == pytest.approx(1 / 50.0, rel=0.05)
        # Poisson: CV of inter-arrival gaps is 1.
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, rel=0.05)

    def test_gamma_burstiness(self):
        rng = np.random.default_rng(0)
        bursty = ArrivalProcess.gamma(rate_rps=50.0, cv=2.0).sample(20000, rng)
        gaps = np.diff(bursty)
        assert gaps.mean() == pytest.approx(1 / 50.0, rel=0.05)
        assert gaps.std() / gaps.mean() == pytest.approx(2.0, rel=0.1)

    def test_monotone_nonnegative(self):
        rng = np.random.default_rng(1)
        times = ArrivalProcess.poisson(10.0).sample(100, rng)
        assert times[0] >= 0
        assert np.all(np.diff(times) >= 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalProcess(rate_rps=0.0)
        with pytest.raises(ValueError):
            ArrivalProcess(rate_rps=1.0, cv=0.0)


class TestLengthDistribution:
    def test_constant(self):
        rng = np.random.default_rng(0)
        lengths = LengthDistribution.constant(128).sample(10, rng)
        assert (lengths == 128).all()

    def test_uniform_bounds(self):
        rng = np.random.default_rng(0)
        lengths = LengthDistribution.uniform(64, 512).sample(1000, rng)
        assert lengths.min() >= 64 and lengths.max() < 512

    def test_lognormal_long_tail(self):
        rng = np.random.default_rng(0)
        dist = LengthDistribution.lognormal(median=180.0, sigma=1.1, maximum=4096)
        lengths = dist.sample(20000, rng)
        assert np.median(lengths) == pytest.approx(180.0, rel=0.1)
        # Heavy upper tail: p99 is many times the median, mean well above the median.
        assert np.percentile(lengths, 99) > 5 * np.median(lengths)
        assert lengths.mean() > 1.4 * np.median(lengths)
        assert lengths.min() >= 1 and lengths.max() <= 4096

    def test_validation(self):
        with pytest.raises(ValueError):
            LengthDistribution(kind="zipf")
        with pytest.raises(ValueError):
            LengthDistribution(kind="constant", minimum=0)

    def test_degenerate_uniform_bounds_rejected_clearly(self):
        """Regression: uniform(5, 5) used to die deep inside numpy; low=0 emitted 0-token
        prompts that the scheduler's admission guard later rejected."""
        with pytest.raises(ValueError, match="1 <= low < high"):
            LengthDistribution.uniform(5, 5)
        with pytest.raises(ValueError, match="1 <= low < high"):
            LengthDistribution.uniform(0, 16)
        with pytest.raises(ValueError, match="1 <= low < high"):
            LengthDistribution.uniform(32, 16)
        assert LengthDistribution.uniform(1, 2).low == 1  # the smallest legal band

    def test_uniform_bounds_not_validated_for_other_kinds(self):
        # kind="lognormal" keeps the (unused) uniform defaults; they must not be checked.
        assert LengthDistribution.lognormal(median=10.0, sigma=0.5).sigma == 0.5

    def test_lognormal_shape_validated(self):
        with pytest.raises(ValueError, match="sigma must be positive"):
            LengthDistribution.lognormal(median=100.0, sigma=0.0)
        with pytest.raises(ValueError, match="median must be positive"):
            LengthDistribution.lognormal(median=0.0, sigma=1.0)


class TestTraceGeneration:
    def test_deterministic_under_seed(self):
        a = sharegpt_trace(64, rate_rps=10.0, seed=7)
        b = sharegpt_trace(64, rate_rps=10.0, seed=7)
        assert [(r.prompt_tokens, r.output_tokens, r.arrival_time_s) for r in a] == [
            (r.prompt_tokens, r.output_tokens, r.arrival_time_s) for r in b
        ]
        c = sharegpt_trace(64, rate_rps=10.0, seed=8)
        assert [r.prompt_tokens for r in a] != [r.prompt_tokens for r in c]

    def test_request_fields_valid(self):
        trace = generate_trace(
            100,
            ArrivalProcess.poisson(5.0),
            SHAREGPT_PROMPTS,
            SHAREGPT_OUTPUTS,
            seed=3,
            start_id=1000,
        )
        assert [r.request_id for r in trace] == list(range(1000, 1100))
        for r in trace:
            assert r.prompt_tokens >= 1
            assert r.output_tokens >= 1
            assert r.arrival_time_s >= 0.0
        arrivals = [r.arrival_time_s for r in trace]
        assert arrivals == sorted(arrivals)

    def test_num_requests_validation(self):
        with pytest.raises(ValueError):
            generate_trace(0, ArrivalProcess.poisson(1.0), SHAREGPT_PROMPTS, SHAREGPT_OUTPUTS)

    def test_priorities_default_to_zero(self):
        trace = sharegpt_trace(32, rate_rps=10.0, seed=7)
        assert all(r.priority == 0 for r in trace)

    def test_priority_levels_sampled_without_perturbing_lengths(self):
        """Priorities are drawn after the length samples, so the same seed yields the same
        prompts/outputs/arrivals whether or not priorities are requested."""
        plain = sharegpt_trace(64, rate_rps=10.0, seed=7)
        tiered = sharegpt_trace(64, rate_rps=10.0, seed=7, num_priority_levels=4)
        assert [(r.prompt_tokens, r.output_tokens, r.arrival_time_s) for r in plain] == [
            (r.prompt_tokens, r.output_tokens, r.arrival_time_s) for r in tiered
        ]
        levels = {r.priority for r in tiered}
        assert levels <= set(range(4))
        assert len(levels) > 1  # 64 draws over 4 levels: all-equal is (1/4)^63-unlikely

    def test_explicit_priorities(self):
        explicit = list(range(10))
        trace = generate_trace(
            10, ArrivalProcess.poisson(5.0), SHAREGPT_PROMPTS, SHAREGPT_OUTPUTS,
            seed=3, priorities=explicit,
        )
        assert [r.priority for r in trace] == explicit
        with pytest.raises(ValueError, match="priorities has"):
            generate_trace(
                10, ArrivalProcess.poisson(5.0), SHAREGPT_PROMPTS, SHAREGPT_OUTPUTS,
                priorities=[1, 2],
            )
        with pytest.raises(ValueError, match="num_priority_levels"):
            generate_trace(
                10, ArrivalProcess.poisson(5.0), SHAREGPT_PROMPTS, SHAREGPT_OUTPUTS,
                num_priority_levels=0,
            )


class TestPercentile:
    def test_basic(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)

    def test_empty_and_single(self):
        assert percentile([], 99) == 0.0
        assert percentile([3.0], 10) == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestSloMetrics:
    def _request(self, rid, arrival, first, done, output):
        return Request(
            request_id=rid,
            prompt_tokens=16,
            output_tokens=output,
            arrival_time_s=arrival,
            first_token_time_s=first,
            completion_time_s=done,
            generated=output,
        )

    def test_request_metrics_fields(self):
        r = self._request(0, arrival=1.0, first=1.5, done=2.5, output=11)
        (m,) = request_metrics([r])
        assert m.ttft_s == pytest.approx(0.5)
        assert m.latency_s == pytest.approx(1.5)
        assert m.tpot_s == pytest.approx(0.1)  # 1.0s over 10 decode tokens

    def test_incomplete_requests_skipped(self):
        r = Request(0, 16, 4)
        assert request_metrics([r]) == []

    def test_single_token_requests_excluded_from_tpot_percentiles(self):
        multi = self._request(0, 0.0, 0.1, 1.1, 11)    # tpot 0.1
        single = self._request(1, 0.0, 0.1, 0.1, 1)    # tpot undefined (reported 0.0)
        report = compute_slo_report([multi, single], makespan_s=2.0)
        assert report.p50_tpot_s == pytest.approx(0.1)  # not dragged down by the 0.0
        assert report.completed == 2  # but the request still counts toward attainment

    def test_goodput_counts_only_slo_attaining(self):
        fast = self._request(0, 0.0, 0.1, 1.0, 10)   # ttft .1, tpot .1
        slow = self._request(1, 0.0, 5.0, 50.0, 10)  # ttft 5, tpot 5
        report = compute_slo_report([fast, slow], SloSpec(ttft_s=1.0, tpot_s=0.2),
                                    makespan_s=50.0)
        assert report.completed == 2
        assert report.slo_attained == 1
        assert report.attainment == 0.5
        assert report.goodput_rps == pytest.approx(1 / 50.0)
        assert report.p99_ttft_s > report.p50_ttft_s
