"""Tests for the memory hierarchy model (repro.gpu.memory)."""

import pytest
from hypothesis import given, strategies as st

from repro.gpu import (
    H800,
    GlobalMemory,
    MemoryRegion,
    OutOfMemoryError,
    RegisterFile,
    SharedMemory,
    TrafficCounter,
    bytes_for,
    smem_bank_conflicts,
)
from repro.gpu.memory import smem_bank_conflicts_phased


class TestBytesFor:
    @pytest.mark.parametrize(
        "n, precision, expected",
        [
            (8, "int4", 4),
            (7, "int4", 4),      # rounds up to whole bytes
            (1, "int4", 1),
            (10, "int8", 10),
            (10, "fp16", 20),
            (3, "fp32", 12),
            (0, "int4", 0),
        ],
    )
    def test_values(self, n, precision, expected):
        assert bytes_for(n, precision) == expected

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            bytes_for(-1, "int8")


class TestTrafficCounter:
    def test_accumulates(self):
        t = TrafficCounter()
        t.record_read(100)
        t.record_write(50)
        t.record_read(10)
        assert t.bytes_read == 110
        assert t.bytes_written == 50
        assert t.num_reads == 2
        assert t.num_writes == 1
        assert t.total_bytes == 160

    def test_merged(self):
        a, b = TrafficCounter(), TrafficCounter()
        a.record_read(5)
        b.record_write(7)
        merged = a.merged(b)
        assert merged.bytes_read == 5 and merged.bytes_written == 7

    def test_reset(self):
        t = TrafficCounter()
        t.record_read(5)
        t.reset()
        assert t.total_bytes == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TrafficCounter().record_read(-1)


class TestMemoryRegion:
    def test_allocate_and_free(self):
        region = MemoryRegion("test", capacity=100)
        region.allocate("a", 60)
        assert region.used == 60 and region.free_bytes == 40
        assert region.free("a") == 60
        assert region.used == 0

    def test_over_allocation_raises(self):
        region = MemoryRegion("test", capacity=100)
        region.allocate("a", 60)
        with pytest.raises(OutOfMemoryError):
            region.allocate("b", 50)

    def test_duplicate_label_raises(self):
        region = MemoryRegion("test", capacity=100)
        region.allocate("a", 10)
        with pytest.raises(ValueError):
            region.allocate("a", 10)

    def test_resize_within_capacity(self):
        region = MemoryRegion("test", capacity=100)
        region.allocate("a", 10)
        region.resize("a", 90)
        assert region.used == 90
        with pytest.raises(OutOfMemoryError):
            region.resize("a", 101)

    def test_free_unknown_raises(self):
        with pytest.raises(KeyError):
            MemoryRegion("test", capacity=10).free("missing")

    def test_fits(self):
        region = MemoryRegion("test", capacity=10)
        assert region.fits(10) and not region.fits(11)


class TestDerivedRegions:
    def test_global_memory_capacity_and_transfer(self):
        gmem = GlobalMemory(H800)
        assert gmem.capacity == H800.memory_capacity
        assert gmem.transfer_time(3.3e12) == pytest.approx(1.0)
        assert gmem.transfer_time(3.3e12, efficiency=0.5) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            gmem.transfer_time(1, efficiency=0.0)

    def test_shared_memory(self):
        smem = SharedMemory(H800)
        assert smem.capacity == H800.smem_per_sm
        assert smem.num_banks == 32

    def test_register_file(self):
        rf = RegisterFile(H800)
        rf.allocate("acc", 1024)
        assert rf.registers_used() == 256


class TestBankConflicts:
    def test_conflict_free_sequential(self):
        addrs = [4 * i for i in range(32)]
        assert smem_bank_conflicts(addrs) == 1

    def test_same_address_broadcast(self):
        assert smem_bank_conflicts([0] * 32) == 1

    def test_worst_case_same_bank(self):
        addrs = [128 * i for i in range(32)]  # all map to bank 0
        assert smem_bank_conflicts(addrs) == 32

    def test_two_way(self):
        # Two half-warps touch the same 16 banks at different 128-byte rows.
        addrs = [4 * (i % 16) + 128 * (i // 16) for i in range(32)]
        assert smem_bank_conflicts(addrs) == 2

    def test_empty(self):
        assert smem_bank_conflicts([]) == 0

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            smem_bank_conflicts([-4])

    def test_phased_lds128_conflict_free(self):
        bases = [16 * t for t in range(32)]
        assert smem_bank_conflicts_phased(bases, bytes_per_access=16) == 1

    def test_phased_lds128_conflicting_pitch(self):
        bases = [(t // 4) * 128 + (t % 4) * 16 for t in range(32)]
        assert smem_bank_conflicts_phased(bases, bytes_per_access=16) >= 2

    def test_phased_invalid_access_size(self):
        with pytest.raises(ValueError):
            smem_bank_conflicts_phased([0], bytes_per_access=3)

    @given(st.lists(st.integers(min_value=0, max_value=2**16), min_size=1, max_size=32))
    def test_conflict_degree_bounds(self, addrs):
        ways = smem_bank_conflicts(addrs)
        assert 1 <= ways <= len(addrs)
