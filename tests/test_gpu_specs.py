"""Tests for the GPU hardware specifications (repro.gpu.specs)."""

import pytest

from repro.gpu import A100, H100, H800, Precision, get_gpu, list_gpus


class TestPrecision:
    @pytest.mark.parametrize(
        "precision, bits",
        [("fp32", 32), ("fp16", 16), ("bf16", 16), ("fp8", 8), ("int8", 8), ("int4", 4), ("uint4", 4)],
    )
    def test_bits(self, precision, bits):
        assert Precision.bits(precision) == bits

    def test_bytes_fractional_for_int4(self):
        assert Precision.bytes("int4") == 0.5

    def test_unknown_precision_raises(self):
        with pytest.raises(ValueError):
            Precision.bits("int3")


class TestFigure1Metrics:
    """The specs must carry exactly the Figure 1a numbers the paper's analysis uses."""

    def test_a100_tensor_core_fp16(self):
        assert A100.tensor_core_throughput("fp16") == pytest.approx(312e12)

    def test_a100_tensor_core_int8(self):
        assert A100.tensor_core_throughput("int8") == pytest.approx(624e12)

    def test_a100_tensor_core_int4(self):
        assert A100.tensor_core_throughput("int4") == pytest.approx(1248e12)

    def test_h100_tensor_core_fp16(self):
        assert H100.tensor_core_throughput("fp16") == pytest.approx(989.4e12)

    def test_h100_tensor_core_int8(self):
        assert H100.tensor_core_throughput("int8") == pytest.approx(1978.9e12)

    def test_h100_has_no_int4_tensor_core(self):
        assert not H100.supports_precision("int4")
        with pytest.raises(ValueError):
            H100.tensor_core_throughput("int4")

    def test_cuda_core_int32(self):
        assert A100.cuda_core_int32_tops == pytest.approx(19.5e12)
        assert H100.cuda_core_int32_tops == pytest.approx(33.5e12)

    def test_memory_bandwidth(self):
        assert A100.memory_bandwidth == pytest.approx(2e12)
        assert H100.memory_bandwidth == pytest.approx(3.3e12)

    def test_h800_matches_h100_compute(self):
        assert H800.tensor_core_tops == H100.tensor_core_tops
        assert H800.memory_bandwidth == H100.memory_bandwidth
        assert H800.interconnect_bandwidth < H100.interconnect_bandwidth

    def test_memory_capacity_80gb(self):
        for gpu in (A100, H100, H800):
            assert gpu.memory_capacity == 80 * 2**30


class TestGpuSpecHelpers:
    def test_registry_lookup_case_insensitive(self):
        assert get_gpu("h800") is H800
        assert get_gpu("A100") is A100

    def test_registry_unknown(self):
        with pytest.raises(KeyError):
            get_gpu("B200")

    def test_list_gpus_is_copy(self):
        gpus = list_gpus()
        gpus["fake"] = A100
        assert "fake" not in list_gpus()

    def test_threads_per_warp_group(self):
        assert H800.threads_per_warp_group == 128

    def test_per_sm_division(self):
        assert H800.per_sm_bandwidth() == pytest.approx(H800.memory_bandwidth / H800.num_sms)
        assert H800.per_sm_tensor_ops("int8") == pytest.approx(
            H800.tensor_core_throughput("int8") / H800.num_sms
        )
        assert H800.per_sm_cuda_ops() == pytest.approx(H800.cuda_core_int32_tops / H800.num_sms)

    def test_with_overrides_does_not_mutate(self):
        modified = H800.with_overrides(num_sms=10)
        assert modified.num_sms == 10
        assert H800.num_sms == 132

    def test_scaled_bandwidth(self):
        scaled = H800.scaled(bandwidth=2.0)
        assert scaled.memory_bandwidth == pytest.approx(2 * H800.memory_bandwidth)
        assert scaled.tensor_core_throughput("int8") == pytest.approx(
            H800.tensor_core_throughput("int8")
        )

    def test_scaled_tensor_and_cuda(self):
        scaled = H800.scaled(tensor=0.5, cuda=2.0)
        assert scaled.tensor_core_throughput("fp16") == pytest.approx(0.5 * 989.4e12)
        assert scaled.cuda_core_int32_tops == pytest.approx(2 * 33.5e12)
