"""Tests for the request-level continuous-batching scheduler: mixed iterations with chunked
prefill, preemption-and-recompute under KV pressure, heap admission, and the ragged-batch
step-cost API it drives."""

import pytest

from repro.serving import (
    ContinuousBatchingScheduler,
    KvCacheConfig,
    PagedKvCache,
    PrefillChunk,
    Request,
    ServingEngine,
    SloSpec,
    get_model,
)


@pytest.fixture(scope="module")
def engine():
    return ServingEngine("liquidserve", "llama2-7b")


def small_pool_scheduler(engine, budget_mb, **kwargs):
    """A scheduler whose KV pool is shrunk to force preemption churn."""
    scheduler = ContinuousBatchingScheduler(engine, **kwargs)
    config = KvCacheConfig(
        model=get_model("llama2-7b"),
        kv_format=engine.system.kv_format,
        memory_budget_bytes=budget_mb * 2**20,
    )
    scheduler.kv_cache = PagedKvCache(config)
    return scheduler


class TestRaggedStepApi:
    def test_uniform_context_matches_decode_step(self, engine):
        uniform = engine.decode_step_time(16, 512)
        ragged = engine.ragged_decode_step_time([512] * 16)
        assert ragged == pytest.approx(uniform)

    def test_ragged_cheaper_than_batch_max(self, engine):
        """Per-sequence accounting must undercut charging every sequence at the max."""
        contexts = [64] * 15 + [4096]
        ragged = engine.ragged_decode_step_time(contexts)
        at_max = engine.decode_step_time(16, 4096)
        assert ragged < at_max

    def test_mixed_step_adds_prefill_cost(self, engine):
        decode_only = engine.ragged_decode_step_time([256] * 8)
        mixed = engine.mixed_step_time([256] * 8, [PrefillChunk(256, 0)])
        assert mixed > decode_only

    def test_chunked_prefill_time_positive_and_grows_with_context(self, engine):
        early = engine.chunked_prefill_time(256, context_start=0)
        late = engine.chunked_prefill_time(256, context_start=2048)
        assert 0 < early < late

    def test_empty_iteration_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.mixed_step_time([], [])


class TestSchedulerBasics:
    def test_completes_all_and_releases_blocks(self, engine):
        scheduler = ContinuousBatchingScheduler(engine, max_batch_size=8)
        requests = [Request(i, prompt_tokens=64, output_tokens=8) for i in range(12)]
        stats = scheduler.run(requests)
        assert stats.completed_requests == 12
        assert stats.generated_tokens == 12 * 8
        assert scheduler.kv_cache.num_used_blocks == 0
        assert stats.num_iterations > 0
        assert stats.prefill_chunks >= 12

    def test_single_output_token_request(self, engine):
        """A request whose answer is one token completes at prefill, never decoding."""
        scheduler = ContinuousBatchingScheduler(engine)
        stats = scheduler.run([Request(0, prompt_tokens=100, output_tokens=1)])
        assert stats.completed_requests == 1
        assert stats.generated_tokens == 1
        request = stats.requests[0]
        assert request.first_token_time_s == request.completion_time_s

    def test_long_prompt_split_into_chunks(self, engine):
        scheduler = ContinuousBatchingScheduler(engine, prefill_chunk_tokens=256)
        stats = scheduler.run([Request(0, prompt_tokens=1000, output_tokens=4)])
        assert stats.completed_requests == 1
        assert stats.prefill_chunks == 4  # ceil(1000 / 256)

    def test_chunked_prefill_interleaves_with_decode(self, engine):
        """A huge late prompt must not stall an early stream of short decodes."""
        early = [Request(i, prompt_tokens=32, output_tokens=200, arrival_time_s=0.0)
                 for i in range(4)]
        late = [Request(99, prompt_tokens=4000, output_tokens=4, arrival_time_s=0.0)]
        serial_prefill = engine.prefill_time(1, 4000)
        stats = ContinuousBatchingScheduler(
            engine, prefill_chunk_tokens=256, max_batched_tokens=512
        ).run(early + late)
        assert stats.completed_requests == 5
        # While the long prompt chunks through, the early requests keep emitting tokens:
        # their mean TPOT stays far below one serial full prefill per token.
        early_reqs = [r for r in stats.requests if r.request_id != 99]
        for r in early_reqs:
            tpot = (r.completion_time_s - r.first_token_time_s) / (r.output_tokens - 1)
            assert tpot < serial_prefill / 2

    def test_invalid_requests_rejected(self, engine):
        scheduler = ContinuousBatchingScheduler(engine)
        with pytest.raises(ValueError):
            scheduler.run([Request(0, prompt_tokens=0, output_tokens=4)])
        with pytest.raises(ValueError):
            scheduler.run([Request(0, prompt_tokens=16, output_tokens=0)])

    def test_unservable_request_rejected_up_front(self, engine):
        scheduler = small_pool_scheduler(engine, budget_mb=64)
        pool_tokens = scheduler.kv_cache.config.total_blocks * scheduler.kv_cache.config.block_tokens
        with pytest.raises(ValueError, match="never be scheduled"):
            scheduler.run([Request(0, prompt_tokens=pool_tokens + 16, output_tokens=4)])

    def test_oversized_model_raises(self):
        engine70 = ServingEngine("trt-fp16", "llama2-70b")
        with pytest.raises(Exception):
            ContinuousBatchingScheduler(engine70)

    def test_unsupported_system_model_combo_raises(self):
        """Table 1 'NA' cells must not silently simulate (trt-w8a8 lacks MoE support)."""
        engine = ServingEngine("trt-w8a8", "mixtral-8x7b")
        with pytest.raises(ValueError, match="does not support"):
            ContinuousBatchingScheduler(engine)

    def test_rerunning_same_trace_is_deterministic(self, engine):
        """run() resets scheduler-owned request state, so traces can be A/B-reused."""
        requests = [Request(i, prompt_tokens=64, output_tokens=8, arrival_time_s=0.01 * i)
                    for i in range(10)]
        first = ContinuousBatchingScheduler(engine, max_batch_size=4).run(requests)
        second = ContinuousBatchingScheduler(engine, max_batch_size=4).run(requests)
        assert second.completed_requests == first.completed_requests == 10
        assert second.generated_tokens == first.generated_tokens == 80
        assert second.simulated_time_s == pytest.approx(first.simulated_time_s)
        assert second.mean_ttft_s == pytest.approx(first.mean_ttft_s)

    def test_stats_survive_rerun_of_same_trace(self, engine):
        """Stats snapshot the requests: a later run must not rewrite an earlier report."""
        requests = [Request(i, prompt_tokens=64, output_tokens=8, arrival_time_s=0.01 * i)
                    for i in range(10)]
        slow = ContinuousBatchingScheduler(engine, max_batch_size=1).run(requests)
        slow_p50_before = slow.slo_report().p50_ttft_s
        ContinuousBatchingScheduler(engine, max_batch_size=8).run(requests)
        assert slow.slo_report().p50_ttft_s == pytest.approx(slow_p50_before)


class TestHeapAdmission:
    def test_unsorted_arrivals_admitted_in_arrival_order(self, engine):
        # Deliberately shuffled arrival times; ids encode the arrival rank.
        arrivals = [0.4, 0.0, 0.3, 0.1, 0.2]
        requests = [Request(i, prompt_tokens=64, output_tokens=4, arrival_time_s=t)
                    for i, t in enumerate(arrivals)]
        stats = ContinuousBatchingScheduler(engine, max_batch_size=1).run(requests)
        assert stats.completed_requests == 5
        by_id = {r.request_id: r for r in stats.requests}
        ranked = sorted(range(5), key=lambda i: arrivals[i])
        first_tokens = [by_id[i].first_token_time_s for i in ranked]
        assert first_tokens == sorted(first_tokens)

    def test_idle_gap_advances_clock(self, engine):
        requests = [
            Request(0, prompt_tokens=32, output_tokens=2, arrival_time_s=0.0),
            Request(1, prompt_tokens=32, output_tokens=2, arrival_time_s=100.0),
        ]
        stats = ContinuousBatchingScheduler(engine).run(requests)
        assert stats.completed_requests == 2
        assert stats.simulated_time_s > 100.0
        # TTFT is measured from arrival, so the late request is not charged the idle gap.
        assert stats.p99_ttft_s < 1.0


class TestPreemption:
    def test_kv_exhaustion_never_propagates(self, engine):
        """Regression: mid-decode KvCacheOutOfMemory used to crash the simulation."""
        scheduler = small_pool_scheduler(engine, budget_mb=256, max_batch_size=16)
        assert scheduler.kv_cache.config.total_blocks == 64
        requests = [Request(i, prompt_tokens=300, output_tokens=64) for i in range(12)]
        stats = scheduler.run(requests)  # must not raise
        assert stats.completed_requests == 12
        assert stats.generated_tokens == 12 * 64
        assert stats.preemptions > 0
        assert scheduler.kv_cache.num_used_blocks == 0

    def test_preempted_requests_record_preemption_and_keep_tokens(self, engine):
        scheduler = small_pool_scheduler(engine, budget_mb=256, max_batch_size=16)
        requests = [Request(i, prompt_tokens=300, output_tokens=64) for i in range(12)]
        stats = scheduler.run(requests)
        assert sum(r.preemptions for r in stats.requests) == stats.preemptions
        for r in stats.requests:
            assert r.generated == r.output_tokens
            assert r.first_token_time_s is not None
            assert r.completion_time_s >= r.first_token_time_s

    def test_staggered_arrivals_under_pressure(self, engine):
        scheduler = small_pool_scheduler(engine, budget_mb=192, max_batch_size=8)
        requests = [Request(i, prompt_tokens=200, output_tokens=48,
                            arrival_time_s=0.01 * i) for i in range(10)]
        stats = scheduler.run(requests)
        assert stats.completed_requests == 10
        assert scheduler.kv_cache.num_used_blocks == 0


class TestPeakKvUtilization:
    def test_peak_sampled_before_completed_blocks_are_freed(self, engine):
        """Regression: the peak used to be sampled after decode bookkeeping freed completed
        sequences, so a run whose only resident finished that iteration reported ~0."""
        scheduler = ContinuousBatchingScheduler(engine, prefill_chunk_tokens=4096)
        stats = scheduler.run([Request(0, prompt_tokens=1000, output_tokens=1)])
        config = scheduler.kv_cache.config
        expected = config.blocks_for_tokens(1000) / config.total_blocks
        assert stats.peak_kv_utilization == pytest.approx(expected)

    def test_peak_covers_mid_iteration_residency(self, engine):
        scheduler = small_pool_scheduler(engine, budget_mb=256, max_batch_size=16)
        stats = scheduler.run(
            [Request(i, prompt_tokens=300, output_tokens=64) for i in range(12)]
        )
        assert stats.peak_kv_utilization > 0.9  # the pool saturates under this pressure
        assert stats.peak_kv_utilization <= 1.0


class TestConservationInvariants:
    """After any run(): tokens conserved, both KV pools drained, preemptions add up."""

    @pytest.mark.parametrize("preemption_policy", ["recompute", "swap", "hybrid"])
    def test_preemption_paths_conserve(self, engine, preemption_policy):
        scheduler = ContinuousBatchingScheduler(
            engine,
            max_batch_size=16,
            preemption_policy=preemption_policy,
            kv_budget_bytes=256 * 2**20,
            host_kv_budget_bytes=512 * 2**20,
        )
        requests = [Request(i, prompt_tokens=300, output_tokens=64,
                            arrival_time_s=0.005 * i) for i in range(12)]
        stats = scheduler.run(requests)
        assert stats.completed_requests == 12
        assert stats.preemptions > 0  # the shrunken pool must actually churn
        for r in stats.requests:
            assert r.generated == r.output_tokens
        assert stats.generated_tokens == sum(r.output_tokens for r in stats.requests)
        assert scheduler.kv_cache.num_used_blocks == 0
        assert scheduler.kv_cache.num_used_host_blocks == 0
        assert scheduler.kv_cache.num_swapped_sequences == 0
        assert sum(r.preemptions for r in stats.requests) == stats.preemptions
        assert stats.swap_preemptions + stats.recompute_preemptions == stats.preemptions

    def test_swap_policy_actually_swaps_and_charges_transfers(self, engine):
        scheduler = ContinuousBatchingScheduler(
            engine,
            max_batch_size=16,
            preemption_policy="swap",
            kv_budget_bytes=256 * 2**20,
            host_kv_budget_bytes=512 * 2**20,
        )
        requests = [Request(i, prompt_tokens=300, output_tokens=64) for i in range(12)]
        stats = scheduler.run(requests)
        assert stats.swap_preemptions > 0
        assert stats.swap_ins == stats.swap_preemptions  # every victim came back
        assert stats.kv_transfer_s > 0.0
        assert 0.0 < stats.peak_host_kv_utilization <= 1.0

    def test_swap_with_zero_host_budget_degrades_to_recompute(self, engine):
        scheduler = ContinuousBatchingScheduler(
            engine,
            max_batch_size=16,
            preemption_policy="swap",
            kv_budget_bytes=256 * 2**20,
            host_kv_budget_bytes=0,
        )
        requests = [Request(i, prompt_tokens=300, output_tokens=64) for i in range(12)]
        stats = scheduler.run(requests)
        assert stats.completed_requests == 12
        assert stats.preemptions > 0
        assert stats.swap_preemptions == 0
        assert stats.recompute_preemptions == stats.preemptions

    def test_swap_in_never_starves_blocked_prefills(self, engine):
        """Regression: with both residents stalled mid-prefill, a no-progress eviction
        freed blocks that the next iteration's swap-in pass immediately reclaimed — the
        blocked prefill never extended and run() cycled swap-out/swap-in forever."""
        bpb = engine.kv_cache_config().bytes_per_block
        scheduler = ContinuousBatchingScheduler(
            engine,
            preemption_policy="swap",
            kv_budget_bytes=40 * bpb,
            host_kv_budget_bytes=40 * bpb,
        )
        stats = scheduler.run([Request(0, 500, 2), Request(1, 500, 2)])
        assert stats.completed_requests == 2
        assert scheduler.kv_cache.num_used_blocks == 0
        assert scheduler.kv_cache.num_used_host_blocks == 0

    def test_rerun_with_swap_policy_is_deterministic(self, engine):
        requests = [Request(i, prompt_tokens=300, output_tokens=32) for i in range(10)]
        kwargs = dict(max_batch_size=16, preemption_policy="swap",
                      kv_budget_bytes=256 * 2**20, host_kv_budget_bytes=512 * 2**20)
        first = ContinuousBatchingScheduler(engine, **kwargs).run(requests)
        second = ContinuousBatchingScheduler(engine, **kwargs).run(requests)
        assert second.simulated_time_s == pytest.approx(first.simulated_time_s)
        assert second.swap_preemptions == first.swap_preemptions
        assert second.kv_transfer_s == pytest.approx(first.kv_transfer_s)


class TestOverlappedSwapTransfers:
    """`overlap_swap_transfers` charges max(compute, transfers) per iteration instead of
    their sum — the makespan must never be worse than the serialized model."""

    #: Arrival-free KV-pressure workload: identical scheduling decisions under both
    #: transfer models (clock values never feed back into admission order), so the
    #: serialized-vs-overlapped comparison is apples to apples.
    WORKLOAD = dict(max_batch_size=16, preemption_policy="swap",
                    kv_budget_bytes=256 * 2**20, host_kv_budget_bytes=512 * 2**20)

    @staticmethod
    def _trace():
        return [Request(i, prompt_tokens=300, output_tokens=64) for i in range(12)]

    def test_overlap_never_slower_than_serialized(self, engine):
        serialized = ContinuousBatchingScheduler(engine, **self.WORKLOAD).run(self._trace())
        overlapped = ContinuousBatchingScheduler(
            engine, overlap_swap_transfers=True, **self.WORKLOAD
        ).run(self._trace())
        assert serialized.swap_preemptions > 0  # the comparison must exercise transfers
        assert overlapped.completed_requests == serialized.completed_requests == 12
        assert overlapped.swap_preemptions == serialized.swap_preemptions
        assert overlapped.kv_transfer_s == pytest.approx(serialized.kv_transfer_s)
        assert overlapped.simulated_time_s <= serialized.simulated_time_s

    def test_overlap_strictly_hides_some_transfer_time(self, engine):
        """On this workload compute dominates every transfer, so overlap should hide
        traffic and beat the serialized clock outright."""
        serialized = ContinuousBatchingScheduler(engine, **self.WORKLOAD).run(self._trace())
        overlapped = ContinuousBatchingScheduler(
            engine, overlap_swap_transfers=True, **self.WORKLOAD
        ).run(self._trace())
        assert overlapped.simulated_time_s < serialized.simulated_time_s

    def test_no_swaps_means_identical_timelines(self, engine):
        trace = [Request(i, prompt_tokens=64, output_tokens=8) for i in range(6)]
        plain = ContinuousBatchingScheduler(engine, max_batch_size=8).run(trace)
        overlapped = ContinuousBatchingScheduler(
            engine, max_batch_size=8, overlap_swap_transfers=True
        ).run(trace)
        assert overlapped.kv_transfer_s == 0.0
        assert overlapped.simulated_time_s == plain.simulated_time_s

    def test_mid_session_stats_polling_is_side_effect_free(self, engine):
        """stats() is a pure snapshot: observing an overlapped session between steps must
        not serialize pending swap transfers into the clock."""
        polled = ContinuousBatchingScheduler(
            engine, overlap_swap_transfers=True, **self.WORKLOAD
        )
        polled.begin()
        for request in self._trace():
            polled.submit(request)
        while polled.has_work:
            polled.step()
            polled.stats()  # a progress poll, as a cluster dashboard would issue
        unpolled = ContinuousBatchingScheduler(
            engine, overlap_swap_transfers=True, **self.WORKLOAD
        ).run(self._trace())
        assert polled.stats().simulated_time_s == pytest.approx(
            unpolled.simulated_time_s
        )

    def test_overlap_flag_threads_through_simulate_serving(self):
        from repro.core import simulate_serving
        sim = simulate_serving(
            "liquidserve", "llama2-7b", num_requests=12, arrival_rate_rps=1000.0,
            seed=0, preemption_policy="swap", kv_budget_bytes=2 * 2**30,
            host_kv_budget_bytes=4 * 2**30, overlap_swap_transfers=True,
        )
        assert sim.stats.completed_requests == 12


class TestSchedulerStats:
    def test_latency_percentiles_and_slo(self, engine):
        scheduler = ContinuousBatchingScheduler(engine, max_batch_size=16)
        requests = [Request(i, prompt_tokens=64, output_tokens=16,
                            arrival_time_s=0.005 * i) for i in range(32)]
        stats = scheduler.run(requests)
        assert stats.mean_ttft_s <= stats.mean_latency_s
        assert stats.p50_ttft_s <= stats.p99_ttft_s
        assert 0 < stats.mean_tpot_s <= stats.p99_tpot_s
        report = stats.slo_report(SloSpec(ttft_s=1e9, tpot_s=1e9))
        assert report.completed == 32
        assert report.attainment == 1.0
        assert report.goodput_rps == pytest.approx(32 / stats.simulated_time_s)
        strict = stats.slo_report(SloSpec(ttft_s=0.0, tpot_s=0.0))
        assert strict.attainment == 0.0 and strict.goodput_rps == 0.0

    def test_throughput_positive(self, engine):
        stats = ContinuousBatchingScheduler(engine, max_batch_size=4).run(
            [Request(i, 32, 4) for i in range(4)]
        )
        assert stats.throughput_tokens_per_s > 0
