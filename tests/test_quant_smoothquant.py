"""Tests for SmoothQuant smoothing and the offline grid search (repro.quant.smoothquant)."""

import numpy as np
import pytest

from repro.quant import (
    apply_smoothing,
    compute_smooth_scale,
    grid_search_alpha,
    lqq_quantize,
    smooth_and_quantize,
)


@pytest.fixture
def calibration(rng):
    k = 128
    w = rng.normal(0, 0.02, (64, k))
    x = rng.normal(0, 1.0, (32, k))
    # Inject activation outliers in a few channels (the SmoothQuant motivation).
    outliers = rng.choice(k, size=4, replace=False)
    x[:, outliers] *= 30.0
    return x, w


class TestSmoothScale:
    def test_shape_and_positivity(self, calibration):
        x, w = calibration
        scale = compute_smooth_scale(np.abs(x).max(axis=0), np.abs(w).max(axis=0), alpha=0.5)
        assert scale.shape == (x.shape[1],)
        assert np.all(scale > 0)

    def test_alpha_zero_and_one(self, calibration):
        x, w = calibration
        a_stat, w_stat = np.abs(x).max(axis=0), np.abs(w).max(axis=0)
        assert np.allclose(compute_smooth_scale(a_stat, w_stat, 0.0), 1.0 / w_stat, rtol=1e-6)
        assert np.allclose(compute_smooth_scale(a_stat, w_stat, 1.0), a_stat, rtol=1e-6)

    def test_alpha_out_of_range(self, calibration):
        x, w = calibration
        with pytest.raises(ValueError):
            compute_smooth_scale(np.abs(x).max(axis=0), np.abs(w).max(axis=0), alpha=1.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            compute_smooth_scale(np.ones(4), np.ones(5))


class TestApplySmoothing:
    def test_output_preserved_exactly(self, calibration):
        """The transform is a mathematical identity: (X/s)(W*s)^T == X W^T."""
        x, w = calibration
        scale = compute_smooth_scale(np.abs(x).max(axis=0), np.abs(w).max(axis=0))
        x_s, w_s = apply_smoothing(x, w, scale)
        assert np.allclose(x_s @ w_s.T, x @ w.T, rtol=1e-10)

    def test_outliers_migrated(self, calibration):
        x, w = calibration
        scale = compute_smooth_scale(np.abs(x).max(axis=0), np.abs(w).max(axis=0), alpha=0.5)
        x_s, _ = apply_smoothing(x, w, scale)
        # Smoothing must reduce the activation dynamic range (max / median of channel maxima).
        before = np.abs(x).max(axis=0)
        after = np.abs(x_s).max(axis=0)
        assert after.max() / np.median(after) < before.max() / np.median(before)

    def test_dimension_check(self, calibration):
        x, w = calibration
        with pytest.raises(ValueError):
            apply_smoothing(x, w, np.ones(x.shape[1] + 1))


class TestGridSearch:
    def test_returns_best_alpha(self, calibration):
        x, w = calibration
        result = grid_search_alpha(x, w, alphas=[0.1, 0.5, 0.9])
        assert result.alpha in (0.1, 0.5, 0.9)
        assert result.combined_mse >= 0
        assert result.smooth_scale.shape == (x.shape[1],)

    def test_smoothing_beats_no_smoothing_with_outliers(self, calibration):
        """With strong activation outliers the searched smoothing must reduce quantized-output
        error versus alpha=0 (which leaves activations untouched up to a per-channel weight
        rescale)."""
        x, w = calibration
        searched = grid_search_alpha(x, w, alphas=[0.3, 0.5, 0.7])
        baseline = grid_search_alpha(x, w, alphas=[0.0])
        assert searched.combined_mse <= baseline.combined_mse

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            grid_search_alpha(rng.normal(size=(4, 8)), rng.normal(size=(4, 9)))

    def test_smooth_and_quantize_pipeline(self, calibration):
        x, w = calibration
        qw, result = smooth_and_quantize(x, w, lqq_quantize, alphas=[0.5])
        assert qw.q_u4.shape == w.shape
        assert result.alpha == 0.5
