"""The two contracts the telemetry subsystem stands on, driven property-style.

1. **Exact phase tiling** — for any traced request, the queue / prefill / decode /
   preempted / transfer durations reconstructed from the event stream sum *exactly*
   (as rationals, bit-for-bit after float conversion) to the end-to-end latency that
   ``RequestMetrics`` reports.  Not approximately: adjacent intervals share endpoint
   floats, so the telescoping sum collapses to ``completion - arrival`` with no
   accumulated error.  Hypothesis drives this across random traces, KV budgets tight
   enough to preempt, every preemption policy, prefix caching on and off, and both
   cluster modes.

2. **Observational purity** — attaching a tracer changes nothing.  ``SchedulerStats``,
   every per-request field, and every ``RequestMetrics`` are bit-identical between a
   traced and an untraced run of the same workload.
"""

import copy
import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import simulate_cluster, simulate_serving
from repro.serving.engine import ServingEngine
from repro.serving.metrics import request_metrics
from repro.serving.scheduler import ContinuousBatchingScheduler, Request
from repro.telemetry import Tracer, request_breakdowns
from repro.workloads.traces import agent_swarm_trace

MB = 2**20
GB = 2**30


def assert_breakdowns_tile_exactly(tracer, metrics):
    """Every completed request's phase durations must sum exactly to its latency."""
    by_id = {m.request_id: m for m in metrics}
    breakdowns = request_breakdowns(tracer)
    assert len(breakdowns) == len(by_id)
    for bd in breakdowns:
        assert bd.is_exact, (
            f"request {bd.request_id}: phase intervals do not tile "
            f"[{bd.arrival_s}, {bd.completion_s}]"
        )
        m = by_id[bd.request_id]
        assert bd.e2e_s == m.latency_s  # bit-for-bit, no tolerance
        assert sum(iv.duration_s for iv in bd.intervals) == pytest.approx(bd.e2e_s)


def assert_runs_identical(off, on):
    """A traced simulation must be bit-identical to the untraced one."""
    for f in dataclasses.fields(off.stats):
        if f.name == "requests":
            continue
        assert getattr(off.stats, f.name) == getattr(on.stats, f.name), f.name
    lhs = sorted(off.stats.requests, key=lambda r: r.request_id)
    rhs = sorted(on.stats.requests, key=lambda r: r.request_id)
    assert len(lhs) == len(rhs)
    for a, b in zip(lhs, rhs):
        for f in dataclasses.fields(Request):
            assert getattr(a, f.name) == getattr(b, f.name), f.name
    assert off.per_request == on.per_request  # frozen dataclasses: field equality


@st.composite
def random_traces(draw):
    n = draw(st.integers(min_value=1, max_value=16))
    requests = []
    for i in range(n):
        requests.append(
            Request(
                request_id=i,
                prompt_tokens=draw(st.integers(min_value=1, max_value=1200)),
                output_tokens=draw(st.integers(min_value=1, max_value=300)),
                arrival_time_s=draw(
                    st.floats(
                        min_value=0.0, max_value=2.0,
                        allow_nan=False, allow_infinity=False,
                    )
                ),
                priority=draw(st.integers(min_value=0, max_value=3)),
            )
        )
    return requests


class TestExactTilingProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        trace=random_traces(),
        kv_budget=st.sampled_from([512 * MB, 2 * GB, None]),
        host_budget=st.sampled_from([0, 512 * MB]),
        preemption=st.sampled_from(["recompute", "swap", "hybrid"]),
        scheduling=st.sampled_from(["fcfs", "priority", "sjf", "fairness"]),
        overlap=st.booleans(),
        fast_forward=st.booleans(),
    )
    def test_random_traces_tile_exactly(
        self, trace, kv_budget, host_budget, preemption, scheduling, overlap,
        fast_forward,
    ):
        tracer = Tracer()
        scheduler = ContinuousBatchingScheduler(
            ServingEngine("liquidserve", "llama2-7b"),
            kv_budget_bytes=kv_budget,
            host_kv_budget_bytes=host_budget,
            preemption_policy=preemption,
            scheduling_policy=scheduling,
            overlap_swap_transfers=overlap,
            fast_forward=fast_forward,
            tracer=tracer,
        )
        stats = scheduler.run([copy.copy(r) for r in trace])
        assert_breakdowns_tile_exactly(tracer, request_metrics(stats.requests))

    @pytest.mark.parametrize("preemption", ["recompute", "swap", "hybrid"])
    def test_kv_pressure_churn_tiles_exactly(self, preemption):
        """Preemption storms: re-queues, swap DMAs and re-prefills all tile."""
        tracer = Tracer()
        sim = simulate_serving(
            "liquidserve", "llama2-7b", num_requests=60, arrival_rate_rps=20.0,
            seed=3, preemption_policy=preemption, kv_budget_bytes=GB,
            host_kv_budget_bytes=GB, tracer=tracer,
        )
        assert sim.stats.preemptions > 0  # the scenario actually preempts
        assert_breakdowns_tile_exactly(tracer, sim.per_request)

    def test_prefix_cache_eviction_churn_tiles_exactly(self):
        tracer = Tracer()
        scheduler = ContinuousBatchingScheduler(
            ServingEngine("liquidserve", "llama2-7b"),
            prefix_caching=True, kv_budget_bytes=512 * MB,
            host_kv_budget_bytes=GB, preemption_policy="swap", tracer=tracer,
        )
        stats = scheduler.run(agent_swarm_trace(3, 4, 4, 12.0, seed=13))
        assert stats.prefix_blocks_evicted > 0
        assert_breakdowns_tile_exactly(tracer, request_metrics(stats.requests))

    def test_colocated_cluster_tiles_exactly(self):
        tracer = Tracer()
        sim = simulate_cluster(
            "liquidserve", "llama2-7b", mode="colocated", num_replicas=3,
            num_requests=80, arrival_rate_rps=30.0, seed=5, tracer=tracer,
        )
        assert_breakdowns_tile_exactly(tracer, sim.per_request)

    def test_disaggregated_cluster_tiles_exactly(self):
        """KV handoffs: the migration gap lands in the transfer phase, exactly."""
        tracer = Tracer()
        sim = simulate_cluster(
            "liquidserve", "llama2-7b", mode="disaggregated",
            num_prefill_replicas=2, num_decode_replicas=2,
            num_requests=80, arrival_rate_rps=25.0, seed=6, tracer=tracer,
        )
        assert sum(1 for _ in tracer.events_of("migrate")) > 0
        assert_breakdowns_tile_exactly(tracer, sim.per_request)
        transfer = sum(
            bd.phases["transfer"] for bd in request_breakdowns(tracer)
        )
        assert transfer > 0.0  # handoffs show up as transfer time


class TestObservationalPurity:
    @settings(max_examples=10, deadline=None)
    @given(
        trace=random_traces(),
        preemption=st.sampled_from(["recompute", "swap", "hybrid"]),
        prefix_caching=st.booleans(),
    )
    def test_tracing_leaves_stats_bit_identical(
        self, trace, preemption, prefix_caching
    ):
        kwargs = dict(
            kv_budget_bytes=GB,
            host_kv_budget_bytes=GB,
            preemption_policy=preemption,
            prefix_caching=prefix_caching,
        )

        def run(tracer):
            scheduler = ContinuousBatchingScheduler(
                ServingEngine("liquidserve", "llama2-7b"), tracer=tracer, **kwargs
            )
            return scheduler.run([copy.copy(r) for r in trace])

        off, on = run(None), run(Tracer())
        for f in dataclasses.fields(off):
            if f.name == "requests":
                continue
            assert getattr(off, f.name) == getattr(on, f.name), f.name
        for a, b in zip(
            sorted(off.requests, key=lambda r: r.request_id),
            sorted(on.requests, key=lambda r: r.request_id),
        ):
            for f in dataclasses.fields(Request):
                assert getattr(a, f.name) == getattr(b, f.name), f.name
        assert request_metrics(off.requests) == request_metrics(on.requests)

    def test_simulate_serving_identical_under_pressure(self):
        kwargs = dict(
            num_requests=60, arrival_rate_rps=20.0, seed=3,
            preemption_policy="hybrid", kv_budget_bytes=GB, host_kv_budget_bytes=GB,
        )
        off = simulate_serving("liquidserve", "llama2-7b", **kwargs)
        on = simulate_serving("liquidserve", "llama2-7b", tracer=Tracer(), **kwargs)
        assert off.stats.preemptions > 0
        assert_runs_identical(off, on)

    @pytest.mark.parametrize(
        "mode,shape",
        [
            ("colocated", dict(num_replicas=2)),
            ("disaggregated", dict(num_prefill_replicas=1, num_decode_replicas=1)),
        ],
    )
    def test_simulate_cluster_identical(self, mode, shape):
        kwargs = dict(
            mode=mode, num_requests=60, arrival_rate_rps=20.0, seed=4, **shape
        )
        off = simulate_cluster("liquidserve", "llama2-7b", **kwargs)
        on = simulate_cluster("liquidserve", "llama2-7b", tracer=Tracer(), **kwargs)
        for s_off, s_on in zip(off.replica_stats, on.replica_stats):
            for f in dataclasses.fields(s_off):
                if f.name == "requests":
                    continue
                assert getattr(s_off, f.name) == getattr(s_on, f.name), f.name
        assert off.per_request == on.per_request
        assert off.throughput_tokens_per_s == on.throughput_tokens_per_s
