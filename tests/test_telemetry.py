"""Telemetry subsystem unit tests: tracer, exporters, CLI, and the memo-cache hookup.

The exactness property (phase durations tiling end-to-end latency bit-for-bit) and the
tracing-on/off bit-identity contract live in ``test_telemetry_breakdown.py``; this module
covers the plumbing around them — event recording, the Chrome trace-event payload shape,
the schema-validated summary, preemption-reason accounting, the orphaned
``ServingEngine.cache_stats()`` hookup, and the ``python -m repro.trace`` CLI.
"""

import json

import pytest

import repro.trace as trace_cli
from repro.core import simulate_cluster, simulate_serving
from repro.reporting.schema import validate_payload
from repro.serving.engine import ServingEngine
from repro.telemetry import (
    PHASES,
    TELEMETRY_SUMMARY_SCHEMA,
    Tracer,
    build_summary,
    chrome_trace_payload,
    write_chrome_trace,
    write_summary,
)

MB = 2**20
GB = 2**30


class TestTracer:
    def test_emit_and_query(self):
        tracer = Tracer()
        tracer.emit("arrive", 0.5, request_id=1, prompt_tokens=10)
        tracer.emit("iteration", 0.5, end=0.7, decode_batch=3)
        tracer.emit("finish", 0.7, request_id=1)
        assert tracer.num_events == 3
        assert tracer.event_counts() == {"arrive": 1, "finish": 1, "iteration": 1}
        spans = list(tracer.events_of("iteration"))
        assert len(spans) == 1 and spans[0].duration_s == pytest.approx(0.2)
        instants = list(tracer.events_of("arrive", "finish"))
        assert [ev.kind for ev in instants] == ["arrive", "finish"]
        assert instants[0].args == {"prompt_tokens": 10}

    def test_counter_samples(self):
        tracer = Tracer()
        tracer.sample(0, 1.0, {"queue_depth": 4, "kv_utilization": 0.5})
        tracer.sample(0, 2.0, {"queue_depth": 2, "kv_utilization": 0.25})
        assert len(tracer.counters) == 2
        assert tracer.counters[0].values["queue_depth"] == 4

    def test_replica_roles(self):
        tracer = Tracer()
        tracer.set_replica_role(0, "prefill")
        tracer.set_replica_role(1, "decode")
        assert tracer.replica_roles == {0: "prefill", 1: "decode"}

    def test_engine_attach_is_identity_deduped(self):
        tracer = Tracer()
        engine = ServingEngine("liquidserve", "llama2-7b", tracer=tracer)
        tracer.attach_engine(engine)  # the scheduler would do this again
        assert len(tracer._engines) == 1


class TestEngineMemoHookup:
    """Regression: ``ServingEngine.cache_stats()`` must feed the telemetry summary."""

    def test_cache_stats_reaches_summary(self):
        tracer = Tracer()
        sim = simulate_serving(
            "liquidserve", "llama2-7b", num_requests=20, arrival_rate_rps=20.0,
            seed=0, tracer=tracer,
        )
        memo = build_summary(tracer, sim.stats)["engine_memo_caches"]
        # Every memo the engine exposes is reported, and a real run populates them.
        assert set(memo) == set(
            ServingEngine("liquidserve", "llama2-7b").cache_stats()
        )
        assert memo["decode_step"]["entries"] > 0
        assert memo["layer_gemm"]["entries"] > 0
        for stats in memo.values():
            assert set(stats) == {"entries", "max_entries", "evictions"}

    def test_multi_engine_merge(self):
        # A cluster's replicas share one engine; merging still has to handle several
        # distinct engines (e.g. two independent traced simulations, one tracer).
        tracer = Tracer()
        simulate_cluster(
            "liquidserve", "llama2-7b", mode="disaggregated",
            num_prefill_replicas=1, num_decode_replicas=1,
            num_requests=20, arrival_rate_rps=20.0, seed=0, tracer=tracer,
        )
        assert len(tracer._engines) == 1  # replicas share the cluster's engine
        single = tracer.engine_memo_stats()
        assert single["decode_step"]["entries"] > 0
        tracer.attach_engine(ServingEngine("liquidserve", "llama2-7b"))
        merged = tracer.engine_memo_stats()
        assert merged["decode_step"]["entries"] == single["decode_step"]["entries"]
        assert merged["decode_step"]["max_entries"] >= (
            single["decode_step"]["max_entries"]
        )


class TestPreemptionReasons:
    def test_kv_pressure_reason_recorded(self):
        tracer = Tracer()
        sim = simulate_serving(
            "liquidserve", "llama2-7b", num_requests=60, arrival_rate_rps=20.0,
            seed=3, preemption_policy="hybrid", kv_budget_bytes=GB,
            host_kv_budget_bytes=GB, tracer=tracer,
        )
        s = sim.stats
        assert s.preemptions > 0
        assert s.preemptions == s.preemptions_kv_pressure + s.preemptions_policy_victim
        assert s.preemptions_kv_pressure > 0
        # Reason travels on every preempt event too, and the two sources agree.
        reasons = [ev.args["reason"] for ev in tracer.events_of("preempt")]
        assert len(reasons) == s.preemptions
        assert reasons.count("kv_pressure") == s.preemptions_kv_pressure
        assert reasons.count("policy_victim") == s.preemptions_policy_victim

    def test_cache_evict_averts_are_counted(self):
        from repro.serving.scheduler import ContinuousBatchingScheduler
        from repro.workloads.traces import agent_swarm_trace

        tracer = Tracer()
        scheduler = ContinuousBatchingScheduler(
            ServingEngine("liquidserve", "llama2-7b"),
            prefix_caching=True, kv_budget_bytes=512 * MB,
            host_kv_budget_bytes=GB, preemption_policy="swap", tracer=tracer,
        )
        stats = scheduler.run(agent_swarm_trace(3, 4, 4, 12.0, seed=13))
        assert stats.preemptions_averted_by_cache > 0
        averted = sum(1 for _ in tracer.events_of("preempt_averted"))
        assert averted == stats.preemptions_averted_by_cache
        summary = build_summary(tracer, stats)
        assert summary["preemptions"]["averted_by_cache_evict"] == averted

    def test_summary_reasons_without_stats_fall_back_to_events(self):
        tracer = Tracer()
        sim = simulate_serving(
            "liquidserve", "llama2-7b", num_requests=60, arrival_rate_rps=20.0,
            seed=3, preemption_policy="recompute", kv_budget_bytes=GB,
            host_kv_budget_bytes=GB, tracer=tracer,
        )
        from_stats = build_summary(tracer, sim.stats)["preemptions"]
        from_events = build_summary(tracer)["preemptions"]
        assert from_stats == from_events
        assert from_events["total"] > 0


class TestSummaryExport:
    def _traced_sim(self):
        tracer = Tracer(sample_interval_s=0.2, label="unit")
        sim = simulate_serving(
            "liquidserve", "llama2-7b", num_requests=40, arrival_rate_rps=20.0,
            seed=0, tracer=tracer,
        )
        return tracer, sim

    def test_summary_is_schema_valid_and_complete(self):
        tracer, sim = self._traced_sim()
        summary = build_summary(tracer, sim.stats)
        validate_payload(summary, TELEMETRY_SUMMARY_SCHEMA)
        assert summary["telemetry"] == "repro.telemetry/v1"
        assert summary["label"] == "unit"
        assert summary["requests"]["completed"] == len(sim.per_request)
        assert summary["requests"]["breakdowns_exact"] is True
        assert set(summary["requests"]["phase_totals_s"]) == set(PHASES)
        assert summary["replicas"] == [{"replica": 0, "role": "single"}]
        # Counter statistics carry the sampled gauges with full min/max/mean/last.
        key = "replica0.queue_depth"
        assert set(summary["counters"][key]) == {
            "min", "max", "mean", "last", "samples"
        }

    def test_prefix_cache_section_present_only_with_stats(self):
        tracer = Tracer()
        sim = simulate_serving(
            "liquidserve", "llama2-7b", num_requests=30, arrival_rate_rps=20.0,
            seed=2, prefix_caching=True, shared_prefix_tokens=256, tracer=tracer,
        )
        summary = build_summary(tracer, sim.stats)
        assert summary["prefix_cache"]["hits"] == sim.stats.prefix_cache_hits
        assert "prefix_cache" not in build_summary(tracer)

    def test_write_summary_roundtrip(self, tmp_path):
        tracer, sim = self._traced_sim()
        path = tmp_path / "summary.json"
        payload = write_summary(tracer, str(path), sim.stats)
        assert json.loads(path.read_text()) == payload


class TestChromeTraceExport:
    def _payload(self, mode="single"):
        tracer = Tracer(sample_interval_s=0.2)
        if mode == "single":
            simulate_serving(
                "liquidserve", "llama2-7b", num_requests=40, arrival_rate_rps=20.0,
                seed=0, tracer=tracer,
            )
        else:
            simulate_cluster(
                "liquidserve", "llama2-7b", mode="disaggregated",
                num_prefill_replicas=1, num_decode_replicas=1,
                num_requests=40, arrival_rate_rps=20.0, seed=0, tracer=tracer,
            )
        return tracer, chrome_trace_payload(tracer)

    def test_payload_shape(self):
        _, payload = self._payload()
        events = payload["traceEvents"]
        phases = {ev["ph"] for ev in events}
        assert {"M", "X", "i", "C", "b", "e"} <= phases
        names = {ev["name"] for ev in events if ev["ph"] == "M"}
        assert names == {"process_name", "thread_name"}
        # Every event is Perfetto-consumable: µs timestamps, non-negative durations.
        for ev in events:
            if ev["ph"] == "M":
                continue
            assert ev["ts"] >= 0.0
            if ev["ph"] == "X":
                assert ev["dur"] >= 0.0

    def test_async_tracks_are_balanced(self):
        _, payload = self._payload()
        opens = [e for e in payload["traceEvents"] if e["ph"] == "b"]
        closes = [e for e in payload["traceEvents"] if e["ph"] == "e"]
        assert len(opens) == len(closes) > 0
        assert {e["name"] for e in opens} <= set(PHASES)

    def test_disaggregated_adds_migration_flows(self):
        tracer, payload = self._payload("disaggregated")
        flows_s = [e for e in payload["traceEvents"] if e["ph"] == "s"]
        flows_f = [e for e in payload["traceEvents"] if e["ph"] == "f"]
        migrations = sum(1 for _ in tracer.events_of("migrate"))
        assert migrations > 0
        assert len(flows_s) == len(flows_f) == migrations
        # Arrows start on the prefill replica and land on the decode replica.
        roles = tracer.replica_roles
        assert {roles[e["pid"]] for e in flows_s} == {"prefill"}
        assert {roles[e["pid"]] for e in flows_f} == {"decode"}

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        tracer, _ = self._payload()
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]


class TestTraceCli:
    def test_cli_writes_artifacts_and_reports(self, tmp_path, capsys):
        trace_out = tmp_path / "timeline.json"
        summary_out = tmp_path / "summary.json"
        trace_cli.main([
            "--num-requests", "30", "--rate", "20", "--seed", "1",
            "--trace-out", str(trace_out), "--summary-out", str(summary_out),
            "--top", "3",
        ])
        out = capsys.readouterr().out
        assert "aggregate critical path (exact tiling: True)" in out
        assert "slowest 3 requests" in out
        assert json.loads(trace_out.read_text())["traceEvents"]
        summary = json.loads(summary_out.read_text())
        validate_payload(summary, TELEMETRY_SUMMARY_SCHEMA)

    def test_cli_cluster_mode(self, tmp_path, capsys):
        trace_cli.main([
            "--mode", "disaggregated", "--num-requests", "20", "--rate", "15",
            "--trace-out", str(tmp_path / "t.json"), "--top", "2",
        ])
        assert "exact tiling: True" in capsys.readouterr().out

    def test_cli_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            trace_cli.main(["--system", "definitely-not-a-system"])


class TestSweepTracing:
    def test_traced_cells_write_artifacts_and_leave_metrics_identical(self, tmp_path):
        from repro.sweep import SweepGrid, run_sweep

        base = dict(num_requests=30, arrival_rates_rps=(15.0,))
        traced = run_sweep(
            SweepGrid(trace_cells=(0,), trace_dir=str(tmp_path), **base),
            parallel=False,
        )
        plain = run_sweep(SweepGrid(**base), parallel=False)
        row = traced["cells"][0]
        assert row["metrics"] == plain["cells"][0]["metrics"]
        assert "trace_files" not in plain["cells"][0]
        chrome = json.loads(open(row["trace_files"]["chrome_trace"]).read())
        assert chrome["traceEvents"]
        summary = json.loads(open(row["trace_files"]["summary"]).read())
        validate_payload(summary, TELEMETRY_SUMMARY_SCHEMA)
        assert summary["label"] == "cell000"

    def test_breakdowns_exact_is_test_enforced_in_artifacts(self, tmp_path):
        from repro.sweep import SweepGrid, run_sweep

        payload = run_sweep(
            SweepGrid(
                num_requests=30, arrival_rates_rps=(15.0,),
                cluster_shapes=(
                    {"mode": "disaggregated",
                     "num_prefill_replicas": 1, "num_decode_replicas": 1},
                ),
                trace_cells=(0,), trace_dir=str(tmp_path),
            ),
            parallel=False,
        )
        summary = json.loads(
            open(payload["cells"][0]["trace_files"]["summary"]).read()
        )
        assert summary["requests"]["breakdowns_exact"] is True
