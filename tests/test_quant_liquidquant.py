"""Tests for LiquidQuant (repro.quant.liquidquant) — including the Section 4 overflow proof."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.quant import (
    MAX_SECOND_LEVEL_SCALE,
    LqqConfig,
    first_level_quantize,
    lqq_dequantize_fp,
    lqq_dequantize_int8,
    lqq_dequantize_int8_reference,
    lqq_quantize,
    quantization_error,
    second_level_quantize,
)


class TestLqqConfig:
    def test_defaults(self):
        cfg = LqqConfig()
        assert cfg.group_size == 64 and cfg.protective_bound == 119

    def test_validation(self):
        with pytest.raises(ValueError):
            LqqConfig(group_size=0)
        with pytest.raises(ValueError):
            LqqConfig(protective_bound=200)


class TestFirstLevel:
    def test_protective_range(self, rng):
        w = rng.normal(0, 1.0, (16, 64))
        q, scale = first_level_quantize(w)
        assert q.min() >= -119 and q.max() <= 119
        assert scale.shape == (16, 1)

    def test_extreme_values_hit_bound(self):
        w = np.array([[1.0, -1.0, 0.5, -0.5]])
        q, scale = first_level_quantize(w)
        assert q.max() == 119 and q.min() == -119

    def test_reconstruction(self, rng):
        w = rng.normal(0, 0.1, (8, 32))
        q, scale = first_level_quantize(w)
        w_hat = q * scale
        step = scale.max()
        assert np.max(np.abs(w - w_hat)) <= step / 2 + 1e-12

    def test_requires_2d(self, rng):
        with pytest.raises(ValueError):
            first_level_quantize(rng.normal(size=(8,)))


class TestSecondLevel:
    def test_scale_bound(self, rng):
        """Section 4: the second-level scale can never exceed 16."""
        q_i8 = rng.integers(-119, 120, (32, 128)).astype(np.int16)
        _, scale_u8, _, _ = second_level_quantize(q_i8, 64)
        assert scale_u8.min() >= 1 and scale_u8.max() <= MAX_SECOND_LEVEL_SCALE

    def test_worst_case_range_gives_scale_16(self):
        q_i8 = np.array([[-119] + [119] * 63], dtype=np.int16)
        _, scale_u8, _, _ = second_level_quantize(q_i8, 64)
        assert scale_u8[0, 0] == 16

    def test_offset_in_uint8(self, rng):
        q_i8 = rng.integers(-119, 120, (16, 64)).astype(np.int16)
        _, _, offset_a, min_i8 = second_level_quantize(q_i8, 64)
        assert offset_a.min() >= 0 and offset_a.max() <= 255
        assert np.array_equal(offset_a.astype(np.int32), 128 + min_i8.astype(np.int32))

    def test_codes_in_uint4(self, rng):
        q_i8 = rng.integers(-119, 120, (16, 64)).astype(np.int16)
        q_u4, _, _, _ = second_level_quantize(q_i8, 64)
        assert q_u4.min() >= 0 and q_u4.max() <= 15

    def test_paper_example(self):
        """The worked example of Section 4: max=119, min=-104 gives s=15."""
        group = np.full(64, -104, dtype=np.int16)
        group[0] = 119
        _, scale_u8, offset_a, min_i8 = second_level_quantize(group[None, :], 64)
        assert scale_u8[0, 0] == 15
        assert min_i8[0, 0] == -104
        assert offset_a[0, 0] == 128 - 104


class TestLqqQuantize:
    def test_shapes(self, small_weight):
        qw = lqq_quantize(small_weight)
        n, k = small_weight.shape
        assert qw.q_u4.shape == (n, k)
        assert qw.scale_u8.shape == (n, k // 64)
        assert qw.offset_a.shape == (n, k // 64)
        assert qw.num_groups == k // 64

    def test_group_size_must_divide_k(self, rng):
        with pytest.raises(ValueError):
            lqq_quantize(rng.normal(size=(8, 100)))

    def test_requires_2d(self, rng):
        with pytest.raises(ValueError):
            lqq_quantize(rng.normal(size=(64,)))

    def test_memory_bytes_close_to_half_byte_per_element(self, medium_weight):
        qw = lqq_quantize(medium_weight)
        bytes_per_elem = qw.memory_bytes() / medium_weight.size
        assert 0.5 <= bytes_per_elem < 0.56

    def test_deterministic(self, small_weight):
        a = lqq_quantize(small_weight)
        b = lqq_quantize(small_weight)
        assert np.array_equal(a.q_u4, b.q_u4)
        assert np.array_equal(a.scale_u8, b.scale_u8)


class TestLqqDequantize:
    def test_equation12_matches_reference(self, small_weight):
        """The hardware form (IMAD + XOR in UINT8) equals the plain Equation-8 reference."""
        qw = lqq_quantize(small_weight)
        assert np.array_equal(lqq_dequantize_int8(qw), lqq_dequantize_int8_reference(qw))

    def test_roundtrip_error_bounded_by_two_level_step(self, small_weight):
        qw = lqq_quantize(small_weight)
        w_hat = lqq_dequantize_fp(qw)
        # Worst-case error: first-level step/2 plus second-level step (s_u8 <= 16) / 2 channels.
        bound = (0.5 + MAX_SECOND_LEVEL_SCALE / 2.0) * qw.scale_ch
        assert np.all(np.abs(small_weight - w_hat) <= np.broadcast_to(bound, small_weight.shape) + 1e-12)

    def test_relative_error_reasonable(self, medium_weight):
        err = quantization_error(medium_weight, lqq_dequantize_fp(lqq_quantize(medium_weight)))
        assert err["relative_fro"] < 0.15

    def test_overflow_check_can_be_disabled(self, small_weight):
        qw = lqq_quantize(small_weight)
        a = lqq_dequantize_int8(qw, check_overflow=False)
        b = lqq_dequantize_int8(qw, check_overflow=True)
        assert np.array_equal(a, b)

    def test_tampered_scale_raises(self, small_weight):
        """If the Section-4 invariants are violated the checked path must catch it."""
        qw = lqq_quantize(small_weight)
        with pytest.raises(ValueError):
            type(qw)(
                q_u4=qw.q_u4,
                scale_u8=qw.scale_u8 + 20,  # >16 violates the proof precondition
                offset_a=qw.offset_a,
                min_i8=qw.min_i8,
                scale_ch=qw.scale_ch,
                config=qw.config,
                original_shape=qw.original_shape,
            )


class TestOverflowProperty:
    """Property-based re-statement of the Section 4 proof: for *any* weight tensor the
    intermediate ``Q_u4 * s_u8 + a`` stays within UINT8 and the final bytes reinterpret to the
    correct INT8 values."""

    @given(
        hnp.arrays(
            np.float64,
            shape=st.tuples(st.integers(1, 8), st.sampled_from([32, 64, 128])),
            elements=st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False),
        ),
        st.sampled_from([32, 64]),
    )
    @settings(max_examples=80, deadline=None)
    def test_no_overflow_for_any_tensor(self, w, group_size):
        if w.shape[1] % group_size != 0:
            group_size = 32
        qw = lqq_quantize(w, LqqConfig(group_size=group_size))
        grouped_scale = np.repeat(qw.scale_u8.astype(np.int64), group_size, axis=1)
        grouped_offset = np.repeat(qw.offset_a.astype(np.int64), group_size, axis=1)
        product = qw.q_u4.astype(np.int64) * grouped_scale
        assert product.max(initial=0) <= 240
        assert (product + grouped_offset).max(initial=0) <= 255
        # And the dequantized INT8 values agree with the reference path.
        assert np.array_equal(lqq_dequantize_int8(qw), lqq_dequantize_int8_reference(qw))

    @given(
        st.integers(min_value=-119, max_value=119),
        st.integers(min_value=-119, max_value=119),
    )
    @settings(max_examples=100, deadline=None)
    def test_degenerate_groups(self, lo, hi):
        """Groups with only two distinct values (any ordering) never overflow."""
        group = np.array([lo, hi] * 16, dtype=np.float64)[None, :]
        qw = lqq_quantize(group, LqqConfig(group_size=32))
        assert np.array_equal(lqq_dequantize_int8(qw), lqq_dequantize_int8_reference(qw))
