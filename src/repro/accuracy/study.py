"""Quantization-accuracy study (the §7.1 accuracy claim, reproduced on synthetic weights).

The paper states that LiquidQuant preserves model accuracy (perplexity / zero-shot) relative
to the QServe-style progressive scheme it replaces.  Without model checkpoints or evaluation
datasets in this offline environment, the claim is exercised at the level where it actually
lives: both schemes are two-level W4A8 quantizers, so if LQQ's *reconstruction error* on
realistic weight distributions matches (or beats) QServe's and plain round-to-nearest INT4,
the downstream accuracy argument carries over (the GEMM arithmetic is otherwise identical).

The study quantizes synthetic weight matrices drawn from distributions that mimic LLM weight
statistics — Gaussian, heavy-tailed (Student-t), and Gaussian with per-channel outliers à la
GPT activations — and reports per-scheme error metrics plus end-to-end GEMM output error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..quant.base import QuantGranularity, dequantize, group_reshape, group_unreshape, \
    quantization_error, quantize_tensor
from ..quant.liquidquant import LqqConfig, lqq_dequantize_fp, lqq_quantize
from ..quant.progressive import QServeConfig, qserve_dequantize_fp, qserve_quantize

__all__ = ["WeightDistribution", "SchemeResult", "AccuracyStudy", "run_accuracy_study",
           "STANDARD_DISTRIBUTIONS"]


@dataclass(frozen=True)
class WeightDistribution:
    """A synthetic weight-matrix generator."""

    name: str
    sampler: Callable[[np.random.Generator, int, int], np.ndarray]

    def sample(self, rng: np.random.Generator, n: int, k: int) -> np.ndarray:
        w = self.sampler(rng, n, k)
        if w.shape != (n, k):
            raise ValueError(f"sampler for {self.name!r} returned wrong shape")
        return w


def _gaussian(rng, n, k):
    return rng.normal(0.0, 0.02, (n, k))


def _student_t(rng, n, k):
    return 0.02 * rng.standard_t(df=4, size=(n, k))


def _outlier_channels(rng, n, k):
    w = rng.normal(0.0, 0.02, (n, k))
    outlier_cols = rng.choice(k, size=max(1, k // 100), replace=False)
    w[:, outlier_cols] *= 8.0
    return w


STANDARD_DISTRIBUTIONS: List[WeightDistribution] = [
    WeightDistribution("gaussian", _gaussian),
    WeightDistribution("student_t", _student_t),
    WeightDistribution("outlier_channels", _outlier_channels),
]


@dataclass
class SchemeResult:
    """Error metrics of one quantization scheme on one weight distribution."""

    scheme: str
    distribution: str
    weight_error: Dict[str, float]
    output_error: Dict[str, float]


@dataclass
class AccuracyStudy:
    """Full study results keyed by (scheme, distribution)."""

    results: List[SchemeResult] = field(default_factory=list)

    def by_scheme(self, scheme: str) -> List[SchemeResult]:
        return [r for r in self.results if r.scheme == scheme]

    def mean_output_rmse(self, scheme: str) -> float:
        values = [r.output_error["rmse"] for r in self.by_scheme(scheme)]
        return float(np.mean(values)) if values else float("nan")

    def summary_rows(self) -> List[Dict[str, object]]:
        return [
            {
                "scheme": r.scheme,
                "distribution": r.distribution,
                "weight_rel_err": r.weight_error["relative_fro"],
                "weight_snr_db": r.weight_error["snr_db"],
                "output_rel_err": r.output_error["relative_fro"],
            }
            for r in self.results
        ]


def _rtn_int4(w: np.ndarray, group_size: int) -> np.ndarray:
    codes, params = quantize_tensor(w, bits=4, symmetric=False, signed=False,
                                    granularity=QuantGranularity.PER_GROUP,
                                    group_size=group_size)
    grouped = group_reshape(codes.astype(np.int32), group_size)
    return group_unreshape(dequantize(grouped, params))


def run_accuracy_study(
    n: int = 512,
    k: int = 1024,
    batch: int = 64,
    group_size: int = 64,
    distributions: Optional[Sequence[WeightDistribution]] = None,
    seed: int = 0,
) -> AccuracyStudy:
    """Quantize synthetic weights with LQQ, QServe and RTN-INT4; report error metrics.

    ``output_error`` measures the error of ``X @ W_hat^T`` against the FP reference with a
    shared Gaussian activation batch, which is the quantity that actually propagates into
    model quality.
    """
    rng = np.random.default_rng(seed)
    distributions = list(distributions) if distributions is not None else STANDARD_DISTRIBUTIONS
    study = AccuracyStudy()
    for dist in distributions:
        w = dist.sample(rng, n, k)
        x = rng.normal(0.0, 1.0, (batch, k))
        reference = x @ w.T

        reconstructions = {
            "lqq": lqq_dequantize_fp(lqq_quantize(w, LqqConfig(group_size=group_size))),
            "qserve": qserve_dequantize_fp(qserve_quantize(w, QServeConfig(group_size=group_size))),
            "rtn-int4": _rtn_int4(w, group_size),
        }
        for scheme, w_hat in reconstructions.items():
            study.results.append(
                SchemeResult(
                    scheme=scheme,
                    distribution=dist.name,
                    weight_error=quantization_error(w, w_hat),
                    output_error=quantization_error(reference, x @ w_hat.T),
                )
            )
    return study
