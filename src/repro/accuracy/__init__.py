"""Quantization accuracy study on synthetic weight distributions (§7.1 accuracy claim)."""

from .study import (
    STANDARD_DISTRIBUTIONS,
    AccuracyStudy,
    SchemeResult,
    WeightDistribution,
    run_accuracy_study,
)

__all__ = [
    "STANDARD_DISTRIBUTIONS",
    "AccuracyStudy",
    "SchemeResult",
    "WeightDistribution",
    "run_accuracy_study",
]
