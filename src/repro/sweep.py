"""Process-parallel multi-configuration sweep engine for the serving simulator.

One simulated trace answers one question; the experiments the serving literature actually
runs — "which preemption policy wins on *this* system at *that* arrival rate, and does the
answer survive disaggregation?" — are grids.  This module turns the simulator into an
experiment platform:

* **Declarative grid** — :class:`SweepGrid` spans models × systems × kernels × KV formats ×
  scheduling policies × preemption policies × arrival rates × cluster shapes, plus the
  shared workload knobs
  (trace size, length distributions, KV budgets, SLO).  :meth:`SweepGrid.cells` expands it
  into a deterministic, index-ordered cell list.
* **Deterministic per-cell seeds** — every cell's trace seed is derived from the grid's
  ``base_seed`` and the cell's parameter key via CRC-32 (:func:`derive_cell_seed`), so a
  cell's workload never depends on grid position: adding a policy to the grid leaves every
  other cell's trace (and therefore its results) byte-identical.
* **Process-parallel execution** — :func:`run_sweep` fans cells over a
  ``ProcessPoolExecutor``; each worker process keeps a per-process
  :class:`~repro.serving.engine.ServingEngine` cache keyed by (system, kernel, kv_format,
  model, device, tp), so the engine's bounded step-cost memos stay warm across the cells
  that share a
  configuration.  Results are returned in cell order regardless of completion order, and a
  serial run of the same grid produces the byte-identical payload (modulo wall-clock
  fields) — the determinism contract the benchmark harness gates on.
* **Schema-validated consolidated JSON** — the payload matches :data:`SWEEP_SCHEMA`
  (validated before it is returned or written), so downstream tooling can rely on its
  shape the way it relies on ``BENCH_scheduler.json``.

Run a grid from the command line::

    PYTHONPATH=src python -m repro.sweep --workers 4 --out sweep.json

or see ``examples/policy_sweep.py`` for the library API.
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .backend import available_kernels, available_kv_formats, scheme_output_rmse, weight_quant_scheme
from .reporting.schema import validate_payload
from .serving.cluster import ServingCluster
from .serving.engine import ServingEngine
from .serving.metrics import SloSpec
from .serving.models import list_models
from .serving.scheduler import ContinuousBatchingScheduler
from .serving.systems import ClusterSpec, SystemProfile, get_system, list_systems
from .telemetry import Tracer, request_breakdowns, write_chrome_trace, write_summary
from .workloads.traces import (
    SHAREGPT_OUTPUTS,
    SHAREGPT_PROMPTS,
    ArrivalProcess,
    LengthDistribution,
    generate_trace,
)

__all__ = [
    "SweepGrid",
    "SWEEP_SCHEMA",
    "derive_cell_seed",
    "resolve_cell_profile",
    "compute_frontier",
    "run_sweep",
    "cells_identical",
    "write_sweep_json",
]


#: Schema of the consolidated sweep payload (see repro.reporting.schema for the language).
SWEEP_SCHEMA = {
    "benchmark": str,  # always "repro.sweep"
    "grid": dict,
    "num_cells": int,
    "workers": int,
    "parallel": bool,
    "wall_time_s": float,
    "cells": [
        {
            "index": int,
            "system": str,
            "model": str,
            "scheduling_policy": str,
            "preemption_policy": str,
            "arrival_rate_rps": float,
            "cluster": dict,
            "seed": int,
            "kernel": str,       # effective GEMM kernel (system default unless overridden)
            "kv_format": str,    # effective KV-cache format
            "wall_time_s": float,
            "metrics": {
                "completed_requests": int,
                "generated_tokens": int,
                "throughput_tokens_per_s": float,
                "simulated_time_s": float,
                "iterations": int,
                "preemptions": int,
                "p50_ttft_s": float,
                "p99_ttft_s": float,
                "p99_tpot_s": float,
                "slo_attainment": float,
                "goodput_rps": float,
            },
        }
    ],
    # Pareto frontier over (goodput-per-GPU, accuracy proxy) across all cells: the
    # headline quant-format x kernel x kv_format interaction, reported alongside the raw
    # grid so downstream tooling never recomputes it.
    "frontier": {
        "objective": str,
        "num_points": int,
        "dominated_cells": int,
        "points": [
            {
                "index": int,
                "system": str,
                "model": str,
                "kernel": str,
                "kv_format": str,
                "cluster": str,
                "gpus": int,
                "goodput_per_gpu_rps": float,
                "accuracy_rmse": float,
                "slo_attainment": float,
            }
        ],
    },
}

#: The single-replica (no cluster layer) shape; the default grid axis.
SINGLE_REPLICA: Dict[str, Any] = {"mode": "single"}


def derive_cell_seed(base_seed: int, cell_key: str) -> int:
    """Deterministic per-cell trace seed: stable across runs, machines and processes.

    CRC-32 of the cell's parameter key mixed with the grid's base seed.  Deriving from
    the *key* (not the cell index) means adding or removing grid values never reseeds the
    surviving cells — their traces, and therefore their simulated numbers, stay
    byte-identical across grid revisions.
    """
    return (base_seed * 1_000_003 + zlib.crc32(cell_key.encode("utf-8"))) % (2**31)


def _cluster_label(shape: Dict[str, Any]) -> str:
    mode = shape.get("mode", "single")
    if mode == "single":
        return "single"
    if mode == "colocated":
        return f"colocated-{shape.get('num_replicas', 2)}"
    return (
        f"disaggregated-{shape.get('num_prefill_replicas', 1)}p"
        f"+{shape.get('num_decode_replicas', 1)}d"
    )


@dataclass(frozen=True)
class SweepGrid:
    """A declarative grid of serving-simulation configurations.

    The swept axes are the cartesian product; everything else is shared workload
    configuration applied to every cell.  ``cluster_shapes`` entries are plain dicts:
    ``{"mode": "single"}`` (one replica, no cluster layer),
    ``{"mode": "colocated", "num_replicas": N, "router": name?}`` or
    ``{"mode": "disaggregated", "num_prefill_replicas": P, "num_decode_replicas": D}``.
    """

    systems: Sequence[str] = ("liquidserve",)
    models: Sequence[str] = ("llama2-7b",)
    scheduling_policies: Sequence[str] = ("fcfs",)
    preemption_policies: Sequence[str] = ("recompute",)
    arrival_rates_rps: Sequence[float] = (10.0,)
    cluster_shapes: Sequence[Dict[str, Any]] = (SINGLE_REPLICA,)
    #: Kernel-backend axes: each entry overrides the system profile's GEMM kernel /
    #: KV-cache format via :meth:`SystemProfile.derive`; ``None`` keeps the system default.
    #: The default singleton ``(None,)`` leaves existing grids (cells, keys, seeds)
    #: byte-identical.
    kernels: Sequence[Optional[str]] = (None,)
    kv_formats: Sequence[Optional[str]] = (None,)
    # Shared workload knobs:
    num_requests: int = 200
    base_seed: int = 0
    device: str = "H800"
    tp_degree: int = 1
    prompt_lengths: Optional[LengthDistribution] = None
    output_lengths: Optional[LengthDistribution] = None
    kv_budget_bytes: Optional[int] = None
    host_kv_budget_bytes: Optional[int] = None
    num_priority_levels: int = 1
    prefix_caching: bool = False
    shared_prefix_tokens: int = 0
    slo_ttft_s: float = 2.0
    slo_tpot_s: float = 0.1
    #: Telemetry opt-in: cell indices to run with a :class:`repro.telemetry.Tracer`
    #: attached.  Traced cells write a Chrome/Perfetto timeline and a schema-validated
    #: summary into ``trace_dir`` (default: the working directory) and report the file
    #: paths in their result row under ``trace_files``.  Tracing is observational —
    #: traced cells' simulated numbers are bit-identical to untraced runs — and cells
    #: not listed pay nothing.
    trace_cells: Sequence[int] = ()
    trace_dir: Optional[str] = None

    def describe(self) -> Dict[str, Any]:
        """JSON-safe description of the grid (embedded in the consolidated payload)."""
        return {
            "systems": list(self.systems),
            "models": list(self.models),
            "scheduling_policies": list(self.scheduling_policies),
            "preemption_policies": list(self.preemption_policies),
            "arrival_rates_rps": list(self.arrival_rates_rps),
            "cluster_shapes": [_cluster_label(s) for s in self.cluster_shapes],
            "kernels": ["default" if k is None else k for k in self.kernels],
            "kv_formats": ["default" if f is None else f for f in self.kv_formats],
            "num_requests": self.num_requests,
            "base_seed": self.base_seed,
            "device": self.device,
            "tp_degree": self.tp_degree,
            "prompt_lengths": repr(self.prompt_lengths or SHAREGPT_PROMPTS),
            "output_lengths": repr(self.output_lengths or SHAREGPT_OUTPUTS),
            "kv_budget_bytes": self.kv_budget_bytes,
            "host_kv_budget_bytes": self.host_kv_budget_bytes,
            "num_priority_levels": self.num_priority_levels,
            "prefix_caching": self.prefix_caching,
            "shared_prefix_tokens": self.shared_prefix_tokens,
            "slo": {"ttft_s": self.slo_ttft_s, "tpot_s": self.slo_tpot_s},
            "trace_cells": sorted(self.trace_cells),
        }

    def cells(self) -> List[Dict[str, Any]]:
        """Expand the grid into its cell list (deterministic, index-ordered)."""
        cells: List[Dict[str, Any]] = []
        for index, (model, system, kernel, kv_format, scheduling, preemption, rate, shape) in enumerate(
            itertools.product(
                self.models,
                self.systems,
                self.kernels,
                self.kv_formats,
                self.scheduling_policies,
                self.preemption_policies,
                self.arrival_rates_rps,
                self.cluster_shapes,
            )
        ):
            key = (
                f"model={model}|system={system}|scheduling={scheduling}"
                f"|preemption={preemption}|rate={rate:g}|cluster={_cluster_label(shape)}"
            )
            # Backend overrides extend the key only when set, so every pre-existing cell
            # keeps its exact seed (and therefore its byte-identical trace and results).
            if kernel is not None:
                key += f"|kernel={kernel}"
            if kv_format is not None:
                key += f"|kvfmt={kv_format}"
            cells.append(
                {
                    "index": index,
                    "system": system,
                    "model": model,
                    "kernel": kernel,
                    "kv_format": kv_format,
                    "scheduling_policy": scheduling,
                    "preemption_policy": preemption,
                    "arrival_rate_rps": float(rate),
                    "cluster": dict(shape),
                    "seed": derive_cell_seed(self.base_seed, key),
                    # Shared knobs travel with the cell so workers need no grid object.
                    "num_requests": self.num_requests,
                    "device": self.device,
                    "tp_degree": self.tp_degree,
                    "prompt_lengths": self.prompt_lengths,
                    "output_lengths": self.output_lengths,
                    "kv_budget_bytes": self.kv_budget_bytes,
                    "host_kv_budget_bytes": self.host_kv_budget_bytes,
                    "num_priority_levels": self.num_priority_levels,
                    "prefix_caching": self.prefix_caching,
                    "shared_prefix_tokens": self.shared_prefix_tokens,
                    "slo_ttft_s": self.slo_ttft_s,
                    "slo_tpot_s": self.slo_tpot_s,
                    "trace": index in set(self.trace_cells),
                    "trace_dir": self.trace_dir,
                }
            )
        return cells


def resolve_cell_profile(cell: Dict[str, Any]) -> SystemProfile:
    """The effective :class:`SystemProfile` for a cell: registry profile + backend overrides.

    Cells carry the *requested* kernel / kv_format (``None`` = system default); the
    derived profile is what the engine — and therefore the kernel backend — actually runs.
    """
    return get_system(cell["system"]).derive(
        kernel=cell.get("kernel"), kv_format=cell.get("kv_format")
    )


# Per-process engine cache: worker processes live for the whole sweep, so cells sharing a
# (system, kernel, kv_format, model, device, tp) configuration reuse one engine — and its
# bounded step-cost memos — instead of rebuilding the cost model per cell.
_ENGINE_CACHE: Dict[
    Tuple[str, Optional[str], Optional[str], str, str, int], ServingEngine
] = {}


def _cached_engine(cell: Dict[str, Any]) -> ServingEngine:
    key = (
        cell["system"], cell.get("kernel"), cell.get("kv_format"),
        cell["model"], cell["device"], cell["tp_degree"],
    )
    engine = _ENGINE_CACHE.get(key)
    if engine is None:
        profile = resolve_cell_profile(cell)
        engine = ServingEngine(
            profile, cell["model"], device=cell["device"], tp_degree=cell["tp_degree"]
        )
        _ENGINE_CACHE[key] = engine
    return engine


def _run_cell(cell: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one grid cell and return its schema-shaped result row.

    Runs in a worker process (or inline for serial sweeps).  Everything the cell needs is
    in the cell dict; the only cross-cell state is the pure per-process engine cache.
    """
    start = time.perf_counter()
    engine = _cached_engine(cell)
    trace = generate_trace(
        cell["num_requests"],
        ArrivalProcess(rate_rps=cell["arrival_rate_rps"]),
        cell["prompt_lengths"] or SHAREGPT_PROMPTS,
        cell["output_lengths"] or SHAREGPT_OUTPUTS,
        seed=cell["seed"],
        num_priority_levels=cell["num_priority_levels"],
        shared_prefix_tokens=cell["shared_prefix_tokens"],
    )
    slo = SloSpec(ttft_s=cell["slo_ttft_s"], tpot_s=cell["slo_tpot_s"])
    shape = cell["cluster"]
    tracer = (
        Tracer(label=f"cell{cell['index']:03d}") if cell.get("trace") else None
    )
    scheduler_kwargs = dict(
        scheduling_policy=cell["scheduling_policy"],
        preemption_policy=cell["preemption_policy"],
        kv_budget_bytes=cell["kv_budget_bytes"],
        host_kv_budget_bytes=cell["host_kv_budget_bytes"],
        prefix_caching=cell["prefix_caching"],
        tracer=tracer,
    )
    if shape.get("mode", "single") == "single":
        if tracer is not None:
            tracer.set_replica_role(0, "single")
        scheduler = ContinuousBatchingScheduler(engine, **scheduler_kwargs)
        stats = scheduler.run(trace)
        report = stats.slo_report(slo)
        iterations = stats.num_iterations
        all_stats = [stats]
        metrics_source = dict(
            completed_requests=stats.completed_requests,
            generated_tokens=stats.generated_tokens,
            throughput=stats.throughput_tokens_per_s,
            simulated_time_s=stats.simulated_time_s,
            preemptions=stats.preemptions,
        )
    else:
        spec = ClusterSpec(
            mode=shape["mode"],
            num_replicas=shape.get("num_replicas"),
            num_prefill_replicas=shape.get("num_prefill_replicas", 1),
            num_decode_replicas=shape.get("num_decode_replicas", 1),
            router=shape.get("router"),
        )
        cluster = ServingCluster(
            cell["system"],
            cell["model"],
            spec,
            device=cell["device"],
            tp_degree=cell["tp_degree"],
            engine=engine,
            **scheduler_kwargs,
        )
        result = cluster.run(trace)
        report = result.slo_report(slo)
        iterations = sum(s.num_iterations for s in result.replica_stats)
        all_stats = list(result.replica_stats)
        metrics_source = dict(
            completed_requests=result.completed_requests,
            generated_tokens=result.generated_tokens,
            throughput=result.throughput_tokens_per_s,
            simulated_time_s=result.simulated_time_s,
            preemptions=sum(s.preemptions for s in result.replica_stats),
        )
    wall_s = time.perf_counter() - start
    trace_files: Optional[Dict[str, str]] = None
    if tracer is not None:
        out_dir = os.path.abspath(cell.get("trace_dir") or os.getcwd())
        os.makedirs(out_dir, exist_ok=True)
        stem = os.path.join(out_dir, f"cell{cell['index']:03d}")
        breakdowns = request_breakdowns(tracer)
        write_chrome_trace(tracer, stem + ".trace.json", breakdowns)
        write_summary(tracer, stem + ".summary.json", all_stats, breakdowns)
        trace_files = {
            "chrome_trace": stem + ".trace.json",
            "summary": stem + ".summary.json",
        }
    row = {
        "index": cell["index"],
        "system": cell["system"],
        "model": cell["model"],
        "scheduling_policy": cell["scheduling_policy"],
        "preemption_policy": cell["preemption_policy"],
        "arrival_rate_rps": cell["arrival_rate_rps"],
        "cluster": dict(cell["cluster"], label=_cluster_label(cell["cluster"])),
        "seed": cell["seed"],
        # Effective backend configuration (post-derive): always concrete names, never None.
        "kernel": engine.system.kernel,
        "kv_format": engine.system.kv_format,
        "wall_time_s": round(wall_s, 4),
        "metrics": {
            "completed_requests": metrics_source["completed_requests"],
            "generated_tokens": metrics_source["generated_tokens"],
            "throughput_tokens_per_s": round(metrics_source["throughput"], 1),
            "simulated_time_s": round(metrics_source["simulated_time_s"], 6),
            "iterations": iterations,
            "preemptions": metrics_source["preemptions"],
            "p50_ttft_s": round(report.p50_ttft_s, 6),
            "p99_ttft_s": round(report.p99_ttft_s, 6),
            "p99_tpot_s": round(report.p99_tpot_s, 7),
            "slo_attainment": round(report.attainment, 4),
            "goodput_rps": round(report.goodput_rps, 3),
        },
    }
    if trace_files is not None:
        # Extra key on traced rows only: the schema permits it, and untraced grids
        # (every pre-existing payload) are byte-identical to before.
        row["trace_files"] = trace_files
    return row


def _cell_gpus(cluster: Dict[str, Any], tp_degree: int) -> int:
    """GPU count a cell occupies: replicas in its cluster shape x tensor-parallel degree."""
    mode = cluster.get("mode", "single")
    if mode == "single":
        replicas = 1
    elif mode == "colocated":
        replicas = cluster.get("num_replicas") or 2
    else:
        replicas = cluster.get("num_prefill_replicas", 1) + cluster.get(
            "num_decode_replicas", 1
        )
    return replicas * tp_degree


def compute_frontier(results: Sequence[Dict[str, Any]], tp_degree: int = 1) -> Dict[str, Any]:
    """Pareto frontier over (goodput-per-GPU up, accuracy-RMSE down) across result rows.

    Each cell's accuracy proxy is the weight-quantization RMSE of its *effective* kernel
    (:func:`repro.backend.scheme_output_rmse`), so the frontier answers the question the
    quant-format x kernel x kv_format sweep exists to ask: which backend configurations
    buy goodput without paying accuracy, and which accuracy hits buy nothing.  A cell is
    dominated when another cell is at least as good on both objectives and strictly
    better on one.  Points are sorted by descending goodput-per-GPU.
    """
    candidates = []
    for row in results:
        gpus = _cell_gpus(row["cluster"], tp_degree)
        rmse = scheme_output_rmse(weight_quant_scheme(row["kernel"]))
        candidates.append(
            {
                "index": row["index"],
                "system": row["system"],
                "model": row["model"],
                "kernel": row["kernel"],
                "kv_format": row["kv_format"],
                "cluster": row["cluster"]["label"],
                "gpus": gpus,
                "goodput_per_gpu_rps": round(row["metrics"]["goodput_rps"] / gpus, 4),
                "accuracy_rmse": round(rmse, 6),
                "slo_attainment": row["metrics"]["slo_attainment"],
            }
        )
    points = [
        p
        for p in candidates
        if not any(
            (q["goodput_per_gpu_rps"] >= p["goodput_per_gpu_rps"])
            and (q["accuracy_rmse"] <= p["accuracy_rmse"])
            and (
                q["goodput_per_gpu_rps"] > p["goodput_per_gpu_rps"]
                or q["accuracy_rmse"] < p["accuracy_rmse"]
            )
            for q in candidates
        )
    ]
    points.sort(key=lambda p: (-p["goodput_per_gpu_rps"], p["accuracy_rmse"], p["index"]))
    return {
        "objective": "max goodput_per_gpu_rps / min accuracy_rmse",
        "num_points": len(points),
        "dominated_cells": len(candidates) - len(points),
        "points": points,
    }


def run_sweep(
    grid: SweepGrid,
    *,
    max_workers: Optional[int] = None,
    parallel: bool = True,
) -> Dict[str, Any]:
    """Execute every cell of ``grid`` and return the consolidated, validated payload.

    ``parallel=True`` (default) fans cells over a ``ProcessPoolExecutor`` with
    ``max_workers`` processes (executor default: ``os.cpu_count()``); ``parallel=False``
    runs the cells inline, in order, in this process.  Either way the result rows are
    ordered by cell index and — wall-clock fields aside — byte-identical between the two
    modes: cells are seeded by parameter key and share no mutable state beyond the pure
    per-process engine caches (see :func:`cells_identical`).
    """
    cells = grid.cells()
    start = time.perf_counter()
    if parallel and (max_workers is None or max_workers > 1) and len(cells) > 1:
        workers = max_workers or (os.cpu_count() or 1)
        chunksize = max(1, len(cells) // (4 * workers))
        with ProcessPoolExecutor(max_workers=workers) as executor:
            results = list(executor.map(_run_cell, cells, chunksize=chunksize))
    else:
        workers = 1
        results = [_run_cell(cell) for cell in cells]
    wall_s = time.perf_counter() - start
    payload = {
        "benchmark": "repro.sweep",
        "grid": grid.describe(),
        "num_cells": len(cells),
        "workers": workers,
        "parallel": workers > 1,
        "wall_time_s": round(wall_s, 3),
        "cells": results,
        "frontier": compute_frontier(results, grid.tp_degree),
    }
    validate_payload(payload, SWEEP_SCHEMA)
    return payload


def cells_identical(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
    """True when two sweep payloads carry identical results (wall-clock fields aside).

    The determinism check the benchmark harness gates on: a parallel sweep must
    reproduce the serial sweep's simulated numbers byte for byte.
    """

    def strip(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
        return [
            {key: value for key, value in cell.items() if key != "wall_time_s"}
            for cell in payload["cells"]
        ]

    return strip(a) == strip(b)


def write_sweep_json(payload: Dict[str, Any], path: str) -> str:
    """Validate and write a consolidated sweep payload; returns the absolute path."""
    validate_payload(payload, SWEEP_SCHEMA)
    path = os.path.abspath(path)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return path


def _validate_choices(
    parser: argparse.ArgumentParser,
    option: str,
    requested: Sequence[str],
    available: Sequence[str],
) -> None:
    """Fail fast — before any worker spawns — on unknown registry names.

    Without this, a typo'd ``--systems`` name surfaces as a ``KeyError`` deep inside a
    worker process, stripped of context by pickling.  ``parser.error`` exits with status
    2 and a message listing every available name.
    """
    unknown = sorted(set(requested) - set(available))
    if unknown:
        parser.error(
            f"unknown {option} name(s): {', '.join(unknown)}; "
            f"available: {', '.join(available)}"
        )


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="sweep.json", help="output JSON path")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: cpu count)")
    parser.add_argument("--serial", action="store_true",
                        help="run cells inline instead of process-parallel")
    parser.add_argument("--num-requests", type=int, default=200,
                        help="trace size per cell")
    parser.add_argument("--systems", nargs="+", default=["liquidserve", "trt-fp16"])
    parser.add_argument("--models", nargs="+", default=["llama2-7b"])
    parser.add_argument("--kernels", nargs="+", default=["default"],
                        help="GEMM kernel overrides ('default' = system's kernel)")
    parser.add_argument("--kv-formats", nargs="+", default=["default"],
                        help="KV-cache format overrides ('default' = system's format)")
    parser.add_argument("--scheduling", nargs="+", default=["fcfs", "sjf"])
    parser.add_argument("--preemption", nargs="+", default=["recompute", "hybrid"])
    parser.add_argument("--rates", nargs="+", type=float, default=[15.0, 25.0])
    args = parser.parse_args(argv)
    _validate_choices(parser, "--systems", args.systems, list_systems())
    _validate_choices(parser, "--models", args.models, list_models())
    _validate_choices(
        parser, "--kernels",
        [k for k in args.kernels if k != "default"], available_kernels(),
    )
    _validate_choices(
        parser, "--kv-formats",
        [f for f in args.kv_formats if f != "default"], available_kv_formats(),
    )
    grid = SweepGrid(
        systems=tuple(args.systems),
        models=tuple(args.models),
        kernels=tuple(None if k == "default" else k for k in args.kernels),
        kv_formats=tuple(None if f == "default" else f for f in args.kv_formats),
        scheduling_policies=tuple(args.scheduling),
        preemption_policies=tuple(args.preemption),
        arrival_rates_rps=tuple(args.rates),
        num_requests=args.num_requests,
    )
    payload = run_sweep(grid, max_workers=args.workers, parallel=not args.serial)
    path = write_sweep_json(payload, args.out)
    print(
        f"{payload['num_cells']} cells in {payload['wall_time_s']:.2f}s "
        f"({payload['workers']} worker{'s' if payload['workers'] != 1 else ''}) -> {path}"
    )


if __name__ == "__main__":
    main()
