"""Top-level convenience API for the LiquidGEMM reproduction.

Most users need three things:

* :func:`quantize_weights` — offline LiquidQuant quantization + dual-MMA packing of a weight
  matrix, ready for deployment;
* :func:`w4a8_gemm` — run a W4A8 GEMM through the LiquidGEMM kernel (numerically exact
  integer path) and obtain both the output and a performance report for a chosen GPU;
* :func:`compare_kernels` — the unified kernel benchmark of Section 7.3: the same GEMM shape
  evaluated under every kernel in the registry.

Everything here is a thin composition of the subpackages; power users should use
:mod:`repro.kernels`, :mod:`repro.serving` and :mod:`repro.costmodel` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from ..costmodel.model import GemmShape
from ..kernels.base import KernelReport, PreparedWeights
from ..kernels.liquidgemm import LiquidGemmKernel
from ..kernels.registry import default_comparison_set, get_kernel
from ..quant.base import quantization_error

__all__ = ["quantize_weights", "w4a8_gemm", "compare_kernels", "GemmResult"]


@dataclass
class GemmResult:
    """Output of :func:`w4a8_gemm`: values, error vs FP reference, and a performance report."""

    output: np.ndarray
    reference: np.ndarray
    error: Dict[str, float]
    report: KernelReport


def quantize_weights(w: np.ndarray, group_size: int = 64) -> PreparedWeights:
    """Quantize an ``(N, K)`` FP weight matrix with LiquidQuant and pack it for deployment."""
    return LiquidGemmKernel(group_size=group_size).prepare_weights(w)


def w4a8_gemm(
    x: np.ndarray,
    weights_or_matrix,
    device: str = "H800",
    group_size: int = 64,
) -> GemmResult:
    """Run ``Y = X @ W^T`` through LiquidGEMM.

    ``weights_or_matrix`` may be a raw FP weight matrix (quantized on the fly) or the
    :class:`PreparedWeights` returned by :func:`quantize_weights`.
    """
    kernel = LiquidGemmKernel(group_size=group_size)
    if isinstance(weights_or_matrix, PreparedWeights):
        prepared = weights_or_matrix
    else:
        prepared = kernel.prepare_weights(np.asarray(weights_or_matrix))
    x = np.asarray(x, dtype=np.float64)
    output = kernel.run(x, prepared)
    reference = kernel.reference(x, prepared.original)
    shape = GemmShape(x.shape[0], prepared.original.shape[0], prepared.original.shape[1])
    return GemmResult(
        output=output,
        reference=reference,
        error=quantization_error(reference, output),
        report=kernel.estimate(shape, device),
    )


def compare_kernels(
    m: int,
    n: int,
    k: int,
    device: str = "H800",
    kernels: Optional[Iterable[str]] = None,
) -> Dict[str, KernelReport]:
    """Estimate the latency of one GEMM shape under each kernel (Figure 12's comparison)."""
    shape = GemmShape(m, n, k)
    if kernels is None:
        kernel_objs = default_comparison_set()
    else:
        kernel_objs = {name: get_kernel(name) for name in kernels}
    return {name: kernel.estimate(shape, device) for name, kernel in kernel_objs.items()}
