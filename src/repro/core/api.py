"""Top-level convenience API for the LiquidGEMM reproduction.

Most users need four things:

* :func:`quantize_weights` — offline LiquidQuant quantization + dual-MMA packing of a weight
  matrix, ready for deployment;
* :func:`w4a8_gemm` — run a W4A8 GEMM through the LiquidGEMM kernel (numerically exact
  integer path) and obtain both the output and a performance report for a chosen GPU;
* :func:`compare_kernels` — the unified kernel benchmark of Section 7.3: the same GEMM shape
  evaluated under every kernel in the registry;
* :func:`simulate_serving` — a trace-driven, request-level serving simulation (continuous
  batching with chunked prefill and preemption, optional tensor parallelism) returning both
  scheduler statistics and an SLO report (p50/p99 TTFT, TPOT, goodput);
* :func:`simulate_cluster` — the same trace served by a multi-replica cluster behind a
  pluggable router: co-located data-parallel replicas, or DistServe-style disaggregated
  prefill/decode replicas with per-request KV handoffs over the interconnect.

Everything here is a thin composition of the subpackages; power users should use
:mod:`repro.kernels`, :mod:`repro.serving` and :mod:`repro.costmodel` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..costmodel.model import GemmShape
from ..kernels.base import KernelReport, PreparedWeights
from ..kernels.liquidgemm import LiquidGemmKernel
from ..kernels.registry import default_comparison_set, get_kernel
from ..quant.base import quantization_error
from ..serving.cluster import ClusterResult, ServingCluster
from ..serving.engine import ServingEngine
from ..serving.metrics import RequestMetrics, SloReport, SloSpec, request_metrics
from ..serving.scheduler import ContinuousBatchingScheduler, SchedulerStats
from ..serving.systems import ClusterSpec
from ..workloads.traces import (
    SHAREGPT_OUTPUTS,
    SHAREGPT_PROMPTS,
    ArrivalProcess,
    LengthDistribution,
    generate_trace,
)

__all__ = ["quantize_weights", "w4a8_gemm", "compare_kernels", "GemmResult",
           "ServingSimulation", "simulate_serving", "ClusterSimulation",
           "simulate_cluster"]


@dataclass
class GemmResult:
    """Output of :func:`w4a8_gemm`: values, error vs FP reference, and a performance report."""

    output: np.ndarray
    reference: np.ndarray
    error: Dict[str, float]
    report: KernelReport


def quantize_weights(w: np.ndarray, group_size: int = 64) -> PreparedWeights:
    """Quantize an ``(N, K)`` FP weight matrix with LiquidQuant and pack it for deployment."""
    return LiquidGemmKernel(group_size=group_size).prepare_weights(w)


def w4a8_gemm(
    x: np.ndarray,
    weights_or_matrix,
    device: str = "H800",
    group_size: int = 64,
) -> GemmResult:
    """Run ``Y = X @ W^T`` through LiquidGEMM.

    ``weights_or_matrix`` may be a raw FP weight matrix (quantized on the fly) or the
    :class:`PreparedWeights` returned by :func:`quantize_weights`.
    """
    kernel = LiquidGemmKernel(group_size=group_size)
    if isinstance(weights_or_matrix, PreparedWeights):
        prepared = weights_or_matrix
    else:
        prepared = kernel.prepare_weights(np.asarray(weights_or_matrix))
    x = np.asarray(x, dtype=np.float64)
    output = kernel.run(x, prepared)
    reference = kernel.reference(x, prepared.original)
    shape = GemmShape(x.shape[0], prepared.original.shape[0], prepared.original.shape[1])
    return GemmResult(
        output=output,
        reference=reference,
        error=quantization_error(reference, output),
        report=kernel.estimate(shape, device),
    )


@dataclass
class ServingSimulation:
    """Outcome of :func:`simulate_serving`: scheduler statistics plus the SLO summary."""

    system: str
    model: str
    tp_degree: int
    num_requests: int
    stats: SchedulerStats
    slo: SloReport
    #: Per-request latency decomposition (TTFT, TPOT, queue time) of every completed
    #: request — the raw material for latency-distribution analysis and CSV dumps.
    per_request: List[RequestMetrics] = field(default_factory=list)

    @property
    def throughput_tokens_per_s(self) -> float:
        return self.stats.throughput_tokens_per_s

    @property
    def goodput_rps(self) -> float:
        return self.slo.goodput_rps


def simulate_serving(
    system: str = "liquidserve",
    model: str = "llama2-7b",
    *,
    device: str = "H800",
    tp_degree: int = 1,
    num_requests: int = 500,
    arrival_rate_rps: float = 10.0,
    arrival_cv: float = 1.0,
    prompt_lengths: Optional[LengthDistribution] = None,
    output_lengths: Optional[LengthDistribution] = None,
    seed: int = 0,
    max_batch_size: Optional[int] = None,
    max_batched_tokens: Optional[int] = None,
    prefill_chunk_tokens: int = 256,
    scheduling_policy: str = "fcfs",
    preemption_policy: str = "recompute",
    kv_budget_bytes: Optional[int] = None,
    host_kv_budget_bytes: Optional[int] = None,
    overlap_swap_transfers: bool = False,
    num_priority_levels: int = 1,
    slo: Optional[SloSpec] = None,
    fast_forward: bool = True,
    prefix_caching: bool = False,
    shared_prefix_tokens: int = 0,
    tracer=None,
) -> ServingSimulation:
    """Run a trace-driven request-level serving simulation end to end.

    Generates a reproducible trace (Poisson arrivals by default, Gamma when
    ``arrival_cv != 1``; ShareGPT-like long-tail lengths unless overridden), serves it with
    the continuous-batching scheduler — chunked prefill, ragged decode batches, policy-driven
    preemption (recompute / swap-to-host / cost-based hybrid) under KV pressure, pluggable
    admission ordering (FCFS, priority, SJF, max-min fairness), optional tensor parallelism —
    and summarizes both throughput and SLO attainment.

    ``kv_budget_bytes`` / ``host_kv_budget_bytes`` override the device KV pool and host swap
    pool for KV-pressure studies; ``overlap_swap_transfers`` hides swap DMAs behind compute
    (``max`` instead of sum); ``num_priority_levels > 1`` samples request priorities into
    the trace for the 'priority' scheduling policy.  ``fast_forward`` (default on) advances
    steady decode-only phases analytically instead of iterating them — bit-identical
    results, order-of-magnitude faster wall clock; disable it to drive every iteration.

    ``prefix_caching`` turns on the radix-tree prefix cache (fork-on-admit of cached
    blocks, LRU eviction under KV pressure); ``shared_prefix_tokens > 0`` stamps every
    trace request with that many leading shareable tokens (a common system prompt), which
    is the simplest workload that exercises it — the generators in
    :mod:`repro.workloads.traces` build richer shared-prefix traces.

    ``tracer`` (a :class:`repro.telemetry.Tracer`) records the full structured event
    stream — request lifecycle, per-epoch compute spans, KV/cache activity, periodic
    counter samples — for timeline export; ``None`` (the default) is zero-overhead.
    """
    engine = ServingEngine(system, model, device=device, tp_degree=tp_degree, tracer=tracer)
    if tracer is not None:
        tracer.set_replica_role(0, "single")
    scheduler = ContinuousBatchingScheduler(
        engine,
        max_batch_size=max_batch_size,
        max_batched_tokens=max_batched_tokens,
        prefill_chunk_tokens=prefill_chunk_tokens,
        scheduling_policy=scheduling_policy,
        preemption_policy=preemption_policy,
        kv_budget_bytes=kv_budget_bytes,
        host_kv_budget_bytes=host_kv_budget_bytes,
        overlap_swap_transfers=overlap_swap_transfers,
        fast_forward=fast_forward,
        prefix_caching=prefix_caching,
        tracer=tracer,
    )
    trace = generate_trace(
        num_requests,
        ArrivalProcess(rate_rps=arrival_rate_rps, cv=arrival_cv),
        prompt_lengths or SHAREGPT_PROMPTS,
        output_lengths or SHAREGPT_OUTPUTS,
        seed=seed,
        num_priority_levels=num_priority_levels,
        shared_prefix_tokens=shared_prefix_tokens,
    )
    stats = scheduler.run(trace)
    return ServingSimulation(
        system=engine.system.name,
        model=engine.model.name,
        tp_degree=tp_degree,
        num_requests=num_requests,
        stats=stats,
        slo=stats.slo_report(slo),
        per_request=request_metrics(stats.requests),
    )


@dataclass
class ClusterSimulation:
    """Outcome of :func:`simulate_cluster`: per-replica stats plus the merged SLO summary."""

    system: str
    model: str
    tp_degree: int
    mode: str
    router: str
    num_replicas: int
    num_requests: int
    result: ClusterResult
    slo: SloReport
    #: Merged per-request latency decomposition across the whole cluster (a migrated
    #: request's TTFT comes from its prefill replica, its completion from its decode one).
    per_request: List[RequestMetrics] = field(default_factory=list)

    @property
    def replica_stats(self) -> List[SchedulerStats]:
        return self.result.replica_stats

    @property
    def replica_roles(self) -> List[str]:
        return self.result.replica_roles

    @property
    def throughput_tokens_per_s(self) -> float:
        return self.result.throughput_tokens_per_s

    @property
    def goodput_rps(self) -> float:
        return self.slo.goodput_rps


def simulate_cluster(
    system: str = "liquidserve",
    model: str = "llama2-7b",
    *,
    device: str = "H800",
    tp_degree: int = 1,
    mode: str = "colocated",
    num_replicas: Optional[int] = None,
    num_prefill_replicas: int = 1,
    num_decode_replicas: int = 1,
    router: Optional[str] = None,
    num_requests: int = 500,
    arrival_rate_rps: float = 10.0,
    arrival_cv: float = 1.0,
    prompt_lengths: Optional[LengthDistribution] = None,
    output_lengths: Optional[LengthDistribution] = None,
    seed: int = 0,
    max_batch_size: Optional[int] = None,
    max_batched_tokens: Optional[int] = None,
    prefill_chunk_tokens: int = 256,
    scheduling_policy: str = "fcfs",
    preemption_policy: str = "recompute",
    kv_budget_bytes: Optional[int] = None,
    host_kv_budget_bytes: Optional[int] = None,
    overlap_swap_transfers: bool = False,
    num_priority_levels: int = 1,
    slo: Optional[SloSpec] = None,
    fast_forward: bool = True,
    prefix_caching: bool = False,
    shared_prefix_tokens: int = 0,
    tracer=None,
) -> ClusterSimulation:
    """Run a trace-driven simulation of a multi-replica serving cluster end to end.

    The same trace generator and per-replica scheduler as :func:`simulate_serving`, lifted
    to a fleet: ``mode="colocated"`` spreads whole requests over ``num_replicas`` identical
    replicas (default 2) via ``router`` (default round-robin); ``mode="disaggregated"``
    serves prompt prefill on ``num_prefill_replicas`` and decode on ``num_decode_replicas``
    (DistServe-style), migrating each finished prefill's KV blocks over the GPU
    interconnect (default router: the disaggregation-aware policy) — passing
    ``num_replicas`` there is an error rather than silently ignored.
    ``simulate_cluster(num_replicas=1)`` is, by construction, exactly
    :func:`simulate_serving` — the equivalence the test suite pins.

    ``prefix_caching`` gives every replica its own radix-tree prefix cache (pair with
    ``router="cache-affinity"`` so shared-prefix requests land where their prefix lives);
    ``shared_prefix_tokens`` stamps the generated trace as in :func:`simulate_serving`.
    ``tracer`` records one event track per replica plus routing decisions and KV
    migrations (see :mod:`repro.telemetry`); ``None`` is zero-overhead.
    """
    spec = ClusterSpec(
        mode=mode,
        num_replicas=num_replicas,
        num_prefill_replicas=num_prefill_replicas,
        num_decode_replicas=num_decode_replicas,
        router=router,
    )
    cluster = ServingCluster(
        system,
        model,
        spec,
        device=device,
        tp_degree=tp_degree,
        max_batch_size=max_batch_size,
        max_batched_tokens=max_batched_tokens,
        prefill_chunk_tokens=prefill_chunk_tokens,
        scheduling_policy=scheduling_policy,
        preemption_policy=preemption_policy,
        kv_budget_bytes=kv_budget_bytes,
        host_kv_budget_bytes=host_kv_budget_bytes,
        overlap_swap_transfers=overlap_swap_transfers,
        fast_forward=fast_forward,
        prefix_caching=prefix_caching,
        tracer=tracer,
    )
    trace = generate_trace(
        num_requests,
        ArrivalProcess(rate_rps=arrival_rate_rps, cv=arrival_cv),
        prompt_lengths or SHAREGPT_PROMPTS,
        output_lengths or SHAREGPT_OUTPUTS,
        seed=seed,
        num_priority_levels=num_priority_levels,
        shared_prefix_tokens=shared_prefix_tokens,
    )
    result = cluster.run(trace)
    first = cluster.replicas[0]
    return ClusterSimulation(
        system=first.engine.system.name,
        model=first.engine.model.name,
        tp_degree=tp_degree,
        mode=spec.mode,
        router=cluster.router_name,
        num_replicas=spec.total_replicas,
        num_requests=num_requests,
        result=result,
        slo=result.slo_report(slo),
        per_request=request_metrics(result.requests),
    )


def compare_kernels(
    m: int,
    n: int,
    k: int,
    device: str = "H800",
    kernels: Optional[Iterable[str]] = None,
) -> Dict[str, KernelReport]:
    """Estimate the latency of one GEMM shape under each kernel (Figure 12's comparison)."""
    shape = GemmShape(m, n, k)
    if kernels is None:
        kernel_objs = default_comparison_set()
    else:
        kernel_objs = {name: get_kernel(name) for name in kernels}
    return {name: kernel.estimate(shape, device) for name, kernel in kernel_objs.items()}
