"""The paper's primary contribution, exposed as a small public API.

The heavy lifting lives in the substrates (:mod:`repro.quant`, :mod:`repro.layout`,
:mod:`repro.dequant`, :mod:`repro.pipeline`, :mod:`repro.kernels`); this package re-exports
the LiquidGEMM kernel and the convenience functions most downstream users want.
"""

from ..kernels.liquidgemm import LiquidGemmKernel
from .api import GemmResult, compare_kernels, quantize_weights, w4a8_gemm

__all__ = ["LiquidGemmKernel", "GemmResult", "compare_kernels", "quantize_weights", "w4a8_gemm"]
