"""The paper's primary contribution, exposed as a small public API.

The heavy lifting lives in the substrates (:mod:`repro.quant`, :mod:`repro.layout`,
:mod:`repro.dequant`, :mod:`repro.pipeline`, :mod:`repro.kernels`); this package re-exports
the LiquidGEMM kernel and the convenience functions most downstream users want.
"""

from ..kernels.liquidgemm import LiquidGemmKernel
from .api import (
    ClusterSimulation,
    GemmResult,
    ServingSimulation,
    compare_kernels,
    quantize_weights,
    simulate_cluster,
    simulate_serving,
    w4a8_gemm,
)

__all__ = [
    "LiquidGemmKernel",
    "ClusterSimulation",
    "GemmResult",
    "ServingSimulation",
    "compare_kernels",
    "quantize_weights",
    "simulate_cluster",
    "simulate_serving",
    "w4a8_gemm",
]
