"""Instruction counters for the emulated register-level dequantization routines.

The cost model's ``alpha`` (instructions per dequantized weight element, Section 3.2/3.3)
comes directly from these counters: every emulated PTX-level operation records itself with a
category and a hardware cost, so dequantization routines can be audited instead of asserted.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["InstructionStats", "InstructionEvent"]


@dataclass(frozen=True)
class InstructionEvent:
    """One emulated hardware instruction execution."""

    opcode: str
    #: Number of native issue slots this instruction occupies on the CUDA cores.  Native
    #: 32-bit ALU ops cost 1; emulated pseudo-instructions (e.g. ``vadd4`` on Hopper, which
    #: the compiler lowers to a sequence of byte-extract/add/insert ops) cost more.
    issue_slots: int = 1
    #: Functional unit: "alu" (INT32 CUDA core), "ldst" (load/store), "tensor", "tma".
    unit: str = "alu"


@dataclass
class InstructionStats:
    """Accumulates emulated instruction issue counts."""

    events: Counter = field(default_factory=Counter)
    issue_slots_by_unit: Counter = field(default_factory=Counter)
    total_issue_slots: int = 0

    def record(self, opcode: str, issue_slots: int = 1, unit: str = "alu", count: int = 1) -> None:
        """Record ``count`` executions of ``opcode``."""
        if issue_slots < 0 or count < 0:
            raise ValueError("issue_slots and count must be non-negative")
        self.events[opcode] += count
        self.issue_slots_by_unit[unit] += issue_slots * count
        self.total_issue_slots += issue_slots * count

    def record_event(self, event: InstructionEvent, count: int = 1) -> None:
        self.record(event.opcode, event.issue_slots, event.unit, count)

    def count(self, opcode: str) -> int:
        """Number of times ``opcode`` was recorded."""
        return self.events.get(opcode, 0)

    @property
    def total_instructions(self) -> int:
        return sum(self.events.values())

    def alu_issue_slots(self) -> int:
        return self.issue_slots_by_unit.get("alu", 0)

    def per_element(self, num_elements: int) -> float:
        """Issue slots per processed element — the paper's ``alpha``."""
        if num_elements <= 0:
            raise ValueError("num_elements must be positive")
        return self.alu_issue_slots() / num_elements

    def merged(self, other: "InstructionStats") -> "InstructionStats":
        out = InstructionStats()
        out.events = self.events + other.events
        out.issue_slots_by_unit = self.issue_slots_by_unit + other.issue_slots_by_unit
        out.total_issue_slots = self.total_issue_slots + other.total_issue_slots
        return out

    def reset(self) -> None:
        self.events.clear()
        self.issue_slots_by_unit.clear()
        self.total_issue_slots = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.events)

    def summary(self) -> str:
        lines = [f"total instructions: {self.total_instructions}",
                 f"total issue slots:  {self.total_issue_slots}"]
        for opcode, n in sorted(self.events.items()):
            lines.append(f"  {opcode:12s} x {n}")
        return "\n".join(lines)
