"""Bit-exact emulation of the PTX-level 32-bit register instructions used by W4A8 dequantization.

Every function operates on NumPy ``uint32`` arrays, where each array element models the value
held by one *thread's* 32-bit register.  SIMT execution means one call corresponds to one
hardware instruction issued per thread, regardless of how many threads (lanes) the array
models — which is exactly how the paper counts instructions ("two arithmetic instructions per
four elements").  Each helper therefore records exactly the instructions a real kernel would
issue into an :class:`~repro.isa.counters.InstructionStats`.

Two families matter for the reproduction:

* native single-issue 32-bit ALU ops — ``IMAD``, ``XOR``, ``AND``, ``SHR``, ``LOP3`` … — used
  by LiquidQuant's dequantization (Section 5.3, Figure 8);
* the *emulated* SIMD-within-a-register ops QServe relies on — ``vadd4`` / ``vsub4`` — which
  Hopper does not implement natively and the compiler lowers to a sequence of byte
  extract/add/insert operations, "creating significant pressure on CUDA Cores" (Section 3.2).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .counters import InstructionStats

__all__ = [
    "MASK32",
    "to_u32",
    "pack_bytes",
    "unpack_bytes",
    "broadcast_byte",
    "and_b32",
    "or_b32",
    "xor_b32",
    "not_b32",
    "shr_b32",
    "shl_b32",
    "lop3_b32",
    "add_u32",
    "sub_u32",
    "mul_lo_u32",
    "imad_u32",
    "prmt_b32",
    "bfe_u32",
    "bfi_b32",
    "vadd4_lowered",
    "vsub4_lowered",
    "cvt_sat_s8x4",
]

MASK32 = np.uint32(0xFFFFFFFF)


def to_u32(values) -> np.ndarray:
    """Coerce ``values`` to a ``uint32`` NumPy array (truncating to 32 bits)."""
    arr = np.asarray(values)
    if arr.dtype.kind == "f":
        raise TypeError("register values must be integral")
    return (arr.astype(np.int64) & 0xFFFFFFFF).astype(np.uint32)


def pack_bytes(b0, b1, b2, b3) -> np.ndarray:
    """Pack four byte arrays (b0 = least significant) into uint32 registers."""
    b0, b1, b2, b3 = (np.asarray(b, dtype=np.uint32) & 0xFF for b in (b0, b1, b2, b3))
    return (b0 | (b1 << np.uint32(8)) | (b2 << np.uint32(16)) | (b3 << np.uint32(24))).astype(np.uint32)


def unpack_bytes(reg) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split uint32 registers into four byte arrays (least significant first)."""
    reg = to_u32(reg)
    return (
        (reg & np.uint32(0xFF)).astype(np.uint8),
        ((reg >> np.uint32(8)) & np.uint32(0xFF)).astype(np.uint8),
        ((reg >> np.uint32(16)) & np.uint32(0xFF)).astype(np.uint8),
        ((reg >> np.uint32(24)) & np.uint32(0xFF)).astype(np.uint8),
    )


def broadcast_byte(value: int) -> int:
    """Replicate an 8-bit value into all four bytes of a 32-bit immediate (e.g. 0x80 -> 0x80808080)."""
    if not 0 <= value <= 0xFF:
        raise ValueError("byte value out of range")
    return value * 0x01010101


# --------------------------------------------------------------------------- native ALU ops

def _record(stats: Optional[InstructionStats], opcode: str, issue_slots: int = 1, unit: str = "alu"):
    if stats is not None:
        stats.record(opcode, issue_slots=issue_slots, unit=unit)


def and_b32(a, b, stats: Optional[InstructionStats] = None) -> np.ndarray:
    _record(stats, "and.b32")
    return to_u32(a) & to_u32(b)


def or_b32(a, b, stats: Optional[InstructionStats] = None) -> np.ndarray:
    _record(stats, "or.b32")
    return to_u32(a) | to_u32(b)


def xor_b32(a, b, stats: Optional[InstructionStats] = None) -> np.ndarray:
    _record(stats, "xor.b32")
    return to_u32(a) ^ to_u32(b)


def not_b32(a, stats: Optional[InstructionStats] = None) -> np.ndarray:
    _record(stats, "not.b32")
    return (~to_u32(a)) & MASK32


def shr_b32(a, shift: int, stats: Optional[InstructionStats] = None) -> np.ndarray:
    """Logical shift right."""
    if not 0 <= shift < 32:
        raise ValueError("shift must be in [0, 32)")
    _record(stats, "shr.b32")
    return (to_u32(a) >> np.uint32(shift)) & MASK32


def shl_b32(a, shift: int, stats: Optional[InstructionStats] = None) -> np.ndarray:
    """Logical shift left (truncating at 32 bits)."""
    if not 0 <= shift < 32:
        raise ValueError("shift must be in [0, 32)")
    _record(stats, "shl.b32")
    return (to_u32(a) << np.uint32(shift)) & MASK32


def lop3_b32(a, b, c, lut: int, stats: Optional[InstructionStats] = None) -> np.ndarray:
    """Three-input bitwise logic op (PTX ``lop3.b32``) defined by an 8-entry truth table.

    ``lut`` bit ``(4*a_bit + 2*b_bit + c_bit)`` gives the output bit for that input combination,
    matching the hardware immLut encoding.
    """
    if not 0 <= lut <= 0xFF:
        raise ValueError("lut must be an 8-bit immediate")
    a, b, c = to_u32(a), to_u32(b), to_u32(c)
    _record(stats, "lop3.b32")
    result = np.zeros(np.broadcast(a, b, c).shape, dtype=np.uint32)
    for idx in range(8):
        if not (lut >> idx) & 1:
            continue
        a_bit, b_bit, c_bit = (idx >> 2) & 1, (idx >> 1) & 1, idx & 1
        term = np.full_like(result, MASK32)
        term &= a if a_bit else (~a & MASK32)
        term &= b if b_bit else (~b & MASK32)
        term &= c if c_bit else (~c & MASK32)
        result |= term
    return result


def add_u32(a, b, stats: Optional[InstructionStats] = None) -> np.ndarray:
    """32-bit wrapping addition."""
    _record(stats, "add.u32")
    return (to_u32(a).astype(np.uint64) + to_u32(b).astype(np.uint64)).astype(np.uint32)


def sub_u32(a, b, stats: Optional[InstructionStats] = None) -> np.ndarray:
    """32-bit wrapping subtraction."""
    _record(stats, "sub.u32")
    return (to_u32(a).astype(np.int64) - to_u32(b).astype(np.int64)).astype(np.uint32)


def mul_lo_u32(a, b, stats: Optional[InstructionStats] = None) -> np.ndarray:
    """Low 32 bits of a 32x32 multiply."""
    _record(stats, "mul.lo.u32")
    return ((to_u32(a).astype(np.uint64) * to_u32(b).astype(np.uint64)) & 0xFFFFFFFF).astype(np.uint32)


def imad_u32(a, b, c, stats: Optional[InstructionStats] = None) -> np.ndarray:
    """Integer multiply-add ``a * b + c`` (low 32 bits), the PTX ``mad.lo``/SASS ``IMAD``.

    This is the workhorse of LiquidQuant's dequantization: with ``a`` holding four packed
    dequantization inputs (one per byte, each small enough that ``a_i * b`` stays below 256),
    ``b`` a scalar scale and ``c`` a packed per-byte offset, a *single* IMAD performs four
    byte-wise multiply-adds because no carries cross byte boundaries.
    """
    _record(stats, "imad.u32")
    prod = to_u32(a).astype(np.uint64) * to_u32(b).astype(np.uint64)
    return ((prod + to_u32(c).astype(np.uint64)) & 0xFFFFFFFF).astype(np.uint32)


def prmt_b32(a, b, selector: int, stats: Optional[InstructionStats] = None) -> np.ndarray:
    """Byte-permute (PTX ``prmt.b32``): select 4 bytes out of the 8 bytes of ``{b,a}``.

    Each nibble of ``selector`` picks a source byte index 0-7 (0-3 from ``a``, 4-7 from ``b``);
    the optional sign-replication modes are not modeled because the dequantization kernels in
    this reproduction do not use them.
    """
    if not 0 <= selector <= 0xFFFF:
        raise ValueError("selector must be a 16-bit immediate")
    a, b = to_u32(a), to_u32(b)
    _record(stats, "prmt.b32")
    combined = a.astype(np.uint64) | (b.astype(np.uint64) << np.uint64(32))
    out = np.zeros(np.broadcast(a, b).shape, dtype=np.uint32)
    for dst in range(4):
        src = (selector >> (4 * dst)) & 0x7
        byte = ((combined >> np.uint64(8 * src)) & np.uint64(0xFF)).astype(np.uint32)
        out |= byte << np.uint32(8 * dst)
    return out


def bfe_u32(a, pos: int, length: int, stats: Optional[InstructionStats] = None) -> np.ndarray:
    """Bit-field extract (unsigned)."""
    if not (0 <= pos < 32 and 0 < length <= 32 and pos + length <= 32):
        raise ValueError("invalid bit field")
    _record(stats, "bfe.u32")
    mask = np.uint32((1 << length) - 1)
    return (to_u32(a) >> np.uint32(pos)) & mask


def bfi_b32(src, dst, pos: int, length: int, stats: Optional[InstructionStats] = None) -> np.ndarray:
    """Bit-field insert: place the low ``length`` bits of ``src`` into ``dst`` at ``pos``."""
    if not (0 <= pos < 32 and 0 < length <= 32 and pos + length <= 32):
        raise ValueError("invalid bit field")
    _record(stats, "bfi.b32")
    mask = np.uint32(((1 << length) - 1) << pos)
    inserted = (to_u32(src) << np.uint32(pos)) & mask
    return (to_u32(dst) & ~mask) | inserted


# ------------------------------------------------------------- emulated SIMD-within-register

def vadd4_lowered(a, b, stats: Optional[InstructionStats] = None) -> np.ndarray:
    """Per-byte addition of two packed u8x4 registers, as lowered on Hopper.

    ``vadd4`` is a real PTX intrinsic but Hopper has no hardware SIMD-video unit, so the
    compiler expands it into per-byte extract / add / insert sequences.  We perform that exact
    lowering (3 instructions per byte = 12 ALU ops plus a final move), which is what makes
    QServe's "subtraction after multiplication" step so expensive (Section 3.2: "lowered to a
    dozen low-level operations").
    """
    a, b = to_u32(a), to_u32(b)
    out = np.zeros(np.broadcast(a, b).shape, dtype=np.uint32)
    for byte in range(4):
        lane_a = bfe_u32(a, 8 * byte, 8, stats)
        lane_b = bfe_u32(b, 8 * byte, 8, stats)
        lane_sum = add_u32(lane_a, lane_b, stats) & np.uint32(0xFF)
        out = bfi_b32(lane_sum, out, 8 * byte, 8, stats)
    return out


def vsub4_lowered(a, b, stats: Optional[InstructionStats] = None) -> np.ndarray:
    """Per-byte subtraction ``a - b`` (mod 256 in each byte) with the same lowering cost."""
    a, b = to_u32(a), to_u32(b)
    out = np.zeros(np.broadcast(a, b).shape, dtype=np.uint32)
    for byte in range(4):
        lane_a = bfe_u32(a, 8 * byte, 8, stats)
        lane_b = bfe_u32(b, 8 * byte, 8, stats)
        lane_diff = sub_u32(lane_a, lane_b, stats) & np.uint32(0xFF)
        out = bfi_b32(lane_diff, out, 8 * byte, 8, stats)
    return out


def cvt_sat_s8x4(a, stats: Optional[InstructionStats] = None) -> np.ndarray:
    """Saturate each byte, interpreted as a signed 9-bit intermediate, into INT8 range.

    Used by the W4A16-style and naive dequantization baselines that must clamp after a
    subtraction; costs one instruction per byte on Hopper (``cvt.sat`` per lane).
    """
    a = to_u32(a)
    out = np.zeros(a.shape, dtype=np.uint32)
    for byte in range(4):
        lane = bfe_u32(a, 8 * byte, 8, stats)
        out = bfi_b32(lane, out, 8 * byte, 8, stats)
    return out
