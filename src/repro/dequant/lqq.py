"""Register-level LiquidQuant dequantization (Section 5.3, Figure 8).

Input: packed 32-bit registers, each holding eight UINT4 codes in the interleaved nibble
order produced by :func:`repro.layout.packing.pack_u4_interleaved` / the dual-MMA layout.
Output: two packed byte registers per input register, each holding four INT8 values (in
two's-complement byte form) ready for the INT8 WGMMA.

Instruction sequence per input register (7 instructions for 8 elements, matching the paper's
"eight elements are dequantized with only seven instructions"):

====  =============================  =================================================
 #    instruction                    effect
====  =============================  =================================================
 1    ``and.b32   r_lo, r, 0x0F0F0F0F``   extract elements w0..w3 into separate bytes
 2    ``and.b32   r_hi, r, 0xF0F0F0F0``   isolate elements w4..w7
 3    ``shr.b32   r_hi, r_hi, 4``          move them into byte position
 4    ``imad.u32  r_lo, r_lo, s, a4``      per-byte ``q*s + a`` (no cross-byte carries)
 5    ``xor.b32   r_lo, r_lo, 0x80808080`` flip MSBs -> two's-complement INT8
 6    ``imad.u32  r_hi, r_hi, s, a4``
 7    ``xor.b32   r_hi, r_hi, 0x80808080``
====  =============================  =================================================

The absence of cross-byte carries in step 4 is exactly the overflow-freedom property proven
in Section 4 (and re-checked at run time by :func:`repro.quant.liquidquant.lqq_dequantize_int8`).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..isa import (
    InstructionStats,
    and_b32,
    broadcast_byte,
    imad_u32,
    shr_b32,
    to_u32,
    xor_b32,
)
from ..layout.packing import unpack_u32_to_u8

__all__ = [
    "LQQ_INSTRUCTIONS_PER_REGISTER",
    "LQQ_ELEMENTS_PER_REGISTER",
    "lqq_alpha",
    "lqq_dequant_register",
    "lqq_dequant_registers",
    "registers_to_int8",
]

LQQ_INSTRUCTIONS_PER_REGISTER = 7
LQQ_ELEMENTS_PER_REGISTER = 8

_LOW_NIBBLE_MASK = 0x0F0F0F0F
_HIGH_NIBBLE_MASK = 0xF0F0F0F0
_SIGN_FLIP = 0x80808080


def lqq_alpha() -> float:
    """Instructions per dequantized element for the LQQ path (the cost-model alpha)."""
    return LQQ_INSTRUCTIONS_PER_REGISTER / LQQ_ELEMENTS_PER_REGISTER


def lqq_dequant_register(
    register,
    scale_u8: int,
    offset_a: int,
    stats: Optional[InstructionStats] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Dequantize one packed register (or an array of registers sharing scale/offset).

    Returns ``(low, high)`` packed byte registers holding elements (w0..w3) and (w4..w7)
    respectively, each byte being the INT8 result in two's-complement form.
    """
    if not 1 <= int(scale_u8) <= 16:
        raise ValueError("second-level scale must lie in [1, 16]")
    if not 0 <= int(offset_a) <= 255:
        raise ValueError("offset a must fit in UINT8")
    reg = to_u32(register)
    a_packed = broadcast_byte(int(offset_a))

    r_lo = and_b32(reg, _LOW_NIBBLE_MASK, stats)
    r_hi = and_b32(reg, _HIGH_NIBBLE_MASK, stats)
    r_hi = shr_b32(r_hi, 4, stats)

    r_lo = imad_u32(r_lo, int(scale_u8), a_packed, stats)
    r_lo = xor_b32(r_lo, _SIGN_FLIP, stats)
    r_hi = imad_u32(r_hi, int(scale_u8), a_packed, stats)
    r_hi = xor_b32(r_hi, _SIGN_FLIP, stats)
    return r_lo, r_hi


def lqq_dequant_registers(
    registers: np.ndarray,
    scale_u8: np.ndarray,
    offset_a: np.ndarray,
    stats: Optional[InstructionStats] = None,
) -> np.ndarray:
    """Dequantize an array of packed registers with per-register scale/offset.

    ``registers``, ``scale_u8`` and ``offset_a`` must be broadcast-compatible; the result has
    shape ``registers.shape + (2,)`` holding the (low, high) output byte registers.

    Instruction counting note: in SIMT execution, registers processed by *different threads in
    the same instruction* cost one issue each per thread; this helper conservatively counts one
    instruction sequence per distinct (scale, offset) group it loops over, mirroring a per-
    thread trace.  Use :func:`lqq_alpha` for the analytic per-element cost.
    """
    registers = to_u32(registers)
    scale_u8 = np.broadcast_to(np.asarray(scale_u8), registers.shape)
    offset_a = np.broadcast_to(np.asarray(offset_a), registers.shape)
    out = np.zeros(registers.shape + (2,), dtype=np.uint32)

    # Vectorize over registers sharing (scale, offset): each unique pair is one emulated
    # per-thread instruction sequence applied to all its registers at once.
    pairs = np.stack([scale_u8.reshape(-1), offset_a.reshape(-1)], axis=1)
    flat_regs = registers.reshape(-1)
    flat_out = out.reshape(-1, 2)
    unique_pairs = np.unique(pairs, axis=0)
    for s, a in unique_pairs:
        mask = (pairs[:, 0] == s) & (pairs[:, 1] == a)
        lo, hi = lqq_dequant_register(flat_regs[mask], int(s), int(a), stats)
        flat_out[mask, 0] = lo
        flat_out[mask, 1] = hi
    return out


def registers_to_int8(byte_registers: np.ndarray) -> np.ndarray:
    """Reinterpret packed byte registers as INT8 values, preserving element order.

    ``byte_registers`` of shape ``(...,)`` yields an array of shape ``(..., 4)`` where byte 0
    (the least significant) comes first — i.e. element order w0, w1, w2, w3 for a low register
    and w4, w5, w6, w7 for a high register.
    """
    return unpack_u32_to_u8(byte_registers).view(np.int8)
