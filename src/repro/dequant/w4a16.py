"""W4A16-style dequantization: UINT4 weights expanded to FP16 before an FP16 MMA.

TensorRT-LLM's W4A16 kernels dequantize INT4 weights to FP16 in the main loop using the
classic "magic number" trick: a ``lop3`` merges the 4-bit code into the mantissa of a biased
FP16 constant, and an FP16 multiply-add removes the bias and applies scale / zero point.  The
per-element cost is low (≈1.6 instructions), but the MMA then runs at FP16 Tensor Core
throughput — half of INT8 — which is why W4A16 loses to a well-pipelined W4A8 kernel in
compute-bound regimes (Figure 12).

The emulation counts the instructions faithfully; the numeric path computes the same values
with float64 (FP16 rounding of the scales is not relevant to any measured quantity).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..isa import InstructionStats, and_b32, lop3_b32, shr_b32, to_u32
from ..layout.packing import unpack_u32_to_u8

__all__ = ["W4A16_ELEMENTS_PER_REGISTER", "w4a16_alpha", "w4a16_dequant_register"]

W4A16_ELEMENTS_PER_REGISTER = 8

_LOW_NIBBLE_MASK = 0x0F0F0F0F
_HIGH_NIBBLE_MASK = 0xF0F0F0F0
#: lop3 immLut for (a & b) | c — the merge step of the magic-number conversion.
_LUT_AND_OR = 0xEA


def w4a16_dequant_register(
    register,
    scale_fp: float,
    zero_fp: float,
    stats: Optional[InstructionStats] = None,
) -> np.ndarray:
    """Dequantize one packed register of eight UINT4 codes to eight FP values.

    Instruction accounting (per register of 8 elements):

    * 3 unpack ops (reuse of the nibble masks),
    * 2 ``lop3`` merges into the FP16 magic constant (one per half),
    * 4 FP16 ``HFMA2`` operations (two packed halves per output register, scale+zero fused).

    Total 9 instructions for 8 elements (alpha ≈ 1.1) — cheap, but the payoff is an FP16 MMA.
    """
    reg = to_u32(register)
    r_lo = and_b32(reg, _LOW_NIBBLE_MASK, stats)
    r_hi = and_b32(reg, _HIGH_NIBBLE_MASK, stats)
    r_hi = shr_b32(r_hi, 4, stats)
    # Magic-number merge (numerically we just reuse the unpacked bytes; the lop3 is counted).
    r_lo = lop3_b32(r_lo, 0x0F0F0F0F, 0, _LUT_AND_OR, stats)
    r_hi = lop3_b32(r_hi, 0x0F0F0F0F, 0, _LUT_AND_OR, stats)
    if stats is not None:
        stats.record("hfma2", issue_slots=1, unit="alu", count=4)

    codes = np.concatenate(
        [unpack_u32_to_u8(r_lo), unpack_u32_to_u8(r_hi)], axis=-1
    ).astype(np.float64)
    return codes * float(scale_fp) + float(zero_fp)


def w4a16_alpha() -> float:
    """Instructions per dequantized element for the W4A16 FP16 path."""
    stats = InstructionStats()
    w4a16_dequant_register(np.uint32(0), 1.0, 0.0, stats)
    return stats.total_instructions / W4A16_ELEMENTS_PER_REGISTER
