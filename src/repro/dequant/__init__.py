"""Register-level dequantization routines (emulated PTX) with instruction accounting."""

from .lqq import (
    LQQ_ELEMENTS_PER_REGISTER,
    LQQ_INSTRUCTIONS_PER_REGISTER,
    lqq_alpha,
    lqq_dequant_register,
    lqq_dequant_registers,
    registers_to_int8,
)
from .qserve import (
    QSERVE_ELEMENTS_PER_REGISTER,
    measure_qserve_instructions,
    qserve_alpha,
    qserve_dequant_register,
)
from .w4a16 import W4A16_ELEMENTS_PER_REGISTER, w4a16_alpha, w4a16_dequant_register

__all__ = [
    "LQQ_ELEMENTS_PER_REGISTER",
    "LQQ_INSTRUCTIONS_PER_REGISTER",
    "lqq_alpha",
    "lqq_dequant_register",
    "lqq_dequant_registers",
    "registers_to_int8",
    "QSERVE_ELEMENTS_PER_REGISTER",
    "measure_qserve_instructions",
    "qserve_alpha",
    "qserve_dequant_register",
    "W4A16_ELEMENTS_PER_REGISTER",
    "w4a16_alpha",
    "w4a16_dequant_register",
]
