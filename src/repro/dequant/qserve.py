"""Register-level QServe-style dequantization ("subtraction after multiplication").

QServe quantizes INT8 weights asymmetrically to UINT4 and dequantizes as
``Q_i8 = Q_u4 * s - s * z`` to avoid multiplying negative values.  The multiplication fits in
a byte, but the subtraction of the packed ``s*z`` term wraps within bytes, so QServe has to
perform it with the per-byte ``vsub4`` operation.  Hopper has no SIMD-video ALU, so ``vsub4``
is lowered by the compiler into per-byte extract / subtract / insert sequences — the dozen
low-level operations the paper profiles at 21% of warp stalls (Section 3.2).

The emulation below performs exactly that lowering through :mod:`repro.isa`, so both the
numerical result (bit-exact INT8 bytes) and the instruction count (the cost-model ``alpha``)
come from the same code path.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..isa import (
    InstructionStats,
    and_b32,
    broadcast_byte,
    imad_u32,
    shr_b32,
    to_u32,
    vsub4_lowered,
)

__all__ = [
    "QSERVE_ELEMENTS_PER_REGISTER",
    "qserve_alpha",
    "qserve_dequant_register",
    "measure_qserve_instructions",
]

QSERVE_ELEMENTS_PER_REGISTER = 8

_LOW_NIBBLE_MASK = 0x0F0F0F0F
_HIGH_NIBBLE_MASK = 0xF0F0F0F0


def qserve_dequant_register(
    register,
    scale_i8: int,
    zero_u4: int,
    stats: Optional[InstructionStats] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Dequantize one packed register of eight UINT4 codes with the QServe strategy.

    Returns ``(low, high)`` packed byte registers whose bytes are the INT8 results in
    two's-complement form (byte-wise wraparound of the subtraction is exactly what makes the
    result correct — and what forces the expensive ``vsub4`` lowering).
    """
    if not 1 <= int(scale_i8) <= 255:
        raise ValueError("scale must be a positive byte")
    if not 0 <= int(zero_u4) <= 15:
        raise ValueError("zero point must lie in [0, 15]")
    reg = to_u32(register)
    zs_packed = broadcast_byte((int(scale_i8) * int(zero_u4)) & 0xFF)

    # Unpack eight nibbles into two byte registers (same 3 instructions as the LQQ path).
    r_lo = and_b32(reg, _LOW_NIBBLE_MASK, stats)
    r_hi = and_b32(reg, _HIGH_NIBBLE_MASK, stats)
    r_hi = shr_b32(r_hi, 4, stats)

    # Multiplication: per-byte q * s fits in UINT8 (q <= 15, s <= 16), one IMAD per register.
    r_lo = imad_u32(r_lo, int(scale_i8), 0, stats)
    r_hi = imad_u32(r_hi, int(scale_i8), 0, stats)

    # Subtraction after multiplication: per-byte q*s - s*z needs byte-isolated arithmetic,
    # emulated with the lowered vsub4 (16 scalar instructions per register on Hopper).
    r_lo = vsub4_lowered(r_lo, zs_packed, stats)
    r_hi = vsub4_lowered(r_hi, zs_packed, stats)
    return r_lo, r_hi


def measure_qserve_instructions() -> int:
    """Count the CUDA-core instructions QServe's path issues for one packed register."""
    stats = InstructionStats()
    qserve_dequant_register(np.uint32(0), scale_i8=1, zero_u4=0, stats=stats)
    return stats.total_instructions


def qserve_alpha() -> float:
    """Instructions per dequantized element for the QServe path (cost-model alpha)."""
    return measure_qserve_instructions() / QSERVE_ELEMENTS_PER_REGISTER
