"""Roofline analysis for quantized GEMM (Figure 1c of the paper).

For a decode-time GEMM ``Y[M, N] = X[M, K] W[N, K]^T`` with the weight matrix streamed from
HBM, the arithmetic intensity *per weight element* is ``2 * M`` operations per element (every
loaded weight participates in ``M`` multiply-accumulates).  The attainable throughput is then

    min(peak_tensor_ops, intensity * bytes_per_element^-1 * memory_bandwidth)

Each precision configuration (FP16, W8A8, FP8, W4A16, W4A8, W4A4) differs in which Tensor
Core roof applies and how many bytes each weight element costs, which is exactly what Figure
1c plots.  The helpers below generate those curves and the per-configuration ridge points
(the batch size at which the configuration turns compute-bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..gpu.specs import GpuSpec, Precision
from .model import transition_batch_size

__all__ = ["RooflineConfig", "RooflinePoint", "STANDARD_CONFIGS", "roofline_curve", "ridge_points"]


@dataclass(frozen=True)
class RooflineConfig:
    """One precision configuration on the roofline plot."""

    name: str
    weight_precision: str
    mma_precision: str

    @property
    def bytes_per_weight(self) -> float:
        return Precision.bytes(self.weight_precision)


#: The configurations Figure 1c compares.
STANDARD_CONFIGS: Dict[str, RooflineConfig] = {
    "fp16": RooflineConfig("fp16", Precision.FP16, Precision.FP16),
    "w8a8": RooflineConfig("w8a8", Precision.INT8, Precision.INT8),
    "fp8": RooflineConfig("fp8", Precision.FP8, Precision.FP8),
    "w4a16": RooflineConfig("w4a16", Precision.INT4, Precision.FP16),
    "w4a8": RooflineConfig("w4a8", Precision.INT4, Precision.INT8),
    "w4a4": RooflineConfig("w4a4", Precision.INT4, Precision.INT4),
}


@dataclass(frozen=True)
class RooflinePoint:
    """One point of a roofline curve."""

    batch_size: float
    arithmetic_intensity: float   # OPs per weight element
    attainable_tops: float        # attainable throughput, OPs/s
    bound: str                    # "memory" or "compute"


def roofline_curve(
    gpu: GpuSpec,
    config: RooflineConfig,
    batch_sizes: Sequence[int],
) -> List[RooflinePoint]:
    """Attainable throughput of ``config`` on ``gpu`` for each batch size (M)."""
    if not gpu.supports_precision(config.mma_precision):
        raise ValueError(f"{gpu.name} cannot run MMA at {config.mma_precision}")
    peak = gpu.tensor_core_throughput(config.mma_precision)
    points: List[RooflinePoint] = []
    for m in batch_sizes:
        if m <= 0:
            raise ValueError("batch sizes must be positive")
        intensity = 2.0 * m  # OPs per weight element
        memory_roof = intensity * gpu.memory_bandwidth / config.bytes_per_weight
        attainable = min(peak, memory_roof)
        points.append(
            RooflinePoint(
                batch_size=float(m),
                arithmetic_intensity=intensity,
                attainable_tops=attainable,
                bound="compute" if memory_roof >= peak else "memory",
            )
        )
    return points


def ridge_points(gpu: GpuSpec, configs: Optional[Dict[str, RooflineConfig]] = None) -> Dict[str, float]:
    """Batch size at which each configuration becomes compute-bound (the roofline ridge)."""
    configs = configs or {
        name: cfg for name, cfg in STANDARD_CONFIGS.items() if gpu.supports_precision(cfg.mma_precision)
    }
    out: Dict[str, float] = {}
    for name, cfg in configs.items():
        out[name] = transition_batch_size(gpu, cfg.weight_precision, cfg.mma_precision)
    return out
