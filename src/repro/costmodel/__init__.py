"""Analytical cost model (Equations 3-6) and roofline analysis (Figure 1c)."""

from .model import (
    CostBreakdown,
    GemmShape,
    KernelCostParams,
    PipelineMode,
    alpha_budget,
    gemm_cost,
    transition_batch_size,
)
from .roofline import (
    STANDARD_CONFIGS,
    RooflineConfig,
    RooflinePoint,
    ridge_points,
    roofline_curve,
)

__all__ = [
    "CostBreakdown",
    "GemmShape",
    "KernelCostParams",
    "PipelineMode",
    "alpha_budget",
    "gemm_cost",
    "transition_batch_size",
    "STANDARD_CONFIGS",
    "RooflineConfig",
    "RooflinePoint",
    "ridge_points",
    "roofline_curve",
]
