"""The paper's analytical GEMM cost model (Section 3.2, Equations 3-6).

The model decomposes one main-loop iteration of a pipelined GEMM into

* ``T_LD``   — weight-tile transfer from global memory (Equation 3),
* ``T_DQ``   — dequantization on CUDA cores (the ``alpha``-dependent term of Equation 4),
* ``T_MMA``  — matrix multiply-accumulate on Tensor Cores (Equation 4),

and aggregates them over all output tiles at device level (Equation 6).  The way the three
terms combine depends on the kernel's pipeline organisation, captured by
:class:`PipelineMode`:

* ``SERIAL_DEQUANT`` — Equation 6 as written: loading overlaps with compute, but dequant and
  MMA execute back to back inside the compute stage (QServe, W4A16 and naive W4A8 kernels);
* ``FULL_OVERLAP``   — loading, dequantization and MMA all overlap (the ideal LiquidGEMM ImFP
  achieves): the iteration cost is the *maximum* of the three terms;
* ``NO_OVERLAP``     — nothing overlaps (a strawman used by the ablation baseline).

All throughputs come from :class:`repro.gpu.specs.GpuSpec`, so the same module reproduces the
paper's §3.3 numbers (memory/compute transition batch sizes, the ``alpha <= 5.07`` budget)
and feeds every kernel's latency estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..gpu.specs import GpuSpec, Precision

__all__ = [
    "PipelineMode",
    "GemmShape",
    "KernelCostParams",
    "CostBreakdown",
    "gemm_cost",
    "transition_batch_size",
    "alpha_budget",
]


class PipelineMode:
    """How the load / dequant / MMA stages of one iteration combine in time."""

    NO_OVERLAP = "no_overlap"
    SERIAL_DEQUANT = "serial_dequant"
    FULL_OVERLAP = "full_overlap"

    ALL = (NO_OVERLAP, SERIAL_DEQUANT, FULL_OVERLAP)


@dataclass(frozen=True)
class GemmShape:
    """A GEMM problem ``Y[M, N] = X[M, K] @ W[N, K]^T`` (the paper's layer shapes)."""

    m: int
    n: int
    k: int

    def __post_init__(self):
        if self.m <= 0 or self.n <= 0 or self.k <= 0:
            raise ValueError("GEMM dimensions must be positive")

    @property
    def weight_elements(self) -> int:
        return self.n * self.k

    @property
    def macs(self) -> int:
        return self.m * self.n * self.k

    @property
    def flops(self) -> int:
        return 2 * self.macs


@dataclass(frozen=True)
class KernelCostParams:
    """Everything the cost model needs to know about one kernel implementation."""

    name: str
    weight_precision: str          # storage precision of W in GMEM (drives T_LD)
    act_precision: str             # storage precision of X
    mma_precision: str             # Tensor Core data type (drives T_MMA)
    alpha: float = 0.0             # CUDA-core instructions per dequantized weight element
    pipeline: str = PipelineMode.SERIAL_DEQUANT
    tile_m: int = 128
    tile_n: int = 128
    tile_k: int = 64
    #: Extra CUDA-core instructions per weight element for loads / address arithmetic
    #: (e.g. the LDS.32 path of the conventional layout).
    load_overhead_alpha: float = 0.0
    #: Fraction of peak Tensor Core throughput the kernel sustains (ping-pong WGMMA kernels
    #: approach 1.0; pre-Hopper mma.sync kernels without warp specialization sit lower).
    tensor_efficiency: float = 1.0
    #: Fraction of peak memory bandwidth the kernel's weight loads sustain.
    bandwidth_efficiency: float = 0.85
    #: Epilogue cost per output element in FP operations (first-level dequant, bias, store).
    epilogue_ops_per_output: float = 2.0
    #: Fixed per-kernel launch overhead in seconds (dominates tiny problems).
    launch_overhead_s: float = 3.0e-6

    def __post_init__(self):
        if self.pipeline not in PipelineMode.ALL:
            raise ValueError(f"unknown pipeline mode {self.pipeline!r}")
        if not 0 < self.tensor_efficiency <= 1.0:
            raise ValueError("tensor_efficiency must be in (0, 1]")
        if not 0 < self.bandwidth_efficiency <= 1.0:
            raise ValueError("bandwidth_efficiency must be in (0, 1]")
        if self.alpha < 0 or self.load_overhead_alpha < 0:
            raise ValueError("alpha terms must be non-negative")


@dataclass
class CostBreakdown:
    """Device-level time decomposition of one GEMM (Equation 6)."""

    t_load: float
    t_dequant: float
    t_mma: float
    t_epilogue: float
    t_launch: float
    total: float
    limited_by: str
    m_tiles: int
    effective_m: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "t_load": self.t_load,
            "t_dequant": self.t_dequant,
            "t_mma": self.t_mma,
            "t_epilogue": self.t_epilogue,
            "t_launch": self.t_launch,
            "total": self.total,
            "m_tiles": float(self.m_tiles),
            "effective_m": float(self.effective_m),
        }


def _weight_load_throughput(gpu: GpuSpec, params: KernelCostParams) -> float:
    """Device-level weight-load throughput in elements/s (the paper's Phi^x_BD)."""
    bytes_per_element = Precision.bytes(params.weight_precision)
    return gpu.memory_bandwidth * params.bandwidth_efficiency / bytes_per_element


def gemm_cost(shape: GemmShape, gpu: GpuSpec, params: KernelCostParams) -> CostBreakdown:
    """Evaluate Equation 6 for one GEMM under a kernel configuration.

    The activation-load term of Equation 3 is dropped as in the paper (activations are small
    and reused from fast memory); the epilogue term is retained because it is what converts
    INT32 accumulators back to FP16 and applies first-level scales, and it matters for very
    small K.
    """
    m_tiles = math.ceil(shape.m / params.tile_m)
    effective_m = min(params.tile_m, shape.m)
    nk = shape.weight_elements

    phi_bd = _weight_load_throughput(gpu, params)
    phi_cuda = gpu.cuda_core_int32_tops
    phi_tc = gpu.tensor_core_throughput(params.mma_precision) * params.tensor_efficiency

    t_load = nk / phi_bd
    alpha_total = params.alpha + params.load_overhead_alpha
    t_dequant = alpha_total * nk / phi_cuda
    t_mma = effective_m * 2.0 * nk / phi_tc

    if params.pipeline == PipelineMode.FULL_OVERLAP:
        per_m_tile = max(t_load, t_dequant, t_mma)
        limiter = {t_load: "memory", t_dequant: "cuda_cores", t_mma: "tensor_cores"}[per_m_tile]
    elif params.pipeline == PipelineMode.SERIAL_DEQUANT:
        compute = t_dequant + t_mma
        per_m_tile = max(t_load, compute)
        limiter = "memory" if t_load >= compute else (
            "cuda_cores" if t_dequant > t_mma else "tensor_cores"
        )
    else:  # NO_OVERLAP
        per_m_tile = t_load + t_dequant + t_mma
        limiter = "serialized"

    t_epilogue = params.epilogue_ops_per_output * shape.m * shape.n / gpu.cuda_core_fp32_tops
    total = m_tiles * per_m_tile + t_epilogue + params.launch_overhead_s

    return CostBreakdown(
        t_load=m_tiles * t_load,
        t_dequant=m_tiles * t_dequant,
        t_mma=m_tiles * t_mma,
        t_epilogue=t_epilogue,
        t_launch=params.launch_overhead_s,
        total=total,
        limited_by=limiter,
        m_tiles=m_tiles,
        effective_m=effective_m,
    )


def transition_batch_size(gpu: GpuSpec, weight_precision: str, mma_precision: str,
                          bandwidth_efficiency: float = 1.0,
                          tensor_efficiency: float = 1.0) -> float:
    """Batch size where ``T_LD == T_MMA`` — the memory-/compute-bound transition (§3.3).

    With Figure 1's metrics this evaluates to ≈150 for W4A8 and ≈300 for W8A8 on H100, and
    ≈156 for W8A8 on A100, matching the paper.
    """
    bytes_per_element = Precision.bytes(weight_precision)
    phi_bd = gpu.memory_bandwidth * bandwidth_efficiency / bytes_per_element
    phi_tc = gpu.tensor_core_throughput(mma_precision) * tensor_efficiency
    return phi_tc / (2.0 * phi_bd)


def alpha_budget(gpu: GpuSpec, weight_precision: str, mma_precision: str,
                 batch_size: Optional[int] = None) -> float:
    """Maximum dequantization instructions per element that can be hidden (§3.3).

    Without ``batch_size`` the budget is the memory-bound condition ``T_DQ <= T_LD``
    (≈5.07 on H100 for 4-bit weights); with ``batch_size`` it is the compute-bound condition
    ``T_DQ <= T_MMA`` (≈5.05 at the transition batch of 150).
    """
    phi_cuda = gpu.cuda_core_int32_tops
    if batch_size is None:
        bytes_per_element = Precision.bytes(weight_precision)
        phi_bd = gpu.memory_bandwidth / bytes_per_element
        return phi_cuda / phi_bd
    phi_tc = gpu.tensor_core_throughput(mma_precision)
    return 2.0 * batch_size * phi_cuda / phi_tc
