"""End-to-end LLM serving model: model configs, attention, paged KV cache, systems, engine,
request-level scheduler simulation, traces-facing metrics and tensor parallelism."""

from .models import MODELS, ModelConfig, get_model, list_models
from .attention import (
    AttentionCost,
    chunked_prefill_attention_cost,
    decode_attention_cost,
    prefill_attention_cost,
    ragged_decode_attention_cost,
)
from .kvcache import KvCacheConfig, KvCacheOutOfMemory, PagedKvCache, SequenceState
from .systems import SYSTEMS, TABLE1_SYSTEMS, SystemProfile, get_system, list_systems
from .engine import (
    LayerBreakdown,
    PrefillChunk,
    ServingEngine,
    ServingResult,
    ThroughputPoint,
)
from .metrics import (
    RequestMetrics,
    SloReport,
    SloSpec,
    compute_slo_report,
    percentile,
    request_metrics,
)
from .scheduler import ContinuousBatchingScheduler, Request, SchedulerStats

__all__ = [
    "MODELS",
    "ModelConfig",
    "get_model",
    "list_models",
    "AttentionCost",
    "decode_attention_cost",
    "ragged_decode_attention_cost",
    "chunked_prefill_attention_cost",
    "prefill_attention_cost",
    "KvCacheConfig",
    "KvCacheOutOfMemory",
    "PagedKvCache",
    "SequenceState",
    "SYSTEMS",
    "TABLE1_SYSTEMS",
    "SystemProfile",
    "get_system",
    "list_systems",
    "LayerBreakdown",
    "PrefillChunk",
    "ServingEngine",
    "ServingResult",
    "ThroughputPoint",
    "RequestMetrics",
    "SloReport",
    "SloSpec",
    "compute_slo_report",
    "percentile",
    "request_metrics",
    "ContinuousBatchingScheduler",
    "Request",
    "SchedulerStats",
]
