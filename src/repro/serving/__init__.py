"""End-to-end LLM serving model: model configs, attention, paged KV cache, systems, engine."""

from .models import MODELS, ModelConfig, get_model, list_models
from .attention import AttentionCost, decode_attention_cost, prefill_attention_cost
from .kvcache import KvCacheConfig, KvCacheOutOfMemory, PagedKvCache, SequenceState
from .systems import SYSTEMS, TABLE1_SYSTEMS, SystemProfile, get_system, list_systems
from .engine import LayerBreakdown, ServingEngine, ServingResult, ThroughputPoint
from .scheduler import ContinuousBatchingScheduler, Request, SchedulerStats

__all__ = [
    "MODELS",
    "ModelConfig",
    "get_model",
    "list_models",
    "AttentionCost",
    "decode_attention_cost",
    "prefill_attention_cost",
    "KvCacheConfig",
    "KvCacheOutOfMemory",
    "PagedKvCache",
    "SequenceState",
    "SYSTEMS",
    "TABLE1_SYSTEMS",
    "SystemProfile",
    "get_system",
    "list_systems",
    "LayerBreakdown",
    "ServingEngine",
    "ServingResult",
    "ThroughputPoint",
    "ContinuousBatchingScheduler",
    "Request",
    "SchedulerStats",
]
