"""Per-request serving metrics and SLO attainment (TTFT, TPOT, goodput).

Production serving systems are judged on latency *distributions*, not means: the paper's
system-level evaluation reports throughput, but a trace-driven simulation lets us also measure
time-to-first-token (TTFT), time-per-output-token (TPOT) and *goodput* — the rate of requests
that meet both SLOs — the metrics used by DistServe/Sarathi-style serving work.

The scheduler records raw timestamps on each :class:`~repro.serving.scheduler.Request`; this
module turns a finished population of requests into percentile summaries and an SLO report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

__all__ = ["percentile", "RequestMetrics", "SloSpec", "SloReport", "request_metrics",
           "compute_slo_report"]


def _mean(values: Sequence[float]) -> float:
    """Mean that is 0.0 for an empty population — the one place the zero-completed case
    is guarded, so every :class:`SloReport` field degrades identically."""
    return sum(values) / len(values) if values else 0.0


def percentile(values: Sequence[float], q: float, *, sorted_values: bool = False) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) of an unsorted sequence.

    ``sorted_values=True`` declares the input already ascending and skips the per-call
    sort — the fast path :func:`compute_slo_report` uses to take four percentiles of the
    same population without re-sorting it four times.
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    data = values if sorted_values else sorted(values)
    if len(data) == 1:
        return data[0]
    rank = (len(data) - 1) * q / 100.0
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return data[lo]
    frac = rank - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


@dataclass(frozen=True)
class RequestMetrics:
    """Latency decomposition of one completed request."""

    request_id: int
    ttft_s: float                 # arrival -> first output token
    latency_s: float              # arrival -> completion
    tpot_s: float                 # mean inter-token time after the first (0 if 1 token)
    output_tokens: int
    preemptions: int
    #: Arrival -> first scheduled (prefill admission).  TTFT minus queue time is pure
    #: service time, so this is where router- or policy-induced queueing shows up.
    queue_time_s: float = 0.0


@dataclass(frozen=True)
class SloSpec:
    """Latency service-level objectives a request must meet to count toward goodput."""

    ttft_s: float = 2.0
    tpot_s: float = 0.1

    def met_by(self, m: RequestMetrics) -> bool:
        return m.ttft_s <= self.ttft_s and m.tpot_s <= self.tpot_s


@dataclass(frozen=True)
class SloReport:
    """Population summary of one simulation run against an :class:`SloSpec`."""

    slo: SloSpec
    completed: int
    slo_attained: int
    makespan_s: float
    mean_ttft_s: float
    p50_ttft_s: float
    p99_ttft_s: float
    mean_tpot_s: float
    p50_tpot_s: float
    p99_tpot_s: float
    mean_latency_s: float
    p50_latency_s: float
    p99_latency_s: float
    #: Mean arrival -> first-scheduled delay (router/admission queueing), 0.0 when the
    #: population recorded no scheduling timestamps.
    mean_queue_time_s: float = 0.0
    #: Prefix-caching outcome over the completed population (both 0 with caching off):
    #: the fraction of requests whose final admission pass was seeded from the cache, and
    #: the prefill tokens that seeding skipped in total.
    prefix_hit_rate: float = 0.0
    prefix_saved_tokens: int = 0

    @property
    def attainment(self) -> float:
        """Fraction of completed requests that met both SLOs."""
        return self.slo_attained / self.completed if self.completed else 0.0

    @property
    def goodput_rps(self) -> float:
        """SLO-attaining requests completed per second of simulated time."""
        return self.slo_attained / self.makespan_s if self.makespan_s > 0 else 0.0


def request_metrics(requests: Iterable) -> List[RequestMetrics]:
    """Extract metrics from completed requests (others are skipped)."""
    out: List[RequestMetrics] = []
    for r in requests:
        if r.first_token_time_s is None or r.completion_time_s is None:
            continue
        decode_tokens = max(0, r.output_tokens - 1)
        decode_span = r.completion_time_s - r.first_token_time_s
        first_scheduled = getattr(r, "first_scheduled_time_s", None)
        out.append(RequestMetrics(
            request_id=r.request_id,
            ttft_s=r.first_token_time_s - r.arrival_time_s,
            latency_s=r.completion_time_s - r.arrival_time_s,
            tpot_s=decode_span / decode_tokens if decode_tokens else 0.0,
            output_tokens=r.output_tokens,
            preemptions=getattr(r, "preemptions", 0),
            queue_time_s=(
                first_scheduled - r.arrival_time_s if first_scheduled is not None else 0.0
            ),
        ))
    return out


def compute_slo_report(requests: Iterable, slo: Optional[SloSpec] = None,
                       makespan_s: float = 0.0) -> SloReport:
    """Summarize a completed request population against ``slo``."""
    slo = slo or SloSpec()
    requests = list(requests)
    cached = [getattr(r, "cached_prefix_tokens", 0) for r in requests]
    metrics = request_metrics(requests)
    ttfts = [m.ttft_s for m in metrics]
    # TPOT is undefined for single-token answers (tpot_s = 0.0): they meet any TPOT SLO
    # vacuously, but must not drag the percentile summary of real inter-token gaps down.
    tpots = [m.tpot_s for m in metrics if m.output_tokens > 1]
    latencies = [m.latency_s for m in metrics]
    # Means are taken in completion order *before* sorting (float sums are order
    # sensitive, and the historical report summed unsorted populations); each population
    # is then sorted exactly once and every percentile reuses that order.
    mean_ttft = _mean(ttfts)
    mean_tpot = _mean(tpots)
    mean_latency = _mean(latencies)
    ttfts.sort()
    tpots.sort()
    latencies.sort()
    return SloReport(
        slo=slo,
        completed=len(metrics),
        slo_attained=sum(1 for m in metrics if slo.met_by(m)),
        makespan_s=makespan_s,
        mean_ttft_s=mean_ttft,
        p50_ttft_s=percentile(ttfts, 50, sorted_values=True),
        p99_ttft_s=percentile(ttfts, 99, sorted_values=True),
        mean_tpot_s=mean_tpot,
        p50_tpot_s=percentile(tpots, 50, sorted_values=True),
        p99_tpot_s=percentile(tpots, 99, sorted_values=True),
        mean_latency_s=mean_latency,
        p50_latency_s=percentile(latencies, 50, sorted_values=True),
        p99_latency_s=percentile(latencies, 99, sorted_values=True),
        mean_queue_time_s=_mean([m.queue_time_s for m in metrics]),
        prefix_hit_rate=(
            sum(1 for c in cached if c > 0) / len(requests) if requests else 0.0
        ),
        prefix_saved_tokens=int(sum(cached)),
    )
