"""Model architecture configurations for every model evaluated in the paper (Table 1).

The serving engine needs only the architectural facts that determine GEMM shapes, KV-cache
size and parameter counts: hidden size, layer count, attention head geometry (including GQA),
FFN width, MoE expert structure and vocabulary size.  The numbers below are the published
configurations of the open-source checkpoints the paper serves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["ModelConfig", "MODELS", "get_model", "list_models"]


@dataclass(frozen=True)
class ModelConfig:
    """Architecture of a decoder-only transformer LLM."""

    name: str
    num_layers: int
    hidden_size: int
    num_heads: int
    num_kv_heads: int
    intermediate_size: int
    vocab_size: int
    #: MoE structure; dense models use 1 expert with top-1 routing.
    num_experts: int = 1
    experts_per_token: int = 1

    def __post_init__(self):
        if self.hidden_size % self.num_heads != 0:
            raise ValueError("hidden_size must be divisible by num_heads")
        if self.num_heads % self.num_kv_heads != 0:
            raise ValueError("num_heads must be divisible by num_kv_heads (GQA)")
        if self.experts_per_token > self.num_experts:
            raise ValueError("experts_per_token cannot exceed num_experts")

    # ------------------------------------------------------------------ geometry
    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads

    @property
    def kv_dim(self) -> int:
        """Per-token K (or V) width in elements."""
        return self.num_kv_heads * self.head_dim

    @property
    def is_moe(self) -> bool:
        return self.num_experts > 1

    @property
    def qkv_output_dim(self) -> int:
        """Output width of the fused QKV projection."""
        return (self.num_heads + 2 * self.num_kv_heads) * self.head_dim

    # ------------------------------------------------------------------ parameter counts
    def attention_params_per_layer(self) -> int:
        return self.hidden_size * self.qkv_output_dim + self.hidden_size * self.hidden_size

    def ffn_params_per_expert(self) -> int:
        # Gate, up and down projections (SwiGLU).
        return 3 * self.hidden_size * self.intermediate_size

    def ffn_params_per_layer(self) -> int:
        return self.num_experts * self.ffn_params_per_expert()

    def params_per_layer(self) -> int:
        return self.attention_params_per_layer() + self.ffn_params_per_layer()

    def gemm_weight_params(self) -> int:
        """Parameters that flow through the serving GEMM kernels (all layers)."""
        return self.num_layers * self.params_per_layer()

    def active_params_per_token(self) -> int:
        """Parameters touched when processing one token (MoE models activate top-k experts)."""
        per_layer = (
            self.attention_params_per_layer()
            + self.experts_per_token * self.ffn_params_per_expert()
        )
        return self.num_layers * per_layer

    def embedding_params(self) -> int:
        # Token embedding + LM head (untied, the common case for these checkpoints).
        return 2 * self.vocab_size * self.hidden_size

    def total_params(self) -> int:
        return self.gemm_weight_params() + self.embedding_params()

    # ------------------------------------------------------------------ KV cache
    def kv_bytes_per_token(self, bytes_per_element: float) -> float:
        """KV-cache bytes one token occupies across all layers (K and V)."""
        return 2.0 * self.kv_dim * self.num_layers * bytes_per_element

    # ------------------------------------------------------------------ tensor parallelism
    def validate_tp(self, tp_degree: int) -> None:
        """Check that this model can be sharded ``tp_degree`` ways (Megatron-style).

        Attention heads and the FFN intermediate width are split across GPUs; KV heads may
        be *replicated* when ``tp_degree`` exceeds ``num_kv_heads`` (the standard GQA
        sharding), so they impose no divisibility constraint.
        """
        if tp_degree < 1:
            raise ValueError("tp_degree must be >= 1")
        if self.num_heads % tp_degree != 0:
            raise ValueError(
                f"{self.name}: num_heads={self.num_heads} not divisible by tp_degree={tp_degree}"
            )
        if self.intermediate_size % tp_degree != 0:
            raise ValueError(
                f"{self.name}: intermediate_size={self.intermediate_size} not divisible by "
                f"tp_degree={tp_degree}"
            )

    def heads_per_gpu(self, tp_degree: int) -> int:
        """Query heads resident on one GPU of a ``tp_degree`` tensor-parallel group."""
        self.validate_tp(tp_degree)
        return self.num_heads // tp_degree

    def kv_heads_per_gpu(self, tp_degree: int) -> int:
        """KV heads per GPU; replicated (ceil) when ``tp_degree > num_kv_heads`` (GQA)."""
        self.validate_tp(tp_degree)
        return max(1, -(-self.num_kv_heads // tp_degree))

    def kv_dim_per_gpu(self, tp_degree: int) -> int:
        """Per-token K (or V) width in elements held by one GPU."""
        return self.kv_heads_per_gpu(tp_degree) * self.head_dim

    def kv_replication_factor(self, tp_degree: int) -> float:
        """Total KV copies across the group divided by one full copy (1.0 = no replication)."""
        return self.kv_heads_per_gpu(tp_degree) * tp_degree / self.num_kv_heads

    def gemm_weight_params_per_gpu(self, tp_degree: int) -> int:
        """Linear-layer parameters resident on one GPU of a ``tp_degree`` group.

        QKV and gate/up projections are column-parallel, output and down projections are
        row-parallel; K/V projection rows follow the (possibly replicated) KV-head shard, so
        GQA models pay slightly more than ``1/tp_degree`` of the full model.
        """
        if tp_degree == 1:
            return self.gemm_weight_params()
        qkv_out = (self.heads_per_gpu(tp_degree) + 2 * self.kv_heads_per_gpu(tp_degree)) * self.head_dim
        attention = self.hidden_size * qkv_out + self.hidden_size * (self.hidden_size // tp_degree)
        ffn = self.num_experts * 3 * self.hidden_size * (self.intermediate_size // tp_degree)
        return self.num_layers * (attention + ffn)


MODELS: Dict[str, ModelConfig] = {
    "llama1-30b": ModelConfig(
        name="llama1-30b", num_layers=60, hidden_size=6656, num_heads=52, num_kv_heads=52,
        intermediate_size=17920, vocab_size=32000,
    ),
    "llama2-7b": ModelConfig(
        name="llama2-7b", num_layers=32, hidden_size=4096, num_heads=32, num_kv_heads=32,
        intermediate_size=11008, vocab_size=32000,
    ),
    "llama2-13b": ModelConfig(
        name="llama2-13b", num_layers=40, hidden_size=5120, num_heads=40, num_kv_heads=40,
        intermediate_size=13824, vocab_size=32000,
    ),
    "llama2-70b": ModelConfig(
        name="llama2-70b", num_layers=80, hidden_size=8192, num_heads=64, num_kv_heads=8,
        intermediate_size=28672, vocab_size=32000,
    ),
    "llama3-8b": ModelConfig(
        name="llama3-8b", num_layers=32, hidden_size=4096, num_heads=32, num_kv_heads=8,
        intermediate_size=14336, vocab_size=128256,
    ),
    "mistral-7b": ModelConfig(
        name="mistral-7b", num_layers=32, hidden_size=4096, num_heads=32, num_kv_heads=8,
        intermediate_size=14336, vocab_size=32000,
    ),
    "yi-34b": ModelConfig(
        name="yi-34b", num_layers=60, hidden_size=7168, num_heads=56, num_kv_heads=8,
        intermediate_size=20480, vocab_size=64000,
    ),
    "mixtral-8x7b": ModelConfig(
        name="mixtral-8x7b", num_layers=32, hidden_size=4096, num_heads=32, num_kv_heads=8,
        intermediate_size=14336, vocab_size=32000, num_experts=8, experts_per_token=2,
    ),
}


def get_model(name: str) -> ModelConfig:
    """Look up a model configuration by (case-insensitive) name."""
    key = name.lower()
    if key not in MODELS:
        raise KeyError(f"unknown model {name!r}; known: {sorted(MODELS)}")
    return MODELS[key]


def list_models() -> List[str]:
    return sorted(MODELS)
