"""Radix-tree prefix cache over KV blocks (vLLM block-hash / SGLang RadixAttention style).

Production engines avoid re-prefilling shared prompt prefixes — system prompts, RAG
templates, agent tool transcripts — by indexing the paged KV cache's *full* blocks under a
content hash and seeding new sequences with the matching blocks.  This module is the
simulator's version of that index:

* **Chained interned keys** — every cached block is identified by an interned integer key
  derived from ``(parent_key, block_content)``, where the content is the tuple of
  ``(segment_id, start, end)`` pieces covering that block.  Chaining makes the structure a
  radix tree without materializing per-node child tables: looking up a prefix is one dict
  probe per block, O(prefix blocks) total, and diverging continuations branch naturally
  (two conversations sharing a system prompt share exactly its nodes).
* **Fork-on-admit** — the scheduler asks :meth:`PrefixCache.match_blocks` for the longest
  cached prefix of an admitting request and seeds the new sequence with those physical
  blocks via :meth:`~repro.serving.kvcache.PagedKvCache.fork_from_blocks`; only the
  uncached suffix is prefilled.  Matches are *block granular*: the shareable span is
  described by the request's ``prefix_segments`` and only whole blocks ever hit.
* **Reference-counted residency** — the cache holds one pool reference per cached block
  (:meth:`~repro.serving.kvcache.PagedKvCache.retain_block`), so publishing a prefix costs
  no new memory while its prefiller is alive, and cached blocks survive the prefiller's
  completion until evicted.
* **LRU leaf eviction** — under KV pressure the scheduler reclaims cached-but-idle blocks
  before preempting live sequences: :meth:`PrefixCache.evict` repeatedly removes the
  least-recently-used *leaf* whose block no live sequence shares.  :meth:`PrefixCache.can_free`
  is the side-effect-free twin the fast-forward parked-queue proofs use.

Everything here mutates only inside the scheduler's ``step()`` (insert at prefill
completion, hit/fork at admission, evict under pressure), which is what keeps analytic
fast-forward bit-identical with the cache enabled: a pinned fast-forward segment can prove
the trie static for its whole span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from .kvcache import PagedKvCache

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .scheduler import Request

__all__ = ["PrefixCache", "PrefixCacheStats"]

#: One block's content: the ``(segment_id, start, end)`` pieces covering its tokens.
BlockContent = Tuple[Tuple[int, int, int], ...]


@dataclass(frozen=True)
class PrefixCacheStats:
    """Counters of one prefix-cache lifetime (reset with the scheduler session)."""

    hits: int = 0
    misses: int = 0
    saved_tokens: int = 0
    inserted_blocks: int = 0
    evicted_blocks: int = 0
    cached_blocks: int = 0

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class _PrefixNode:
    """One cached block: a trie node owning exactly one physical KV block."""

    __slots__ = ("key", "parent", "block", "children", "depth", "stamp")

    def __init__(self, key: int, parent: Optional["_PrefixNode"], block: int,
                 depth: int, stamp: int):
        self.key = key
        self.parent = parent
        self.block = block
        self.children = 0          # child-node count: 0 means leaf (eviction candidate)
        self.depth = depth
        self.stamp = stamp         # logical LRU time of the last touch


def _block_contents(segments: Tuple[Tuple[int, int], ...], block_tokens: int,
                    max_blocks: int) -> Iterator[BlockContent]:
    """Yield the content key of each *full* block covering the segment stream.

    Segment boundaries may fall mid-block, so a block's content is the tuple of
    ``(segment_id, start_offset, end_offset)`` pieces filling it — two requests produce
    the same key for block *i* exactly when their first ``(i+1) * block_tokens`` shareable
    tokens are segment-for-segment identical.  The trailing partial block (if any) is
    never yielded: only whole blocks are cacheable.
    """
    if max_blocks <= 0:
        return
    pieces: List[Tuple[int, int, int]] = []
    filled = 0
    emitted = 0
    for seg_id, seg_tokens in segments:
        offset = 0
        while offset < seg_tokens:
            take = min(seg_tokens - offset, block_tokens - filled)
            pieces.append((seg_id, offset, offset + take))
            filled += take
            offset += take
            if filled == block_tokens:
                yield tuple(pieces)
                pieces = []
                filled = 0
                emitted += 1
                if emitted >= max_blocks:
                    return


class PrefixCache:
    """Block-granular radix index over a :class:`PagedKvCache`'s published prefixes."""

    def __init__(self, kv_cache: PagedKvCache):
        self.kv_cache = kv_cache
        # Interned key chain: (parent_key, block_content) -> key.  Append-only — keys of
        # evicted nodes stay interned so a re-published prefix re-lands on the same ints.
        self._interned: Dict[Tuple[int, object], int] = {}
        self._nodes: Dict[int, _PrefixNode] = {}
        self._group_keys: Dict[object, int] = {}
        self._next_key = 0
        self._tick = 0           # logical LRU clock (advances on hit/insert)
        self._version = 0        # structure version (advances on insert/evict/reset)
        # Per-version memo of match results: the parked-queue proofs re-evaluate the top
        # waiting request's match on every fast-forward attempt, and the trie is static
        # between structural changes.
        self._match_memo: Dict[Tuple[int, int], List[_PrefixNode]] = {}
        self.hits = 0
        self.misses = 0
        self.saved_tokens = 0
        self.inserted_blocks = 0
        self.evicted_blocks = 0
        # Optional telemetry (bind_tracer): "cache_insert" / "cache_evict" events.  The
        # cache has no clock of its own; the owning scheduler supplies one.
        self._tracer = None
        self._trace_replica = 0
        self._trace_clock = None

    def bind_tracer(self, tracer, replica: int = 0, clock_fn=None) -> None:
        """Attach a :class:`~repro.telemetry.Tracer` for structural-change events."""
        self._tracer = tracer
        self._trace_replica = replica
        self._trace_clock = clock_fn

    def _trace_ts(self) -> float:
        return self._trace_clock() if self._trace_clock is not None else 0.0

    # ------------------------------------------------------------------ queries
    @property
    def num_blocks(self) -> int:
        """Physical blocks currently held (referenced) by the cache."""
        return len(self._nodes)

    @property
    def version(self) -> int:
        """Bumped on every structural change (insert / evict / reset)."""
        return self._version

    def stats(self) -> PrefixCacheStats:
        return PrefixCacheStats(
            hits=self.hits,
            misses=self.misses,
            saved_tokens=self.saved_tokens,
            inserted_blocks=self.inserted_blocks,
            evicted_blocks=self.evicted_blocks,
            cached_blocks=self.num_blocks,
        )

    def _group_key(self, request: "Request") -> Optional[int]:
        """Root key of the request's sharing namespace (``None`` when absent)."""
        return self._group_keys.get(request.prefix_group)

    def _match_path(self, request: "Request", max_tokens: int) -> List[_PrefixNode]:
        """Longest cached path covering the request's shareable prefix (possibly empty)."""
        segments = request.prefix_segments
        if not segments or max_tokens <= 0:
            return []
        memo_key = (request.request_id, max_tokens)
        cached = self._match_memo.get(memo_key)
        if cached is not None:
            return cached
        path: List[_PrefixNode] = []
        key = self._group_key(request)
        if key is not None:
            block_tokens = self.kv_cache.config.block_tokens
            interned = self._interned
            nodes = self._nodes
            for content in _block_contents(segments, block_tokens,
                                           max_tokens // block_tokens):
                child_key = interned.get((key, content))
                if child_key is None:
                    break
                node = nodes.get(child_key)
                if node is None:
                    break
                path.append(node)
                key = child_key
        self._match_memo[memo_key] = path
        return path

    def match_blocks(self, request: "Request", max_tokens: int) -> List[int]:
        """Physical blocks of the longest cached prefix, capped at ``max_tokens`` tokens.

        Side-effect free (counters and LRU stamps move only on :meth:`commit_hit`), so
        the admission loop, the fast-forward parked proofs and the cluster's
        cache-affinity router can all probe it without perturbing the simulation.
        """
        return [node.block for node in self._match_path(request, max_tokens)]

    def match_tokens(self, request: "Request", max_tokens: int) -> int:
        """Tokens the cache could serve for ``request`` right now (router affinity probe)."""
        return len(self._match_path(request, max_tokens)) * self.kv_cache.config.block_tokens

    # ------------------------------------------------------------------ mutation
    def commit_hit(self, request: "Request", num_blocks: int) -> None:
        """Record a fork-on-admit of ``num_blocks`` matched blocks; refresh their LRU."""
        self._tick += 1
        stamp = self._tick
        for node in self._match_path(request, num_blocks
                                     * self.kv_cache.config.block_tokens):
            node.stamp = stamp
        self.hits += 1
        self.saved_tokens += num_blocks * self.kv_cache.config.block_tokens

    def record_miss(self) -> None:
        self.misses += 1

    def insert(self, request: "Request", blocks: List[int]) -> int:
        """Publish a completed prefill's shareable prefix; returns newly cached blocks.

        ``blocks`` is the prefilling sequence's block list; the first
        ``shareable // block_tokens`` of them hold full blocks of shareable-prefix KV.
        New trie depth takes one pool reference per block; already-cached depth is left
        untouched (first writer wins — a concurrent duplicate prefill does not replace
        the published block) but has its LRU refreshed.
        """
        segments = request.prefix_segments
        if not segments:
            return 0
        shareable = sum(tokens for _, tokens in segments)
        block_tokens = self.kv_cache.config.block_tokens
        publish = min(shareable // block_tokens, len(blocks))
        if publish <= 0:
            return 0
        self._tick += 1
        stamp = self._tick
        group = request.prefix_group
        key = self._group_keys.get(group)
        if key is None:
            key = self._next_key
            self._next_key += 1
            self._group_keys[group] = key
        parent: Optional[_PrefixNode] = None
        added = 0
        for i, content in enumerate(_block_contents(segments, block_tokens, publish)):
            child_key = self._interned.get((key, content))
            if child_key is None:
                child_key = self._next_key
                self._next_key += 1
                self._interned[(key, content)] = child_key
            node = self._nodes.get(child_key)
            if node is None:
                node = _PrefixNode(child_key, parent, blocks[i], depth=i, stamp=stamp)
                self.kv_cache.retain_block(blocks[i])
                self._nodes[child_key] = node
                if parent is not None:
                    parent.children += 1
                added += 1
            else:
                node.stamp = stamp
            parent = node
            key = child_key
        if added:
            self.inserted_blocks += added
            self._bump_version()
            if self._tracer is not None:
                self._tracer.emit(
                    "cache_insert", self._trace_ts(), replica=self._trace_replica,
                    request_id=request.request_id, blocks=added,
                )
        return added

    def evict(self, num_blocks: int) -> int:
        """Free up to ``num_blocks`` device blocks by dropping LRU leaves.

        An *idle* leaf (pool reference count 1 — the cache's own) frees its block
        outright, and evicting it may expose its parent as the next candidate, so deep
        idle chains unwind naturally.  When no idle leaf remains but idle blocks are
        still buried in the trie — a live sequence pins a chain's deepest blocks while
        its shallow ancestors sit idle — the LRU *pinned* leaf is dropped instead:
        releasing the cache's reference on a shared block costs no memory now (the live
        holder keeps it) and unpins the idle interior for real freeing.  Without that
        pruning step, a single pinned leaf could deadlock preemption with the pool full
        of idle-but-unreachable cached blocks.  Returns the blocks actually returned to
        the free pool (fewer than asked once every cached block is shared).
        """
        if num_blocks <= 0:
            return 0
        kv = self.kv_cache
        freed = 0
        evicted = 0
        while freed < num_blocks and self._nodes:
            if not any(
                kv.block_ref_count(node.block) == 1 for node in self._nodes.values()
            ):
                break  # every cached block is shared with a live holder: nothing frees
            best_idle: Optional[_PrefixNode] = None
            best: Optional[_PrefixNode] = None
            for node in self._nodes.values():
                if node.children:
                    continue
                if kv.block_ref_count(node.block) == 1:
                    if best_idle is None or node.stamp < best_idle.stamp:
                        best_idle = node
                if best is None or node.stamp < best.stamp:
                    best = node
            target = best_idle if best_idle is not None else best
            freed += kv.release_block(target.block)
            del self._nodes[target.key]
            if target.parent is not None:
                target.parent.children -= 1
            evicted += 1
        if evicted:
            self.evicted_blocks += evicted
            self._bump_version()
            if self._tracer is not None:
                self._tracer.emit(
                    "cache_evict", self._trace_ts(), replica=self._trace_replica,
                    blocks=evicted, freed=freed,
                )
        return freed

    def can_free(self, num_blocks: int) -> bool:
        """Would :meth:`evict` free at least ``num_blocks`` device blocks right now?

        Side-effect free: used by the fast-forward parked-queue proofs, which need
        "admission is blocked *and* eviction could not unblock it" to stay true for a
        whole pinned segment.  Every idle cached block (reference count 1) is reachable:
        :meth:`evict` prunes pinned leaves for free to expose buried idle interiors, so
        the freeable total is simply the idle-block count.  Not memoized: unlike a
        match, the answer also depends on *live* sequences' reference counts, which
        change without a structural version bump.
        """
        if num_blocks <= 0:
            return True
        kv = self.kv_cache
        freeable = 0
        for node in self._nodes.values():
            if kv.block_ref_count(node.block) == 1:
                freeable += 1
                if freeable >= num_blocks:
                    return True
        return False

    def reset(self) -> None:
        """Drop every cached block (release its pool reference) and zero the counters."""
        kv = self.kv_cache
        for node in self._nodes.values():
            kv.release_block(node.block)
        self._interned.clear()
        self._nodes.clear()
        self._group_keys.clear()
        self._next_key = 0
        self._tick = 0
        self._bump_version()
        self.hits = 0
        self.misses = 0
        self.saved_tokens = 0
        self.inserted_blocks = 0
        self.evicted_blocks = 0

    def _bump_version(self) -> None:
        self._version += 1
        self._match_memo.clear()
