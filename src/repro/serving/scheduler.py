"""Request-level continuous-batching simulation (Orca/vLLM-style iteration scheduling).

Table 1 uses fixed-length batches, but a production serving system admits and retires
requests continuously, bounded by the paged KV cache.  This module simulates that behaviour
on top of the engine's *ragged* step-time model as an event-driven loop over scheduler
iterations:

* **Mixed iterations** — every iteration packs one decode token per running sequence plus
  chunked-prefill tokens from admitting requests into a single ragged forward pass, under an
  iteration token budget (the vLLM ``max_num_batched_tokens`` knob).  A long prompt therefore
  never stalls running decodes for a full serial prefill (Sarathi-style chunked prefill).
* **Per-sequence attention accounting** — decode attention is charged at each sequence's own
  cached context length via :meth:`ServingEngine.mixed_step_time`, not at the batch maximum.
* **Preemption and recompute** — when the paged KV pool runs dry mid-decode the scheduler
  preempts the most recently arrived resident requests (vLLM's recompute policy): their
  blocks are freed and they re-prefill prompt + already-emitted tokens before continuing.
  :class:`KvCacheOutOfMemory` never propagates out of :meth:`run`.
* **Heap admission** — pending arrivals sit in a min-heap keyed by arrival time; admission
  pops are O(log n) instead of the old O(n) ``list.pop(0)``.

Per-request timestamps (arrival, first token, completion, preemptions) are recorded so SLO
metrics (p50/p99 TTFT, TPOT, goodput — :mod:`repro.serving.metrics`) can be computed on top.
"""

from __future__ import annotations

import copy
import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from .engine import PrefillChunk, ServingEngine
from .kvcache import KvCacheOutOfMemory, PagedKvCache
from .metrics import SloReport, SloSpec, compute_slo_report

__all__ = ["Request", "SchedulerStats", "ContinuousBatchingScheduler"]


@dataclass
class Request:
    """One inference request."""

    request_id: int
    prompt_tokens: int
    output_tokens: int
    arrival_time_s: float = 0.0
    # Filled by the scheduler:
    first_token_time_s: Optional[float] = None
    completion_time_s: Optional[float] = None
    generated: int = 0
    preemptions: int = 0
    # Prefill progress of the current pass (recompute restarts it over prompt + emitted):
    prefilled: int = 0
    prefill_target: int = 0

    @property
    def finished(self) -> bool:
        return self.generated >= self.output_tokens


@dataclass
class SchedulerStats:
    """Aggregate statistics of one simulation run."""

    simulated_time_s: float
    completed_requests: int
    generated_tokens: int
    mean_ttft_s: float
    mean_latency_s: float
    peak_batch_size: int
    peak_kv_utilization: float
    # Request-level extensions (defaults keep older call sites working):
    p50_ttft_s: float = 0.0
    p99_ttft_s: float = 0.0
    mean_tpot_s: float = 0.0
    p99_tpot_s: float = 0.0
    preemptions: int = 0
    num_iterations: int = 0
    prefill_chunks: int = 0
    requests: List[Request] = field(default_factory=list)

    @property
    def throughput_tokens_per_s(self) -> float:
        if self.simulated_time_s <= 0:
            return 0.0
        return self.generated_tokens / self.simulated_time_s

    def slo_report(self, slo: Optional[SloSpec] = None) -> SloReport:
        """SLO attainment / goodput of the completed requests of this run."""
        return compute_slo_report(self.requests, slo, makespan_s=self.simulated_time_s)


class ContinuousBatchingScheduler:
    """Iteration-level scheduler over the serving engine's ragged step-time model."""

    def __init__(
        self,
        engine: ServingEngine,
        max_batch_size: Optional[int] = None,
        max_batched_tokens: Optional[int] = None,
        prefill_chunk_tokens: int = 256,
    ):
        self.engine = engine
        if not engine.supported:
            raise ValueError(
                f"system {engine.system.name!r} does not support model {engine.model.name!r}"
            )
        config = engine.kv_cache_config()
        if config.memory_budget_bytes <= 0:
            raise KvCacheOutOfMemory("model weights alone exceed the device memory budget")
        if prefill_chunk_tokens < 1:
            raise ValueError("prefill_chunk_tokens must be positive")
        self.kv_cache = PagedKvCache(config)
        self.max_batch_size = max_batch_size or engine.system.max_batch_size
        self.max_batched_tokens = max_batched_tokens or engine.system.max_batched_tokens
        self.prefill_chunk_tokens = min(prefill_chunk_tokens, self.max_batched_tokens)

    # ------------------------------------------------------------------ internals
    def _check_servable(self, request: Request) -> None:
        if request.prompt_tokens < 1 or request.output_tokens < 1:
            raise ValueError(
                f"request {request.request_id}: prompt_tokens and output_tokens must be >= 1"
            )
        # The last generated token is never appended to the cache (it is never an input),
        # so peak residency is prompt + output - 1 tokens.
        peak_tokens = request.prompt_tokens + request.output_tokens - 1
        needed = self.kv_cache.config.blocks_for_tokens(peak_tokens)
        if needed > self.kv_cache.config.total_blocks:
            raise ValueError(
                f"request {request.request_id} needs {needed} KV blocks at peak but the pool "
                f"has only {self.kv_cache.config.total_blocks}; it can never be scheduled"
            )

    def _preempt(self, victim: Request, prefilling: List[Request], running: List[Request],
                 waiting: Deque[Request]) -> None:
        """Evict ``victim`` (recompute policy): free its blocks and requeue it first."""
        self.kv_cache.free_sequence(victim.request_id)
        victim.preemptions += 1
        victim.prefilled = 0
        # Re-prefill the prompt plus every already-emitted token except the newest (whose KV
        # was never written); emitted tokens themselves are kept — recompute only rebuilds KV.
        victim.prefill_target = victim.prompt_tokens + max(0, victim.generated - 1)
        if victim in prefilling:
            prefilling.remove(victim)
        else:
            running.remove(victim)
        waiting.appendleft(victim)

    def _pick_victim(self, prefilling: List[Request], running: List[Request],
                     exclude: Optional[Request] = None) -> Optional[Request]:
        """Latest-arrival resident request (vLLM preempts the lowest-priority sequence)."""
        candidates = [r for r in prefilling + running if r is not exclude]
        if not candidates:
            return None
        return max(candidates, key=lambda r: (r.arrival_time_s, r.request_id))

    # ------------------------------------------------------------------ simulation
    def run(self, requests: Sequence[Request]) -> SchedulerStats:
        """Simulate serving ``requests`` to completion and return aggregate statistics.

        Never propagates :class:`KvCacheOutOfMemory`: KV exhaustion is absorbed by
        preempting resident requests and recomputing them later.

        Scheduler-owned fields on each request (timestamps, progress counters) are reset on
        entry, so the same trace can be re-run — e.g. to A/B two systems — without stale
        state leaking between runs.
        """
        for request in requests:
            self._check_servable(request)
            request.first_token_time_s = None
            request.completion_time_s = None
            request.generated = 0
            request.preemptions = 0
            request.prefilled = 0
            request.prefill_target = 0

        arrivals: List[Tuple[float, int, Request]] = [
            (r.arrival_time_s, r.request_id, r) for r in requests
        ]
        heapq.heapify(arrivals)
        waiting: Deque[Request] = deque()
        prefilling: List[Request] = []
        running: List[Request] = []
        completed: List[Request] = []

        clock = 0.0
        generated_tokens = 0
        peak_batch = 0
        peak_util = 0.0
        preemption_count = 0
        num_iterations = 0
        chunk_count = 0

        def preempt_one(exclude: Optional[Request] = None) -> bool:
            nonlocal preemption_count
            victim = self._pick_victim(prefilling, running, exclude)
            if victim is None:
                return False
            self._preempt(victim, prefilling, running, waiting)
            preemption_count += 1
            return True

        while arrivals or waiting or prefilling or running:
            # ---- admit arrived requests into the waiting queue (heap pop, O(log n)).
            while arrivals and arrivals[0][0] <= clock:
                waiting.append(heapq.heappop(arrivals)[2])
            if not (waiting or prefilling or running):
                clock = arrivals[0][0]
                continue

            # ---- reserve one decode slot per running sequence, preempting on exhaustion.
            preemptions_before_iteration = preemption_count
            reserved_context: Dict[int, int] = {}
            for request in list(running):
                if request not in running:
                    continue  # evicted while making room for an earlier sequence
                while True:
                    context = self.kv_cache.sequence(request.request_id).num_tokens
                    try:
                        self.kv_cache.append_token(request.request_id)
                        reserved_context[request.request_id] = context
                        break
                    except KvCacheOutOfMemory:
                        if not preempt_one(exclude=request):  # pragma: no cover - guarded
                            raise RuntimeError(
                                "KV pool too small for a single request despite admission guard"
                            )
            # Victims evicted after reserving their slot must not be charged (or decoded).
            contexts = [reserved_context[r.request_id] for r in running]
            decode_batch = len(contexts)

            # ---- plan chunked prefill under the iteration token budget.
            budget = max(0, self.max_batched_tokens - decode_batch)
            chunks: List[Tuple[Request, PrefillChunk]] = []
            for request in list(prefilling):
                if budget <= 0:
                    break
                remaining = request.prefill_target - request.prefilled
                take = min(remaining, self.prefill_chunk_tokens, budget)
                if take <= 0:
                    continue
                try:
                    self.kv_cache.extend_sequence(request.request_id, take)
                except KvCacheOutOfMemory:
                    continue  # resume this prefill once decode churn frees blocks
                is_last = request.prefilled + take >= request.prefill_target
                produces = is_last and request.first_token_time_s is None
                chunks.append((request, PrefillChunk(take, request.prefilled, produces)))
                budget -= take

            # ---- admit new requests (skip while this iteration already preempted, so a
            # just-evicted victim cannot immediately reclaim the freed blocks and thrash).
            if preemption_count == preemptions_before_iteration:
                while (
                    waiting
                    and budget > 0
                    and len(running) + len(prefilling) < self.max_batch_size
                ):
                    request = waiting[0]
                    if request.prefill_target <= 0:
                        request.prefill_target = request.prompt_tokens
                    take = min(request.prefill_target, self.prefill_chunk_tokens, budget)
                    if not self.kv_cache.can_admit(take):
                        break
                    waiting.popleft()
                    self.kv_cache.add_sequence(request.request_id, 0)
                    self.kv_cache.extend_sequence(request.request_id, take)
                    prefilling.append(request)
                    is_last = take >= request.prefill_target
                    produces = is_last and request.first_token_time_s is None
                    chunks.append((request, PrefillChunk(take, 0, produces)))
                    budget -= take

            if decode_batch == 0 and not chunks:
                # Every resident prefill is blocked on KV with nothing decoding: evict the
                # latest arrival so the earliest can make progress (bounded by residents).
                if prefilling or running:
                    if preempt_one():
                        continue
                raise RuntimeError("scheduler made no progress")  # pragma: no cover

            # ---- one mixed iteration: ragged decode + prefill chunks in one forward pass.
            clock += self.engine.mixed_step_time(contexts, [c for _, c in chunks])
            num_iterations += 1
            chunk_count += len(chunks)

            # ---- decode bookkeeping: every running sequence emitted one token.
            still_running: List[Request] = []
            for request in running:
                request.generated += 1
                generated_tokens += 1
                if request.finished:
                    request.completion_time_s = clock
                    self.kv_cache.free_sequence(request.request_id)
                    completed.append(request)
                else:
                    still_running.append(request)
            running = still_running

            # ---- prefill bookkeeping: advance chunks; completed prefills start decoding.
            for request, chunk in chunks:
                request.prefilled += chunk.tokens
                if request.prefilled < request.prefill_target:
                    continue
                prefilling.remove(request)
                if chunk.produces_token:
                    request.first_token_time_s = clock
                    request.generated += 1
                    generated_tokens += 1
                if request.finished:
                    request.completion_time_s = clock
                    self.kv_cache.free_sequence(request.request_id)
                    completed.append(request)
                else:
                    running.append(request)

            peak_batch = max(peak_batch, decode_batch + len(chunks))
            peak_util = max(peak_util, self.kv_cache.utilization())

        # Snapshot the requests: run() resets/rewrites the caller's objects on a re-run, and
        # the stats (and their slo_report()) must keep describing *this* run afterwards.
        snapshot = [copy.copy(r) for r in completed]
        summary = compute_slo_report(snapshot, makespan_s=clock)
        return SchedulerStats(
            simulated_time_s=clock,
            completed_requests=len(snapshot),
            generated_tokens=generated_tokens,
            mean_ttft_s=summary.mean_ttft_s,
            mean_latency_s=summary.mean_latency_s,
            peak_batch_size=peak_batch,
            peak_kv_utilization=peak_util,
            p50_ttft_s=summary.p50_ttft_s,
            p99_ttft_s=summary.p99_ttft_s,
            mean_tpot_s=summary.mean_tpot_s,
            p99_tpot_s=summary.p99_tpot_s,
            preemptions=preemption_count,
            num_iterations=num_iterations,
            prefill_chunks=chunk_count,
            requests=snapshot,
        )
