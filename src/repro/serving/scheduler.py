"""Continuous-batching scheduler simulation (Orca/vLLM-style iteration-level scheduling).

Table 1 uses fixed-length batches, but a production serving system (Section 6) admits and
retires requests continuously, bounded by the paged KV cache.  This module simulates that
behaviour on top of the engine's step-time model: requests arrive with a prompt length and a
target output length, are admitted when KV blocks are available, run decode steps batched
together, and release their blocks on completion.  It is used by the ``llm_serving`` example
and exercises the paged allocator under realistic churn (a good integration-test surface).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .engine import ServingEngine
from .kvcache import KvCacheOutOfMemory, PagedKvCache

__all__ = ["Request", "SchedulerStats", "ContinuousBatchingScheduler"]


@dataclass
class Request:
    """One inference request."""

    request_id: int
    prompt_tokens: int
    output_tokens: int
    arrival_time_s: float = 0.0
    # Filled by the scheduler:
    first_token_time_s: Optional[float] = None
    completion_time_s: Optional[float] = None
    generated: int = 0

    @property
    def finished(self) -> bool:
        return self.generated >= self.output_tokens


@dataclass
class SchedulerStats:
    """Aggregate statistics of one simulation run."""

    simulated_time_s: float
    completed_requests: int
    generated_tokens: int
    mean_ttft_s: float
    mean_latency_s: float
    peak_batch_size: int
    peak_kv_utilization: float

    @property
    def throughput_tokens_per_s(self) -> float:
        if self.simulated_time_s <= 0:
            return 0.0
        return self.generated_tokens / self.simulated_time_s


class ContinuousBatchingScheduler:
    """Iteration-level scheduler over the serving engine's analytic step times."""

    def __init__(self, engine: ServingEngine, max_batch_size: Optional[int] = None):
        self.engine = engine
        config = engine.kv_cache_config()
        if config.memory_budget_bytes <= 0:
            raise KvCacheOutOfMemory("model weights alone exceed the device memory budget")
        self.kv_cache = PagedKvCache(config)
        self.max_batch_size = max_batch_size or engine.system.max_batch_size

    def run(self, requests: Sequence[Request]) -> SchedulerStats:
        """Simulate serving ``requests`` to completion and return aggregate statistics."""
        pending: List[Request] = sorted(requests, key=lambda r: r.arrival_time_s)
        running: List[Request] = []
        clock = 0.0
        completed: List[Request] = []
        generated_tokens = 0
        peak_batch = 0
        peak_util = 0.0

        while pending or running:
            # Admit arrived requests while KV blocks and batch slots remain.
            while pending and pending[0].arrival_time_s <= clock and len(running) < self.max_batch_size:
                request = pending[0]
                if not self.kv_cache.can_admit(request.prompt_tokens + 1):
                    break
                pending.pop(0)
                self.kv_cache.add_sequence(request.request_id, request.prompt_tokens)
                clock += self.engine.prefill_time(1, request.prompt_tokens)
                request.first_token_time_s = clock
                running.append(request)

            if not running:
                # Idle until the next arrival.
                clock = max(clock, pending[0].arrival_time_s)
                continue

            # One decode iteration for the whole running batch.
            batch = len(running)
            peak_batch = max(peak_batch, batch)
            context = max(
                self.kv_cache.sequence(r.request_id).num_tokens for r in running
            )
            clock += self.engine.decode_step_time(batch, max(1, context))
            still_running: List[Request] = []
            for request in running:
                self.kv_cache.append_token(request.request_id)
                request.generated += 1
                generated_tokens += 1
                if request.finished:
                    request.completion_time_s = clock
                    self.kv_cache.free_sequence(request.request_id)
                    completed.append(request)
                else:
                    still_running.append(request)
            running = still_running
            peak_util = max(peak_util, self.kv_cache.utilization())

        ttfts = [r.first_token_time_s - r.arrival_time_s for r in completed
                 if r.first_token_time_s is not None]
        latencies = [r.completion_time_s - r.arrival_time_s for r in completed
                     if r.completion_time_s is not None]
        return SchedulerStats(
            simulated_time_s=clock,
            completed_requests=len(completed),
            generated_tokens=generated_tokens,
            mean_ttft_s=sum(ttfts) / len(ttfts) if ttfts else 0.0,
            mean_latency_s=sum(latencies) / len(latencies) if latencies else 0.0,
            peak_batch_size=peak_batch,
            peak_kv_utilization=peak_util,
        )
