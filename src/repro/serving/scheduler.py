"""Request-level continuous-batching simulation (Orca/vLLM-style iteration scheduling).

Table 1 uses fixed-length batches, but a production serving system admits and retires
requests continuously, bounded by the paged KV cache.  This module simulates that behaviour
on top of the engine's *ragged* step-time model as an event-driven loop over scheduler
iterations:

* **Mixed iterations** — every iteration packs one decode token per running sequence plus
  chunked-prefill tokens from admitting requests into a single ragged forward pass, under an
  iteration token budget (the vLLM ``max_num_batched_tokens`` knob).  A long prompt therefore
  never stalls running decodes for a full serial prefill (Sarathi-style chunked prefill).
* **Per-sequence attention accounting** — decode attention is charged at each sequence's own
  cached context length via :meth:`ServingEngine.mixed_step_time`, not at the batch maximum.
* **Policy-driven preemption** — when the paged KV pool runs dry mid-decode the scheduler
  evicts the lowest-priority resident (per the scheduling policy) and the
  :class:`~repro.serving.policies.PreemptionPolicy` decides what happens to its KV state:
  *recompute* (free the blocks, re-prefill prompt + already-emitted tokens later) or *swap*
  (move the blocks to a bounded host-memory pool over the PCIe link and restore them once
  device blocks free up, paying the transfer time instead of the re-prefill).
  :class:`KvCacheOutOfMemory` never propagates out of :meth:`run`.
* **Policy-keyed admission heap** — pending arrivals sit in a min-heap keyed by arrival
  time; admitted-but-waiting requests sit in a second heap keyed by the pluggable
  :class:`~repro.serving.policies.SchedulingPolicy` (FCFS, priority, SJF, max-min fairness).

The scheduler is *steppable*: :meth:`ContinuousBatchingScheduler.begin` /
:meth:`~ContinuousBatchingScheduler.submit` / :meth:`~ContinuousBatchingScheduler.step`
expose one replica's event loop to an outer driver, which is how
:class:`~repro.serving.cluster.ServingCluster` advances N replicas on a shared virtual
clock (and how disaggregated prefill/decode hands sequences between replicas via
:meth:`~ContinuousBatchingScheduler.submit_resumed`).  :meth:`run` is the single-replica
convenience loop built on exactly that machinery.

Per-request timestamps (arrival, first scheduled, first token, completion, preemptions) are
recorded so SLO metrics (p50/p99 TTFT, TPOT, goodput — :mod:`repro.serving.metrics`) can be
computed on top.
"""

from __future__ import annotations

import copy
import dataclasses
import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from typing import TYPE_CHECKING

from .engine import PrefillChunk, ServingEngine, peak_resident_tokens
from .kvcache import KvCacheOutOfMemory, PagedKvCache, SequenceState
from .metrics import SloReport, SloSpec, compute_slo_report
from .prefixcache import PrefixCache
from .policies import (
    PreemptionPolicy,
    SchedulingPolicy,
    get_preemption_policy,
    get_scheduling_policy,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only import, keeps serving decoupled
    from ..telemetry.tracer import Tracer

__all__ = ["Request", "SchedulerStats", "ContinuousBatchingScheduler"]


@dataclass(eq=False, slots=True)
class Request:
    """One inference request.

    Requests are mutable identity-bearing objects the scheduler tracks through queues, so
    equality is *identity* (``eq=False``): membership tests against the resident lists must
    never walk every field of every request per comparison.  ``slots=True`` cuts the
    per-request memory and attribute-access cost on the million-request traces the
    simulator targets; compare requests field-by-field where value equality is needed.
    """

    request_id: int
    prompt_tokens: int
    output_tokens: int
    arrival_time_s: float = 0.0
    #: Scheduling priority (higher = more important); only the 'priority' policy reads it.
    priority: int = 0
    #: Prefix-sharing namespace (trace-owned, stable across :func:`merge_traces`): only
    #: requests with equal ``prefix_group`` can share cached prefix blocks.  ``None``
    #: is itself a namespace, so single-tenant traces need not pick a group id.
    prefix_group: Optional[int] = None
    #: Ordered ``(segment_id, num_tokens)`` pairs describing the shareable *head* of the
    #: prompt (system prompt, RAG template, tool transcript...).  Two requests share
    #: exactly as many leading tokens as their segment streams agree on; the remainder of
    #: the prompt (beyond ``sum(num_tokens)``) is private.  Trace-owned: never reset.
    prefix_segments: Tuple[Tuple[int, int], ...] = ()
    # Filled by the scheduler:
    first_scheduled_time_s: Optional[float] = None
    first_token_time_s: Optional[float] = None
    completion_time_s: Optional[float] = None
    generated: int = 0
    preemptions: int = 0
    # Prefill progress of the current pass (recompute restarts it over prompt + emitted):
    prefilled: int = 0
    prefill_target: int = 0
    #: Tokens of the current pass served from the prefix cache instead of prefill
    #: (fork-on-admit).  Counted inside ``prefilled`` — it is prefill work *skipped*.
    cached_prefix_tokens: int = 0
    #: Non-zero on a sequence migrated between replicas (disaggregated prefill/decode): the
    #: KV tokens that arrive by interconnect DMA instead of local prefill.  The transfer is
    #: charged by the cluster; admission here only needs the blocks.
    imported_kv_tokens: int = 0

    @property
    def finished(self) -> bool:
        return self.generated >= self.output_tokens

    @property
    def decoding(self) -> bool:
        """True once the current prefill pass is complete (the request emits decode tokens)."""
        return bool(self.prefill_target) and self.prefilled >= self.prefill_target

    @property
    def shareable_prefix_tokens(self) -> int:
        """Length of the shareable prompt head described by :attr:`prefix_segments`."""
        return sum(tokens for _, tokens in self.prefix_segments)

    def remaining_tokens(self) -> int:
        """Tokens of work left (prefill positions still to cache + tokens still to emit)."""
        target = self.prefill_target or self.prompt_tokens
        return max(0, target - self.prefilled) + max(0, self.output_tokens - self.generated)

    def reset_scheduler_state(self) -> None:
        """Clear every scheduler-owned field, making the request safe to (re-)submit.

        The single authority on what the scheduler owns: both the scheduler's
        :meth:`~ContinuousBatchingScheduler.submit` and the cluster's merge-target reset
        call this, so a new field can never be reset in one place and leak in the other.
        """
        self.first_scheduled_time_s = None
        self.first_token_time_s = None
        self.completion_time_s = None
        self.generated = 0
        self.preemptions = 0
        self.prefilled = 0
        self.prefill_target = 0
        self.cached_prefix_tokens = 0
        self.imported_kv_tokens = 0


@dataclass
class SchedulerStats:
    """Aggregate statistics of one simulation run."""

    simulated_time_s: float
    completed_requests: int
    generated_tokens: int
    mean_ttft_s: float
    mean_latency_s: float
    peak_batch_size: int
    peak_kv_utilization: float
    # Request-level extensions (defaults keep older call sites working):
    p50_ttft_s: float = 0.0
    p99_ttft_s: float = 0.0
    mean_tpot_s: float = 0.0
    p99_tpot_s: float = 0.0
    preemptions: int = 0
    num_iterations: int = 0
    prefill_chunks: int = 0
    # Swap-based preemption accounting:
    swap_preemptions: int = 0
    recompute_preemptions: int = 0
    # Preemption *reason* accounting: every live preemption is either KV pressure
    # (a decode-slot allocation failed mid-iteration) or a policy victim (the stall
    # path evicted the lowest-priority resident so others could progress), so
    # ``preemptions == preemptions_kv_pressure + preemptions_policy_victim``.
    # Pressure events absorbed by evicting idle prefix-cache blocks preempt nobody
    # and are counted separately.  That avert counter is a *code-path diagnostic*, not
    # a trajectory invariant: stepwise and fast-forward runs reach bit-identical KV /
    # cache / request state, but may group the very same evicted blocks into a
    # different number of pressure events (one big admission-loop evict vs an averted
    # preemption plus a small one), so it is excluded from the fast-forward
    # equivalence contract via field metadata.
    preemptions_kv_pressure: int = 0
    preemptions_policy_victim: int = 0
    preemptions_averted_by_cache: int = field(
        default=0, metadata={"fast_forward_invariant": False}
    )
    swap_ins: int = 0
    kv_transfer_s: float = 0.0
    peak_host_kv_utilization: float = 0.0
    # Prefix-cache accounting (all zero when prefix caching is disabled):
    prefix_cache_hits: int = 0
    prefix_cache_misses: int = 0
    prefix_saved_tokens: int = 0
    prefix_blocks_inserted: int = 0
    prefix_blocks_evicted: int = 0
    prefix_cached_blocks: int = 0
    requests: List[Request] = field(default_factory=list)

    @property
    def throughput_tokens_per_s(self) -> float:
        if self.simulated_time_s <= 0:
            return 0.0
        return self.generated_tokens / self.simulated_time_s

    @property
    def prefix_hit_rate(self) -> float:
        """Fraction of admission lookups that found a cached prefix."""
        lookups = self.prefix_cache_hits + self.prefix_cache_misses
        return self.prefix_cache_hits / lookups if lookups else 0.0

    def slo_report(self, slo: Optional[SloSpec] = None) -> SloReport:
        """SLO attainment / goodput of the completed requests of this run."""
        return compute_slo_report(self.requests, slo, makespan_s=self.simulated_time_s)


class ContinuousBatchingScheduler:
    """Iteration-level scheduler over the serving engine's ragged step-time model.

    ``scheduling_policy`` orders admission (and victim selection); ``preemption_policy``
    chooses swap vs. recompute per victim.  ``kv_budget_bytes`` / ``host_kv_budget_bytes``
    override the engine-derived device pool and the system profile's host swap pool — the
    knobs for KV-pressure studies.  ``overlap_swap_transfers`` overlaps KV swap traffic with
    compute: an iteration is charged ``max(step_compute, pending_transfers)`` instead of
    their sum (the serialized model), matching runtimes that issue swap DMAs on a side
    stream.

    Two driving modes share one core:

    * :meth:`run` — the classic batch API: feed a whole trace, get :class:`SchedulerStats`.
    * :meth:`begin` / :meth:`submit` / :meth:`step` / :meth:`stats` — the steppable API a
      cluster driver uses to interleave this replica with others on a shared virtual clock.
      :meth:`submit_resumed` admits a sequence migrated from another replica (its KV arrives
      by interconnect transfer, its timestamps are preserved).
    """

    def __init__(
        self,
        engine: ServingEngine,
        max_batch_size: Optional[int] = None,
        max_batched_tokens: Optional[int] = None,
        prefill_chunk_tokens: int = 256,
        scheduling_policy: Union[str, SchedulingPolicy] = "fcfs",
        preemption_policy: Union[str, PreemptionPolicy] = "recompute",
        kv_budget_bytes: Optional[int] = None,
        host_kv_budget_bytes: Optional[int] = None,
        overlap_swap_transfers: bool = False,
        fast_forward: bool = True,
        prefix_caching: bool = False,
        tracer: Optional["Tracer"] = None,
        trace_replica: int = 0,
    ):
        self.engine = engine
        if not engine.supported:
            raise ValueError(
                f"system {engine.system.name!r} does not support model {engine.model.name!r}"
            )
        config = engine.kv_cache_config()
        if kv_budget_bytes is not None and kv_budget_bytes <= 0:
            raise ValueError("kv_budget_bytes must be positive")
        if host_kv_budget_bytes is not None and host_kv_budget_bytes < 0:
            raise ValueError("host_kv_budget_bytes must be non-negative")
        if kv_budget_bytes is not None or host_kv_budget_bytes is not None:
            config = dataclasses.replace(
                config,
                memory_budget_bytes=(
                    kv_budget_bytes if kv_budget_bytes is not None
                    else config.memory_budget_bytes
                ),
                host_memory_budget_bytes=(
                    host_kv_budget_bytes if host_kv_budget_bytes is not None
                    else config.host_memory_budget_bytes
                ),
            )
        if config.memory_budget_bytes <= 0:
            raise KvCacheOutOfMemory("model weights alone exceed the device memory budget")
        if prefill_chunk_tokens < 1:
            raise ValueError("prefill_chunk_tokens must be positive")
        self.kv_cache = PagedKvCache(config)
        self.max_batch_size = max_batch_size or engine.system.max_batch_size
        self.max_batched_tokens = max_batched_tokens or engine.system.max_batched_tokens
        self.prefill_chunk_tokens = min(prefill_chunk_tokens, self.max_batched_tokens)
        self.scheduling_policy = get_scheduling_policy(scheduling_policy)
        self.preemption_policy = get_preemption_policy(preemption_policy)
        self.overlap_swap_transfers = overlap_swap_transfers
        #: Radix-tree prefix caching (fork-on-admit): admission looks up the longest
        #: cached prefix of each request's ``prefix_segments`` and seeds the sequence
        #: with the matching blocks, prefilling only the uncached suffix.
        self.prefix_caching = prefix_caching
        #: Analytic decode fast-forward: :meth:`run` (and the cluster driver) may advance a
        #: steady decode-only phase in one closed-form jump instead of looping
        #: :meth:`step`.  Bit-identical either way — the flag exists for equivalence tests
        #: and for callers that want to drive every iteration explicitly.
        self.fast_forward_enabled = fast_forward
        #: Optional telemetry sink.  ``None`` is the null tracer: every hook below is a
        #: single ``is not None`` guard, so tracing off adds no work to the hot paths
        #: and a traced run is bit-identical to an untraced one (purely observational).
        self._tracer = tracer
        self._trace_replica = trace_replica
        if tracer is not None:
            tracer.attach_engine(engine)
        self.begin()

    # ------------------------------------------------------------------ internals
    def _check_servable(self, request: Request) -> None:
        if request.prompt_tokens < 1 or request.output_tokens < 1:
            raise ValueError(
                f"request {request.request_id}: prompt_tokens and output_tokens must be >= 1"
            )
        if request.prefix_segments:
            shareable = 0
            for _, seg_tokens in request.prefix_segments:
                if seg_tokens < 1:
                    raise ValueError(
                        f"request {request.request_id}: prefix segments need >= 1 token"
                    )
                shareable += seg_tokens
            if shareable > request.prompt_tokens:
                raise ValueError(
                    f"request {request.request_id}: prefix segments cover {shareable} "
                    f"tokens but the prompt has only {request.prompt_tokens}"
                )
        peak_tokens = peak_resident_tokens(request.prompt_tokens, request.output_tokens)
        needed = self.kv_cache.config.blocks_for_tokens(peak_tokens)
        if needed > self.kv_cache.config.total_blocks:
            raise ValueError(
                f"request {request.request_id} needs {needed} KV blocks at peak but the pool "
                f"has only {self.kv_cache.config.total_blocks}; it can never be scheduled"
            )

    @staticmethod
    def _resume_tokens(victim: Request) -> int:
        """Cached tokens the victim needs to resume exactly where it stopped.

        A decoding victim resumes at ``prompt + generated - 1`` (the newest token's KV was
        never written); a mid-prefill victim resumes at its prefill progress.  A victim that
        already reserved this iteration's decode slot holds one extra token, which the swap
        path truncates away before the transfer.
        """
        if victim.decoding:
            return victim.prompt_tokens + max(0, victim.generated - 1)
        return victim.prefilled

    def _pick_victim(self, exclude: Optional[Request] = None) -> Optional[Request]:
        """Lowest-priority resident request per the scheduling policy (FCFS: latest arrival).

        Under a swap-leaning preemption policy, residents whose blocks are shared (a fork,
        or a prefix-cache seed) are skipped while an unshared candidate exists: a shared
        victim can never swap (``swap_out`` refuses to split a fork) and would silently
        degrade to recompute, wasting the policy's host pool.  With every candidate
        shared, selection falls back to the policy's normal choice and the degrade path
        recompute-preempts it — the ValueError can never escape.
        """
        candidates = [r for r in self._prefilling + self._running if r is not exclude]
        if not candidates:
            return None
        if self.preemption_policy.prefers_swap:
            unshared = [
                r for r in candidates if not self.kv_cache.shares_blocks(r.request_id)
            ]
            if unshared:
                candidates = unshared
        return self.scheduling_policy.select_victim(candidates)

    # ------------------------------------------------------------------ steppable session
    def begin(self, clock: float = 0.0) -> None:
        """Start a fresh steppable session at virtual time ``clock``.

        Resets every piece of per-run scheduler state (queues, counters, peaks).  The KV
        pool itself is kept — a completed session drains it of live sequences, and tests
        are free to replace :attr:`kv_cache` before the first :meth:`submit`.  The prefix
        cache is rebuilt empty: its held blocks are released back to the pool it was
        bound to, so re-running the same trace can never warm-start from a previous
        session's cache (A/B runs must not leak state).
        """
        previous_cache = getattr(self, "prefix_cache", None)
        if previous_cache is not None:
            previous_cache.reset()
        self.prefix_cache: Optional[PrefixCache] = (
            PrefixCache(self.kv_cache) if self.prefix_caching else None
        )
        tracer = getattr(self, "_tracer", None)
        if tracer is not None:
            clock_fn = lambda: self._clock  # noqa: E731 - bound late, reads live clock
            self.kv_cache.bind_tracer(tracer, self._trace_replica, clock_fn)
            if self.prefix_cache is not None:
                self.prefix_cache.bind_tracer(tracer, self._trace_replica, clock_fn)
        self._waiting: List[Tuple[Tuple, int, Request]] = []
        self._imported: List[Tuple[Tuple, int, Request]] = []
        self._push_counter = 0
        self._prefilling: List[Request] = []
        self._running: List[Request] = []
        self._swapped: List[Request] = []
        self._completed: List[Request] = []
        self._newly_completed: List[Request] = []
        self._clock = clock
        self._pending_transfer_s = 0.0
        self._generated_tokens = 0
        self._outstanding_tokens = 0
        self._peak_batch = 0
        self._peak_util = 0.0
        self._peak_host_util = 0.0
        self._preemption_count = 0
        self._kv_pressure_count = 0
        self._policy_victim_count = 0
        self._cache_averted_count = 0
        self._swap_count = 0
        self._recompute_count = 0
        self._swap_in_count = 0
        self._transfer_s_total = 0.0
        self._num_iterations = 0
        self._chunk_count = 0
        self._next_sample_s = clock

    @property
    def clock(self) -> float:
        """The replica's local virtual time (end of its last iteration)."""
        return self._clock

    @property
    def has_work(self) -> bool:
        """True while any request is queued, resident, swapped out, or awaiting KV import."""
        return bool(
            self._waiting or self._imported or self._prefilling
            or self._running or self._swapped
        )

    # ---- load metrics read by router policies (cheap, side-effect free).
    @property
    def outstanding_tokens(self) -> int:
        """Total tokens of work queued or in flight on this replica.

        Maintained incrementally on submit / step / preempt / finish, so a cluster router
        polling every replica per dispatch costs O(replicas), not O(resident requests).
        """
        return self._outstanding_tokens

    def _outstanding_tokens_scan(self) -> int:
        """O(n) recount of :attr:`outstanding_tokens` — the invariant tests pin the
        incremental counter against."""
        queues = (
            [r for _, _, r in self._waiting],
            [r for _, _, r in self._imported],
            self._prefilling,
            self._running,
            self._swapped,
        )
        return sum(r.remaining_tokens() for queue in queues for r in queue)

    @property
    def kv_load(self) -> float:
        """Device KV-pool utilization in [0, 1]."""
        return self.kv_cache.utilization()

    @property
    def num_resident(self) -> int:
        return len(self._prefilling) + len(self._running)

    @property
    def queue_depth(self) -> int:
        return len(self._waiting) + len(self._imported)

    def submit(self, request: Request, now: Optional[float] = None) -> None:
        """Enqueue a fresh request, resetting any scheduler-owned state it carries.

        ``now`` is the submission time: an idle replica's clock jumps forward to it (a busy
        replica's clock is already past it — the request waits for the next iteration).
        """
        self._check_servable(request)
        request.reset_scheduler_state()
        if now is not None:
            self._clock = max(self._clock, now)
        self._outstanding_tokens += request.remaining_tokens()
        self._push_waiting(request)
        if self._tracer is not None:
            self._tracer.emit(
                "arrive", request.arrival_time_s, replica=self._trace_replica,
                request_id=request.request_id,
                prompt_tokens=request.prompt_tokens,
                output_tokens=request.output_tokens,
            )

    def submit_resumed(self, request: Request, now: Optional[float] = None) -> None:
        """Enqueue a sequence migrated from another replica, preserving its timestamps.

        A request with ``imported_kv_tokens > 0`` resumes decoding as soon as the device
        pool can hold its transferred KV blocks (the interconnect transfer itself is the
        caller's — the cluster's — to charge); anything else re-enters the normal
        policy-keyed admission path and re-prefills locally.
        """
        self._check_servable(request)
        if now is not None:
            self._clock = max(self._clock, now)
        self._outstanding_tokens += request.remaining_tokens()
        if self._tracer is not None:
            # Timestamped at the handoff instant (the migration's end), not the local
            # clock: a busy replica's clock may already be past it, but the request's
            # queue phase starts the moment its KV landed.
            self._tracer.emit(
                "enqueue", now if now is not None else self._clock,
                replica=self._trace_replica, request_id=request.request_id,
                imported_kv_tokens=request.imported_kv_tokens,
            )
        if request.imported_kv_tokens > 0:
            heapq.heappush(
                self._imported,
                (self.scheduling_policy.key(request), self._push_counter, request),
            )
            self._push_counter += 1
        else:
            self._push_waiting(request)

    def drain_completed(self) -> List[Request]:
        """Pop the requests that finished since the last call (cluster handoff hook)."""
        done, self._newly_completed = self._newly_completed, []
        return done

    def stats(self) -> SchedulerStats:
        """Aggregate statistics of the session so far (a pure snapshot — safe across
        re-runs, and polling it mid-session never perturbs the simulation)."""
        # Swap traffic that has not yet found an iteration to hide behind (overlap mode)
        # counts toward the makespan, but stays pending: the next iteration may still
        # absorb it under max(compute, transfers).
        makespan = self._clock + self._pending_transfer_s
        snapshot = [copy.copy(r) for r in self._completed]
        summary = compute_slo_report(snapshot, makespan_s=makespan)
        cache = self.prefix_cache
        return SchedulerStats(
            simulated_time_s=makespan,
            completed_requests=len(snapshot),
            generated_tokens=self._generated_tokens,
            mean_ttft_s=summary.mean_ttft_s,
            mean_latency_s=summary.mean_latency_s,
            peak_batch_size=self._peak_batch,
            peak_kv_utilization=self._peak_util,
            p50_ttft_s=summary.p50_ttft_s,
            p99_ttft_s=summary.p99_ttft_s,
            mean_tpot_s=summary.mean_tpot_s,
            p99_tpot_s=summary.p99_tpot_s,
            preemptions=self._preemption_count,
            num_iterations=self._num_iterations,
            prefill_chunks=self._chunk_count,
            swap_preemptions=self._swap_count,
            recompute_preemptions=self._recompute_count,
            preemptions_kv_pressure=self._kv_pressure_count,
            preemptions_policy_victim=self._policy_victim_count,
            preemptions_averted_by_cache=self._cache_averted_count,
            swap_ins=self._swap_in_count,
            kv_transfer_s=self._transfer_s_total,
            peak_host_kv_utilization=self._peak_host_util,
            prefix_cache_hits=cache.hits if cache is not None else 0,
            prefix_cache_misses=cache.misses if cache is not None else 0,
            prefix_saved_tokens=cache.saved_tokens if cache is not None else 0,
            prefix_blocks_inserted=cache.inserted_blocks if cache is not None else 0,
            prefix_blocks_evicted=cache.evicted_blocks if cache is not None else 0,
            prefix_cached_blocks=cache.num_blocks if cache is not None else 0,
            requests=snapshot,
        )

    # ------------------------------------------------------------------ step internals
    def _admission_plan(self, request: Request, budget_left: int) -> Tuple[List[int], int]:
        """The ``(cached_blocks, first_chunk_tokens)`` admission would use right now.

        Shared by the admission loop and the fast-forward parked-queue proof so the two
        can never disagree on what admitting the top waiting request entails.  The cached
        match is capped one token short of the prefill target: the admitted request must
        always schedule at least one real chunk (the pass that emits its first token).
        """
        target = (
            request.prefill_target if request.prefill_target > 0 else request.prompt_tokens
        )
        cached_blocks: List[int] = []
        if self.prefix_cache is not None:
            cached_blocks = self.prefix_cache.match_blocks(request, target - 1)
        cached = len(cached_blocks) * self.kv_cache.config.block_tokens
        take = min(target - cached, self.prefill_chunk_tokens, budget_left)
        return cached_blocks, take

    def _push_waiting(self, request: Request) -> None:
        heapq.heappush(
            self._waiting,
            (self.scheduling_policy.key(request), self._push_counter, request),
        )
        self._push_counter += 1

    def _charge_transfer(self, transfer_s: float) -> None:
        """Account one swap transfer: serialize with the clock, or park it for overlap."""
        if self.overlap_swap_transfers:
            self._pending_transfer_s += transfer_s
        else:
            self._clock += transfer_s
        self._transfer_s_total += transfer_s

    def _do_swap_in(self, request: Request) -> None:
        """Restore a swapped sequence to the device pool, charging the transfer."""
        start = self._clock
        transfer = self.engine.kv_transfer_time(self.kv_cache.swap_in(request.request_id))
        self._charge_transfer(transfer)
        self._swap_in_count += 1
        self._swapped.remove(request)
        if request.decoding:
            self._running.append(request)
        else:
            self._prefilling.append(request)
        if self._tracer is not None:
            # end == self._clock is the actual post-charge clock: zero-width in
            # overlap mode (the DMA hides behind compute), start + transfer otherwise.
            self._tracer.emit(
                "swap_in", start, replica=self._trace_replica,
                request_id=request.request_id, end=self._clock,
                to="decode" if request.decoding else "prefill", transfer_s=transfer,
            )

    def _preempt_one(self, exclude: Optional[Request] = None, need_blocks: int = 1,
                     reason: str = "policy_victim") -> bool:
        # Cached-but-idle prefix blocks are reclaimed before any live sequence is
        # preempted: they cost queue-side re-prefill on a future miss, not live work.
        if (
            self.prefix_cache is not None
            and self.prefix_cache.evict(need_blocks) >= need_blocks
        ):
            self._cache_averted_count += 1
            if self._tracer is not None:
                self._tracer.emit(
                    "preempt_averted", self._clock, replica=self._trace_replica,
                    need_blocks=need_blocks, reason=reason,
                )
            return True
        victim = self._pick_victim(exclude)
        if victim is None:
            return False
        if victim in self._prefilling:
            self._prefilling.remove(victim)
        else:
            self._running.remove(victim)
        victim.preemptions += 1
        self._preemption_count += 1
        if reason == "kv_pressure":
            self._kv_pressure_count += 1
        else:
            self._policy_victim_count += 1
        # Drop any decode slot reserved this iteration (its KV is never written)
        # *before* the policy decides, so swap feasibility and the cost comparison see
        # the exact state a swap would transfer.
        self.kv_cache.truncate_sequence(victim.request_id, self._resume_tokens(victim))
        mode = self.preemption_policy.decide(victim, self.engine, self.kv_cache)
        # The no-OOM-escape contract is the scheduler's, not the policy's: a policy
        # (built-in or user-supplied) answering "swap" without host room degrades to
        # recompute instead of letting swap_out raise out of run().
        if mode == PreemptionPolicy.SWAP and not self.kv_cache.can_swap_out(
            victim.request_id
        ):
            mode = PreemptionPolicy.RECOMPUTE
        if mode == PreemptionPolicy.SWAP:
            # Park the blocks in the host pool and charge the PCIe transfer.
            start = self._clock
            transfer = self.engine.kv_transfer_time(
                self.kv_cache.swap_out(victim.request_id)
            )
            self._charge_transfer(transfer)
            self._swap_count += 1
            self._swapped.append(victim)
            self._peak_host_util = max(
                self._peak_host_util, self.kv_cache.host_utilization()
            )
            if self._tracer is not None:
                self._tracer.emit(
                    "preempt", start, replica=self._trace_replica,
                    request_id=victim.request_id, mode="swap", reason=reason,
                )
                self._tracer.emit(
                    "swap_out", start, replica=self._trace_replica,
                    request_id=victim.request_id, end=self._clock, transfer_s=transfer,
                )
        else:
            # Recompute: free the blocks and re-prefill the prompt plus every already-
            # emitted token except the newest (whose KV was never written); emitted
            # tokens themselves are kept — recompute only rebuilds KV.
            self.kv_cache.free_sequence(victim.request_id)
            self._recompute_count += 1
            before = victim.remaining_tokens()
            victim.prefilled = 0
            victim.prefill_target = victim.prompt_tokens + max(0, victim.generated - 1)
            victim.cached_prefix_tokens = 0  # re-admission re-matches the (live) trie
            self._outstanding_tokens += victim.remaining_tokens() - before
            self._push_waiting(victim)
            if self._tracer is not None:
                self._tracer.emit(
                    "preempt", self._clock, replica=self._trace_replica,
                    request_id=victim.request_id, mode="recompute", reason=reason,
                )
        return True

    def _finish(self, request: Request) -> None:
        request.completion_time_s = self._clock
        self.kv_cache.free_sequence(request.request_id)
        self._completed.append(request)
        self._newly_completed.append(request)
        if self._tracer is not None:
            self._tracer.emit(
                "finish", self._clock, replica=self._trace_replica,
                request_id=request.request_id, generated=request.generated,
            )

    def step(self) -> None:
        """Execute one scheduler iteration, advancing the local clock.

        One call performs at most one mixed forward pass; calls that only shuffle KV state
        (preempting a stuck resident, swapping a sequence back in) are allowed to return
        without a pass — :attr:`has_work` tells the driver whether to keep stepping.
        """
        if not self.has_work:
            raise RuntimeError("step() called on an idle scheduler")

        # ---- land migrated sequences whose KV blocks fit (their transfer was already
        # charged by the cluster; the DMA costs no iteration compute).
        while self._imported and self.num_resident < self.max_batch_size:
            request = self._imported[0][2]
            needed = self.kv_cache.config.blocks_for_tokens(request.imported_kv_tokens)
            if needed > self.kv_cache.num_free_blocks:
                break  # wait for decode churn / completions to free device blocks
            heapq.heappop(self._imported)
            self.kv_cache.add_sequence(request.request_id, request.imported_kv_tokens)
            # Landing collapses the request's notional local re-prefill (the full prompt)
            # into already-transferred KV: its remaining work shrinks accordingly.
            before = request.remaining_tokens()
            request.prefilled = request.prefill_target = request.imported_kv_tokens
            self._outstanding_tokens += request.remaining_tokens() - before
            self._running.append(request)
            if self._tracer is not None:
                self._tracer.emit(
                    "admit", self._clock, replica=self._trace_replica,
                    request_id=request.request_id, to="decode",
                    imported_kv_tokens=request.imported_kv_tokens,
                )

        # ---- swap sequences back in while the device pool has headroom: one spare
        # block per running sequence for this iteration's decode slot plus every
        # blocks a resident prefill needs for its next chunk.  Reserving the prefill
        # chunks is what prevents livelock: a swap-in must never reclaim the blocks a
        # no-progress eviction just freed for a blocked prefill.  With zero free blocks
        # no candidate can land (every swapped sequence holds >= 1 block), so the sorted
        # scan is skipped outright.
        if self._swapped and self.kv_cache.num_free_blocks > 0:
            def next_chunk_blocks(r: Request) -> int:
                take = min(r.prefill_target - r.prefilled, self.prefill_chunk_tokens)
                if take <= 0:
                    return 0
                return self.kv_cache.blocks_needed_to_extend(r.request_id, take)

            # Computed once, then updated incrementally as swap-ins land (the only
            # thing that changes the resident set inside this pass).
            headroom = len(self._running) + sum(
                next_chunk_blocks(r) for r in self._prefilling
            )
            for request in sorted(self._swapped, key=self.scheduling_policy.key):
                if self.num_resident >= self.max_batch_size:
                    break
                # A decoding sequence also needs its own slot block this iteration.
                needed = self.kv_cache.swapped_sequence(request.request_id).num_blocks
                if request.decoding:
                    needed += 1
                if needed + headroom > self.kv_cache.num_free_blocks:
                    continue
                self._do_swap_in(request)
                headroom += 1 if request.decoding else next_chunk_blocks(request)

        # ---- reserve one decode slot per running sequence, preempting on exhaustion.
        preemptions_before_iteration = self._preemption_count
        kv = self.kv_cache
        if kv.num_free_blocks >= len(self._running):
            # Ample headroom: each append allocates at most one block, so no reservation
            # can fail and no victim can be evicted — skip the guarded path entirely.
            contexts = []
            for request in self._running:
                state = kv.sequence(request.request_id)
                contexts.append(state.num_tokens)
                kv.extend_state(state, 1)
        else:
            reserved_context: Dict[int, int] = {}
            for request in list(self._running):
                if (
                    self._preemption_count != preemptions_before_iteration
                    and request not in self._running
                ):
                    continue  # evicted while making room for an earlier sequence
                while True:
                    state = kv.sequence(request.request_id)
                    context = state.num_tokens
                    try:
                        kv.extend_state(state, 1)
                        reserved_context[request.request_id] = context
                        break
                    except KvCacheOutOfMemory:
                        if not self._preempt_one(exclude=request,
                                                 reason="kv_pressure"):  # pragma: no cover - guarded
                            raise RuntimeError(
                                "KV pool too small for a single request despite admission guard"
                            )
            # Victims evicted after reserving their slot must not be charged (or decoded).
            contexts = [reserved_context[r.request_id] for r in self._running]
        decode_batch = len(contexts)

        # ---- plan chunked prefill under the iteration token budget.
        budget = max(0, self.max_batched_tokens - decode_batch)
        chunks: List[Tuple[Request, PrefillChunk]] = []
        for request in list(self._prefilling):
            if budget <= 0:
                break
            remaining = request.prefill_target - request.prefilled
            take = min(remaining, self.prefill_chunk_tokens, budget)
            if take <= 0:
                continue
            try:
                self.kv_cache.extend_sequence(request.request_id, take)
            except KvCacheOutOfMemory:
                continue  # resume this prefill once decode churn frees blocks
            is_last = request.prefilled + take >= request.prefill_target
            produces = is_last and request.first_token_time_s is None
            chunks.append((request, PrefillChunk(take, request.prefilled, produces)))
            budget -= take

        # ---- admit new requests (skip while this iteration already preempted, so a
        # just-evicted victim cannot immediately reclaim the freed blocks and thrash).
        # With prefix caching, admission first looks up the longest cached prefix and
        # fork-on-admits the matching blocks, prefilling only the uncached suffix; when
        # the pool cannot fit the suffix chunk, cached-but-idle blocks are evicted
        # before admission gives up.
        if self._preemption_count == preemptions_before_iteration:
            while (
                self._waiting
                and budget > 0
                and self.num_resident < self.max_batch_size
            ):
                request = self._waiting[0][2]
                cached_blocks, take = self._admission_plan(request, budget)
                if not self.kv_cache.can_admit(take):
                    needed = (
                        self.kv_cache.config.blocks_for_tokens(take)
                        - self.kv_cache.num_free_blocks
                    )
                    if (
                        self.prefix_cache is None
                        or self.prefix_cache.evict(needed) < needed
                    ):
                        break
                    continue  # re-plan: eviction may have shrunk this very match
                heapq.heappop(self._waiting)
                if request.prefill_target <= 0:
                    request.prefill_target = request.prompt_tokens
                if request.first_scheduled_time_s is None:
                    request.first_scheduled_time_s = self._clock
                if self._tracer is not None:
                    self._tracer.emit(
                        "admit", self._clock, replica=self._trace_replica,
                        request_id=request.request_id, to="prefill",
                        cached_tokens=(
                            len(cached_blocks) * self.kv_cache.config.block_tokens
                        ),
                    )
                if cached_blocks:
                    cached = len(cached_blocks) * self.kv_cache.config.block_tokens
                    self.kv_cache.fork_from_blocks(request.request_id, cached_blocks)
                    self.prefix_cache.commit_hit(request, len(cached_blocks))
                    before = request.remaining_tokens()
                    request.cached_prefix_tokens = cached
                    request.prefilled = cached
                    self._outstanding_tokens += request.remaining_tokens() - before
                    if self._tracer is not None:
                        self._tracer.emit(
                            "cache_hit", self._clock, replica=self._trace_replica,
                            request_id=request.request_id, tokens=cached,
                            blocks=len(cached_blocks),
                        )
                else:
                    if self.prefix_cache is not None:
                        self.prefix_cache.record_miss()
                    self.kv_cache.add_sequence(request.request_id, 0)
                self.kv_cache.extend_sequence(request.request_id, take)
                self._prefilling.append(request)
                is_last = request.prefilled + take >= request.prefill_target
                produces = is_last and request.first_token_time_s is None
                chunks.append((request, PrefillChunk(take, request.prefilled, produces)))
                budget -= take

        # ---- sample KV pressure at its within-iteration peak: after slot reservation,
        # prefill extension and admission, before decode bookkeeping frees blocks.
        self._peak_util = max(self._peak_util, self.kv_cache.utilization())
        self._peak_host_util = max(self._peak_host_util, self.kv_cache.host_utilization())

        if decode_batch == 0 and not chunks:
            # Every resident prefill is blocked on KV with nothing decoding: evict the
            # lowest-priority resident so the others can make progress.
            if self._prefilling or self._running:
                if self._preempt_one(reason="policy_victim"):
                    return
            if self._swapped:
                # Nothing is resident, so every device block is free or cached-but-idle
                # and any swapped sequence fits once the cache yields (each passed the
                # admission guard, and with no live sequences every cached block is
                # evictable): resume the one the scheduling policy ranks first,
                # preserving its service order.
                candidate = min(self._swapped, key=self.scheduling_policy.key)
                if self.prefix_cache is not None:
                    shortfall = (
                        self.kv_cache.swapped_sequence(candidate.request_id).num_blocks
                        - self.kv_cache.num_free_blocks
                    )
                    if shortfall > 0:
                        self.prefix_cache.evict(shortfall)
                self._do_swap_in(candidate)
                return
            if self._imported:
                # Imported sequences blocked on device blocks with nothing resident can
                # only mean the pool momentarily holds nothing — retry next step.
                return  # pragma: no cover - imports land as soon as blocks free up
            raise RuntimeError("scheduler made no progress")  # pragma: no cover

        # ---- one mixed iteration: ragged decode + prefill chunks in one forward pass.
        compute = self.engine.mixed_step_time(contexts, [c for _, c in chunks])
        # Overlap mode hides swap DMAs behind compute: the iteration takes whichever is
        # longer, never their sum (the serialized model).
        iteration_start = self._clock
        self._clock += max(compute, self._pending_transfer_s)
        self._pending_transfer_s = 0.0
        self._num_iterations += 1
        self._chunk_count += len(chunks)
        if self._tracer is not None and self._tracer.span_events:
            self._tracer.emit(
                "iteration", iteration_start, replica=self._trace_replica,
                end=self._clock, decode_batch=decode_batch, chunks=len(chunks),
            )
            for request, chunk in chunks:
                self._tracer.emit(
                    "chunk_prefill", self._clock, replica=self._trace_replica,
                    request_id=request.request_id, tokens=chunk.tokens,
                )

        # ---- decode bookkeeping: every running sequence emitted one token.
        still_running: List[Request] = []
        self._outstanding_tokens -= len(self._running)
        for request in self._running:
            request.generated += 1
            self._generated_tokens += 1
            if request.finished:
                self._finish(request)
            else:
                still_running.append(request)
        self._running = still_running

        # ---- prefill bookkeeping: advance chunks; completed prefills start decoding.
        for request, chunk in chunks:
            request.prefilled += chunk.tokens
            self._outstanding_tokens -= chunk.tokens
            if request.prefilled < request.prefill_target:
                continue
            self._prefilling.remove(request)
            if self._tracer is not None:
                self._tracer.emit(
                    "decode_start", self._clock, replica=self._trace_replica,
                    request_id=request.request_id, first_token=chunk.produces_token,
                )
            if self.prefix_cache is not None and request.prefix_segments:
                # Publish the completed prefill's shareable prefix (full blocks only).
                # This runs before any completion-time free, so even a request that
                # finishes on its prefill pass (a disaggregated prefill replica's whole
                # population) leaves its prefix behind for the next arrival.
                self.prefix_cache.insert(
                    request, self.kv_cache.sequence(request.request_id).blocks
                )
            if chunk.produces_token:
                request.first_token_time_s = self._clock
                request.generated += 1
                self._generated_tokens += 1
                self._outstanding_tokens -= 1
            if request.finished:
                self._finish(request)
            else:
                self._running.append(request)

        self._peak_batch = max(self._peak_batch, decode_batch + len(chunks))
        if self._tracer is not None:
            self._maybe_sample_counters()

    def _maybe_sample_counters(self) -> None:
        """Record one periodic gauge sample when the clock crossed the next boundary.

        Called (behind the null-tracer guard) at iteration and fast-forward-epoch ends,
        so samples land at the first boundary at or after each ``sample_interval_s``
        multiple — never mid-iteration, and never on the tracer-off hot path.
        """
        tracer = self._tracer
        if self._clock < self._next_sample_s:
            return
        cache = self.prefix_cache
        lookups = (cache.hits + cache.misses) if cache is not None else 0
        tracer.sample(self._trace_replica, self._clock, {
            "queue_depth": float(self.queue_depth),
            "running": float(len(self._running)),
            "prefilling": float(len(self._prefilling)),
            "swapped": float(len(self._swapped)),
            "kv_utilization": self.kv_cache.utilization(),
            "host_kv_utilization": self.kv_cache.host_utilization(),
            "prefix_hit_rate": (cache.hits / lookups) if lookups else 0.0,
            "outstanding_tokens": float(self._outstanding_tokens),
        })
        self._next_sample_s = self._clock + tracer.sample_interval_s

    # ------------------------------------------------------------------ fast-forward
    @property
    def in_steady_decode(self) -> bool:
        """True when the next iterations are pure ragged decode over a fixed batch.

        That is the state analytic fast-forward can advance in closed form: no pending
        admission, prefill, import, or swap work, no parked overlap transfer, and the KV
        pool holding exactly the running sequences (a replaced pool with foreign residents
        falls back to stepwise execution).  Fast-forward itself accepts a broader state —
        waiting / imported / swapped requests are fine as long as they are *provably
        parked* for the whole jump (see :meth:`_admission_parked` and friends) — this
        strict property is the classic steady-state probe tests and callers rely on.
        """
        return bool(
            self._running
            and not self._waiting
            and not self._imported
            and not self._prefilling
            and not self._swapped
            and self._pending_transfer_s == 0.0
            and self.kv_cache.num_sequences == len(self._running)
        )

    # ---- parked-queue proofs: a queued request only becomes schedulable through more
    # free KV blocks, a smaller resident set, or leftover token budget.  Inside one
    # no-completion fast-forward segment the resident set and the iteration budget are
    # frozen and free blocks only shrink, so "blocked now" implies "blocked for the whole
    # segment" — the monotonicity every check below leans on.
    def _admission_parked(self, budget_left: int) -> bool:
        """True when the admission loop could not admit the top waiting request now
        (and, by monotonicity, not at any later iteration of a pinned segment).

        With prefix caching the check mirrors admission exactly via
        :meth:`_admission_plan` — same cached match, same suffix chunk — and adds the
        eviction escape hatch: a blocked admission that stepwise ``step()`` would
        unblock by evicting idle cached blocks is *not* parked.  Monotonicity holds
        because the trie is structurally frozen inside a pinned segment (insert happens
        only at prefill completions, evict only in ``step()``'s pressure paths, hits
        only at admissions — all segment-enders) and cached blocks' reference counts
        can only change at completions, which also end segments.
        """
        if not self._waiting:
            return True
        if budget_left <= 0 or self.num_resident >= self.max_batch_size:
            return True
        request = self._waiting[0][2]
        _, take = self._admission_plan(request, budget_left)
        if self.kv_cache.can_admit(take):
            return False
        if self.prefix_cache is not None:
            needed = (
                self.kv_cache.config.blocks_for_tokens(take)
                - self.kv_cache.num_free_blocks
            )
            if self.prefix_cache.can_free(needed):
                return False
        return True

    def _imports_parked(self) -> bool:
        """True when the top imported sequence cannot land its KV blocks now (nor later
        in a pinned segment: free blocks only shrink, the resident count is frozen)."""
        if not self._imported:
            return True
        if self.num_resident >= self.max_batch_size:
            return True
        request = self._imported[0][2]
        needed = self.kv_cache.config.blocks_for_tokens(request.imported_kv_tokens)
        return needed > self.kv_cache.num_free_blocks

    def _swap_ins_parked(self) -> bool:
        """True when no swapped-out sequence can return to the device pool now.

        The proof compares every candidate against the swap-in headroom *floor* — one
        slot block per running sequence — at the segment's starting free-block count.
        With no resident prefills (the decode-only fast path) that floor is exactly the
        scan's headroom, and both sides are frozen for a pinned segment while free
        blocks only shrink: blocked stays blocked.  With resident prefills (the mixed
        fast path) the scan's real headroom additionally reserves each prefill's next
        chunk and thus never drops below the floor, so a candidate that cannot land at
        the floor can never land inside the epoch either; one that could is answered
        with "not parked" and the phase runs stepwise (a conservative miss, never a
        wrong jump).
        """
        if not self._swapped:
            return True
        kv = self.kv_cache
        free = kv.num_free_blocks
        if free <= 0:
            return True
        if self.num_resident >= self.max_batch_size:
            return True
        headroom = len(self._running)
        for request in self._swapped:
            needed = kv.swapped_sequence(request.request_id).num_blocks
            if request.decoding:
                needed += 1
            if needed + headroom <= free:
                return False
        return True

    def fast_forward(self, stop_before: Optional[float] = None) -> int:
        """Advance a deterministic phase in one closed-form jump.

        Two phase shapes are handled, covering both ends of the serving spectrum:

        * **steady decode** — every resident request is decoding
          (:meth:`_fast_forward_decode`): jump to the next completion, KV exhaustion or
          the driver's horizon, chaining through completions;
        * **pinned mixed prefill+decode** — resident prefills advance by a frozen chunk
          schedule alongside the decode batch (:meth:`_fast_forward_mixed`): jump to the
          first composition-changing iteration (a prefill completion / first-token
          emission, a decode completion, a KV allocation that cannot be satisfied, or the
          horizon).

        Queued-but-parked work (waiting arrivals, un-landed imports, swapped-out
        sequences) no longer forces stepwise execution: the jump proceeds whenever the
        queues provably cannot make progress before its end (see the ``_parked`` checks).

        ``stop_before`` is the driver's horizon (the next arrival / cluster event): only
        iterations *starting* strictly before it may run, matching the stepwise drivers.
        Bit-identical to calling :meth:`step` the same number of times — per-iteration
        costs come from the same (memoized or elementwise-identical vectorized) closed
        forms, and the clock is accumulated by the same sequential float additions
        (``np.cumsum``).

        Returns the number of iterations advanced; 0 means the caller must take the
        stepwise path (the next iteration changes state in a way only :meth:`step`
        handles: admission, preemption, swaps, prefill completions, ...).
        """
        if not self.fast_forward_enabled:
            return 0
        if self._prefilling:
            return self._fast_forward_mixed(stop_before)
        return self._fast_forward_decode(stop_before)

    def _fast_forward_decode(self, stop_before: Optional[float]) -> int:
        """Closed-form jump through a (possibly parked-queue) steady decode phase."""
        if (
            not self._running
            or self._pending_transfer_s != 0.0
            or self.kv_cache.num_sequences != len(self._running)
        ):
            return 0
        queued = bool(self._waiting or self._imported or self._swapped)
        if queued and not (
            self._admission_parked(max(0, self.max_batched_tokens - len(self._running)))
            and self._imports_parked()
            and self._swap_ins_parked()
        ):
            return 0
        kv = self.kv_cache
        block_tokens = kv.config.block_tokens
        advanced = 0
        # One call chains through *every* decode-only segment up to the horizon: a
        # completion shrinks the batch but leaves the phase steady, so the loop re-plans
        # with the survivors instead of bouncing back through the driver per finisher.
        while self._running:
            if stop_before is not None and not self._clock < stop_before:
                break
            running = self._running
            batch = len(running)
            states = [kv.sequence(r.request_id) for r in running]

            # ---- completion horizon: the k-th iteration emits the earliest finisher's
            # last token; no request can leave the batch before that.
            k = min(r.output_tokens - r.generated for r in running)

            # ---- KV horizon: growing every sequence by k tokens must fit the free pool
            # (block-boundary crossings are the only allocations while decoding).  A
            # cheap worst-case bound (every sequence one boundary past ceil(k/bt))
            # usually proves the pool is ample without touching the per-sequence counts.
            free_blocks = kv.num_free_blocks
            if batch * ((k + block_tokens - 1) // block_tokens + 1) > free_blocks:
                contexts = np.array([s.num_tokens for s in states], dtype=np.int64)
                held_blocks = np.array([s.num_blocks for s in states], dtype=np.int64)

                def blocks_demanded(iterations: int) -> int:
                    grown = (contexts + iterations + block_tokens - 1) // block_tokens
                    return int(np.maximum(grown - held_blocks, 0).sum())

                if blocks_demanded(k) > free_blocks:
                    lo, hi = 0, k  # invariant: demand(lo) <= free < demand(hi)
                    if blocks_demanded(0) > free_blocks:  # pragma: no cover - defensive
                        break
                    while hi - lo > 1:
                        mid = (lo + hi) // 2
                        if blocks_demanded(mid) <= free_blocks:
                            lo = mid
                        else:
                            hi = mid
                    k = lo
                    if k == 0:
                        break  # next allocation OOMs: step() runs the preemption path

            # ---- price iterations 1..k (iteration i sums context T0 + (i-1)*batch)
            # and find where the running clock crosses stop_before: only iterations
            # *starting* strictly before it may run (the stepwise drivers hand control
            # back the moment the clock reaches the horizon).  Both paths accumulate
            # the clock by the same sequential float additions as stepwise `step()`;
            # short segments stay scalar (and feed the memo cache), long ones go
            # through one vectorized evaluation + cumsum.
            total0 = sum(s.num_tokens for s in states)
            completes = True
            if k <= 16:
                engine = self.engine
                clock = self._clock
                done = 0
                while done < k:
                    if stop_before is not None and not clock < stop_before:
                        completes = False
                        break
                    clock += engine.decode_iteration_time(
                        batch, total0 + done * batch
                    )
                    done += 1
                k = done
                if k == 0:
                    break  # pragma: no cover - guarded by the entry clock check
                new_clock = clock
            else:
                totals = total0 + np.arange(k, dtype=np.int64) * batch
                times = self.engine.decode_iteration_times(batch, totals)
                clocks = np.cumsum(np.concatenate(([self._clock], times)))
                if stop_before is not None:
                    cut = int(np.searchsorted(clocks[:k], stop_before, side="left"))
                    if cut < k:
                        k, completes = cut, False
                new_clock = float(clocks[k])

            # ---- apply: grow KV, advance the clock, emit k tokens per sequence,
            # retire finishers — the same end state k stepwise iterations leave behind.
            kv.grow_states(states, k)
            self._peak_util = max(self._peak_util, kv.utilization())
            self._peak_host_util = max(self._peak_host_util, kv.host_utilization())
            self._peak_batch = max(self._peak_batch, batch)
            segment_start = self._clock
            self._clock = new_clock
            self._num_iterations += k
            self._generated_tokens += k * batch
            self._outstanding_tokens -= k * batch
            advanced += k
            if self._tracer is not None:
                # The fast-forwarded jump is recorded as one synthesized epoch span
                # with its closed-form duration — the timeline shows the same wall
                # clock a stepwise run would, at segment granularity.
                if self._tracer.span_events:
                    self._tracer.emit(
                        "ff_decode", segment_start, replica=self._trace_replica,
                        end=new_clock, iterations=k, batch=batch,
                    )
                self._maybe_sample_counters()
            if completes:
                still_running: List[Request] = []
                for request in running:
                    request.generated += k
                    if request.finished:
                        self._finish(request)
                    else:
                        still_running.append(request)
                self._running = still_running
                if queued:
                    # Completions freed blocks and shrank the batch: a parked queue may
                    # now make progress, so hand the next iteration back to step().
                    break
            else:
                for request in running:
                    request.generated += k
                break  # horizon reached mid-segment: nothing finished, hand back
        return advanced

    def _fast_forward_mixed(self, stop_before: Optional[float]) -> int:
        """Closed-form jump through one pinned mixed prefill+decode epoch.

        With the resident set frozen, :meth:`step`'s chunk-budget walk is fully
        deterministic: every resident prefill receives the *same* chunk size each
        iteration (its remaining prompt shrinks by it, its cached prefix grows by it) and
        every running sequence decodes one token.  The epoch runs until the first
        iteration that would change the composition — a chunk that completes its prompt
        (first-token emission), a decode completion, an admission / import / swap-in
        becoming feasible, a KV allocation the pool cannot supply, or the driver's
        horizon — which :meth:`step` then executes.  All iterations in between are priced
        in one vectorized :meth:`~repro.serving.engine.ServingEngine.mixed_step_times`
        evaluation, elementwise bit-identical to stepwise execution.

        Returns the number of iterations advanced (0: the very next iteration is an
        event iteration and the caller must :meth:`step`).
        """
        if (
            self._pending_transfer_s != 0.0
            or self.kv_cache.num_sequences != self.num_resident
        ):
            return 0
        if stop_before is not None and not self._clock < stop_before:
            return 0
        if not self._swap_ins_parked():
            return 0
        kv = self.kv_cache
        running = self._running
        batch = len(running)

        # ---- the pinned chunk schedule: the budget walk of step(), run once, with
        # iteration 1's sequential block allocation simulated exactly.  Decode slots
        # allocate first; each resident prefill then either *schedules* its chunk (the
        # allocation succeeds — and keeps succeeding, see the demand bound below) or is
        # *starved* (the allocation fails and the chunk is skipped without consuming
        # budget).  A starved chunk stays starved for the whole epoch only if it cannot
        # fit even the epoch's starting free-block count — free blocks only shrink while
        # nothing completes; anything weaker (a skip caused by allocation order alone)
        # falls back to stepwise.
        block_tokens = kv.config.block_tokens
        free_blocks = kv.num_free_blocks
        run_states = [kv.sequence(r.request_id) for r in running]
        slot_demand = 0
        for state in run_states:
            if (state.num_tokens + 1 + block_tokens - 1) // block_tokens > len(state.blocks):
                slot_demand += 1
        avail = free_blocks - slot_demand
        if avail < 0:
            return 0  # the decode reservation itself exhausts the pool: step() preempts
        budget = max(0, self.max_batched_tokens - batch)
        takes: List[Tuple[Request, int]] = []
        chunk_states: List[Tuple[SequenceState, int]] = []
        for request in self._prefilling:
            if budget <= 0:
                break
            take = min(
                request.prefill_target - request.prefilled,
                self.prefill_chunk_tokens,
                budget,
            )
            state = kv.sequence(request.request_id)
            needed = (
                state.num_tokens + take + block_tokens - 1
            ) // block_tokens - len(state.blocks)
            if needed < 0:
                needed = 0  # pragma: no cover - a sequence never holds excess blocks
            if needed > avail:
                if needed <= free_blocks:
                    return 0  # skipped by allocation order only: not provably stable
                continue  # stable-starved: skipped every iteration, consumes no budget
            avail -= needed
            takes.append((request, take))
            chunk_states.append((state, take))
            budget -= take
        if not self._admission_parked(budget) or not self._imports_parked():
            return 0

        # ---- composition horizon: the first completing iteration (the chunk that
        # finishes a prompt, or the decode step that finishes a request) ends the epoch;
        # it must run stepwise.  ceil(remaining / take) - 1 iterations are safely before
        # a prefill's completing chunk.
        k: Optional[int] = None
        for request, take in takes:
            remaining = request.prefill_target - request.prefilled
            safe = (remaining + take - 1) // take - 1
            k = safe if k is None else min(k, safe)
        if batch:
            decode_safe = min(r.output_tokens - r.generated for r in running) - 1
            k = decode_safe if k is None else min(k, decode_safe)
        if k is None or k <= 0:
            return 0

        # ---- KV horizon: the epoch's block demand (decode slots growing by one token
        # per iteration, scheduled chunks by their chunk size) must fit the free pool;
        # binary search the largest feasible iteration count.  k = 0 means the next
        # iteration already cannot allocate — step() runs the preemption / chunk-skip
        # machinery.
        def blocks_demanded(iterations: int) -> int:
            demand = 0
            for state in run_states:
                grown = (state.num_tokens + iterations + block_tokens - 1) // block_tokens
                if grown > len(state.blocks):
                    demand += grown - len(state.blocks)
            for state, take in chunk_states:
                grown = (
                    state.num_tokens + iterations * take + block_tokens - 1
                ) // block_tokens
                if grown > len(state.blocks):
                    demand += grown - len(state.blocks)
            return demand

        if blocks_demanded(k) > free_blocks:
            if blocks_demanded(1) > free_blocks:
                return 0
            lo, hi = 1, k  # invariant: demand(lo) <= free < demand(hi)
            while hi - lo > 1:
                mid = (lo + hi) // 2
                if blocks_demanded(mid) <= free_blocks:
                    lo = mid
                else:
                    hi = mid
            k = lo

        # ---- price iterations 1..k and cut at the horizon: only iterations *starting*
        # strictly before stop_before may run.  Both paths accumulate the clock by the
        # same sequential float additions as stepwise step(); short epochs stay scalar
        # (and feed the chunk-attention memo), long ones go through one vectorized
        # evaluation + cumsum.
        total0 = 0
        for state in run_states:
            total0 += state.num_tokens
        if k <= 16:
            engine = self.engine
            clock = self._clock
            done = 0
            while done < k:
                if stop_before is not None and not clock < stop_before:
                    break
                shapes = [
                    (take, request.prefilled + done * take) for request, take in takes
                ]
                clock += engine.mixed_iteration_time(
                    batch, total0 + done * batch, shapes, batch
                )
                done += 1
            k = done
            if k == 0:
                return 0  # pragma: no cover - guarded by the entry clock check
            new_clock = clock
        else:
            steps = np.arange(k, dtype=np.int64)
            decode_totals = total0 + steps * batch if batch else None
            chunk_runs = [
                (take, request.prefilled + steps * take) for request, take in takes
            ]
            times = self.engine.mixed_step_times(batch, decode_totals, chunk_runs)
            clocks = np.cumsum(np.concatenate(([self._clock], times)))
            if stop_before is not None:
                cut = int(np.searchsorted(clocks[:k], stop_before, side="left"))
                if cut < k:
                    k = cut
            if k <= 0:
                return 0  # pragma: no cover - guarded by the entry clock check
            new_clock = float(clocks[k])

        # ---- apply: grow KV, advance the clock, move every progress counter by its
        # k-iteration delta — the same end state k stepwise iterations leave behind.
        kv.grow_states(run_states, k)
        for state, take in chunk_states:
            kv.extend_state(state, k * take)
        self._peak_util = max(self._peak_util, kv.utilization())
        self._peak_host_util = max(self._peak_host_util, kv.host_utilization())
        self._peak_batch = max(self._peak_batch, batch + len(takes))
        epoch_start = self._clock
        self._clock = new_clock
        self._num_iterations += k
        self._chunk_count += k * len(takes)
        self._generated_tokens += k * batch
        self._outstanding_tokens -= k * batch
        for request in running:
            request.generated += k
        for request, take in takes:
            request.prefilled += k * take
            self._outstanding_tokens -= k * take
        if self._tracer is not None:
            if self._tracer.span_events:
                self._tracer.emit(
                    "ff_mixed", epoch_start, replica=self._trace_replica,
                    end=new_clock, iterations=k, decode_batch=batch,
                    chunks=len(takes),
                )
            self._maybe_sample_counters()
        return k

    # ------------------------------------------------------------------ simulation
    def run(self, requests: Sequence[Request]) -> SchedulerStats:
        """Simulate serving ``requests`` to completion and return aggregate statistics.

        Never propagates :class:`KvCacheOutOfMemory`: KV exhaustion is absorbed by
        preempting resident requests (swapping or recomputing them later).

        Scheduler-owned fields on each request (timestamps, progress counters) are reset on
        entry, so the same trace can be re-run — e.g. to A/B two systems or two policies —
        without stale state leaking between runs.
        """
        for request in requests:
            self._check_servable(request)

        self.begin()
        arrivals: List[Tuple[float, int, Request]] = [
            (r.arrival_time_s, r.request_id, r) for r in requests
        ]
        heapq.heapify(arrivals)

        while arrivals or self.has_work:
            # ---- admit arrived requests into the policy-keyed waiting heap.
            while arrivals and arrivals[0][0] <= self._clock:
                self.submit(heapq.heappop(arrivals)[2])
            if not self.has_work:
                self._clock = arrivals[0][0]
                continue
            # ---- steady decode-only phases jump to the next event (arrival, earliest
            # completion, KV exhaustion) in closed form; everything else steps.
            if self.fast_forward(arrivals[0][0] if arrivals else None):
                continue
            self.step()

        return self.stats()
