"""Cluster-level serving: N replicas behind a pluggable router on one virtual clock.

This is the layer above the per-replica continuous-batching scheduler.  A
:class:`ServingCluster` owns a fleet of replicas — each a full
:class:`~repro.serving.engine.ServingEngine` +
:class:`~repro.serving.scheduler.ContinuousBatchingScheduler` pair with its own paged KV
pool — and advances them event-by-event on a shared virtual clock: the replica whose local
clock is furthest behind steps next, and arrivals/migrations are delivered the moment no
replica could still do earlier work.

Two topologies (see :class:`~repro.serving.systems.ClusterSpec`):

* **Co-located** — ``num_replicas`` identical replicas; the router spreads whole requests
  across them (round-robin / least-outstanding-tokens / least-KV-load).  This is the
  data-parallel baseline every disaggregation A/B compares against.
* **Disaggregated prefill/decode** (DistServe-style) — new requests run their prompt
  prefill (and emit the first token) on a *prefill replica*; the finished prefill's KV
  blocks are then exported from that replica's pool and migrated over the GPU interconnect
  (:meth:`~repro.serving.engine.ServingEngine.interconnect_transfer_time`) to a *decode
  replica*, which imports the blocks and decodes the remaining tokens.  Prefill iterations
  therefore never contend with decode batches (TTFT stops paying TPOT's bill and vice
  versa), at the price of one KV handoff per request — the tax this simulator charges
  explicitly and reports as ``kv_handoff_s``.

The KV handoff conserves state: the prefill replica frees exactly the blocks the decode
replica later allocates (``imported_kv_tokens``), and both pools drain to empty when the
trace completes — invariants the test suite checks.
"""

from __future__ import annotations

import copy
import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .engine import ServingEngine
from .metrics import SloReport, SloSpec, compute_slo_report
from .router import RouterPolicy, get_router_policy
from .scheduler import ContinuousBatchingScheduler, Request, SchedulerStats
from .systems import (
    REPLICA_ROLE_DECODE,
    REPLICA_ROLE_PREFILL,
    ClusterSpec,
)

__all__ = ["Replica", "ClusterResult", "ServingCluster"]

_EVENT_ARRIVAL = 0
_EVENT_MIGRATE = 1


@dataclass
class _RunState:
    """State scoped to one :meth:`ServingCluster.run` (kept off the cluster object so a
    finished run holds no references to its trace and helpers cannot be called out of
    order)."""

    events: List[Tuple[float, int, int, Request]] = field(default_factory=list)
    event_seq: int = 0
    origs: Dict[int, Request] = field(default_factory=dict)
    #: Completions keyed (completion_time_s, replica_id, per-replica drain index).  The
    #: key is *execution-mode invariant*: a fast-forwarding replica drains a whole jump's
    #: completions at once, so the raw cross-replica drain interleaving differs from
    #: stepwise execution — but each replica's own completion sequence never does.
    #: Sorting on this key therefore yields one canonical merged order (for a single
    #: replica it degenerates to plain drain order), keeping the merged SLO report's
    #: order-sensitive float sums bit-identical across modes.
    completed: List[Tuple[Tuple[float, int, int], Request]] = field(default_factory=list)
    _drain_seq: Dict[int, int] = field(default_factory=dict)
    kv_handoffs: int = 0
    kv_handoff_bytes: int = 0
    kv_handoff_s: float = 0.0

    def push_event(self, time_s: float, kind: int, request: Request) -> None:
        heapq.heappush(self.events, (time_s, self.event_seq, kind, request))
        self.event_seq += 1

    def merged_completions(self) -> List[Request]:
        """The completed requests in the canonical (mode-invariant) merged order."""
        return [request for _, request in sorted(self.completed, key=lambda e: e[0])]

    def record_completion(self, replica_id: int, request: Request) -> None:
        seq = self._drain_seq.get(replica_id, 0)
        self._drain_seq[replica_id] = seq + 1
        self.completed.append(((request.completion_time_s, replica_id, seq), request))


@dataclass
class Replica:
    """One serving replica: a GPU (or TP group) running its own engine + scheduler."""

    replica_id: int
    role: str  # "mixed" | "prefill" | "decode"
    engine: ServingEngine
    scheduler: ContinuousBatchingScheduler

    @property
    def clock(self) -> float:
        return self.scheduler.clock

    @property
    def has_work(self) -> bool:
        return self.scheduler.has_work


@dataclass
class ClusterResult:
    """Outcome of one :meth:`ServingCluster.run`: per-replica stats + merged request view."""

    mode: str
    router: str
    replica_roles: List[str]
    replica_stats: List[SchedulerStats]
    simulated_time_s: float
    completed_requests: int
    generated_tokens: int
    #: Disaggregation KV-handoff accounting (zero in co-located mode).
    kv_handoffs: int = 0
    kv_handoff_bytes: int = 0
    kv_handoff_s: float = 0.0
    #: Merged per-request view: each entry carries the request's full cluster lifecycle
    #: (arrival, first scheduled on its prefill replica, first token, completion on its
    #: decode replica) regardless of how many replicas served it.
    requests: List[Request] = field(default_factory=list)

    @property
    def num_replicas(self) -> int:
        return len(self.replica_stats)

    @property
    def throughput_tokens_per_s(self) -> float:
        if self.simulated_time_s <= 0:
            return 0.0
        return self.generated_tokens / self.simulated_time_s

    def slo_report(self, slo: Optional[SloSpec] = None) -> SloReport:
        """Cluster-level SLO summary over the merged completed requests."""
        return compute_slo_report(self.requests, slo, makespan_s=self.simulated_time_s)


class ServingCluster:
    """Event loop advancing N scheduler replicas on a shared virtual clock.

    Every replica is built from the same (system, model, device, tp_degree, scheduler
    knobs), so a :class:`~repro.serving.systems.ClusterSpec` A/B holds resources equal:
    ``colocated`` with ``num_replicas=4`` and ``disaggregated`` with 2+2 both occupy four
    identical GPUs.  The router instance is re-created per :meth:`run`, so stateful
    policies (round-robin's cursor) cannot leak position between runs.
    """

    def __init__(
        self,
        system: str = "liquidserve",
        model: str = "llama2-7b",
        spec: Optional[ClusterSpec] = None,
        *,
        device: str = "H800",
        tp_degree: int = 1,
        max_batch_size: Optional[int] = None,
        max_batched_tokens: Optional[int] = None,
        prefill_chunk_tokens: int = 256,
        scheduling_policy: Union[str, object] = "fcfs",
        preemption_policy: Union[str, object] = "recompute",
        kv_budget_bytes: Optional[int] = None,
        host_kv_budget_bytes: Optional[int] = None,
        overlap_swap_transfers: bool = False,
        fast_forward: bool = True,
        prefix_caching: bool = False,
        engine: Optional[ServingEngine] = None,
        tracer=None,
    ):
        self.spec = spec or ClusterSpec()
        self.router_name = self.spec.router or self.spec.default_router
        get_router_policy(self.router_name)  # fail fast on an unknown policy
        self.replicas: List[Replica] = []
        # One engine serves the whole fleet: the engine is a pure (memoized) cost model —
        # replicas differ only in scheduler/KV state — so sharing it means a 16-replica
        # cluster warms one step-cost memo instead of sixteen.  ``engine`` lets sweep
        # workers inject an already-warm engine and carry the memo across grid cells.
        if engine is None:
            engine = ServingEngine(system, model, device=device, tp_degree=tp_degree)
        # One tracer serves the whole fleet: every replica's scheduler stamps its events
        # with its replica id, and the cluster itself adds routing + migration events.
        self._tracer = tracer
        for replica_id, role in enumerate(self.spec.roles()):
            scheduler = ContinuousBatchingScheduler(
                engine,
                max_batch_size=max_batch_size,
                max_batched_tokens=max_batched_tokens,
                prefill_chunk_tokens=prefill_chunk_tokens,
                scheduling_policy=scheduling_policy,
                preemption_policy=preemption_policy,
                kv_budget_bytes=kv_budget_bytes,
                host_kv_budget_bytes=host_kv_budget_bytes,
                overlap_swap_transfers=overlap_swap_transfers,
                fast_forward=fast_forward,
                prefix_caching=prefix_caching,
                tracer=tracer,
                trace_replica=replica_id,
            )
            self.replicas.append(Replica(replica_id, role, engine, scheduler))
            if tracer is not None:
                tracer.set_replica_role(replica_id, role)
        self.prefill_replicas = [
            r for r in self.replicas if r.role == REPLICA_ROLE_PREFILL
        ]
        self.decode_replicas = [r for r in self.replicas if r.role == REPLICA_ROLE_DECODE]

    @property
    def disaggregated(self) -> bool:
        return self.spec.mode == "disaggregated"

    # ------------------------------------------------------------------ routing
    def _route_arrival(self, router: RouterPolicy, orig: Request, now: float) -> Replica:
        if self.disaggregated:
            # Phase 1 of the request's life: prompt prefill + first token on a prefill
            # replica.  A clone capped at one output token makes the replica's scheduler
            # retire the sequence exactly when the prefill phase ends.
            clone = copy.copy(orig)
            clone.output_tokens = 1
            target = router.select(self.prefill_replicas, orig)
            if self._tracer is not None:
                self._tracer.emit(
                    "route", now, replica=target.replica_id,
                    request_id=orig.request_id, role=target.role,
                    policy=self.router_name,
                )
            target.scheduler.submit(clone, now=now)
        else:
            target = router.select(self.replicas, orig)
            if self._tracer is not None:
                self._tracer.emit(
                    "route", now, replica=target.replica_id,
                    request_id=orig.request_id, role=target.role,
                    policy=self.router_name,
                )
            target.scheduler.submit(orig, now=now)
        return target

    def _on_prefill_done(self, state: _RunState, replica: Replica, clone: Request) -> None:
        """Merge the prefill phase into the original request; stage the KV handoff."""
        orig = state.origs[clone.request_id]
        orig.first_scheduled_time_s = clone.first_scheduled_time_s
        orig.first_token_time_s = clone.first_token_time_s
        orig.preemptions = clone.preemptions
        if orig.output_tokens == 1:
            # Single-token answers finish at prefill: nothing left to disaggregate.
            orig.generated = 1
            orig.completion_time_s = clone.completion_time_s
            state.record_completion(replica.replica_id, orig)
            return
        # Export the prompt KV from the prefill replica (its scheduler already freed the
        # blocks on completion) and charge the interconnect transfer before the decode
        # replica may admit the sequence.
        config = replica.scheduler.kv_cache.config
        handoff_bytes = config.blocks_for_tokens(orig.prompt_tokens) * config.bytes_per_block
        transfer_s = replica.engine.interconnect_transfer_time(handoff_bytes)
        state.kv_handoffs += 1
        state.kv_handoff_bytes += handoff_bytes
        state.kv_handoff_s += transfer_s
        migrated = copy.copy(orig)  # carries the prefill-phase timestamps merged above
        migrated.generated = 1
        migrated.prefilled = 0
        migrated.prefill_target = 0
        migrated.imported_kv_tokens = orig.prompt_tokens
        # Computed once and reused for both the delivery event and the telemetry span,
        # so the migration's end timestamp and the decode side's enqueue timestamp are
        # the same float — the per-request phase intervals tile exactly.
        handoff_end = replica.clock + transfer_s
        state.push_event(handoff_end, _EVENT_MIGRATE, migrated)
        if self._tracer is not None:
            self._tracer.emit(
                "migrate", replica.clock, replica=replica.replica_id,
                request_id=orig.request_id, end=handoff_end,
                bytes=handoff_bytes, transfer_s=transfer_s,
            )

    def _on_complete(self, state: _RunState, replica: Replica, done: Request) -> None:
        if not self.disaggregated:
            # `done` IS the caller's request object
            state.record_completion(replica.replica_id, done)
        elif replica.role == REPLICA_ROLE_PREFILL:
            self._on_prefill_done(state, replica, done)
        else:
            orig = state.origs[done.request_id]
            orig.generated = done.generated
            orig.preemptions = done.preemptions
            orig.completion_time_s = done.completion_time_s
            state.record_completion(replica.replica_id, orig)

    # ------------------------------------------------------------------ event loop
    def run(self, requests: Sequence[Request]) -> ClusterResult:
        """Serve ``requests`` across the fleet to completion.

        Requests must carry unique ids — the cluster merges per-phase state back onto the
        original objects by id.  Like the single-replica scheduler, scheduler-owned fields
        are reset on entry so a trace can be re-run for A/Bs.
        """
        ids = [r.request_id for r in requests]
        if len(set(ids)) != len(ids):
            raise ValueError("cluster routing requires unique request ids")
        for request in requests:
            # All replicas share one pool geometry; validating against the first catches
            # never-servable requests before any state mutates.
            self.replicas[0].scheduler._check_servable(request)

        router = get_router_policy(self.router_name)
        for replica in self.replicas:
            replica.scheduler.begin(0.0)
        state = _RunState(origs={r.request_id: r for r in requests})
        if self.disaggregated:
            # Originals are merge targets (never submitted): reset their scheduler-owned
            # fields here the way submit() would, so re-runs cannot leak stale state.
            for request in requests:
                request.reset_scheduler_state()
        for request in sorted(requests, key=lambda r: (r.arrival_time_s, r.request_id)):
            state.push_event(request.arrival_time_s, _EVENT_ARRIVAL, request)

        # ---- event-indexed advancement: the fleet is indexed by a lazily-invalidated
        # min-heap over (clock, replica_id) so choosing the next replica to advance — and
        # testing the event-delivery condition against the minimum active clock — costs
        # O(log n) per event instead of the O(n) fleet scan per iteration the previous
        # driver paid.  Entries are stamped with a per-replica version; an entry is live
        # only while its version and clock still match the replica (a popped replica is
        # re-pushed after advancing, so stale entries simply drain off the heap).
        # The tie-break (clock, replica_id) reproduces the scan-based driver's order
        # exactly, keeping results bit-identical.
        versions = [0] * len(self.replicas)
        ready: List[Tuple[float, int, int]] = []
        prefill_versions = [0] * len(self.replicas)
        prefill_ready: List[Tuple[float, int, int]] = []
        track_prefill = self.disaggregated and bool(self.decode_replicas)

        def push_ready(replica: Replica) -> None:
            rid = replica.replica_id
            versions[rid] += 1
            heapq.heappush(ready, (replica.clock, rid, versions[rid]))
            if track_prefill and replica.role == REPLICA_ROLE_PREFILL:
                prefill_versions[rid] += 1
                heapq.heappush(
                    prefill_ready, (replica.clock, rid, prefill_versions[rid])
                )

        def live_min(heap: List[Tuple[float, int, int]], vers: List[int]) -> Optional[Replica]:
            while heap:
                clock, rid, version = heap[0]
                replica = self.replicas[rid]
                if (
                    version != vers[rid]
                    or clock != replica.clock
                    or not replica.has_work
                ):
                    heapq.heappop(heap)
                    continue
                return replica
            return None

        while True:
            replica = live_min(ready, versions)
            if state.events and (
                replica is None or state.events[0][0] <= replica.clock
            ):
                # No replica can still do work that precedes this event: deliver it.
                time_s, _, kind, request = heapq.heappop(state.events)
                if kind == _EVENT_ARRIVAL:
                    target = self._route_arrival(router, request, time_s)
                else:
                    target = router.select_decode(self.decode_replicas, request)
                    if self._tracer is not None:
                        self._tracer.emit(
                            "route", time_s, replica=target.replica_id,
                            request_id=request.request_id, role=target.role,
                            policy=self.router_name,
                        )
                    target.scheduler.submit_resumed(request, now=time_s)
                push_ready(target)  # an idle target wakes at the event time
                continue
            if replica is None:
                break
            heapq.heappop(ready)  # the replica's live entry; re-pushed after advancing
            # ---- fast-forward horizon: a replica may only jump through iterations the
            # stepwise driver would also have given it consecutively.  Pending events
            # always bound the jump (delivery happens the moment the fleet reaches the
            # event time).  The only *future* events — KV migrations minted by prefill
            # replicas' completions, strictly after their current clocks — are routed to
            # decode replicas, so in disaggregated mode a decode replica is additionally
            # bounded by the earliest active *prefill* clock (the exact migration
            # horizon); prefill replicas, like every co-located replica, are bounded by
            # the event queue alone and collapse whole drain phases into single jumps.
            stop_before: Optional[float] = (
                state.events[0][0] if state.events else None
            )
            if track_prefill and replica.role == REPLICA_ROLE_DECODE:
                earliest_prefill = live_min(prefill_ready, prefill_versions)
                if earliest_prefill is not None:
                    stop_before = (
                        earliest_prefill.clock
                        if stop_before is None
                        else min(stop_before, earliest_prefill.clock)
                    )
            if not replica.scheduler.fast_forward(stop_before):
                replica.scheduler.step()
            for done in replica.scheduler.drain_completed():
                self._on_complete(state, replica, done)
            if replica.has_work:
                push_ready(replica)

        replica_stats = [r.scheduler.stats() for r in self.replicas]
        merged = state.merged_completions()
        return ClusterResult(
            mode=self.spec.mode,
            router=self.router_name,
            replica_roles=[r.role for r in self.replicas],
            replica_stats=replica_stats,
            simulated_time_s=max((s.simulated_time_s for s in replica_stats), default=0.0),
            completed_requests=len(merged),
            generated_tokens=sum(s.generated_tokens for s in replica_stats),
            kv_handoffs=state.kv_handoffs,
            kv_handoff_bytes=state.kv_handoff_bytes,
            kv_handoff_s=state.kv_handoff_s,
            requests=[copy.copy(r) for r in merged],
        )
