"""Pluggable scheduling (admission) and preemption policies for the serving scheduler.

The continuous-batching scheduler used to hard-code two decisions that production systems
expose as knobs:

* **Which waiting request to admit next.**  :class:`SchedulingPolicy` turns the admission
  queue into a policy-keyed heap: FCFS (vLLM's default), strict priority, shortest-job-first
  on the predicted prompt+output length (Sarathi/FastServe-style), and a max-min fairness
  policy that equalizes attained service (least-attained-service first).  The same key,
  reversed, selects the preemption victim: the *lowest-priority resident* is evicted first,
  which for FCFS reproduces vLLM's "preempt the latest arrival" rule exactly.
* **What to do with the victim's KV state.**  :class:`PreemptionPolicy` chooses per victim
  between vLLM's two mechanisms: *recompute* (drop the blocks, re-prefill on resume) and
  *swap* (move the blocks to a bounded host pool over the PCIe link, restore them later).
  The cost-based hybrid compares the swap round trip against the re-prefill time, which is
  the trade-off vLLM documents: recompute wins for short contexts, swap for long ones.

Policies are stateless and shared-nothing, so one instance can serve many schedulers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple, Type, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .engine import ServingEngine
    from .kvcache import PagedKvCache
    from .scheduler import Request

__all__ = [
    "SchedulingPolicy",
    "FcfsScheduling",
    "PriorityScheduling",
    "ShortestJobFirst",
    "MaxMinFairness",
    "PreemptionPolicy",
    "RecomputePreemption",
    "SwapPreemption",
    "CostBasedPreemption",
    "SCHEDULING_POLICIES",
    "PREEMPTION_POLICIES",
    "get_scheduling_policy",
    "get_preemption_policy",
]


# ---------------------------------------------------------------------- admission ordering
class SchedulingPolicy:
    """Total order over requests: smaller key = admitted earlier, larger key = evicted first.

    Keys are evaluated when a request enters the admission heap (and when a victim is
    selected), so state-dependent policies see each request's progress at that moment.
    """

    name = "base"

    def key(self, request: "Request") -> Tuple:
        raise NotImplementedError

    def select_victim(self, residents: List["Request"]) -> "Request":
        """The resident to preempt: the one the policy would admit *last*."""
        return max(residents, key=self.key)


class FcfsScheduling(SchedulingPolicy):
    """First-come-first-served on arrival time (ties broken by request id)."""

    name = "fcfs"

    def key(self, request: "Request") -> Tuple:
        return (request.arrival_time_s, request.request_id)


class PriorityScheduling(SchedulingPolicy):
    """Strict priority (higher ``Request.priority`` first), FCFS within a priority level."""

    name = "priority"

    def key(self, request: "Request") -> Tuple:
        return (-request.priority, request.arrival_time_s, request.request_id)


class ShortestJobFirst(SchedulingPolicy):
    """Shortest predicted job first (prompt + predicted output tokens), FCFS on ties.

    The trace's ``output_tokens`` stands in for a length predictor; under long-tail
    workloads this slashes queueing delay (p99 TTFT) for the short majority.
    """

    name = "sjf"

    def key(self, request: "Request") -> Tuple:
        return (request.prompt_tokens + request.output_tokens,
                request.arrival_time_s, request.request_id)


class MaxMinFairness(SchedulingPolicy):
    """Max-min fairness on attained service: least-served (fewest decoded tokens) first.

    Admitting the minimum-service request (and evicting the maximum-service one) is the
    water-filling allocation that maximizes the minimum service across requests.
    """

    name = "fairness"

    def key(self, request: "Request") -> Tuple:
        return (request.generated, request.arrival_time_s, request.request_id)


# ---------------------------------------------------------------------- preemption choice
class PreemptionPolicy:
    """Per-victim choice between recompute- and swap-based preemption."""

    name = "base"

    RECOMPUTE = "recompute"
    SWAP = "swap"

    #: True for policies that want swap when feasible.  Victim selection uses this to
    #: steer around residents whose blocks are shared (a fork, or a prefix-cache seed):
    #: such a victim can never swap — ``swap_out`` refuses to split shared blocks — so
    #: picking it would silently waste the policy's host pool on a recompute fallback.
    prefers_swap = False

    def decide(self, victim: "Request", engine: "ServingEngine",
               kv_cache: "PagedKvCache") -> str:
        raise NotImplementedError


class RecomputePreemption(PreemptionPolicy):
    """Always drop the victim's blocks and re-prefill on resume (vLLM's default)."""

    name = "recompute"

    def decide(self, victim, engine, kv_cache) -> str:
        return self.RECOMPUTE


class SwapPreemption(PreemptionPolicy):
    """Swap to host memory whenever the host pool has room; recompute only as fallback."""

    name = "swap"
    prefers_swap = True

    def decide(self, victim, engine, kv_cache) -> str:
        if kv_cache.can_swap_out(victim.request_id):
            return self.SWAP
        return self.RECOMPUTE


class CostBasedPreemption(PreemptionPolicy):
    """Hybrid: swap when the PCIe round trip beats re-prefilling the victim's context.

    Swap costs a swap-out now plus a swap-in later (both over the host link); recompute
    costs a re-prefill of the resident tokens at resume time.  ``threshold`` scales the
    recompute side: values below 1.0 bias toward recompute, above 1.0 toward swap.
    """

    name = "hybrid"
    prefers_swap = True

    def __init__(self, threshold: float = 1.0):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold

    def decide(self, victim, engine, kv_cache) -> str:
        if not kv_cache.can_swap_out(victim.request_id):
            return self.RECOMPUTE
        state = kv_cache.sequence(victim.request_id)
        round_trip = 2.0 * engine.kv_transfer_time(
            state.num_blocks * kv_cache.config.bytes_per_block
        )
        if round_trip < self.threshold * engine.recompute_time(state.num_tokens):
            return self.SWAP
        return self.RECOMPUTE


# ---------------------------------------------------------------------- registries
SCHEDULING_POLICIES: Dict[str, Type[SchedulingPolicy]] = {
    policy.name: policy
    for policy in (FcfsScheduling, PriorityScheduling, ShortestJobFirst, MaxMinFairness)
}

PREEMPTION_POLICIES: Dict[str, Type[PreemptionPolicy]] = {
    policy.name: policy
    for policy in (RecomputePreemption, SwapPreemption, CostBasedPreemption)
}


def get_scheduling_policy(policy: Union[str, SchedulingPolicy]) -> SchedulingPolicy:
    """Resolve a scheduling policy by name ('fcfs', 'priority', 'sjf', 'fairness')."""
    if isinstance(policy, SchedulingPolicy):
        return policy
    key = str(policy).lower()
    if key not in SCHEDULING_POLICIES:
        raise KeyError(
            f"unknown scheduling policy {policy!r}; known: {sorted(SCHEDULING_POLICIES)}"
        )
    return SCHEDULING_POLICIES[key]()


def get_preemption_policy(policy: Union[str, PreemptionPolicy]) -> PreemptionPolicy:
    """Resolve a preemption policy by name ('recompute', 'swap', 'hybrid')."""
    if isinstance(policy, PreemptionPolicy):
        return policy
    key = str(policy).lower()
    if key not in PREEMPTION_POLICIES:
        raise KeyError(
            f"unknown preemption policy {policy!r}; known: {sorted(PREEMPTION_POLICIES)}"
        )
    return PREEMPTION_POLICIES[key]()
