"""Decode-time attention cost model (FlashAttention-2 style, Section 6).

During decoding each new token attends over the whole KV cache, so attention is overwhelmingly
memory-bound: the dominant cost is streaming ``batch x context_length x 2 x kv_dim`` cached
K/V elements from HBM, followed by a comparatively small amount of Tensor-Core work
(``q·K^T`` and ``p·V``) and the write of the new token's K/V entry.  That is exactly why the
KV-cache precision (FP8 / INT8 / INT4) and the attention kernel's sustained bandwidth are what
differentiate the serving systems in Figures 4 and 10.

The model below accounts those three terms explicitly plus a fixed kernel-launch overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.specs import GpuSpec, Precision
from .models import ModelConfig

__all__ = ["AttentionCost", "decode_attention_cost", "prefill_attention_cost"]


@dataclass(frozen=True)
class AttentionCost:
    """Per-layer attention cost decomposition (seconds)."""

    kv_read: float
    kv_write: float
    compute: float
    overhead: float

    @property
    def total(self) -> float:
        return self.kv_read + self.kv_write + self.compute + self.overhead


#: Kernel launch + softmax bookkeeping overhead per attention layer call.
_ATTENTION_LAUNCH_OVERHEAD_S = 4.0e-6


def decode_attention_cost(
    model: ModelConfig,
    gpu: GpuSpec,
    batch_size: int,
    context_length: int,
    kv_bytes_per_element: float,
    bandwidth_efficiency: float = 0.85,
    attention_efficiency: float = 1.0,
) -> AttentionCost:
    """Cost of one decode-step attention call for one layer.

    ``attention_efficiency`` scales the *whole* kernel (bandwidth and compute alike) and is the
    knob that distinguishes the systems' attention implementations (e.g. TRT-FP8's
    FP8-optimized attention vs. QServe's kernels on GQA models); see
    :mod:`repro.serving.systems` for the calibrated per-system values.
    """
    if batch_size <= 0 or context_length <= 0:
        raise ValueError("batch_size and context_length must be positive")
    if not 0 < attention_efficiency <= 1.0:
        raise ValueError("attention_efficiency must be in (0, 1]")

    effective_bw = gpu.memory_bandwidth * bandwidth_efficiency * attention_efficiency

    kv_elements = 2.0 * batch_size * context_length * model.kv_dim
    kv_read = kv_elements * kv_bytes_per_element / effective_bw

    new_kv_bytes = 2.0 * batch_size * model.kv_dim * kv_bytes_per_element
    kv_write = new_kv_bytes / effective_bw

    # q·K^T and p·V: 2 * batch * context * heads * head_dim MACs each -> 8 * B * L * hidden ops.
    flops = 8.0 * batch_size * context_length * model.num_heads * model.head_dim
    tensor_precision = Precision.FP16 if gpu.supports_precision(Precision.FP16) else Precision.INT8
    compute = flops / (gpu.tensor_core_throughput(tensor_precision) * attention_efficiency)

    return AttentionCost(
        kv_read=kv_read,
        kv_write=kv_write,
        compute=compute,
        overhead=_ATTENTION_LAUNCH_OVERHEAD_S,
    )


def prefill_attention_cost(
    model: ModelConfig,
    gpu: GpuSpec,
    batch_size: int,
    prompt_length: int,
    bandwidth_efficiency: float = 0.85,
    attention_efficiency: float = 1.0,
) -> AttentionCost:
    """Cost of one prefill attention call for one layer (causal, compute-bound).

    Prefill attention is quadratic in the prompt length but runs on Tensor Cores at high
    utilization; the KV cache is written once.  The serving engine uses this only to estimate
    the (amortized) prefill contribution to end-to-end throughput.
    """
    if batch_size <= 0 or prompt_length <= 0:
        raise ValueError("batch_size and prompt_length must be positive")
    flops = 4.0 * batch_size * prompt_length * prompt_length * model.num_heads * model.head_dim / 2.0
    tensor_precision = Precision.FP16 if gpu.supports_precision(Precision.FP16) else Precision.INT8
    compute = flops / (gpu.tensor_core_throughput(tensor_precision) * 0.6 * attention_efficiency)
    kv_write = 2.0 * batch_size * prompt_length * model.kv_dim * 2.0 / (
        gpu.memory_bandwidth * bandwidth_efficiency
    )
    return AttentionCost(kv_read=0.0, kv_write=kv_write, compute=compute,
                         overhead=_ATTENTION_LAUNCH_OVERHEAD_S)
