"""Decode-time attention cost model (FlashAttention-2 style, Section 6).

During decoding each new token attends over the whole KV cache, so attention is overwhelmingly
memory-bound: the dominant cost is streaming ``batch x context_length x 2 x kv_dim`` cached
K/V elements from HBM, followed by a comparatively small amount of Tensor-Core work
(``q·K^T`` and ``p·V``) and the write of the new token's K/V entry.  That is exactly why the
KV-cache precision (FP8 / INT8 / INT4) and the attention kernel's sustained bandwidth are what
differentiate the serving systems in Figures 4 and 10.

Three cost entry points are provided:

* :func:`decode_attention_cost` — a uniform batch at a single context length (the Table 1 /
  Figure 4 fixed-batch quantity);
* :func:`ragged_decode_attention_cost` — one decode step over a *ragged* batch, charging each
  sequence its own context length (what an iteration-level scheduler produces);
* :func:`chunked_prefill_attention_cost` — one prefill chunk attending causally over the
  already-cached prefix plus itself (Sarathi-style chunked prefill).

All of them accept a ``tp_degree``: with Megatron-style tensor parallelism the query heads are
split ``tp_degree`` ways and the KV heads are split (or replicated, for GQA models with fewer
KV heads than GPUs), so each GPU streams and computes only its shard.  The costs returned are
*per GPU* — the group runs in lockstep, so the per-GPU time is the step time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from ..gpu.specs import GpuSpec, Precision
from .models import ModelConfig

__all__ = [
    "AttentionCost",
    "decode_attention_cost",
    "decode_attention_cost_from_totals",
    "ragged_decode_attention_cost",
    "chunked_prefill_attention_cost",
    "chunked_prefill_attention_times",
    "prefill_attention_cost",
]


@dataclass(frozen=True)
class AttentionCost:
    """Per-layer attention cost decomposition (seconds)."""

    kv_read: float
    kv_write: float
    compute: float
    overhead: float

    @property
    def total(self) -> float:
        return self.kv_read + self.kv_write + self.compute + self.overhead


#: Kernel launch + softmax bookkeeping overhead per attention layer call.
_ATTENTION_LAUNCH_OVERHEAD_S = 4.0e-6


def _tensor_precision(gpu: GpuSpec) -> str:
    return Precision.FP16 if gpu.supports_precision(Precision.FP16) else Precision.INT8


def _check_efficiency(attention_efficiency: float) -> None:
    if not 0 < attention_efficiency <= 1.0:
        raise ValueError("attention_efficiency must be in (0, 1]")


def decode_attention_cost_from_totals(
    model: ModelConfig,
    gpu: GpuSpec,
    batch_size: int,
    total_context: float,
    kv_bytes_per_element: float,
    bandwidth_efficiency: float = 0.85,
    attention_efficiency: float = 1.0,
    tp_degree: int = 1,
) -> AttentionCost:
    """Closed-form decode attention cost given a batch size and *summed* context length.

    Every term of the ragged decode model is linear per sequence, so one layer's cost is a
    function of ``(batch_size, sum(context_lengths))`` alone.  This is the form the serving
    engine memoizes and vectorizes for fast-forward simulation; it performs the exact
    floating-point operations of :func:`ragged_decode_attention_cost`, which delegates here.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if total_context < batch_size:
        raise ValueError("total_context must cover at least one token per sequence")
    _check_efficiency(attention_efficiency)

    kv_dim = model.kv_dim_per_gpu(tp_degree)
    heads = model.heads_per_gpu(tp_degree)

    effective_bw = gpu.memory_bandwidth * bandwidth_efficiency * attention_efficiency

    kv_elements = 2.0 * total_context * kv_dim
    kv_read = kv_elements * kv_bytes_per_element / effective_bw

    new_kv_bytes = 2.0 * batch_size * kv_dim * kv_bytes_per_element
    kv_write = new_kv_bytes / effective_bw

    # q·K^T and p·V: 2 * context * heads * head_dim MACs each per sequence.
    flops = 8.0 * total_context * heads * model.head_dim
    compute = flops / (gpu.tensor_core_throughput(_tensor_precision(gpu)) * attention_efficiency)

    return AttentionCost(
        kv_read=kv_read,
        kv_write=kv_write,
        compute=compute,
        overhead=_ATTENTION_LAUNCH_OVERHEAD_S,
    )


def ragged_decode_attention_cost(
    model: ModelConfig,
    gpu: GpuSpec,
    context_lengths: Sequence[int],
    kv_bytes_per_element: float,
    bandwidth_efficiency: float = 0.85,
    attention_efficiency: float = 1.0,
    tp_degree: int = 1,
) -> AttentionCost:
    """Cost of one decode-step attention call for one layer over a ragged batch.

    Every sequence is charged for streaming exactly its own cached context — the quantity a
    uniform-batch model overstates by billing all sequences at the batch maximum.  All terms
    are linear per sequence, so the uniform :func:`decode_attention_cost` is the special case
    of equal ``context_lengths``; ``context_lengths`` may be any integer sequence, including
    a NumPy array (the sum is taken as an exact integer reduction either way).
    """
    if len(context_lengths) == 0:
        raise ValueError("context_lengths must be non-empty")
    if min(context_lengths) <= 0:
        raise ValueError("context lengths must be positive")
    return decode_attention_cost_from_totals(
        model,
        gpu,
        len(context_lengths),
        float(sum(context_lengths)),
        kv_bytes_per_element,
        bandwidth_efficiency=bandwidth_efficiency,
        attention_efficiency=attention_efficiency,
        tp_degree=tp_degree,
    )


def decode_attention_cost(
    model: ModelConfig,
    gpu: GpuSpec,
    batch_size: int,
    context_length: int,
    kv_bytes_per_element: float,
    bandwidth_efficiency: float = 0.85,
    attention_efficiency: float = 1.0,
    tp_degree: int = 1,
) -> AttentionCost:
    """Cost of one decode-step attention call for one layer (uniform batch).

    ``attention_efficiency`` scales the *whole* kernel (bandwidth and compute alike) and is the
    knob that distinguishes the systems' attention implementations (e.g. TRT-FP8's
    FP8-optimized attention vs. QServe's kernels on GQA models); see
    :mod:`repro.serving.systems` for the calibrated per-system values.
    """
    if batch_size <= 0 or context_length <= 0:
        raise ValueError("batch_size and context_length must be positive")
    return ragged_decode_attention_cost(
        model,
        gpu,
        [context_length] * batch_size,
        kv_bytes_per_element,
        bandwidth_efficiency=bandwidth_efficiency,
        attention_efficiency=attention_efficiency,
        tp_degree=tp_degree,
    )


def chunked_prefill_attention_cost(
    model: ModelConfig,
    gpu: GpuSpec,
    chunk_tokens: int,
    context_start: int,
    kv_bytes_per_element: float,
    bandwidth_efficiency: float = 0.85,
    attention_efficiency: float = 1.0,
    tp_degree: int = 1,
) -> AttentionCost:
    """Cost of one layer's attention for a prefill *chunk* of a longer prompt.

    The chunk's ``chunk_tokens`` queries attend causally over the ``context_start`` tokens
    already resident in the paged KV cache plus the causal prefix inside the chunk itself.
    The cached prefix is streamed from HBM (at KV-cache precision); the chunk's own K/V is
    produced on the fly and written back once.
    """
    if chunk_tokens <= 0:
        raise ValueError("chunk_tokens must be positive")
    if context_start < 0:
        raise ValueError("context_start must be non-negative")
    _check_efficiency(attention_efficiency)

    kv_dim = model.kv_dim_per_gpu(tp_degree)
    heads = model.heads_per_gpu(tp_degree)
    effective_bw = gpu.memory_bandwidth * bandwidth_efficiency * attention_efficiency

    # Each query position q in the chunk attends over context_start + (its offset + 1) keys.
    attended = chunk_tokens * context_start + chunk_tokens * (chunk_tokens + 1) / 2.0

    kv_read = 2.0 * context_start * kv_dim * kv_bytes_per_element / effective_bw
    kv_write = 2.0 * chunk_tokens * kv_dim * kv_bytes_per_element / effective_bw

    flops = 8.0 * attended * heads * model.head_dim
    # Prefill-style attention sustains lower Tensor-Core utilization than pure GEMM.
    compute = flops / (
        gpu.tensor_core_throughput(_tensor_precision(gpu)) * 0.6 * attention_efficiency
    )
    return AttentionCost(
        kv_read=kv_read,
        kv_write=kv_write,
        compute=compute,
        overhead=_ATTENTION_LAUNCH_OVERHEAD_S,
    )


def chunked_prefill_attention_times(
    model: ModelConfig,
    gpu: GpuSpec,
    chunk_tokens: int,
    context_starts: Union[Sequence[int], np.ndarray],
    kv_bytes_per_element: float,
    bandwidth_efficiency: float = 0.85,
    attention_efficiency: float = 1.0,
    tp_degree: int = 1,
) -> np.ndarray:
    """Vectorized :func:`chunked_prefill_attention_cost` totals over cached-prefix lengths.

    One fixed-size chunk of a longer prompt priced at many ``context_start`` values in a
    single NumPy evaluation — the shape a pinned mixed prefill+decode epoch produces, where
    the same request prefills one ``chunk_tokens`` chunk per iteration on a prefix that
    grows by ``chunk_tokens`` each time.  Every term is linear in ``context_start`` and
    every operation mirrors the scalar function's operand order elementwise, so each
    element is bit-identical to ``chunked_prefill_attention_cost(...).total`` at that
    prefix length (the property the fast-forward equivalence suite pins).
    """
    if chunk_tokens <= 0:
        raise ValueError("chunk_tokens must be positive")
    starts = np.asarray(context_starts, dtype=np.int64)
    if starts.size and int(starts.min()) < 0:
        raise ValueError("context_start must be non-negative")
    _check_efficiency(attention_efficiency)

    kv_dim = model.kv_dim_per_gpu(tp_degree)
    heads = model.heads_per_gpu(tp_degree)
    effective_bw = gpu.memory_bandwidth * bandwidth_efficiency * attention_efficiency

    attended = chunk_tokens * starts + chunk_tokens * (chunk_tokens + 1) / 2.0

    kv_read = 2.0 * starts * kv_dim * kv_bytes_per_element / effective_bw
    kv_write = 2.0 * chunk_tokens * kv_dim * kv_bytes_per_element / effective_bw

    flops = 8.0 * attended * heads * model.head_dim
    compute = flops / (
        gpu.tensor_core_throughput(_tensor_precision(gpu)) * 0.6 * attention_efficiency
    )
    return kv_read + kv_write + compute + _ATTENTION_LAUNCH_OVERHEAD_S


def prefill_attention_cost(
    model: ModelConfig,
    gpu: GpuSpec,
    batch_size: int,
    prompt_length: int,
    bandwidth_efficiency: float = 0.85,
    attention_efficiency: float = 1.0,
    tp_degree: int = 1,
) -> AttentionCost:
    """Cost of one prefill attention call for one layer (causal, compute-bound).

    Prefill attention is quadratic in the prompt length but runs on Tensor Cores at high
    utilization; the KV cache is written once.  The serving engine uses this only to estimate
    the (amortized) prefill contribution to end-to-end throughput.
    """
    if batch_size <= 0 or prompt_length <= 0:
        raise ValueError("batch_size and prompt_length must be positive")
    _check_efficiency(attention_efficiency)
    heads = model.heads_per_gpu(tp_degree)
    kv_dim = model.kv_dim_per_gpu(tp_degree)
    flops = 4.0 * batch_size * prompt_length * prompt_length * heads * model.head_dim / 2.0
    compute = flops / (
        gpu.tensor_core_throughput(_tensor_precision(gpu)) * 0.6 * attention_efficiency
    )
    kv_write = 2.0 * batch_size * prompt_length * kv_dim * 2.0 / (
        gpu.memory_bandwidth * bandwidth_efficiency
    )
    return AttentionCost(kv_read=0.0, kv_write=kv_write, compute=compute,
                         overhead=_ATTENTION_LAUNCH_OVERHEAD_S)
