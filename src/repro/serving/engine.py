"""End-to-end LLM serving performance model (Table 1, Figures 4, 10, 11).

The engine composes the substrates built elsewhere in the library, reaching the
quantization/kernel core exclusively through the unified backend layer
(:mod:`repro.backend` — one :class:`~repro.backend.KernelBackend` per (system, device)):

* per-layer GEMM latency from the backend's resolved kernel cost parameters on the layer
  shapes of :mod:`repro.workloads.shapes` — MoE layers become grouped per-expert GEMMs;
* attention cost from the memory-bound decode model (:mod:`repro.serving.attention`) with the
  backend's KV-cache bytes-per-element and attention efficiency;
* an "Others" bucket (element-wise kernels: layer norms, rotary embedding, residuals, SwiGLU
  activation, dynamic activation quantization) plus per-layer framework overhead;
* KV-cache capacity from the paged allocator (:mod:`repro.serving.kvcache`) under the GPU
  memory budget, which bounds the usable batch size.

Two families of entry points are exposed:

* the **uniform-batch** analytical API (``decode_step_time``, ``prefill_time``,
  ``throughput``, ``peak_throughput``) that reproduces the paper's fixed-batch numbers, and
* the **ragged-batch** step-cost API (``ragged_decode_step_time``, ``chunked_prefill_time``,
  ``mixed_step_time``) consumed by the request-level scheduler simulation: per-sequence
  context lengths instead of one scalar, and mixed iterations that interleave decode tokens
  with chunked prefill tokens in a single forward pass.

Tensor parallelism (``tp_degree``) is threaded through everything: GEMM shapes, attention,
weight memory and the KV budget are one GPU's Megatron-style shard, and every layer pays two
ring all-reduces over the group interconnect.  Reported throughput is that of the whole TP
group (the GPUs run in lockstep, so per-GPU step time is group step time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..backend import KernelBackend, build_backend
from ..costmodel.model import GemmShape, gemm_cost
from ..gpu.device import Device
from ..kernels.base import GemmKernel, as_device
from ..workloads.shapes import decode_layer_gemms
from .attention import (
    _ATTENTION_LAUNCH_OVERHEAD_S,
    _tensor_precision,
    chunked_prefill_attention_cost,
    chunked_prefill_attention_times,
    decode_attention_cost,
    prefill_attention_cost,
)
from .kvcache import KvCacheConfig, PagedKvCache
from .models import ModelConfig, get_model
from .systems import SystemProfile, get_system

__all__ = [
    "LayerBreakdown",
    "PrefillChunk",
    "ThroughputPoint",
    "ServingResult",
    "ServingEngine",
    "peak_resident_tokens",
]


def peak_resident_tokens(prompt_tokens: int, output_tokens: int) -> int:
    """Peak KV residency of one request, in tokens.

    The last generated token is never appended to the cache (it is never an input), so a
    request caches at most ``prompt + output - 1`` tokens.  Every capacity check — the
    scheduler's admission guard, ``throughput`` and ``peak_throughput`` — must use this one
    form; two of them previously disagreed and misreported borderline batches as OOM.
    """
    return prompt_tokens + output_tokens - 1

#: Default entry bound of each step-cost memo cache (see :class:`_BoundedMemo`): large
#: enough that a single simulation never evicts, small enough that a long multi-config
#: sweep reusing one engine stays at a few MB of memo state per cache.
_MEMO_CACHE_ENTRIES = 65536


class _BoundedMemo(dict):
    """Insertion-ordered memo dict with FIFO eviction at ``maxsize`` entries.

    The serving engine memoizes pure cost-model evaluations keyed by iteration shape.
    One trace touches a few thousand distinct keys, but a long sweep over many workloads
    through a shared engine would otherwise grow the memos without bound.  Eviction is
    FIFO (oldest inserted first) so the hit path stays a plain ``dict.get`` — zero
    overhead where it matters — and only the miss path pays the bound check.  Evicting
    never changes results: every entry is a pure function of its key.
    """

    __slots__ = ("maxsize", "evictions")

    def __init__(self, maxsize: int = _MEMO_CACHE_ENTRIES):
        super().__init__()
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.evictions = 0

    def __setitem__(self, key, value) -> None:
        if len(self) >= self.maxsize and key not in self:
            super().__delitem__(next(iter(self)))
            self.evictions += 1
        super().__setitem__(key, value)


#: Element-wise passes over the hidden state per layer (2 layer norms, rotary, 2 residuals,
#: SwiGLU multiply, activation quantization) in units of (read+write) hidden-state sweeps.
_ELEMENTWISE_PASSES = 7.0
#: Launch/synchronization latency of one NCCL collective over the TP group.
_ALLREDUCE_LATENCY_S = 8.0e-6
#: Fixed setup latency of one KV swap transfer over the host link (DMA launch, pinning).
_HOST_TRANSFER_LATENCY_S = 15.0e-6
#: Fixed setup latency of one GPU-to-GPU KV handoff over the interconnect (P2P launch).
_INTERCONNECT_TRANSFER_LATENCY_S = 10.0e-6


@dataclass
class LayerBreakdown:
    """Per-layer decode-step time split (seconds) — the Figure 4 / Figure 10 quantity.

    ``comm`` is the tensor-parallel all-reduce share; it is zero for single-GPU configs, so
    the historical three-way split is unchanged there.
    """

    gemm: float
    attention: float
    others: float
    comm: float = 0.0

    @property
    def total(self) -> float:
        return self.gemm + self.attention + self.others + self.comm

    def fractions(self) -> Dict[str, float]:
        total = self.total
        if total <= 0:
            return {"gemm": 0.0, "attention": 0.0, "others": 0.0, "comm": 0.0}
        return {
            "gemm": self.gemm / total,
            "attention": self.attention / total,
            "others": self.others / total,
            "comm": self.comm / total,
        }


@dataclass(frozen=True, slots=True)
class PrefillChunk:
    """One prompt chunk processed inside a mixed scheduler iteration.

    ``tokens`` new prompt positions are prefilled on top of ``context_start`` tokens already
    resident in the KV cache.  ``produces_token`` marks the chunk that completes the prompt:
    its last position runs the LM head and emits the request's first output token.
    """

    tokens: int
    context_start: int
    produces_token: bool = False


@dataclass
class ThroughputPoint:
    """Throughput of one (system, model, batch) configuration."""

    batch_size: int
    tokens_per_second: float
    decode_step_s: float
    request_latency_s: float
    fits_in_memory: bool


@dataclass
class ServingResult:
    """Outcome of a peak-throughput search (one Table 1 cell)."""

    system: str
    model: str
    peak_throughput: float
    peak_batch_size: int
    sweep: List[ThroughputPoint] = field(default_factory=list)
    oom: bool = False
    tp_degree: int = 1

    @property
    def label(self) -> str:
        if self.oom:
            return "OOM"
        return f"{self.peak_throughput:,.0f} ({self.peak_batch_size})"


class ServingEngine:
    """Performance model of one serving system running one model on one GPU (or TP group)."""

    def __init__(
        self,
        system,
        model,
        device="H800",
        tp_degree: int = 1,
        memo_cache_entries: int = _MEMO_CACHE_ENTRIES,
        backend: Optional[KernelBackend] = None,
        tracer=None,
    ):
        self.system: SystemProfile = system if isinstance(system, SystemProfile) else get_system(system)
        self.model: ModelConfig = model if isinstance(model, ModelConfig) else get_model(model)
        self.device: Device = as_device(device)
        self.model.validate_tp(tp_degree)
        self.tp_degree = tp_degree
        # The backend is the engine's one window into the kernel/quant core: GEMM cost
        # params (system kernel + the reference kernel for LM head / recompute baselines),
        # KV bytes-per-element, deployed-size accounting.  ``backend`` lets callers inject
        # a pre-built (possibly non-registry) backend; by default it is resolved from the
        # profile, which validates kernel and KV-format names up front.
        self.backend: KernelBackend = (
            backend if backend is not None else build_backend(self.system, self.device)
        )
        self.kernel: GemmKernel = self.backend.kernel
        if self.model.is_moe and not self.system.supports_moe:
            self.supported = False
        else:
            self.supported = True
        # Step-cost caches: GEMM/LM-head latency depends only on the iteration token count,
        # which the request-level simulation hits thousands of times.  Every memo is
        # bounded (``memo_cache_entries``, FIFO eviction) so a long multi-configuration
        # sweep reusing one engine cannot grow memory without bound; sizes and eviction
        # counts are exposed by :meth:`cache_stats`.
        self._gemm_time_cache: Dict[int, float] = _BoundedMemo(memo_cache_entries)
        self._lm_head_cache: Dict[int, float] = _BoundedMemo(memo_cache_entries)
        self._others_time_cache: Dict[int, float] = _BoundedMemo(memo_cache_entries)
        self._comm_time_cache: Dict[int, float] = _BoundedMemo(memo_cache_entries)
        # Decode-iteration closed form: one layer's decode cost is a function of
        # (batch_size, sum(contexts)) alone, so the whole iteration memoizes on that pair
        # and vectorizes over arrays of context totals (the fast-forward path).
        self._decode_step_cache: Dict[Tuple[int, int], float] = _BoundedMemo(memo_cache_entries)
        self._decode_coeff_cache: Dict[int, Tuple[float, float, float, float, float]] = (
            _BoundedMemo(memo_cache_entries)
        )
        # Chunked-prefill attention repeats heavily at the scheduler's fixed chunk
        # granularity (e.g. (256, 0), (256, 256), ...), so it memoizes on the chunk shape.
        self._chunk_attention_cache: Dict[Tuple[int, int], float] = _BoundedMemo(memo_cache_entries)
        self._memo_caches: Dict[str, _BoundedMemo] = {
            "layer_gemm": self._gemm_time_cache,
            "lm_head": self._lm_head_cache,
            "layer_others": self._others_time_cache,
            "allreduce": self._comm_time_cache,
            "decode_step": self._decode_step_cache,
            "decode_coeffs": self._decode_coeff_cache,
            "chunk_attention": self._chunk_attention_cache,
        }
        spec = self.device.spec
        attn_eff = self.backend.attention_efficiency
        self._attn_kv_dim = self.model.kv_dim_per_gpu(self.tp_degree)
        self._attn_heads = self.model.heads_per_gpu(self.tp_degree)
        self._attn_kv_bytes = self.backend.kv_bytes_per_element
        # Exactly the scalar sub-expressions of decode_attention_cost_from_totals, hoisted:
        # same operand order, so memoized/vectorized evaluation is bit-identical.
        self._attn_effective_bw = spec.memory_bandwidth * 0.85 * attn_eff
        self._attn_tc_denom = (
            spec.tensor_core_throughput(_tensor_precision(spec)) * attn_eff
        )
        # Kernel cost-model parameters are pure functions of the GPU spec; the backend
        # resolved them once at construction (resolving per GEMM estimate used to be a
        # measurable share of the scheduler-simulation profile).
        self._kernel_params = self.backend.gemm_cost_params
        self._reference_params = self.backend.reference_cost_params
        # Telemetry: registering with a tracer routes cache_stats() into the run summary
        # (the engine emits no events of its own — its costs appear via the scheduler's
        # iteration / fast-forward spans).  Schedulers also register their engine, so a
        # tracer passed at either layer ends up attached exactly once.
        if tracer is not None:
            tracer.attach_engine(self)

    # ------------------------------------------------------------------ cache introspection
    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Debug snapshot of every step-cost memo cache: entries, bound and evictions.

        The hook long sweeps use to verify memoization stays effective (hits keep
        landing) and bounded (evictions only appear once a cache saturates its
        ``memo_cache_entries`` budget).
        """
        return {
            name: {
                "entries": len(cache),
                "max_entries": cache.maxsize,
                "evictions": cache.evictions,
            }
            for name, cache in self._memo_caches.items()
        }

    # ------------------------------------------------------------------ memory accounting
    def weight_memory_bytes(self) -> int:
        """GPU memory occupied by one GPU's shard of the model weights.

        Deployed-size accounting lives on the backend (linear layers at the system's
        bytes-per-parameter; embeddings / LM head kept FP16, vocab-parallel across the
        TP group); this is its engine-facing alias.
        """
        return self.backend.deployed_weight_bytes(self.model, self.tp_degree)

    def kv_budget_bytes(self) -> int:
        """Per-GPU KV-cache budget after weights and the activation reserve."""
        return self.backend.kv_budget_bytes(self.model, self.tp_degree)

    def kv_cache_config(self) -> KvCacheConfig:
        return KvCacheConfig(
            model=self.model,
            kv_format=self.system.kv_format,
            memory_budget_bytes=self.kv_budget_bytes(),
            tp_degree=self.tp_degree,
            host_memory_budget_bytes=self.system.host_kv_swap_bytes,
        )

    def max_batch_size(self, tokens_per_sequence: int) -> int:
        """Largest batch of equal-length sequences that fits in the KV budget."""
        config = self.kv_cache_config()
        if config.memory_budget_bytes <= 0:
            return 0
        capacity = PagedKvCache.max_batch_size(config, tokens_per_sequence)
        return min(capacity, self.system.max_batch_size)

    # ------------------------------------------------------------------ collectives
    def allreduce_time(self, num_tokens: int) -> float:
        """One FP16 ring all-reduce of ``num_tokens`` hidden-state vectors over the TP group."""
        if self.tp_degree == 1 or num_tokens <= 0:
            return 0.0
        cached = self._comm_time_cache.get(num_tokens)
        if cached is not None:
            return cached
        payload = num_tokens * self.model.hidden_size * 2.0
        ring = (
            2.0 * (self.tp_degree - 1) / self.tp_degree * payload
            / self.device.spec.interconnect_bandwidth
        )
        total = ring + _ALLREDUCE_LATENCY_S
        self._comm_time_cache[num_tokens] = total
        return total

    def kv_transfer_time(self, num_bytes: float) -> float:
        """One-way KV transfer over the GPU <-> host link (one swap-out or swap-in).

        With tensor parallelism each GPU moves only its own shard over its own link, so the
        caller passes per-GPU bytes (which is what :class:`PagedKvCache` accounts in).
        """
        if num_bytes <= 0:
            return 0.0
        return num_bytes / self.device.spec.host_link_bandwidth + _HOST_TRANSFER_LATENCY_S

    def interconnect_transfer_time(self, num_bytes: float) -> float:
        """One-way KV transfer between two replicas over the GPU interconnect.

        This is the tax a disaggregated prefill/decode cluster pays per handoff
        (DistServe-style): the finished prefill's KV blocks move from the prefill replica
        to the decode replica over the NVLink/PCIe fabric
        (:attr:`~repro.gpu.specs.GpuSpec.interconnect_bandwidth`).
        """
        if num_bytes <= 0:
            return 0.0
        return (
            num_bytes / self.device.spec.interconnect_bandwidth
            + _INTERCONNECT_TRANSFER_LATENCY_S
        )

    def recompute_time(self, num_tokens: int) -> float:
        """Estimated cost of rebuilding ``num_tokens`` of KV state by re-prefilling.

        This is what a recompute preemption pays when the victim resumes; the cost-based
        preemption policy compares it against the swap round trip.
        """
        if num_tokens <= 0:
            return 0.0
        return self.prefill_time(1, num_tokens)

    def _logits_gather_time(self, num_tokens: int) -> float:
        """All-gather of the vocab-parallel logits after the LM head."""
        if self.tp_degree == 1 or num_tokens <= 0:
            return 0.0
        payload = num_tokens * self.model.vocab_size * 2.0
        ring = (
            (self.tp_degree - 1) / self.tp_degree * payload
            / self.device.spec.interconnect_bandwidth
        )
        return ring + _ALLREDUCE_LATENCY_S

    # ------------------------------------------------------------------ per-layer timing
    def layer_gemm_time(self, num_tokens: int) -> float:
        """Per-GPU GEMM time of one transformer layer processing ``num_tokens`` tokens."""
        cached = self._gemm_time_cache.get(num_tokens)
        if cached is not None:
            return cached
        gemms = decode_layer_gemms(self.model, num_tokens, tp_degree=self.tp_degree)
        # Inlined kernel.estimate(shape).latency_s: the report object, device resolution
        # and cost-param lookup are skipped, but each shape's latency remains the same
        # gemm_cost(...).total sum the public estimate API returns.
        spec = self.device.spec
        params = self._kernel_params
        total = 0.0
        for shape in gemms.attention_gemms():
            total += gemm_cost(shape, spec, params).total
        if self.model.is_moe:
            # Per-expert FFN GEMMs executed as one grouped GEMM (persistent kernel).
            total += sum(gemm_cost(s, spec, params).total for s in gemms.gate_up)
            total += sum(gemm_cost(s, spec, params).total for s in gemms.down)
        else:
            for shape in gemms.ffn_gemms():
                total += gemm_cost(shape, spec, params).total
        self._gemm_time_cache[num_tokens] = total
        return total

    def layer_attention_time(self, batch_size: int, context_length: int) -> float:
        cost = decode_attention_cost(
            self.model,
            self.device.spec,
            batch_size,
            context_length,
            self.backend.kv_bytes_per_element,
            attention_efficiency=self.backend.attention_efficiency,
            tp_degree=self.tp_degree,
        )
        return cost.total

    def layer_others_time(self, num_tokens: int) -> float:
        cached = self._others_time_cache.get(num_tokens)
        if cached is not None:
            return cached
        elementwise_bytes = (
            _ELEMENTWISE_PASSES * 2.0 * num_tokens * self.model.hidden_size * 2.0
        )
        elementwise = elementwise_bytes / (self.device.spec.memory_bandwidth * 0.7)
        fixed = 6.0e-6 + self.system.framework_overhead_per_layer_s
        total = self.system.others_scale * elementwise + fixed
        self._others_time_cache[num_tokens] = total
        return total

    def layer_breakdown(self, batch_size: int, context_length: int) -> LayerBreakdown:
        """Per-layer decode time split — the quantity plotted in Figures 4 and 10."""
        return LayerBreakdown(
            gemm=self.layer_gemm_time(batch_size),
            attention=self.layer_attention_time(batch_size, context_length),
            others=self.layer_others_time(batch_size),
            comm=2.0 * self.allreduce_time(batch_size),
        )

    # ------------------------------------------------------------------ step / request timing
    def lm_head_time(self, num_tokens: int) -> float:
        if num_tokens <= 0:
            return 0.0
        cached = self._lm_head_cache.get(num_tokens)
        if cached is not None:
            return cached
        shape = GemmShape(num_tokens, self.model.vocab_size // self.tp_degree, self.model.hidden_size)
        # LM head runs under the backend's reference kernel (FP16 unless the profile
        # overrides it): logits stay full precision in every system compared.
        total = gemm_cost(shape, self.device.spec, self._reference_params).total
        total += self._logits_gather_time(num_tokens)
        self._lm_head_cache[num_tokens] = total
        return total

    def decode_step_time(self, batch_size: int, context_length: int) -> float:
        """Latency of generating one token for every sequence in a uniform batch."""
        per_layer = self.layer_breakdown(batch_size, context_length).total
        return per_layer * self.model.num_layers + self.lm_head_time(batch_size)

    def ragged_decode_step_time(
        self, context_lengths: Union[Sequence[int], np.ndarray]
    ) -> float:
        """Latency of one decode iteration over a ragged batch.

        Each sequence is charged attention over *its own* cached context instead of the batch
        maximum — the uniform :meth:`decode_step_time` is the equal-lengths special case.
        ``context_lengths`` may be a list or a NumPy integer array; either way the cost is a
        closed form of ``(batch_size, sum(contexts))`` evaluated as one exact integer
        reduction (see :meth:`decode_iteration_time`), not a per-sequence Python loop.
        """
        return self.mixed_step_time(context_lengths, [])

    # ---- decode-iteration closed form (the fast-forward substrate) -----------------
    def _decode_coeffs(self, batch_size: int) -> Tuple[float, float, float, float, float]:
        """Context-independent scalars of one decode iteration at ``batch_size``."""
        cached = self._decode_coeff_cache.get(batch_size)
        if cached is None:
            kv_write = (
                2.0 * batch_size * self._attn_kv_dim * self._attn_kv_bytes
            ) / self._attn_effective_bw
            cached = (
                kv_write,
                self.layer_gemm_time(batch_size),
                self.layer_others_time(batch_size),
                2.0 * self.allreduce_time(batch_size),
                self.lm_head_time(batch_size),
            )
            self._decode_coeff_cache[batch_size] = cached
        return cached

    def _decode_step_core(self, batch_size: int, totals):
        """One decode iteration's latency as a function of the summed context length.

        ``totals`` is a float or a float64 ndarray; every operation below mirrors the
        operand order of :func:`decode_attention_cost_from_totals` composed exactly as
        :meth:`mixed_step_time` composes it, so scalar and vectorized evaluation are
        bit-identical to the stepwise path (IEEE-754 ops are elementwise identical).
        """
        kv_write, gemm, others, comm, lm_head = self._decode_coeffs(batch_size)
        kv_elements = 2.0 * totals * self._attn_kv_dim
        kv_read = kv_elements * self._attn_kv_bytes / self._attn_effective_bw
        flops = 8.0 * totals * self._attn_heads * self.model.head_dim
        compute = flops / self._attn_tc_denom
        attention = kv_read + kv_write + compute + _ATTENTION_LAUNCH_OVERHEAD_S
        per_layer = gemm + attention + others + comm
        return per_layer * self.model.num_layers + lm_head

    def decode_iteration_time(self, batch_size: int, total_context: int) -> float:
        """Latency of one pure-decode iteration given the *summed* context length.

        The memoized scalar form of the ragged decode model: all per-sequence terms are
        linear, so ``(batch_size, total_context)`` determines the iteration cost exactly.
        """
        key = (batch_size, total_context)
        cached = self._decode_step_cache.get(key)
        if cached is None:
            cached = float(self._decode_step_core(batch_size, float(total_context)))
            self._decode_step_cache[key] = cached
        return cached

    def decode_iteration_times(
        self, batch_size: int, total_contexts: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`decode_iteration_time` over an array of context totals.

        This is what analytic fast-forward uses to price a whole run of decode-only
        iterations in one NumPy evaluation; each element is bit-identical to the scalar
        call at that total.
        """
        return self._decode_step_core(
            batch_size, np.asarray(total_contexts, dtype=np.float64)
        )

    def chunked_prefill_time(self, chunk_tokens: int, context_start: int = 0) -> float:
        """Latency of prefilling one chunk of a single prompt (no decode tokens alongside)."""
        return self.mixed_step_time([], [PrefillChunk(chunk_tokens, context_start)])

    def mixed_step_time(
        self,
        decode_context_lengths: Sequence[int],
        prefill_chunks: Sequence[PrefillChunk] = (),
    ) -> float:
        """Latency of one mixed scheduler iteration (ragged decode + chunked prefill).

        All decode tokens and prefill-chunk tokens share a single ragged forward pass: the
        layer GEMMs and element-wise kernels see the combined token count, while attention is
        charged per sequence (decode) and per chunk (prefill).  The LM head runs only for the
        positions that emit a token: every decode sequence plus prompt-completing chunks.
        """
        decode_batch = len(decode_context_lengths)
        if decode_batch and min(decode_context_lengths) <= 0:
            raise ValueError("context lengths must be positive")
        if not prefill_chunks:
            # Pure decode: the cost is a closed form of (batch, sum of contexts) — the
            # memoized path the scheduler and analytic fast-forward share bit for bit.
            if decode_batch == 0:
                raise ValueError("an iteration must process at least one token")
            return self.decode_iteration_time(
                decode_batch, int(sum(decode_context_lengths))
            )
        logits_tokens = decode_batch + sum(1 for c in prefill_chunks if c.produces_token)
        return self.mixed_iteration_time(
            decode_batch,
            int(sum(decode_context_lengths)),
            [(c.tokens, c.context_start) for c in prefill_chunks],
            logits_tokens,
        )

    def mixed_iteration_time(
        self,
        decode_batch: int,
        total_context: int,
        chunk_shapes: Sequence[Tuple[int, int]],
        logits_tokens: int,
    ) -> float:
        """Scalar mixed-iteration latency from the *summed* decode context length.

        The memo-backed core :meth:`mixed_step_time` delegates to, exposed directly so
        analytic fast-forward can price short pinned epochs without materializing
        per-sequence context lists or :class:`PrefillChunk` objects: ``chunk_shapes`` is
        one ``(chunk_tokens, context_start)`` pair per prefill chunk (the chunk-attention
        memo key), ``logits_tokens`` the token-emitting positions.
        """
        if not chunk_shapes:
            if decode_batch == 0:
                raise ValueError("an iteration must process at least one token")
            return self.decode_iteration_time(decode_batch, total_context)

        attention = 0.0
        if decode_batch:
            attention += self._mixed_decode_attention_times(
                decode_batch, float(total_context)
            )
        cache = self._chunk_attention_cache
        prefill_tokens = 0
        for chunk_key in chunk_shapes:
            chunk_attention = cache.get(chunk_key)
            if chunk_attention is None:
                chunk_attention = chunked_prefill_attention_cost(
                    self.model,
                    self.device.spec,
                    chunk_key[0],
                    chunk_key[1],
                    self.backend.kv_bytes_per_element,
                    attention_efficiency=self.backend.attention_efficiency,
                    tp_degree=self.tp_degree,
                ).total
                cache[chunk_key] = chunk_attention
            attention += chunk_attention
            prefill_tokens += chunk_key[0]

        total_tokens = decode_batch + prefill_tokens
        per_layer = (
            self.layer_gemm_time(total_tokens)
            + attention
            + self.layer_others_time(total_tokens)
            + 2.0 * self.allreduce_time(total_tokens)
        )
        return per_layer * self.model.num_layers + self.lm_head_time(logits_tokens)

    def _mixed_decode_attention_times(self, batch_size: int, totals):
        """``decode_attention_cost_from_totals(...).total`` over summed context lengths.

        The decode share of a mixed iteration with the hoisted scalars of
        :meth:`_decode_step_core`.  ``totals`` is a float (one iteration) or a float64
        array (a pinned epoch): every operation below is scalar/array polymorphic and
        mirrors the attention module's operand order, so both shapes are bit-identical
        to the per-iteration call :meth:`mixed_step_time` makes — one body, because that
        operand order is load-bearing for fast-vs-stepwise equivalence.
        """
        kv_elements = 2.0 * totals * self._attn_kv_dim
        kv_read = kv_elements * self._attn_kv_bytes / self._attn_effective_bw
        kv_write = (
            2.0 * batch_size * self._attn_kv_dim * self._attn_kv_bytes
        ) / self._attn_effective_bw
        flops = 8.0 * totals * self._attn_heads * self.model.head_dim
        compute = flops / self._attn_tc_denom
        return kv_read + kv_write + compute + _ATTENTION_LAUNCH_OVERHEAD_S

    def mixed_step_times(
        self,
        decode_batch: int,
        decode_total_contexts: Optional[np.ndarray],
        chunk_runs: Sequence[Tuple[int, np.ndarray]],
        logits_tokens: Optional[int] = None,
    ) -> np.ndarray:
        """Vectorized :meth:`mixed_step_time` over a run of pinned-composition iterations.

        The batch API analytic fast-forward uses to price a whole mixed prefill+decode
        *epoch* — consecutive iterations whose batch composition is frozen (same decode
        batch size, same prefill chunk sizes, no admissions, completions or first-token
        emissions) while the decode contexts grow by one token and each chunk's cached
        prefix grows by its chunk size per iteration:

        * ``decode_total_contexts`` — per-iteration *summed* decode context lengths
          (ignored when ``decode_batch`` is 0);
        * ``chunk_runs`` — one ``(chunk_tokens, context_starts)`` pair per resident
          prefill, in the scheduler's chunk-planning order, where ``context_starts`` holds
          that chunk's cached-prefix length at each iteration;
        * ``logits_tokens`` — positions emitting a token per iteration (defaults to
          ``decode_batch``: inside an epoch no prefill chunk completes a prompt).

        Element ``i`` is bit-identical to the scalar :meth:`mixed_step_time` of iteration
        ``i`` — same closed forms, same accumulation order, evaluated elementwise — which
        is the contract the fast-forward equivalence suite pins.
        """
        if not chunk_runs:
            if decode_batch <= 0:
                raise ValueError("an iteration must process at least one token")
            return self.decode_iteration_times(decode_batch, decode_total_contexts)
        prefill_tokens = sum(tokens for tokens, _ in chunk_runs)
        total_tokens = decode_batch + prefill_tokens

        attention: Optional[np.ndarray] = None
        if decode_batch:
            totals = np.asarray(decode_total_contexts, dtype=np.float64)
            attention = self._mixed_decode_attention_times(decode_batch, totals)
        spec = self.device.spec
        kv_bytes = self.backend.kv_bytes_per_element
        for tokens, starts in chunk_runs:
            chunk_attention = chunked_prefill_attention_times(
                self.model,
                spec,
                tokens,
                starts,
                kv_bytes,
                attention_efficiency=self.backend.attention_efficiency,
                tp_degree=self.tp_degree,
            )
            attention = (
                chunk_attention if attention is None else attention + chunk_attention
            )

        per_layer = (
            self.layer_gemm_time(total_tokens)
            + attention
            + self.layer_others_time(total_tokens)
            + 2.0 * self.allreduce_time(total_tokens)
        )
        if logits_tokens is None:
            logits_tokens = decode_batch
        return per_layer * self.model.num_layers + self.lm_head_time(logits_tokens)

    def prefill_time(self, batch_size: int, prompt_length: int,
                     cached_prefix_tokens: int = 0) -> float:
        """Approximate prompt-processing time for a batch of requests.

        Prefill GEMMs are compute-bound; we charge one GPU's share of the model's full
        forward FLOPs at a sustained fraction of the Tensor-Core peak, plus the quadratic
        attention term and the per-layer tensor-parallel all-reduces.

        ``cached_prefix_tokens`` models a prefix-cache hit (fork-on-admit): the first
        ``cached_prefix_tokens`` positions' KV is already resident, so only the suffix is
        processed.  Under causal attention the suffix's cost is exactly the full prefill
        minus a prefill of the cached head alone — positions ``C..L`` run their GEMMs,
        communication and attention over everything before them.
        """
        if cached_prefix_tokens:
            if not 0 <= cached_prefix_tokens < prompt_length:
                raise ValueError(
                    "cached_prefix_tokens must be in [0, prompt_length)"
                )
            return self.prefill_time(batch_size, prompt_length) - self.prefill_time(
                batch_size, cached_prefix_tokens
            )
        flops = 2.0 * batch_size * prompt_length * self.model.active_params_per_token() / self.tp_degree
        mma_precision = self.backend.mma_precision
        peak = self.device.spec.tensor_core_throughput(mma_precision)
        gemm = flops / (peak * 0.75)
        attention = (
            prefill_attention_cost(
                self.model, self.device.spec, batch_size, prompt_length,
                attention_efficiency=self.system.attention_efficiency,
                tp_degree=self.tp_degree,
            ).total
            * self.model.num_layers
        )
        comm = 2.0 * self.allreduce_time(batch_size * prompt_length) * self.model.num_layers
        return gemm + attention + comm

    # ------------------------------------------------------------------ throughput
    def throughput(self, batch_size: int, input_len: int = 1024, output_len: int = 512
                   ) -> ThroughputPoint:
        """Sustained token generation throughput at a fixed batch size.

        A batch of requests is processed as: one prefill over ``input_len`` tokens, then
        ``output_len`` decode steps with the context growing from ``input_len`` to
        ``input_len + output_len``.  Throughput counts generated tokens only, matching the
        paper's tokens/s metric; for TP groups it is the throughput of the whole group.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        fits = batch_size <= self.max_batch_size(peak_resident_tokens(input_len, output_len))

        # Decode cost grows linearly with context; evaluating at the mean context length is
        # exact for the linear terms and a very tight approximation overall.
        mean_context = input_len + output_len / 2.0
        decode_step = self.decode_step_time(batch_size, int(mean_context))
        decode_total = decode_step * output_len
        prefill = self.prefill_time(batch_size, input_len)
        request_latency = prefill + decode_total
        tokens = batch_size * output_len
        return ThroughputPoint(
            batch_size=batch_size,
            tokens_per_second=tokens / request_latency,
            decode_step_s=decode_step,
            request_latency_s=request_latency,
            fits_in_memory=fits,
        )

    def peak_throughput(
        self,
        input_len: int = 1024,
        output_len: int = 512,
        batch_sizes: Optional[Sequence[int]] = None,
    ) -> ServingResult:
        """Search batch sizes (1..256, plus the memory limit) for the peak throughput."""
        if not self.supported:
            return ServingResult(system=self.system.name, model=self.model.name,
                                 peak_throughput=0.0, peak_batch_size=0, oom=True,
                                 tp_degree=self.tp_degree)
        max_batch = self.max_batch_size(peak_resident_tokens(input_len, output_len))
        if max_batch < 1:
            return ServingResult(system=self.system.name, model=self.model.name,
                                 peak_throughput=0.0, peak_batch_size=0, oom=True,
                                 tp_degree=self.tp_degree)

        if batch_sizes is None:
            batch_sizes = [1, 2, 4, 8, 13, 16, 24, 32, 36, 45, 46, 48, 53, 64, 96, 100, 109,
                           119, 124, 128, 144, 160, 184, 194, 200, 225, 256]
        candidates = sorted({b for b in batch_sizes if 1 <= b <= max_batch} | {max_batch})

        sweep: List[ThroughputPoint] = []
        best: Optional[ThroughputPoint] = None
        for batch in candidates:
            point = self.throughput(batch, input_len, output_len)
            sweep.append(point)
            if best is None or point.tokens_per_second > best.tokens_per_second:
                best = point
        assert best is not None
        return ServingResult(
            system=self.system.name,
            model=self.model.name,
            peak_throughput=best.tokens_per_second,
            peak_batch_size=best.batch_size,
            sweep=sweep,
            tp_degree=self.tp_degree,
        )
