"""Paged KV-cache manager (PagedAttention-style, Section 6).

The serving systems in the paper manage the KV cache in fixed-size blocks so that memory is
allocated on demand and sequences of different lengths share the pool without fragmentation.
This module implements that block manager exactly (allocation, append, free, copy-on-fork),
because it is what determines the maximum batch size under the 80 GB budget in Table 1 — and
because its invariants (no double allocation, capacity never exceeded, blocks returned on
free) are good property-test material.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..quant.kvcache import kv_bytes_per_element
from .models import ModelConfig

__all__ = ["KvCacheConfig", "PagedKvCache", "KvCacheOutOfMemory", "SequenceState"]


class KvCacheOutOfMemory(RuntimeError):
    """Raised when a sequence needs a KV block but the pool is exhausted."""


@dataclass(frozen=True)
class KvCacheConfig:
    """Static configuration of the paged KV-cache pool.

    With tensor parallelism (``tp_degree > 1``) the pool models *one GPU's* shard: each GPU
    stores only its KV heads, so a token costs ``kv_dim_per_gpu / kv_dim`` of the full-model
    bytes and the per-GPU memory budget bounds the shared batch.
    """

    model: ModelConfig
    kv_format: str = "int8"
    block_tokens: int = 16            # tokens per block (vLLM default granularity)
    memory_budget_bytes: int = 0      # pool size; set by the serving engine
    tp_degree: int = 1                # tensor-parallel group size (per-GPU shard accounting)

    @property
    def bytes_per_token(self) -> float:
        """KV bytes one token occupies on one GPU across all layers (K and V)."""
        full = self.model.kv_bytes_per_token(kv_bytes_per_element(self.kv_format))
        if self.tp_degree == 1:
            return full
        return full * self.model.kv_dim_per_gpu(self.tp_degree) / self.model.kv_dim

    @property
    def bytes_per_block(self) -> int:
        return int(math.ceil(self.block_tokens * self.bytes_per_token))

    @property
    def total_blocks(self) -> int:
        if self.memory_budget_bytes <= 0:
            return 0
        return self.memory_budget_bytes // self.bytes_per_block

    def blocks_for_tokens(self, num_tokens: int) -> int:
        return math.ceil(num_tokens / self.block_tokens)


@dataclass
class SequenceState:
    """Book-keeping for one sequence resident in the cache."""

    seq_id: int
    num_tokens: int = 0
    blocks: List[int] = field(default_factory=list)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)


class PagedKvCache:
    """Block-granular KV-cache allocator."""

    def __init__(self, config: KvCacheConfig):
        if config.memory_budget_bytes <= 0:
            raise ValueError("memory_budget_bytes must be positive")
        self.config = config
        self._free_blocks: List[int] = list(range(config.total_blocks))
        self._sequences: Dict[int, SequenceState] = {}

    # ------------------------------------------------------------------ queries
    @property
    def num_free_blocks(self) -> int:
        return len(self._free_blocks)

    @property
    def num_used_blocks(self) -> int:
        return self.config.total_blocks - self.num_free_blocks

    @property
    def num_sequences(self) -> int:
        return len(self._sequences)

    def used_bytes(self) -> int:
        return self.num_used_blocks * self.config.bytes_per_block

    def utilization(self) -> float:
        total = self.config.total_blocks
        return self.num_used_blocks / total if total else 0.0

    def sequence(self, seq_id: int) -> SequenceState:
        return self._sequences[seq_id]

    def can_admit(self, num_tokens: int) -> bool:
        """Would a new sequence of ``num_tokens`` fit right now?"""
        return self.config.blocks_for_tokens(num_tokens) <= self.num_free_blocks

    def blocks_needed_to_extend(self, seq_id: int, num_tokens: int = 1) -> int:
        """Additional blocks a resident sequence needs to grow by ``num_tokens`` tokens."""
        state = self._sequences.get(seq_id)
        if state is None:
            raise KeyError(f"unknown sequence {seq_id}")
        if num_tokens < 0:
            raise ValueError("num_tokens must be non-negative")
        return max(0, self.config.blocks_for_tokens(state.num_tokens + num_tokens) - state.num_blocks)

    # ------------------------------------------------------------------ mutation
    def add_sequence(self, seq_id: int, prompt_tokens: int) -> SequenceState:
        """Admit a new sequence with its prompt already cached (prefill)."""
        if seq_id in self._sequences:
            raise ValueError(f"sequence {seq_id} already resident")
        if prompt_tokens < 0:
            raise ValueError("prompt_tokens must be non-negative")
        needed = self.config.blocks_for_tokens(prompt_tokens) if prompt_tokens else 0
        if needed > self.num_free_blocks:
            raise KvCacheOutOfMemory(
                f"sequence {seq_id} needs {needed} blocks, only {self.num_free_blocks} free"
            )
        state = SequenceState(seq_id=seq_id, num_tokens=prompt_tokens,
                              blocks=[self._free_blocks.pop() for _ in range(needed)])
        self._sequences[seq_id] = state
        return state

    def append_token(self, seq_id: int) -> SequenceState:
        """Grow a sequence by one decoded token, allocating a new block when needed."""
        return self.extend_sequence(seq_id, 1)

    def extend_sequence(self, seq_id: int, num_tokens: int) -> SequenceState:
        """Grow a resident sequence by ``num_tokens`` tokens (e.g. one prefill chunk).

        Allocation is all-or-nothing: if the pool cannot supply every block the extension
        needs, :class:`KvCacheOutOfMemory` is raised and the sequence is left unchanged.
        """
        state = self._sequences.get(seq_id)
        if state is None:
            raise KeyError(f"unknown sequence {seq_id}")
        if num_tokens < 0:
            raise ValueError("num_tokens must be non-negative")
        needed = self.blocks_needed_to_extend(seq_id, num_tokens)
        if needed > self.num_free_blocks:
            raise KvCacheOutOfMemory(
                f"sequence {seq_id} needs {needed} blocks to grow by {num_tokens} tokens, "
                f"only {self.num_free_blocks} free"
            )
        state.blocks.extend(self._free_blocks.pop() for _ in range(needed))
        state.num_tokens += num_tokens
        return state

    def free_sequence(self, seq_id: int) -> int:
        """Release a finished sequence; returns the number of blocks returned to the pool."""
        state = self._sequences.pop(seq_id, None)
        if state is None:
            raise KeyError(f"unknown sequence {seq_id}")
        self._free_blocks.extend(state.blocks)
        return len(state.blocks)

    # ------------------------------------------------------------------ capacity planning
    @staticmethod
    def max_batch_size(config: KvCacheConfig, tokens_per_sequence: int) -> int:
        """Largest number of equal-length sequences the pool can hold simultaneously."""
        if tokens_per_sequence <= 0:
            raise ValueError("tokens_per_sequence must be positive")
        blocks_per_seq = config.blocks_for_tokens(tokens_per_sequence)
        if blocks_per_seq == 0:
            return 0
        return config.total_blocks // blocks_per_seq
