"""Paged KV-cache manager (PagedAttention-style, Section 6).

The serving systems in the paper manage the KV cache in fixed-size blocks so that memory is
allocated on demand and sequences of different lengths share the pool without fragmentation.
This module implements that block manager exactly (allocation, append, free, copy-on-fork),
because it is what determines the maximum batch size under the 80 GB budget in Table 1 — and
because its invariants (no double allocation, capacity never exceeded, blocks returned on
free) are good property-test material.

Beyond the device pool the manager models two production mechanisms:

* **Swap-based preemption** — a sequence's blocks can be swapped out to a bounded
  host-memory pool (:meth:`PagedKvCache.swap_out` / :meth:`PagedKvCache.swap_in`, the vLLM
  ``swap_space`` mechanism), releasing device blocks without discarding the KV state.  The
  scheduler charges the transfer over the host link via the serving engine.
* **Copy-on-fork** — :meth:`PagedKvCache.fork_sequence` creates a child that shares the
  parent's blocks under reference counting; growing a sequence whose tail block is shared
  copies that block first (copy-on-write).  This is the building block for prefix caching
  across requests sharing a system prompt.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List

from ..backend import kv_format_bytes
from .models import ModelConfig

__all__ = ["KvCacheConfig", "PagedKvCache", "KvCacheOutOfMemory", "SequenceState"]


class KvCacheOutOfMemory(RuntimeError):
    """Raised when a sequence needs a KV block but the pool is exhausted."""


@dataclass(frozen=True)
class KvCacheConfig:
    """Static configuration of the paged KV-cache pool.

    With tensor parallelism (``tp_degree > 1``) the pool models *one GPU's* shard: each GPU
    stores only its KV heads, so a token costs ``kv_dim_per_gpu / kv_dim`` of the full-model
    bytes and the per-GPU memory budget bounds the shared batch.
    """

    model: ModelConfig
    kv_format: str = "int8"
    block_tokens: int = 16            # tokens per block (vLLM default granularity)
    memory_budget_bytes: int = 0      # pool size; set by the serving engine
    tp_degree: int = 1                # tensor-parallel group size (per-GPU shard accounting)
    #: Host-memory swap pool (vLLM ``swap_space``): bytes of pinned host memory available to
    #: park swapped-out sequences.  0 disables swap-based preemption.
    host_memory_budget_bytes: int = 0

    # Derived geometry is memoized: the scheduler reads these on every block allocation,
    # and recomputing model-config arithmetic per token append dominated its profile.
    # (cached_property stores straight into __dict__, which frozen dataclasses permit.)
    @cached_property
    def bytes_per_token(self) -> float:
        """KV bytes one token occupies on one GPU across all layers (K and V)."""
        full = self.model.kv_bytes_per_token(kv_format_bytes(self.kv_format))
        if self.tp_degree == 1:
            return full
        return full * self.model.kv_dim_per_gpu(self.tp_degree) / self.model.kv_dim

    @cached_property
    def bytes_per_block(self) -> int:
        return int(math.ceil(self.block_tokens * self.bytes_per_token))

    @cached_property
    def total_blocks(self) -> int:
        if self.memory_budget_bytes <= 0:
            return 0
        return self.memory_budget_bytes // self.bytes_per_block

    @cached_property
    def total_host_blocks(self) -> int:
        if self.host_memory_budget_bytes <= 0:
            return 0
        return self.host_memory_budget_bytes // self.bytes_per_block

    def blocks_for_tokens(self, num_tokens: int) -> int:
        return math.ceil(num_tokens / self.block_tokens)


@dataclass
class SequenceState:
    """Book-keeping for one sequence resident in the cache."""

    seq_id: int
    num_tokens: int = 0
    blocks: List[int] = field(default_factory=list)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)


class PagedKvCache:
    """Block-granular KV-cache allocator with a host-memory swap pool and copy-on-fork.

    Device blocks are reference counted: :meth:`fork_sequence` lets two sequences share a
    block (``num_used_blocks`` counts *physical* blocks, so the per-sequence block counts of
    forked sequences may sum to more than the pool holds).  Swapped-out sequences live in a
    separate host block pool and hold no device blocks.
    """

    def __init__(self, config: KvCacheConfig):
        if config.memory_budget_bytes <= 0:
            raise ValueError("memory_budget_bytes must be positive")
        self.config = config
        self._free_blocks: List[int] = list(range(config.total_blocks))
        self._sequences: Dict[int, SequenceState] = {}
        self._ref_counts: Dict[int, int] = {}
        self._free_host_blocks: List[int] = list(range(config.total_host_blocks))
        self._swapped: Dict[int, SequenceState] = {}
        # Optional telemetry (bind_tracer): emits a "kv_oom" event whenever the pool
        # rejects an allocation.  None by default — the allocator has no clock of its
        # own, so the owning scheduler supplies one alongside the tracer.
        self._tracer = None
        self._trace_replica = 0
        self._trace_clock = None

    def bind_tracer(self, tracer, replica: int = 0, clock_fn=None) -> None:
        """Attach a :class:`~repro.telemetry.Tracer` (``kv_oom`` pressure events).

        ``clock_fn`` is a zero-argument callable returning the current simulated time
        (the scheduler's live clock); without one, events are stamped at 0.
        """
        self._tracer = tracer
        self._trace_replica = replica
        self._trace_clock = clock_fn

    def _raise_oom(self, message: str, needed_blocks: int) -> None:
        """Emit a ``kv_oom`` telemetry event (when traced) and raise."""
        if self._tracer is not None:
            self._tracer.emit(
                "kv_oom",
                self._trace_clock() if self._trace_clock is not None else 0.0,
                replica=self._trace_replica,
                needed_blocks=needed_blocks, free_blocks=self.num_free_blocks,
            )
        raise KvCacheOutOfMemory(message)

    # ------------------------------------------------------------------ queries
    @property
    def num_free_blocks(self) -> int:
        return len(self._free_blocks)

    @property
    def num_used_blocks(self) -> int:
        return self.config.total_blocks - self.num_free_blocks

    @property
    def num_sequences(self) -> int:
        return len(self._sequences)

    @property
    def num_free_host_blocks(self) -> int:
        return len(self._free_host_blocks)

    @property
    def num_used_host_blocks(self) -> int:
        return self.config.total_host_blocks - self.num_free_host_blocks

    @property
    def num_swapped_sequences(self) -> int:
        return len(self._swapped)

    def used_bytes(self) -> int:
        return self.num_used_blocks * self.config.bytes_per_block

    def utilization(self) -> float:
        total = self.config.total_blocks
        return self.num_used_blocks / total if total else 0.0

    def host_utilization(self) -> float:
        total = self.config.total_host_blocks
        return self.num_used_host_blocks / total if total else 0.0

    def sequence(self, seq_id: int) -> SequenceState:
        return self._sequences[seq_id]

    def is_swapped(self, seq_id: int) -> bool:
        return seq_id in self._swapped

    def swapped_sequence(self, seq_id: int) -> SequenceState:
        return self._swapped[seq_id]

    def can_admit(self, num_tokens: int) -> bool:
        """Would a new sequence of ``num_tokens`` fit right now?"""
        return self.config.blocks_for_tokens(num_tokens) <= self.num_free_blocks

    def blocks_needed_to_extend(self, seq_id: int, num_tokens: int = 1) -> int:
        """Additional blocks a resident sequence needs to grow by ``num_tokens`` tokens."""
        state = self._sequences.get(seq_id)
        if state is None:
            raise KeyError(f"unknown sequence {seq_id}")
        if num_tokens < 0:
            raise ValueError("num_tokens must be non-negative")
        return max(0, self.config.blocks_for_tokens(state.num_tokens + num_tokens) - state.num_blocks)

    # ------------------------------------------------------------------ block bookkeeping
    def _alloc_block(self) -> int:
        block = self._free_blocks.pop()
        self._ref_counts[block] = 1
        return block

    def _release_block(self, block: int) -> int:
        """Drop one reference; returns 1 if the block went back to the free pool."""
        remaining = self._ref_counts[block] - 1
        if remaining == 0:
            del self._ref_counts[block]
            self._free_blocks.append(block)
            return 1
        self._ref_counts[block] = remaining
        return 0

    def block_ref_count(self, block: int) -> int:
        """Current reference count of a physical block (0 when free)."""
        return self._ref_counts.get(block, 0)

    def retain_block(self, block: int) -> None:
        """Take one extra reference on an allocated block.

        This is how a prefix cache keeps a published block alive after the sequence that
        prefilled it is freed: the cache holds one reference per cached block, live
        sequences hold theirs, and the block returns to the free pool only when the last
        holder releases it.
        """
        if block not in self._ref_counts:
            raise KeyError(f"block {block} is not allocated")
        self._ref_counts[block] += 1

    def release_block(self, block: int) -> int:
        """Drop one reference on an allocated block; returns 1 if it went back to the pool."""
        if block not in self._ref_counts:
            raise KeyError(f"block {block} is not allocated")
        return self._release_block(block)

    def shares_blocks(self, seq_id: int) -> bool:
        """True when any of a resident sequence's blocks is shared (fork or prefix cache).

        Such a sequence cannot be swapped out; victim selection uses this to prefer
        swappable residents under swap-leaning preemption policies.
        """
        state = self._sequences.get(seq_id)
        if state is None:
            return False
        ref_counts = self._ref_counts
        return any(ref_counts[b] > 1 for b in state.blocks)

    # ------------------------------------------------------------------ mutation
    def add_sequence(self, seq_id: int, prompt_tokens: int) -> SequenceState:
        """Admit a new sequence with its prompt already cached (prefill)."""
        if seq_id in self._sequences or seq_id in self._swapped:
            raise ValueError(f"sequence {seq_id} already resident")
        if prompt_tokens < 0:
            raise ValueError("prompt_tokens must be non-negative")
        needed = self.config.blocks_for_tokens(prompt_tokens) if prompt_tokens else 0
        if needed > self.num_free_blocks:
            self._raise_oom(
                f"sequence {seq_id} needs {needed} blocks, only {self.num_free_blocks} free",
                needed,
            )
        state = SequenceState(seq_id=seq_id, num_tokens=prompt_tokens,
                              blocks=[self._alloc_block() for _ in range(needed)])
        self._sequences[seq_id] = state
        return state

    def append_token(self, seq_id: int) -> SequenceState:
        """Grow a sequence by one decoded token, allocating a new block when needed."""
        return self.extend_sequence(seq_id, 1)

    def extend_sequence(self, seq_id: int, num_tokens: int) -> SequenceState:
        """Grow a resident sequence by ``num_tokens`` tokens (e.g. one prefill chunk).

        Allocation is all-or-nothing: if the pool cannot supply every block the extension
        needs, :class:`KvCacheOutOfMemory` is raised and the sequence is left unchanged.
        Growing into a tail block shared with a fork first copies that block (copy-on-write),
        which costs one extra block.

        This is the allocator's hottest entry point (one call per decode-token append, one
        per fast-forward jump per sequence), so the block math is inlined and new blocks
        are claimed from the free list in one slice instead of block-at-a-time pops.
        """
        state = self._sequences.get(seq_id)
        if state is None:
            raise KeyError(f"unknown sequence {seq_id}")
        return self.extend_state(state, num_tokens)

    def extend_state(self, state: SequenceState, num_tokens: int) -> SequenceState:
        """:meth:`extend_sequence` for a caller already holding the sequence's state.

        The scheduler resolves each resident's :class:`SequenceState` once per iteration
        (it also needs the current token count), so the grow path skips the second id
        lookup.  ``state`` must be device-resident (obtained via :meth:`sequence`).
        """
        if num_tokens < 0:
            raise ValueError("num_tokens must be non-negative")
        seq_id = state.seq_id
        blocks = state.blocks
        block_tokens = self.config.block_tokens
        # max(0, blocks_for_tokens(num_tokens + growth) - held): integer form of the
        # public blocks_needed_to_extend, minus the per-call lookups.
        needed = (state.num_tokens + num_tokens + block_tokens - 1) // block_tokens - len(blocks)
        if needed < 0:
            needed = 0
        copy_tail = (
            num_tokens > 0
            and bool(blocks)
            and self._ref_counts[blocks[-1]] > 1
            and state.num_tokens % block_tokens != 0
        )
        free = self._free_blocks
        if needed + (1 if copy_tail else 0) > len(free):
            self._raise_oom(
                f"sequence {seq_id} needs {needed + (1 if copy_tail else 0)} blocks to grow "
                f"by {num_tokens} tokens, only {len(free)} free",
                needed + (1 if copy_tail else 0),
            )
        if copy_tail:
            # The partially filled tail is shared with a fork: copy before writing into it.
            shared_tail = blocks[-1]
            blocks[-1] = self._alloc_block()
            self._release_block(shared_tail)
        if needed:
            fresh = free[-needed:]
            del free[-needed:]
            ref_counts = self._ref_counts
            for block in fresh:
                ref_counts[block] = 1
            blocks.extend(fresh)
        state.num_tokens += num_tokens
        return state

    def grow_states(self, states: List[SequenceState], num_tokens: int) -> None:
        """Grow several resident *unforked* sequences by the same token count.

        The fast-forward bulk path: one call grows a whole decode batch by ``num_tokens``
        tokens each, with the block math inlined per sequence.  The caller guarantees no
        sequence's *partial tail block* is shared, so the copy-on-write tail check is
        skipped.  The scheduler satisfies this even with prefix caching enabled: cache
        shares (:meth:`fork_from_blocks`, published prefixes) are always block-aligned,
        so a shared block is never the growing tail.  Allocation remains all-or-nothing
        per sequence, and callers pre-check total demand so exhaustion cannot strike
        midway.
        """
        if num_tokens < 0:
            raise ValueError("num_tokens must be non-negative")
        free = self._free_blocks
        ref_counts = self._ref_counts
        block_tokens = self.config.block_tokens
        for state in states:
            blocks = state.blocks
            needed = (
                (state.num_tokens + num_tokens + block_tokens - 1) // block_tokens
                - len(blocks)
            )
            if needed > 0:
                if needed > len(free):
                    self._raise_oom(
                        f"sequence {state.seq_id} needs {needed} blocks to grow by "
                        f"{num_tokens} tokens, only {len(free)} free",
                        needed,
                    )
                fresh = free[-needed:]
                del free[-needed:]
                for block in fresh:
                    ref_counts[block] = 1
                blocks.extend(fresh)
            state.num_tokens += num_tokens

    def truncate_sequence(self, seq_id: int, num_tokens: int) -> SequenceState:
        """Shrink a resident sequence to ``num_tokens``, releasing now-unused blocks."""
        state = self._sequences.get(seq_id)
        if state is None:
            raise KeyError(f"unknown sequence {seq_id}")
        if num_tokens < 0 or num_tokens > state.num_tokens:
            raise ValueError(
                f"cannot truncate sequence {seq_id} of {state.num_tokens} tokens to {num_tokens}"
            )
        keep = self.config.blocks_for_tokens(num_tokens) if num_tokens else 0
        while state.num_blocks > keep:
            self._release_block(state.blocks.pop())
        state.num_tokens = num_tokens
        return state

    def fork_sequence(self, parent_id: int, child_id: int) -> SequenceState:
        """Fork a resident sequence: the child shares the parent's blocks (copy-on-fork).

        Sharing is reference counted, so freeing either sequence only returns blocks no
        other sequence still references; growth through a shared tail block copies it first
        (see :meth:`extend_sequence`).  Forked (block-sharing) sequences cannot be swapped.
        """
        parent = self._sequences.get(parent_id)
        if parent is None:
            raise KeyError(f"unknown (or swapped-out) sequence {parent_id}")
        if child_id in self._sequences or child_id in self._swapped:
            raise ValueError(f"sequence {child_id} already resident")
        for block in parent.blocks:
            self._ref_counts[block] += 1
        child = SequenceState(seq_id=child_id, num_tokens=parent.num_tokens,
                              blocks=list(parent.blocks))
        self._sequences[child_id] = child
        return child

    def fork_from_blocks(self, seq_id: int, blocks: List[int]) -> SequenceState:
        """Admit a sequence that starts life sharing ``blocks`` (prefix-cache fork-on-admit).

        The blocks must be allocated (typically held by a prefix cache) and are taken as a
        *full-block* prefix: the new sequence holds ``len(blocks) * block_tokens`` tokens of
        already-computed KV and grows past them with fresh allocations.  Because the shared
        span is block-aligned, the shared blocks can never become a partially-filled tail,
        so growth never triggers the copy-on-write path.
        """
        if seq_id in self._sequences or seq_id in self._swapped:
            raise ValueError(f"sequence {seq_id} already resident")
        ref_counts = self._ref_counts
        for block in blocks:
            if block not in ref_counts:
                raise KeyError(f"block {block} is not allocated")
        for block in blocks:
            ref_counts[block] += 1
        state = SequenceState(
            seq_id=seq_id,
            num_tokens=len(blocks) * self.config.block_tokens,
            blocks=list(blocks),
        )
        self._sequences[seq_id] = state
        return state

    def free_sequence(self, seq_id: int) -> int:
        """Release a finished sequence (device- or host-resident); returns blocks freed."""
        state = self._sequences.pop(seq_id, None)
        if state is not None:
            # Inlined _release_block loop: freeing runs once per completed request but
            # walks every block the sequence ever allocated.
            ref_counts = self._ref_counts
            returned = []
            for block in state.blocks:
                remaining = ref_counts[block] - 1
                if remaining == 0:
                    del ref_counts[block]
                    returned.append(block)
                else:
                    ref_counts[block] = remaining
            self._free_blocks.extend(returned)
            return len(returned)
        swapped = self._swapped.pop(seq_id, None)
        if swapped is not None:
            self._free_host_blocks.extend(swapped.blocks)
            return len(swapped.blocks)
        raise KeyError(f"unknown sequence {seq_id}")

    # ------------------------------------------------------------------ swap (preemption)
    def can_swap_out(self, seq_id: int) -> bool:
        """Could ``seq_id`` be swapped to host memory right now?"""
        state = self._sequences.get(seq_id)
        if state is None:
            return False
        if any(self._ref_counts[b] > 1 for b in state.blocks):
            return False
        return state.num_blocks <= self.num_free_host_blocks

    def swap_out(self, seq_id: int) -> int:
        """Move a resident sequence's blocks to the host pool; returns bytes transferred."""
        state = self._sequences.get(seq_id)
        if state is None:
            raise KeyError(f"unknown sequence {seq_id}")
        if any(self._ref_counts[b] > 1 for b in state.blocks):
            raise ValueError(f"sequence {seq_id} shares blocks with a fork; cannot swap out")
        if state.num_blocks > self.num_free_host_blocks:
            self._raise_oom(
                f"sequence {seq_id} needs {state.num_blocks} host blocks, "
                f"only {self.num_free_host_blocks} free",
                state.num_blocks,
            )
        host_blocks = [self._free_host_blocks.pop() for _ in state.blocks]
        for block in state.blocks:
            self._release_block(block)
        del self._sequences[seq_id]
        self._swapped[seq_id] = SequenceState(seq_id=seq_id, num_tokens=state.num_tokens,
                                              blocks=host_blocks)
        return len(host_blocks) * self.config.bytes_per_block

    def can_swap_in(self, seq_id: int) -> bool:
        """Could a swapped-out ``seq_id`` return to the device pool right now?"""
        state = self._swapped.get(seq_id)
        return state is not None and state.num_blocks <= self.num_free_blocks

    def swap_in(self, seq_id: int) -> int:
        """Move a swapped-out sequence back to the device pool; returns bytes transferred."""
        state = self._swapped.get(seq_id)
        if state is None:
            raise KeyError(f"sequence {seq_id} is not swapped out")
        if state.num_blocks > self.num_free_blocks:
            self._raise_oom(
                f"sequence {seq_id} needs {state.num_blocks} device blocks to swap in, "
                f"only {self.num_free_blocks} free",
                state.num_blocks,
            )
        device_blocks = [self._alloc_block() for _ in state.blocks]
        self._free_host_blocks.extend(state.blocks)
        del self._swapped[seq_id]
        self._sequences[seq_id] = SequenceState(seq_id=seq_id, num_tokens=state.num_tokens,
                                                blocks=device_blocks)
        return len(device_blocks) * self.config.bytes_per_block

    # ------------------------------------------------------------------ capacity planning
    @staticmethod
    def max_batch_size(config: KvCacheConfig, tokens_per_sequence: int) -> int:
        """Largest number of equal-length sequences the pool can hold simultaneously."""
        if tokens_per_sequence <= 0:
            raise ValueError("tokens_per_sequence must be positive")
        blocks_per_seq = config.blocks_for_tokens(tokens_per_sequence)
        if blocks_per_seq == 0:
            return 0
        return config.total_blocks // blocks_per_seq
