"""Pluggable request routers for the multi-replica serving cluster.

A :class:`~repro.serving.cluster.ServingCluster` fronts N replicas with one router, the
way a Ray-Serve-style deployment fronts replica pools with a load balancer.  The router
answers two questions:

* :meth:`RouterPolicy.select` — which replica admits a **new request** (in disaggregated
  mode the cluster restricts the candidates to the prefill pool);
* :meth:`RouterPolicy.select_decode` — which replica receives a **migrated sequence**
  (disaggregated mode only: the decode pool, after the KV handoff).

Policies see replicas as read-only load surfaces: each candidate exposes
``replica_id`` plus its scheduler's ``outstanding_tokens`` (queued + in-flight work,
maintained incrementally by the scheduler so polling it per dispatch is O(1) per replica),
``kv_load`` (device pool utilization), ``num_resident`` and ``queue_depth``.  Ties always
break on ``replica_id`` so simulations stay deterministic.

Routers may be stateful (round-robin keeps a cursor), so :func:`get_router_policy` returns
a fresh instance per cluster — one router must never be shared between clusters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Sequence, Type, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .cluster import Replica
    from .scheduler import Request

__all__ = [
    "RouterPolicy",
    "RoundRobinRouter",
    "LeastOutstandingTokensRouter",
    "LeastKvLoadRouter",
    "CacheAffinityRouter",
    "DisaggregatedRouter",
    "ROUTER_POLICIES",
    "get_router_policy",
]


def _require_candidates(replicas: Sequence["Replica"]) -> Sequence["Replica"]:
    if not replicas:
        raise ValueError("no candidate replicas to route to")
    return replicas


def _least_tokens(replicas: Sequence["Replica"]) -> "Replica":
    """The replica with the least queued + in-flight token work (ties: lowest id)."""
    return min(_require_candidates(replicas),
               key=lambda r: (r.scheduler.outstanding_tokens, r.replica_id))


def _least_kv(replicas: Sequence["Replica"]) -> "Replica":
    """The replica with the emptiest KV pool (ties: token work, then lowest id)."""
    return min(
        _require_candidates(replicas),
        key=lambda r: (r.scheduler.kv_load, r.scheduler.outstanding_tokens, r.replica_id),
    )


class RouterPolicy:
    """Chooses the replica that serves each request (and each migrated sequence)."""

    name = "base"

    def select(self, replicas: Sequence["Replica"], request: "Request") -> "Replica":
        """The replica that admits ``request`` (prefill pool in disaggregated mode)."""
        raise NotImplementedError

    def select_decode(self, replicas: Sequence["Replica"], request: "Request") -> "Replica":
        """The replica that receives a migrated sequence (decode pool).

        Defaults to the same rule as :meth:`select`; disaggregation-aware policies
        override it with a decode-phase-appropriate load signal.
        """
        return self.select(replicas, request)


class RoundRobinRouter(RouterPolicy):
    """Cycle through the candidate replicas, ignoring load (the data-parallel default).

    Admissions and decode migrations advance independent cursors: in disaggregated mode
    the two candidate pools are disjoint, and a shared counter would let one event stream
    park the other on a fixed replica instead of cycling.
    """

    name = "round-robin"

    def __init__(self):
        self._cursor = 0
        self._decode_cursor = 0

    def select(self, replicas, request):
        choice = _require_candidates(replicas)[self._cursor % len(replicas)]
        self._cursor += 1
        return choice

    def select_decode(self, replicas, request):
        choice = _require_candidates(replicas)[self._decode_cursor % len(replicas)]
        self._decode_cursor += 1
        return choice


class LeastOutstandingTokensRouter(RouterPolicy):
    """Send each request to the replica with the least queued + in-flight token work.

    Outstanding tokens (remaining prefill positions plus remaining output tokens across
    every queued, resident and swapped request) track *time to drain* far better than
    request counts do under long-tail length distributions.
    """

    name = "least-tokens"

    def select(self, replicas, request):
        return _least_tokens(replicas)


class LeastKvLoadRouter(RouterPolicy):
    """Send each request to the replica whose device KV pool is emptiest.

    KV headroom is what decides whether an admission prefills immediately or triggers
    preemption churn, so balancing on it protects TPOT under memory pressure.
    """

    name = "least-kv"

    def select(self, replicas, request):
        return _least_kv(replicas)


class CacheAffinityRouter(RouterPolicy):
    """Send each request to the replica whose prefix cache matches it deepest.

    Per-replica prefix caches make placement sticky: a request sharing a system prompt,
    RAG template or agent transcript only benefits if it lands where that prefix was
    prefilled.  The router probes every candidate's cache with the side-effect-free
    :meth:`~repro.serving.prefixcache.PrefixCache.match_tokens` (O(prefix blocks) per
    replica) and picks the deepest match; ties — including the no-cache / no-match case —
    fall back to least outstanding tokens, so replicas without caches degrade to the
    least-tokens router.  Decode migrations carry their full KV with them, so affinity
    is irrelevant there and the decode pool balances on token work.
    """

    name = "cache-affinity"

    def select(self, replicas, request):
        def rank(replica: "Replica"):
            cache = getattr(replica.scheduler, "prefix_cache", None)
            cached = (
                cache.match_tokens(request, request.prompt_tokens - 1)
                if cache is not None else 0
            )
            return (-cached, replica.scheduler.outstanding_tokens, replica.replica_id)

        return min(_require_candidates(replicas), key=rank)

    def select_decode(self, replicas, request):
        return _least_tokens(replicas)


class DisaggregatedRouter(RouterPolicy):
    """Disaggregation-aware routing: balance prefill on token work, decode on KV headroom.

    New requests go to the prefill replica with the least outstanding tokens (prefill is
    compute-bound, so queued token work predicts its TTFT contribution); migrated
    sequences go to the decode replica with the most KV headroom (decode is
    capacity-bound, so KV pressure predicts preemption churn and TPOT).  In a co-located
    cluster both candidate sets are the full fleet and this degrades gracefully to
    least-outstanding-tokens admission.
    """

    name = "disaggregated"

    def select(self, replicas, request):
        return _least_tokens(replicas)  # same ranking as LeastOutstandingTokensRouter

    def select_decode(self, replicas, request):
        return _least_kv(replicas)  # same ranking as LeastKvLoadRouter


ROUTER_POLICIES: Dict[str, Type[RouterPolicy]] = {
    policy.name: policy
    for policy in (RoundRobinRouter, LeastOutstandingTokensRouter, LeastKvLoadRouter,
                   CacheAffinityRouter, DisaggregatedRouter)
}


def get_router_policy(policy: Union[str, RouterPolicy]) -> RouterPolicy:
    """Resolve a router policy by name ('round-robin', 'least-tokens', 'least-kv',
    'cache-affinity', 'disaggregated'); instances pass through unchanged."""
    if isinstance(policy, RouterPolicy):
        return policy
    key = str(policy).lower()
    if key not in ROUTER_POLICIES:
        raise KeyError(
            f"unknown router policy {policy!r}; known: {sorted(ROUTER_POLICIES)}"
        )
    return ROUTER_POLICIES[key]()
