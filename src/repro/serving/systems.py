"""Serving-system profiles: the seven systems compared in Table 1.

A :class:`SystemProfile` bundles everything that distinguishes one serving system from another
at the level this reproduction models:

* which GEMM kernel it uses (by registry name),
* how many bytes per parameter its weight format occupies in GPU memory,
* how the KV cache is stored,
* how efficient its attention implementation is (relative to the shared memory-bound model),
* how much per-layer framework overhead it adds outside GEMM and attention.

The first three are documented facts about the respective systems.  The last two are the only
*calibrated* quantities in the serving model: they absorb implementation quality differences
(e.g. TRT-FP8's FP8-optimized attention kernels, QServe's less-optimized attention on GQA
models and heavier framework path) that the paper itself places outside its scope but that are
clearly visible in its Figure 10 breakdowns.  They are held constant across all models and
batch sizes — nothing is fitted per experiment.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["SystemProfile", "ClusterSpec", "SYSTEMS", "get_system", "list_systems",
           "TABLE1_SYSTEMS", "REPLICA_ROLE_MIXED", "REPLICA_ROLE_PREFILL",
           "REPLICA_ROLE_DECODE"]


@dataclass(frozen=True)
class SystemProfile:
    """Configuration of one end-to-end serving system."""

    name: str
    kernel: str                      # GEMM kernel registry name
    weight_bytes_per_param: float    # deployed bytes per linear-layer parameter
    kv_format: str                   # KV-cache storage format (repro.quant.kvcache)
    attention_efficiency: float      # relative efficiency of the attention kernels
    framework_overhead_per_layer_s: float  # extra per-layer host/runtime overhead
    others_scale: float = 1.0        # multiplier on the element-wise "Others" bucket
    supports_moe: bool = True        # TRT-W8A8 lacks Mixtral support (Table 1 "NA")
    max_batch_size: int = 256        # largest batch the system's runtime supports
    #: Iteration-level token budget (decode tokens + prefill-chunk tokens per scheduler
    #: iteration, the vLLM ``max_num_batched_tokens`` knob).  Bounds chunked prefill so a
    #: long prompt cannot stall running decodes for a whole serial prefill.
    max_batched_tokens: int = 2048
    #: Pinned host memory available per GPU for swap-based preemption (vLLM's ``swap_space``
    #: knob, 4 GiB by default).  0 disables swapping: every preemption recomputes.
    host_kv_swap_bytes: int = 4 * 2**30
    #: Kernel used for the LM head and FP-reference baselines (recompute costing, logits).
    #: Every system the paper compares keeps those FP16, hence the default; the backend
    #: layer resolves it, so non-default reference kernels are expressible per profile.
    reference_kernel: str = "fp16"

    def __post_init__(self):
        if self.weight_bytes_per_param <= 0:
            raise ValueError("weight_bytes_per_param must be positive")
        if not 0 < self.attention_efficiency <= 1.0:
            raise ValueError("attention_efficiency must be in (0, 1]")
        if self.framework_overhead_per_layer_s < 0:
            raise ValueError("framework overhead must be non-negative")
        if self.max_batched_tokens < 1:
            raise ValueError("max_batched_tokens must be positive")
        if self.host_kv_swap_bytes < 0:
            raise ValueError("host_kv_swap_bytes must be non-negative")

    def derive(self, name: Optional[str] = None, **overrides) -> "SystemProfile":
        """A copy of this profile with some fields replaced — the composable-sweep hook.

        ``derive(kernel="liquidgemm", kv_format="int4")`` turns any registered profile
        into a quant-format x kernel x kv_format grid point without registering a new
        named system.  Overrides passed as ``None`` are ignored (so sweep axes can carry
        "use the system default" as ``None``).  Unless ``name`` is given, the derived
        profile is named ``base[field=value,...]`` listing exactly the changed fields.
        Field *names* are validated here; kernel / KV-format *values* are validated when
        the backend layer resolves them against the registries.
        """
        effective = {k: v for k, v in overrides.items() if v is not None}
        valid = {f.name for f in dataclasses.fields(self)}
        unknown = sorted(set(effective) - valid)
        if unknown:
            raise TypeError(
                f"unknown SystemProfile field(s) {unknown}; valid: {sorted(valid)}"
            )
        changed = {
            k: v for k, v in effective.items() if getattr(self, k) != v
        }
        if name is None:
            if not changed:
                return self
            suffix = ",".join(f"{k}={v}" for k, v in sorted(changed.items()))
            name = f"{self.name}[{suffix}]"
        return dataclasses.replace(self, name=name, **changed)


#: Replica roles a cluster topology can assign (see :class:`ClusterSpec`).
REPLICA_ROLE_MIXED = "mixed"        # co-located: prefill and decode on the same replica
REPLICA_ROLE_PREFILL = "prefill"    # disaggregated: runs prompt prefill + first token only
REPLICA_ROLE_DECODE = "decode"      # disaggregated: decodes sequences migrated to it


@dataclass(frozen=True)
class ClusterSpec:
    """Topology of a multi-replica serving cluster (one GPU/TP-group per replica).

    ``colocated`` mode runs ``num_replicas`` identical replicas behind the router — the
    classic data-parallel baseline.  ``disaggregated`` mode splits the fleet DistServe-style
    into ``num_prefill_replicas`` compute-bound prefill replicas and
    ``num_decode_replicas`` latency-bound decode replicas; finished prefills migrate their
    KV blocks over the interconnect before decode admission.  ``router`` selects the
    :mod:`~repro.serving.router` policy (``None`` picks the mode's default: round-robin for
    co-located, the disaggregation-aware policy for disaggregated).
    """

    mode: str = "colocated"              # "colocated" | "disaggregated"
    num_replicas: Optional[int] = None   # co-located replica count (None = 2)
    num_prefill_replicas: int = 1        # disaggregated prefill pool
    num_decode_replicas: int = 1         # disaggregated decode pool
    router: Optional[str] = None         # router policy name; None = mode default

    def __post_init__(self):
        if self.mode not in ("colocated", "disaggregated"):
            raise ValueError(
                f"unknown cluster mode {self.mode!r}; expected 'colocated' or 'disaggregated'"
            )
        if self.mode == "colocated":
            if self.num_replicas is not None and self.num_replicas < 1:
                raise ValueError("num_replicas must be >= 1")
        else:
            if self.num_replicas is not None:
                raise ValueError(
                    "disaggregated mode sizes the fleet with num_prefill_replicas / "
                    "num_decode_replicas; num_replicas applies to colocated mode only"
                )
            if self.num_prefill_replicas < 1 or self.num_decode_replicas < 1:
                raise ValueError(
                    "disaggregated mode needs >= 1 prefill and >= 1 decode replica"
                )

    @property
    def colocated_replicas(self) -> int:
        return 2 if self.num_replicas is None else self.num_replicas

    @property
    def total_replicas(self) -> int:
        """Total GPU count (at tp_degree=1) — the equal-resources axis of any A/B."""
        if self.mode == "colocated":
            return self.colocated_replicas
        return self.num_prefill_replicas + self.num_decode_replicas

    def roles(self) -> List[str]:
        """Role of each replica, in replica-id order (prefill pool first)."""
        if self.mode == "colocated":
            return [REPLICA_ROLE_MIXED] * self.colocated_replicas
        return (
            [REPLICA_ROLE_PREFILL] * self.num_prefill_replicas
            + [REPLICA_ROLE_DECODE] * self.num_decode_replicas
        )

    @property
    def default_router(self) -> str:
        return "disaggregated" if self.mode == "disaggregated" else "round-robin"


#: Deployed bytes per parameter for the two-level 4-bit formats: 4-bit codes plus one byte of
#: per-group metadata every `group` elements plus an FP16 per-channel scale (amortized).
_W4_BYTES = 0.5 + 2.0 / 64.0 + 2.0 / 4096.0
_W4_BYTES_G128 = 0.5 + 2.0 / 128.0 + 2.0 / 4096.0

SYSTEMS: Dict[str, SystemProfile] = {
    "trt-fp16": SystemProfile(
        name="trt-fp16", kernel="fp16", weight_bytes_per_param=2.0, kv_format="fp8",
        attention_efficiency=0.90, framework_overhead_per_layer_s=3.0e-6,
    ),
    "trt-w4a16": SystemProfile(
        name="trt-w4a16", kernel="w4a16", weight_bytes_per_param=_W4_BYTES_G128, kv_format="fp8",
        attention_efficiency=0.90, framework_overhead_per_layer_s=3.0e-6,
    ),
    "trt-w8a8": SystemProfile(
        name="trt-w8a8", kernel="w8a8", weight_bytes_per_param=1.0, kv_format="int8",
        attention_efficiency=0.90, framework_overhead_per_layer_s=3.0e-6, supports_moe=False,
    ),
    "trt-fp8": SystemProfile(
        name="trt-fp8", kernel="fp8", weight_bytes_per_param=1.0, kv_format="fp8",
        attention_efficiency=0.95, framework_overhead_per_layer_s=3.0e-6,
    ),
    "qserve": SystemProfile(
        name="qserve", kernel="qserve-w4a8", weight_bytes_per_param=_W4_BYTES_G128,
        kv_format="int4", attention_efficiency=0.40,
        framework_overhead_per_layer_s=40.0e-6, others_scale=2.0, max_batch_size=128,
    ),
    "liquidserve": SystemProfile(
        name="liquidserve", kernel="liquidgemm", weight_bytes_per_param=_W4_BYTES,
        kv_format="int8", attention_efficiency=0.93, framework_overhead_per_layer_s=4.0e-6,
    ),
    "liquidserve-wo": SystemProfile(
        name="liquidserve-wo", kernel="qserve-w4a8", weight_bytes_per_param=_W4_BYTES_G128,
        kv_format="int8", attention_efficiency=0.93, framework_overhead_per_layer_s=4.0e-6,
    ),
}

#: Row order used by the Table 1 reproduction.
TABLE1_SYSTEMS: List[str] = [
    "trt-fp16",
    "trt-w4a16",
    "trt-w8a8",
    "trt-fp8",
    "qserve",
    "liquidserve-wo",
    "liquidserve",
]


def get_system(name: str) -> SystemProfile:
    key = name.lower()
    if key not in SYSTEMS:
        raise KeyError(f"unknown serving system {name!r}; known: {sorted(SYSTEMS)}")
    return SYSTEMS[key]


def list_systems() -> List[str]:
    return sorted(SYSTEMS)
