"""Serving-system profiles: the seven systems compared in Table 1.

A :class:`SystemProfile` bundles everything that distinguishes one serving system from another
at the level this reproduction models:

* which GEMM kernel it uses (by registry name),
* how many bytes per parameter its weight format occupies in GPU memory,
* how the KV cache is stored,
* how efficient its attention implementation is (relative to the shared memory-bound model),
* how much per-layer framework overhead it adds outside GEMM and attention.

The first three are documented facts about the respective systems.  The last two are the only
*calibrated* quantities in the serving model: they absorb implementation quality differences
(e.g. TRT-FP8's FP8-optimized attention kernels, QServe's less-optimized attention on GQA
models and heavier framework path) that the paper itself places outside its scope but that are
clearly visible in its Figure 10 breakdowns.  They are held constant across all models and
batch sizes — nothing is fitted per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["SystemProfile", "SYSTEMS", "get_system", "list_systems", "TABLE1_SYSTEMS"]


@dataclass(frozen=True)
class SystemProfile:
    """Configuration of one end-to-end serving system."""

    name: str
    kernel: str                      # GEMM kernel registry name
    weight_bytes_per_param: float    # deployed bytes per linear-layer parameter
    kv_format: str                   # KV-cache storage format (repro.quant.kvcache)
    attention_efficiency: float      # relative efficiency of the attention kernels
    framework_overhead_per_layer_s: float  # extra per-layer host/runtime overhead
    others_scale: float = 1.0        # multiplier on the element-wise "Others" bucket
    supports_moe: bool = True        # TRT-W8A8 lacks Mixtral support (Table 1 "NA")
    max_batch_size: int = 256        # largest batch the system's runtime supports
    #: Iteration-level token budget (decode tokens + prefill-chunk tokens per scheduler
    #: iteration, the vLLM ``max_num_batched_tokens`` knob).  Bounds chunked prefill so a
    #: long prompt cannot stall running decodes for a whole serial prefill.
    max_batched_tokens: int = 2048
    #: Pinned host memory available per GPU for swap-based preemption (vLLM's ``swap_space``
    #: knob, 4 GiB by default).  0 disables swapping: every preemption recomputes.
    host_kv_swap_bytes: int = 4 * 2**30

    def __post_init__(self):
        if self.weight_bytes_per_param <= 0:
            raise ValueError("weight_bytes_per_param must be positive")
        if not 0 < self.attention_efficiency <= 1.0:
            raise ValueError("attention_efficiency must be in (0, 1]")
        if self.framework_overhead_per_layer_s < 0:
            raise ValueError("framework overhead must be non-negative")
        if self.max_batched_tokens < 1:
            raise ValueError("max_batched_tokens must be positive")
        if self.host_kv_swap_bytes < 0:
            raise ValueError("host_kv_swap_bytes must be non-negative")


#: Deployed bytes per parameter for the two-level 4-bit formats: 4-bit codes plus one byte of
#: per-group metadata every `group` elements plus an FP16 per-channel scale (amortized).
_W4_BYTES = 0.5 + 2.0 / 64.0 + 2.0 / 4096.0
_W4_BYTES_G128 = 0.5 + 2.0 / 128.0 + 2.0 / 4096.0

SYSTEMS: Dict[str, SystemProfile] = {
    "trt-fp16": SystemProfile(
        name="trt-fp16", kernel="fp16", weight_bytes_per_param=2.0, kv_format="fp8",
        attention_efficiency=0.90, framework_overhead_per_layer_s=3.0e-6,
    ),
    "trt-w4a16": SystemProfile(
        name="trt-w4a16", kernel="w4a16", weight_bytes_per_param=_W4_BYTES_G128, kv_format="fp8",
        attention_efficiency=0.90, framework_overhead_per_layer_s=3.0e-6,
    ),
    "trt-w8a8": SystemProfile(
        name="trt-w8a8", kernel="w8a8", weight_bytes_per_param=1.0, kv_format="int8",
        attention_efficiency=0.90, framework_overhead_per_layer_s=3.0e-6, supports_moe=False,
    ),
    "trt-fp8": SystemProfile(
        name="trt-fp8", kernel="fp8", weight_bytes_per_param=1.0, kv_format="fp8",
        attention_efficiency=0.95, framework_overhead_per_layer_s=3.0e-6,
    ),
    "qserve": SystemProfile(
        name="qserve", kernel="qserve-w4a8", weight_bytes_per_param=_W4_BYTES_G128,
        kv_format="int4", attention_efficiency=0.40,
        framework_overhead_per_layer_s=40.0e-6, others_scale=2.0, max_batch_size=128,
    ),
    "liquidserve": SystemProfile(
        name="liquidserve", kernel="liquidgemm", weight_bytes_per_param=_W4_BYTES,
        kv_format="int8", attention_efficiency=0.93, framework_overhead_per_layer_s=4.0e-6,
    ),
    "liquidserve-wo": SystemProfile(
        name="liquidserve-wo", kernel="qserve-w4a8", weight_bytes_per_param=_W4_BYTES_G128,
        kv_format="int8", attention_efficiency=0.93, framework_overhead_per_layer_s=4.0e-6,
    ),
}

#: Row order used by the Table 1 reproduction.
TABLE1_SYSTEMS: List[str] = [
    "trt-fp16",
    "trt-w4a16",
    "trt-w8a8",
    "trt-fp8",
    "qserve",
    "liquidserve-wo",
    "liquidserve",
]


def get_system(name: str) -> SystemProfile:
    key = name.lower()
    if key not in SYSTEMS:
        raise KeyError(f"unknown serving system {name!r}; known: {sorted(SYSTEMS)}")
    return SYSTEMS[key]


def list_systems() -> List[str]:
    return sorted(SYSTEMS)
