"""Simulated GPU hardware substrate: specs, memory hierarchy, device/occupancy model."""

from .specs import A100, H100, H800, GpuSpec, Precision, get_gpu, list_gpus
from .memory import (
    GlobalMemory,
    MemoryRegion,
    OutOfMemoryError,
    RegisterFile,
    SharedMemory,
    TrafficCounter,
    bytes_for,
    smem_bank_conflicts,
)
from .device import Device, OccupancyResult, ThreadBlockConfig, WarpGroupRole

__all__ = [
    "A100",
    "H100",
    "H800",
    "GpuSpec",
    "Precision",
    "get_gpu",
    "list_gpus",
    "GlobalMemory",
    "MemoryRegion",
    "OutOfMemoryError",
    "RegisterFile",
    "SharedMemory",
    "TrafficCounter",
    "bytes_for",
    "smem_bank_conflicts",
    "Device",
    "OccupancyResult",
    "ThreadBlockConfig",
    "WarpGroupRole",
]
