"""Streaming-multiprocessor / warp-group / occupancy model.

The cost model in the paper (Equation 6) folds the whole device into ``S * L`` concurrent
thread blocks, where ``S`` is the SM count and ``L`` the number of blocks resident per SM.
The pipeline simulator additionally needs to know how a thread block is organized into warp
groups (Hopper WGMMA executes per warp group of 4 warps / 128 threads) and what shared-memory
budget limits the tile size.

This module ties :class:`~repro.gpu.specs.GpuSpec` to those derived quantities and provides a
small occupancy calculator used by the kernels to pick ``L``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .memory import GlobalMemory, RegisterFile, SharedMemory, bytes_for
from .specs import GpuSpec, get_gpu

__all__ = [
    "WarpGroupRole",
    "ThreadBlockConfig",
    "OccupancyResult",
    "Device",
]


class WarpGroupRole:
    """Roles a warp group can take in a warp-specialized kernel (Section 5.1)."""

    LOAD = "load"
    DEQUANT = "dequant"
    MMA = "mma"
    COMPUTE = "compute"  # unified dequant+MMA warp group (ImFP)

    ALL = (LOAD, DEQUANT, MMA, COMPUTE)


@dataclass(frozen=True)
class ThreadBlockConfig:
    """Static description of a thread block used by a GEMM kernel.

    ``warp_group_roles`` lists the role of each warp group in the block; e.g. the paper's
    LiquidGEMM uses ``("load", "compute", "compute")`` — one Load WG and two Compute WGs.
    """

    tile_m: int
    tile_n: int
    tile_k: int
    warp_group_roles: Tuple[str, ...]
    smem_stage_count: int = 2  # double buffering by default
    extra_smem_bytes: int = 0

    def __post_init__(self):
        if self.tile_m <= 0 or self.tile_n <= 0 or self.tile_k <= 0:
            raise ValueError("tile dimensions must be positive")
        if not self.warp_group_roles:
            raise ValueError("a thread block needs at least one warp group")
        for role in self.warp_group_roles:
            if role not in WarpGroupRole.ALL:
                raise ValueError(f"unknown warp group role {role!r}")
        if self.smem_stage_count < 1:
            raise ValueError("smem_stage_count must be >= 1")

    @property
    def num_warp_groups(self) -> int:
        return len(self.warp_group_roles)

    def num_threads(self, spec: GpuSpec) -> int:
        return self.num_warp_groups * spec.threads_per_warp_group

    def compute_warp_groups(self) -> int:
        """Number of warp groups that issue MMA (roles ``mma`` or ``compute``)."""
        return sum(1 for r in self.warp_group_roles if r in (WarpGroupRole.MMA, WarpGroupRole.COMPUTE))

    def smem_bytes(self, weight_precision: str, act_precision: str) -> int:
        """Shared-memory footprint of the pipelined tile buffers.

        Weights (``tile_n x tile_k``) and activations (``tile_m x tile_k``) are both staged
        ``smem_stage_count`` times for the asynchronous pipeline.
        """
        weight_tile = bytes_for(self.tile_n * self.tile_k, weight_precision)
        act_tile = bytes_for(self.tile_m * self.tile_k, act_precision)
        return self.smem_stage_count * (weight_tile + act_tile) + self.extra_smem_bytes


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy calculation for one kernel configuration."""

    blocks_per_sm: int
    limited_by: str
    smem_bytes_per_block: int
    threads_per_block: int

    @property
    def is_feasible(self) -> bool:
        return self.blocks_per_sm >= 1


class Device:
    """A simulated GPU device: spec + memory hierarchy + occupancy calculator."""

    def __init__(self, spec_or_name="H800"):
        if isinstance(spec_or_name, GpuSpec):
            self.spec = spec_or_name
        else:
            self.spec = get_gpu(str(spec_or_name))
        self.gmem = GlobalMemory(self.spec)
        self.smem_prototype = SharedMemory(self.spec)
        self.rf_prototype = RegisterFile(self.spec)

    # ------------------------------------------------------------------ occupancy
    def occupancy(
        self,
        block: ThreadBlockConfig,
        weight_precision: str,
        act_precision: str,
        registers_per_thread: int = 168,
        max_threads_per_sm: int = 2048,
    ) -> OccupancyResult:
        """How many copies of ``block`` fit on one SM, and which resource limits it.

        Mirrors the CUDA occupancy calculation for the three block-level resources that
        matter for warp-specialized GEMM kernels: shared memory, registers and thread slots.
        """
        smem_per_block = block.smem_bytes(weight_precision, act_precision)
        threads_per_block = block.num_threads(self.spec)

        limits: Dict[str, int] = {}
        limits["smem"] = (
            self.spec.smem_per_sm // smem_per_block if smem_per_block > 0 else self.spec.max_blocks_per_sm
        )
        regs_per_block = registers_per_thread * threads_per_block
        limits["registers"] = (
            self.spec.registers_per_sm // regs_per_block if regs_per_block > 0 else self.spec.max_blocks_per_sm
        )
        limits["threads"] = max_threads_per_sm // threads_per_block if threads_per_block > 0 else 0
        limits["hardware"] = self.spec.max_blocks_per_sm

        limiting_resource = min(limits, key=lambda k: limits[k])
        blocks = limits[limiting_resource]
        return OccupancyResult(
            blocks_per_sm=blocks,
            limited_by=limiting_resource,
            smem_bytes_per_block=smem_per_block,
            threads_per_block=threads_per_block,
        )

    # ------------------------------------------------------------------ throughput helpers
    def block_level_bandwidth(self, blocks_per_sm: int) -> float:
        """Effective GMEM bandwidth (bytes/s) available to one thread block."""
        concurrent_blocks = max(1, blocks_per_sm) * self.spec.num_sms
        return self.spec.memory_bandwidth / concurrent_blocks

    def block_level_tensor_ops(self, precision: str, blocks_per_sm: int) -> float:
        """Tensor-core OPs/s available to one thread block."""
        concurrent_blocks = max(1, blocks_per_sm) * self.spec.num_sms
        return self.spec.tensor_core_throughput(precision) / concurrent_blocks

    def block_level_cuda_ops(self, blocks_per_sm: int) -> float:
        """CUDA-core INT32 OPs/s available to one thread block."""
        concurrent_blocks = max(1, blocks_per_sm) * self.spec.num_sms
        return self.spec.cuda_core_int32_tops / concurrent_blocks

    def concurrent_blocks(self, blocks_per_sm: int) -> int:
        return max(1, blocks_per_sm) * self.spec.num_sms

    # ------------------------------------------------------------------ misc
    def weight_memory_feasible(self, weight_bytes: int, kv_bytes: int, act_bytes: int = 0) -> bool:
        """True if weights + KV cache + activations fit in device memory."""
        return weight_bytes + kv_bytes + act_bytes <= self.spec.memory_capacity

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"Device({self.spec.name})"
