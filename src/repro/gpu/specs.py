"""GPU hardware specifications used by the cost model and pipeline simulator.

The paper's performance analysis (Figure 1, Section 3) is phrased entirely in terms of a
small set of published hardware metrics: Tensor Core throughput per precision, CUDA Core
INT32 throughput, and memory bandwidth.  This module captures those metrics for the GPUs
the paper discusses (A100, H100, H800) and exposes a parametric :class:`GpuSpec` so the
cost model, roofline analysis and pipeline simulator all draw numbers from one place.

Throughputs are stored in *operations per second* (an FMA counts as two operations, the
same convention as the paper and NVIDIA datasheets).  Memory bandwidth is bytes per second.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict

__all__ = [
    "Precision",
    "GpuSpec",
    "A100",
    "H100",
    "H800",
    "get_gpu",
    "list_gpus",
]

TERA = 1e12
GIGA = 1e9


class Precision:
    """Canonical names for the operand precisions used throughout the library."""

    FP16 = "fp16"
    BF16 = "bf16"
    FP8 = "fp8"
    INT8 = "int8"
    INT4 = "int4"
    UINT4 = "uint4"
    FP32 = "fp32"
    INT32 = "int32"

    #: Storage width in bits for each precision.
    BITS: Dict[str, int] = {
        FP32: 32,
        INT32: 32,
        FP16: 16,
        BF16: 16,
        FP8: 8,
        INT8: 8,
        INT4: 4,
        UINT4: 4,
    }

    @classmethod
    def bits(cls, precision: str) -> int:
        """Return the storage width in bits of ``precision``."""
        try:
            return cls.BITS[precision]
        except KeyError as exc:  # pragma: no cover - defensive
            raise ValueError(f"unknown precision {precision!r}") from exc

    @classmethod
    def bytes(cls, precision: str) -> float:
        """Return the storage width in bytes (may be fractional for sub-byte types)."""
        return cls.bits(precision) / 8.0


@dataclass(frozen=True)
class GpuSpec:
    """A parametric description of a data-center GPU.

    Attributes mirror Figure 1a of the paper plus the microarchitectural parameters
    needed by the pipeline simulator (SM count, shared memory size, register file size,
    warp-group width and clock).
    """

    name: str
    #: Tensor Core throughput per precision, OPs/s (dense, no sparsity).
    tensor_core_tops: Dict[str, float]
    #: CUDA Core INT32 throughput, OPs/s.
    cuda_core_int32_tops: float
    #: CUDA Core FP32 throughput, OPs/s.
    cuda_core_fp32_tops: float
    #: HBM bandwidth, bytes/s.
    memory_bandwidth: float
    #: HBM capacity, bytes.
    memory_capacity: float
    #: Number of streaming multiprocessors.
    num_sms: int
    #: SM clock in Hz (boost clock; used to convert throughput to per-cycle rates).
    clock_hz: float
    #: Shared memory per SM, bytes (configurable carve-out already applied).
    smem_per_sm: int
    #: 32-bit registers per SM.
    registers_per_sm: int
    #: Maximum resident thread blocks per SM used by the occupancy model.
    max_blocks_per_sm: int = 2
    #: Threads per warp.
    warp_size: int = 32
    #: Warps per warp group (Hopper WGMMA granularity).
    warps_per_warp_group: int = 4
    #: SMEM banks and bank width (bytes) for the bank-conflict model.
    smem_banks: int = 32
    smem_bank_width: int = 4
    #: NVLink / PCIe bandwidth, bytes/s (not used by the GEMM model, kept for completeness).
    interconnect_bandwidth: float = 64e9
    #: GPU <-> host-memory link bandwidth, bytes/s (PCIe, effective): the rate at which KV
    #: blocks move during swap-based preemption.
    host_link_bandwidth: float = 25e9
    #: Whether the GPU supports asynchronous TMA bulk copies (Hopper and later).
    has_tma: bool = True
    #: Whether the Tensor Cores support the INT4 MMA data type.
    supports_int4_mma: bool = False

    def tensor_core_throughput(self, precision: str) -> float:
        """Tensor Core throughput in OPs/s for ``precision``.

        Raises ``ValueError`` if the precision has no Tensor Core support on this GPU
        (e.g. INT4 on Hopper), mirroring the paper's observation that Atom's W4A4
        kernels cannot use Tensor Cores on H800.
        """
        try:
            return self.tensor_core_tops[precision]
        except KeyError as exc:
            raise ValueError(
                f"{self.name} has no tensor-core support for precision {precision!r}"
            ) from exc

    def supports_precision(self, precision: str) -> bool:
        """True if the Tensor Cores can execute MMA at ``precision``."""
        return precision in self.tensor_core_tops

    @property
    def threads_per_warp_group(self) -> int:
        return self.warp_size * self.warps_per_warp_group

    def per_sm_bandwidth(self) -> float:
        """Effective memory bandwidth available to one SM (bytes/s)."""
        return self.memory_bandwidth / self.num_sms

    def per_sm_tensor_ops(self, precision: str) -> float:
        """Tensor Core OPs/s available to one SM."""
        return self.tensor_core_throughput(precision) / self.num_sms

    def per_sm_cuda_ops(self) -> float:
        """CUDA Core INT32 OPs/s available to one SM."""
        return self.cuda_core_int32_tops / self.num_sms

    def with_overrides(self, **kwargs) -> "GpuSpec":
        """Return a copy of this spec with selected fields replaced.

        Useful for sensitivity studies (e.g. scaling memory bandwidth to explore how the
        memory/compute transition point moves, Section 3.3 of the paper).
        """
        return dataclasses.replace(self, **kwargs)

    def scaled(self, *, bandwidth: float = 1.0, tensor: float = 1.0, cuda: float = 1.0) -> "GpuSpec":
        """Return a spec with bandwidth / tensor-core / cuda-core throughput scaled."""
        return dataclasses.replace(
            self,
            name=f"{self.name}-scaled",
            memory_bandwidth=self.memory_bandwidth * bandwidth,
            tensor_core_tops={k: v * tensor for k, v in self.tensor_core_tops.items()},
            cuda_core_int32_tops=self.cuda_core_int32_tops * cuda,
            cuda_core_fp32_tops=self.cuda_core_fp32_tops * cuda,
        )


#: NVIDIA A100-SXM4-80GB (Figure 1a).
A100 = GpuSpec(
    name="A100",
    tensor_core_tops={
        Precision.FP16: 312 * TERA,
        Precision.BF16: 312 * TERA,
        Precision.INT8: 624 * TERA,
        Precision.INT4: 1248 * TERA,
    },
    cuda_core_int32_tops=19.5 * TERA,
    cuda_core_fp32_tops=19.5 * TERA,
    memory_bandwidth=2.0e12,
    memory_capacity=80 * 2**30,
    num_sms=108,
    clock_hz=1.41e9,
    smem_per_sm=164 * 1024,
    registers_per_sm=65536,
    host_link_bandwidth=25e9,  # PCIe Gen4 x16, effective
    has_tma=False,
    supports_int4_mma=True,
)

#: NVIDIA H100-SXM5-80GB (Figure 1a).
H100 = GpuSpec(
    name="H100",
    tensor_core_tops={
        Precision.FP16: 989.4 * TERA,
        Precision.BF16: 989.4 * TERA,
        Precision.FP8: 1978.9 * TERA,
        Precision.INT8: 1978.9 * TERA,
    },
    cuda_core_int32_tops=33.5 * TERA,
    cuda_core_fp32_tops=66.9 * TERA,
    memory_bandwidth=3.3e12,
    memory_capacity=80 * 2**30,
    num_sms=132,
    clock_hz=1.83e9,
    smem_per_sm=228 * 1024,
    registers_per_sm=65536,
    host_link_bandwidth=55e9,  # PCIe Gen5 x16, effective
    has_tma=True,
    supports_int4_mma=False,
)

#: NVIDIA H800-SXM5-80GB: H100 silicon with reduced NVLink; compute/memory metrics match
#: H100 for the purposes of the paper's single-GPU kernel study (the paper's testbed).
H800 = H100.with_overrides(name="H800", interconnect_bandwidth=32e9)


_REGISTRY: Dict[str, GpuSpec] = {g.name.lower(): g for g in (A100, H100, H800)}


def get_gpu(name: str) -> GpuSpec:
    """Look up a GPU spec by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError as exc:
        raise KeyError(f"unknown GPU {name!r}; known: {sorted(_REGISTRY)}") from exc


def list_gpus() -> Dict[str, GpuSpec]:
    """Return a copy of the GPU registry."""
    return dict(_REGISTRY)
