"""Memory hierarchy model: global memory, shared memory, register file.

The GEMM kernels in this reproduction do not execute on a real GPU, but the *capacity* and
*traffic* constraints of the memory hierarchy still matter for three things the paper
depends on:

* tile-size feasibility (``M_t x K_t`` activation tile + ``N_t x K_t`` weight tile must fit
  in shared memory, which bounds the arithmetic intensity amortization — Section 3.3);
* per-iteration data-loading time ``T_LD`` (Equation 3), driven by bytes moved from GMEM;
* shared-memory bank conflicts, which the dual-MMA packed layout eliminates (Section 5.2).

The classes here provide explicit byte accounting with overflow checks so higher layers
(kernels, the serving engine) can detect infeasible tilings / out-of-memory configurations
instead of silently producing meaningless latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from .specs import GpuSpec, Precision

__all__ = [
    "MemoryRegion",
    "GlobalMemory",
    "SharedMemory",
    "RegisterFile",
    "TrafficCounter",
    "bytes_for",
    "OutOfMemoryError",
    "smem_bank_conflicts",
    "smem_bank_conflicts_phased",
]


class OutOfMemoryError(RuntimeError):
    """Raised when an allocation exceeds the capacity of a memory region."""


def bytes_for(num_elements: int, precision: str) -> int:
    """Bytes needed to store ``num_elements`` of ``precision`` (rounded up to whole bytes)."""
    if num_elements < 0:
        raise ValueError("num_elements must be non-negative")
    bits = Precision.bits(precision) * num_elements
    return (bits + 7) // 8


@dataclass
class TrafficCounter:
    """Accumulates read/write byte counts for one memory region."""

    bytes_read: int = 0
    bytes_written: int = 0
    num_reads: int = 0
    num_writes: int = 0

    def record_read(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.bytes_read += nbytes
        self.num_reads += 1

    def record_write(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.bytes_written += nbytes
        self.num_writes += 1

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    def reset(self) -> None:
        self.bytes_read = 0
        self.bytes_written = 0
        self.num_reads = 0
        self.num_writes = 0

    def merged(self, other: "TrafficCounter") -> "TrafficCounter":
        return TrafficCounter(
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
            num_reads=self.num_reads + other.num_reads,
            num_writes=self.num_writes + other.num_writes,
        )


@dataclass
class MemoryRegion:
    """A bounded memory region with named allocations and traffic accounting."""

    name: str
    capacity: int
    allocations: Dict[str, int] = field(default_factory=dict)
    traffic: TrafficCounter = field(default_factory=TrafficCounter)

    def allocate(self, label: str, nbytes: int) -> None:
        """Reserve ``nbytes`` under ``label``; raises :class:`OutOfMemoryError` if full."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if label in self.allocations:
            raise ValueError(f"allocation {label!r} already exists in {self.name}")
        if self.used + nbytes > self.capacity:
            raise OutOfMemoryError(
                f"{self.name}: allocating {nbytes} bytes for {label!r} exceeds capacity "
                f"({self.used}/{self.capacity} bytes used)"
            )
        self.allocations[label] = nbytes

    def free(self, label: str) -> int:
        """Release the allocation ``label`` and return its size."""
        try:
            return self.allocations.pop(label)
        except KeyError as exc:
            raise KeyError(f"no allocation named {label!r} in {self.name}") from exc

    def resize(self, label: str, nbytes: int) -> None:
        """Resize an existing allocation, enforcing capacity."""
        if label not in self.allocations:
            raise KeyError(f"no allocation named {label!r} in {self.name}")
        delta = nbytes - self.allocations[label]
        if self.used + delta > self.capacity:
            raise OutOfMemoryError(
                f"{self.name}: resizing {label!r} to {nbytes} bytes exceeds capacity"
            )
        self.allocations[label] = nbytes

    @property
    def used(self) -> int:
        return sum(self.allocations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used

    def fits(self, nbytes: int) -> bool:
        return nbytes <= self.free_bytes

    def read(self, nbytes: int) -> None:
        self.traffic.record_read(nbytes)

    def write(self, nbytes: int) -> None:
        self.traffic.record_write(nbytes)

    def reset(self) -> None:
        self.allocations.clear()
        self.traffic.reset()


class GlobalMemory(MemoryRegion):
    """Device HBM; capacity taken from the GPU spec (80 GB on the paper's H800)."""

    def __init__(self, spec: GpuSpec):
        super().__init__(name=f"{spec.name}.GMEM", capacity=int(spec.memory_capacity))
        self.bandwidth = spec.memory_bandwidth

    def transfer_time(self, nbytes: int, efficiency: float = 1.0) -> float:
        """Seconds to move ``nbytes`` at ``efficiency`` fraction of peak bandwidth."""
        if not 0 < efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        return nbytes / (self.bandwidth * efficiency)


class SharedMemory(MemoryRegion):
    """Per-SM shared memory (SMEM), including the bank model."""

    def __init__(self, spec: GpuSpec):
        super().__init__(name=f"{spec.name}.SMEM", capacity=spec.smem_per_sm)
        self.num_banks = spec.smem_banks
        self.bank_width = spec.smem_bank_width


class RegisterFile(MemoryRegion):
    """Per-SM register file; capacity is ``registers_per_sm`` 32-bit registers."""

    def __init__(self, spec: GpuSpec):
        super().__init__(name=f"{spec.name}.RF", capacity=spec.registers_per_sm * 4)
        self.num_registers = spec.registers_per_sm

    def registers_used(self) -> int:
        return (self.used + 3) // 4


def smem_bank_conflicts_phased(
    base_addresses: Sequence[int],
    bytes_per_access: int = 16,
    num_banks: int = 32,
    bank_width: int = 4,
    threads_per_phase: int = 8,
) -> int:
    """Bank-conflict ways for wide (e.g. 128-bit) shared-memory accesses.

    Hardware executes an ``LDS.128`` warp access in phases of ``threads_per_phase`` threads
    (8 for 16-byte accesses), each phase moving at most 128 bytes.  Conflicts only arise
    *within* a phase, so the relevant figure is the worst per-phase conflict degree.
    ``base_addresses`` are the per-thread starting byte addresses in warp lane order.
    """
    if bytes_per_access <= 0 or bytes_per_access % bank_width != 0:
        raise ValueError("bytes_per_access must be a positive multiple of bank_width")
    worst = 0
    base_addresses = list(base_addresses)
    for start in range(0, len(base_addresses), threads_per_phase):
        phase = base_addresses[start : start + threads_per_phase]
        words: List[int] = []
        for base in phase:
            words.extend(base + bank_width * i for i in range(bytes_per_access // bank_width))
        worst = max(worst, smem_bank_conflicts(words, num_banks, bank_width))
    return worst


def smem_bank_conflicts(
    addresses: Sequence[int],
    num_banks: int = 32,
    bank_width: int = 4,
) -> int:
    """Return the maximum number of accesses mapping to the same bank within one warp.

    ``addresses`` are byte addresses issued by the 32 threads of a warp in one shared-memory
    transaction.  A result of 1 means conflict-free; ``k`` means the access is serialized into
    ``k`` phases.  Accesses to the *same* address are broadcast and do not conflict, matching
    the hardware behaviour.
    """
    if num_banks <= 0 or bank_width <= 0:
        raise ValueError("num_banks and bank_width must be positive")
    per_bank: Dict[int, set] = {}
    for addr in addresses:
        if addr < 0:
            raise ValueError("addresses must be non-negative")
        bank = (addr // bank_width) % num_banks
        per_bank.setdefault(bank, set()).add(addr // bank_width)
    if not per_bank:
        return 0
    return max(len(words) for words in per_bank.values())
