"""Modeled WGMMA fragment ownership map (which thread needs which weight elements).

Hopper's ``WGMMA.m64nNk32`` instruction consumes a 64x32 fragment of the (INT8) weight matrix
per warp group, distributed across the 128 threads in a fixed hardware pattern.  The exact
hardware pattern is irrelevant to the quantities this reproduction measures (instruction
counts, bytes loaded, bank conflicts, bijectivity of the reordering); what matters is its
*structure*, which Section 5.2 describes:

* each of the 4 warps owns a 16x32 slice of the fragment;
* each thread owns 16 elements arranged as four groups of four contiguous K-columns;
* per MMA, a thread's four groups live at strided locations in the 2-D tile, so a 1-byte
  element type can be gathered with one ``ldmatrix`` but a 4-bit type cannot.

This module defines one concrete mapping with exactly that structure and exposes it to both
the conventional-layout analysis and the dual-MMA packed layout.  All downstream code treats
the mapping as opaque, so swapping in a different (e.g. bit-exact SASS-derived) mapping would
not change any result other than the raw addresses.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = [
    "FRAGMENT_ROWS",
    "FRAGMENT_COLS",
    "THREADS_PER_WARP",
    "WARPS_PER_WARP_GROUP",
    "ELEMENTS_PER_THREAD",
    "GROUPS_PER_THREAD",
    "GROUP_WIDTH",
    "thread_fragment_elements",
    "fragment_ownership_map",
]

FRAGMENT_ROWS = 64      # N-dimension rows consumed by one WGMMA
FRAGMENT_COLS = 32      # K-dimension columns consumed by one WGMMA (INT8 => k32)
THREADS_PER_WARP = 32
WARPS_PER_WARP_GROUP = 4
ELEMENTS_PER_THREAD = 16
GROUPS_PER_THREAD = 4
GROUP_WIDTH = 4         # contiguous K columns per group


def thread_fragment_elements(warp: int, thread: int) -> List[Tuple[int, int]]:
    """Return the 16 (row, col) weight elements owned by ``thread`` of ``warp`` for one MMA.

    The mapping follows the structure of the WGMMA operand layout: warp ``w`` owns rows
    ``[16w, 16w+16)``; thread ``t`` owns rows ``16w + t//4`` and ``16w + t//4 + 8`` and, in
    each of those rows, two groups of four contiguous columns starting at ``4*(t%4)`` and
    ``16 + 4*(t%4)``.  The four threads of a quad therefore interleave their 4-element groups
    within each 16-column half, which is what breaks ``ldmatrix``'s 4-byte scatter granularity
    once elements shrink to 4 bits.
    """
    if not 0 <= warp < WARPS_PER_WARP_GROUP:
        raise ValueError("warp must be in [0, 4)")
    if not 0 <= thread < THREADS_PER_WARP:
        raise ValueError("thread must be in [0, 32)")
    base_row = 16 * warp + thread // 4
    base_col = 4 * (thread % 4)
    elements: List[Tuple[int, int]] = []
    for row in (base_row, base_row + 8):
        for group_start in (base_col, 16 + base_col):
            for offset in range(GROUP_WIDTH):
                elements.append((row, group_start + offset))
    return elements


def fragment_ownership_map() -> np.ndarray:
    """Return a (64, 32) int array mapping each fragment element to its owning lane id.

    Lane id is ``warp * 32 + thread``.  Used by tests to prove the mapping is a partition:
    every element owned exactly once.
    """
    owner = -np.ones((FRAGMENT_ROWS, FRAGMENT_COLS), dtype=np.int32)
    for warp in range(WARPS_PER_WARP_GROUP):
        for thread in range(THREADS_PER_WARP):
            for row, col in thread_fragment_elements(warp, thread):
                if owner[row, col] != -1:
                    raise AssertionError("fragment element owned by two threads")
                owner[row, col] = warp * THREADS_PER_WARP + thread
    if (owner < 0).any():
        raise AssertionError("fragment element owned by no thread")
    return owner
