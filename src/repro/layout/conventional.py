"""Conventional 2-D shared-memory layout for 4-bit weights and why it underperforms.

Section 5.2 / Figure 7a: with weights stored in the natural row-major 2-D layout, the two
ways a Compute WG can bring its WGMMA fragment from SMEM to registers both have problems when
elements are 4-bit:

* ``ldmatrix`` moves 16 contiguous *bytes* per thread and scatters every 4-byte group to the
  lane that owns it — assuming 1-byte elements.  With 4-bit elements the 4-byte groups contain
  *eight* elements spanning two lanes' data, so the scatter delivers wrong elements
  (:func:`ldmatrix_misrouting` quantifies how many land in the wrong lane).
* ``LDS.32`` loads are correct but each 32-bit transaction contains only four useful 4-bit
  values (16 of 32 bits), halving effective SMEM bandwidth and requiring four load
  instructions plus address arithmetic per MMA per thread.

The :class:`LoadAnalysis` produced here is consumed by the kernel cost models (address/load
instruction pressure on CUDA cores) and compared against the dual-MMA packed layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


from ..gpu.memory import smem_bank_conflicts
from .fragment import (
    FRAGMENT_COLS,
    THREADS_PER_WARP,
    WARPS_PER_WARP_GROUP,
    thread_fragment_elements,
)

__all__ = [
    "LoadAnalysis",
    "conventional_address_nibbles",
    "analyze_conventional_loads",
    "ldmatrix_misrouting",
]


@dataclass(frozen=True)
class LoadAnalysis:
    """Per-thread, per-dual-MMA summary of an SMEM->RF load strategy."""

    layout: str
    instruction: str
    loads_per_thread: int
    bytes_loaded_per_thread: int
    bytes_used_per_thread: int
    address_ops_per_thread: int
    max_bank_conflict_ways: int

    @property
    def bandwidth_utilization(self) -> float:
        """Fraction of loaded bytes actually consumed."""
        if self.bytes_loaded_per_thread == 0:
            return 0.0
        return self.bytes_used_per_thread / self.bytes_loaded_per_thread

    @property
    def effective_load_cost(self) -> float:
        """Serialized load transactions after bank-conflict replay."""
        return self.loads_per_thread * max(1, self.max_bank_conflict_ways)


def conventional_address_nibbles(row: int, col: int, tile_cols: int = FRAGMENT_COLS) -> int:
    """Nibble address of element (row, col) in a row-major 2-D 4-bit tile."""
    if not (0 <= row and 0 <= col < tile_cols):
        raise ValueError("element outside the tile")
    return row * tile_cols + col


def analyze_conventional_loads(tile_cols: int = FRAGMENT_COLS, num_mmas: int = 2) -> LoadAnalysis:
    """Analyze the LDS.32 strategy on the conventional 2-D layout for ``num_mmas`` MMAs.

    Each group of four contiguous 4-bit elements (2 bytes) is fetched with one 32-bit load of
    which half is wasted; addresses for the four groups are strided, so every load needs its
    own address computation (one IMAD each).  Bank conflicts are evaluated on warp 0's lanes
    issuing their first group load simultaneously.
    """
    groups_per_mma = 4
    loads = groups_per_mma * num_mmas
    bytes_loaded = 4 * loads
    bytes_used = 2 * loads

    # Simultaneous addresses of warp 0, group 0 (byte addresses of the 32-bit words).
    addresses = []
    for thread in range(THREADS_PER_WARP):
        row, col = thread_fragment_elements(0, thread)[0]
        nibble = conventional_address_nibbles(row, col, tile_cols)
        addresses.append((nibble // 2) & ~0x3)  # aligned 32-bit word containing the group
    conflicts = smem_bank_conflicts(addresses)

    return LoadAnalysis(
        layout="conventional-2d",
        instruction="LDS.32",
        loads_per_thread=loads,
        bytes_loaded_per_thread=bytes_loaded,
        bytes_used_per_thread=bytes_used,
        address_ops_per_thread=loads,  # one address IMAD per strided load
        max_bank_conflict_ways=conflicts,
    )


def ldmatrix_misrouting(tile_cols: int = FRAGMENT_COLS) -> Dict[str, float]:
    """Quantify how badly ``ldmatrix`` scatters a 4-bit tile stored in the 2-D layout.

    ``ldmatrix`` is specified for 1-byte elements: each lane receives the four consecutive
    *bytes* starting at byte offset ``4 * lane`` of the 16-byte rows it loads.  When elements
    are 4-bit, those four bytes hold eight elements — the lane's own four plus four belonging
    to the next lane.  We replay that behaviour against the fragment ownership map and report
    the fraction of elements delivered to the wrong lane.
    """
    wrong = 0
    total = 0
    for warp in range(WARPS_PER_WARP_GROUP):
        for thread in range(THREADS_PER_WARP):
            owned = thread_fragment_elements(warp, thread)
            owned_set = set(owned)
            row, col = owned[0]
            # ldmatrix scatters 4-byte groups: the lane receives the 4 bytes starting at the
            # 4-byte-aligned address of its first owned element.  With 4-bit elements those
            # 4 bytes contain eight consecutive columns, only four of which belong to the lane.
            start_col = (col // 8) * 8
            delivered = [(row, start_col + i) for i in range(8) if start_col + i < tile_cols]
            for element in delivered:
                total += 1
                if element not in owned_set:
                    wrong += 1
    return {
        "fraction_misrouted": wrong / total if total else 0.0,
        "elements_checked": float(total),
    }
