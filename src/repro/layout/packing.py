"""Nibble/byte packing utilities for W4 weights.

Quantized UINT4 weights are stored one code per ``uint8`` by the quantizers for clarity, but
the kernels operate on *packed* 32-bit registers holding eight 4-bit codes each.  Two packing
orders matter:

* **sequential** — nibble ``i`` of the register holds element ``i``; this is what a naive
  bitstream packing produces and what ``ldmatrix`` implicitly assumes when it mis-scatters
  4-bit data (Section 5.2, Figure 7a);
* **interleaved** (QServe / LiquidGEMM) — elements are placed so that a single
  ``AND 0x0F0F0F0F`` yields the four elements of the first MMA in separate bytes and
  ``(AND 0xF0F0F0F0) >> 4`` yields the four elements of the second MMA (Figure 8):

  ======  ======  ======  ======  ======  ======  ======  ======
  bits    31-28   27-24   23-20   19-16   15-12   11-8    7-4     3-0
  elem    w7      w3      w6      w2      w5      w1      w4      w0
  ======  ======  ======  ======  ======  ======  ======  ======

Both packings are exact bijections; property tests assert ``unpack(pack(x)) == x``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "pack_u4_sequential",
    "unpack_u4_sequential",
    "pack_u4_interleaved",
    "unpack_u4_interleaved",
    "INTERLEAVED_NIBBLE_ORDER",
    "pack_u8_to_u32",
    "unpack_u32_to_u8",
]

#: ``INTERLEAVED_NIBBLE_ORDER[n]`` gives the element index stored in nibble ``n`` (nibble 0 is
#: bits 3..0).  Derived from Figure 8: low nibbles of the four bytes hold w0..w3 (first MMA),
#: high nibbles hold w4..w7 (second MMA).
INTERLEAVED_NIBBLE_ORDER: Tuple[int, ...] = (0, 4, 1, 5, 2, 6, 3, 7)


def _check_u4(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values)
    if values.size and (values.min() < 0 or values.max() > 15):
        raise ValueError("UINT4 codes must lie in [0, 15]")
    return values.astype(np.uint32)


def pack_u4_sequential(values: np.ndarray) -> np.ndarray:
    """Pack UINT4 codes ``(..., 8)`` into ``uint32`` registers ``(...)`` in sequential order."""
    values = _check_u4(values)
    if values.shape[-1] != 8:
        raise ValueError("last dimension must be 8 (eight nibbles per 32-bit register)")
    out = np.zeros(values.shape[:-1], dtype=np.uint32)
    for nibble in range(8):
        out |= values[..., nibble] << np.uint32(4 * nibble)
    return out


def unpack_u4_sequential(registers: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_u4_sequential`; returns UINT4 codes with a trailing axis of 8."""
    registers = np.asarray(registers, dtype=np.uint32)
    out = np.zeros(registers.shape + (8,), dtype=np.uint8)
    for nibble in range(8):
        out[..., nibble] = ((registers >> np.uint32(4 * nibble)) & np.uint32(0xF)).astype(np.uint8)
    return out


def pack_u4_interleaved(values: np.ndarray) -> np.ndarray:
    """Pack UINT4 codes ``(..., 8)`` into registers using the dual-MMA interleaved order."""
    values = _check_u4(values)
    if values.shape[-1] != 8:
        raise ValueError("last dimension must be 8 (eight nibbles per 32-bit register)")
    out = np.zeros(values.shape[:-1], dtype=np.uint32)
    for nibble, element in enumerate(INTERLEAVED_NIBBLE_ORDER):
        out |= values[..., element] << np.uint32(4 * nibble)
    return out


def unpack_u4_interleaved(registers: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_u4_interleaved`."""
    registers = np.asarray(registers, dtype=np.uint32)
    out = np.zeros(registers.shape + (8,), dtype=np.uint8)
    for nibble, element in enumerate(INTERLEAVED_NIBBLE_ORDER):
        out[..., element] = ((registers >> np.uint32(4 * nibble)) & np.uint32(0xF)).astype(np.uint8)
    return out


def pack_u8_to_u32(values: np.ndarray) -> np.ndarray:
    """Pack bytes ``(..., 4)`` into ``uint32`` registers (byte 0 least significant)."""
    values = np.asarray(values)
    if values.size and (values.min() < 0 or values.max() > 255):
        raise ValueError("byte values must lie in [0, 255]")
    if values.shape[-1] != 4:
        raise ValueError("last dimension must be 4 (four bytes per register)")
    values = values.astype(np.uint32)
    out = np.zeros(values.shape[:-1], dtype=np.uint32)
    for byte in range(4):
        out |= values[..., byte] << np.uint32(8 * byte)
    return out


def unpack_u32_to_u8(registers: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_u8_to_u32`; returns bytes with a trailing axis of 4."""
    registers = np.asarray(registers, dtype=np.uint32)
    out = np.zeros(registers.shape + (4,), dtype=np.uint8)
    for byte in range(4):
        out[..., byte] = ((registers >> np.uint32(8 * byte)) & np.uint32(0xFF)).astype(np.uint8)
    return out
