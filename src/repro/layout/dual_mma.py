"""Dual-MMA packed layout (Section 5.2, Figure 7b).

The layout exploits the gap between what one ``LDS.128`` transaction moves (16 bytes = 32
UINT4 elements) and what one MMA needs per thread (16 UINT4 elements): the elements a thread
needs for **two consecutive MMAs** are reordered offline so they sit contiguously in shared
memory, in a flat 1-D order indexed by ``(warp, thread)``.  Consequences reproduced here:

* one ``LDS.128`` per thread per dual-MMA instead of eight ``LDS.32`` (8x fewer load
  instructions, no wasted bytes);
* consecutive threads read consecutive 16-byte chunks, so a warp's access covers each of the
  32 SMEM banks exactly once — bank-conflict free by construction, with no swizzling;
* the same flat order is used in global memory, so TMA / ``LDG.128`` transfers are fully
  coalesced and the reordering costs nothing at run time (it is applied offline).

The functions below implement the offline reordering (a pure permutation — verified bijective
by tests), the per-thread register view used by the emulated dequantization, and the
load-analysis counterpart to :func:`repro.layout.conventional.analyze_conventional_loads`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..gpu.memory import smem_bank_conflicts_phased
from .conventional import LoadAnalysis
from .fragment import (
    FRAGMENT_COLS,
    FRAGMENT_ROWS,
    THREADS_PER_WARP,
    WARPS_PER_WARP_GROUP,
    thread_fragment_elements,
)
from .packing import pack_u4_interleaved, unpack_u4_interleaved

__all__ = [
    "DUAL_MMA_TILE_ROWS",
    "DUAL_MMA_TILE_COLS",
    "ELEMENTS_PER_THREAD_DUAL",
    "PackedDualMmaTile",
    "dual_mma_element_order",
    "pack_dual_mma_tile",
    "unpack_dual_mma_tile",
    "thread_registers",
    "analyze_dual_mma_loads",
    "analyze_packed_2d_lds128",
    "pack_weight_matrix",
    "PackedWeightMatrix",
]

DUAL_MMA_TILE_ROWS = FRAGMENT_ROWS            # 64 rows (N)
DUAL_MMA_TILE_COLS = 2 * FRAGMENT_COLS        # 64 columns (K) = two k32 MMAs
ELEMENTS_PER_THREAD_DUAL = 32                 # 16 per MMA x 2 MMAs
_REGISTERS_PER_THREAD = ELEMENTS_PER_THREAD_DUAL // 8
_TOTAL_THREADS = WARPS_PER_WARP_GROUP * THREADS_PER_WARP


def dual_mma_element_order(warp: int, thread: int) -> List[Tuple[int, int]]:
    """The 32 (row, col) elements of a 64x64 dual-MMA tile owned by ``(warp, thread)``.

    The first 16 belong to MMA1 (columns 0-31), the second 16 to MMA2 (columns 32-63).
    """
    first = thread_fragment_elements(warp, thread)
    second = [(row, col + FRAGMENT_COLS) for row, col in thread_fragment_elements(warp, thread)]
    return first + second


@dataclass
class PackedDualMmaTile:
    """One 64x64 UINT4 tile in the flat dual-MMA packed order.

    ``words`` is a ``(128, 4)`` uint32 array: four packed registers per thread, ordered by
    lane id — i.e. exactly the bytes as they sit in shared memory, 16 bytes per thread.
    """

    words: np.ndarray
    rows: int = DUAL_MMA_TILE_ROWS
    cols: int = DUAL_MMA_TILE_COLS

    def __post_init__(self):
        if self.words.shape != (_TOTAL_THREADS, _REGISTERS_PER_THREAD):
            raise ValueError(
                f"expected words of shape {(_TOTAL_THREADS, _REGISTERS_PER_THREAD)}, "
                f"got {self.words.shape}"
            )

    def smem_bytes(self) -> int:
        return self.words.size * 4


def pack_dual_mma_tile(tile_u4: np.ndarray) -> PackedDualMmaTile:
    """Reorder and pack a (64, 64) UINT4 tile into the flat dual-MMA layout."""
    tile_u4 = np.asarray(tile_u4)
    if tile_u4.shape != (DUAL_MMA_TILE_ROWS, DUAL_MMA_TILE_COLS):
        raise ValueError(f"expected a {(DUAL_MMA_TILE_ROWS, DUAL_MMA_TILE_COLS)} tile")
    words = np.zeros((_TOTAL_THREADS, _REGISTERS_PER_THREAD), dtype=np.uint32)
    for warp in range(WARPS_PER_WARP_GROUP):
        for thread in range(THREADS_PER_WARP):
            lane = warp * THREADS_PER_WARP + thread
            order = dual_mma_element_order(warp, thread)
            values = np.array([tile_u4[r, c] for r, c in order], dtype=np.uint8)
            # Eight elements per register, packed in the interleaved nibble order so the
            # two-instruction unpack (AND / AND+SHR) of Figure 8 separates them into bytes.
            words[lane] = pack_u4_interleaved(values.reshape(_REGISTERS_PER_THREAD, 8))
    return PackedDualMmaTile(words=words)


def unpack_dual_mma_tile(packed: PackedDualMmaTile) -> np.ndarray:
    """Invert :func:`pack_dual_mma_tile`, reconstructing the (64, 64) UINT4 tile."""
    tile = np.zeros((packed.rows, packed.cols), dtype=np.uint8)
    for warp in range(WARPS_PER_WARP_GROUP):
        for thread in range(THREADS_PER_WARP):
            lane = warp * THREADS_PER_WARP + thread
            values = unpack_u4_interleaved(packed.words[lane]).reshape(-1)
            for (r, c), v in zip(dual_mma_element_order(warp, thread), values):
                tile[r, c] = v
    return tile


def thread_registers(packed: PackedDualMmaTile, warp: int, thread: int) -> np.ndarray:
    """The four packed 32-bit registers a thread receives from its single LDS.128."""
    lane = warp * THREADS_PER_WARP + thread
    return packed.words[lane].copy()


def analyze_dual_mma_loads() -> LoadAnalysis:
    """Load analysis for the flat 1-D dual-MMA layout accessed with LDS.128."""
    # Per-thread base byte addresses: lane i reads bytes [16*i, 16*i+16).  LDS.128 is executed
    # in quarter-warp phases, each covering the 32 banks exactly once -> conflict-free.
    bases = [16 * thread for thread in range(THREADS_PER_WARP)]
    conflicts = smem_bank_conflicts_phased(bases, bytes_per_access=16)
    return LoadAnalysis(
        layout="dual-mma-1d",
        instruction="LDS.128",
        loads_per_thread=1,
        bytes_loaded_per_thread=16,
        bytes_used_per_thread=16,
        address_ops_per_thread=1,
        max_bank_conflict_ways=conflicts,
    )


def analyze_packed_2d_lds128(row_pitch_bytes: int = 128) -> LoadAnalysis:
    """Load analysis for a QServe-style *2-D* packed layout accessed with LDS.128.

    Each thread still owns 16 contiguous bytes, but threads' chunks are addressed through a
    2-D (row, column) index with ``row_pitch_bytes`` between rows.  With the pitch a multiple
    of 128 bytes (the full bank width), threads in the same quarter-warp phase that touch
    different rows at the same column offset land on the same banks and conflict — the classic
    problem swizzling exists to solve, and which the paper's 1-D arrangement avoids entirely.
    """
    bases = []
    for thread in range(THREADS_PER_WARP):
        row = thread // 4
        col_chunk = thread % 4
        bases.append(row * row_pitch_bytes + col_chunk * 16)
    conflicts = smem_bank_conflicts_phased(bases, bytes_per_access=16)
    return LoadAnalysis(
        layout="packed-2d",
        instruction="LDS.128",
        loads_per_thread=1,
        bytes_loaded_per_thread=16,
        bytes_used_per_thread=16,
        address_ops_per_thread=2,  # row/column address arithmetic
        max_bank_conflict_ways=conflicts,
    )


@dataclass
class PackedWeightMatrix:
    """A full (N, K) UINT4 weight matrix packed tile-by-tile into the dual-MMA layout.

    ``tiles[i][j]`` is the packed 64x64 tile covering rows ``[64i, 64i+64)`` and columns
    ``[64j, 64j+64)``.  Ragged edges are zero-padded (zero UINT4 codes dequantize to the group
    minimum, which contributes nothing once multiplied by zero-padded activations).
    """

    tiles: List[List[PackedDualMmaTile]]
    n: int
    k: int

    @property
    def tile_grid(self) -> Tuple[int, int]:
        return len(self.tiles), len(self.tiles[0]) if self.tiles else 0

    def gmem_bytes(self) -> int:
        return sum(t.smem_bytes() for row in self.tiles for t in row)


def pack_weight_matrix(q_u4: np.ndarray) -> PackedWeightMatrix:
    """Pack an (N, K) UINT4 code matrix into dual-MMA tiles (offline weight reordering)."""
    q_u4 = np.asarray(q_u4)
    if q_u4.ndim != 2:
        raise ValueError("expected a 2-D code matrix")
    n, k = q_u4.shape
    rows_pad = (n + DUAL_MMA_TILE_ROWS - 1) // DUAL_MMA_TILE_ROWS * DUAL_MMA_TILE_ROWS
    cols_pad = (k + DUAL_MMA_TILE_COLS - 1) // DUAL_MMA_TILE_COLS * DUAL_MMA_TILE_COLS
    padded = np.zeros((rows_pad, cols_pad), dtype=np.uint8)
    padded[:n, :k] = q_u4
    tiles: List[List[PackedDualMmaTile]] = []
    for i in range(0, rows_pad, DUAL_MMA_TILE_ROWS):
        row_tiles = []
        for j in range(0, cols_pad, DUAL_MMA_TILE_COLS):
            row_tiles.append(
                pack_dual_mma_tile(padded[i : i + DUAL_MMA_TILE_ROWS, j : j + DUAL_MMA_TILE_COLS])
            )
        tiles.append(row_tiles)
    return PackedWeightMatrix(tiles=tiles, n=n, k=k)
