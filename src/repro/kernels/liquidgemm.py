"""LiquidGEMM: the paper's W4A8 kernel (LiquidQuant + dual-MMA layout + ImFP pipeline).

Offline (``prepare_weights``):

1. two-level LiquidQuant quantization (per-channel protective INT8, per-group shifted UINT4);
2. dual-MMA packed layout reordering of the UINT4 codes (so deployment-ready bytes are
   exactly what the GMEM/SMEM of the real kernel would hold).

Online (``run``):

1. per-token dynamic INT8 activation quantization (SmoothQuant-style, Section 6);
2. Equation-12 dequantization of the UINT4 codes back to INT8 — by default through the fast
   vectorized path whose bit-exact equivalence with the emulated IMAD/XOR register path is
   established by the test suite (``verify_tile_path`` replays the register path on real
   tiles);
3. INT8 x INT8 -> INT32 accumulation (the Tensor-Core WGMMA);
4. epilogue: first-level per-channel scale x per-token activation scale.

Performance (``estimate``): full-overlap pipeline (ImFP) on Hopper WGMMA efficiency with the
LQQ alpha measured from the instruction emulation, optionally cross-checked against the
event-driven pipeline simulator.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..costmodel.model import KernelCostParams, PipelineMode
from ..dequant.lqq import lqq_alpha, lqq_dequant_registers, registers_to_int8
from ..gpu.specs import GpuSpec, Precision
from ..isa import InstructionStats
from ..layout.dual_mma import (
    DUAL_MMA_TILE_COLS,
    DUAL_MMA_TILE_ROWS,
    PackedWeightMatrix,
    dual_mma_element_order,
    pack_weight_matrix,
)
from ..layout.fragment import THREADS_PER_WARP, WARPS_PER_WARP_GROUP
from ..pipeline.simulator import PipelineKind
from ..quant.activation import quantize_activation_per_token
from ..quant.liquidquant import (
    LqqConfig,
    LqqQuantizedWeight,
    lqq_dequantize_int8,
    lqq_quantize,
)
from .base import GemmKernel, PreparedWeights
from .library import _DRAM_EFFICIENCY, _HOPPER_TENSOR_EFFICIENCY

__all__ = ["LiquidGemmKernel"]


class LiquidGemmKernel(GemmKernel):
    """The paper's hardware-efficient W4A8 GEMM kernel."""

    name = "liquidgemm"
    pipeline_kind = PipelineKind.IMFP

    def __init__(self, group_size: int = 64, num_compute_warp_groups: int = 2):
        if group_size % 32 != 0:
            # The dual-MMA layout requires every 32-column MMA fragment to fall inside one
            # quantization group so each packed register carries a single (scale, offset).
            raise ValueError("LiquidGEMM requires the group size to be a multiple of 32")
        self.config = LqqConfig(group_size=group_size)
        self.num_compute_warp_groups = num_compute_warp_groups

    # ------------------------------------------------------------------ cost model
    def cost_params(self, gpu: GpuSpec) -> KernelCostParams:
        return KernelCostParams(
            name=self.name,
            weight_precision=Precision.INT4,
            act_precision=Precision.INT8,
            mma_precision=Precision.INT8,
            alpha=lqq_alpha(),
            pipeline=PipelineMode.FULL_OVERLAP,
            tile_m=256,
            tile_n=128,
            tile_k=64,
            # Dual-MMA packed layout: one LDS.128 + one address op per 32 elements.
            load_overhead_alpha=2.0 / 32.0,
            tensor_efficiency=_HOPPER_TENSOR_EFFICIENCY,
            bandwidth_efficiency=_DRAM_EFFICIENCY,
        )

    def _pipeline_kwargs(self):
        # Ablation subclasses reuse this kernel with serial/ExCP pipelines, whose simulators
        # have no notion of multiple compute warp groups.
        if self.pipeline_kind == PipelineKind.IMFP:
            return {"num_compute_wgs": self.num_compute_warp_groups}
        return {}

    # ------------------------------------------------------------------ offline
    def prepare_weights(self, w: np.ndarray) -> PreparedWeights:
        w = np.asarray(w, dtype=np.float64)
        qw = lqq_quantize(w, self.config)
        packed = pack_weight_matrix(qw.q_u4)
        return PreparedWeights(
            kernel=self.name,
            original=w,
            payload={"lqq": qw, "packed": packed},
            deployed_bytes=qw.memory_bytes(),
        )

    # ------------------------------------------------------------------ numeric execution
    def run(self, x: np.ndarray, weights: PreparedWeights) -> np.ndarray:
        qw: LqqQuantizedWeight = weights.payload["lqq"]
        qa = quantize_activation_per_token(x)
        w_i8 = lqq_dequantize_int8(qw)
        acc = qa.q_i8.astype(np.int64) @ w_i8.astype(np.int64).T
        return acc.astype(np.float64) * qa.scale_tok * qw.scale_ch.reshape(1, -1)

    # ------------------------------------------------------------------ register-path check
    def verify_tile_path(
        self,
        weights: PreparedWeights,
        tile_row: int = 0,
        tile_col: int = 0,
        stats: Optional[InstructionStats] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Dequantize one dual-MMA tile through the emulated register path.

        Returns ``(register_path, reference)`` INT8 tiles of shape (64, 64) so tests and the
        quickstart example can assert bit-exact agreement between the IMAD/XOR register
        sequence operating on the packed layout and the plain Equation-12 reference.
        """
        qw: LqqQuantizedWeight = weights.payload["lqq"]
        packed: PackedWeightMatrix = weights.payload["packed"]
        tile = packed.tiles[tile_row][tile_col]
        group = self.config.group_size

        reference_full = lqq_dequantize_int8(qw)
        r0, c0 = tile_row * DUAL_MMA_TILE_ROWS, tile_col * DUAL_MMA_TILE_COLS
        rows = min(DUAL_MMA_TILE_ROWS, qw.n - r0)
        cols = min(DUAL_MMA_TILE_COLS, qw.k - c0)
        reference = np.zeros((DUAL_MMA_TILE_ROWS, DUAL_MMA_TILE_COLS), dtype=np.int8)
        reference[:rows, :cols] = reference_full[r0 : r0 + rows, c0 : c0 + cols]

        out = np.zeros((DUAL_MMA_TILE_ROWS, DUAL_MMA_TILE_COLS), dtype=np.int8)
        for warp in range(WARPS_PER_WARP_GROUP):
            for thread in range(THREADS_PER_WARP):
                lane = warp * THREADS_PER_WARP + thread
                order = dual_mma_element_order(warp, thread)
                registers = tile.words[lane]
                # Each register's eight elements lie in one weight row, hence share one group's
                # (scale, offset); out-of-range (padding) rows reuse group 0 with scale 1.
                scales = np.ones(registers.shape, dtype=np.int64)
                offsets = np.full(registers.shape, 128, dtype=np.int64)
                for reg_idx in range(registers.shape[0]):
                    row, col = order[reg_idx * 8]
                    abs_row, abs_col = r0 + row, c0 + col
                    if abs_row < qw.n and abs_col < qw.k:
                        g = abs_col // group
                        scales[reg_idx] = int(qw.scale_u8[abs_row, g])
                        offsets[reg_idx] = int(qw.offset_a[abs_row, g])
                byte_regs = lqq_dequant_registers(registers, scales, offsets, stats)
                values = np.concatenate(
                    [registers_to_int8(byte_regs[..., 0]), registers_to_int8(byte_regs[..., 1])],
                    axis=-1,
                ).reshape(-1)
                for (row, col), value in zip(order, values):
                    out[row, col] = value
        # Padding rows/columns are irrelevant; only compare the in-range region.
        return out[:rows, :cols], reference[:rows, :cols]
