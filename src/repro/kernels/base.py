"""Kernel abstraction shared by LiquidGEMM and every baseline it is compared against.

A :class:`GemmKernel` bundles three things:

* **offline weight preparation** (`prepare_weights`) — quantization + layout reordering,
  returning a :class:`PreparedWeights` with explicit deployed-size accounting;
* **a numeric execution path** (`run`) — computes ``Y = X @ W^T`` through the kernel's actual
  arithmetic (integer accumulation, epilogue scaling), so correctness against an FP reference
  is testable;
* **a performance estimate** (`estimate`) — evaluates the paper's cost model (and optionally
  the event-driven pipeline simulator) on the kernel's :class:`KernelCostParams` for a given
  GPU, returning a :class:`KernelReport`.

All kernels in :mod:`repro.kernels.library`, :mod:`repro.kernels.liquidgemm` and
:mod:`repro.kernels.ablation` share this interface, which is what makes the paper's unified
benchmark framework (Section 7.1) reproducible as a controlled comparison.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..costmodel.model import CostBreakdown, GemmShape, KernelCostParams, gemm_cost
from ..gpu.device import Device
from ..gpu.specs import GpuSpec, Precision
from ..pipeline.simulator import PipelineKind, PipelineResult, simulate_pipeline
from ..pipeline.timing import decompose_work, derive_iteration_timing

__all__ = ["PreparedWeights", "KernelReport", "GemmKernel", "as_device"]


def as_device(device_or_spec) -> Device:
    """Accept a :class:`Device`, a :class:`GpuSpec` or a GPU name and return a Device."""
    if isinstance(device_or_spec, Device):
        return device_or_spec
    return Device(device_or_spec)


@dataclass
class PreparedWeights:
    """Offline-prepared (quantized / reordered) weights for one GEMM operand."""

    kernel: str
    original: np.ndarray
    payload: Dict[str, Any] = field(default_factory=dict)
    deployed_bytes: int = 0

    @property
    def shape(self):
        return self.original.shape

    def compression_ratio(self) -> float:
        """FP16 bytes divided by deployed bytes (≈4 for 4-bit schemes)."""
        fp16_bytes = self.original.size * 2
        return fp16_bytes / self.deployed_bytes if self.deployed_bytes else float("nan")


@dataclass
class KernelReport:
    """Performance report for one GEMM executed (or estimated) by one kernel."""

    kernel: str
    shape: GemmShape
    gpu: str
    latency_s: float
    breakdown: CostBreakdown
    pipeline: Optional[PipelineResult] = None
    alpha: float = 0.0
    weight_bytes: int = 0
    notes: str = ""

    @property
    def tops(self) -> float:
        """Achieved throughput in tensor OPs per second."""
        return self.shape.flops / self.latency_s if self.latency_s > 0 else 0.0

    @property
    def latency_us(self) -> float:
        return self.latency_s * 1e6


class GemmKernel(abc.ABC):
    """Base class for every GEMM kernel implementation in the reproduction."""

    #: Human-readable kernel name (matches the labels used in the paper's figures).
    name: str = "abstract"
    #: Pipeline simulator kind used when ``use_pipeline_sim=True``.
    pipeline_kind: str = PipelineKind.SERIAL

    # ------------------------------------------------------------------ configuration
    @abc.abstractmethod
    def cost_params(self, gpu: GpuSpec) -> KernelCostParams:
        """Cost-model parameters of this kernel on ``gpu``."""

    # ------------------------------------------------------------------ offline
    @abc.abstractmethod
    def prepare_weights(self, w: np.ndarray) -> PreparedWeights:
        """Quantize / reorder an FP weight matrix ``(N, K)`` for deployment."""

    # ------------------------------------------------------------------ numeric execution
    @abc.abstractmethod
    def run(self, x: np.ndarray, weights: PreparedWeights) -> np.ndarray:
        """Execute ``Y = X @ W^T`` through the kernel's arithmetic; returns FP output."""

    # ------------------------------------------------------------------ performance
    def estimate(
        self,
        shape: GemmShape,
        device="H800",
        use_pipeline_sim: bool = False,
        group_sizes: Optional[Sequence[GemmShape]] = None,
    ) -> KernelReport:
        """Estimate latency of this kernel for ``shape`` on ``device``.

        With ``use_pipeline_sim`` the event-driven warp-group simulator replaces the closed-
        form combination of stage times (the per-iteration stage durations are identical, so
        the two agree up to scheduling effects).  ``group_sizes`` turns the estimate into a
        grouped GEMM (e.g. the per-expert GEMMs of an MoE layer) executed back to back by the
        same persistent kernel.
        """
        dev = as_device(device)
        params = self.cost_params(dev.spec)
        shapes: List[GemmShape] = list(group_sizes) if group_sizes else [shape]

        breakdowns = [gemm_cost(s, dev.spec, params) for s in shapes]
        total_latency = sum(b.total for b in breakdowns)
        main = breakdowns[0]

        pipeline_result = None
        if use_pipeline_sim:
            pipeline_result = self._simulate(shapes, dev, params)
            # Pipeline simulation covers the main loops; keep epilogue/launch from the model.
            extras = sum(b.t_epilogue + b.t_launch for b in breakdowns)
            total_latency = pipeline_result.total_time + extras

        return KernelReport(
            kernel=self.name,
            shape=shape,
            gpu=dev.spec.name,
            latency_s=total_latency,
            breakdown=main,
            pipeline=pipeline_result,
            alpha=params.alpha,
            weight_bytes=sum(
                int(s.weight_elements * Precision.bytes(params.weight_precision)) for s in shapes
            ),
        )

    def _simulate(self, shapes: Sequence[GemmShape], dev: Device, params: KernelCostParams
                  ) -> PipelineResult:
        timings = []
        iterations = []
        for s in shapes:
            work = decompose_work(s, dev.spec, params)
            timings.append(derive_iteration_timing(s, dev.spec, params))
            iterations.append(work.k_iterations * work.tiles_per_block)
        kwargs = self._pipeline_kwargs()
        if len(shapes) > 1 and "per_gemm_overhead" not in kwargs:
            # Grouped (e.g. per-expert MoE) GEMMs: the persistent ImFP kernel flows from one
            # GEMM into the next, while non-persistent kernels drain and refill the pipeline.
            kwargs["per_gemm_overhead"] = (
                0.0 if self.pipeline_kind == PipelineKind.IMFP else 2.0e-6
            )
        return simulate_pipeline(self.pipeline_kind, timings, iterations, **kwargs)

    def _pipeline_kwargs(self) -> Dict[str, Any]:
        """Extra keyword arguments for the pipeline simulator; kernels may override."""
        return {}

    # ------------------------------------------------------------------ convenience
    def reference(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        """Full-precision reference output used by accuracy checks."""
        return np.asarray(x, dtype=np.float64) @ np.asarray(w, dtype=np.float64).T

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"{type(self).__name__}(name={self.name!r})"
