"""Ablation variants of LiquidGEMM (Figure 13): Baseline, +LQQ, +ExCP, +ImFP.

The paper's ablation enables the two techniques one at a time:

* **Baseline** — the W4A8 kernel skeleton with QServe-style dequantization (expensive alpha)
  and no warp-specialized pipeline: dequant and MMA serialize in the main loop.
* **LQQ** — swap in LiquidQuant's two-instruction dequantization; pipeline unchanged.
* **ExCP** — LQQ plus the explicit coarse-grained pipeline (separate Load / Dequant / MMA warp
  groups communicating through shared memory, with its round-trip traffic and software
  synchronization).
* **ImFP** — LQQ plus the implicit fine-grained pipeline (the shipping LiquidGEMM).

ExCP and ImFP share memory layout and dequantization logic, exactly as in the paper; they
differ only in the pipeline organisation, which here means the pipeline simulator kind and the
closed-form combination rule.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..costmodel.model import KernelCostParams, PipelineMode
from ..dequant.lqq import lqq_alpha
from ..dequant.qserve import qserve_alpha
from ..gpu.specs import GpuSpec
from ..pipeline.simulator import PipelineKind
from .liquidgemm import LiquidGemmKernel

__all__ = [
    "AblationBaselineKernel",
    "AblationLqqKernel",
    "AblationExcpKernel",
    "AblationImfpKernel",
    "ablation_kernels",
]


class AblationBaselineKernel(LiquidGemmKernel):
    """W4A8 skeleton with QServe-style dequantization, no pipeline specialization."""

    name = "ablation-baseline"
    pipeline_kind = PipelineKind.SERIAL

    def cost_params(self, gpu: GpuSpec) -> KernelCostParams:
        params = super().cost_params(gpu)
        return dataclasses.replace(
            params,
            name=self.name,
            alpha=qserve_alpha(),
            pipeline=PipelineMode.SERIAL_DEQUANT,
        )


class AblationLqqKernel(LiquidGemmKernel):
    """LiquidQuant dequantization enabled, pipeline still serial (the "+LQQ" bar)."""

    name = "ablation-lqq"
    pipeline_kind = PipelineKind.SERIAL

    def cost_params(self, gpu: GpuSpec) -> KernelCostParams:
        params = super().cost_params(gpu)
        return dataclasses.replace(
            params,
            name=self.name,
            alpha=lqq_alpha(),
            pipeline=PipelineMode.SERIAL_DEQUANT,
        )


class AblationExcpKernel(LiquidGemmKernel):
    """LQQ + explicit coarse-grained pipeline (three specialized warp groups)."""

    name = "ablation-excp"
    pipeline_kind = PipelineKind.EXCP

    def cost_params(self, gpu: GpuSpec) -> KernelCostParams:
        params = super().cost_params(gpu)
        # The closed-form model has no notion of the SMEM round trip / sync bubbles, so the
        # ExCP variant should be evaluated with use_pipeline_sim=True (the Figure 13 bench
        # does); for the closed-form path we keep full overlap as an optimistic bound.
        return dataclasses.replace(params, name=self.name, pipeline=PipelineMode.FULL_OVERLAP)


class AblationImfpKernel(LiquidGemmKernel):
    """LQQ + implicit fine-grained pipeline — identical to the shipping LiquidGEMM."""

    name = "ablation-imfp"
    pipeline_kind = PipelineKind.IMFP


def ablation_kernels() -> Dict[str, LiquidGemmKernel]:
    """The four ablation configurations in presentation order."""
    return {
        "baseline": AblationBaselineKernel(),
        "lqq": AblationLqqKernel(),
        "excp": AblationExcpKernel(),
        "imfp": AblationImfpKernel(),
    }
