"""GEMM kernels: LiquidGEMM, its ablation variants, and the baselines it is compared against."""

from .base import GemmKernel, KernelReport, PreparedWeights, as_device
from .library import Fp16Kernel, Fp8Kernel, QServeW4A8Kernel, W4A16Kernel, W8A8Kernel
from .liquidgemm import LiquidGemmKernel
from .ablation import (
    AblationBaselineKernel,
    AblationExcpKernel,
    AblationImfpKernel,
    AblationLqqKernel,
    ablation_kernels,
)
from .registry import available_kernels, default_comparison_set, figure12_kernels, get_kernel

__all__ = [
    "GemmKernel",
    "KernelReport",
    "PreparedWeights",
    "as_device",
    "Fp16Kernel",
    "Fp8Kernel",
    "QServeW4A8Kernel",
    "W4A16Kernel",
    "W8A8Kernel",
    "LiquidGemmKernel",
    "AblationBaselineKernel",
    "AblationExcpKernel",
    "AblationImfpKernel",
    "AblationLqqKernel",
    "ablation_kernels",
    "available_kernels",
    "default_comparison_set",
    "figure12_kernels",
    "get_kernel",
]
