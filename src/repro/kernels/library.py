"""Baseline GEMM kernels: TRT-FP16, TRT-W8A8, TRT-FP8, TRT-W4A16 and QServe W4A8.

Each baseline follows the same recipe: quantize the operands the way the corresponding system
does, execute the arithmetic numerically (integer accumulation where the real kernel uses
INT8 Tensor Cores), and describe its performance through :class:`KernelCostParams` so the
shared cost model / pipeline simulator can be applied uniformly.  Parameter choices are
documented inline with their provenance (measured from the ISA emulation, taken from the
paper, or standard kernel-engineering facts).
"""

from __future__ import annotations


import numpy as np

from ..costmodel.model import KernelCostParams, PipelineMode
from ..dequant.qserve import qserve_alpha
from ..dequant.w4a16 import w4a16_alpha
from ..gpu.specs import GpuSpec, Precision
from ..pipeline.simulator import PipelineKind
from ..quant.activation import quantize_activation_per_token
from ..quant.base import QuantGranularity, dequantize, quantize_tensor, group_reshape, group_unreshape
from ..quant.kvcache import fp8_e4m3_round
from ..quant.progressive import QServeConfig, qserve_dequantize_int8, qserve_quantize
from .base import GemmKernel, PreparedWeights

__all__ = [
    "Fp16Kernel",
    "W8A8Kernel",
    "Fp8Kernel",
    "W4A16Kernel",
    "QServeW4A8Kernel",
]

#: Sustained fraction of peak Tensor-Core throughput for Hopper warp-specialized (WGMMA
#: ping-pong) kernels vs. pre-Hopper-style mma.sync kernels.  These reflect the well-known
#: gap between CUTLASS 3.x Hopper kernels and Ampere-style kernels running on Hopper, and are
#: the only free parameters of the baseline models (see DESIGN.md).
_HOPPER_TENSOR_EFFICIENCY = 0.95
_AMPERE_STYLE_TENSOR_EFFICIENCY = 0.85
_DRAM_EFFICIENCY = 0.85


class Fp16Kernel(GemmKernel):
    """Unquantized FP16 GEMM (TRT-FP16): no dequantization, FP16 Tensor Cores."""

    name = "fp16"
    pipeline_kind = PipelineKind.SERIAL

    def cost_params(self, gpu: GpuSpec) -> KernelCostParams:
        return KernelCostParams(
            name=self.name,
            weight_precision=Precision.FP16,
            act_precision=Precision.FP16,
            mma_precision=Precision.FP16,
            alpha=0.0,
            pipeline=PipelineMode.FULL_OVERLAP,
            tile_m=256,
            tile_n=128,
            tile_k=64,
            tensor_efficiency=_HOPPER_TENSOR_EFFICIENCY,
            bandwidth_efficiency=_DRAM_EFFICIENCY,
        )

    def prepare_weights(self, w: np.ndarray) -> PreparedWeights:
        w = np.asarray(w, dtype=np.float64)
        return PreparedWeights(
            kernel=self.name,
            original=w,
            payload={"w_fp16": w.astype(np.float16)},
            deployed_bytes=w.size * 2,
        )

    def run(self, x: np.ndarray, weights: PreparedWeights) -> np.ndarray:
        w16 = weights.payload["w_fp16"].astype(np.float32)
        x16 = np.asarray(x, dtype=np.float16).astype(np.float32)
        return (x16 @ w16.T).astype(np.float64)


class W8A8Kernel(GemmKernel):
    """Symmetric W8A8 GEMM (TRT-W8A8): INT8 Tensor Cores, dequantization in the epilogue."""

    name = "w8a8"
    pipeline_kind = PipelineKind.SERIAL

    def cost_params(self, gpu: GpuSpec) -> KernelCostParams:
        return KernelCostParams(
            name=self.name,
            weight_precision=Precision.INT8,
            act_precision=Precision.INT8,
            mma_precision=Precision.INT8,
            alpha=0.0,
            pipeline=PipelineMode.FULL_OVERLAP,
            tile_m=256,
            tile_n=128,
            tile_k=64,
            tensor_efficiency=_HOPPER_TENSOR_EFFICIENCY,
            bandwidth_efficiency=_DRAM_EFFICIENCY,
        )

    def prepare_weights(self, w: np.ndarray) -> PreparedWeights:
        w = np.asarray(w, dtype=np.float64)
        codes, params = quantize_tensor(w, bits=8, symmetric=True,
                                        granularity=QuantGranularity.PER_CHANNEL)
        return PreparedWeights(
            kernel=self.name,
            original=w,
            payload={"q_i8": codes.astype(np.int8), "scale_ch": params.scale},
            deployed_bytes=codes.size + params.scale.size * 2,
        )

    def run(self, x: np.ndarray, weights: PreparedWeights) -> np.ndarray:
        qa = quantize_activation_per_token(x)
        acc = qa.q_i8.astype(np.int64) @ weights.payload["q_i8"].astype(np.int64).T
        scale_ch = weights.payload["scale_ch"].reshape(1, -1)
        return acc.astype(np.float64) * qa.scale_tok * scale_ch


class Fp8Kernel(GemmKernel):
    """FP8 (E4M3) GEMM (TRT-FP8): same byte traffic and Tensor-Core rate as INT8 on Hopper."""

    name = "fp8"
    pipeline_kind = PipelineKind.SERIAL

    def cost_params(self, gpu: GpuSpec) -> KernelCostParams:
        return KernelCostParams(
            name=self.name,
            weight_precision=Precision.FP8,
            act_precision=Precision.FP8,
            mma_precision=Precision.FP8,
            alpha=0.0,
            pipeline=PipelineMode.FULL_OVERLAP,
            tile_m=256,
            tile_n=128,
            tile_k=64,
            tensor_efficiency=_HOPPER_TENSOR_EFFICIENCY,
            bandwidth_efficiency=_DRAM_EFFICIENCY,
        )

    def prepare_weights(self, w: np.ndarray) -> PreparedWeights:
        w = np.asarray(w, dtype=np.float64)
        amax = np.abs(w).max(axis=1, keepdims=True)
        scale = np.maximum(amax / 448.0, np.finfo(np.float64).tiny)
        w_fp8 = fp8_e4m3_round(w / scale)
        return PreparedWeights(
            kernel=self.name,
            original=w,
            payload={"w_fp8": w_fp8, "scale_ch": scale},
            deployed_bytes=w.size + scale.size * 2,
        )

    def run(self, x: np.ndarray, weights: PreparedWeights) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        amax = np.abs(x).max(axis=1, keepdims=True)
        x_scale = np.maximum(amax / 448.0, np.finfo(np.float64).tiny)
        x_fp8 = fp8_e4m3_round(x / x_scale)
        acc = x_fp8 @ weights.payload["w_fp8"].T
        return acc * x_scale * weights.payload["scale_ch"].reshape(1, -1)


class W4A16Kernel(GemmKernel):
    """Weight-only 4-bit GEMM (TRT-W4A16): group-wise INT4 weights dequantized to FP16.

    Dequantization is cheap (magic-number conversion, alpha measured from the emulation) but
    the MMA runs on the FP16 Tensor-Core roof and dequant stays serial with the MMAs in the
    mainloop, which is why the kernel falls behind W4A8 once the problem turns compute-bound.
    """

    name = "w4a16"
    pipeline_kind = PipelineKind.SERIAL

    def __init__(self, group_size: int = 128):
        self.group_size = group_size

    def cost_params(self, gpu: GpuSpec) -> KernelCostParams:
        return KernelCostParams(
            name=self.name,
            weight_precision=Precision.INT4,
            act_precision=Precision.FP16,
            mma_precision=Precision.FP16,
            alpha=w4a16_alpha(),
            pipeline=PipelineMode.SERIAL_DEQUANT,
            tile_m=256,
            tile_n=128,
            tile_k=64,
            load_overhead_alpha=0.125,  # per-group FP16 scale/zero fetch amortized over 8 elems
            tensor_efficiency=_HOPPER_TENSOR_EFFICIENCY,
            bandwidth_efficiency=_DRAM_EFFICIENCY,
        )

    def prepare_weights(self, w: np.ndarray) -> PreparedWeights:
        w = np.asarray(w, dtype=np.float64)
        codes, params = quantize_tensor(
            w, bits=4, symmetric=False, signed=False,
            granularity=QuantGranularity.PER_GROUP, group_size=self.group_size,
        )
        return PreparedWeights(
            kernel=self.name,
            original=w,
            payload={"q_u4": codes.astype(np.uint8), "params": params},
            deployed_bytes=(codes.size + 1) // 2 + params.scale.size * 4,
        )

    def run(self, x: np.ndarray, weights: PreparedWeights) -> np.ndarray:
        params = weights.payload["params"]
        codes = weights.payload["q_u4"]
        grouped = group_reshape(codes.astype(np.int32), self.group_size)
        w_hat = group_unreshape(dequantize(grouped, params))
        x16 = np.asarray(x, dtype=np.float16).astype(np.float64)
        return x16 @ w_hat.T


class QServeW4A8Kernel(GemmKernel):
    """QServe's W4A8 kernel: progressive quantization with subtraction-after-multiplication.

    Cost-model parameters:

    * ``alpha`` — measured by replaying the actual dequantization instruction sequence
      (unpack + IMAD + lowered ``vsub4``) through the ISA emulation: ≈4.6 instructions per
      element (Section 3.2's "dozens of operations" per register).
    * ``load_overhead_alpha`` — the conventional-layout LDS.32 path plus per-group scale /
      zero-point handling and pointer arithmetic charged to CUDA cores (Section 5.2), about
      1.5 additional instructions per element.
    * serial dequant pipeline and Ampere-style efficiency: QServe's kernel predates Hopper
      warp specialization, so dequantization is not overlapped with the MMAs and the Tensor
      Cores sustain a lower fraction of peak.
    """

    name = "qserve-w4a8"
    pipeline_kind = PipelineKind.SERIAL

    def __init__(self, group_size: int = 128):
        self.config = QServeConfig(group_size=group_size)

    def cost_params(self, gpu: GpuSpec) -> KernelCostParams:
        return KernelCostParams(
            name=self.name,
            weight_precision=Precision.INT4,
            act_precision=Precision.INT8,
            mma_precision=Precision.INT8,
            alpha=qserve_alpha(),
            pipeline=PipelineMode.SERIAL_DEQUANT,
            tile_m=128,
            tile_n=128,
            tile_k=64,
            load_overhead_alpha=1.5,
            tensor_efficiency=_AMPERE_STYLE_TENSOR_EFFICIENCY,
            bandwidth_efficiency=_DRAM_EFFICIENCY,
        )

    def prepare_weights(self, w: np.ndarray) -> PreparedWeights:
        w = np.asarray(w, dtype=np.float64)
        qw = qserve_quantize(w, self.config)
        return PreparedWeights(
            kernel=self.name,
            original=w,
            payload={"qserve": qw},
            deployed_bytes=qw.memory_bytes(),
        )

    def run(self, x: np.ndarray, weights: PreparedWeights) -> np.ndarray:
        qw = weights.payload["qserve"]
        w_i8 = qserve_dequantize_int8(qw)
        qa = quantize_activation_per_token(x)
        acc = qa.q_i8.astype(np.int64) @ w_i8.astype(np.int64).T
        return acc.astype(np.float64) * qa.scale_tok * qw.scale_ch.reshape(1, -1)
