"""Kernel registry: name -> kernel instance, matching the labels used in the paper's figures."""

from __future__ import annotations

from typing import Dict, List

from .ablation import ablation_kernels
from .base import GemmKernel
from .library import Fp16Kernel, Fp8Kernel, QServeW4A8Kernel, W4A16Kernel, W8A8Kernel
from .liquidgemm import LiquidGemmKernel

__all__ = ["available_kernels", "get_kernel", "default_comparison_set", "figure12_kernels"]


def _build_registry() -> Dict[str, GemmKernel]:
    registry: Dict[str, GemmKernel] = {
        "fp16": Fp16Kernel(),
        "w8a8": W8A8Kernel(),
        "fp8": Fp8Kernel(),
        "w4a16": W4A16Kernel(),
        "qserve-w4a8": QServeW4A8Kernel(),
        "liquidgemm": LiquidGemmKernel(),
    }
    for key, kernel in ablation_kernels().items():
        registry[f"ablation-{key}"] = kernel
    return registry


def available_kernels() -> List[str]:
    """Names of all registered kernels."""
    return sorted(_build_registry())


def get_kernel(name: str) -> GemmKernel:
    """Instantiate a kernel by its registry name (case-insensitive)."""
    registry = _build_registry()
    key = name.lower()
    if key not in registry:
        raise KeyError(f"unknown kernel {name!r}; available: {sorted(registry)}")
    return registry[key]


def default_comparison_set() -> Dict[str, GemmKernel]:
    """The kernels compared throughout the paper's evaluation (Figures 5, 10-12, Table 1)."""
    return {
        name: get_kernel(name)
        for name in ("fp16", "w8a8", "fp8", "w4a16", "qserve-w4a8", "liquidgemm")
    }


def figure12_kernels() -> Dict[str, GemmKernel]:
    """The kernel set of Figure 12 (FP16, W8A8, FP8, W4A16, QServe, LiquidGEMM)."""
    return default_comparison_set()
