"""Unified kernel-backend layer (``kernels/quant -> backend -> engine -> ... -> sweep``).

One pluggable interface bundling everything the serving stack consumes from the
quantization/kernel core: GEMM cost parameters (system kernel and the reference kernel),
dequant-path overheads, deployed weight bytes-per-parameter, KV-cache bytes-per-element,
attention efficiency, and deployed-size accounting.  See :mod:`repro.backend.backend`.
"""

from .backend import (
    ACTIVATION_RESERVE_BYTES,
    DEFAULT_REFERENCE_KERNEL,
    KernelBackend,
    available_kernels,
    available_kv_formats,
    build_backend,
    kv_format_bytes,
    scheme_output_rmse,
    weight_quant_scheme,
)

__all__ = [
    "ACTIVATION_RESERVE_BYTES",
    "DEFAULT_REFERENCE_KERNEL",
    "KernelBackend",
    "available_kernels",
    "available_kv_formats",
    "build_backend",
    "kv_format_bytes",
    "scheme_output_rmse",
    "weight_quant_scheme",
]
