"""The unified kernel-backend layer: one pluggable interface from GEMM kernels to sweeps.

Everything the serving stack needs from the quantization/kernel core used to be scavenged
piecemeal — ``ServingEngine`` called :func:`repro.kernels.registry.get_kernel` directly,
``PagedKvCache`` resolved KV bytes-per-element from :mod:`repro.quant.kvcache`, and the FP16
recompute/LM-head reference kernel was hardcoded.  :class:`KernelBackend` bundles all of it,
constructed **once** from a :class:`~repro.serving.systems.SystemProfile` and a device:

* the system's GEMM kernel and its resolved :class:`~repro.costmodel.model.KernelCostParams`
  (including the dequant-path overheads ``alpha`` / ``load_overhead_alpha``);
* the *reference* kernel (FP16 unless the profile overrides it) used for the LM head and
  recompute/attention baselines;
* KV-cache format and bytes-per-element;
* deployed weight bytes-per-parameter and the deployed-size accounting for a model shard;
* attention efficiency;
* an accuracy proxy (mean output RMSE of the kernel's weight-quantization scheme from
  :mod:`repro.accuracy.study`) for accuracy-vs-SLO frontier reporting.

This module sits *below* :mod:`repro.serving` in the layer diagram
(``kernels/quant -> backend -> engine -> scheduler -> cluster -> sweep``): it imports the
kernel registry and quantization formats so that no module under ``serving/`` has to, and it
deliberately does not import :mod:`repro.serving` — any object carrying the profile
attributes (``kernel``, ``kv_format``, ``weight_bytes_per_param``, ``attention_efficiency``,
optionally ``reference_kernel``) builds a backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, Optional

from ..costmodel.model import GemmShape, KernelCostParams, gemm_cost
from ..gpu.device import Device
from ..kernels.base import GemmKernel, as_device
from ..kernels.registry import available_kernels, get_kernel
from ..quant.kvcache import KV_FORMATS, kv_bytes_per_element

__all__ = [
    "KernelBackend",
    "build_backend",
    "kv_format_bytes",
    "available_kv_formats",
    "available_kernels",
    "weight_quant_scheme",
    "scheme_output_rmse",
    "DEFAULT_REFERENCE_KERNEL",
]

#: The reference kernel used for LM-head / recompute baselines unless the profile overrides
#: it (``SystemProfile.reference_kernel``).  Embeddings and logits stay FP16 in every system
#: the paper compares, which is why this is the default rather than the system's own kernel.
DEFAULT_REFERENCE_KERNEL = "fp16"

#: Memory reserved on every GPU for activations, CUDA graphs, workspace and fragmentation
#: slack — part of the deployed-size accounting the backend owns.
ACTIVATION_RESERVE_BYTES = 2 * 2**30


def kv_format_bytes(format_name: str) -> float:
    """Bytes per stored K/V element of a named KV-cache format.

    The backend-layer alias of :func:`repro.quant.kvcache.kv_bytes_per_element`, so serving
    modules resolve formats through the backend interface instead of reaching into
    :mod:`repro.quant` directly.
    """
    return kv_bytes_per_element(format_name)


def available_kv_formats() -> list:
    """Names of all registered KV-cache storage formats."""
    return sorted(KV_FORMATS)


#: Which weight-quantization scheme of the accuracy study each GEMM kernel deploys.
#: ``None`` means the kernel stores weights at >= 8 bits, where the two-level 4-bit
#: reconstruction error the study measures does not apply (proxy error 0).
_KERNEL_QUANT_SCHEME: Dict[str, Optional[str]] = {
    "fp16": None,
    "fp8": None,
    "w8a8": None,
    "w4a16": "rtn-int4",
    "qserve-w4a8": "qserve",
    "liquidgemm": "lqq",
}


def weight_quant_scheme(kernel_name: str) -> Optional[str]:
    """Accuracy-study scheme deployed by ``kernel_name`` (``None`` for >= 8-bit weights).

    Ablation kernels are LiquidGEMM variants and map to the LQQ scheme; unknown kernels
    default to ``None`` (no 4-bit weight path to proxy).
    """
    key = kernel_name.lower()
    if key.startswith("ablation-"):
        return "lqq"
    return _KERNEL_QUANT_SCHEME.get(key)


@lru_cache(maxsize=None)
def scheme_output_rmse(scheme: Optional[str]) -> float:
    """Mean GEMM-output RMSE of one weight-quantization scheme (the accuracy proxy).

    Runs the seeded synthetic-weight study of :mod:`repro.accuracy.study` once per scheme
    and caches the scalar; ``None`` (>= 8-bit weights) is 0 by definition.  Deterministic
    across processes and machines (fixed seed, fixed shapes), so sweep frontier payloads
    are reproducible.
    """
    if scheme is None:
        return 0.0
    from ..accuracy.study import run_accuracy_study  # lazy: keeps backend import light

    return run_accuracy_study(seed=0).mean_output_rmse(scheme)


@dataclass(frozen=True)
class KernelBackend:
    """Everything the serving stack consumes from the kernel/quantization core, resolved.

    Instances are built by :func:`build_backend` (or ``KernelBackend.from_system``) and are
    immutable: cost parameters are resolved once per (profile, device), which is also what
    makes engine construction cheap enough for per-worker caches in :mod:`repro.sweep`.
    """

    system_name: str
    kernel_name: str
    reference_kernel_name: str
    kernel: GemmKernel
    reference_kernel: GemmKernel
    gemm_cost_params: KernelCostParams
    reference_cost_params: KernelCostParams
    weight_bytes_per_param: float
    kv_format: str
    kv_bytes_per_element: float
    attention_efficiency: float
    device: Device

    # ------------------------------------------------------------------ construction
    @classmethod
    def from_system(cls, system: Any, device: Any = "H800") -> "KernelBackend":
        """Build the backend for one system profile on one device.

        ``system`` is any object with ``kernel``, ``kv_format``, ``weight_bytes_per_param``
        and ``attention_efficiency`` attributes (a ``SystemProfile`` or a derived one);
        ``device`` is a :class:`~repro.gpu.device.Device`, a GPU spec, or a GPU name.
        Kernel and KV-format names are validated here, up front, against the registries —
        the one place the whole serving stack resolves them.
        """
        dev = as_device(device)
        kernel_name = system.kernel
        reference_name = getattr(system, "reference_kernel", DEFAULT_REFERENCE_KERNEL)
        try:
            kernel = get_kernel(kernel_name)
            reference = (
                kernel if reference_name == kernel_name else get_kernel(reference_name)
            )
        except KeyError as exc:
            raise KeyError(
                f"system {getattr(system, 'name', '?')!r}: {exc.args[0]}"
            ) from exc
        kv_bytes = kv_format_bytes(system.kv_format)  # raises with known formats listed
        return cls(
            system_name=getattr(system, "name", kernel_name),
            kernel_name=kernel_name,
            reference_kernel_name=reference_name,
            kernel=kernel,
            reference_kernel=reference,
            gemm_cost_params=kernel.cost_params(dev.spec),
            reference_cost_params=reference.cost_params(dev.spec),
            weight_bytes_per_param=system.weight_bytes_per_param,
            kv_format=system.kv_format,
            kv_bytes_per_element=kv_bytes,
            attention_efficiency=system.attention_efficiency,
            device=dev,
        )

    # ------------------------------------------------------------------ GEMM costs
    def gemm_time(self, shape: GemmShape) -> float:
        """Latency of one GEMM under the system's kernel (closed-form cost model)."""
        return gemm_cost(shape, self.device.spec, self.gemm_cost_params).total

    def reference_gemm_time(self, shape: GemmShape) -> float:
        """Latency of one GEMM under the reference kernel (LM head, FP16 baselines)."""
        return gemm_cost(shape, self.device.spec, self.reference_cost_params).total

    @property
    def dequant_alpha(self) -> float:
        """CUDA-core dequant instructions per weight element (the paper's ``alpha``)."""
        return self.gemm_cost_params.alpha

    @property
    def mma_precision(self) -> str:
        """Tensor-Core data type the system's GEMM kernel computes in."""
        return self.gemm_cost_params.mma_precision

    @property
    def weight_quant_scheme(self) -> Optional[str]:
        """Accuracy-study scheme of the deployed weight format (None for >= 8 bit)."""
        return weight_quant_scheme(self.kernel_name)

    def accuracy_rmse(self) -> float:
        """Mean GEMM-output RMSE proxy of the deployed weight format (cached, seeded)."""
        return scheme_output_rmse(self.weight_quant_scheme)

    # ------------------------------------------------------------------ deployed size
    def deployed_weight_bytes(self, model: Any, tp_degree: int = 1) -> int:
        """GPU bytes of one GPU's shard of ``model``'s weights under this backend.

        Linear layers are stored at the system's deployed bytes-per-parameter (4-bit codes
        plus scale metadata for the two-level formats); embeddings and the LM head stay
        FP16, vocab-parallel across the TP group.
        """
        linear = model.gemm_weight_params_per_gpu(tp_degree) * self.weight_bytes_per_param
        embeddings = model.embedding_params() * 2.0 / tp_degree
        return int(linear + embeddings)

    def kv_budget_bytes(self, model: Any, tp_degree: int = 1) -> int:
        """Per-GPU KV-cache budget after weights and the activation reserve."""
        budget = (
            self.device.spec.memory_capacity
            - self.deployed_weight_bytes(model, tp_degree)
            - ACTIVATION_RESERVE_BYTES
        )
        return int(max(0, budget))

    # ------------------------------------------------------------------ reporting
    def describe(self) -> Dict[str, Any]:
        """JSON-safe summary (embedded in sweep/bench payloads)."""
        return {
            "system": self.system_name,
            "kernel": self.kernel_name,
            "reference_kernel": self.reference_kernel_name,
            "kv_format": self.kv_format,
            "kv_bytes_per_element": self.kv_bytes_per_element,
            "weight_bytes_per_param": self.weight_bytes_per_param,
            "attention_efficiency": self.attention_efficiency,
            "dequant_alpha": self.dequant_alpha,
            "mma_precision": self.mma_precision,
            "weight_quant_scheme": self.weight_quant_scheme,
            "device": self.device.spec.name,
        }


def build_backend(system: Any, device: Any = "H800") -> KernelBackend:
    """Construct the :class:`KernelBackend` for ``system`` on ``device``.

    The single entry point the serving stack uses; see
    :meth:`KernelBackend.from_system` for the accepted argument shapes.
    """
    return KernelBackend.from_system(system, device)
