"""LiquidGEMM reproduction: hardware-efficient W4A8 GEMM for LLM serving, on a simulated GPU.

Reproduction of *LiquidGEMM: Hardware-Efficient W4A8 GEMM Kernel for High-Performance LLM
Serving* (SC 2025).  The package is organised as the paper's system plus every substrate it
depends on:

=====================  ========================================================================
subpackage             contents
=====================  ========================================================================
``repro.core``         public API: LiquidGEMM kernel, quantize/run/compare helpers
``repro.quant``        quantization algorithms (RTN, SmoothQuant, QServe progressive, LQQ, KV)
``repro.layout``       weight memory layouts (WGMMA fragments, dual-MMA packed layout)
``repro.dequant``      register-level dequantization with instruction accounting
``repro.isa``          bit-exact emulation of the PTX-level 32-bit instructions involved
``repro.gpu``          GPU hardware model (A100/H100/H800 specs, memory hierarchy, occupancy)
``repro.costmodel``    the paper's analytical cost model (Eq. 3-6) and roofline analysis
``repro.pipeline``     event-driven warp-group pipeline simulation (serial / ExCP / ImFP)
``repro.kernels``      LiquidGEMM + baseline kernels behind one interface
``repro.backend``      unified kernel-backend layer: one interface from kernels/quant to serving
``repro.serving``      end-to-end LLM serving model (models, attention, paged KV, systems)
``repro.workloads``    per-model GEMM shapes and batch sweeps
``repro.sweep``        process-parallel multi-configuration sweep engine over the simulator
``repro.accuracy``     quantization-accuracy study on synthetic weights
``repro.reporting``    text table/series formatting and payload schema validation
``repro.telemetry``    structured event tracing, counter sampling, Perfetto/summary export
=====================  ========================================================================
"""

from .backend import KernelBackend, build_backend
from .core import GemmResult, LiquidGemmKernel, compare_kernels, quantize_weights, w4a8_gemm
from .costmodel import GemmShape
from .gpu import A100, H100, H800, Device, GpuSpec, Precision, get_gpu
from .kernels import available_kernels, default_comparison_set, get_kernel
from .serving import ServingEngine, get_model, get_system, list_models, list_systems
from .telemetry import Tracer

__version__ = "0.1.0"

__all__ = [
    "GemmResult",
    "LiquidGemmKernel",
    "compare_kernels",
    "quantize_weights",
    "w4a8_gemm",
    "GemmShape",
    "A100",
    "H100",
    "H800",
    "Device",
    "GpuSpec",
    "Precision",
    "get_gpu",
    "available_kernels",
    "default_comparison_set",
    "get_kernel",
    "KernelBackend",
    "build_backend",
    "ServingEngine",
    "get_model",
    "get_system",
    "list_models",
    "list_systems",
    "Tracer",
    "__version__",
]
