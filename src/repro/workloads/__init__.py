"""Workload generators: per-model layer GEMM shapes and batch sweeps."""

from .shapes import (
    PAPER_BATCH_SIZES,
    LayerGemms,
    batch_sweep,
    decode_layer_gemms,
    moe_expert_batch,
)

__all__ = [
    "PAPER_BATCH_SIZES",
    "LayerGemms",
    "batch_sweep",
    "decode_layer_gemms",
    "moe_expert_batch",
]
