"""Workload generators: per-model layer GEMM shapes, batch sweeps, and request traces."""

from .shapes import (
    PAPER_BATCH_SIZES,
    LayerGemms,
    batch_sweep,
    decode_layer_gemms,
    moe_expert_batch,
)
from .traces import (
    SHAREGPT_OUTPUTS,
    SHAREGPT_PROMPTS,
    ArrivalProcess,
    LengthDistribution,
    agent_swarm_trace,
    generate_trace,
    merge_traces,
    multi_turn_chat_trace,
    rag_trace,
    sharegpt_trace,
    tenant_mix_trace,
)

__all__ = [
    "PAPER_BATCH_SIZES",
    "LayerGemms",
    "batch_sweep",
    "decode_layer_gemms",
    "moe_expert_batch",
    "ArrivalProcess",
    "LengthDistribution",
    "SHAREGPT_PROMPTS",
    "SHAREGPT_OUTPUTS",
    "generate_trace",
    "sharegpt_trace",
    "merge_traces",
    "multi_turn_chat_trace",
    "rag_trace",
    "agent_swarm_trace",
    "tenant_mix_trace",
]
