"""Workload generators: per-model layer GEMM shapes, batch sweeps, and request traces."""

from .shapes import (
    PAPER_BATCH_SIZES,
    LayerGemms,
    batch_sweep,
    decode_layer_gemms,
    moe_expert_batch,
)
from .traces import (
    SHAREGPT_OUTPUTS,
    SHAREGPT_PROMPTS,
    ArrivalProcess,
    LengthDistribution,
    generate_trace,
    sharegpt_trace,
)

__all__ = [
    "PAPER_BATCH_SIZES",
    "LayerGemms",
    "batch_sweep",
    "decode_layer_gemms",
    "moe_expert_batch",
    "ArrivalProcess",
    "LengthDistribution",
    "SHAREGPT_PROMPTS",
    "SHAREGPT_OUTPUTS",
    "generate_trace",
    "sharegpt_trace",
]
