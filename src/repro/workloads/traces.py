"""Request-trace generation: arrival processes and length distributions.

The request-level scheduler simulation (:mod:`repro.serving.scheduler`) is only as meaningful
as the traffic fed into it.  This module generates synthetic traces in the style used by the
serving-systems literature:

* **Arrival processes** — Poisson (memoryless, CV=1) and Gamma-interarrival (CV != 1 models
  burstier or smoother-than-Poisson traffic, the knob used by e.g. the DistServe/Sarathi
  evaluations);
* **Length distributions** — constant, uniform, and the log-normal long-tail shape that
  ShareGPT-derived workloads exhibit (most prompts short, a heavy tail of very long ones),
  with presets calibrated to the commonly reported ShareGPT statistics.

Everything is deterministic under a seed, so benchmarks and tests are reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from ..serving.scheduler import Request

__all__ = [
    "ArrivalProcess",
    "LengthDistribution",
    "SHAREGPT_PROMPTS",
    "SHAREGPT_OUTPUTS",
    "generate_trace",
    "sharegpt_trace",
    "merge_traces",
]


@dataclass(frozen=True)
class ArrivalProcess:
    """Request arrival-time generator at a mean rate of ``rate_rps`` requests/second.

    ``cv`` is the coefficient of variation of the inter-arrival times: 1.0 gives a Poisson
    process (exponential gaps); >1 burstier, <1 smoother.  Non-unit CVs use Gamma-distributed
    inter-arrivals with shape ``1/cv**2``.
    """

    rate_rps: float
    cv: float = 1.0

    def __post_init__(self):
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.cv <= 0:
            raise ValueError("cv must be positive")

    @staticmethod
    def poisson(rate_rps: float) -> "ArrivalProcess":
        return ArrivalProcess(rate_rps=rate_rps, cv=1.0)

    @staticmethod
    def gamma(rate_rps: float, cv: float) -> "ArrivalProcess":
        return ArrivalProcess(rate_rps=rate_rps, cv=cv)

    def sample(self, num_requests: int, rng: np.random.Generator) -> np.ndarray:
        """Cumulative arrival times (seconds, starting at the first gap) for ``num_requests``."""
        if num_requests < 0:
            raise ValueError("num_requests must be non-negative")
        mean_gap = 1.0 / self.rate_rps
        if math.isclose(self.cv, 1.0):
            gaps = rng.exponential(mean_gap, size=num_requests)
        else:
            shape = 1.0 / (self.cv ** 2)
            scale = mean_gap / shape
            gaps = rng.gamma(shape, scale, size=num_requests)
        return np.cumsum(gaps)


@dataclass(frozen=True)
class LengthDistribution:
    """Token-length generator: ``constant``, ``uniform`` or long-tail ``lognormal``.

    For ``lognormal``, ``median`` and ``sigma`` parameterize the underlying normal
    (``exp(mu)`` is the median; larger ``sigma`` fattens the tail).  Samples are clamped to
    ``[minimum, maximum]`` so a trace cannot contain degenerate or unbounded requests.
    """

    kind: str                       # "constant" | "uniform" | "lognormal"
    median: float = 256.0           # constant value / lognormal median
    sigma: float = 1.0              # lognormal shape
    low: int = 1                    # uniform lower bound (inclusive)
    high: int = 1024                # uniform upper bound (exclusive)
    minimum: int = 1
    maximum: int = 8192

    def __post_init__(self):
        if self.kind not in ("constant", "uniform", "lognormal"):
            raise ValueError(f"unknown length distribution kind {self.kind!r}")
        if self.minimum < 1 or self.maximum < self.minimum:
            raise ValueError("need 1 <= minimum <= maximum")
        # Only the active kind's parameters are validated: e.g. the uniform bounds keep
        # their defaults (and stay unchecked) when kind="lognormal".
        if self.kind == "uniform" and not 1 <= self.low < self.high:
            raise ValueError(
                f"uniform bounds must satisfy 1 <= low < high (high is exclusive), "
                f"got low={self.low}, high={self.high}"
            )
        if self.kind == "lognormal":
            if self.sigma <= 0:
                raise ValueError(f"lognormal sigma must be positive, got sigma={self.sigma}")
            if self.median <= 0:
                raise ValueError(f"lognormal median must be positive, got median={self.median}")

    @staticmethod
    def constant(value: int) -> "LengthDistribution":
        return LengthDistribution(kind="constant", median=float(value))

    @staticmethod
    def uniform(low: int, high: int) -> "LengthDistribution":
        return LengthDistribution(kind="uniform", low=low, high=high)

    @staticmethod
    def lognormal(median: float, sigma: float, maximum: int = 8192) -> "LengthDistribution":
        return LengthDistribution(kind="lognormal", median=median, sigma=sigma, maximum=maximum)

    def sample(self, num_requests: int, rng: np.random.Generator) -> np.ndarray:
        if num_requests < 0:
            raise ValueError("num_requests must be non-negative")
        if self.kind == "constant":
            lengths = np.full(num_requests, self.median)
        elif self.kind == "uniform":
            lengths = rng.integers(self.low, self.high, size=num_requests).astype(float)
        else:
            lengths = rng.lognormal(mean=math.log(self.median), sigma=self.sigma,
                                    size=num_requests)
        return np.clip(np.rint(lengths), self.minimum, self.maximum).astype(int)


#: ShareGPT-like long-tail presets: short median prompts/answers with a heavy upper tail
#: (the shape reported for ShareGPT-derived serving benchmarks).
SHAREGPT_PROMPTS = LengthDistribution.lognormal(median=180.0, sigma=1.1, maximum=4096)
SHAREGPT_OUTPUTS = LengthDistribution.lognormal(median=160.0, sigma=0.9, maximum=2048)


def generate_trace(
    num_requests: int,
    arrivals: ArrivalProcess,
    prompt_lengths: LengthDistribution,
    output_lengths: LengthDistribution,
    seed: int = 0,
    start_id: int = 0,
    priorities: Optional[Sequence[int]] = None,
    num_priority_levels: int = 1,
) -> List["Request"]:
    """Generate a reproducible request trace for the continuous-batching scheduler.

    ``priorities`` assigns each request an explicit scheduling priority (higher = more
    important; consumed by the 'priority' scheduling policy).  Without it,
    ``num_priority_levels > 1`` samples levels uniformly from ``0..num_priority_levels-1``
    — drawn *after* the length samples, so traces keep their historical lengths and
    arrival times under the same seed.
    """
    # Imported here: workloads must stay importable from repro.serving.engine (shapes).
    from ..serving.scheduler import Request

    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if num_priority_levels < 1:
        raise ValueError("num_priority_levels must be >= 1")
    if priorities is not None and len(priorities) != num_requests:
        raise ValueError(
            f"priorities has {len(priorities)} entries for {num_requests} requests"
        )
    rng = np.random.default_rng(seed)
    arrival_times = arrivals.sample(num_requests, rng)
    prompts = prompt_lengths.sample(num_requests, rng)
    outputs = output_lengths.sample(num_requests, rng)
    if priorities is None:
        if num_priority_levels > 1:
            priorities = rng.integers(0, num_priority_levels, size=num_requests)
        else:
            priorities = np.zeros(num_requests, dtype=int)
    return [
        Request(
            request_id=start_id + i,
            prompt_tokens=int(prompts[i]),
            output_tokens=int(outputs[i]),
            arrival_time_s=float(arrival_times[i]),
            priority=int(priorities[i]),
        )
        for i in range(num_requests)
    ]


def merge_traces(*traces: Sequence["Request"], reassign_ids: bool = True) -> List["Request"]:
    """Fan multiple request streams into one arrival-ordered trace (cluster workloads).

    The cluster router consumes a single time-ordered stream, but realistic multi-tenant
    traffic is generated per tenant (different rates, length mixes, priorities).  This
    merges any number of traces by arrival time.  With ``reassign_ids`` (default) every
    request is copied and renumbered ``0..n-1`` so the merged trace satisfies the cluster's
    unique-id requirement even when the inputs were generated independently; with
    ``reassign_ids=False`` the caller guarantees uniqueness (e.g. via ``start_id``) and the
    original objects are returned.
    """
    import copy

    merged = sorted(
        (r for trace in traces for r in trace),
        key=lambda r: (r.arrival_time_s, r.request_id),
    )
    if not reassign_ids:
        ids = [r.request_id for r in merged]
        if len(set(ids)) != len(ids):
            raise ValueError(
                "merged traces contain duplicate request ids; pass reassign_ids=True "
                "or generate the inputs with disjoint start_id ranges"
            )
        return merged
    renumbered = []
    for i, request in enumerate(merged):
        clone = copy.copy(request)
        clone.request_id = i
        renumbered.append(clone)
    return renumbered


def sharegpt_trace(num_requests: int, rate_rps: float, seed: int = 0,
                   cv: float = 1.0, num_priority_levels: int = 1) -> List["Request"]:
    """A ShareGPT-like long-tail trace with Poisson (or Gamma, ``cv != 1``) arrivals."""
    return generate_trace(
        num_requests,
        ArrivalProcess(rate_rps=rate_rps, cv=cv),
        SHAREGPT_PROMPTS,
        SHAREGPT_OUTPUTS,
        seed=seed,
        num_priority_levels=num_priority_levels,
    )
