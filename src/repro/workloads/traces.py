"""Request-trace generation: arrival processes and length distributions.

The request-level scheduler simulation (:mod:`repro.serving.scheduler`) is only as meaningful
as the traffic fed into it.  This module generates synthetic traces in the style used by the
serving-systems literature:

* **Arrival processes** — Poisson (memoryless, CV=1) and Gamma-interarrival (CV != 1 models
  burstier or smoother-than-Poisson traffic, the knob used by e.g. the DistServe/Sarathi
  evaluations);
* **Length distributions** — constant, uniform, and the log-normal long-tail shape that
  ShareGPT-derived workloads exhibit (most prompts short, a heavy tail of very long ones),
  with presets calibrated to the commonly reported ShareGPT statistics.

Everything is deterministic under a seed, so benchmarks and tests are reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from ..serving.scheduler import Request

__all__ = [
    "ArrivalProcess",
    "LengthDistribution",
    "SHAREGPT_PROMPTS",
    "SHAREGPT_OUTPUTS",
    "generate_trace",
    "sharegpt_trace",
    "merge_traces",
    "multi_turn_chat_trace",
    "rag_trace",
    "agent_swarm_trace",
    "tenant_mix_trace",
]


@dataclass(frozen=True)
class ArrivalProcess:
    """Request arrival-time generator at a mean rate of ``rate_rps`` requests/second.

    ``cv`` is the coefficient of variation of the inter-arrival times: 1.0 gives a Poisson
    process (exponential gaps); >1 burstier, <1 smoother.  Non-unit CVs use Gamma-distributed
    inter-arrivals with shape ``1/cv**2``.
    """

    rate_rps: float
    cv: float = 1.0

    def __post_init__(self):
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.cv <= 0:
            raise ValueError("cv must be positive")

    @staticmethod
    def poisson(rate_rps: float) -> "ArrivalProcess":
        return ArrivalProcess(rate_rps=rate_rps, cv=1.0)

    @staticmethod
    def gamma(rate_rps: float, cv: float) -> "ArrivalProcess":
        return ArrivalProcess(rate_rps=rate_rps, cv=cv)

    def sample(self, num_requests: int, rng: np.random.Generator) -> np.ndarray:
        """Cumulative arrival times (seconds, starting at the first gap) for ``num_requests``."""
        if num_requests < 0:
            raise ValueError("num_requests must be non-negative")
        mean_gap = 1.0 / self.rate_rps
        if math.isclose(self.cv, 1.0):
            gaps = rng.exponential(mean_gap, size=num_requests)
        else:
            shape = 1.0 / (self.cv ** 2)
            scale = mean_gap / shape
            gaps = rng.gamma(shape, scale, size=num_requests)
        return np.cumsum(gaps)


@dataclass(frozen=True)
class LengthDistribution:
    """Token-length generator: ``constant``, ``uniform`` or long-tail ``lognormal``.

    For ``lognormal``, ``median`` and ``sigma`` parameterize the underlying normal
    (``exp(mu)`` is the median; larger ``sigma`` fattens the tail).  Samples are clamped to
    ``[minimum, maximum]`` so a trace cannot contain degenerate or unbounded requests.
    """

    kind: str                       # "constant" | "uniform" | "lognormal"
    median: float = 256.0           # constant value / lognormal median
    sigma: float = 1.0              # lognormal shape
    low: int = 1                    # uniform lower bound (inclusive)
    high: int = 1024                # uniform upper bound (exclusive)
    minimum: int = 1
    maximum: int = 8192

    def __post_init__(self):
        if self.kind not in ("constant", "uniform", "lognormal"):
            raise ValueError(f"unknown length distribution kind {self.kind!r}")
        if self.minimum < 1 or self.maximum < self.minimum:
            raise ValueError("need 1 <= minimum <= maximum")
        # Only the active kind's parameters are validated: e.g. the uniform bounds keep
        # their defaults (and stay unchecked) when kind="lognormal".
        if self.kind == "uniform" and not 1 <= self.low < self.high:
            raise ValueError(
                f"uniform bounds must satisfy 1 <= low < high (high is exclusive), "
                f"got low={self.low}, high={self.high}"
            )
        if self.kind == "lognormal":
            if self.sigma <= 0:
                raise ValueError(f"lognormal sigma must be positive, got sigma={self.sigma}")
            if self.median <= 0:
                raise ValueError(f"lognormal median must be positive, got median={self.median}")

    @staticmethod
    def constant(value: int) -> "LengthDistribution":
        return LengthDistribution(kind="constant", median=float(value))

    @staticmethod
    def uniform(low: int, high: int) -> "LengthDistribution":
        return LengthDistribution(kind="uniform", low=low, high=high)

    @staticmethod
    def lognormal(median: float, sigma: float, maximum: int = 8192) -> "LengthDistribution":
        return LengthDistribution(kind="lognormal", median=median, sigma=sigma, maximum=maximum)

    def sample(self, num_requests: int, rng: np.random.Generator) -> np.ndarray:
        if num_requests < 0:
            raise ValueError("num_requests must be non-negative")
        if self.kind == "constant":
            lengths = np.full(num_requests, self.median)
        elif self.kind == "uniform":
            lengths = rng.integers(self.low, self.high, size=num_requests).astype(float)
        else:
            lengths = rng.lognormal(mean=math.log(self.median), sigma=self.sigma,
                                    size=num_requests)
        return np.clip(np.rint(lengths), self.minimum, self.maximum).astype(int)


#: ShareGPT-like long-tail presets: short median prompts/answers with a heavy upper tail
#: (the shape reported for ShareGPT-derived serving benchmarks).
SHAREGPT_PROMPTS = LengthDistribution.lognormal(median=180.0, sigma=1.1, maximum=4096)
SHAREGPT_OUTPUTS = LengthDistribution.lognormal(median=160.0, sigma=0.9, maximum=2048)


def generate_trace(
    num_requests: int,
    arrivals: ArrivalProcess,
    prompt_lengths: LengthDistribution,
    output_lengths: LengthDistribution,
    seed: int = 0,
    start_id: int = 0,
    priorities: Optional[Sequence[int]] = None,
    num_priority_levels: int = 1,
    shared_prefix_tokens: int = 0,
    prefix_group: Optional[int] = None,
) -> List["Request"]:
    """Generate a reproducible request trace for the continuous-batching scheduler.

    ``priorities`` assigns each request an explicit scheduling priority (higher = more
    important; consumed by the 'priority' scheduling policy).  Without it,
    ``num_priority_levels > 1`` samples levels uniformly from ``0..num_priority_levels-1``
    — drawn *after* the length samples, so traces keep their historical lengths and
    arrival times under the same seed.

    ``shared_prefix_tokens > 0`` prepends a common system prompt of that many tokens to
    every request (prompts shorter than ``shared_prefix_tokens + 1`` are stretched to
    fit), tagged as a shareable prefix segment so a prefix-caching scheduler serves it
    from cache after the first prefill.  ``prefix_group`` namespaces the sharing (see
    :class:`~repro.serving.scheduler.Request.prefix_group`); both default to off, leaving
    historical traces byte-identical.
    """
    # Imported here: workloads must stay importable from repro.serving.engine (shapes).
    from ..serving.scheduler import Request

    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if num_priority_levels < 1:
        raise ValueError("num_priority_levels must be >= 1")
    if priorities is not None and len(priorities) != num_requests:
        raise ValueError(
            f"priorities has {len(priorities)} entries for {num_requests} requests"
        )
    if shared_prefix_tokens < 0:
        raise ValueError("shared_prefix_tokens must be non-negative")
    rng = np.random.default_rng(seed)
    arrival_times = arrivals.sample(num_requests, rng)
    prompts = prompt_lengths.sample(num_requests, rng)
    outputs = output_lengths.sample(num_requests, rng)
    if priorities is None:
        if num_priority_levels > 1:
            priorities = rng.integers(0, num_priority_levels, size=num_requests)
        else:
            priorities = np.zeros(num_requests, dtype=int)
    segments: Tuple[Tuple[int, int], ...] = ()
    if shared_prefix_tokens > 0:
        segments = ((0, shared_prefix_tokens),)
    return [
        Request(
            request_id=start_id + i,
            prompt_tokens=max(int(prompts[i]), shared_prefix_tokens + 1)
            if shared_prefix_tokens else int(prompts[i]),
            output_tokens=int(outputs[i]),
            arrival_time_s=float(arrival_times[i]),
            priority=int(priorities[i]),
            prefix_group=prefix_group,
            prefix_segments=segments,
        )
        for i in range(num_requests)
    ]


def merge_traces(*traces: Sequence["Request"], reassign_ids: bool = True) -> List["Request"]:
    """Fan multiple request streams into one arrival-ordered trace (cluster workloads).

    The cluster router consumes a single time-ordered stream, but realistic multi-tenant
    traffic is generated per tenant (different rates, length mixes, priorities).  This
    merges any number of traces by arrival time.  With ``reassign_ids`` (default) every
    request is copied and renumbered ``0..n-1`` so the merged trace satisfies the cluster's
    unique-id requirement even when the inputs were generated independently; with
    ``reassign_ids=False`` the caller guarantees uniqueness (e.g. via ``start_id``) and the
    original objects are returned.

    Renumbering preserves every trace-owned field — in particular ``prefix_group`` and
    ``prefix_segments`` ride along on the copy, so merged multi-tenant traces keep their
    shareable prefixes (and their per-tenant isolation) intact: prefix identity is carried
    by the stable group id, never by the request id.
    """
    import copy

    merged = sorted(
        (r for trace in traces for r in trace),
        key=lambda r: (r.arrival_time_s, r.request_id),
    )
    if not reassign_ids:
        ids = [r.request_id for r in merged]
        if len(set(ids)) != len(ids):
            raise ValueError(
                "merged traces contain duplicate request ids; pass reassign_ids=True "
                "or generate the inputs with disjoint start_id ranges"
            )
        return merged
    renumbered = []
    for i, request in enumerate(merged):
        clone = copy.copy(request)
        clone.request_id = i
        renumbered.append(clone)
    return renumbered


def sharegpt_trace(num_requests: int, rate_rps: float, seed: int = 0,
                   cv: float = 1.0, num_priority_levels: int = 1) -> List["Request"]:
    """A ShareGPT-like long-tail trace with Poisson (or Gamma, ``cv != 1``) arrivals."""
    return generate_trace(
        num_requests,
        ArrivalProcess(rate_rps=rate_rps, cv=cv),
        SHAREGPT_PROMPTS,
        SHAREGPT_OUTPUTS,
        seed=seed,
        num_priority_levels=num_priority_levels,
    )


# ---------------------------------------------------------------------- shared prefixes
#: Default message/answer shapes of the shared-prefix generators: chat-style short
#: messages with moderate tails (the shareable context, not the tails, dominates tokens).
CHAT_MESSAGES = LengthDistribution.lognormal(median=60.0, sigma=0.8, maximum=512)
CHAT_REPLIES = LengthDistribution.lognormal(median=120.0, sigma=0.8, maximum=1024)


def multi_turn_chat_trace(
    num_conversations: int,
    turns_per_conversation: int,
    rate_rps: float,
    *,
    system_prompt_tokens: int = 512,
    message_lengths: LengthDistribution = CHAT_MESSAGES,
    reply_lengths: LengthDistribution = CHAT_REPLIES,
    think_time_s: float = 5.0,
    cv: float = 1.0,
    seed: int = 0,
    start_id: int = 0,
    priority: int = 0,
    prefix_group: Optional[int] = 0,
) -> List["Request"]:
    """Multi-turn chat sharing one system prompt across every conversation.

    Turn ``t`` of a conversation re-sends the whole history — system prompt, every prior
    (message, reply) pair, and the new message — so its prompt is exactly the previous
    turn's prompt plus that turn's reply and the new message.  The segment stream encodes
    this: turn ``t+1``'s segments *extend* turn ``t``'s, so a prefix cache that saw turn
    ``t`` complete serves everything but the newest tokens, and the shared system-prompt
    segment additionally hits across conversations (the radix tree branches below it).
    Turns are spaced by exponential think times after the conversation's Poisson start.
    """
    if num_conversations < 1 or turns_per_conversation < 1:
        raise ValueError("need >= 1 conversation with >= 1 turn")
    if system_prompt_tokens < 1:
        raise ValueError("system_prompt_tokens must be >= 1")
    rng = np.random.default_rng(seed)
    starts = ArrivalProcess(rate_rps=rate_rps, cv=cv).sample(num_conversations, rng)
    shape = (num_conversations, turns_per_conversation)
    messages = message_lengths.sample(num_conversations * turns_per_conversation, rng)
    messages = messages.reshape(shape)
    replies = reply_lengths.sample(num_conversations * turns_per_conversation, rng)
    replies = replies.reshape(shape)
    gaps = rng.exponential(max(think_time_s, 1e-9), size=shape)

    requests: List["Request"] = []
    next_id = start_id
    # Segment-id layout: 0 is the shared system prompt; conversation c's turn t owns ids
    # 1 + 2*(c*turns + t) (message) and 2 + 2*(c*turns + t) (reply).
    for c in range(num_conversations):
        arrival = float(starts[c])
        history: List[Tuple[int, int]] = [(0, system_prompt_tokens)]
        for t in range(turns_per_conversation):
            message_seg = 1 + 2 * (c * turns_per_conversation + t)
            history.append((message_seg, int(messages[c, t])))
            prompt = sum(tokens for _, tokens in history)
            requests.append(_make_request(
                request_id=next_id,
                prompt_tokens=prompt,
                output_tokens=int(replies[c, t]),
                arrival_time_s=arrival,
                priority=priority,
                prefix_group=prefix_group,
                prefix_segments=tuple(history),
            ))
            next_id += 1
            history.append((message_seg + 1, int(replies[c, t])))
            arrival += float(gaps[c, t])
    requests.sort(key=lambda r: (r.arrival_time_s, r.request_id))
    return requests


def rag_trace(
    num_requests: int,
    rate_rps: float,
    *,
    template_tokens: int = 1024,
    num_templates: int = 4,
    question_lengths: LengthDistribution = CHAT_MESSAGES,
    output_lengths: LengthDistribution = CHAT_REPLIES,
    cv: float = 1.0,
    seed: int = 0,
    start_id: int = 0,
    priority: int = 0,
    prefix_group: Optional[int] = 0,
) -> List["Request"]:
    """Retrieval-augmented generation over a small pool of shared prompt templates.

    Every request prepends one of ``num_templates`` fixed instruction+context templates
    (chosen uniformly) to its private question, so the radix tree holds one chain per
    template and steady-state admissions hit ``template_tokens`` of cached prefix.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if template_tokens < 1 or num_templates < 1:
        raise ValueError("need template_tokens >= 1 and num_templates >= 1")
    rng = np.random.default_rng(seed)
    arrival_times = ArrivalProcess(rate_rps=rate_rps, cv=cv).sample(num_requests, rng)
    questions = question_lengths.sample(num_requests, rng)
    outputs = output_lengths.sample(num_requests, rng)
    templates = rng.integers(0, num_templates, size=num_requests)
    return [
        _make_request(
            request_id=start_id + i,
            prompt_tokens=template_tokens + int(questions[i]),
            output_tokens=int(outputs[i]),
            arrival_time_s=float(arrival_times[i]),
            priority=priority,
            prefix_group=prefix_group,
            prefix_segments=((int(templates[i]), template_tokens),),
        )
        for i in range(num_requests)
    ]


def agent_swarm_trace(
    num_swarms: int,
    agents_per_swarm: int,
    steps_per_swarm: int,
    rate_rps: float,
    *,
    base_context_tokens: int = 512,
    step_tokens: int = 256,
    scratch_lengths: LengthDistribution = CHAT_MESSAGES,
    output_lengths: LengthDistribution = CHAT_REPLIES,
    step_interval_s: float = 2.0,
    cv: float = 1.0,
    seed: int = 0,
    start_id: int = 0,
    priority: int = 0,
    prefix_group: Optional[int] = 0,
) -> List["Request"]:
    """Agent swarms re-prefixing a growing shared tool transcript every step.

    Each swarm keeps one transcript (task context plus ``step_tokens`` of tool output
    appended per step); at every step *all* of its agents issue a request whose prompt is
    the whole transcript so far plus a private scratchpad.  The transcript segments are
    shareable, so without a prefix cache the swarm re-prefills the same transcript
    ``agents_per_swarm`` times per step — the workload production prefix caches were
    built for.
    """
    if num_swarms < 1 or agents_per_swarm < 1 or steps_per_swarm < 1:
        raise ValueError("need >= 1 swarm, agent and step")
    if base_context_tokens < 1 or step_tokens < 1:
        raise ValueError("base_context_tokens and step_tokens must be >= 1")
    rng = np.random.default_rng(seed)
    starts = ArrivalProcess(rate_rps=rate_rps, cv=cv).sample(num_swarms, rng)
    shape = (num_swarms, steps_per_swarm, agents_per_swarm)
    scratch = scratch_lengths.sample(num_swarms * steps_per_swarm * agents_per_swarm, rng)
    scratch = scratch.reshape(shape)
    outputs = output_lengths.sample(
        num_swarms * steps_per_swarm * agents_per_swarm, rng
    ).reshape(shape)
    jitter = rng.exponential(0.1, size=shape)

    requests: List["Request"] = []
    next_id = start_id
    # Segment-id layout: swarm w's transcript piece for step s is w*(steps+1) + s
    # (s = 0 is the base context).
    for w in range(num_swarms):
        transcript: List[Tuple[int, int]] = [
            (w * (steps_per_swarm + 1), base_context_tokens)
        ]
        for s in range(steps_per_swarm):
            if s > 0:
                transcript.append((w * (steps_per_swarm + 1) + s, step_tokens))
            shared = sum(tokens for _, tokens in transcript)
            step_start = float(starts[w]) + s * step_interval_s
            for a in range(agents_per_swarm):
                requests.append(_make_request(
                    request_id=next_id,
                    prompt_tokens=shared + int(scratch[w, s, a]),
                    output_tokens=int(outputs[w, s, a]),
                    arrival_time_s=step_start + float(jitter[w, s, a]),
                    priority=priority,
                    prefix_group=prefix_group,
                    prefix_segments=tuple(transcript),
                ))
                next_id += 1
    requests.sort(key=lambda r: (r.arrival_time_s, r.request_id))
    return requests


def tenant_mix_trace(
    requests_per_tenant: int,
    rate_rps: float,
    *,
    num_tenants: int = 3,
    kinds: Sequence[str] = ("chat", "rag", "agents"),
    priorities: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> List["Request"]:
    """A multi-tenant mix: per-tenant workload kind, priority and isolated prefix group.

    Tenant ``t`` runs ``kinds[t % len(kinds)]`` traffic at ``rate_rps`` with priority
    ``priorities[t]`` (default: the tenant index, so later tenants outrank earlier ones
    under the 'priority' policy) and ``prefix_group = t`` — tenants never share cached
    prefixes with each other, only within themselves.  The streams are merged by arrival
    time with ids renumbered; :func:`merge_traces` preserves the group tags.
    """
    if requests_per_tenant < 1 or num_tenants < 1:
        raise ValueError("need >= 1 request per tenant and >= 1 tenant")
    if priorities is not None and len(priorities) != num_tenants:
        raise ValueError(f"priorities has {len(priorities)} entries for {num_tenants} tenants")
    traces: List[List["Request"]] = []
    for t in range(num_tenants):
        kind = kinds[t % len(kinds)]
        priority = int(priorities[t]) if priorities is not None else t
        common = dict(seed=seed + t, priority=priority, prefix_group=t)
        if kind == "chat":
            turns = 4
            conversations = max(1, requests_per_tenant // turns)
            traces.append(multi_turn_chat_trace(
                conversations, turns, rate_rps / turns, **common
            ))
        elif kind == "rag":
            traces.append(rag_trace(requests_per_tenant, rate_rps, **common))
        elif kind == "agents":
            agents, steps = 4, 3
            swarms = max(1, requests_per_tenant // (agents * steps))
            traces.append(agent_swarm_trace(
                swarms, agents, steps, rate_rps / (agents * steps), **common
            ))
        else:
            raise ValueError(f"unknown tenant kind {kind!r}; known: chat, rag, agents")
    return merge_traces(*traces)


def _make_request(**kwargs) -> "Request":
    from ..serving.scheduler import Request

    return Request(**kwargs)
