"""GEMM workload generation: the layer shapes of each model and batch-size sweeps.

The paper's kernel benchmarks (Figures 5 and 12) run "all GEMMs of a single-layer
transformer": the fused QKV projection, the output projection and the two FFN GEMMs
(gate+up fused, and down).  For MoE models each expert contributes its own FFN GEMMs with the
tokens routed to it.  This module turns a :class:`~repro.serving.models.ModelConfig` and a
batch size into that list of :class:`~repro.costmodel.model.GemmShape` objects, plus helpers
for the batch sweeps used across the evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..costmodel.model import GemmShape
from ..serving.models import ModelConfig

__all__ = ["LayerGemms", "decode_layer_gemms", "moe_expert_batch", "batch_sweep", "PAPER_BATCH_SIZES"]

#: The batch sizes swept in Figures 5, 12 and 13 (2^2 .. 2^8).
PAPER_BATCH_SIZES = tuple(2**i for i in range(2, 9))


@dataclass(frozen=True)
class LayerGemms:
    """The GEMM workload of one transformer layer at a given decode batch size."""

    qkv: GemmShape
    out_proj: GemmShape
    gate_up: List[GemmShape]
    down: List[GemmShape]

    def all(self) -> List[GemmShape]:
        return [self.qkv, self.out_proj] + list(self.gate_up) + list(self.down)

    def attention_gemms(self) -> List[GemmShape]:
        return [self.qkv, self.out_proj]

    def ffn_gemms(self) -> List[GemmShape]:
        return list(self.gate_up) + list(self.down)

    @property
    def total_weight_elements(self) -> int:
        return sum(s.weight_elements for s in self.all())

    @property
    def total_flops(self) -> int:
        return sum(s.flops for s in self.all())


def moe_expert_batch(batch_size: int, model: ModelConfig) -> int:
    """Expected number of tokens routed to one expert in a decode step.

    With top-``k`` routing over ``E`` experts, each expert receives on average
    ``batch * k / E`` tokens; the grouped GEMM still launches one GEMM per expert, so the
    per-expert M is at least 1 whenever the batch is non-empty.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if not model.is_moe:
        return batch_size
    per_expert = batch_size * model.experts_per_token / model.num_experts
    return max(1, math.ceil(per_expert))


def decode_layer_gemms(model: ModelConfig, batch_size: int, tp_degree: int = 1) -> LayerGemms:
    """GEMM shapes of one decode step of one layer at ``batch_size`` concurrent tokens.

    With ``tp_degree > 1`` the shapes are *one GPU's shard* under Megatron-style tensor
    parallelism: QKV and gate/up are column-parallel (output width divided), the output and
    down projections are row-parallel (reduction width divided, followed by an all-reduce
    that the serving engine charges separately).
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    model.validate_tp(tp_degree)
    qkv_out = (model.heads_per_gpu(tp_degree) + 2 * model.kv_heads_per_gpu(tp_degree)) * model.head_dim
    ffn_inter = model.intermediate_size // tp_degree
    qkv = GemmShape(batch_size, qkv_out, model.hidden_size)
    out_proj = GemmShape(batch_size, model.hidden_size, model.hidden_size // tp_degree)

    if model.is_moe:
        expert_m = moe_expert_batch(batch_size, model)
        gate_up = [
            GemmShape(expert_m, 2 * ffn_inter, model.hidden_size)
            for _ in range(model.num_experts)
        ]
        down = [
            GemmShape(expert_m, model.hidden_size, ffn_inter)
            for _ in range(model.num_experts)
        ]
    else:
        gate_up = [GemmShape(batch_size, 2 * ffn_inter, model.hidden_size)]
        down = [GemmShape(batch_size, model.hidden_size, ffn_inter)]
    return LayerGemms(qkv=qkv, out_proj=out_proj, gate_up=gate_up, down=down)


def batch_sweep(
    model: ModelConfig, batch_sizes: Sequence[int] = PAPER_BATCH_SIZES
) -> Dict[int, LayerGemms]:
    """Layer GEMM workloads for each batch size of a sweep."""
    return {b: decode_layer_gemms(model, b) for b in batch_sizes}
