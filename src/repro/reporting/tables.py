"""Plain-text table / series formatting shared by the benchmark harnesses and examples.

Every benchmark regenerates a paper table or figure as text: a fixed-width table for tables
(Table 1) and "series" listings (batch size -> value per system) for the latency/throughput
figures.  Keeping the formatting in one place keeps the benchmark files focused on what they
measure.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Union

__all__ = ["format_table", "format_series", "format_speedups", "format_metrics"]

Number = Union[int, float]


def _fmt(value, float_fmt: str = "{:.2f}") -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return float_fmt.format(value)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render rows as a fixed-width text table."""
    rendered_rows = [[_fmt(cell, float_fmt) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[Number],
    series: Mapping[str, Sequence[Number]],
    title: Optional[str] = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render a figure-style dataset: one column of x values, one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        row = [x] + [series[name][i] for name in series]
        rows.append(row)
    return format_table(headers, rows, title=title, float_fmt=float_fmt)


def format_metrics(
    metrics: Mapping[str, object],
    title: Optional[str] = None,
    float_fmt: str = "{:.4g}",
) -> str:
    """Render a name -> value mapping as an aligned key/value block.

    Used by the serving simulation example and benchmark harness to report scheduler
    statistics and SLO summaries (p50/p99 TTFT, TPOT, goodput) without hand-rolled padding.
    """
    if not metrics:
        return title or ""
    rendered = {name: _fmt(value, float_fmt) for name, value in metrics.items()}
    width = max(len(name) for name in rendered)
    lines: List[str] = []
    if title:
        lines.append(title)
    for name, value in rendered.items():
        lines.append(f"  {name.ljust(width)} : {value}")
    return "\n".join(lines)


def format_speedups(
    baseline: str,
    latencies: Mapping[str, float],
    title: Optional[str] = None,
) -> str:
    """Render per-system speedups relative to ``baseline`` (higher is better)."""
    if baseline not in latencies:
        raise KeyError(f"baseline {baseline!r} missing from latencies")
    base = latencies[baseline]
    rows = [(name, value, base / value if value > 0 else float("inf"))
            for name, value in latencies.items()]
    return format_table(["system", "latency_s", f"speedup vs {baseline}"], rows,
                        title=title, float_fmt="{:.4g}")
