"""Result formatting helpers shared by benchmarks and examples."""

from .tables import format_series, format_speedups, format_table

__all__ = ["format_series", "format_speedups", "format_table"]
