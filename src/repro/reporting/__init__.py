"""Result formatting helpers shared by benchmarks and examples."""

from .tables import format_metrics, format_series, format_speedups, format_table

__all__ = ["format_metrics", "format_series", "format_speedups", "format_table"]
