"""Result formatting and payload-validation helpers shared by benchmarks and examples."""

from .schema import validate_payload
from .tables import format_metrics, format_series, format_speedups, format_table

__all__ = [
    "format_metrics",
    "format_series",
    "format_speedups",
    "format_table",
    "validate_payload",
]
