"""Tiny recursive schema validator for the JSON payloads this repo commits.

Benchmarks (``benchmarks/bench_scheduler.py``) and the sweep engine
(:mod:`repro.sweep`) both emit machine-comparable JSON whose shape must stay stable
across PRs.  The schema language is deliberately minimal:

* a ``dict`` *instance* maps required keys to sub-schemas (extra keys are allowed —
  payloads may grow fields without breaking old validators);
* the ``dict`` *type* is a free-form object leaf;
* a one-element ``list`` instance ``[sub]`` is a homogeneous list of ``sub``;
* a type leaf (``int``, ``float``, ``str``, ``bool``) requires that type — ``int``
  also satisfies a ``float`` leaf, but ``bool`` satisfies neither (a classic JSON
  footgun: ``True`` is an ``int`` subclass in Python).
"""

from __future__ import annotations

__all__ = ["validate_payload"]


def validate_payload(payload, schema, path: str = "$") -> None:
    """Assert ``payload`` matches ``schema``; raises ValueError naming the first mismatch."""
    if isinstance(schema, dict):
        if not isinstance(payload, dict):
            raise ValueError(f"{path}: expected object, got {type(payload).__name__}")
        for key, sub in schema.items():
            if key not in payload:
                raise ValueError(f"{path}.{key}: missing required key")
            validate_payload(payload[key], sub, f"{path}.{key}")
        return
    if isinstance(schema, list):
        if len(schema) != 1:
            raise ValueError(f"{path}: list schemas must have exactly one element schema")
        if not isinstance(payload, list):
            raise ValueError(f"{path}: expected list, got {type(payload).__name__}")
        for index, item in enumerate(payload):
            validate_payload(item, schema[0], f"{path}[{index}]")
        return
    if schema is dict:
        if not isinstance(payload, dict):
            raise ValueError(f"{path}: expected object, got {type(payload).__name__}")
        return
    accepted = (int, float) if schema is float else schema
    if schema in (int, float) and isinstance(payload, bool):
        raise ValueError(f"{path}: expected {schema.__name__}, got bool")
    if not isinstance(payload, accepted):
        raise ValueError(
            f"{path}: expected {schema.__name__}, got {type(payload).__name__}"
        )
