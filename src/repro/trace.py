"""Command-line timeline tracer for the serving simulator.

Runs one traced simulation — single replica or cluster — and emits the two telemetry
artifacts plus a human-readable critical-path report:

* a **Chrome trace-event JSON** (``--trace-out``) loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``: one process track per replica
  (engine iterations and fast-forwarded epochs on thread 0, KV swap/migration DMAs on
  thread 1), counter tracks for the sampled gauges, one async track per request showing
  its queue/prefill/decode/preempted/transfer phases, and flow arrows for cluster KV
  migrations;
* a **schema-validated summary JSON** (``--summary-out``) with event counts, counter
  statistics, preemption reasons, engine memo-cache stats and the per-request phase
  breakdown;
* a stdout table of the slowest requests' critical paths — where each request's
  end-to-end latency actually went.  The phase durations per request sum *exactly*
  (not approximately) to its end-to-end latency; the exporter verifies this and the
  report prints the check.

Example::

    PYTHONPATH=src python -m repro.trace --num-requests 200 --rate 20 \
        --preemption swap --kv-budget-mb 1024 --trace-out timeline.json

then open ``timeline.json`` in Perfetto.
"""

from __future__ import annotations

import argparse
from typing import Any, Dict, Optional, Sequence

from .serving.metrics import SloSpec
from .serving.models import list_models
from .serving.systems import list_systems
from .telemetry import (
    PHASES,
    Tracer,
    build_summary,
    request_breakdowns,
    write_chrome_trace,
    write_summary,
)

__all__ = ["main", "run_traced"]


def run_traced(args: argparse.Namespace) -> Dict[str, Any]:
    """Run the configured simulation with a tracer attached; returns report inputs."""
    from .core.api import simulate_cluster, simulate_serving

    tracer = Tracer(sample_interval_s=args.sample_interval_s, label=args.label)
    common = dict(
        device=args.device,
        num_requests=args.num_requests,
        arrival_rate_rps=args.rate,
        seed=args.seed,
        scheduling_policy=args.scheduling,
        preemption_policy=args.preemption,
        kv_budget_bytes=args.kv_budget_mb * 2**20 if args.kv_budget_mb else None,
        host_kv_budget_bytes=(
            args.host_kv_budget_mb * 2**20 if args.host_kv_budget_mb else None
        ),
        prefix_caching=args.prefix_caching,
        shared_prefix_tokens=args.shared_prefix_tokens,
        slo=SloSpec(ttft_s=args.slo_ttft_s, tpot_s=args.slo_tpot_s),
        tracer=tracer,
    )
    if args.mode == "single":
        sim = simulate_serving(args.system, args.model, **common)
        stats = [sim.stats]
    elif args.mode == "colocated":
        sim = simulate_cluster(
            args.system, args.model, mode="colocated",
            num_replicas=args.num_replicas, **common,
        )
        stats = list(sim.replica_stats)
    else:
        sim = simulate_cluster(
            args.system, args.model, mode="disaggregated",
            num_prefill_replicas=args.num_prefill_replicas,
            num_decode_replicas=args.num_decode_replicas, **common,
        )
        stats = list(sim.replica_stats)
    return {"tracer": tracer, "sim": sim, "stats": stats}


def _print_report(
    tracer: Tracer,
    summary: Dict[str, Any],
    top: int,
) -> None:
    req = summary["requests"]
    print(f"trace '{summary['label']}': {summary['num_events']} events, "
          f"{req['completed']} completed requests")
    print("event counts:", ", ".join(
        f"{kind}={count}" for kind, count in summary["event_counts"].items()
    ))
    totals = req["phase_totals_s"]
    e2e_total = sum(totals.values())
    print("aggregate critical path "
          f"(exact tiling: {req['breakdowns_exact']}):")
    for phase in PHASES:
        share = totals[phase] / e2e_total if e2e_total else 0.0
        print(f"  {phase:>9}: {totals[phase]:10.4f} s  ({share:6.1%})")
    pre = summary["preemptions"]
    print(f"preemptions: {pre['total']} "
          f"(kv_pressure={pre['kv_pressure']}, policy_victim={pre['policy_victim']}, "
          f"averted_by_cache_evict={pre['averted_by_cache_evict']})")

    rows = sorted(req["per_request"], key=lambda r: -r["e2e_s"])[:top]
    if not rows:
        return
    print(f"\nslowest {len(rows)} requests (phase seconds; rows sum to e2e):")
    header = ["request", "e2e_s"] + list(PHASES)
    print("  " + "  ".join(f"{h:>9}" for h in header))
    for row in rows:
        cells = [f"{row['request_id']:>9}", f"{row['e2e_s']:>9.4f}"]
        cells += [f"{row[f'{phase}_s']:>9.4f}" for phase in PHASES]
        print("  " + "  ".join(cells))


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--system", default="liquidserve", choices=list_systems())
    parser.add_argument("--model", default="llama2-7b", choices=list_models())
    parser.add_argument("--device", default="H800")
    parser.add_argument("--mode", default="single",
                        choices=["single", "colocated", "disaggregated"])
    parser.add_argument("--num-replicas", type=int, default=2,
                        help="replica count for --mode colocated")
    parser.add_argument("--num-prefill-replicas", type=int, default=1)
    parser.add_argument("--num-decode-replicas", type=int, default=1)
    parser.add_argument("--num-requests", type=int, default=200)
    parser.add_argument("--rate", type=float, default=10.0,
                        help="mean arrival rate (requests/s)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scheduling", default="fcfs")
    parser.add_argument("--preemption", default="recompute")
    parser.add_argument("--kv-budget-mb", type=int, default=None,
                        help="device KV pool override (MiB)")
    parser.add_argument("--host-kv-budget-mb", type=int, default=None,
                        help="host swap pool override (MiB)")
    parser.add_argument("--prefix-caching", action="store_true")
    parser.add_argument("--shared-prefix-tokens", type=int, default=0)
    parser.add_argument("--slo-ttft-s", type=float, default=2.0)
    parser.add_argument("--slo-tpot-s", type=float, default=0.1)
    parser.add_argument("--sample-interval-s", type=float, default=0.1,
                        help="gauge sampling period on the simulated clock")
    parser.add_argument("--label", default="trace")
    parser.add_argument("--trace-out", default="trace_timeline.json",
                        help="Chrome/Perfetto trace-event JSON output path")
    parser.add_argument("--summary-out", default=None,
                        help="summary JSON output path (default: no summary file)")
    parser.add_argument("--top", type=int, default=10,
                        help="slowest requests to print in the critical-path table")
    args = parser.parse_args(argv)

    run = run_traced(args)
    tracer = run["tracer"]
    breakdowns = request_breakdowns(tracer)
    summary = build_summary(tracer, run["stats"], breakdowns)
    write_chrome_trace(tracer, args.trace_out, breakdowns)
    if args.summary_out:
        write_summary(tracer, args.summary_out, run["stats"], breakdowns)
    _print_report(tracer, summary, args.top)
    print(f"\nchrome trace -> {args.trace_out}"
          + (f"\nsummary      -> {args.summary_out}" if args.summary_out else ""))
    print("open the trace at https://ui.perfetto.dev or chrome://tracing")


if __name__ == "__main__":
    main()
