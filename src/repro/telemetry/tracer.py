"""Structured event tracing on the simulated clock.

The :class:`Tracer` is a passive event sink threaded (optionally) through the serving
stack: the scheduler, cluster, KV cache and prefix cache emit lifecycle events and
periodic gauge samples into it as the simulation runs.  Design constraints, in order:

* **Null tracer is zero-overhead.**  ``tracer=None`` *is* the null tracer: every hook in
  the hot path is a single ``if tracer is not None`` guard on a local, so tracing off
  costs one pointer compare per (cold) call site and nothing per fast-forward iteration.
  Bit-identity of tracer-off runs with the pinned BENCH numbers is test- and CI-gated.
* **Purely observational.**  The tracer never feeds back into scheduling decisions; a
  traced run therefore produces SchedulerStats / RequestMetrics bit-identical to an
  untraced one (hypothesis-pinned in ``tests/test_telemetry_breakdown.py``).
* **Exact timestamps.**  Events carry the *actual* simulated-clock floats at the moment
  they happen — transfer spans record the same float the scheduler added to its clock —
  so per-request phase intervals tile end-to-end with no gaps and their durations,
  summed as exact rationals, telescope to the request's end-to-end latency
  (see :mod:`repro.telemetry.breakdown`).

Event vocabulary (``TraceEvent.kind``):

====================  ======  ==========================================================
kind                  shape   emitted by / meaning
====================  ======  ==========================================================
``arrive``            instant scheduler ``submit`` — request enters the queue
``enqueue``           instant scheduler ``submit_resumed`` — migrated request re-queued
``route``             instant cluster router decision (args: ``role``, ``policy``)
``admit``             instant admission (args ``to``: ``"prefill"`` | ``"decode"``)
``cache_hit``         instant prefix-cache fork-on-admit (args: ``tokens``, ``blocks``)
``cache_insert``      instant prefix published at prefill completion (args: ``blocks``)
``cache_evict``       instant LRU leaves dropped under pressure (args: ``blocks``)
``chunk_prefill``     instant one prefill chunk computed (args: ``tokens``)
``decode_start``      instant prefill complete, first token emitted
``preempt``           instant victim chosen (args: ``mode``, ``reason``)
``preempt_averted``   instant KV pressure absorbed by cache eviction — nobody preempted
``kv_oom``            instant allocator rejected a growth/admit probe
``swap_out``          span    KV blocks moved to host (ts -> end brackets the transfer)
``swap_in``           span    KV blocks restored (args ``to``: resumed phase)
``migrate``           span    cluster KV handoff prefill -> decode replica (args: bytes)
``finish``            instant request completed (args: ``generated``)
``iteration``         span    one stepwise mixed/decode engine iteration
``ff_decode``         span    synthesized fast-forward decode epoch (args: iterations)
``ff_mixed``          span    synthesized fast-forward mixed epoch (args: iterations)
====================  ======  ==========================================================

Instant events have ``end is None``; spans carry ``end >= ts``.  In
``overlap_swap_transfers`` mode swap spans are zero-width (the transfer is parked and
overlapped with compute, the clock does not advance at the swap site).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["TraceEvent", "CounterSample", "Tracer"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured event on the simulated clock (seconds)."""

    kind: str
    ts: float
    replica: int = 0
    request_id: Optional[int] = None
    end: Optional[float] = None
    args: Optional[Dict[str, Any]] = None

    @property
    def duration_s(self) -> float:
        return 0.0 if self.end is None else self.end - self.ts


@dataclass(frozen=True, slots=True)
class CounterSample:
    """One periodic gauge sample of a replica's scheduler state."""

    ts: float
    replica: int
    values: Dict[str, float]


@dataclass(slots=True)
class Tracer:
    """Collects :class:`TraceEvent` streams and periodic counter samples.

    ``sample_interval_s`` is the gauge-sampling cadence on the *simulated* clock;
    samples are taken at iteration / fast-forward-epoch boundaries, so the actual
    spacing is ``>= sample_interval_s``.  Set ``span_events=False`` to suppress the
    high-volume engine spans (``iteration`` / ``chunk_prefill``) and keep only the
    request-lifecycle stream.
    """

    sample_interval_s: float = 0.1
    span_events: bool = True
    label: str = "trace"
    events: List[TraceEvent] = field(default_factory=list)
    counters: List[CounterSample] = field(default_factory=list)
    replica_roles: Dict[int, str] = field(default_factory=dict)
    _engines: List[Any] = field(default_factory=list)

    # ------------------------------------------------------------------ recording
    def emit(self, kind: str, ts: float, *, replica: int = 0,
             request_id: Optional[int] = None, end: Optional[float] = None,
             **args: Any) -> None:
        """Append one event; keyword extras become the event's ``args`` dict."""
        self.events.append(
            TraceEvent(kind, ts, replica, request_id, end, args or None)
        )

    def sample(self, replica: int, ts: float, values: Dict[str, float]) -> None:
        """Append one periodic gauge sample for ``replica``."""
        self.counters.append(CounterSample(ts, replica, values))

    def set_replica_role(self, replica: int, role: str) -> None:
        """Name a replica's role (``"colocated"`` / ``"prefill"`` / ``"decode"``)."""
        self.replica_roles[replica] = role

    def attach_engine(self, engine: Any) -> None:
        """Register a :class:`~repro.serving.engine.ServingEngine` for memo-cache stats.

        Idempotent per engine instance; replicas sharing one engine register it once.
        """
        if all(existing is not engine for existing in self._engines):
            self._engines.append(engine)

    # ------------------------------------------------------------------ queries
    @property
    def num_events(self) -> int:
        return len(self.events)

    def events_of(self, *kinds: str) -> Iterator[TraceEvent]:
        """Iterate events whose kind is one of ``kinds`` (append order preserved)."""
        wanted = frozenset(kinds)
        return (ev for ev in self.events if ev.kind in wanted)

    def event_counts(self) -> Dict[str, int]:
        """Event count per kind, sorted by kind for stable JSON output."""
        counts: Dict[str, int] = {}
        for ev in self.events:
            counts[ev.kind] = counts.get(ev.kind, 0) + 1
        return dict(sorted(counts.items()))

    def engine_memo_stats(self) -> Dict[str, Dict[str, int]]:
        """Memo-cache snapshots of every attached engine, merged by cache name.

        This is the telemetry hookup for :meth:`ServingEngine.cache_stats` — the debug
        hook previously reachable only from a REPL.  Replicas share one engine, so the
        merge is normally a single snapshot; with distinct engines the counts add.
        """
        merged: Dict[str, Dict[str, int]] = {}
        for engine in self._engines:
            for name, snap in engine.cache_stats().items():
                slot = merged.setdefault(
                    name, {"entries": 0, "max_entries": 0, "evictions": 0}
                )
                slot["entries"] += snap["entries"]
                slot["max_entries"] = max(slot["max_entries"], snap["max_entries"])
                slot["evictions"] += snap["evictions"]
        return merged
