"""Per-request critical-path breakdown from a traced lifecycle event stream.

Every completed request's wall-clock from arrival to completion is partitioned into
five phases:

* ``queue`` — waiting for admission (including re-queueing after a migration);
* ``prefill`` — admitted and prefilling (chunked prefill iterations);
* ``decode`` — producing output tokens;
* ``preempted`` — evicted from the device and parked (recompute backlog or host swap);
* ``transfer`` — KV bytes in flight: swap-out / swap-in charges and cluster migrations
  (zero-width when ``overlap_swap_transfers`` hides the transfer behind compute, in
  which case the hidden wait is accounted as ``preempted``).

The partition is **exact**, not approximate: intervals are built from consecutive
event timestamps, so adjacent intervals share their endpoint float, and durations are
summed as :class:`fractions.Fraction` (every float is an exact rational), so the sum
telescopes to ``Fraction(completion) - Fraction(arrival)`` with zero rounding error.
Converting that exact sum back to a float is a single correct rounding — i.e. it equals
``RequestMetrics.latency_s`` (``completion - arrival`` in float arithmetic) exactly.
This is the internal consistency check the aggregate metrics cannot express, and it is
hypothesis-pinned across preemption policies, KV pressure, prefix caching, and
colocated/disaggregated clusters.

The walker consumes events in **append order** (the tracer's streams are causal per
request), never re-sorting by timestamp: distinct events can legitimately share a
timestamp (a zero-width queue interval between a migration landing and same-instant
admission), and a sort would shuffle them.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from .tracer import TraceEvent, Tracer

__all__ = ["PHASES", "PhaseInterval", "RequestBreakdown", "request_breakdowns"]

#: Canonical phase names, in display order.
PHASES: Tuple[str, ...] = ("queue", "prefill", "decode", "preempted", "transfer")

#: Event kinds that drive the phase state machine; all others are ignored here.
_TRANSITIONS = frozenset({
    "arrive", "enqueue", "admit", "decode_start", "preempt",
    "swap_out", "swap_in", "migrate", "finish",
})


@dataclass(frozen=True, slots=True)
class PhaseInterval:
    """One contiguous ``[start, end]`` span of a request in a single phase."""

    phase: str
    start: float
    end: float
    replica: int

    @property
    def duration_s(self) -> float:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class RequestBreakdown:
    """A completed request's exact phase partition of ``[arrival, completion]``."""

    request_id: int
    arrival_s: float
    completion_s: float
    intervals: Tuple[PhaseInterval, ...]

    def phase_fractions(self) -> Dict[str, Fraction]:
        """Exact per-phase totals as rationals (floats are exact rationals)."""
        totals = {phase: Fraction(0) for phase in PHASES}
        for interval in self.intervals:
            totals[interval.phase] += Fraction(interval.end) - Fraction(interval.start)
        return totals

    @property
    def phases(self) -> Dict[str, float]:
        """Per-phase totals as floats (each a single rounding of the exact total)."""
        return {phase: float(total) for phase, total in self.phase_fractions().items()}

    @property
    def e2e_s(self) -> float:
        """End-to-end latency, identical to ``RequestMetrics.latency_s``."""
        return self.completion_s - self.arrival_s

    @property
    def is_exact(self) -> bool:
        """Do the phase durations sum *exactly* (as rationals) to end-to-end?"""
        total = sum(self.phase_fractions().values(), Fraction(0))
        return total == Fraction(self.completion_s) - Fraction(self.arrival_s)


def _walk(request_id: int, events: List[TraceEvent]) -> Optional[RequestBreakdown]:
    """Run the phase state machine over one request's causal event stream."""
    intervals: List[PhaseInterval] = []
    state: Optional[str] = None
    state_start = 0.0
    state_replica = 0
    arrival: Optional[float] = None
    completion: Optional[float] = None

    def close(ts: float) -> None:
        nonlocal state
        if state is not None:
            intervals.append(PhaseInterval(state, state_start, ts, state_replica))
            state = None

    def open_phase(phase: str, ts: float, replica: int) -> None:
        nonlocal state, state_start, state_replica
        state = phase
        state_start = ts
        state_replica = replica

    for ev in events:
        kind = ev.kind
        if arrival is None:
            # "arrive" carries the true arrival time; any other first event (a request
            # fed to the scheduler without submit()) anchors at its own timestamp.
            arrival = ev.ts
        if kind == "arrive":
            close(ev.ts)
            open_phase("queue", ev.ts, ev.replica)
        elif kind == "enqueue":
            close(ev.ts)
            open_phase("queue", ev.ts, ev.replica)
        elif kind == "admit":
            close(ev.ts)
            to = (ev.args or {}).get("to", "prefill")
            open_phase("decode" if to == "decode" else "prefill", ev.ts, ev.replica)
        elif kind == "decode_start":
            close(ev.ts)
            open_phase("decode", ev.ts, ev.replica)
        elif kind == "preempt":
            close(ev.ts)
            open_phase("preempted", ev.ts, ev.replica)
        elif kind == "swap_out":
            close(ev.ts)
            end = ev.end if ev.end is not None else ev.ts
            intervals.append(PhaseInterval("transfer", ev.ts, end, ev.replica))
            open_phase("preempted", end, ev.replica)
        elif kind == "swap_in":
            close(ev.ts)
            end = ev.end if ev.end is not None else ev.ts
            intervals.append(PhaseInterval("transfer", ev.ts, end, ev.replica))
            to = (ev.args or {}).get("to", "decode")
            open_phase("decode" if to == "decode" else "prefill", end, ev.replica)
        elif kind == "migrate":
            close(ev.ts)
            end = ev.end if ev.end is not None else ev.ts
            intervals.append(PhaseInterval("transfer", ev.ts, end, ev.replica))
            open_phase("queue", end, ev.replica)
        elif kind == "finish":
            close(ev.ts)
            completion = ev.ts
            # In a disaggregated cluster the prefill-side clone finishes first and the
            # gap until the migration starts is KV-handoff staging; open it as
            # transfer.  If this finish is the request's last event, the still-open
            # interval is naturally discarded (the loop ends without another close).
            open_phase("transfer", ev.ts, ev.replica)

    if completion is None:
        return None  # still in flight — no breakdown
    return RequestBreakdown(
        request_id=request_id,
        arrival_s=arrival if arrival is not None else completion,
        completion_s=completion,
        intervals=tuple(intervals),
    )


def request_breakdowns(tracer: Tracer) -> List[RequestBreakdown]:
    """Breakdowns for every *completed* request in the trace, sorted by request id."""
    per_request: Dict[int, List[TraceEvent]] = {}
    for ev in tracer.events:
        if ev.request_id is not None and ev.kind in _TRANSITIONS:
            per_request.setdefault(ev.request_id, []).append(ev)
    out = []
    for request_id, events in per_request.items():
        breakdown = _walk(request_id, events)
        if breakdown is not None:
            out.append(breakdown)
    out.sort(key=lambda b: b.request_id)
    return out
