"""Telemetry: structured event tracing, gauge sampling, and timeline export.

Thread a :class:`Tracer` through the serving stack (``tracer=`` on
:class:`~repro.serving.engine.ServingEngine`,
:class:`~repro.serving.scheduler.ContinuousBatchingScheduler`,
:class:`~repro.serving.cluster.ServingCluster`,
:func:`~repro.core.api.simulate_serving` / :func:`~repro.core.api.simulate_cluster`,
or per-cell on :class:`~repro.sweep.SweepGrid`), then export:

* :func:`write_chrome_trace` — Perfetto / ``chrome://tracing`` loadable timeline;
* :func:`write_summary` — schema-validated run summary with per-request
  critical-path breakdowns that provably sum to end-to-end latency;
* ``python -m repro.trace`` — one-shot CLI over both.

``tracer=None`` (the default everywhere) is the null tracer: a single pointer
compare per cold call site, zero cost in the fast-forward hot loops, and
bit-identical simulation results — CI-gated.
"""

from .breakdown import PHASES, PhaseInterval, RequestBreakdown, request_breakdowns
from .export import (
    TELEMETRY_SUMMARY_SCHEMA,
    build_summary,
    chrome_trace_payload,
    write_chrome_trace,
    write_summary,
)
from .tracer import CounterSample, TraceEvent, Tracer

__all__ = [
    "PHASES",
    "PhaseInterval",
    "RequestBreakdown",
    "request_breakdowns",
    "TELEMETRY_SUMMARY_SCHEMA",
    "build_summary",
    "chrome_trace_payload",
    "write_chrome_trace",
    "write_summary",
    "CounterSample",
    "TraceEvent",
    "Tracer",
]
