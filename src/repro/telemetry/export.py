"""Trace exporters: Chrome trace-event JSON (Perfetto) and a schema-validated summary.

Two consumers, two formats:

* :func:`chrome_trace_payload` — the `Chrome trace-event format
  <https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_,
  loadable in https://ui.perfetto.dev or ``chrome://tracing``.  One *process* track per
  replica (named with its cluster role), engine iteration / fast-forward spans as
  complete (``"X"``) events, periodic gauges as counter (``"C"``) series, each
  request's phase timeline as an async (``"b"``/``"e"``) track keyed by request id,
  and KV migrations as flow (``"s"``/``"f"``) arrows from the prefill to the decode
  replica.  Timestamps are microseconds of simulated time.
* :func:`build_summary` — a compact machine-readable run summary validated against
  :data:`TELEMETRY_SUMMARY_SCHEMA` with :func:`repro.reporting.schema.validate_payload`
  before it is returned, so the shape cannot drift silently: event counts by kind,
  per-request critical-path breakdowns (exactness-checked), aggregate phase totals,
  counter statistics, preemption *reasons* (KV pressure vs policy victim vs averted by
  cache eviction), prefix-cache counters, and the engine memo-cache statistics
  (the previously orphaned ``ServingEngine.cache_stats`` debug hook).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from ..reporting.schema import validate_payload
from .breakdown import PHASES, RequestBreakdown, request_breakdowns
from .tracer import Tracer

__all__ = [
    "TELEMETRY_SUMMARY_SCHEMA",
    "chrome_trace_payload",
    "write_chrome_trace",
    "build_summary",
    "write_summary",
]

#: Span kinds rendered as complete ("X") slices on the replica's engine track.
_ENGINE_SPANS = frozenset({"iteration", "ff_decode", "ff_mixed"})
#: Span kinds rendered as slices on the replica's KV-transfer track.
_TRANSFER_SPANS = frozenset({"swap_out", "swap_in", "migrate"})

_US = 1e6  # simulated seconds -> trace microseconds

TELEMETRY_SUMMARY_SCHEMA = {
    "telemetry": str,           # format marker + version
    "label": str,
    "sample_interval_s": float,
    "replicas": [{"replica": int, "role": str}],
    "num_events": int,
    "event_counts": dict,       # kind -> count
    "counters": dict,           # "replica<i>.<gauge>" -> {samples,min,max,mean,last}
    "requests": {
        "completed": int,
        "breakdowns_exact": bool,
        "phase_totals_s": {phase: float for phase in PHASES},
        "per_request": [
            {
                "request_id": int,
                "arrival_s": float,
                "completion_s": float,
                "e2e_s": float,
                "exact": bool,
                **{f"{phase}_s": float for phase in PHASES},
            }
        ],
    },
    "preemptions": {
        "total": int,
        "kv_pressure": int,
        "policy_victim": int,
        "averted_by_cache_evict": int,
    },
    "engine_memo_caches": dict,  # cache name -> {entries, max_entries, evictions}
}


# --------------------------------------------------------------------- chrome trace
def _role_of(tracer: Tracer, replica: int) -> str:
    return tracer.replica_roles.get(replica, "replica")


def chrome_trace_payload(
    tracer: Tracer, breakdowns: Optional[Sequence[RequestBreakdown]] = None
) -> Dict[str, Any]:
    """Build a Chrome trace-event payload (``{"traceEvents": [...]}``) from a trace.

    Pass precomputed ``breakdowns`` to avoid walking the event stream twice when the
    caller also builds the summary.
    """
    if breakdowns is None:
        breakdowns = request_breakdowns(tracer)
    events: List[Dict[str, Any]] = []
    replicas = sorted(
        {ev.replica for ev in tracer.events}
        | {cs.replica for cs in tracer.counters}
        | set(tracer.replica_roles)
    )
    for replica in replicas:
        events.append({
            "name": "process_name", "ph": "M", "pid": replica, "tid": 0,
            "args": {"name": f"replica {replica} ({_role_of(tracer, replica)})"},
        })
        for tid, thread in ((0, "engine"), (1, "kv-transfer")):
            events.append({
                "name": "thread_name", "ph": "M", "pid": replica, "tid": tid,
                "args": {"name": thread},
            })

    for ev in tracer.events:
        base_args: Dict[str, Any] = dict(ev.args or {})
        if ev.request_id is not None:
            base_args["request_id"] = ev.request_id
        if ev.kind in _ENGINE_SPANS:
            events.append({
                "name": ev.kind, "cat": "engine", "ph": "X",
                "pid": ev.replica, "tid": 0,
                "ts": ev.ts * _US, "dur": ev.duration_s * _US,
                "args": base_args,
            })
        elif ev.kind in _TRANSFER_SPANS:
            events.append({
                "name": ev.kind, "cat": "kv", "ph": "X",
                "pid": ev.replica, "tid": 1,
                "ts": ev.ts * _US, "dur": ev.duration_s * _US,
                "args": base_args,
            })
        else:
            events.append({
                "name": ev.kind, "cat": "lifecycle", "ph": "i", "s": "t",
                "pid": ev.replica, "tid": 0,
                "ts": ev.ts * _US, "args": base_args,
            })

    for cs in tracer.counters:
        for name, value in cs.values.items():
            events.append({
                "name": name, "cat": "gauges", "ph": "C",
                "pid": cs.replica, "tid": 0,
                "ts": cs.ts * _US, "args": {name: value},
            })

    # Per-request phase timelines as async tracks keyed by the request id.
    for bd in breakdowns:
        for interval in bd.intervals:
            common = {
                "cat": "request", "id": bd.request_id, "name": interval.phase,
                "pid": interval.replica, "tid": 0,
            }
            events.append({**common, "ph": "b", "ts": interval.start * _US})
            events.append({**common, "ph": "e", "ts": interval.end * _US})

    # Flow arrows for cluster KV migrations: start on the prefill replica, finish on
    # the replica that re-enqueues the migrated request (its "enqueue" event lands at
    # exactly the migration's end timestamp).
    enqueues: Dict[int, List[Any]] = {}
    for ev in tracer.events_of("enqueue"):
        if ev.request_id is not None:
            enqueues.setdefault(ev.request_id, []).append(ev)
    flow_id = 0
    for ev in tracer.events_of("migrate"):
        if ev.request_id is None or ev.end is None:
            continue
        landing = next(
            (eq for eq in enqueues.get(ev.request_id, []) if eq.ts >= ev.end), None
        )
        if landing is None:
            continue
        flow_id += 1
        common = {"cat": "flow", "name": "kv-migrate", "id": flow_id}
        events.append({**common, "ph": "s", "pid": ev.replica, "tid": 1,
                       "ts": ev.ts * _US})
        events.append({**common, "ph": "f", "bp": "e", "pid": landing.replica,
                       "tid": 1, "ts": landing.ts * _US})

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    tracer: Tracer, path: str,
    breakdowns: Optional[Sequence[RequestBreakdown]] = None,
) -> Dict[str, Any]:
    """Write the Chrome trace JSON to ``path``; returns the payload."""
    payload = chrome_trace_payload(tracer, breakdowns)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
        fh.write("\n")
    return payload


# --------------------------------------------------------------------- summary JSON
def _counter_stats(tracer: Tracer) -> Dict[str, Dict[str, float]]:
    stats: Dict[str, Dict[str, float]] = {}
    counts: Dict[str, int] = {}
    for cs in tracer.counters:
        for name, value in cs.values.items():
            key = f"replica{cs.replica}.{name}"
            slot = stats.get(key)
            if slot is None:
                stats[key] = {"min": value, "max": value, "mean": value, "last": value}
                counts[key] = 1
            else:
                slot["min"] = min(slot["min"], value)
                slot["max"] = max(slot["max"], value)
                slot["mean"] += value  # running sum; divided below
                slot["last"] = value
                counts[key] += 1
    for key, slot in stats.items():
        slot["samples"] = counts[key]
        slot["mean"] /= counts[key]
    return dict(sorted(stats.items()))


def _preemption_counts(
    tracer: Tracer, scheduler_stats: Optional[Sequence[Any]]
) -> Dict[str, int]:
    if scheduler_stats:
        return {
            "total": sum(s.preemptions for s in scheduler_stats),
            "kv_pressure": sum(s.preemptions_kv_pressure for s in scheduler_stats),
            "policy_victim": sum(s.preemptions_policy_victim for s in scheduler_stats),
            "averted_by_cache_evict": sum(
                s.preemptions_averted_by_cache for s in scheduler_stats
            ),
        }
    by_reason = {"kv_pressure": 0, "policy_victim": 0}
    for ev in tracer.events_of("preempt"):
        reason = (ev.args or {}).get("reason")
        if reason in by_reason:
            by_reason[reason] += 1
    return {
        "total": by_reason["kv_pressure"] + by_reason["policy_victim"],
        **by_reason,
        "averted_by_cache_evict": sum(1 for _ in tracer.events_of("preempt_averted")),
    }


def build_summary(
    tracer: Tracer,
    scheduler_stats: Optional[Sequence[Any]] = None,
    breakdowns: Optional[Sequence[RequestBreakdown]] = None,
) -> Dict[str, Any]:
    """Build (and schema-validate) the telemetry summary payload.

    ``scheduler_stats`` is an optional :class:`SchedulerStats` — or a sequence of them,
    one per replica — and when given, preemption-reason and prefix-cache counters come
    from the authoritative scheduler counters instead of being re-derived from events.
    """
    if scheduler_stats is not None and not isinstance(scheduler_stats, (list, tuple)):
        scheduler_stats = [scheduler_stats]
    if breakdowns is None:
        breakdowns = request_breakdowns(tracer)
    phase_fraction_totals = {phase: 0 for phase in PHASES}
    per_request = []
    all_exact = True
    for bd in breakdowns:
        fractions = bd.phase_fractions()
        exact = bd.is_exact
        all_exact = all_exact and exact
        row: Dict[str, Any] = {
            "request_id": bd.request_id,
            "arrival_s": bd.arrival_s,
            "completion_s": bd.completion_s,
            "e2e_s": bd.e2e_s,
            "exact": exact,
        }
        for phase in PHASES:
            row[f"{phase}_s"] = float(fractions[phase])
            phase_fraction_totals[phase] += fractions[phase]
        per_request.append(row)

    replicas = sorted(
        {ev.replica for ev in tracer.events} | set(tracer.replica_roles)
    )
    payload: Dict[str, Any] = {
        "telemetry": "repro.telemetry/v1",
        "label": tracer.label,
        "sample_interval_s": tracer.sample_interval_s,
        "replicas": [
            {"replica": replica, "role": _role_of(tracer, replica)}
            for replica in replicas
        ],
        "num_events": tracer.num_events,
        "event_counts": tracer.event_counts(),
        "counters": _counter_stats(tracer),
        "requests": {
            "completed": len(per_request),
            "breakdowns_exact": all_exact,
            "phase_totals_s": {
                phase: float(total) for phase, total in phase_fraction_totals.items()
            },
            "per_request": per_request,
        },
        "preemptions": _preemption_counts(tracer, scheduler_stats),
        "engine_memo_caches": tracer.engine_memo_stats(),
    }
    if scheduler_stats:
        payload["prefix_cache"] = {
            "hits": sum(s.prefix_cache_hits for s in scheduler_stats),
            "misses": sum(s.prefix_cache_misses for s in scheduler_stats),
            "saved_tokens": sum(s.prefix_saved_tokens for s in scheduler_stats),
        }
    validate_payload(payload, TELEMETRY_SUMMARY_SCHEMA)
    return payload


def write_summary(
    tracer: Tracer, path: str,
    scheduler_stats: Optional[Sequence[Any]] = None,
    breakdowns: Optional[Sequence[RequestBreakdown]] = None,
) -> Dict[str, Any]:
    """Write the schema-validated summary JSON to ``path``; returns the payload."""
    payload = build_summary(tracer, scheduler_stats, breakdowns)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return payload
