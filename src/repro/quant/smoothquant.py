"""SmoothQuant-style activation-outlier migration (Section 6, "Offline Quantization").

SmoothQuant [Xiao et al., 2023] rescales each input channel by a smooth factor
``s_j = max|X_j|^alpha / max|W_j|^(1-alpha)`` so that activation outliers are migrated into the
weights, which tolerate quantization better.  The transformation is mathematically equivalent:

    Y = X W^T = (X / s) (W * s)^T

The paper applies SmoothQuant before LQQ weight quantization and uses an
OutlierSuppression+-style grid search over ``alpha`` to pick the factor that minimizes the
combined quantization error.  This module reproduces both pieces on top of the calibration
statistics of a (synthetic) activation sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from .base import quantization_error, quantize_tensor, dequantize, QuantGranularity

__all__ = [
    "SmoothQuantResult",
    "compute_smooth_scale",
    "apply_smoothing",
    "grid_search_alpha",
    "smooth_and_quantize",
]


@dataclass
class SmoothQuantResult:
    """Outcome of the smoothing grid search."""

    alpha: float
    smooth_scale: np.ndarray
    weight_error: dict
    activation_error: dict
    combined_mse: float


def compute_smooth_scale(
    activation_absmax: np.ndarray,
    weight_absmax: np.ndarray,
    alpha: float = 0.5,
    eps: float = 1e-8,
) -> np.ndarray:
    """Per-input-channel smooth scale ``s_j = a_j^alpha / w_j^(1-alpha)``.

    ``activation_absmax`` and ``weight_absmax`` are per-column (input-channel) absolute maxima
    of the calibration activations ``X`` (M, K) and the weights ``W`` (N, K) respectively.
    """
    a = np.maximum(np.asarray(activation_absmax, dtype=np.float64), eps)
    w = np.maximum(np.asarray(weight_absmax, dtype=np.float64), eps)
    if a.shape != w.shape:
        raise ValueError("activation and weight statistics must have the same shape")
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must lie in [0, 1]")
    scale = np.power(a, alpha) / np.power(w, 1.0 - alpha)
    return np.maximum(scale, eps)


def apply_smoothing(
    x: np.ndarray, w: np.ndarray, smooth_scale: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Apply the equivalence transform: ``X' = X / s`` (per column), ``W' = W * s`` (per column)."""
    x = np.asarray(x, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    s = np.asarray(smooth_scale, dtype=np.float64)
    if x.shape[1] != w.shape[1] or s.shape[0] != x.shape[1]:
        raise ValueError("smooth scale must have one entry per shared K dimension")
    return x / s[None, :], w * s[None, :]


def _default_weight_quantizer(w: np.ndarray) -> np.ndarray:
    codes, params = quantize_tensor(w, bits=4, symmetric=False, signed=False,
                                    granularity=QuantGranularity.PER_CHANNEL)
    return dequantize(codes, params)


def _default_activation_quantizer(x: np.ndarray) -> np.ndarray:
    codes, params = quantize_tensor(x, bits=8, symmetric=True,
                                    granularity=QuantGranularity.PER_TOKEN)
    return dequantize(codes, params)


def grid_search_alpha(
    x_calib: np.ndarray,
    w: np.ndarray,
    alphas: Optional[Sequence[float]] = None,
    weight_quantizer: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    activation_quantizer: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> SmoothQuantResult:
    """OutlierSuppression+-style grid search over the smoothing exponent ``alpha``.

    For each candidate alpha the calibration activations and weights are smoothed, quantized
    with the provided quantizers (defaults: per-token INT8 activations, per-channel INT4
    weights), and the output-MSE of the quantized matmul against the FP reference is scored.
    The best alpha and its smooth scale are returned.
    """
    x_calib = np.asarray(x_calib, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    if x_calib.ndim != 2 or w.ndim != 2 or x_calib.shape[1] != w.shape[1]:
        raise ValueError("expected X (M, K) and W (N, K) sharing K")
    alphas = list(alphas) if alphas is not None else [round(a, 2) for a in np.linspace(0.1, 0.9, 9)]
    weight_quantizer = weight_quantizer or _default_weight_quantizer
    activation_quantizer = activation_quantizer or _default_activation_quantizer

    reference = x_calib @ w.T
    a_absmax = np.abs(x_calib).max(axis=0)
    w_absmax = np.abs(w).max(axis=0)

    best: Optional[SmoothQuantResult] = None
    for alpha in alphas:
        scale = compute_smooth_scale(a_absmax, w_absmax, alpha)
        x_s, w_s = apply_smoothing(x_calib, w, scale)
        w_hat = weight_quantizer(w_s)
        x_hat = activation_quantizer(x_s)
        out = x_hat @ w_hat.T
        mse = float(np.mean((out - reference) ** 2))
        candidate = SmoothQuantResult(
            alpha=float(alpha),
            smooth_scale=scale,
            weight_error=quantization_error(w_s, w_hat),
            activation_error=quantization_error(x_s, x_hat),
            combined_mse=mse,
        )
        if best is None or candidate.combined_mse < best.combined_mse:
            best = candidate
    assert best is not None
    return best


def smooth_and_quantize(
    x_calib: np.ndarray,
    w: np.ndarray,
    quantize_fn: Callable[[np.ndarray], object],
    alphas: Optional[Sequence[float]] = None,
):
    """Run the grid search, then quantize the smoothed weights with ``quantize_fn``.

    Returns ``(quantized_weight, SmoothQuantResult)``.  ``quantize_fn`` is typically
    :func:`repro.quant.liquidquant.lqq_quantize` or
    :func:`repro.quant.progressive.qserve_quantize`.
    """
    result = grid_search_alpha(x_calib, w, alphas=alphas)
    _, w_smoothed = apply_smoothing(x_calib, w, result.smooth_scale)
    return quantize_fn(w_smoothed), result
