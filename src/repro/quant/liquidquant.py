"""LiquidQuant (LQQ): the paper's hardware-efficient two-level W4A8 weight quantization.

Pipeline (Section 4):

1. **First level (offline, per output channel).**  FP16 weights are quantized symmetrically to
   INT8 with the *protective* range ``[-119, 119]`` so the second-level scale can never push a
   reconstructed value outside INT8 (same protective range as QServe).
2. **Second level (offline, per group).**  Instead of quantizing INT8 directly to UINT4 with a
   zero point (QServe), LQQ first *shifts* each group into the unsigned domain
   (``Q_u8 = Q_i8 - min(Q_i8)``) and then quantizes to UINT4 with an integer scale
   ``s_u8 = round(max(Q_u8) / 15) <= 16`` (Equation 7).
3. **Dequantization (online, per 4 packed elements).**  Equation 12:

       Q_i8_hat = (Q_u4 * s_u8 + a) XOR 0x80,     a = 128 + min(Q_i8)

   executed as a single ``IMAD`` plus a single ``XOR`` on packed 32-bit registers; the proof in
   Section 4 (reproduced as runtime invariants here) guarantees every intermediate stays inside
   UINT8, so byte-wise arithmetic inside a 32-bit register never produces cross-byte carries.

The classes below keep the offline parameters (`LqqQuantizedWeight`) and provide both a plain
NumPy reference dequantization and the register-level emulated path (in
:mod:`repro.dequant.lqq`) that counts the actual hardware instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .base import (
    UINT4_RANGE,
    UINT8_RANGE,
    group_reshape,
    group_unreshape,
    quantization_error,
)

__all__ = [
    "LqqConfig",
    "LqqQuantizedWeight",
    "first_level_quantize",
    "second_level_quantize",
    "lqq_quantize",
    "lqq_dequantize_int8",
    "lqq_dequantize_fp",
    "lqq_dequantize_int8_reference",
    "MAX_SECOND_LEVEL_SCALE",
]

#: Upper bound on the second-level scale proven in Section 4: round(238 / 15) = 16.
MAX_SECOND_LEVEL_SCALE = 16


@dataclass(frozen=True)
class LqqConfig:
    """Configuration of the LQQ two-level scheme.

    ``group_size`` is the number of contiguous elements along K sharing one second-level scale
    (the paper's default is 64).  ``protective_bound`` is the first-level clamp (119).
    """

    group_size: int = 64
    protective_bound: int = 119

    def __post_init__(self):
        if self.group_size <= 0:
            raise ValueError("group_size must be positive")
        if not 1 <= self.protective_bound <= 127:
            raise ValueError("protective_bound must be in [1, 127]")


@dataclass
class LqqQuantizedWeight:
    """Offline-quantized weight tensor in LQQ format.

    Attributes
    ----------
    q_u4:
        ``(N, K)`` UINT4 codes (stored one code per ``uint8`` for clarity; packing into the
        dual-MMA register layout is done by :mod:`repro.layout`).
    scale_u8:
        ``(N, num_groups)`` second-level integer scales ``s_u8`` (1..16).
    offset_a:
        ``(N, num_groups)`` precomputed ``a = 128 + min(Q_i8)`` offsets, stored as ``uint8``.
    min_i8:
        ``(N, num_groups)`` first-level group minima (``int16``), kept for the reference path.
    scale_ch:
        ``(N, 1)`` first-level per-channel FP scales.
    config:
        The :class:`LqqConfig` used.
    original_shape:
        ``(N, K)`` of the source tensor.
    """

    q_u4: np.ndarray
    scale_u8: np.ndarray
    offset_a: np.ndarray
    min_i8: np.ndarray
    scale_ch: np.ndarray
    config: LqqConfig
    original_shape: Tuple[int, int]

    def __post_init__(self):
        if not UINT4_RANGE.contains(self.q_u4):
            raise ValueError("q_u4 codes out of UINT4 range")
        if np.any(self.scale_u8 < 1) or np.any(self.scale_u8 > MAX_SECOND_LEVEL_SCALE):
            raise ValueError("second-level scales must lie in [1, 16]")
        if not UINT8_RANGE.contains(self.offset_a):
            raise ValueError("offset a must fit in UINT8")

    @property
    def n(self) -> int:
        return self.original_shape[0]

    @property
    def k(self) -> int:
        return self.original_shape[1]

    @property
    def num_groups(self) -> int:
        return self.k // self.config.group_size

    def memory_bytes(self) -> int:
        """Bytes required to store this tensor in deployed form (4-bit codes + metadata)."""
        code_bytes = (self.q_u4.size + 1) // 2
        meta_bytes = self.scale_u8.size + self.offset_a.size  # one byte each
        ch_scale_bytes = self.scale_ch.size * 2  # FP16 per-channel scales
        return code_bytes + meta_bytes + ch_scale_bytes


def first_level_quantize(
    w: np.ndarray, protective_bound: int = 119
) -> Tuple[np.ndarray, np.ndarray]:
    """First-level symmetric per-channel quantization FP -> protective INT8.

    Returns ``(q_i8, scale_ch)`` with ``q_i8`` in ``[-protective_bound, protective_bound]`` and
    ``scale_ch`` of shape ``(N, 1)``.
    """
    w = np.asarray(w, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError("expected a 2-D weight tensor (N, K)")
    amax = np.abs(w).max(axis=1, keepdims=True)
    eps = np.finfo(np.float64).tiny
    scale_ch = np.maximum(amax / protective_bound, eps)
    q_i8 = np.clip(np.round(w / scale_ch), -protective_bound, protective_bound).astype(np.int16)
    return q_i8, scale_ch


def second_level_quantize(
    q_i8: np.ndarray, group_size: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Second-level LQQ quantization INT8 -> UINT4 via the unsigned shift (Equation 7).

    Returns ``(q_u4, scale_u8, offset_a, min_i8)`` where all group-level arrays have shape
    ``(N, num_groups)``.
    """
    q_i8 = np.asarray(q_i8)
    grouped = group_reshape(q_i8.astype(np.int32), group_size)  # (N, G, group)
    min_i8 = grouped.min(axis=2)                                 # (N, G)
    q_u8 = grouped - min_i8[:, :, None]                          # shift into unsigned domain
    if q_u8.min() < 0:
        raise AssertionError("shifted codes must be non-negative")
    max_u8 = q_u8.max(axis=2)
    # Integer second-level scale, rounded to nearest as in the paper, clamped to [1, 16].
    scale_u8 = np.clip(np.round(max_u8 / UINT4_RANGE.hi), 1, MAX_SECOND_LEVEL_SCALE).astype(np.int32)
    q_u4 = np.clip(np.round(q_u8 / scale_u8[:, :, None]), 0, UINT4_RANGE.hi).astype(np.uint8)
    # a = 2^7 + min(Q_i8): with min in [-119, 119] this lies in [9, 247] and fits in UINT8.
    offset_a = (128 + min_i8).astype(np.int32)
    if offset_a.min() < 0 or offset_a.max() > 255:
        raise AssertionError("offset a escaped the UINT8 range")
    return group_unreshape(q_u4[:, :, :]), scale_u8, offset_a.astype(np.uint8), min_i8.astype(np.int16)


def lqq_quantize(w: np.ndarray, config: Optional[LqqConfig] = None) -> LqqQuantizedWeight:
    """Quantize an FP weight matrix ``(N, K)`` with the full two-level LQQ scheme."""
    config = config or LqqConfig()
    w = np.asarray(w, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError("expected a 2-D weight tensor (N, K)")
    if w.shape[1] % config.group_size != 0:
        raise ValueError(
            f"K={w.shape[1]} must be divisible by group_size={config.group_size}"
        )
    q_i8, scale_ch = first_level_quantize(w, config.protective_bound)
    q_u4, scale_u8, offset_a, min_i8 = second_level_quantize(q_i8, config.group_size)
    return LqqQuantizedWeight(
        q_u4=q_u4,
        scale_u8=scale_u8,
        offset_a=offset_a,
        min_i8=min_i8,
        scale_ch=scale_ch,
        config=config,
        original_shape=tuple(w.shape),
    )


def _expand_group(params: np.ndarray, group_size: int) -> np.ndarray:
    """Expand ``(N, G)`` group parameters to ``(N, K)`` by repetition along K."""
    return np.repeat(params, group_size, axis=1)


def lqq_dequantize_int8_reference(qw: LqqQuantizedWeight) -> np.ndarray:
    """Reference (Equation 8) second-level dequantization: ``Q_u4 * s_u8 + min(Q_i8)``.

    Pure integer math with explicit widening; used as the ground truth against which the
    hardware-style Equation-12 path and the emulated register path are checked.
    """
    g = qw.config.group_size
    scale = _expand_group(qw.scale_u8.astype(np.int32), g)
    minimum = _expand_group(qw.min_i8.astype(np.int32), g)
    q_i8_hat = qw.q_u4.astype(np.int32) * scale + minimum
    if q_i8_hat.min() < -128 or q_i8_hat.max() > 127:
        raise AssertionError("reference dequantization escaped INT8 — protective range violated")
    return q_i8_hat.astype(np.int8)


def lqq_dequantize_int8(qw: LqqQuantizedWeight, check_overflow: bool = True) -> np.ndarray:
    """Hardware-form second-level dequantization (Equation 12) in the UINT8 domain.

    Computes ``(Q_u4 * s_u8 + a) XOR 0x80`` entirely with UINT8-range intermediates and
    reinterprets the result as INT8.  With ``check_overflow`` the Section-4 invariants are
    asserted at runtime (they can be disabled for speed once trusted).
    """
    g = qw.config.group_size
    scale = _expand_group(qw.scale_u8.astype(np.uint32), g)
    offset = _expand_group(qw.offset_a.astype(np.uint32), g)
    product = qw.q_u4.astype(np.uint32) * scale
    if check_overflow and product.size and product.max() > 240:
        raise AssertionError("Q_u4 * s_u8 exceeded 240 — Section 4 bound violated")
    shifted = product + offset
    if check_overflow and shifted.size and shifted.max() > 255:
        raise AssertionError("Q_u4 * s_u8 + a exceeded UINT8 — Equation 11 bound violated")
    flipped = (shifted.astype(np.uint8) ^ np.uint8(0x80))
    return flipped.view(np.int8) if flipped.dtype == np.uint8 else flipped.astype(np.uint8).view(np.int8)


def lqq_dequantize_fp(qw: LqqQuantizedWeight) -> np.ndarray:
    """Full dequantization back to floating point: Equation 12 followed by the first-level
    per-channel scale (applied in the GEMM epilogue in the real kernel)."""
    q_i8 = lqq_dequantize_int8(qw).astype(np.float64)
    return q_i8 * qw.scale_ch


def lqq_roundtrip_error(w: np.ndarray, config: Optional[LqqConfig] = None) -> dict:
    """Convenience: quantize ``w`` with LQQ and report reconstruction error metrics."""
    qw = lqq_quantize(w, config)
    return quantization_error(w, lqq_dequantize_fp(qw))
