"""Per-token dynamic activation quantization (FP16 -> INT8), Section 6.

During serving, activations are quantized on the fly: each token (matrix row) gets its own
symmetric INT8 scale after being divided by the SmoothQuant smooth scale.  The operation is
cheap and is fused into the preceding kernel in the real system; here it is an explicit,
testable function plus a small cost estimate used by the serving model's "Others" bucket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["QuantizedActivation", "quantize_activation_per_token", "dequantize_activation"]


@dataclass
class QuantizedActivation:
    """Per-token INT8 activation tensor: codes ``(M, K)`` and per-row scales ``(M, 1)``."""

    q_i8: np.ndarray
    scale_tok: np.ndarray
    original_shape: Tuple[int, int]

    def __post_init__(self):
        if self.q_i8.min(initial=0) < -127 or self.q_i8.max(initial=0) > 127:
            raise ValueError("activation codes must fit in [-127, 127]")

    def memory_bytes(self) -> int:
        return self.q_i8.size + self.scale_tok.size * 2


def quantize_activation_per_token(
    x: np.ndarray, smooth_scale: Optional[np.ndarray] = None
) -> QuantizedActivation:
    """Symmetric per-token INT8 quantization, optionally after SmoothQuant division."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError("expected a 2-D activation tensor (M, K)")
    if smooth_scale is not None:
        smooth_scale = np.asarray(smooth_scale, dtype=np.float64)
        if smooth_scale.shape[0] != x.shape[1]:
            raise ValueError("smooth scale must have one entry per K column")
        x = x / smooth_scale[None, :]
    amax = np.abs(x).max(axis=1, keepdims=True)
    eps = np.finfo(np.float64).tiny
    scale = np.maximum(amax / 127.0, eps)
    q = np.clip(np.round(x / scale), -127, 127).astype(np.int8)
    return QuantizedActivation(q_i8=q, scale_tok=scale, original_shape=tuple(x.shape))


def dequantize_activation(qa: QuantizedActivation) -> np.ndarray:
    """Reconstruct FP activations from per-token INT8 codes."""
    return qa.q_i8.astype(np.float64) * qa.scale_tok
