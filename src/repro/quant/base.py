"""Core integer-quantization primitives (Equation 1 / Equation 2 of the paper).

This module implements the generic symmetric / asymmetric affine quantization that every
scheme in the reproduction builds on: plain round-to-nearest (RTN) weight quantization,
per-tensor / per-channel / per-group granularity, and the corresponding dequantization.

The specialized schemes live in sibling modules:

* :mod:`repro.quant.progressive` — QServe-style two-level W4A8 ("progressive") quantization;
* :mod:`repro.quant.liquidquant` — the paper's LiquidQuant (LQQ) scheme;
* :mod:`repro.quant.smoothquant` — SmoothQuant activation-outlier migration;
* :mod:`repro.quant.activation` — per-token dynamic INT8 activation quantization;
* :mod:`repro.quant.kvcache` — KV-cache quantization used by the serving system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "QuantGranularity",
    "IntRange",
    "QuantParams",
    "int_range",
    "quantize",
    "dequantize",
    "quantize_tensor",
    "quantization_error",
    "group_reshape",
    "group_unreshape",
]


class QuantGranularity:
    """Supported quantization granularities."""

    PER_TENSOR = "per_tensor"
    PER_CHANNEL = "per_channel"   # one scale per output channel (matrix row)
    PER_GROUP = "per_group"       # one scale per contiguous group of `group_size` along K
    PER_TOKEN = "per_token"       # one scale per activation row (token)

    ALL = (PER_TENSOR, PER_CHANNEL, PER_GROUP, PER_TOKEN)


@dataclass(frozen=True)
class IntRange:
    """Inclusive integer range of a quantized data type."""

    lo: int
    hi: int

    @property
    def span(self) -> int:
        return self.hi - self.lo

    def contains(self, values: np.ndarray) -> bool:
        values = np.asarray(values)
        if values.size == 0:
            return True
        return bool(values.min() >= self.lo and values.max() <= self.hi)

    def clip(self, values: np.ndarray) -> np.ndarray:
        return np.clip(values, self.lo, self.hi)


def int_range(bits: int, signed: bool, protective: int = 0) -> IntRange:
    """Integer range for an ``bits``-bit type, optionally shrunk by a protective margin.

    ``protective`` narrows both ends of a signed range symmetrically; QServe and LiquidQuant
    restrict INT8 to ``[-119, 119]`` (protective = 9 relative to ±128/127) to guarantee that
    second-level scaling cannot overflow (Section 3.2 / Section 4).
    """
    if bits <= 0 or bits > 32:
        raise ValueError("bits must be in (0, 32]")
    if signed:
        lo, hi = -(2 ** (bits - 1)), 2 ** (bits - 1) - 1
        if protective:
            bound = min(abs(lo), hi) - protective + 1
            lo, hi = -bound, bound
    else:
        lo, hi = 0, 2**bits - 1
        if protective:
            hi -= protective
    if lo > hi:
        raise ValueError("protective margin removed the whole range")
    return IntRange(lo, hi)


#: The protective signed 8-bit range used by QServe and LQQ first-level quantization.
PROTECTIVE_INT8 = IntRange(-119, 119)
INT8_RANGE = int_range(8, signed=True)
UINT8_RANGE = int_range(8, signed=False)
UINT4_RANGE = int_range(4, signed=False)
INT4_RANGE = int_range(4, signed=True)


@dataclass(frozen=True)
class QuantParams:
    """Affine quantization parameters ``q = round(w / scale) + zero_point``.

    ``scale`` and ``zero_point`` are NumPy arrays broadcastable against the tensor being
    quantized, so the same container serves per-tensor, per-channel, per-group and per-token
    schemes.
    """

    scale: np.ndarray
    zero_point: np.ndarray
    qrange: IntRange
    granularity: str = QuantGranularity.PER_TENSOR
    group_size: Optional[int] = None

    def __post_init__(self):
        if np.any(np.asarray(self.scale) <= 0):
            raise ValueError("quantization scales must be strictly positive")
        if self.granularity not in QuantGranularity.ALL:
            raise ValueError(f"unknown granularity {self.granularity!r}")

    @property
    def is_symmetric(self) -> bool:
        return bool(np.all(np.asarray(self.zero_point) == 0))


def group_reshape(tensor: np.ndarray, group_size: int) -> np.ndarray:
    """Reshape ``(N, K)`` to ``(N, K // group_size, group_size)`` for per-group statistics."""
    if tensor.ndim != 2:
        raise ValueError("per-group quantization expects a 2-D tensor")
    n, k = tensor.shape
    if group_size <= 0 or k % group_size != 0:
        raise ValueError(f"K={k} must be divisible by group_size={group_size}")
    return tensor.reshape(n, k // group_size, group_size)


def group_unreshape(tensor: np.ndarray) -> np.ndarray:
    """Inverse of :func:`group_reshape`."""
    if tensor.ndim != 3:
        raise ValueError("expected a grouped 3-D tensor")
    n, g, s = tensor.shape
    return tensor.reshape(n, g * s)


def _compute_scale_zero(
    w: np.ndarray,
    qrange: IntRange,
    symmetric: bool,
    axis,
) -> Tuple[np.ndarray, np.ndarray]:
    """Scale / zero-point statistics along ``axis`` (None = whole tensor)."""
    w_min = np.minimum(w.min(axis=axis, keepdims=True), 0.0)
    w_max = np.maximum(w.max(axis=axis, keepdims=True), 0.0)
    eps = np.finfo(np.float64).tiny
    if symmetric:
        bound = min(abs(qrange.lo), qrange.hi)
        amax = np.maximum(np.abs(w_min), np.abs(w_max))
        scale = np.maximum(amax / bound, eps)
        zero = np.zeros_like(scale)
    else:
        scale = np.maximum((w_max - w_min) / qrange.span, eps)
        zero = np.round(qrange.lo - w_min / scale)
        zero = np.clip(zero, qrange.lo, qrange.hi)
    return scale, zero


def quantize(w: np.ndarray, params: QuantParams) -> np.ndarray:
    """Quantize ``w`` with ``params`` (round-to-nearest-even via ``np.round``), clipped to range."""
    q = np.round(np.asarray(w, dtype=np.float64) / params.scale) + params.zero_point
    return params.qrange.clip(q).astype(np.int32)


def dequantize(q: np.ndarray, params: QuantParams) -> np.ndarray:
    """Reconstruct floating-point values from integer codes (Equation 2)."""
    return (np.asarray(q, dtype=np.float64) - params.zero_point) * params.scale


def quantize_tensor(
    w: np.ndarray,
    bits: int = 8,
    symmetric: bool = True,
    granularity: str = QuantGranularity.PER_TENSOR,
    group_size: Optional[int] = None,
    protective: int = 0,
    signed: Optional[bool] = None,
) -> Tuple[np.ndarray, QuantParams]:
    """One-shot RTN quantization of a 2-D tensor.

    Returns ``(codes, params)`` where ``codes`` has the same shape as ``w`` (grouping is kept
    internal to the parameters).  ``signed`` defaults to ``symmetric``; asymmetric quantization
    uses an unsigned code range, matching common practice and the paper's UINT4 second level.
    """
    w = np.asarray(w, dtype=np.float64)
    if signed is None:
        signed = symmetric
    qrange = int_range(bits, signed=signed, protective=protective)

    if granularity == QuantGranularity.PER_TENSOR:
        scale, zero = _compute_scale_zero(w, qrange, symmetric, axis=None)
    elif granularity in (QuantGranularity.PER_CHANNEL, QuantGranularity.PER_TOKEN):
        if w.ndim != 2:
            raise ValueError("per-channel/per-token quantization expects a 2-D tensor")
        scale, zero = _compute_scale_zero(w, qrange, symmetric, axis=1)
    elif granularity == QuantGranularity.PER_GROUP:
        if group_size is None:
            raise ValueError("group_size is required for per-group quantization")
        grouped = group_reshape(w, group_size)
        scale, zero = _compute_scale_zero(grouped, qrange, symmetric, axis=2)
        params = QuantParams(scale=scale, zero_point=zero, qrange=qrange,
                             granularity=granularity, group_size=group_size)
        codes_grouped = quantize(grouped, params)
        return group_unreshape(codes_grouped), params
    else:
        raise ValueError(f"unknown granularity {granularity!r}")

    params = QuantParams(scale=scale, zero_point=zero, qrange=qrange,
                         granularity=granularity, group_size=group_size)
    return quantize(w, params), params


def quantization_error(w: np.ndarray, w_hat: np.ndarray) -> dict:
    """Error metrics between the original tensor and its quantize-dequantize reconstruction."""
    w = np.asarray(w, dtype=np.float64)
    w_hat = np.asarray(w_hat, dtype=np.float64)
    if w.shape != w_hat.shape:
        raise ValueError("shape mismatch between original and reconstruction")
    err = w - w_hat
    mse = float(np.mean(err**2))
    signal = float(np.mean(w**2))
    return {
        "mse": mse,
        "rmse": float(np.sqrt(mse)),
        "max_abs": float(np.max(np.abs(err))) if err.size else 0.0,
        "snr_db": float(10.0 * np.log10(signal / mse)) if mse > 0 and signal > 0 else float("inf"),
        "relative_fro": float(np.linalg.norm(err) / max(np.linalg.norm(w), 1e-30)),
    }
