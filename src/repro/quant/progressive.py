"""QServe-style progressive (two-level) W4A8 quantization — the paper's main W4A8 baseline.

QServe [Lin et al., 2024] also uses a two-level scheme: per-channel FP->INT8 with the
protective range ``[-119, 119]``, then per-group INT8 -> UINT4 *asymmetric* quantization with
an integer scale and zero point.  The crucial difference from LiquidQuant is the online
dequantization:

    Q_i8_hat = Q_u4 * s_i8 - s_i8 * z_u4        ("subtraction after multiplication")

The subtraction of the packed ``s_i8 * z_u4`` term can wrap around within a byte, so QServe
must fall back to the ``vadd4``/``vsub4`` SIMD-within-a-register ops which Hopper lowers to a
dozen scalar instructions (Section 3.2 — profiled at 21% of warp stalls).  The register-level
emulation of that path lives in :mod:`repro.dequant.qserve`; this module provides the offline
quantization and a NumPy reference dequantization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .base import UINT4_RANGE, group_reshape, group_unreshape, quantization_error
from .liquidquant import first_level_quantize

__all__ = [
    "QServeConfig",
    "QServeQuantizedWeight",
    "qserve_quantize",
    "qserve_dequantize_int8",
    "qserve_dequantize_fp",
]


@dataclass(frozen=True)
class QServeConfig:
    """QServe progressive-quantization configuration (paper default: group size 128)."""

    group_size: int = 128
    protective_bound: int = 119

    def __post_init__(self):
        if self.group_size <= 0:
            raise ValueError("group_size must be positive")
        if not 1 <= self.protective_bound <= 127:
            raise ValueError("protective_bound must be in [1, 127]")


@dataclass
class QServeQuantizedWeight:
    """Offline-quantized weight tensor in QServe's W4A8 format.

    ``q_u4`` are the UINT4 codes, ``scale_i8`` the per-group integer scales, ``zero_u4`` the
    per-group zero points (in the UINT4 domain), ``scale_ch`` the first-level per-channel FP
    scales.
    """

    q_u4: np.ndarray
    scale_i8: np.ndarray
    zero_u4: np.ndarray
    scale_ch: np.ndarray
    config: QServeConfig
    original_shape: Tuple[int, int]

    def __post_init__(self):
        if not UINT4_RANGE.contains(self.q_u4):
            raise ValueError("q_u4 codes out of UINT4 range")
        if np.any(self.scale_i8 < 1):
            raise ValueError("second-level scales must be >= 1")
        if not UINT4_RANGE.contains(self.zero_u4):
            raise ValueError("zero points must lie in the UINT4 range")

    @property
    def num_groups(self) -> int:
        return self.original_shape[1] // self.config.group_size

    def memory_bytes(self) -> int:
        code_bytes = (self.q_u4.size + 1) // 2
        meta_bytes = self.scale_i8.size + self.zero_u4.size
        ch_scale_bytes = self.scale_ch.size * 2
        return code_bytes + meta_bytes + ch_scale_bytes


def qserve_quantize(w: np.ndarray, config: Optional[QServeConfig] = None) -> QServeQuantizedWeight:
    """Quantize an FP weight matrix with QServe's progressive two-level scheme."""
    config = config or QServeConfig()
    w = np.asarray(w, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError("expected a 2-D weight tensor (N, K)")
    if w.shape[1] % config.group_size != 0:
        raise ValueError(f"K={w.shape[1]} must be divisible by group_size={config.group_size}")

    q_i8, scale_ch = first_level_quantize(w, config.protective_bound)
    grouped = group_reshape(q_i8.astype(np.int32), config.group_size)
    g_min = grouped.min(axis=2)
    g_max = grouped.max(axis=2)
    # Asymmetric INT8 -> UINT4: integer scale and zero point per group.
    scale_i8 = np.clip(np.round((g_max - g_min) / UINT4_RANGE.hi), 1, None).astype(np.int32)
    zero_u4 = np.clip(np.round(-g_min / scale_i8), 0, UINT4_RANGE.hi).astype(np.int32)
    q_u4 = np.clip(
        np.round(grouped / scale_i8[:, :, None]) + zero_u4[:, :, None], 0, UINT4_RANGE.hi
    ).astype(np.uint8)
    return QServeQuantizedWeight(
        q_u4=group_unreshape(q_u4),
        scale_i8=scale_i8,
        zero_u4=zero_u4.astype(np.uint8),
        scale_ch=scale_ch,
        config=config,
        original_shape=tuple(w.shape),
    )


def _expand(params: np.ndarray, group_size: int) -> np.ndarray:
    return np.repeat(params, group_size, axis=1)


def qserve_dequantize_int8(qw: QServeQuantizedWeight) -> np.ndarray:
    """Reference second-level dequantization: ``Q_u4 * s - s * z`` (subtraction after multiply).

    Performed with widened integers here; the register-level path with byte wraparound and
    ``vsub4`` lowering is emulated in :mod:`repro.dequant.qserve`.
    """
    g = qw.config.group_size
    scale = _expand(qw.scale_i8.astype(np.int32), g)
    zero = _expand(qw.zero_u4.astype(np.int32), g)
    q_i8_hat = qw.q_u4.astype(np.int32) * scale - scale * zero
    return np.clip(q_i8_hat, -128, 127).astype(np.int8)


def qserve_dequantize_fp(qw: QServeQuantizedWeight) -> np.ndarray:
    """Full dequantization back to floating point (second level, then per-channel scale)."""
    return qserve_dequantize_int8(qw).astype(np.float64) * qw.scale_ch


def qserve_roundtrip_error(w: np.ndarray, config: Optional[QServeConfig] = None) -> dict:
    """Quantize ``w`` with QServe's scheme and report reconstruction error metrics."""
    qw = qserve_quantize(w, config)
    return quantization_error(w, qserve_dequantize_fp(qw))
