"""KV-cache quantization schemes used by the serving systems compared in the paper.

Table 1's systems differ not only in GEMM precision but also in how the KV cache is stored:

* LiquidServe / TRT-W8A8: per-channel static INT8 (scales computed offline);
* QServe: 4-bit KV cache (which is why it reaches larger batch sizes on some models);
* TRT-FP16 / TRT-FP8 / TRT-W4A16: FP8 KV cache.

The serving engine only needs bytes-per-element and a numerically faithful quantize /
dequantize pair (for the accuracy study and the integration tests); both live here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "KvCacheFormat",
    "KV_FORMATS",
    "QuantizedKvCache",
    "quantize_kv",
    "dequantize_kv",
    "kv_bytes_per_element",
    "fp8_e4m3_round",
]


@dataclass(frozen=True)
class KvCacheFormat:
    """Descriptor of a KV-cache storage format."""

    name: str
    bits: int
    scheme: str  # "int", "fp8", or "fp16"
    per_channel: bool = True

    @property
    def bytes_per_element(self) -> float:
        return self.bits / 8.0


KV_FORMATS = {
    "fp16": KvCacheFormat("fp16", 16, "fp16", per_channel=False),
    "fp8": KvCacheFormat("fp8", 8, "fp8"),
    "int8": KvCacheFormat("int8", 8, "int"),
    "int4": KvCacheFormat("int4", 4, "int"),
}


def kv_bytes_per_element(format_name: str) -> float:
    """Bytes per stored K/V element for a named format."""
    try:
        return KV_FORMATS[format_name].bytes_per_element
    except KeyError as exc:
        raise KeyError(f"unknown KV-cache format {format_name!r}; known: {sorted(KV_FORMATS)}") from exc


@dataclass
class QuantizedKvCache:
    """A quantized K or V tensor ``(tokens, head_dim)`` plus its static per-channel scales."""

    codes: np.ndarray
    scale: np.ndarray
    fmt: KvCacheFormat
    original_shape: Tuple[int, ...]


def fp8_e4m3_round(x: np.ndarray) -> np.ndarray:
    """Round to the nearest representable FP8 E4M3 value (saturating at +-448)."""
    x = np.asarray(x, dtype=np.float64)
    out = np.zeros_like(x)
    finite = np.isfinite(x)
    clipped = np.clip(x[finite], -448.0, 448.0)
    absx = np.abs(clipped)
    sign = np.sign(clipped)
    # Decompose into exponent/mantissa with 3 mantissa bits; subnormals handled with exp=-6.
    with np.errstate(divide="ignore"):
        exp = np.floor(np.log2(np.maximum(absx, 1e-45)))
    exp = np.clip(exp, -6, 8)
    quantum = np.power(2.0, exp - 3)
    out[finite] = sign * np.round(absx / quantum) * quantum
    out[~finite] = np.sign(x[~finite]) * 448.0
    return out


#: Backwards-compatible alias (the rounding helper predates its public export).
_fp8_e4m3_round = fp8_e4m3_round


def quantize_kv(
    kv: np.ndarray, format_name: str = "int8", scale: Optional[np.ndarray] = None
) -> QuantizedKvCache:
    """Quantize a KV tensor ``(tokens, channels)`` with per-channel static scales.

    If ``scale`` is given it is treated as the offline-calibrated static scale (one per
    channel); otherwise scales are computed from the tensor itself.
    """
    fmt = KV_FORMATS.get(format_name)
    if fmt is None:
        raise KeyError(f"unknown KV-cache format {format_name!r}")
    kv = np.asarray(kv, dtype=np.float64)
    if kv.ndim != 2:
        raise ValueError("expected a 2-D KV tensor (tokens, channels)")

    if fmt.scheme == "fp16":
        return QuantizedKvCache(kv.astype(np.float16), np.ones(kv.shape[1]), fmt, kv.shape)
    if fmt.scheme == "fp8":
        return QuantizedKvCache(fp8_e4m3_round(kv), np.ones(kv.shape[1]), fmt, kv.shape)

    qmax = 2 ** (fmt.bits - 1) - 1
    if scale is None:
        amax = np.abs(kv).max(axis=0) if kv.size else np.zeros(kv.shape[1])
        scale = np.maximum(amax / qmax, np.finfo(np.float64).tiny)
    else:
        scale = np.asarray(scale, dtype=np.float64)
        if scale.shape[0] != kv.shape[1]:
            raise ValueError("static scale must have one entry per channel")
    codes = np.clip(np.round(kv / scale[None, :]), -qmax, qmax).astype(np.int8)
    return QuantizedKvCache(codes, scale, fmt, kv.shape)


def dequantize_kv(cache: QuantizedKvCache) -> np.ndarray:
    """Reconstruct FP values from a quantized KV tensor."""
    if cache.fmt.scheme in ("fp16", "fp8"):
        return np.asarray(cache.codes, dtype=np.float64)
    return cache.codes.astype(np.float64) * cache.scale[None, :]
