"""Event-driven simulation of the warp-group pipelines compared in Section 5.1 / Figure 13.

Three pipeline organisations are simulated for a sequence of grouped GEMM main loops:

* **serial** — a conventional (non-warp-specialized) kernel: weight loading is double-buffered
  against compute, but each iteration's dequantization and MMA run back to back on the same
  warp group.  This is the "Baseline" / "LQQ"-only configuration of the ablation.
* **ExCP** — explicit coarse-grained pipeline: three warp groups (Load / Dequant / MMA) pass
  tiles through shared memory.  The Dequant WG pays an RF<->SMEM round trip and two software
  synchronizations per iteration, which show up as pipeline bubbles whenever its stage time
  exceeds the others.
* **ImFP** — implicit fine-grained pipeline: one Load WG plus ``num_compute_wgs`` unified
  Compute WGs that each dequantize *and* immediately MMA a fine-grained task.  Overlap of
  dequantization and MMA happens *across* compute WGs contending for the CUDA-core and
  Tensor-core resources; there is no round trip and no software synchronization.

The simulator is deliberately small: warp groups and hardware units are modeled as FCFS
resources with "next free time" clocks, iterations and fine-grained tasks are scheduled
greedily in program order, and buffer back-pressure is modeled by bounding the number of
in-flight loaded tiles.  That is enough to reproduce the scheduling phenomena the paper
attributes to each design (ExCP regressing below the serial baseline at small batch, ImFP
winning everywhere, grouped/MoE GEMMs benefiting the most).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from .timing import IterationTiming

__all__ = ["PipelineKind", "PipelineResult", "simulate_pipeline", "simulate_serial",
           "simulate_excp", "simulate_imfp"]


class PipelineKind:
    SERIAL = "serial"
    EXCP = "excp"
    IMFP = "imfp"

    ALL = (SERIAL, EXCP, IMFP)


@dataclass
class PipelineResult:
    """Outcome of simulating one thread block's work through a pipeline."""

    kind: str
    total_time: float
    iterations: int
    busy: Dict[str, float] = field(default_factory=dict)

    def utilization(self, resource: str) -> float:
        """Busy fraction of a hardware resource over the simulated span."""
        if self.total_time <= 0:
            return 0.0
        return min(1.0, self.busy.get(resource, 0.0) / self.total_time)

    @property
    def bubble_fraction(self) -> float:
        """Idle fraction of the bottleneck resource — a direct measure of pipeline bubbles."""
        if not self.busy or self.total_time <= 0:
            return 0.0
        return 1.0 - max(self.utilization(r) for r in self.busy)


def _iteration_stream(timings: Sequence[IterationTiming], iterations_per_gemm: Sequence[int]):
    """Yield (gemm_index, iteration_timing) over a grouped-GEMM main-loop sequence."""
    if len(timings) != len(iterations_per_gemm):
        raise ValueError("one IterationTiming per GEMM in the group is required")
    for gemm_idx, (timing, iters) in enumerate(zip(timings, iterations_per_gemm)):
        if iters <= 0:
            raise ValueError("iterations per GEMM must be positive")
        for _ in range(iters):
            yield gemm_idx, timing


def simulate_serial(
    timings: Sequence[IterationTiming],
    iterations_per_gemm: Sequence[int],
    num_buffers: int = 2,
    per_gemm_overhead: float = 0.0,
) -> PipelineResult:
    """Conventional kernel: double-buffered loads, dequant+MMA serial on one warp group.

    ``per_gemm_overhead`` models the fill/drain + launch cost paid between consecutive GEMMs
    when they are *not* fused into a persistent grouped kernel (relevant for MoE).
    """
    load_free = 0.0
    compute_free = 0.0
    load_end: List[float] = []
    busy = {"tma": 0.0, "cuda": 0.0, "tensor": 0.0}
    last_gemm = None
    for idx, (gemm_idx, t) in enumerate(_iteration_stream(timings, iterations_per_gemm)):
        if last_gemm is not None and gemm_idx != last_gemm:
            barrier = compute_free + per_gemm_overhead
            load_free = max(load_free, barrier)
            compute_free = max(compute_free, barrier)
        last_gemm = gemm_idx
        buffer_ready = load_end[idx - num_buffers] if idx >= num_buffers else 0.0
        start_load = max(load_free, buffer_ready)
        end_load = start_load + t.t_load
        load_free = end_load
        load_end.append(end_load)
        busy["tma"] += t.t_load

        start_compute = max(compute_free, end_load)
        end_compute = start_compute + t.t_dequant + t.t_mma
        compute_free = end_compute
        busy["cuda"] += t.t_dequant
        busy["tensor"] += t.t_mma
    total = max(load_free, compute_free)
    return PipelineResult(PipelineKind.SERIAL, total, len(load_end), busy)


def simulate_excp(
    timings: Sequence[IterationTiming],
    iterations_per_gemm: Sequence[int],
    num_buffers: int = 2,
    per_gemm_overhead: float = 0.0,
) -> PipelineResult:
    """Explicit coarse-grained pipeline: Load WG -> Dequant WG -> MMA WG through SMEM."""
    load_free = 0.0
    dequant_free = 0.0
    mma_free = 0.0
    load_end: List[float] = []
    dequant_end: List[float] = []
    busy = {"tma": 0.0, "cuda": 0.0, "tensor": 0.0, "smem": 0.0}
    last_gemm = None
    idx = 0
    for gemm_idx, t in _iteration_stream(timings, iterations_per_gemm):
        if last_gemm is not None and gemm_idx != last_gemm:
            barrier = mma_free + per_gemm_overhead
            load_free = max(load_free, barrier)
            dequant_free = max(dequant_free, barrier)
            mma_free = max(mma_free, barrier)
        last_gemm = gemm_idx

        raw_buffer_ready = dequant_end[idx - num_buffers] if idx >= num_buffers else 0.0
        start_load = max(load_free, raw_buffer_ready)
        end_load = start_load + t.t_load
        load_free = end_load
        load_end.append(end_load)
        busy["tma"] += t.t_load

        # Dequant WG: wait for the loaded tile, read it to RF, dequantize, write back to SMEM,
        # then signal the MMA WG (one sync on each side of the hand-off).
        start_dq = max(dequant_free, end_load + t.t_sync)
        duration_dq = t.t_smem_roundtrip + t.t_dequant
        end_dq = start_dq + duration_dq
        dequant_free = end_dq
        dequant_end.append(end_dq)
        busy["cuda"] += t.t_dequant
        busy["smem"] += t.t_smem_roundtrip

        start_mma = max(mma_free, end_dq + t.t_sync)
        end_mma = start_mma + t.t_mma
        mma_free = end_mma
        busy["tensor"] += t.t_mma
        idx += 1
    total = max(load_free, dequant_free, mma_free)
    return PipelineResult(PipelineKind.EXCP, total, idx, busy)


def simulate_imfp(
    timings: Sequence[IterationTiming],
    iterations_per_gemm: Sequence[int],
    num_compute_wgs: int = 2,
    tasks_per_iteration: int = 4,
    num_buffers: int = 3,
    per_gemm_overhead: float = 0.0,
) -> PipelineResult:
    """Implicit fine-grained pipeline: 1 Load WG + N Compute WGs pulling fine-grained tasks.

    Compute WGs contend for the shared CUDA-core and Tensor-core units (FCFS); because a WG
    that has finished dequantizing its task immediately issues its MMAs while another WG is
    still dequantizing, the two units stay busy simultaneously without any software sync.
    ``per_gemm_overhead`` is zero by default: the persistent grouped kernel of LiquidGEMM
    flows from one GEMM of a group into the next without draining.
    """
    if num_compute_wgs < 1 or tasks_per_iteration < 1:
        raise ValueError("need at least one compute WG and one task per iteration")
    load_free = 0.0
    cuda_free = 0.0
    tensor_free = 0.0
    wg_free = [0.0] * num_compute_wgs
    load_end: List[float] = []
    iter_done: List[float] = []
    busy = {"tma": 0.0, "cuda": 0.0, "tensor": 0.0}
    last_gemm = None
    idx = 0
    for gemm_idx, t in _iteration_stream(timings, iterations_per_gemm):
        if last_gemm is not None and gemm_idx != last_gemm and per_gemm_overhead > 0:
            barrier = max(wg_free) + per_gemm_overhead
            load_free = max(load_free, barrier)
            wg_free = [max(w, barrier) for w in wg_free]
        last_gemm = gemm_idx

        raw_buffer_ready = iter_done[idx - num_buffers] if idx >= num_buffers else 0.0
        start_load = max(load_free, raw_buffer_ready)
        end_load = start_load + t.t_load
        load_free = end_load
        load_end.append(end_load)
        busy["tma"] += t.t_load

        dq_task = t.t_dequant / tasks_per_iteration
        mma_task = t.t_mma / tasks_per_iteration
        task_end = 0.0
        for _ in range(tasks_per_iteration):
            wg = min(range(num_compute_wgs), key=lambda w: wg_free[w])
            start_dq = max(wg_free[wg], cuda_free, end_load)
            end_dq = start_dq + dq_task
            cuda_free = end_dq
            busy["cuda"] += dq_task
            start_mma = max(end_dq, tensor_free)
            end_mma = start_mma + mma_task
            tensor_free = end_mma
            busy["tensor"] += mma_task
            wg_free[wg] = end_mma
            task_end = max(task_end, end_mma)
        iter_done.append(task_end)
        idx += 1
    total = max([load_free] + wg_free)
    return PipelineResult(PipelineKind.IMFP, total, idx, busy)


def simulate_pipeline(
    kind: str,
    timings: Sequence[IterationTiming],
    iterations_per_gemm: Sequence[int],
    **kwargs,
) -> PipelineResult:
    """Dispatch to the simulator for ``kind`` (one of :class:`PipelineKind`)."""
    if kind == PipelineKind.SERIAL:
        return simulate_serial(timings, iterations_per_gemm, **kwargs)
    if kind == PipelineKind.EXCP:
        return simulate_excp(timings, iterations_per_gemm, **kwargs)
    if kind == PipelineKind.IMFP:
        return simulate_imfp(timings, iterations_per_gemm, **kwargs)
    raise ValueError(f"unknown pipeline kind {kind!r}")
