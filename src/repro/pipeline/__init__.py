"""Warp-group pipeline simulation: serial baseline, ExCP, and the paper's ImFP."""

from .timing import IterationTiming, WorkDecomposition, decompose_work, derive_iteration_timing
from .simulator import (
    PipelineKind,
    PipelineResult,
    simulate_excp,
    simulate_imfp,
    simulate_pipeline,
    simulate_serial,
)

__all__ = [
    "IterationTiming",
    "WorkDecomposition",
    "decompose_work",
    "derive_iteration_timing",
    "PipelineKind",
    "PipelineResult",
    "simulate_excp",
    "simulate_imfp",
    "simulate_pipeline",
    "simulate_serial",
]
