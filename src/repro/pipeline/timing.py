"""Per-iteration stage timings for the warp-group pipeline simulator.

The event-driven simulator (:mod:`repro.pipeline.simulator`) works in units of one main-loop
iteration of one thread block: load a ``tile_n x tile_k`` weight slice, dequantize it, run the
MMAs against the ``tile_m x tile_k`` activation slice.  This module converts a GEMM problem,
a GPU spec and a kernel configuration into those per-iteration stage durations, using the same
block-level throughput apportionment as the analytic cost model (Equation 6's ``S * L``
concurrent thread blocks), so the simulator and the closed-form model agree in steady state
and differ only where scheduling effects (bubbles, sync, round trips, grouped-GEMM fill/drain)
matter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..costmodel.model import GemmShape, KernelCostParams
from ..gpu.specs import GpuSpec, Precision

__all__ = ["IterationTiming", "WorkDecomposition", "derive_iteration_timing", "decompose_work"]


@dataclass(frozen=True)
class IterationTiming:
    """Stage durations (seconds) for one main-loop iteration of one thread block."""

    t_load: float          # GMEM -> SMEM weight-tile transfer (TMA)
    t_dequant: float       # CUDA-core dequantization of the tile
    t_mma: float           # Tensor-core MMAs of the tile
    t_smem_roundtrip: float  # extra RF <-> SMEM traffic of the ExCP dequant warp group
    t_sync: float          # one software warp-group synchronization (mbarrier wait)

    def __post_init__(self):
        for name, value in self.__dict__.items():
            if value < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class WorkDecomposition:
    """How a GEMM decomposes into per-block work for the simulator."""

    k_iterations: int        # main-loop iterations per output tile
    total_tiles: int         # output tiles over the whole GEMM
    concurrent_blocks: int   # S * L
    tiles_per_block: int     # sequential output tiles a single block processes


#: SMEM bandwidth per SM in bytes/s (128 B/clk on Hopper); only the ExCP round-trip uses it.
_SMEM_BYTES_PER_CLOCK = 128
#: Cost of one software warp-group synchronization (mbarrier arrive/wait round), seconds.
_SYNC_LATENCY_S = 1.5e-7


def decompose_work(shape: GemmShape, gpu: GpuSpec, params: KernelCostParams,
                   blocks_per_sm: int = 1) -> WorkDecomposition:
    """Split a GEMM into tiles / iterations and distribute tiles over concurrent blocks."""
    if blocks_per_sm < 1:
        raise ValueError("blocks_per_sm must be >= 1")
    k_iterations = math.ceil(shape.k / params.tile_k)
    m_tiles = math.ceil(shape.m / params.tile_m)
    n_tiles = math.ceil(shape.n / params.tile_n)
    total_tiles = m_tiles * n_tiles
    concurrent = gpu.num_sms * blocks_per_sm
    tiles_per_block = math.ceil(total_tiles / concurrent)
    return WorkDecomposition(
        k_iterations=k_iterations,
        total_tiles=total_tiles,
        concurrent_blocks=concurrent,
        tiles_per_block=tiles_per_block,
    )


def derive_iteration_timing(shape: GemmShape, gpu: GpuSpec, params: KernelCostParams,
                            blocks_per_sm: int = 1) -> IterationTiming:
    """Per-iteration stage durations at block-level throughput shares."""
    concurrent = gpu.num_sms * max(1, blocks_per_sm)
    tile_elements = params.tile_n * params.tile_k
    effective_m = min(params.tile_m, shape.m)

    weight_bytes = tile_elements * Precision.bytes(params.weight_precision)
    block_bandwidth = gpu.memory_bandwidth * params.bandwidth_efficiency / concurrent
    t_load = weight_bytes / block_bandwidth

    block_cuda = gpu.cuda_core_int32_tops / concurrent
    alpha_total = params.alpha + params.load_overhead_alpha
    t_dequant = alpha_total * tile_elements / block_cuda if alpha_total > 0 else 0.0

    block_tc = gpu.tensor_core_throughput(params.mma_precision) * params.tensor_efficiency / concurrent
    t_mma = 2.0 * effective_m * tile_elements / block_tc

    # ExCP round trip: read packed tile (4-bit), write dequantized tile (8-bit), read it again
    # for the MMA warp group.  SMEM bandwidth is shared by the resident blocks of the SM.
    smem_bandwidth = _SMEM_BYTES_PER_CLOCK * gpu.clock_hz / max(1, blocks_per_sm)
    roundtrip_bytes = tile_elements * (0.5 + 1.0 + 1.0)
    t_roundtrip = roundtrip_bytes / smem_bandwidth

    return IterationTiming(
        t_load=t_load,
        t_dequant=t_dequant,
        t_mma=t_mma,
        t_smem_roundtrip=t_roundtrip,
        t_sync=_SYNC_LATENCY_S,
    )
