"""Figure 11: token throughput at fixed batch sizes (16 and 128) on LLaMA2-7B and LLaMA2-70B.

Unlike Table 1 (which searches for each system's best batch), this comparison holds the batch
size fixed — batch 16 is generally memory-bound, batch 128 approaches compute-bound.  Missing
bars mean the configuration does not fit in 80 GB.  LiquidServe must lead in every feasible
configuration, as in the paper.
"""


from repro.reporting import format_table
from repro.serving import ServingEngine, TABLE1_SYSTEMS

MODELS = ["llama2-7b", "llama2-70b"]
BATCHES = [16, 128]


def build_fixed_batch():
    table = {}
    for model in MODELS:
        for batch in BATCHES:
            row = {}
            for system in TABLE1_SYSTEMS:
                engine = ServingEngine(system, model)
                if not engine.supported or batch > engine.max_batch_size(1536):
                    row[system] = None
                    continue
                row[system] = engine.throughput(batch).tokens_per_second
            table[(model, batch)] = row
    return table


def test_fig11_fixed_batch(benchmark, emit):
    table = benchmark(build_fixed_batch)
    rows = []
    for (model, batch), row in table.items():
        for system, value in row.items():
            rows.append([model, batch, system, "OOM" if value is None else round(value)])
    text = format_table(
        ["model", "batch", "system", "tokens/s"],
        rows,
        title="Figure 11 — throughput at fixed batch sizes 16 and 128",
    )
    emit("fig11_fixed_batch", text)

    for (model, batch), row in table.items():
        feasible = {s: v for s, v in row.items() if v is not None}
        assert "liquidserve" in feasible
        best_other = max(v for s, v in feasible.items() if s != "liquidserve")
        assert feasible["liquidserve"] >= best_other * 0.999, (model, batch)
    # FP16 cannot hold LLaMA2-70B at batch 128 (nor at 16) within 80 GB.
    assert table[("llama2-70b", 128)]["trt-fp16"] is None
