#!/usr/bin/env python3
"""Performance harness for the request-level scheduler simulation.

Times a 500-request ShareGPT-like trace (Poisson arrivals) through the continuous-batching
scheduler on Llama2-7B/H800 — chunked prefill, ragged decode and preemption enabled — plus
the tensor-parallel Llama2-70B acceptance scenario, and writes ``BENCH_scheduler.json`` at
the repository root so subsequent PRs can track both simulator wall-time (is the scheduler
hot loop regressing?) and the simulated serving metrics (did a change silently alter the
model?).

Run:  PYTHONPATH=src python benchmarks/bench_scheduler.py
"""

import json
import os
import time

from repro.core import simulate_serving
from repro.serving import ServingEngine, SloSpec

RESULT_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_scheduler.json")


def bench_trace_simulation() -> dict:
    slo = SloSpec(ttft_s=2.0, tpot_s=0.1)
    start = time.perf_counter()
    sim = simulate_serving(
        "liquidserve",
        "llama2-7b",
        num_requests=500,
        arrival_rate_rps=20.0,
        seed=0,
        slo=slo,
    )
    wall_s = time.perf_counter() - start
    stats, report = sim.stats, sim.slo
    return {
        "workload": {
            "system": sim.system,
            "model": sim.model,
            "device": "H800",
            "num_requests": sim.num_requests,
            "arrival": "poisson-20rps",
            "lengths": "sharegpt-lognormal",
            "slo": {"ttft_s": slo.ttft_s, "tpot_s": slo.tpot_s},
        },
        "harness": {
            "wall_time_s": round(wall_s, 3),
            "iterations_per_s": round(stats.num_iterations / wall_s, 1),
        },
        "simulated": {
            "completed_requests": stats.completed_requests,
            "generated_tokens": stats.generated_tokens,
            "throughput_tokens_per_s": round(stats.throughput_tokens_per_s, 1),
            "iterations": stats.num_iterations,
            "prefill_chunks": stats.prefill_chunks,
            "preemptions": stats.preemptions,
            "peak_batch_size": stats.peak_batch_size,
            "peak_kv_utilization": round(stats.peak_kv_utilization, 4),
            "p50_ttft_s": round(report.p50_ttft_s, 4),
            "p99_ttft_s": round(report.p99_ttft_s, 4),
            "p50_tpot_s": round(report.p50_tpot_s, 5),
            "p99_tpot_s": round(report.p99_tpot_s, 5),
            "slo_attainment": round(report.attainment, 4),
            "goodput_rps": round(report.goodput_rps, 2),
        },
    }


def bench_tensor_parallel() -> dict:
    """Llama2-70B FP16: OOM on one GPU, finite peak throughput on four."""
    single = ServingEngine("trt-fp16", "llama2-70b")
    sharded = ServingEngine("trt-fp16", "llama2-70b", tp_degree=4)
    start = time.perf_counter()
    result = sharded.peak_throughput(batch_sizes=[1, 16, 64, 128, 256])
    wall_s = time.perf_counter() - start
    return {
        "single_gpu_oom": single.peak_throughput(batch_sizes=[1, 16, 64]).oom,
        "tp4_peak_tokens_per_s": round(result.peak_throughput, 1),
        "tp4_peak_batch": result.peak_batch_size,
        "tp4_weights_per_gpu_gb": round(sharded.weight_memory_bytes() / 2**30, 2),
        "wall_time_s": round(wall_s, 3),
    }


def main() -> None:
    payload = {
        "benchmark": "bench_scheduler",
        "trace_simulation": bench_trace_simulation(),
        "tensor_parallel_llama2_70b": bench_tensor_parallel(),
    }
    path = os.path.abspath(RESULT_PATH)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
