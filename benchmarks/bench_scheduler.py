#!/usr/bin/env python3
"""Performance harness for the request-level scheduler simulation.

Eleven sections, written to ``BENCH_scheduler.json`` at the repository root so subsequent PRs
can track both simulator wall-time (is the scheduler hot loop regressing?) and the simulated
serving metrics (did a change silently alter the model?):

* ``trace_simulation`` — a ShareGPT-like trace (Poisson arrivals) through the
  continuous-batching scheduler on Llama2-7B/H800 with the default FCFS + recompute policies;
* ``mixed_phase`` — the fast-forward acceptance workload PR 4's decode-only jumps could not
  touch: a KV-constrained, prefill-heavy trace (long prompts, hybrid preemption, starved
  chunks and parked swapped sequences) measured with fast-forward on *and* off;
  ``speedup_ge_3x`` asserts the mixed-phase jump machinery clears 3x the interpretive path;
* ``preemption_ab`` — the same KV-constrained ShareGPT trace (same seed) served under the
  recompute-only, swap-whenever-possible and cost-based hybrid preemption policies, recording
  goodput, preemption mix and KV transfer time; the acceptance flag
  ``hybrid_goodput_ge_recompute`` asserts the hybrid never loses to recompute-only;
* ``scheduling_ab`` — the same trace under FCFS vs. priority vs. SJF vs. max-min fairness
  admission; ``sjf_p99_ttft_improves`` asserts SJF cuts p99 TTFT vs. FCFS on this long-tail
  workload;
* ``cluster_ab`` — a prefill-heavy ShareGPT trace served at equal total GPU count by a
  co-located 4-replica cluster vs. a disaggregated 2-prefill + 2-decode cluster
  (DistServe-style KV handoff over the interconnect); ``disagg_p99_ttft_improves`` asserts
  disaggregation cuts p99 TTFT by removing prefill/decode interference;
* ``prefix_cache`` — the radix-tree prefix-caching A/B: one agent-swarm trace (every agent
  in a swarm shares the swarm's growing base context) served with the prefix cache on and
  off; ``p99_ttft_improves_ge_1_5x`` asserts fork-on-admit cuts p99 TTFT by at least 1.5x
  on this shared-prefix workload, and the simulated token counts are asserted identical
  between the two runs (the cache may only change *when* tokens appear, never *what* runs);
* ``scale`` — the fast-forward stress sections: a 20,000-request ShareGPT trace through one
  replica and a 4,000-request trace through a 16-replica co-located cluster behind the
  least-outstanding-tokens router (the O(1) incremental load counter's worst customer).
  These sizes run unchanged in ``--fast`` mode: analytic decode fast-forward is what makes
  them CI-viable at all;
* ``sweep`` — the process-parallel sweep engine (:mod:`repro.sweep`) over a 64-cell
  policy x kernel-backend grid, run serially and with 4 workers; the consolidated JSON is
  written next to this payload (``BENCH_sweep[.fast].json``) and
  ``parallel_matches_serial`` asserts the two executions produce byte-identical cells
  (wall clock is reported, not gated: the speedup is bounded by the runner's core count);
* ``sweep_grid`` — a 1,120-cell quant-format x kernel x kv_format grid (every registered
  system crossed with backend overrides) profiled end to end; ``cells_per_s`` is floored
  by ``benchmarks/check_perf_regression.py`` and the payload records the goodput-per-GPU
  vs. accuracy frontier summary;
* ``tracing`` — the telemetry overhead section: the ``trace_simulation`` workload re-run
  tracer-off (best of five — the null-tracer hooks must cost nothing; the regression gate
  floors ``off_vs_baseline_ratio``) and once tracer-on, asserting live that tracing leaves
  the simulated results bit-identical and that every per-request phase breakdown tiles its
  end-to-end latency exactly; the traced run's Chrome/Perfetto timeline is written next to
  the payload (``BENCH_trace[.fast].json``) and uploaded as a CI artifact;
* ``tensor_parallel_llama2_70b`` — the TP acceptance scenario (OOM on one GPU, finite on 4).

The payload always matches ``SCHEMA`` below (validated before writing; the tier-1 suite
re-validates the committed file), so the perf trajectory stays machine-comparable across PRs.

Run:  PYTHONPATH=src python benchmarks/bench_scheduler.py [--fast] [--dump-requests CSV]
                                                          [--profile]

``--fast`` shrinks the A/B traces for CI (same sections, same schema, smaller
``num_requests``) and writes to ``BENCH_scheduler.fast.json`` so the committed full-mode
trajectory is never overwritten by a CI or local fast run.  ``--dump-requests PATH``
additionally writes the ``trace_simulation`` run's per-request latency decomposition (TTFT,
TPOT, queue time, preemptions) as CSV for latency-distribution analysis.  ``--profile``
wraps the ``trace_simulation`` section in cProfile and prints the hottest functions —
the first place to look when ``harness.iterations_per_s`` regresses.
"""

import argparse
import copy
import cProfile
import csv
import json
import os
import pstats
import time

from repro.core import simulate_cluster, simulate_serving
from repro.reporting.schema import validate_payload as _validate_schema
from repro.serving import (
    ContinuousBatchingScheduler,
    ServingEngine,
    SloSpec,
    compute_slo_report,
)
from repro.serving.systems import list_systems
from repro.sweep import SINGLE_REPLICA, SweepGrid, cells_identical, run_sweep, write_sweep_json
from repro.telemetry import Tracer, request_breakdowns, write_chrome_trace
from repro.workloads.traces import LengthDistribution, agent_swarm_trace

RESULT_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_scheduler.json")
#: Fast mode writes here instead, so a CI/local --fast run can never overwrite the
#: committed full-size trajectory (which the tier-1 suite asserts is mode="full").
FAST_RESULT_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_scheduler.fast.json"
)
#: The sweep section's consolidated per-cell JSON (uploaded as a CI artifact next to the
#: bench payload; fast mode writes the ``.fast`` twin).
SWEEP_RESULT_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_sweep.json")
SWEEP_FAST_RESULT_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_sweep.fast.json"
)
#: The tracing section's Chrome/Perfetto timeline of the traced run (a CI artifact, so a
#: failed run's schedule can be inspected visually; fast mode writes the ``.fast`` twin).
TRACE_RESULT_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_trace.json")
TRACE_FAST_RESULT_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_trace.fast.json"
)

#: Shared A/B workload: a KV-constrained pool (device budget shrunk well below the 80 GB
#: derived default) so the ShareGPT long tail forces preemption churn, plus a host swap pool.
AB_KV_BUDGET_BYTES = 2 * 2**30
AB_HOST_KV_BUDGET_BYTES = 4 * 2**30
#: 20 rps keeps the constrained pool churning without tipping into overload collapse —
#: in sustained overload SJF trades tail TTFT for goodput, which is not the regime the
#: p99-TTFT acceptance criterion targets.
AB_ARRIVAL_RPS = 20.0
AB_SLO = SloSpec(ttft_s=2.0, tpot_s=0.1)
#: The preemption A/B runs on the FP16 system: its re-prefill pays full FP16 GEMM cost, so
#: the swap-vs-recompute trade-off is pronounced (on W4A8 systems re-prefill is so cheap the
#: two mechanisms nearly tie — the hybrid then correctly sticks to recompute).
AB_PREEMPTION_SYSTEM = "trt-fp16"

#: Cluster A/B workload: prefill-heavy ShareGPT shape (long prompts, short answers) at a
#: rate that keeps four replicas busy.  In the co-located baseline every prefill chunk
#: shares its iteration with resident decode batches (TTFT pays TPOT's bill); the
#: disaggregated fleet runs prefill on dedicated replicas and pays an explicit per-request
#: KV handoff over the interconnect instead.
CLUSTER_AB_PROMPTS = LengthDistribution.lognormal(median=1024.0, sigma=0.9, maximum=4096)
CLUSTER_AB_OUTPUTS = LengthDistribution.lognormal(median=64.0, sigma=0.8, maximum=512)
CLUSTER_AB_ARRIVAL_RPS = 24.0
CLUSTER_AB_TOTAL_REPLICAS = 4  # 4 co-located vs. 2 prefill + 2 decode

#: Scale sections (identical in fast and full mode — fast-forward is the point):
#: a 20k-request single-replica trace and a 16-replica cluster at a per-replica load
#: matching the single-replica trace (10 rps each).
SCALE_TRACE_REQUESTS = 20_000
SCALE_TRACE_RPS = 20.0
SCALE_CLUSTER_REQUESTS = 4_000
SCALE_CLUSTER_REPLICAS = 16
SCALE_CLUSTER_RPS = 160.0

#: Mixed-phase acceptance workload: KV-constrained *and* prefill-heavy (long prompts,
#: sizeable answers, hybrid preemption under a shrunk device pool), i.e. the regime where
#: PR 4's decode-only fast-forward never fired and the simulator ran interpretively at
#: ~43k it/s.  The harness runs it with fast-forward on and off; the acceptance flag
#: demands >= 3x between the two.
MIXED_PROMPTS = LengthDistribution.lognormal(median=1024.0, sigma=0.9, maximum=4096)
MIXED_OUTPUTS = LengthDistribution.lognormal(median=200.0, sigma=0.8, maximum=1024)
MIXED_ARRIVAL_RPS = 16.0

#: Prefix-cache A/B workload: an agent-swarm trace — every agent in a swarm prompts with
#: the swarm's shared base context plus the shared transcript of all prior steps, so the
#: shareable prefix *grows* as the swarm progresses (the regime RadixAttention targets).
#: Served on the default (unconstrained) device pool: the A/B isolates prefill savings,
#: the eviction path is exercised by the tier-1 suite under shrunk pools.
PREFIX_AB_ARRIVAL_RPS = 12.0

#: Sweep section grid: 64 cells (2 systems x 2 kernel-backend overrides x 2 KV-format
#: overrides x 2 preemption policies x 2 arrival rates x 2 cluster shapes) on the
#: KV-constrained workload, executed serially and with 4 worker processes.  Cell results
#: must match byte for byte — that determinism, not the runner-dependent wall-clock
#: ratio, is the gated acceptance criterion.
SWEEP_WORKERS = 4

#: Large-grid profiling section: every registered system crossed with kernel-backend and
#: KV-format overrides (``None`` = keep the system default), two scheduling and two
#: preemption policies and two arrival rates — 7 x 5 x 4 x 2 x 2 x 2 = 1,120 cells.
#: Small per-cell traces keep it CI-viable; ``cells_per_s`` is the throughput the
#: perf-regression gate floors.
GRID_KERNELS = (None, "fp16", "liquidgemm", "qserve-w4a8", "w4a16")
GRID_KV_FORMATS = (None, "fp8", "int8", "int4")
GRID_SCHEDULING = ("fcfs", "sjf")
GRID_PREEMPTIONS = ("recompute", "hybrid")
GRID_RATES = (15.0, 25.0)


def _sweep_grid(num_requests: int) -> SweepGrid:
    return SweepGrid(
        systems=("liquidserve", "trt-fp16"),
        kernels=(None, "liquidgemm"),
        kv_formats=(None, "int4"),
        preemption_policies=("recompute", "hybrid"),
        arrival_rates_rps=(15.0, 25.0),
        cluster_shapes=(
            SINGLE_REPLICA,
            {"mode": "colocated", "num_replicas": 2, "router": "least-tokens"},
        ),
        num_requests=num_requests,
        kv_budget_bytes=AB_KV_BUDGET_BYTES,
        host_kv_budget_bytes=AB_HOST_KV_BUDGET_BYTES,
        slo_ttft_s=AB_SLO.ttft_s,
        slo_tpot_s=AB_SLO.tpot_s,
    )


def _large_grid(num_requests: int) -> SweepGrid:
    return SweepGrid(
        systems=tuple(list_systems()),
        kernels=GRID_KERNELS,
        kv_formats=GRID_KV_FORMATS,
        scheduling_policies=GRID_SCHEDULING,
        preemption_policies=GRID_PREEMPTIONS,
        arrival_rates_rps=GRID_RATES,
        num_requests=num_requests,
        kv_budget_bytes=AB_KV_BUDGET_BYTES,
        host_kv_budget_bytes=AB_HOST_KV_BUDGET_BYTES,
        slo_ttft_s=AB_SLO.ttft_s,
        slo_tpot_s=AB_SLO.tpot_s,
    )

#: Documented result schema. Leaf values are the required types (``int`` also satisfies a
#: ``float`` leaf); nested dicts are required sub-objects; ``dict`` leaves are free-form.
SCHEMA = {
    "benchmark": str,
    "mode": str,  # "full" | "fast"
    "trace_simulation": {
        "workload": dict,
        "harness": {"wall_time_s": float, "iterations_per_s": float},
        "simulated": {
            "completed_requests": int,
            "generated_tokens": int,
            "throughput_tokens_per_s": float,
            "iterations": int,
            "prefill_chunks": int,
            "preemptions": int,
            "peak_batch_size": int,
            "peak_kv_utilization": float,
            "p50_ttft_s": float,
            "p99_ttft_s": float,
            "p50_tpot_s": float,
            "p99_tpot_s": float,
            "slo_attainment": float,
            "goodput_rps": float,
        },
    },
    "mixed_phase": {
        "workload": dict,
        "harness": {
            "wall_time_s": float,
            "iterations_per_s": float,
            "stepwise_wall_time_s": float,
            "stepwise_iterations_per_s": float,
            "speedup_vs_stepwise": float,
        },
        "simulated": dict,  # same summary fields as trace_simulation.simulated
        "speedup_ge_3x": bool,
    },
    "preemption_ab": {
        "workload": dict,
        "policies": dict,  # policy name -> per-policy metrics
        "hybrid_goodput_ge_recompute": bool,
    },
    "scheduling_ab": {
        "workload": dict,
        "policies": dict,  # policy name -> per-policy metrics
        "sjf_p99_ttft_improves": bool,
    },
    "cluster_ab": {
        "workload": dict,
        "configs": dict,  # "colocated" / "disaggregated" -> per-config metrics
        "disagg_p99_ttft_improves": bool,
    },
    "prefix_cache": {
        "workload": dict,
        "harness": {"wall_time_s": float, "iterations_per_s": float},
        "configs": dict,  # "cache_on" / "cache_off" -> per-config metrics
        "p99_ttft_speedup": float,
        "p99_ttft_improves_ge_1_5x": bool,
    },
    "scale": {
        "trace": {
            "workload": dict,
            "harness": {"wall_time_s": float, "iterations_per_s": float},
            "simulated": dict,  # same summary fields as trace_simulation.simulated
        },
        "cluster": {
            "workload": dict,
            "harness": {"wall_time_s": float, "iterations_per_s": float},
            "summary": dict,  # cluster-level throughput / SLO metrics
        },
    },
    "sweep": {
        "grid": dict,
        "num_cells": int,
        "workers": int,
        "cpu_count": int,
        "serial_wall_s": float,
        "parallel_wall_s": float,
        "speedup": float,
        "cells_per_s": float,
        "parallel_matches_serial": bool,
        "consolidated_json": str,
    },
    "sweep_grid": {
        "workload": dict,
        "num_cells": int,
        "workers": int,
        "wall_time_s": float,
        "cells_per_s": float,
        "frontier_points": int,
        "dominated_cells": int,
        "best_config": dict,  # the frontier's top goodput-per-GPU point
    },
    "tracing": {
        "workload": dict,
        "harness": {
            "wall_time_s": float,             # best-of-5, tracer off (the null path)
            "iterations_per_s": float,
            "traced_wall_time_s": float,      # single tracer-on run
            "off_vs_baseline_ratio": float,   # trace_simulation wall / tracer-off wall
        },
        "events": int,
        "counter_samples": int,
        "bit_identical": bool,       # tracer-on simulated results == tracer-off, live
        "breakdowns_exact": bool,    # every phase breakdown tiles its e2e latency
        "trace_artifact": str,
    },
    "tensor_parallel_llama2_70b": {
        "single_gpu_oom": bool,
        "tp4_peak_tokens_per_s": float,
        "tp4_peak_batch": int,
        "tp4_weights_per_gpu_gb": float,
        "wall_time_s": float,
    },
}


def validate_payload(payload, schema=SCHEMA, path="$"):
    """Assert ``payload`` matches ``schema`` (the shared validator of
    :mod:`repro.reporting.schema`, defaulted to this harness's ``SCHEMA``)."""
    _validate_schema(payload, schema, path)


def _simulated_summary(sim) -> dict:
    stats, report = sim.stats, sim.slo
    return {
        "completed_requests": stats.completed_requests,
        "generated_tokens": stats.generated_tokens,
        "throughput_tokens_per_s": round(stats.throughput_tokens_per_s, 1),
        "iterations": stats.num_iterations,
        "prefill_chunks": stats.prefill_chunks,
        "preemptions": stats.preemptions,
        "peak_batch_size": stats.peak_batch_size,
        "peak_kv_utilization": round(stats.peak_kv_utilization, 4),
        "p50_ttft_s": round(report.p50_ttft_s, 4),
        "p99_ttft_s": round(report.p99_ttft_s, 4),
        "p50_tpot_s": round(report.p50_tpot_s, 5),
        "p99_tpot_s": round(report.p99_tpot_s, 5),
        "slo_attainment": round(report.attainment, 4),
        "goodput_rps": round(report.goodput_rps, 2),
    }


def _warm_up() -> None:
    """One tiny throwaway simulation before any timed section.

    First use pays one-time costs that are not the scheduler's (NumPy RNG and ufunc
    initialization, kernel cost-model setup); ``harness.iterations_per_s`` is meant to
    track the simulator hot loop, so those are paid here, outside every timer.
    """
    simulate_serving("liquidserve", "llama2-7b", num_requests=4, arrival_rate_rps=20.0,
                     seed=0)


def bench_trace_simulation(num_requests: int, profile: bool = False):
    """Returns the payload section plus the simulation (for ``--dump-requests``).

    ``harness.wall_time_s`` is the best of five runs: the simulation is deterministic
    (identical stats every run), so run-to-run wall variance is host noise and the
    minimum is the cleanest estimate of what the simulator costs.
    """
    profiler = cProfile.Profile() if profile else None
    if profiler is not None:
        profiler.enable()
    wall_s = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        sim = simulate_serving(
            "liquidserve",
            "llama2-7b",
            num_requests=num_requests,
            arrival_rate_rps=20.0,
            seed=0,
            slo=AB_SLO,
        )
        wall_s = min(wall_s, time.perf_counter() - start)
    if profiler is not None:
        profiler.disable()
        print("== trace_simulation profile (top 25 by cumulative time) ==")
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(25)
    return sim, {
        "workload": {
            "system": sim.system,
            "model": sim.model,
            "device": "H800",
            "num_requests": sim.num_requests,
            "arrival": "poisson-20rps",
            "lengths": "sharegpt-lognormal",
            "slo": {"ttft_s": AB_SLO.ttft_s, "tpot_s": AB_SLO.tpot_s},
        },
        "harness": {
            "wall_time_s": round(wall_s, 3),
            "iterations_per_s": round(sim.stats.num_iterations / wall_s, 1),
        },
        "simulated": _simulated_summary(sim),
    }


def bench_mixed_phase(num_requests: int) -> dict:
    """The mixed-phase fast-forward acceptance section: fast vs. interpretive execution.

    Both measurements are best-of-three on the identical (seeded) workload; the simulated
    numbers are asserted byte-identical between the two modes before anything is reported
    — a wall-clock win that changed results would be a bug, not a speedup.
    """
    kwargs = dict(
        num_requests=num_requests,
        arrival_rate_rps=MIXED_ARRIVAL_RPS,
        seed=0,
        prompt_lengths=MIXED_PROMPTS,
        output_lengths=MIXED_OUTPUTS,
        kv_budget_bytes=AB_KV_BUDGET_BYTES,
        host_kv_budget_bytes=AB_HOST_KV_BUDGET_BYTES,
        preemption_policy="hybrid",
        slo=AB_SLO,
    )

    def best_of(n, **extra):
        wall, sim = float("inf"), None
        for _ in range(n):
            start = time.perf_counter()
            sim = simulate_serving("liquidserve", "llama2-7b", **kwargs, **extra)
            wall = min(wall, time.perf_counter() - start)
        return sim, wall

    fast, fast_wall = best_of(3)
    stepwise, stepwise_wall = best_of(3, fast_forward=False)
    if (
        fast.stats.simulated_time_s != stepwise.stats.simulated_time_s
        or fast.stats.num_iterations != stepwise.stats.num_iterations
        or fast.slo != stepwise.slo
    ):  # pragma: no cover - pinned by the equivalence test suite
        raise SystemExit("mixed_phase: fast-forward diverged from stepwise execution")
    iterations = fast.stats.num_iterations
    speedup = stepwise_wall / fast_wall
    return {
        "workload": {
            "system": fast.system,
            "model": fast.model,
            "device": "H800",
            "num_requests": num_requests,
            "arrival": f"poisson-{MIXED_ARRIVAL_RPS:g}rps",
            "lengths": "kv-constrained prefill-heavy (prompts ~1024, outputs ~200)",
            "seed": 0,
            "kv_budget_mb": AB_KV_BUDGET_BYTES // 2**20,
            "host_kv_budget_mb": AB_HOST_KV_BUDGET_BYTES // 2**20,
            "preemption_policy": "hybrid",
            "slo": {"ttft_s": AB_SLO.ttft_s, "tpot_s": AB_SLO.tpot_s},
        },
        "harness": {
            "wall_time_s": round(fast_wall, 4),
            "iterations_per_s": round(iterations / fast_wall, 1),
            "stepwise_wall_time_s": round(stepwise_wall, 4),
            "stepwise_iterations_per_s": round(iterations / stepwise_wall, 1),
            "speedup_vs_stepwise": round(speedup, 2),
        },
        "simulated": _simulated_summary(fast),
        # The flag compares raw walls: payload rounding must not flip a CI verdict.
        "speedup_ge_3x": stepwise_wall >= 3.0 * fast_wall,
    }


def bench_sweep(num_requests: int, fast_mode: bool) -> dict:
    """The process-parallel sweep section: 64 grid cells, serial vs. 4 workers.

    Writes the parallel run's consolidated JSON next to the bench payload.  The gated
    flag is determinism (parallel cells byte-identical to serial); the speedup is
    reported for the trajectory but bounded by the runner's cores, so it is not gated.
    """
    grid = _sweep_grid(num_requests)
    start = time.perf_counter()
    serial = run_sweep(grid, parallel=False)
    serial_wall = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_sweep(grid, max_workers=SWEEP_WORKERS)
    parallel_wall = time.perf_counter() - start
    sweep_path = write_sweep_json(
        parallel, SWEEP_FAST_RESULT_PATH if fast_mode else SWEEP_RESULT_PATH
    )
    return {
        "grid": serial["grid"],
        "num_cells": serial["num_cells"],
        "workers": SWEEP_WORKERS,
        "cpu_count": os.cpu_count() or 1,
        "serial_wall_s": round(serial_wall, 3),
        "parallel_wall_s": round(parallel_wall, 3),
        "speedup": round(serial_wall / parallel_wall, 2),
        "cells_per_s": round(serial["num_cells"] / parallel_wall, 2),
        "parallel_matches_serial": cells_identical(serial, parallel),
        "consolidated_json": os.path.basename(sweep_path),
    }


def bench_sweep_grid(num_requests: int) -> dict:
    """Profile a >= 1,000-cell quant-format x kernel x kv_format grid end to end.

    Every registered system crossed with kernel-backend overrides: the workload the
    unified backend layer exists for (engines are cached per (system, kernel, kv_format)
    configuration in each worker).  ``cells_per_s`` is gated by
    ``benchmarks/check_perf_regression.py`` against ``perf_baseline.json`` — a backend
    resolution accidentally moved into the per-cell path would crater it.
    """
    grid = _large_grid(num_requests)
    start = time.perf_counter()
    payload = run_sweep(grid, max_workers=SWEEP_WORKERS)
    wall_s = time.perf_counter() - start
    frontier = payload["frontier"]
    return {
        "workload": {
            "model": "llama2-7b",
            "device": "H800",
            "systems": len(grid.systems),
            "kernels": len(grid.kernels),
            "kv_formats": len(grid.kv_formats),
            "scheduling_policies": len(grid.scheduling_policies),
            "preemption_policies": len(grid.preemption_policies),
            "arrival_rates": len(grid.arrival_rates_rps),
            "num_requests_per_cell": num_requests,
            "kv_budget_mb": AB_KV_BUDGET_BYTES // 2**20,
            "slo": {"ttft_s": AB_SLO.ttft_s, "tpot_s": AB_SLO.tpot_s},
        },
        "num_cells": payload["num_cells"],
        "workers": SWEEP_WORKERS,
        "wall_time_s": round(wall_s, 3),
        "cells_per_s": round(payload["num_cells"] / wall_s, 1),
        "frontier_points": frontier["num_points"],
        "dominated_cells": frontier["dominated_cells"],
        "best_config": dict(frontier["points"][0]) if frontier["points"] else {},
    }


def _ab_workload(num_requests: int) -> dict:
    return {
        "system": "liquidserve",
        "model": "llama2-7b",
        "device": "H800",
        "num_requests": num_requests,
        "arrival": f"poisson-{AB_ARRIVAL_RPS:g}rps",
        "lengths": "sharegpt-lognormal",
        "seed": 0,
        "kv_budget_mb": AB_KV_BUDGET_BYTES // 2**20,
        "host_kv_budget_mb": AB_HOST_KV_BUDGET_BYTES // 2**20,
        "slo": {"ttft_s": AB_SLO.ttft_s, "tpot_s": AB_SLO.tpot_s},
    }


def bench_preemption_ab(num_requests: int) -> dict:
    """Recompute vs. swap vs. cost-based hybrid on the same KV-constrained trace."""
    policies = {}
    raw_goodput = {}
    for policy in ("recompute", "swap", "hybrid"):
        start = time.perf_counter()
        sim = simulate_serving(
            AB_PREEMPTION_SYSTEM,
            "llama2-7b",
            num_requests=num_requests,
            arrival_rate_rps=AB_ARRIVAL_RPS,
            seed=0,
            kv_budget_bytes=AB_KV_BUDGET_BYTES,
            host_kv_budget_bytes=AB_HOST_KV_BUDGET_BYTES,
            preemption_policy=policy,
            slo=AB_SLO,
        )
        wall_s = time.perf_counter() - start
        stats = sim.stats
        raw_goodput[policy] = sim.slo.goodput_rps
        policies[policy] = dict(
            _simulated_summary(sim),
            swap_preemptions=stats.swap_preemptions,
            recompute_preemptions=stats.recompute_preemptions,
            swap_ins=stats.swap_ins,
            kv_transfer_s=round(stats.kv_transfer_s, 4),
            peak_host_kv_utilization=round(stats.peak_host_kv_utilization, 4),
            wall_time_s=round(wall_s, 3),
        )
    return {
        "workload": dict(_ab_workload(num_requests), system=AB_PREEMPTION_SYSTEM),
        "policies": policies,
        # Flags compare the raw simulator values: rounding for the payload must not be
        # able to flip a CI-gating verdict either way.
        "hybrid_goodput_ge_recompute": raw_goodput["hybrid"] >= raw_goodput["recompute"],
    }


def bench_scheduling_ab(num_requests: int) -> dict:
    """FCFS vs. priority vs. SJF vs. max-min fairness on the same constrained trace."""
    policies = {}
    raw_p99_ttft = {}
    for policy in ("fcfs", "priority", "sjf", "fairness"):
        start = time.perf_counter()
        sim = simulate_serving(
            "liquidserve",
            "llama2-7b",
            num_requests=num_requests,
            arrival_rate_rps=AB_ARRIVAL_RPS,
            seed=0,
            kv_budget_bytes=AB_KV_BUDGET_BYTES,
            host_kv_budget_bytes=AB_HOST_KV_BUDGET_BYTES,
            scheduling_policy=policy,
            preemption_policy="hybrid",
            num_priority_levels=4,
            slo=AB_SLO,
        )
        wall_s = time.perf_counter() - start
        raw_p99_ttft[policy] = sim.slo.p99_ttft_s
        policies[policy] = dict(
            _simulated_summary(sim), wall_time_s=round(wall_s, 3)
        )
    return {
        "workload": dict(_ab_workload(num_requests), num_priority_levels=4),
        "policies": policies,
        "sjf_p99_ttft_improves": raw_p99_ttft["sjf"] < raw_p99_ttft["fcfs"],
    }


def _cluster_summary(sim, wall_s: float) -> dict:
    result, report = sim.result, sim.slo
    return {
        "router": sim.router,
        "replica_roles": ",".join(result.replica_roles),
        "completed_requests": result.completed_requests,
        "generated_tokens": result.generated_tokens,
        "throughput_tokens_per_s": round(result.throughput_tokens_per_s, 1),
        "p50_ttft_s": round(report.p50_ttft_s, 4),
        "p99_ttft_s": round(report.p99_ttft_s, 4),
        "p50_tpot_s": round(report.p50_tpot_s, 5),
        "p99_tpot_s": round(report.p99_tpot_s, 5),
        "mean_queue_time_s": round(report.mean_queue_time_s, 5),
        "slo_attainment": round(report.attainment, 4),
        "goodput_rps": round(report.goodput_rps, 2),
        "kv_handoffs": result.kv_handoffs,
        "kv_handoff_gb": round(result.kv_handoff_bytes / 2**30, 3),
        "kv_handoff_s": round(result.kv_handoff_s, 4),
        "wall_time_s": round(wall_s, 3),
    }


def bench_cluster_ab(num_requests: int) -> dict:
    """Co-located vs. disaggregated prefill/decode at equal total GPU count."""
    kwargs = dict(
        num_requests=num_requests,
        arrival_rate_rps=CLUSTER_AB_ARRIVAL_RPS,
        seed=0,
        prompt_lengths=CLUSTER_AB_PROMPTS,
        output_lengths=CLUSTER_AB_OUTPUTS,
        slo=AB_SLO,
    )
    configs = {}
    raw_p99_ttft = {}
    start = time.perf_counter()
    colocated = simulate_cluster(
        "liquidserve", "llama2-7b",
        mode="colocated",
        num_replicas=CLUSTER_AB_TOTAL_REPLICAS,
        router="least-tokens",  # the strongest co-located baseline, not a strawman
        **kwargs,
    )
    configs["colocated"] = _cluster_summary(colocated, time.perf_counter() - start)
    raw_p99_ttft["colocated"] = colocated.slo.p99_ttft_s
    start = time.perf_counter()
    disaggregated = simulate_cluster(
        "liquidserve", "llama2-7b",
        mode="disaggregated",
        num_prefill_replicas=CLUSTER_AB_TOTAL_REPLICAS // 2,
        num_decode_replicas=CLUSTER_AB_TOTAL_REPLICAS // 2,
        **kwargs,
    )
    configs["disaggregated"] = _cluster_summary(disaggregated, time.perf_counter() - start)
    raw_p99_ttft["disaggregated"] = disaggregated.slo.p99_ttft_s
    return {
        "workload": {
            "system": "liquidserve",
            "model": "llama2-7b",
            "device": "H800",
            "num_requests": num_requests,
            "arrival": f"poisson-{CLUSTER_AB_ARRIVAL_RPS:g}rps",
            "lengths": "prefill-heavy-lognormal (prompts ~1024, outputs ~64)",
            "seed": 0,
            "total_replicas": CLUSTER_AB_TOTAL_REPLICAS,
            "slo": {"ttft_s": AB_SLO.ttft_s, "tpot_s": AB_SLO.tpot_s},
        },
        "configs": configs,
        "disagg_p99_ttft_improves":
            raw_p99_ttft["disaggregated"] < raw_p99_ttft["colocated"],
    }


def bench_prefix_cache(num_swarms: int, agents_per_swarm: int,
                       steps_per_swarm: int) -> dict:
    """Radix prefix-cache A/B: one agent-swarm trace with fork-on-admit on and off.

    Both runs are best-of-three on the identical trace (requests copied per run — the
    scheduler mutates them).  The cache must not change *what* is served, only when:
    completed requests and generated tokens are asserted identical before anything is
    reported.  The acceptance flag compares the raw p99 TTFTs, so payload rounding
    cannot flip the CI verdict.
    """
    trace = agent_swarm_trace(
        num_swarms, agents_per_swarm, steps_per_swarm, PREFIX_AB_ARRIVAL_RPS, seed=0,
    )

    def best_of(prefix_caching):
        wall, stats = float("inf"), None
        for _ in range(3):
            scheduler = ContinuousBatchingScheduler(
                ServingEngine("liquidserve", "llama2-7b"),
                prefix_caching=prefix_caching,
            )
            requests = [copy.copy(r) for r in trace]
            start = time.perf_counter()
            stats = scheduler.run(requests)
            wall = min(wall, time.perf_counter() - start)
        report = compute_slo_report(stats.requests, AB_SLO, stats.simulated_time_s)
        return stats, report, wall

    on_stats, on_report, on_wall = best_of(True)
    off_stats, off_report, off_wall = best_of(False)
    if (
        on_stats.completed_requests != off_stats.completed_requests
        or on_stats.generated_tokens != off_stats.generated_tokens
    ):  # pragma: no cover - pinned by the tier-1 suite
        raise SystemExit("prefix_cache: caching changed the served population")

    def summarize(stats, report, wall_s):
        return {
            "completed_requests": stats.completed_requests,
            "generated_tokens": stats.generated_tokens,
            "throughput_tokens_per_s": round(stats.throughput_tokens_per_s, 1),
            "iterations": stats.num_iterations,
            "prefill_chunks": stats.prefill_chunks,
            "p50_ttft_s": round(report.p50_ttft_s, 4),
            "p99_ttft_s": round(report.p99_ttft_s, 4),
            "goodput_rps": round(report.goodput_rps, 2),
            "prefix_hit_rate": round(stats.prefix_hit_rate, 4),
            "prefix_saved_tokens": stats.prefix_saved_tokens,
            "prefix_blocks_inserted": stats.prefix_blocks_inserted,
            "prefix_blocks_evicted": stats.prefix_blocks_evicted,
            "wall_time_s": round(wall_s, 4),
        }

    return {
        "workload": {
            "system": "liquidserve",
            "model": "llama2-7b",
            "device": "H800",
            "trace": "agent-swarm",
            "num_swarms": num_swarms,
            "agents_per_swarm": agents_per_swarm,
            "steps_per_swarm": steps_per_swarm,
            "num_requests": len(trace),
            "arrival": f"swarm-steps-{PREFIX_AB_ARRIVAL_RPS:g}rps",
            "seed": 0,
            "slo": {"ttft_s": AB_SLO.ttft_s, "tpot_s": AB_SLO.tpot_s},
        },
        "harness": {
            "wall_time_s": round(on_wall, 4),
            "iterations_per_s": round(on_stats.num_iterations / on_wall, 1),
        },
        "configs": {
            "cache_on": summarize(on_stats, on_report, on_wall),
            "cache_off": summarize(off_stats, off_report, off_wall),
        },
        "p99_ttft_speedup": round(off_report.p99_ttft_s / on_report.p99_ttft_s, 2),
        "p99_ttft_improves_ge_1_5x":
            off_report.p99_ttft_s >= 1.5 * on_report.p99_ttft_s,
    }


def bench_scale() -> dict:
    """Fast-forward stress sections: the workloads stepwise execution cannot serve in CI.

    Sizes are identical in fast and full mode — the entire point of the analytic
    fast-forward layer is that a 20k-request trace and a 16-replica fleet finish in
    seconds, so the committed and CI numbers exercise the same workload.
    """
    start = time.perf_counter()
    sim = simulate_serving(
        "liquidserve",
        "llama2-7b",
        num_requests=SCALE_TRACE_REQUESTS,
        arrival_rate_rps=SCALE_TRACE_RPS,
        seed=0,
        slo=AB_SLO,
    )
    trace_wall_s = time.perf_counter() - start
    trace_section = {
        "workload": {
            "system": sim.system,
            "model": sim.model,
            "device": "H800",
            "num_requests": sim.num_requests,
            "arrival": f"poisson-{SCALE_TRACE_RPS:g}rps",
            "lengths": "sharegpt-lognormal",
            "seed": 0,
        },
        "harness": {
            "wall_time_s": round(trace_wall_s, 3),
            "iterations_per_s": round(sim.stats.num_iterations / trace_wall_s, 1),
        },
        "simulated": _simulated_summary(sim),
    }

    start = time.perf_counter()
    cluster = simulate_cluster(
        "liquidserve",
        "llama2-7b",
        mode="colocated",
        num_replicas=SCALE_CLUSTER_REPLICAS,
        router="least-tokens",  # polls every replica's load per dispatch: O(1) or bust
        num_requests=SCALE_CLUSTER_REQUESTS,
        arrival_rate_rps=SCALE_CLUSTER_RPS,
        seed=0,
        slo=AB_SLO,
    )
    cluster_wall_s = time.perf_counter() - start
    cluster_iterations = sum(s.num_iterations for s in cluster.replica_stats)
    cluster_section = {
        "workload": {
            "system": cluster.system,
            "model": cluster.model,
            "device": "H800",
            "num_requests": SCALE_CLUSTER_REQUESTS,
            "arrival": f"poisson-{SCALE_CLUSTER_RPS:g}rps",
            "lengths": "sharegpt-lognormal",
            "seed": 0,
            "num_replicas": SCALE_CLUSTER_REPLICAS,
            "router": cluster.router,
        },
        "harness": {
            "wall_time_s": round(cluster_wall_s, 3),
            "iterations_per_s": round(cluster_iterations / cluster_wall_s, 1),
        },
        "summary": {
            "completed_requests": cluster.result.completed_requests,
            "generated_tokens": cluster.result.generated_tokens,
            "throughput_tokens_per_s": round(cluster.throughput_tokens_per_s, 1),
            "iterations": cluster_iterations,
            "p50_ttft_s": round(cluster.slo.p50_ttft_s, 4),
            "p99_ttft_s": round(cluster.slo.p99_ttft_s, 4),
            "p99_tpot_s": round(cluster.slo.p99_tpot_s, 5),
            "slo_attainment": round(cluster.slo.attainment, 4),
            "goodput_rps": round(cluster.slo.goodput_rps, 2),
        },
    }
    return {"trace": trace_section, "cluster": cluster_section}


def dump_requests_csv(sim, path: str) -> None:
    """Write the per-request latency decomposition of one simulation as CSV."""
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([
            "request_id", "output_tokens", "ttft_s", "tpot_s", "latency_s",
            "queue_time_s", "preemptions",
        ])
        for m in sim.per_request:
            writer.writerow([
                m.request_id, m.output_tokens, f"{m.ttft_s:.6f}", f"{m.tpot_s:.6f}",
                f"{m.latency_s:.6f}", f"{m.queue_time_s:.6f}", m.preemptions,
            ])


def bench_tracing(num_requests: int, baseline_wall_s: float, fast_mode: bool) -> dict:
    """Telemetry overhead and correctness on the ``trace_simulation`` workload.

    Re-measures the identical workload tracer-off (best of five, like the baseline
    section) so ``off_vs_baseline_ratio`` isolates what the null-tracer hooks cost —
    the ``is None`` guards threaded through the scheduler hot loop must be free, and
    ``check_perf_regression.py`` floors the ratio.  Then one tracer-on run asserts,
    live, the two contracts the telemetry subsystem is built on: simulated results
    bit-identical to the untraced run, and every request's phase breakdown tiling its
    end-to-end latency exactly.  The traced timeline is written as a Chrome/Perfetto
    JSON artifact next to the payload.
    """
    kwargs = dict(
        num_requests=num_requests, arrival_rate_rps=20.0, seed=0, slo=AB_SLO,
    )
    off_wall, off_sim = float("inf"), None
    for _ in range(5):
        start = time.perf_counter()
        off_sim = simulate_serving("liquidserve", "llama2-7b", **kwargs)
        off_wall = min(off_wall, time.perf_counter() - start)

    tracer = Tracer(label="bench_trace_simulation")
    start = time.perf_counter()
    on_sim = simulate_serving("liquidserve", "llama2-7b", tracer=tracer, **kwargs)
    on_wall = time.perf_counter() - start

    bit_identical = (
        on_sim.per_request == off_sim.per_request
        and on_sim.stats.num_iterations == off_sim.stats.num_iterations
        and on_sim.stats.generated_tokens == off_sim.stats.generated_tokens
        and on_sim.stats.throughput_tokens_per_s
        == off_sim.stats.throughput_tokens_per_s
    )
    if not bit_identical:  # pragma: no cover - pinned by the tier-1 suite
        raise SystemExit("tracing: tracer-on run diverged from tracer-off run")
    breakdowns = request_breakdowns(tracer)
    breakdowns_exact = len(breakdowns) == len(on_sim.per_request) and all(
        bd.is_exact for bd in breakdowns
    )
    artifact = os.path.abspath(
        TRACE_FAST_RESULT_PATH if fast_mode else TRACE_RESULT_PATH
    )
    write_chrome_trace(tracer, artifact, breakdowns)
    return {
        "workload": {
            "system": on_sim.system,
            "model": on_sim.model,
            "device": "H800",
            "num_requests": num_requests,
            "arrival": "poisson-20rps",
            "lengths": "sharegpt-lognormal",
            "seed": 0,
            "slo": {"ttft_s": AB_SLO.ttft_s, "tpot_s": AB_SLO.tpot_s},
        },
        "harness": {
            "wall_time_s": round(off_wall, 4),
            "iterations_per_s": round(off_sim.stats.num_iterations / off_wall, 1),
            "traced_wall_time_s": round(on_wall, 4),
            # >= 1.0 means this tracer-off re-measure matched (or beat) the
            # trace_simulation section's wall; the gate floors the raw ratio.
            "off_vs_baseline_ratio": round(baseline_wall_s / off_wall, 3),
        },
        "events": tracer.num_events,
        "counter_samples": len(tracer.counters),
        "bit_identical": bit_identical,
        "breakdowns_exact": breakdowns_exact,
        "trace_artifact": os.path.basename(artifact),
    }


def bench_tensor_parallel() -> dict:
    """Llama2-70B FP16: OOM on one GPU, finite peak throughput on four.

    No fast-mode trimming: ``peak_throughput`` always sweeps the memory-limit batch too,
    and the whole section runs in well under a second.
    """
    single = ServingEngine("trt-fp16", "llama2-70b")
    sharded = ServingEngine("trt-fp16", "llama2-70b", tp_degree=4)
    start = time.perf_counter()
    result = sharded.peak_throughput(batch_sizes=[1, 16, 64, 128, 256])
    wall_s = time.perf_counter() - start
    return {
        "single_gpu_oom": single.peak_throughput(batch_sizes=[1, 16, 64]).oom,
        "tp4_peak_tokens_per_s": round(result.peak_throughput, 1),
        "tp4_peak_batch": result.peak_batch_size,
        "tp4_weights_per_gpu_gb": round(sharded.weight_memory_bytes() / 2**30, 2),
        "wall_time_s": round(wall_s, 3),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="shrink traces for CI (same sections and schema)")
    parser.add_argument("--dump-requests", metavar="CSV",
                        help="write the trace_simulation per-request metrics to this CSV")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile the trace_simulation section and print hot spots")
    args = parser.parse_args()
    trace_requests = 120 if args.fast else 500
    ab_requests = 100 if args.fast else 300
    cluster_requests = 60 if args.fast else 200
    mixed_requests = 150 if args.fast else 300
    sweep_requests = 40 if args.fast else 150
    grid_requests = 8 if args.fast else 12
    # swarms x agents x steps requests; the full trace is 4*6*5 = 120 requests.
    prefix_shape = (2, 4, 3) if args.fast else (4, 6, 5)

    _warm_up()
    trace_sim, trace_section = bench_trace_simulation(trace_requests,
                                                      profile=args.profile)
    payload = {
        "benchmark": "bench_scheduler",
        "mode": "fast" if args.fast else "full",
        "trace_simulation": trace_section,
        "mixed_phase": bench_mixed_phase(mixed_requests),
        "preemption_ab": bench_preemption_ab(ab_requests),
        "scheduling_ab": bench_scheduling_ab(ab_requests),
        "cluster_ab": bench_cluster_ab(cluster_requests),
        "prefix_cache": bench_prefix_cache(*prefix_shape),
        "scale": bench_scale(),
        "sweep": bench_sweep(sweep_requests, fast_mode=args.fast),
        "sweep_grid": bench_sweep_grid(grid_requests),
        "tracing": bench_tracing(
            trace_requests,
            baseline_wall_s=trace_section["harness"]["wall_time_s"],
            fast_mode=args.fast,
        ),
        "tensor_parallel_llama2_70b": bench_tensor_parallel(),
    }
    validate_payload(payload)
    if args.dump_requests:
        dump_requests_csv(trace_sim, args.dump_requests)
        print(f"wrote per-request metrics to {os.path.abspath(args.dump_requests)}")
    path = os.path.abspath(FAST_RESULT_PATH if args.fast else RESULT_PATH)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {path}")
    # The acceptance criteria are checked live (every run, both modes), not just against
    # the committed result, so CI catches a behavioral regression the moment it lands.
    failed = [
        flag
        for section, flag in (
            ("mixed_phase", "speedup_ge_3x"),
            ("preemption_ab", "hybrid_goodput_ge_recompute"),
            ("scheduling_ab", "sjf_p99_ttft_improves"),
            ("cluster_ab", "disagg_p99_ttft_improves"),
            ("prefix_cache", "p99_ttft_improves_ge_1_5x"),
            ("sweep", "parallel_matches_serial"),
            ("tracing", "bit_identical"),
            ("tracing", "breakdowns_exact"),
        )
        if not payload[section][flag]
    ]
    if failed:
        raise SystemExit(f"acceptance criteria failed: {', '.join(failed)}")


if __name__ == "__main__":
    main()
