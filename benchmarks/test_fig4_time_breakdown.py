"""Figure 4: GEMM / Attention / Others share of end-to-end inference time.

Regenerates the decode-step time breakdown across batch sizes for LLaMA2-7B and Mixtral-8x7B
at input lengths 128 and 1024 (the paper's two settings), using the FP16 serving
configuration of the motivation study.  The paper's observations to preserve: GEMM dominates
at small batch, remains >20% at large batch with long sequences on LLaMA2-7B, and stays the
primary contributor for Mixtral because of the per-expert GEMMs.
"""

import pytest

from repro.reporting import format_table
from repro.serving import ServingEngine
from repro.workloads import PAPER_BATCH_SIZES


def build_breakdown(model_name, input_len):
    system = "trt-fp16" if model_name == "llama2-7b" else "trt-fp8"
    engine = ServingEngine(system, model_name)
    rows = []
    for batch in PAPER_BATCH_SIZES:
        if batch > engine.max_batch_size(input_len + 128):
            rows.append((batch, None))
            continue
        breakdown = engine.layer_breakdown(batch, input_len)
        rows.append((batch, breakdown.fractions()))
    return rows


@pytest.mark.parametrize("model_name", ["llama2-7b", "mixtral-8x7b"])
@pytest.mark.parametrize("input_len", [128, 1024])
def test_fig4_time_breakdown(benchmark, emit, model_name, input_len):
    rows = benchmark(build_breakdown, model_name, input_len)
    table_rows = []
    for batch, fractions in rows:
        if fractions is None:
            table_rows.append([batch, "OOM", "OOM", "OOM"])
        else:
            table_rows.append([batch, fractions["gemm"], fractions["attention"], fractions["others"]])
    text = format_table(
        ["batch", "GEMM", "Attention", "Others"],
        table_rows,
        title=f"Figure 4 — decode time breakdown, {model_name}, input length {input_len}",
    )
    emit(f"fig4_breakdown_{model_name}_len{input_len}", text)

    fractions = {batch: f for batch, f in rows if f is not None}
    smallest = min(fractions)
    # GEMM dominates the smallest batch.
    assert fractions[smallest]["gemm"] > 0.5
    # GEMM stays above 20% at the largest feasible batch (Figure 4's observation).
    largest = max(fractions)
    assert fractions[largest]["gemm"] > 0.2
    if model_name == "mixtral-8x7b":
        # MoE keeps GEMM the largest single contributor across all batch sizes.
        for f in fractions.values():
            assert f["gemm"] >= max(f["attention"], f["others"]) * 0.9
