"""Figure 12: GEMM latency of all kernels on single-layer workloads, batch 4-256.

The unified kernel comparison: FP16, W8A8, FP8, W4A16, QServe W4A8 and LiquidGEMM on the
fused QKV / output-projection / FFN GEMMs of LLaMA2-7B, LLaMA2-13B, LLaMA2-70B and
Mixtral-8x7B.  The relationships that must reproduce: LiquidGEMM ~2-3x faster than QServe at
batch 256, 1.1-1.6x faster than the TRT kernels in the compute-bound regime, and 4-bit
kernels winning the memory-bound (small batch) regime.
"""

import pytest

from repro.kernels import default_comparison_set
from repro.reporting import format_series
from repro.serving import get_model
from repro.workloads import PAPER_BATCH_SIZES, decode_layer_gemms

MODELS = ["llama2-7b", "llama2-13b", "llama2-70b", "mixtral-8x7b"]


def layer_latency_us(kernel, model, batch):
    gemms = decode_layer_gemms(model, batch)
    if model.is_moe:
        total = sum(kernel.estimate(s, "H800").latency_s for s in gemms.attention_gemms())
        total += kernel.estimate(gemms.gate_up[0], "H800", group_sizes=gemms.gate_up).latency_s
        total += kernel.estimate(gemms.down[0], "H800", group_sizes=gemms.down).latency_s
    else:
        total = sum(kernel.estimate(s, "H800").latency_s for s in gemms.all())
    return total * 1e6


def build_sweep(model_name):
    model = get_model(model_name)
    kernels = default_comparison_set()
    return {
        name: [layer_latency_us(kernel, model, b) for b in PAPER_BATCH_SIZES]
        for name, kernel in kernels.items()
    }


@pytest.mark.parametrize("model_name", MODELS)
def test_fig12_kernel_latency(benchmark, emit, model_name):
    sweep = benchmark(build_sweep, model_name)
    text = format_series(
        "batch", list(PAPER_BATCH_SIZES), sweep,
        title=f"Figure 12 — per-layer GEMM latency (us) on {model_name}, all kernels",
        float_fmt="{:.1f}",
    )
    speedup_qserve = sweep["qserve-w4a8"][-1] / sweep["liquidgemm"][-1]
    speedup_w8a8 = sweep["w8a8"][-1] / sweep["liquidgemm"][-1]
    speedup_w4a16 = sweep["w4a16"][-1] / sweep["liquidgemm"][-1]
    text += (
        f"\n\nLiquidGEMM speedup at batch 256: {speedup_qserve:.2f}x vs QServe "
        f"(paper 2.75-2.90x), {speedup_w8a8:.2f}x vs W8A8, {speedup_w4a16:.2f}x vs W4A16"
    )
    emit(f"fig12_kernel_latency_{model_name}", text)

    liquid = sweep["liquidgemm"]
    # LiquidGEMM is the fastest kernel at every batch size on every model.
    for name, series in sweep.items():
        for b_idx in range(len(PAPER_BATCH_SIZES)):
            assert liquid[b_idx] <= series[b_idx] * 1.001, (name, PAPER_BATCH_SIZES[b_idx])
    # Large-batch speedups in the right ballpark.
    if model_name == "mixtral-8x7b":
        # The paper reports Mixtral against the TRT kernels (QServe has no Mixtral support):
        # 1.41-1.84x over TRT-FP8 and 1.12-2.53x over TRT-W4A16 beyond batch 32.
        # In this reproduction the per-expert GEMMs (M = batch/4) remain memory-bound at batch
        # 256, so the W4A16 gap is smaller than the paper's measured 1.12-2.53x; the FP8 gap
        # (driven by weight bytes) reproduces.  See EXPERIMENTS.md.
        speedup_fp8 = sweep["fp8"][-1] / sweep["liquidgemm"][-1]
        assert speedup_fp8 > 1.1
        assert speedup_w4a16 >= 1.0
    else:
        assert speedup_qserve > 1.8
        assert 1.05 < speedup_w8a8 < 2.0
        # QServe degrades with batch size (latency grows superlinearly vs LiquidGEMM's).
        assert sweep["qserve-w4a8"][-1] / sweep["qserve-w4a8"][0] > liquid[-1] / liquid[0]
