"""Section 3.3: cost-model predictions — transition batch sizes and the alpha budget.

Regenerates the numbers the paper derives from Figure 1's metrics: the memory-to-compute
transition batch sizes for W4A8 and W8A8 on A100/H100, and the dequantization instruction
budget (alpha <= 5.07 memory-bound, <= 5.05 compute-bound at batch 150).
"""

import pytest

from repro.costmodel import alpha_budget, transition_batch_size
from repro.gpu import A100, H100
from repro.reporting import format_table


def build_cost_model_numbers():
    rows = []
    for gpu in (A100, H100):
        for name, weight, mma in (("w4a8", "int4", "int8"), ("w8a8", "int8", "int8")):
            rows.append([gpu.name, name, transition_batch_size(gpu, weight, mma)])
    budgets = {
        "memory-bound (T_DQ <= T_LD)": alpha_budget(H100, "int4", "int8"),
        "compute-bound at M=150 (T_DQ <= T_MMA)": alpha_budget(H100, "int4", "int8", 150),
    }
    return rows, budgets


def test_sec33_cost_model(benchmark, emit):
    rows, budgets = benchmark(build_cost_model_numbers)
    text = format_table(
        ["GPU", "config", "transition batch size"],
        rows,
        title="Section 3.3 — memory/compute transition points (paper: 150 / 300 on H100, 156 on A100)",
    )
    text += "\n\n" + format_table(
        ["condition", "alpha budget (instr/element)"],
        sorted(budgets.items()),
        title="Dequantization instruction budget on H100 (paper: 5.07 / 5.05)",
    )
    emit("sec33_cost_model", text)

    values = {(gpu, cfg): v for gpu, cfg, v in rows}
    assert values[("H100", "w4a8")] == pytest.approx(150, abs=1)
    assert values[("H100", "w8a8")] == pytest.approx(300, abs=1)
    assert values[("A100", "w8a8")] == pytest.approx(156, abs=1)
    assert budgets["memory-bound (T_DQ <= T_LD)"] == pytest.approx(5.07, abs=0.05)
    assert budgets["compute-bound at M=150 (T_DQ <= T_MMA)"] == pytest.approx(5.07, abs=0.05)
