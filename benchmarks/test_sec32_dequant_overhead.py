"""Section 3.2: the dequantization overhead of the existing W4A8 kernel, measured.

Replays both register-level dequantization paths through the instruction emulation on a real
FFN-layer weight tile of LLaMA2-7B and reports the per-element instruction cost (alpha), the
share of instructions spent in the lowered ``vsub4`` (the paper profiles the corresponding
``vadd`` at 21% of warp stalls), and the resulting CUDA-core time per main-loop iteration.
"""

import numpy as np
import pytest

from repro.dequant import (
    lqq_alpha,
    lqq_dequant_register,
    qserve_alpha,
    qserve_dequant_register,
    w4a16_alpha,
)
from repro.costmodel import alpha_budget
from repro.gpu import H100
from repro.isa import InstructionStats
from repro.layout import pack_u4_interleaved
from repro.reporting import format_table


def measure_paths(num_registers=2048, seed=0):
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 16, (num_registers, 8)).astype(np.uint8)
    registers = pack_u4_interleaved(codes)

    lqq_stats = InstructionStats()
    qserve_stats = InstructionStats()
    for reg in registers[:256]:  # a warp-trace-sized sample; alpha is per-register anyway
        lqq_dequant_register(reg, 13, 37, lqq_stats)
        qserve_dequant_register(reg, 13, 5, qserve_stats)

    elements = 256 * 8
    vsub_components = sum(
        qserve_stats.count(op) for op in ("bfe.u32", "bfi.b32", "sub.u32", "add.u32")
    )
    return {
        "lqq_alpha": lqq_stats.per_element(elements),
        "qserve_alpha": qserve_stats.per_element(elements),
        "w4a16_alpha": w4a16_alpha(),
        "qserve_vsub_share": vsub_components / qserve_stats.total_instructions,
        "budget": alpha_budget(H100, "int4", "int8"),
    }


def test_sec32_dequant_overhead(benchmark, emit):
    measured = benchmark(measure_paths)
    rows = [
        ["LiquidQuant (IMAD+XOR)", measured["lqq_alpha"], measured["lqq_alpha"] / measured["budget"]],
        ["QServe (vsub4 lowering)", measured["qserve_alpha"], measured["qserve_alpha"] / measured["budget"]],
        ["W4A16 (FP16 magic number)", measured["w4a16_alpha"], measured["w4a16_alpha"] / measured["budget"]],
    ]
    text = format_table(
        ["dequantization path", "alpha (instr/element)", "fraction of §3.3 budget (5.07)"],
        rows,
        title="Section 3.2 — measured dequantization cost per element",
    )
    text += (
        f"\n\nShare of QServe's instruction stream spent in the lowered byte-wise subtraction: "
        f"{measured['qserve_vsub_share']:.0%} (paper: vadd alone is 21% of warp stalls)"
    )
    emit("sec32_dequant_overhead", text)

    # The measured alphas must match the analytic ones and respect the paper's relationships.
    assert measured["lqq_alpha"] == pytest.approx(lqq_alpha())
    assert measured["qserve_alpha"] == pytest.approx(qserve_alpha())
    assert measured["lqq_alpha"] == pytest.approx(7 / 8)
    assert measured["qserve_alpha"] > 4 * measured["lqq_alpha"]
    assert measured["lqq_alpha"] < measured["budget"]
    assert measured["qserve_vsub_share"] > 0.5
